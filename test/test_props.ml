(* Additional property and edge-case tests: decoder robustness on
   arbitrary byte soup, the policy lattice laws the adaptive machinery
   depends on, region-selection invariants, translation-cache behavior
   under pressure, and interpreter corner cases. *)

open X86

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Decoder: total on arbitrary bytes                                   *)
(* ------------------------------------------------------------------ *)

(* The decoder runs on whatever bytes the guest jumps to; it must
   either produce an instruction or raise an architectural fault (#UD,
   or #PF surfaced by the fetch callback) — never an OCaml error. *)
let prop_decode_total =
  QCheck.Test.make ~count:2000 ~name:"decoder total on random bytes"
    QCheck.(list_of_size (Gen.return 16) (int_bound 255))
    (fun bytes ->
      let arr = Array.of_list bytes in
      let fetch a =
        if a - 0x1000 < Array.length arr then arr.(a - 0x1000)
        else raise (Exn.Fault (Exn.PF { addr = a; write = false; present = false }))
      in
      match Decode.decode ~fetch 0x1000 with
      | f -> f.Decode.len > 0 && f.Decode.len <= Decode.max_len
      | exception Exn.Fault _ -> true)

(* Decoding a decoded instruction's bytes is stable (idempotent). *)
let prop_decode_stable =
  QCheck.Test.make ~count:1000 ~name:"decode of encode of decode stable"
    QCheck.(list_of_size (Gen.return 16) (int_bound 255))
    (fun bytes ->
      let arr = Array.of_list bytes in
      let fetch a =
        if a - 0x1000 < Array.length arr then arr.(a - 0x1000)
        else raise (Exn.Fault (Exn.PF { addr = a; write = false; present = false }))
      in
      match Decode.decode ~fetch 0x1000 with
      | exception Exn.Fault _ -> true
      | f1 -> (
          let { Encode.bytes = b; _ } = Encode.encode ~at:0x1000 f1.Decode.insn in
          let fetch2 a = Char.code (Bytes.get b (a - 0x1000)) in
          match Decode.decode ~fetch:fetch2 0x1000 with
          | f2 -> f2.Decode.insn = f1.Decode.insn
          | exception Exn.Fault _ -> false))

(* ------------------------------------------------------------------ *)
(* Policy lattice laws                                                 *)
(* ------------------------------------------------------------------ *)

let cfg = Cms.Config.default

let gen_policy =
  let open QCheck.Gen in
  let* no_reorder = bool and* no_alias = bool in
  let* self_check = bool and* self_reval = bool in
  let* interp_only = bool in
  let* max_insns = oneofl [ 4; 10; 50; 200 ] in
  let* unroll = oneofl [ 1; 2; 4 ] in
  let* interp = list_size (int_bound 3) (int_range 0x1000 0x1010) in
  let* stylized = list_size (int_bound 3) (int_range 0x2000 0x2010) in
  return
    {
      Cms.Policy.no_reorder;
      no_alias;
      self_check;
      self_reval;
      interp_only;
      max_insns;
      unroll;
      interp_insns = Cms.Policy.ISet.of_list interp;
      stylized_imms = Cms.Policy.ISet.of_list stylized;
    }

let arb_policy = QCheck.make gen_policy

let prop_merge_monotone =
  QCheck.Test.make ~count:500 ~name:"policy merge is an upper bound"
    (QCheck.pair arb_policy arb_policy)
    (fun (a, b) ->
      let m = Cms.Policy.merge a b in
      Cms.Policy.geq m a && Cms.Policy.geq m b)

let prop_merge_idempotent_commutative =
  QCheck.Test.make ~count:500 ~name:"policy merge idempotent + commutative"
    (QCheck.pair arb_policy arb_policy)
    (fun (a, b) ->
      Cms.Policy.equal (Cms.Policy.merge a a) a
      && Cms.Policy.equal (Cms.Policy.merge a b) (Cms.Policy.merge b a))

let prop_merge_associative =
  QCheck.Test.make ~count:300 ~name:"policy merge associative"
    (QCheck.triple arb_policy arb_policy arb_policy)
    (fun (a, b, c) ->
      Cms.Policy.equal
        (Cms.Policy.merge a (Cms.Policy.merge b c))
        (Cms.Policy.merge (Cms.Policy.merge a b) c))

(* The adaptive table never gets less conservative — the paper's
   "avoid bouncing between incomparable policies" property. *)
let prop_adapt_monotone =
  QCheck.Test.make ~count:200 ~name:"adaptive upgrades only tighten"
    (QCheck.list_of_size (QCheck.Gen.int_range 1 8) arb_policy)
    (fun ps ->
      let t = Cms.Adapt.create cfg in
      List.for_all
        (fun p ->
          let before = Cms.Adapt.get t 0x1234 in
          Cms.Adapt.upgrade t 0x1234 p;
          Cms.Policy.geq (Cms.Adapt.get t 0x1234) before)
        ps)

(* ------------------------------------------------------------------ *)
(* Region selection invariants                                         *)
(* ------------------------------------------------------------------ *)

let mk_engine () =
  let t = Cms.create ~cfg:Cms.Config.debug () in
  Cms.boot t ~entry:0x10000;
  t

let test_region_respects_caps () =
  let t = mk_engine () in
  let prog =
    Asm.(
      assemble ~base:0x10000
        [
          label "l"; add_ri eax 1; add_ri ebx 2; xor_rr ecx eax; dec_r edx;
          jne "l"; hlt;
        ])
  in
  Cms.load t prog;
  List.iter
    (fun (max_insns, unroll) ->
      let policy =
        { (Cms.Policy.default Cms.Config.default) with
          Cms.Policy.max_insns; unroll }
      in
      match
        Cms.Region.select ~mem:(Cms.mem t)
          ~profile:(Cms.Profile.create ()) ~policy 0x10000
      with
      | None -> Alcotest.fail "no region"
      | Some r ->
          check cb
            (Fmt.str "count %d <= %d" (Cms.Region.instruction_count r) max_insns)
            true
            (Cms.Region.instruction_count r <= max_insns);
          (* merged, sorted, non-overlapping ranges *)
          let rec sorted = function
            | (_, h1) :: ((l2, _) :: _ as rest) -> h1 < l2 && sorted rest
            | _ -> true
          in
          check cb "ranges sorted/merged" true (sorted r.Cms.Region.src_ranges))
    [ (3, 1); (5, 1); (10, 2); (200, 4) ]

let test_region_stops_at_interp_insn () =
  let t = mk_engine () in
  let prog =
    Asm.(
      assemble ~base:0x10000
        [ add_ri eax 1; cli; add_ri eax 2; hlt ])
  in
  Cms.load t prog;
  match
    Cms.Region.select ~mem:(Cms.mem t) ~profile:(Cms.Profile.create ())
      ~policy:(Cms.Policy.default Cms.Config.default) 0x10000
  with
  | None -> Alcotest.fail "no region"
  | Some r ->
      (* region is exactly the one instruction before CLI *)
      check ci "stops before cli" 1 (Cms.Region.instruction_count r)

(* ------------------------------------------------------------------ *)
(* Translation cache under pressure                                    *)
(* ------------------------------------------------------------------ *)

let test_tcache_flush_on_capacity () =
  (* a program with many distinct hot blocks and a tiny cache *)
  let open Asm in
  let blocks =
    List.concat
      (List.init 24 (fun i ->
           [ label (Fmt.str "b%d" i); add_ri eax i; add_ri ebx 1 ]))
  in
  let prog =
    assemble ~base:0x10000
      ([ mov_ri ecx 60; mov_ri eax 0; mov_ri ebx 0; label "loop" ]
      @ blocks
      @ [ dec_r ecx; jne "loop"; hlt ])
  in
  let cfg =
    { Cms.Config.debug with
      Cms.Config.tcache_capacity = 4;
      translate_threshold = 3;
      max_region_insns = 6;
      unroll_limit = 1 }
  in
  let t, _ = Cms.run_listing ~cfg ~max_insns:1_000_000 prog ~entry:0x10000 in
  (* correctness survives cache pressure (generational eviction, with
     the full flush as last resort) *)
  check ci "ebx counts blocks" (60 * 24) (Cms.gpr t X86.Regs.ebx);
  let tc = t.Cms.Engine.tcache in
  check cb "cache shed translations at least once" true
    (tc.Cms.Tcache.flushes > 0 || tc.Cms.Tcache.evictions > 0);
  check cb "count stays within capacity" true
    (tc.Cms.Tcache.count <= tc.Cms.Tcache.capacity)

(* ------------------------------------------------------------------ *)
(* Interpreter corner cases                                            *)
(* ------------------------------------------------------------------ *)

let test_insn_straddles_pages () =
  (* place a 5-byte instruction across a page boundary *)
  let open Asm in
  let prog =
    assemble ~base:0x10ffd
      [ mov_ri eax 0x1234567; hlt ]
  in
  let t, _ =
    Cms.run_listing ~cfg:Cms.interp_only_cfg prog ~entry:0x10ffd
  in
  check ci "value loaded across pages" 0x1234567 (Cms.gpr t X86.Regs.eax)

let test_division_edge_cases () =
  let open Asm in
  (* INT_MIN / -1 must fault #DE, handler skips via recorded next *)
  let prog =
    assemble ~base:0x10000
      [
        mov_rl eax "de";
        mov_mr (m 0x1000) eax;
        mov_mi (m 0x5000) 0x1000;
        lidt (m 0x5000);
        mov_ri ebx 0;
        mov_ri eax 0x80000000;
        mov_ri edx 0xffffffff;
        mov_ri ecx 0xffffffff;
        I (Insn.Idiv (Insn.S32, Insn.R ecx));
        label "after";
        hlt;
        label "de";
        inc_r ebx;
        pop_r edx; (* faulting eip *)
        push_l "after";
        iret;
      ]
  in
  let t, _ = Cms.run_listing ~cfg:Cms.interp_only_cfg prog ~entry:0x10000 in
  check ci "overflow faulted" 1 (Cms.gpr t X86.Regs.ebx)

let test_wraparound_address () =
  (* effective addresses wrap at 2^32 *)
  let open Asm in
  let prog =
    assemble ~base:0x10000
      [
        mov_mi (m 0x20000) 0xabcd;
        mov_ri esi 0xffffffff;
        mov_rm eax (mbd esi 0x20001); (* 0xffffffff + 0x20001 = 0x20000 mod 2^32 *)
        hlt;
      ]
  in
  let t, _ = Cms.run_listing ~cfg:Cms.interp_only_cfg prog ~entry:0x10000 in
  check ci "wrapped ea" 0xabcd (Cms.gpr t X86.Regs.eax)

(* ------------------------------------------------------------------ *)
(* Translation verifier over the whole suite                           *)
(* ------------------------------------------------------------------ *)

(* Every translation produced while running every workload — at an
   aggressive translate threshold so nearly all guest code goes through
   the translator — must pass the static verifier with zero
   diagnostics.  Collecting mode is used so we see *all* violations in
   one run rather than dying on the first. *)
let test_suite_verifier_clean () =
  let workloads =
    Workloads.Progs_boot.all @ Workloads.Progs_spec.all
    @ Workloads.Progs_apps.all @ Workloads.Progs_quake.all
    @ [ Workloads.Progs_quake.blt_driver () ]
  @ Workloads.Progs_kernel.all
  in
  let cfg = { Cms.Config.debug with Cms.Config.translate_threshold = 4 } in
  let translations = ref 0 in
  let (), diags =
    Cms_analysis.Pipeline.with_collect (fun () ->
        List.iter
          (fun w ->
            let t = Workloads.Suite.run ~cfg w in
            translations :=
              !translations + (Cms.stats t).Cms.Stats.translations)
          workloads)
  in
  (match diags with
  | [] -> ()
  | d :: _ ->
      Alcotest.failf "%d violations, first: %s" (List.length diags)
        (Cms_analysis.Diag.to_string d));
  check cb "suite produced translations" true (!translations > 500)

let suites =
  [
    ( "props.decode",
      List.map QCheck_alcotest.to_alcotest
        [ prop_decode_total; prop_decode_stable ] );
    ( "props.policy",
      List.map QCheck_alcotest.to_alcotest
        [
          prop_merge_monotone;
          prop_merge_idempotent_commutative;
          prop_merge_associative;
          prop_adapt_monotone;
        ] );
    ( "props.region",
      [
        Alcotest.test_case "caps respected" `Quick test_region_respects_caps;
        Alcotest.test_case "stops at interp-only insn" `Quick
          test_region_stops_at_interp_insn;
      ] );
    ( "props.tcache",
      [ Alcotest.test_case "flush under pressure" `Quick test_tcache_flush_on_capacity ] );
    ( "props.interp",
      [
        Alcotest.test_case "insn straddles pages" `Quick test_insn_straddles_pages;
        Alcotest.test_case "idiv overflow faults" `Quick test_division_edge_cases;
        Alcotest.test_case "address wraparound" `Quick test_wraparound_address;
      ] );
    ( "props.verify",
      [
        Alcotest.test_case "whole suite verifier-clean" `Slow
          test_suite_verifier_clean;
      ] );
  ]
