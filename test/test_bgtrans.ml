(* Background-translator battery: the queue's deterministic contract
   (bound / dedup / priority / steal), the install boundary (a
   validated result ships, a stale one — SMC between enqueue and
   install — is demoted to a synchronous recompile), the 28-workload
   bg-on/bg-off differential (arch and strict digests identical: the
   worker domain is a pure wall-clock accelerator), a 100-case chaos
   record-replay slice with background translation on, and the
   combined chaos x chain x bgtrans smoke. *)

open Cms_fuzz
module Bg = Cms.Bgtrans
module Suite = Workloads.Suite
module D = Cms_persist.Digests

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Queue unit tests (virtual mode: no domain, pure data structure)     *)
(* ------------------------------------------------------------------ *)

let mk_region ~entry =
  {
    Cms.Region.entry;
    insns = [||];
    cont = None;
    src_ranges = [ (entry, entry + 8) ];
  }

let mk_job ?(priority = 0) entry =
  {
    Bg.entry;
    region = mk_region ~entry;
    policy = Cms.Policy.default Cms.Config.default;
    bytes = Bytes.create 8;
    priority;
    doom = None;
    prefetched = false;
  }

let mk_queue ?(capacity = 3) () =
  let bg =
    Bg.create { Cms.Config.default with Cms.Config.bg_queue_capacity = capacity }
  in
  Bg.set_virtual bg true;
  bg

let test_queue_bound () =
  let bg = mk_queue ~capacity:3 () in
  check cb "1 accepted" true (Bg.enqueue bg (mk_job 0x1000) = Bg.Accepted);
  check cb "2 accepted" true (Bg.enqueue bg (mk_job 0x2000) = Bg.Accepted);
  check cb "3 accepted" true (Bg.enqueue bg (mk_job 0x3000) = Bg.Accepted);
  check cb "4 over capacity" true (Bg.enqueue bg (mk_job 0x4000) = Bg.Full);
  (* capacity counts unconsumed requests: consuming one frees a slot *)
  check cb "one consumed" true (Bg.consume bg 0x2000 <> None);
  check cb "slot freed" true (Bg.enqueue bg (mk_job 0x4000) = Bg.Accepted)

let test_queue_dedup () =
  let bg = mk_queue () in
  check cb "first accepted" true (Bg.enqueue bg (mk_job 0x1000) = Bg.Accepted);
  check cb "second deduped" true (Bg.enqueue bg (mk_job 0x1000) = Bg.Deduped);
  check cb "wants is false while live" false (Bg.wants bg 0x1000);
  (* after the install boundary consumed it, the entry may be
     re-requested (retranslation after demotion / eviction) *)
  ignore (Bg.consume bg 0x1000);
  check cb "wants again after consume" true (Bg.wants bg 0x1000);
  check cb "re-enqueue accepted" true (Bg.enqueue bg (mk_job 0x1000) = Bg.Accepted)

let test_queue_priority () =
  let bg = mk_queue ~capacity:8 () in
  ignore (Bg.enqueue bg (mk_job ~priority:5 0x1000));
  ignore (Bg.enqueue bg (mk_job ~priority:9 0x2000));
  ignore (Bg.enqueue bg (mk_job ~priority:7 0x3000));
  ignore (Bg.enqueue bg (mk_job ~priority:7 0x4000));
  let order = List.map (fun r -> r.Bg.job.Bg.entry) bg.Bg.queue in
  (* descending priority, stable for ties *)
  check (Alcotest.list ci) "profile-priority order"
    [ 0x2000; 0x3000; 0x4000; 0x1000 ] order

let test_queue_steal () =
  let bg = mk_queue () in
  ignore (Bg.enqueue bg (mk_job 0x1000));
  (match Bg.consume bg 0x1000 with
  | Some tk ->
      check cb "reclaimed while queued" true tk.Bg.t_unready;
      check cb "no result from a steal" true (tk.Bg.t_result = None);
      check cb "steal does not wait" false tk.Bg.t_waited
  | None -> Alcotest.fail "live request not consumed");
  check cb "double consume is None" true (Bg.consume bg 0x1000 = None);
  check cb "absent entry is None" true (Bg.consume bg 0x9000 = None)

let test_worker_lifecycle () =
  (* a real (non-virtual) queue: whatever the worker managed to do by
     the time we consume — steal, wait, done, broken — consume returns
     without deadlock, and quiesce joins the domain *)
  let bg = Bg.create Cms.Config.default in
  ignore (Bg.enqueue bg (mk_job 0x1000));
  check cb "consume returns" true (Bg.consume bg 0x1000 <> None);
  Bg.quiesce bg;
  check cb "worker joined" true (bg.Bg.worker = None)

(* ------------------------------------------------------------------ *)
(* Install boundary: validated install vs stale rejection              *)
(* ------------------------------------------------------------------ *)

let loop_base = 0x1000
(* mov ebx,imm sits at loop head +0; its imm32 at [l+1 .. l+5) is the
   SMC target *)
let loop_head = loop_base + 10

let stale_listing ~iters ~imm =
  X86.Asm.(
    assemble ~base:loop_base
      [
        mov_ri eax 0;
        mov_ri ebp iters;
        label "l";
        mov_ri ebx imm;
        dec_r ebp;
        jne "l";
        hlt;
      ])

let stale_cfg =
  { Cms.Config.default with Cms.Config.translate_threshold = 16 }

(* Drive the loop until the leader has crossed the prefetch threshold
   (the engine enqueues a background request) but not the hotness
   threshold; the queue is virtual, so the request sits untouched.
   Returns the engine and the request. *)
let prepare_install_case () =
  let c = Cms.create ~cfg:stale_cfg () in
  Cms.load c (stale_listing ~iters:200 ~imm:0x11);
  Cms.boot c ~entry:loop_base;
  Cms.Engine.set_bg_virtual c true;
  (* 2 prologue insns + 10 iterations x 3 insns: leader count 10, in
     [threshold/2, threshold) *)
  (match Cms.run ~max_insns:32 c with
  | Cms.Engine.Insn_limit -> ()
  | _ -> Alcotest.fail "phase 1 should stop on the instruction limit");
  let bg =
    match c.Cms.Engine.bg with
    | Some bg -> bg
    | None -> Alcotest.fail "background translation off?"
  in
  check cb "leader request enqueued" false (Bg.wants bg loop_head);
  let r = Hashtbl.find bg.Bg.reqs loop_head in
  (c, bg, r)

(* Act out the worker's completion of [r] from its enqueue-time
   immutable inputs — under the lock, exactly the transition
   [finish_locked] performs. *)
let complete_from_job (bg : Bg.t) (r : Bg.req) =
  let j = r.Bg.job in
  let compiled =
    Cms.Codegen.compile_presnapped ~cfg:stale_cfg ~policy:j.Bg.policy
      ~bytes:j.Bg.bytes j.Bg.region
  in
  Mutex.lock bg.Bg.lock;
  bg.Bg.queue <- List.filter (fun q -> q != r) bg.Bg.queue;
  r.Bg.status <- Bg.Done compiled;
  bg.Bg.busy <- bg.Bg.busy - 1;
  bg.Bg.done_held <- bg.Bg.done_held + 1;
  Mutex.unlock bg.Bg.lock

let finish (c : Cms.t) =
  match Cms.run ~max_insns:1_000_000 c with
  | Cms.Engine.Halted -> Cms.stats c
  | _ -> Alcotest.fail "loop did not halt"

let test_validated_install () =
  let c, bg, r = prepare_install_case () in
  complete_from_job bg r;
  let s = finish c in
  check ci "background result shipped" 1 s.Cms.Stats.bg_installed;
  check ci "nothing stale" 0 s.Cms.Stats.bg_stale;
  check ci "loop semantics" 0x11 (Cms.gpr c X86.Regs.ebx)

let test_stale_install_rejected () =
  let c, bg, r = prepare_install_case () in
  (* SMC between enqueue and install: patch the loop's mov immediate
     after the request captured its snapshot *)
  Machine.Mem.write (Cms.mem c) ~size:4 (loop_head + 1) 0x22;
  complete_from_job bg r;
  let s = finish c in
  check ci "stale result demoted" 1 s.Cms.Stats.bg_stale;
  check ci "stale result not shipped" 0 s.Cms.Stats.bg_installed;
  (* the synchronous recompile read post-SMC bytes: new semantics *)
  check ci "post-SMC semantics" 0x22 (Cms.gpr c X86.Regs.ebx)

(* ------------------------------------------------------------------ *)
(* 28-workload bg-on / bg-off differential                             *)
(* ------------------------------------------------------------------ *)

let all_workloads () =
  Workloads.Progs_boot.all @ Workloads.Progs_spec.all
  @ Workloads.Progs_apps.all @ Workloads.Progs_quake.all
  @ [ Workloads.Progs_quake.blt_driver () ]
  @ Workloads.Progs_kernel.all

let installs = ref 0

let differential (w : Suite.t) () =
  let run bg =
    Suite.run
      ~cfg:{ Cms.Config.default with Cms.Config.background_translation = bg }
      w
  in
  let on = run true and off = run false in
  check Alcotest.string
    (w.Suite.name ^ ": arch digest, bg on vs off")
    (D.arch_hex (D.arch off))
    (D.arch_hex (D.arch on));
  check Alcotest.string
    (w.Suite.name ^ ": strict digest, bg on vs off")
    (D.strict_hex (D.strict off))
    (D.strict_hex (D.strict on));
  check cb (w.Suite.name ^ ": identical perf") true
    (Cms.perf on = Cms.perf off);
  installs := !installs + (Cms.stats on).Cms.Stats.bg_installed

let differential_tests =
  List.map
    (fun w -> Alcotest.test_case w.Suite.name `Slow (differential w))
    (all_workloads ())

(* The differential is only meaningful if the background path actually
   shipped translations somewhere in the corpus (a workload-by-workload
   guarantee would overfit worker timing; the aggregate may not be
   zero).  Runs after the per-workload cases. *)
let test_background_path_exercised () =
  check cb
    (Fmt.str "background installs across the corpus (%d)" !installs)
    true (!installs > 0)

(* ------------------------------------------------------------------ *)
(* Chaos record-replay with background translation on                  *)
(* ------------------------------------------------------------------ *)

(* 100 generated cases under seeded chaos (whose default profile dooms
   background requests: worker deaths, wedges, fails, delays) with the
   translator config's background queue on.  Each case is recorded,
   then replayed RNG-free in virtual-queue mode; the journal's
   [Bg_arrive] stream is verified event-for-event and the final
   fingerprints must be bit-identical. *)
let test_chaos_record_replay_bg () =
  let root = Srng.create 7 in
  for index = 0 to 99 do
    let rng = Srng.split root in
    let case = Gen.generate rng ~seed:7 ~index in
    let chaos_seed = Srng.int32 rng in
    match Oracle.check_record_replay (Oracle.render ~chaos:chaos_seed case) with
    | Oracle.Pass -> ()
    | Oracle.Hang -> ()
    | Oracle.Divergence d -> Alcotest.failf "bg chaos case %d: %s" index d
  done

(* ------------------------------------------------------------------ *)
(* Combined chaos x chain x bgtrans smoke                              *)
(* ------------------------------------------------------------------ *)

(* The chaos differential (clean interpreter vs chaos-scrambled
   translator) with chained exits, closure execution and the
   background queue all on — the configuration every piece of this PR
   must coexist under.  Architectural equality is the whole check. *)
let test_chaos_chain_bg_smoke () =
  let root = Srng.create 97 in
  for index = 0 to 14 do
    let rng = Srng.split root in
    let case = Gen.generate rng ~seed:97 ~index in
    let seed = Srng.int32 rng in
    match Oracle.check (Oracle.render ~chaos:seed case) with
    | Oracle.Pass | Oracle.Hang -> ()
    | Oracle.Divergence d ->
        Alcotest.failf "chaos x chain x bgtrans case %d: %s" index d
  done

let suites =
  [
    ( "bgtrans.queue",
      [
        Alcotest.test_case "capacity bound" `Quick test_queue_bound;
        Alcotest.test_case "dedup" `Quick test_queue_dedup;
        Alcotest.test_case "priority order" `Quick test_queue_priority;
        Alcotest.test_case "steal-consume" `Quick test_queue_steal;
        Alcotest.test_case "worker lifecycle" `Quick test_worker_lifecycle;
      ] );
    ( "bgtrans.install",
      [
        Alcotest.test_case "validated install ships" `Quick
          test_validated_install;
        Alcotest.test_case "stale install rejected (SMC)" `Quick
          test_stale_install_rejected;
      ] );
    ( "bgtrans.differential",
      differential_tests
      @ [
          Alcotest.test_case "background path exercised" `Slow
            test_background_path_exercised;
        ] );
    ( "bgtrans.replay",
      [
        Alcotest.test_case "chaos record-replay, bg on (100 cases)" `Slow
          test_chaos_record_replay_bg;
      ] );
    ( "bgtrans.smoke",
      [
        Alcotest.test_case "chaos x chain x bgtrans" `Slow
          test_chaos_chain_bg_smoke;
      ] );
  ]
