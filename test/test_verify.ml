(* Translation verifier tests: a hand-built block that must verify
   clean, seeded mutations that must each trip their rule, IR lint unit
   tests, and the Codegen hook wiring. *)

module A = Vliw.Atom
module C = Vliw.Code
module Asm = X86.Asm
module I = Cms.Ir
module D = Cms_analysis.Diag
module M = Cms_analysis.Mutate
module Tverify = Cms_analysis.Tverify
module Irlint = Cms_analysis.Irlint

let ci = Alcotest.int
let cb = Alcotest.bool
let check = Alcotest.check

let entry = 0x1000
let cfg = { Cms.Config.debug with Cms.Config.sbuf_capacity = 4 }

let pp_diags diags =
  String.concat "; " (List.map D.to_string diags)

let has_rule rule diags = List.exists (fun d -> d.D.rule = rule) diags

(* A hand-built translation exercising every atom class the verifier
   tracks: an armed alias range, a protected speculative load, a
   checked store, guest-register updates committed before the loop
   back-edge and before the final exit. *)
let clean_code () =
  {
    C.molecules =
      [|
        [| A.MovI { rd = 12; imm = 0x2000 } |];
        [| A.ArmRange { slot = 7; base = 12; disp = 0; len = 16 } |];
        [|
          A.Load
            {
              rd = 13; base = 12; disp = 0; size = 4; spec = true;
              protect = Some 0; check = 0;
            };
        |];
        [| A.Nop |];
        [|
          A.Store
            {
              rs = A.R 13; base = 12; disp = 4; size = 4; spec = false;
              check = 1 lsl 7;
            };
        |];
        [| A.Alu { op = A.HAdd; rd = 0; a = 0; b = A.I 1 } |];
        [| A.MovI { rd = Vliw.Abi.eip; imm = 0x1003 } |];
        [| A.Commit 3 |];
        [| A.BrCmp { cmp = A.Cne; a = 0; b = A.I 10; target = 0 } |];
        [| A.MovI { rd = Vliw.Abi.eip; imm = 0x1010 } |];
        [| A.Commit 0 |];
        [| A.Exit 0 |];
      |];
    exits =
      [|
        {
          C.target = C.Const 0x1010; kind = C.Enext; x86_retired = 3;
          chain = C.Unchained;
        };
      |];
  }

let verify code = Tverify.verify ~cfg ~entry ~ninsns:3 code

let test_crafted_clean () =
  match verify (clean_code ()) with
  | [] -> ()
  | diags -> Alcotest.failf "clean block flagged: %s" (pp_diags diags)

(* Every seeded mutation must apply to the crafted block and trip its
   designated rule (extra collateral diagnostics are fine: corrupting
   one invariant often perturbs others). *)
let test_mutation m () =
  match M.apply ~cfg (clean_code ()) m with
  | None -> Alcotest.failf "mutation %s not applicable to crafted block" (M.name m)
  | Some bad ->
      let diags = verify bad in
      let want = M.expected_rule m in
      if not (has_rule want diags) then
        Alcotest.failf "mutation %s: expected rule %s, got [%s]" (M.name m)
          want (pp_diags diags)

(* The same mutations against a real self-checking translation of a
   guest loop, produced by the actual Lower/Opt/Sched pipeline. *)
let compile_loop () =
  let t = Cms.create ~cfg:Cms.Config.debug () in
  Cms.boot t ~entry:0x10000;
  let prog =
    Asm.(
      assemble ~base:0x10000
        [ mov_ri edx 5; label "l"; add_ri eax 1; dec_r edx; jne "l"; hlt ])
  in
  Cms.load t prog;
  let policy =
    { (Cms.Policy.default Cms.Config.debug) with Cms.Policy.self_check = true }
  in
  match
    Cms.Region.select ~mem:(Cms.mem t) ~profile:(Cms.Profile.create ())
      ~policy 0x10000
  with
  | None -> Alcotest.fail "no region"
  | Some region ->
      let compiled =
        Cms.Codegen.compile ~cfg:Cms.Config.debug ~policy ~mem:(Cms.mem t)
          region
      in
      (region, compiled.Cms.Codegen.code)

let test_real_translation_mutations () =
  let region, code = compile_loop () in
  let entry = region.Cms.Region.entry in
  let ninsns = Cms.Region.instruction_count region in
  let verify c = Tverify.verify ~cfg:Cms.Config.debug ~entry ~ninsns c in
  (match verify code with
  | [] -> ()
  | diags -> Alcotest.failf "real translation flagged: %s" (pp_diags diags));
  let applied = ref 0 in
  List.iter
    (fun m ->
      match M.apply ~cfg:Cms.Config.debug code m with
      | None -> ()
      | Some bad ->
          incr applied;
          let want = M.expected_rule m in
          if not (has_rule want (verify bad)) then
            Alcotest.failf "real code, mutation %s: %s not flagged (got [%s])"
              (M.name m) want (pp_diags (verify bad)))
    M.all;
  check cb "most mutations applicable to real code" true (!applied >= 6)

(* ------------------------------------------------------------------ *)
(* IR lint                                                             *)
(* ------------------------------------------------------------------ *)

let lint ir = Irlint.lint ~stage:"test" ~entry ~ir (I.items ir)

let test_lint_clean () =
  let ir = I.create () in
  let v0 = I.fresh_vreg ir in
  let v1 = I.fresh_vreg ir in
  let e0 = I.add_exit ir ~target:(C.Const 0x1005) ~kind:C.Enext ~x86_retired:1 in
  I.emit ir ~x86_idx:0 (A.MovI { rd = v0; imm = 0x2000 });
  I.emit ir ~x86_idx:0
    (A.Load
       { rd = v1; base = v0; disp = 0; size = 4; spec = false; protect = None;
         check = 0 });
  I.emit ir ~x86_idx:0
    (A.Store { rs = A.R v1; base = v0; disp = 4; size = 4; spec = false; check = 0 });
  I.emit ir ~x86_idx:0 (A.MovI { rd = Vliw.Abi.eip; imm = 0x1005 });
  I.emit ir ~x86_idx:0 (A.Commit 1);
  I.emit ir ~x86_idx:0 (A.Exit e0);
  match lint ir with
  | [] -> ()
  | diags -> Alcotest.failf "clean IR flagged: %s" (pp_diags diags)

let test_lint_vreg_undef () =
  let ir = I.create () in
  let v0 = I.fresh_vreg ir in
  let v1 = I.fresh_vreg ir in
  I.emit ir ~x86_idx:0 (A.Alu { op = A.HAdd; rd = v0; a = v1; b = A.I 1 });
  check cb "flags use-before-def" true (has_rule "ir-vreg-undef" (lint ir))

let test_lint_backedge_barrier () =
  let ir = I.create () in
  let l = I.fresh_label ir in
  I.emit_label ir l;
  I.emit ir ~x86_idx:0 (A.MovI { rd = I.vreg_base; imm = 1 });
  (* back-edge with neither the barrier flag nor a preceding commit *)
  I.emit ir ~x86_idx:0 (A.Br { target = l });
  check cb "flags unbarriered back-edge" true
    (has_rule "ir-backedge-barrier" (lint ir));
  (* a commit immediately before the branch serializes just as hard *)
  let ir2 = I.create () in
  let l2 = I.fresh_label ir2 in
  I.emit_label ir2 l2;
  I.emit ir2 ~x86_idx:0 (A.MovI { rd = I.vreg_base; imm = 1 });
  I.emit ir2 ~x86_idx:0 (A.Commit 1);
  I.emit ir2 ~x86_idx:0 (A.Br { target = l2 });
  check ci "commit-then-branch is clean" 0 (List.length (lint ir2))

let test_lint_exit_eip () =
  let ir = I.create () in
  let e0 = I.add_exit ir ~target:(C.Const 0x1005) ~kind:C.Enext ~x86_retired:1 in
  I.emit ir ~x86_idx:0 (A.Exit e0);
  check cb "flags exit without committed EIP" true
    (has_rule "ir-exit-eip" (lint ir))

let test_lint_memseq () =
  let ir = I.create () in
  let op atom mem_seq =
    I.Op
      { I.atom; x86_idx = 0; mem_seq; base_ver = 0; barrier = false;
        base_abs = None }
  in
  let load seq =
    op
      (A.Load
         { rd = 12; base = 0; disp = 0; size = 4; spec = false; protect = None;
           check = 0 })
      seq
  in
  (* sequence numbers out of program order *)
  let diags = Irlint.lint ~stage:"test" ~entry ~ir [ load 1; load 0 ] in
  check cb "flags non-monotone mem_seq" true (has_rule "ir-memseq" diags)

(* ------------------------------------------------------------------ *)
(* Codegen wiring                                                      *)
(* ------------------------------------------------------------------ *)

(* With verify_translations on, a hook reporting any violation makes
   the translator itself reject the translation. *)
let test_verify_failed_wiring () =
  let saved = !Cms.Codegen.verify_hook in
  Fun.protect
    ~finally:(fun () -> Cms.Codegen.verify_hook := saved)
    (fun () ->
      Cms.Codegen.verify_hook :=
        Some
          {
            Cms.Codegen.lint_ir = (fun ~stage:_ ~entry:_ ~ir:_ _ -> [ "boom" ]);
            verify_code = (fun ~cfg:_ ~entry:_ ~ninsns:_ _ -> []);
          };
      Alcotest.check_raises "translator rejects flagged translation"
        (Cms.Codegen.Verify_failed "boom") (fun () ->
          ignore (compile_loop ())))

(* With the flag off, even a failing hook is never consulted. *)
let test_verify_flag_gates () =
  let saved = !Cms.Codegen.verify_hook in
  Fun.protect
    ~finally:(fun () -> Cms.Codegen.verify_hook := saved)
    (fun () ->
      Cms.Codegen.verify_hook :=
        Some
          {
            Cms.Codegen.lint_ir = (fun ~stage:_ ~entry:_ ~ir:_ _ -> [ "boom" ]);
            verify_code = (fun ~cfg:_ ~entry:_ ~ninsns:_ _ -> [ "boom" ]);
          };
      let t = Cms.create ~cfg:Cms.Config.default () in
      Cms.boot t ~entry:0x10000;
      let prog = Asm.(assemble ~base:0x10000 [ add_ri eax 1; hlt ]) in
      Cms.load t prog;
      let policy = Cms.Policy.default Cms.Config.default in
      match
        Cms.Region.select ~mem:(Cms.mem t) ~profile:(Cms.Profile.create ())
          ~policy 0x10000
      with
      | None -> Alcotest.fail "no region"
      | Some region ->
          ignore
            (Cms.Codegen.compile ~cfg:Cms.Config.default ~policy
               ~mem:(Cms.mem t) region))

let suites =
  [
    ( "verify",
      [
        Alcotest.test_case "crafted block is clean" `Quick test_crafted_clean;
        Alcotest.test_case "real translation survives mutation sweep" `Quick
          test_real_translation_mutations;
        Alcotest.test_case "lint: clean IR" `Quick test_lint_clean;
        Alcotest.test_case "lint: vreg use before def" `Quick
          test_lint_vreg_undef;
        Alcotest.test_case "lint: back-edge barrier" `Quick
          test_lint_backedge_barrier;
        Alcotest.test_case "lint: exit needs committed EIP" `Quick
          test_lint_exit_eip;
        Alcotest.test_case "lint: mem_seq monotone" `Quick test_lint_memseq;
        Alcotest.test_case "codegen rejects flagged translation" `Quick
          test_verify_failed_wiring;
        Alcotest.test_case "verify_translations=false gates the hook" `Quick
          test_verify_flag_gates;
      ]
      @ List.map
          (fun m ->
            Alcotest.test_case
              (Fmt.str "mutation %s -> %s" (M.name m) (M.expected_rule m))
              `Quick (test_mutation m))
          M.all );
  ]
