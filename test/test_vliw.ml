(* Tests for the VLIW host: register shadowing and commit/rollback, the
   gated store buffer (forwarding, ordering, overflow), alias hardware,
   molecule constraints, and the execution engine including speculative
   MMIO faults and the debug latency interlock. *)

open Vliw

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool

let mk_exec ?(sbuf_capacity = 64) ?(alias_slots = 8) () =
  let mem = Machine.Mem.create ~ram_size:(1 lsl 20) () in
  Machine.Mmu.map_identity mem.Machine.Mem.mmu ~virt:0 ~pages:256
    ~writable:true;
  let e = Exec.create ~sbuf_capacity ~alias_slots mem in
  (* check molecule issue constraints on every cycle under test *)
  e.Exec.validate <- true;
  e

(* A tiny helper to build a one-exit code block from molecules. *)
let code ?(exits = 1) molecules =
  {
    Code.molecules = Array.of_list (List.map Array.of_list molecules);
    exits =
      Array.init exits (fun _ ->
          {
            Code.target = Code.Const 0;
            kind = Code.Enext;
            x86_retired = 0;
            chain = Code.Unchained;
          });
  }

let run_ok e c =
  match Exec.run e c with
  | Exec.Exited i -> i
  | Exec.Faulted n -> Alcotest.failf "unexpected fault %s" (Nexn.to_string n)
  | Exec.Interrupted -> Alcotest.fail "unexpected interrupt"
  | Exec.Runaway -> Alcotest.fail "runaway"

let run_fault e c =
  match Exec.run e c with
  | Exec.Faulted n -> n
  | Exec.Exited _ -> Alcotest.fail "expected fault, got exit"
  | _ -> Alcotest.fail "expected fault"

(* ------------------------------------------------------------------ *)
(* Regfile                                                             *)
(* ------------------------------------------------------------------ *)

let test_shadow_rollback () =
  let r = Regfile.create () in
  Regfile.set_committed r 0 100;
  Regfile.set r 0 200;
  check ci "working" 200 (Regfile.get r 0);
  check ci "shadow" 100 (Regfile.get_committed r 0);
  Regfile.rollback r;
  check ci "restored" 100 (Regfile.get r 0);
  Regfile.set r 0 300;
  Regfile.commit r;
  check ci "committed" 300 (Regfile.get_committed r 0);
  check cb "consistent" true (Regfile.consistent r)

let test_temps_not_shadowed () =
  let r = Regfile.create () in
  Regfile.set r Abi.tmp_base 42;
  Regfile.rollback r;
  check ci "temp survives rollback" 42 (Regfile.get r Abi.tmp_base)

(* ------------------------------------------------------------------ *)
(* Store buffer                                                        *)
(* ------------------------------------------------------------------ *)

let test_sbuf_gating () =
  let sb = Storebuf.create () in
  let mem = Bytes.make 64 '\x00' in
  let mem_read addr size =
    match size with
    | 1 -> Char.code (Bytes.get mem addr)
    | 4 -> Int32.to_int (Bytes.get_int32_le mem addr) land 0xffffffff
    | _ -> assert false
  in
  let mem_write addr size v =
    match size with
    | 1 -> Bytes.set mem addr (Char.chr (v land 0xff))
    | 4 -> Bytes.set_int32_le mem addr (Int32.of_int v)
    | _ -> assert false
  in
  (match Storebuf.push sb ~paddr:8 ~size:4 ~value:0xcafebabe with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "push");
  (* memory unchanged until commit *)
  check ci "memory gated" 0 (mem_read 8 4);
  (* but loads see the buffered value *)
  check ci "forwarded" 0xcafebabe (Storebuf.read sb ~mem_read ~paddr:8 ~size:4);
  (* partial overlap: byte out of the buffered word *)
  check ci "forwarded byte" 0xfe (Storebuf.read sb ~mem_read ~paddr:10 ~size:1);
  Storebuf.commit sb ~mem_write;
  check ci "committed" 0xcafebabe (mem_read 8 4);
  check cb "empty" true (Storebuf.is_empty sb)

let test_sbuf_rollback_drops () =
  let sb = Storebuf.create () in
  ignore (Storebuf.push sb ~paddr:0 ~size:4 ~value:1);
  Storebuf.rollback sb;
  check cb "dropped" true (Storebuf.is_empty sb);
  check ci "stat" 1 sb.Storebuf.total_dropped

let test_sbuf_ordering () =
  let sb = Storebuf.create () in
  let order = ref [] in
  ignore (Storebuf.push sb ~paddr:0 ~size:1 ~value:1);
  ignore (Storebuf.push sb ~paddr:4 ~size:1 ~value:2);
  ignore (Storebuf.push sb ~paddr:0 ~size:1 ~value:3);
  Storebuf.commit sb ~mem_write:(fun p _ v -> order := (p, v) :: !order);
  check
    (Alcotest.list (Alcotest.pair ci ci))
    "program order" [ (0, 1); (4, 2); (0, 3) ] (List.rev !order)

let test_sbuf_newest_wins () =
  let sb = Storebuf.create () in
  ignore (Storebuf.push sb ~paddr:0 ~size:4 ~value:0x11111111);
  ignore (Storebuf.push sb ~paddr:0 ~size:1 ~value:0xff);
  let v = Storebuf.read sb ~mem_read:(fun _ _ -> 0) ~paddr:0 ~size:4 in
  check ci "youngest byte wins" 0x111111ff v

let test_sbuf_overflow () =
  let sb = Storebuf.create ~capacity:2 () in
  ignore (Storebuf.push sb ~paddr:0 ~size:1 ~value:0);
  ignore (Storebuf.push sb ~paddr:1 ~size:1 ~value:0);
  match Storebuf.push sb ~paddr:2 ~size:1 ~value:0 with
  | Error `Overflow -> check ci "stat" 1 sb.Storebuf.overflows
  | Ok () -> Alcotest.fail "expected overflow"

(* ------------------------------------------------------------------ *)
(* Alias hardware                                                      *)
(* ------------------------------------------------------------------ *)

let test_alias_overlap () =
  let a = Alias.create ~slots:4 () in
  Alias.arm a ~slot:1 ~paddr:0x100 ~len:4;
  check cb "disjoint ok" true (Alias.check a ~mask:0b0010 ~paddr:0x104 ~len:4 = None);
  check cb "overlap" true (Alias.check a ~mask:0b0010 ~paddr:0x102 ~len:4 = Some 1);
  (* unchecked slot is invisible *)
  check cb "mask respected" true
    (Alias.check a ~mask:0b0001 ~paddr:0x102 ~len:4 = None);
  Alias.clear a;
  check cb "cleared" true (Alias.check a ~mask:0b1111 ~paddr:0x100 ~len:4 = None)

(* ------------------------------------------------------------------ *)
(* Molecule constraints                                                *)
(* ------------------------------------------------------------------ *)

let test_molecule_constraints () =
  let ld rd = Atom.Load { rd; base = 0; disp = 0; size = 4; spec = false; protect = None; check = 0 } in
  let alu rd = Atom.MovI { rd; imm = 0 } in
  check cb "ok 2 alu + mem + br" true
    (Molecule.check [| alu 20; alu 21; ld 22; Atom.Br { target = 0 } |] = Ok ());
  check cb "3 alu bad" true
    (Result.is_error (Molecule.check [| alu 20; alu 21; alu 22; ld 23 |]));
  check cb "2 mem bad" true (Result.is_error (Molecule.check [| ld 20; ld 21 |]));
  check cb "same def bad" true
    (Result.is_error (Molecule.check [| alu 20; alu 20 |]));
  check cb "5 atoms bad" true
    (Result.is_error
       (Molecule.check [| alu 20; alu 21; ld 22; Atom.Commit 0; Atom.Nop |]
        |> function Ok () -> Molecule.check [| alu 1; alu 2; alu 3; alu 4; alu 5 |] | e -> e))

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)
(* ------------------------------------------------------------------ *)

let test_engine_parallel_semantics () =
  let e = mk_exec () in
  Regfile.set e.Exec.regs 20 1;
  Regfile.set e.Exec.regs 21 2;
  (* swap r20,r21 in one molecule: both reads see pre-molecule state *)
  let c =
    code
      [
        [ Atom.MovR { rd = 20; rs = 21 }; Atom.MovR { rd = 21; rs = 20 } ];
        [ Atom.Exit 0 ];
      ]
  in
  ignore (run_ok e c);
  check ci "r20" 2 (Regfile.get e.Exec.regs 20);
  check ci "r21" 1 (Regfile.get e.Exec.regs 21)

let test_engine_commit_rollback () =
  let e = mk_exec () in
  Regfile.set_committed e.Exec.regs 0 7;
  let c =
    code
      [
        [ Atom.MovI { rd = 0; imm = 99 };
          Atom.Store { rs = Atom.I 0x1234; base = 63; disp = 0x500; size = 4; spec = false; check = 0 } ];
        [ Atom.Exit 0 ];
      ]
  in
  (* note: base r63 is 0, so store goes to 0x500 *)
  ignore (run_ok e c);
  (* no commit executed: memory must not contain the store *)
  check ci "gated" 0 (Machine.Mem.read e.Exec.mem ~size:4 0x500);
  Exec.rollback e;
  check ci "r0 rolled back" 7 (Regfile.get e.Exec.regs 0);
  check cb "sbuf dropped" true (Storebuf.is_empty e.Exec.sbuf);
  (* now with a commit *)
  let c2 =
    code
      [
        [ Atom.MovI { rd = 0; imm = 99 };
          Atom.Store { rs = Atom.I 0x1234; base = 63; disp = 0x500; size = 4; spec = false; check = 0 } ];
        [ Atom.Commit 1 ];
        [ Atom.Exit 0 ];
      ]
  in
  ignore (run_ok e c2);
  check ci "committed store" 0x1234 (Machine.Mem.read e.Exec.mem ~size:4 0x500);
  check ci "committed reg" 99 (Regfile.get_committed e.Exec.regs 0)

let test_engine_forwarding () =
  let e = mk_exec () in
  let c =
    code
      [
        [ Atom.Store { rs = Atom.I 0xaa; base = 63; disp = 0x600; size = 4; spec = false; check = 0 } ];
        [ Atom.Load { rd = 20; base = 63; disp = 0x600; size = 4; spec = false; protect = None; check = 0 } ];
        [ Atom.Exit 0 ];
      ]
  in
  ignore (run_ok e c);
  check ci "forwarded" 0xaa (Regfile.get e.Exec.regs 20)

let test_engine_aluX () =
  let e = mk_exec () in
  Regfile.set e.Exec.regs Abi.eflags X86.Flags.initial;
  let c =
    code
      [
        [ Atom.AluX { op = Atom.XAdd; size = X86.Flags.S32; rd = Some 20;
                      a = Atom.I 0xffffffff; b = Atom.I 1; fr = Abi.eflags; fw = Abi.eflags } ];
        [ Atom.SetCond { rd = 21; cond = X86.Cond.B; fr = Abi.eflags } ];
        [ Atom.Exit 0 ];
      ]
  in
  ignore (run_ok e c);
  check ci "wrap" 0 (Regfile.get e.Exec.regs 20);
  check ci "carry via setcc" 1 (Regfile.get e.Exec.regs 21)

let test_engine_div_fault () =
  let e = mk_exec () in
  let c =
    code
      [
        [ Atom.DivX { signed = false; size = X86.Flags.S32; rd_q = 20; rd_r = 21;
                      hi = 22; lo = 23; divisor = Atom.I 0 } ];
        [ Atom.Exit 0 ];
      ]
  in
  match run_fault e c with
  | Nexn.X86_fault X86.Exn.DE -> ()
  | n -> Alcotest.failf "wrong fault %s" (Nexn.to_string n)

let test_engine_pf_fault () =
  let e = mk_exec () in
  let c =
    code
      [
        [ Atom.Load { rd = 20; base = 63; disp = 0x500000; size = 4; spec = false; protect = None; check = 0 } ];
        [ Atom.Exit 0 ];
      ]
  in
  (* 0x500000 is beyond the 256 mapped pages *)
  match run_fault e c with
  | Nexn.X86_fault (X86.Exn.PF { addr = 0x500000; write = false; _ }) -> ()
  | n -> Alcotest.failf "wrong fault %s" (Nexn.to_string n)

let test_engine_mmio_spec_fault () =
  let e = mk_exec () in
  let mem = e.Exec.mem in
  (* carve an MMIO window and map it *)
  Machine.Bus.add_mmio mem.Machine.Mem.bus
    { Machine.Bus.lo = 0x20000; hi = 0x21000;
      mread = (fun _ _ -> 0x5a); mwrite = (fun _ _ _ -> ()) };
  let spec_load spec =
    code
      [
        [ Atom.Load { rd = 20; base = 63; disp = 0x20010; size = 4; spec; protect = None; check = 0 } ];
        [ Atom.Exit 0 ];
      ]
  in
  (* any translated MMIO load faults, spec bit or not: a non-spec load
     still executes at issue and a later fault in the same region would
     roll back and replay it interpretively, reading the device twice
     (paper §3.4; found by differential fuzzing) *)
  (match run_fault e (spec_load false) with
  | Nexn.Mmio_spec 0x20010 -> ()
  | n -> Alcotest.failf "wrong fault %s" (Nexn.to_string n));
  (match run_fault e (spec_load true) with
  | Nexn.Mmio_spec 0x20010 -> ()
  | n -> Alcotest.failf "wrong fault %s" (Nexn.to_string n));
  check ci "counted" 2 e.Exec.perf.Perf.mmio_spec_faults

let test_engine_alias_fault () =
  let e = mk_exec () in
  (* load hoisted above a store to the same address: load arms slot 0,
     store checks slot 0 *)
  let c =
    code
      [
        [ Atom.Load { rd = 20; base = 63; disp = 0x700; size = 4; spec = true; protect = Some 0; check = 0 } ];
        [ Atom.Store { rs = Atom.I 1; base = 63; disp = 0x700; size = 4; spec = false; check = 0b1 } ];
        [ Atom.Exit 0 ];
      ]
  in
  (match run_fault e c with
  | Nexn.Alias_violation 0 -> ()
  | n -> Alcotest.failf "wrong fault %s" (Nexn.to_string n));
  (* disjoint addresses: no fault *)
  Exec.rollback e;
  let c2 =
    code
      [
        [ Atom.Load { rd = 20; base = 63; disp = 0x700; size = 4; spec = true; protect = Some 0; check = 0 } ];
        [ Atom.Store { rs = Atom.I 1; base = 63; disp = 0x704; size = 4; spec = false; check = 0b1 } ];
        [ Atom.Exit 0 ];
      ]
  in
  ignore (run_ok e c2)

let test_engine_smc_fault () =
  let e = mk_exec () in
  Machine.Mem.protect_page e.Exec.mem ~ppn:9;
  let c =
    code
      [
        [ Atom.Store { rs = Atom.I 1; base = 63; disp = 0x9000; size = 4; spec = false; check = 0 } ];
        [ Atom.Exit 0 ];
      ]
  in
  match run_fault e c with
  | Nexn.Smc (Machine.Mem.Page_level, 0x9000) -> ()
  | n -> Alcotest.failf "wrong fault %s" (Nexn.to_string n)

let test_engine_interrupt_sampling () =
  let e = mk_exec () in
  let n = ref 0 in
  (* pending after 3 molecules *)
  let irq_pending () =
    incr n;
    !n > 3
  in
  let c =
    code
      [
        [ Atom.MovI { rd = 20; imm = 0 } ];
        [ Atom.Br { target = 0 } ];
      ]
  in
  match Exec.run ~irq_pending e c with
  | Exec.Interrupted -> ()
  | _ -> Alcotest.fail "expected interrupt"

let test_engine_runaway () =
  let e = mk_exec () in
  e.Exec.max_molecules_per_run <- 100;
  let c = code [ [ Atom.Br { target = 0 } ] ] in
  match Exec.run e c with
  | Exec.Runaway -> ()
  | _ -> Alcotest.fail "expected runaway"

let test_engine_latency_interlock () =
  let e = mk_exec () in
  e.Exec.enforce_latency <- true;
  (* use a load result in the very next molecule: latency 2 violated *)
  let bad =
    code
      [
        [ Atom.Load { rd = 20; base = 63; disp = 0x100; size = 4; spec = false; protect = None; check = 0 } ];
        [ Atom.MovR { rd = 21; rs = 20 } ];
        [ Atom.Exit 0 ];
      ]
  in
  (match Exec.run e bad with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected latency violation");
  (* with a gap it is fine *)
  let ok =
    code
      [
        [ Atom.Load { rd = 20; base = 63; disp = 0x100; size = 4; spec = false; protect = None; check = 0 } ];
        [ Atom.Nop ];
        [ Atom.MovR { rd = 21; rs = 20 } ];
        [ Atom.Exit 0 ];
      ]
  in
  ignore (run_ok e ok)

let test_engine_byte_field_atoms () =
  let e = mk_exec () in
  Regfile.set e.Exec.regs 20 0x11223344;
  Regfile.set e.Exec.regs 21 0xff;
  let c =
    code
      [
        [ Atom.ExtField { rd = 22; rs = 20; shift = 8; width = 8; sign = false };
          Atom.InsField { rd = 20; rs = 21; shift = 8; width = 8 } ];
        [ Atom.ExtField { rd = 23; rs = 20; shift = 24; width = 8; sign = true } ];
        [ Atom.Exit 0 ];
      ]
  in
  ignore (run_ok e c);
  check ci "extracted AH-style byte" 0x33 (Regfile.get e.Exec.regs 22);
  check ci "inserted byte" 0x1122ff44 (Regfile.get e.Exec.regs 20);
  check ci "sign extend" 0x11 (Regfile.get e.Exec.regs 23)

let suites =
  [
    ( "vliw.regfile",
      [
        Alcotest.test_case "shadow/rollback" `Quick test_shadow_rollback;
        Alcotest.test_case "temps unshadowed" `Quick test_temps_not_shadowed;
      ] );
    ( "vliw.storebuf",
      [
        Alcotest.test_case "gating + forwarding" `Quick test_sbuf_gating;
        Alcotest.test_case "rollback drops" `Quick test_sbuf_rollback_drops;
        Alcotest.test_case "commit order" `Quick test_sbuf_ordering;
        Alcotest.test_case "newest wins" `Quick test_sbuf_newest_wins;
        Alcotest.test_case "overflow" `Quick test_sbuf_overflow;
      ] );
    ( "vliw.alias",
      [ Alcotest.test_case "overlap detection" `Quick test_alias_overlap ] );
    ( "vliw.molecule",
      [ Alcotest.test_case "issue constraints" `Quick test_molecule_constraints ] );
    ( "vliw.exec",
      [
        Alcotest.test_case "parallel semantics" `Quick test_engine_parallel_semantics;
        Alcotest.test_case "commit/rollback" `Quick test_engine_commit_rollback;
        Alcotest.test_case "store-to-load fwd" `Quick test_engine_forwarding;
        Alcotest.test_case "x86-flavoured alu" `Quick test_engine_aluX;
        Alcotest.test_case "div fault" `Quick test_engine_div_fault;
        Alcotest.test_case "page fault" `Quick test_engine_pf_fault;
        Alcotest.test_case "mmio spec fault" `Quick test_engine_mmio_spec_fault;
        Alcotest.test_case "alias fault" `Quick test_engine_alias_fault;
        Alcotest.test_case "smc fault" `Quick test_engine_smc_fault;
        Alcotest.test_case "interrupt sampling" `Quick test_engine_interrupt_sampling;
        Alcotest.test_case "runaway guard" `Quick test_engine_runaway;
        Alcotest.test_case "latency interlock" `Quick test_engine_latency_interlock;
        Alcotest.test_case "ext/ins field" `Quick test_engine_byte_field_atoms;
      ] );
  ]
