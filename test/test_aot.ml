(* Tests for the static code-discovery pass and the ahead-of-time
   translation images: classification of the statically-unresolvable
   (indirect control flow, write-reachable pages), overlapping decode
   starts, entry into the middle of a discovered region, image
   round-trip determinism and corruption rejection, stale-digest
   refusal, runtime SMC invalidation of installed AOT entries, and the
   whole-suite AOT-on/AOT-off architectural differential. *)

module P = Cms_persist
module A = Cms_analysis
module Suite = Workloads.Suite

let check = Alcotest.check

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* Fetch from an assembled listing, faulting outside it — discovery
   must treat the edge of the image like undecodable bytes. *)
let fetch_of (l : X86.Asm.listing) a =
  let base = l.X86.Asm.base and img = l.X86.Asm.image in
  if a >= base && a < base + Bytes.length img then
    Char.code (Bytes.get img (a - base))
  else raise (X86.Exn.Fault (X86.Exn.GP 0))

let discover listing ~entry =
  A.Discover.discover ~fetch:(fetch_of listing) ~entry ()

let reasons_at (d : A.Discover.t) why =
  List.filter_map
    (fun (s : A.Discover.site) ->
      if s.A.Discover.why = why then Some s.A.Discover.addr else None)
    d.A.Discover.deferred

(* ------------------------------------------------------------------ *)
(* Discovery classification                                            *)
(* ------------------------------------------------------------------ *)

let test_indirect_jump_deferred () =
  let l =
    X86.Asm.(
      assemble ~base:0x1000
        [
          mov_ri eax 0x1100;
          jmp_r eax;
          (* never decoded statically: behind the indirect jump *)
          label "dead";
          hlt;
        ])
  in
  let d = discover l ~entry:0x1000 in
  (match reasons_at d A.Discover.Indirect_jump with
  | [ _ ] -> ()
  | sites ->
      Alcotest.failf "expected one indirect-jump site, got %d"
        (List.length sites));
  (* the jump's *target* was never guessed: 0x1100 is not a leader *)
  check Alcotest.bool "target not guessed" false
    (List.mem 0x1100 d.A.Discover.leaders)

let test_indirect_call_continues () =
  let l =
    X86.Asm.(
      assemble ~base:0x1000
        [ mov_ri ebx 0x1200; call_r ebx; mov_ri eax 7; hlt ])
  in
  let d = discover l ~entry:0x1000 in
  check Alcotest.int "one indirect-call site" 1
    (List.length (reasons_at d A.Discover.Indirect_call));
  (* the return point after the call is still walked *)
  check Alcotest.bool "return point is a leader" true
    (List.exists
       (fun (b : A.Discover.block) -> b.A.Discover.stop > 0x1007)
       d.A.Discover.blocks)

let test_decode_fault_deferred () =
  (* 0x0F 0xFF is not a decodable instruction in this subset *)
  let l = X86.Asm.(assemble ~base:0x1000 [ mov_ri eax 1; raw "\x0f\xff" ]) in
  let d = discover l ~entry:0x1000 in
  check Alcotest.int "decode fault deferred" 1
    (List.length (reasons_at d A.Discover.Decode_fault))

let test_overlapping_decode_starts () =
  (* Two leaders decode overlapping byte ranges: 0x1005 starts a
     mov eax, 0xf4909090 and 0x1006 starts inside its immediate
     (nop; nop; nop; hlt).  Both runs must coexist.

       0x1000  jmp  0x1010
       0x1005  mov  eax, 0xf4909090   (imm bytes: 90 90 90 f4)
       0x100a  ret
       0x100b  5 x nop
       0x1010  call 0x1005
       0x1015  jmp  0x1006 *)
  let l =
    X86.Asm.(
      assemble ~base:0x1000
        [
          raw "\xe9\x0b\x00\x00\x00";
          raw "\xb8\x90\x90\x90\xf4";
          raw "\xc3";
          raw "\x90\x90\x90\x90\x90";
          raw "\xe8\xf0\xff\xff\xff";
          raw "\xe9\xec\xff\xff\xff";
        ])
  in
  let d = discover l ~entry:0x1000 in
  check Alcotest.bool "outer start is a leader" true
    (List.mem 0x1005 d.A.Discover.leaders);
  check Alcotest.bool "overlapping inner start is a leader" true
    (List.mem 0x1006 d.A.Discover.leaders);
  (* the inner decode saw the nops and the hlt as distinct insns *)
  check Alcotest.bool "both decodes counted" true
    (d.A.Discover.insn_count >= 8);
  List.iter
    (fun (b : A.Discover.block) ->
      if b.A.Discover.stop <= b.A.Discover.start then
        Alcotest.failf "degenerate block %#x..%#x" b.A.Discover.start
          b.A.Discover.stop)
    d.A.Discover.blocks

let test_entry_into_middle_of_region () =
  (* 0x1005 is in the middle of the entry block and also a branch
     target: it must become its own leader without re-walking. *)
  let l =
    X86.Asm.(
      assemble ~base:0x1000
        [
          mov_ri eax 1;
          (* 0x1005: *)
          label "mid";
          mov_ri ebx 2;
          cmp_ri eax 0;
          jne "mid";
          hlt;
        ])
  in
  let d = discover l ~entry:0x1000 in
  check Alcotest.bool "mid-region target is a leader" true
    (List.mem 0x1005 d.A.Discover.leaders);
  check Alcotest.bool "mid leader is statically translatable" true
    (List.mem 0x1005 (A.Discover.static_leaders d))

let test_smc_page_demoted () =
  (* a statically-resolved store lands on the code's own page: every
     leader there is demoted to dynamic-only *)
  let l =
    X86.Asm.(
      assemble ~base:0x1000
        [ mov_mi (m 0x1040) 0x90; mov_ri eax 3; hlt ])
  in
  let d = discover l ~entry:0x1000 in
  check (Alcotest.list Alcotest.int) "code page demoted" [ 1 ]
    d.A.Discover.smc_pages;
  check (Alcotest.list Alcotest.int) "nothing static" []
    (A.Discover.static_leaders d);
  check Alcotest.bool "smc-page deferral recorded" true
    (reasons_at d A.Discover.Smc_page <> []);
  check Alcotest.int "all bytes dynamic-only" 0 d.A.Discover.bytes_static

let test_region_straddling_smc_page () =
  (* code on page 1 stores into page 2, which also holds code the walk
     reaches: page 2 is demoted, page 1 stays static *)
  let l =
    X86.Asm.(
      assemble ~base:0x1000
        [
          mov_mi (m 0x2800) 0x1234;
          jmp "over";
          label "over";
          mov_ri eax 9;
          jmp_abs 0x2000;
          align 4096;
          (* 0x2000: *)
          hlt;
        ])
  in
  let d = discover l ~entry:0x1000 in
  check (Alcotest.list Alcotest.int) "written page demoted" [ 2 ]
    d.A.Discover.smc_pages;
  check Alcotest.bool "entry page stays static" true
    (List.mem 0x1000 (A.Discover.static_leaders d));
  check Alcotest.bool "leader on written page deferred" false
    (List.mem 0x2000 (A.Discover.static_leaders d));
  check Alcotest.bool "deferred bytes accounted" true
    (d.A.Discover.bytes_deferred > 0)

let test_blind_store_counted () =
  let l =
    X86.Asm.(
      assemble ~base:0x1000
        [ mov_ri edi 0x8000; mov_mr (mb edi) eax; hlt ])
  in
  let d = discover l ~entry:0x1000 in
  check Alcotest.bool "blind store counted" true
    (d.A.Discover.blind_stores >= 1);
  (* a through-register store must NOT demote any page statically *)
  check (Alcotest.list Alcotest.int) "no page demoted" []
    d.A.Discover.smc_pages

let test_walk_budget_truncates () =
  let l =
    X86.Asm.(
      assemble ~base:0x1000
        (List.concat (List.init 64 (fun _ -> [ inc_r eax ])) @ [ hlt ]))
  in
  let d = A.Discover.discover ~max_insns:8 ~fetch:(fetch_of l) ~entry:0x1000 () in
  check Alcotest.bool "truncated flagged" true d.A.Discover.truncated;
  check Alcotest.bool "budget respected" true (d.A.Discover.insn_count <= 9)

(* ------------------------------------------------------------------ *)
(* Image round-trip and rejection                                      *)
(* ------------------------------------------------------------------ *)

let counted_loop ~iters =
  X86.Asm.(
    assemble ~base:0x1000
      [
        mov_ri ecx iters;
        mov_ri eax 0;
        label "l";
        add_ri eax 3;
        dec_r ecx;
        jne "l";
        hlt;
      ])

let build_image ?(cfg = Cms.Config.debug) ?(listing = counted_loop ~iters:50)
    () =
  let c = Cms.create ~cfg () in
  Cms.load c listing;
  Cms.boot c ~entry:0x1000;
  (c, (A.Aotgen.build ~label:"test" c ~entry:0x1000).A.Aotgen.image)

let test_image_roundtrip_deterministic () =
  let _, img1 = build_image () in
  let _, img2 = build_image () in
  let s1 = P.Aot.to_string img1 and s2 = P.Aot.to_string img2 in
  check Alcotest.bool "two builds byte-identical" true (s1 = s2);
  let s1' = P.Aot.to_string (P.Aot.of_string s1) in
  check Alcotest.bool "decode/encode is the identity" true (s1 = s1')

let test_image_corruption_rejected () =
  let _, img = build_image () in
  let s = Bytes.of_string (P.Aot.to_string img) in
  let i = Bytes.length s / 2 in
  Bytes.set s i (Char.chr (Char.code (Bytes.get s i) lxor 0x41));
  match P.Aot.of_string (Bytes.to_string s) with
  | _ -> Alcotest.fail "corrupted image was accepted"
  | exception P.Codec.Corrupt _ -> ()

let test_stale_digest_refused () =
  let _, img = build_image () in
  let c2 = Cms.create ~cfg:Cms.Config.debug () in
  Cms.load c2 (counted_loop ~iters:50);
  Cms.boot c2 ~entry:0x1000;
  (* one changed code byte: the whole image must be refused, naming the
     page *)
  let phys = (Cms.mem c2).Machine.Mem.phys in
  Machine.Phys.write8 phys 0x1003 (Machine.Phys.read8 phys 0x1003 lxor 1);
  match P.Aot.install c2 img with
  | _ -> Alcotest.fail "stale image was installed"
  | exception P.Aot.Stale msg ->
      if not (contains msg "page 0x1") then
        Alcotest.failf "diagnostic %S does not name the stale page" msg

let test_config_conflict_refused () =
  let _, img = build_image () in
  let cfg = { Cms.Config.debug with Cms.Config.enable_reorder = false } in
  let c2 = Cms.create ~cfg () in
  Cms.load c2 (counted_loop ~iters:50);
  Cms.boot c2 ~entry:0x1000;
  match P.Aot.install c2 img with
  | _ -> Alcotest.fail "config-mismatched image was installed"
  | exception P.Aot.Stale msg ->
      if not (contains msg "config") then
        Alcotest.failf "diagnostic %S does not mention the config" msg

let test_install_and_run_from_image () =
  let listing = counted_loop ~iters:50 in
  let _, img = build_image ~listing () in
  let c = Cms.create ~cfg:Cms.Config.debug () in
  Cms.load c listing;
  Cms.boot c ~entry:0x1000;
  let rep = P.Aot.install c img in
  check Alcotest.bool "something installed" true (rep.P.Aot.installed > 0);
  check (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.string))
    "nothing rejected" [] rep.P.Aot.rejected;
  let s = Cms.stats c in
  check Alcotest.int "aot_loaded matches report" rep.P.Aot.installed
    s.Cms.Stats.aot_loaded;
  (match Cms.run ~max_insns:10_000 c with
  | Cms.Engine.Halted -> ()
  | _ -> Alcotest.fail "workload did not halt");
  check Alcotest.int "checksum" 150 (Cms.gpr c X86.Regs.eax);
  check Alcotest.bool "AOT entries actually ran" true
    (s.Cms.Stats.aot_hits > 0);
  check Alcotest.bool "no dynamic translation needed" true
    (s.Cms.Stats.translations = 0);
  check Alcotest.bool "retired charged to AOT" true
    (s.Cms.Stats.aot_x86_retired > 0)

let test_smc_invalidates_aot_entry () =
  (* The entry block patches the immediate of an instruction inside a
     *second* pre-minted region, through a register (invisible to the
     static scan, so both regions ARE pre-minted), then jumps there.
     The write must invalidate the stale AOT translation exactly like
     a dynamic one: the run retires the *patched* semantics. *)
  let listing =
    X86.Asm.(
      assemble ~base:0x1000
        [
          mov_ri edi 0x1101;  (* imm byte of f's mov_ri eax *)
          mov8_mi (mb edi) 42;
          jmp_abs 0x1100;
          align 256;
          (* 0x1100, region f: *)
          mov_ri eax 41;
          hlt;
        ])
  in
  let c = Cms.create ~cfg:Cms.Config.debug () in
  Cms.load c listing;
  Cms.boot c ~entry:0x1000;
  let _, img = build_image ~listing () in
  let rep = P.Aot.install c img in
  check Alcotest.bool "both regions pre-minted despite blind store" true
    (rep.P.Aot.installed >= 2);
  (match Cms.run ~max_insns:10_000 c with
  | Cms.Engine.Halted -> ()
  | _ -> Alcotest.fail "did not halt");
  check Alcotest.int "patched semantics retired, not the stale image" 42
    (Cms.gpr c X86.Regs.eax);
  check Alcotest.bool "AOT entry invalidated by SMC" true
    ((Cms.stats c).Cms.Stats.aot_invalidated > 0)

(* ------------------------------------------------------------------ *)
(* Whole-suite differential and coverage                               *)
(* ------------------------------------------------------------------ *)

let all_workloads () =
  Workloads.Progs_boot.all @ Workloads.Progs_spec.all
  @ Workloads.Progs_apps.all @ Workloads.Progs_quake.all
  @ [ Workloads.Progs_quake.blt_driver () ]
  @ Workloads.Progs_kernel.all

let run_warm ?(cfg = Cms.Config.default) (w : Suite.t) =
  let c = Suite.prepare ~cfg w in
  let img = (A.Aotgen.build ~label:w.Suite.name c ~entry:w.Suite.entry).A.Aotgen.image in
  let img = P.Aot.of_string (P.Aot.to_string img) in
  ignore (P.Aot.install c img : P.Aot.install_report);
  Suite.run_prepared w c

let test_suite_aot_differential () =
  List.iter
    (fun (w : Suite.t) ->
      let cold = Suite.run ~cfg:Cms.Config.default w in
      let warm = run_warm w in
      if w.Suite.uses_timer then
        (* interrupt delivery lands on consistent exits (§3.3), and AOT
           regions tile the code differently than profile-guided
           dynamic ones, so timer-driven runs are compared by their
           architectural checksum — the soak drill's policy
           ([compare_mem:(not uses_timer)]) *)
        check Alcotest.int
          (Fmt.str "%s: checksum, aot on vs off" w.Suite.name)
          (Cms.gpr cold X86.Regs.eax)
          (Cms.gpr warm X86.Regs.eax)
      else
        let ah t = P.Digests.arch_hex (P.Digests.arch t) in
        check Alcotest.string
          (Fmt.str "%s: arch digest, aot on vs off" w.Suite.name)
          (ah cold) (ah warm))
    (all_workloads ())

let test_compute_workload_coverage () =
  let w =
    List.find
      (fun w -> w.Suite.name = "026.compress (Linux)")
      (all_workloads ())
  in
  let t = run_warm w in
  let s = Cms.stats t in
  let cover =
    float_of_int s.Cms.Stats.aot_x86_retired /. float_of_int (Cms.retired t)
  in
  if cover < 0.9 then
    Alcotest.failf "AOT coverage %.1f%% < 90%% (retired=%d from-aot=%d)"
      (cover *. 100.0) (Cms.retired t) s.Cms.Stats.aot_x86_retired

let suites =
  [
    ( "aot-discovery",
      [
        Alcotest.test_case "indirect jump deferred" `Quick
          test_indirect_jump_deferred;
        Alcotest.test_case "indirect call continues past" `Quick
          test_indirect_call_continues;
        Alcotest.test_case "decode fault deferred" `Quick
          test_decode_fault_deferred;
        Alcotest.test_case "overlapping decode starts" `Quick
          test_overlapping_decode_starts;
        Alcotest.test_case "entry into middle of region" `Quick
          test_entry_into_middle_of_region;
        Alcotest.test_case "store demotes code page" `Quick
          test_smc_page_demoted;
        Alcotest.test_case "region straddling written page" `Quick
          test_region_straddling_smc_page;
        Alcotest.test_case "blind store counted, not demoted" `Quick
          test_blind_store_counted;
        Alcotest.test_case "walk budget truncates" `Quick
          test_walk_budget_truncates;
      ] );
    ( "aot-image",
      [
        Alcotest.test_case "round-trip deterministic" `Quick
          test_image_roundtrip_deterministic;
        Alcotest.test_case "corruption rejected" `Quick
          test_image_corruption_rejected;
        Alcotest.test_case "stale digest refused" `Quick
          test_stale_digest_refused;
        Alcotest.test_case "config conflict refused" `Quick
          test_config_conflict_refused;
        Alcotest.test_case "install and run from image" `Quick
          test_install_and_run_from_image;
        Alcotest.test_case "SMC invalidates AOT entry" `Quick
          test_smc_invalidates_aot_entry;
      ] );
    ( "aot-suite",
      [
        Alcotest.test_case "28-workload aot on/off differential" `Slow
          test_suite_aot_differential;
        Alcotest.test_case "compute workload >=90% from AOT" `Quick
          test_compute_workload_coverage;
      ] );
  ]
