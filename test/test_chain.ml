(* Closure-compiled molecules and direct block chaining.

   The steady-state execution tier ({!Cms.Config.closure_exec}) and
   the chained-transfer loop ({!Cms.Config.chain_exits}) both claim to
   be observationally invisible: same guest-visible state, same
   cost-model charges, same fault and SMC event counts, whether on or
   off.  The differential suite pins that claim over the whole
   workload corpus; the unit cases pin every unlink edge of the chain
   bookkeeping (eviction, SMC, chaos storms, AOT round-trips); the
   fuzz slice keeps the generated-program oracle honest with both
   features forced on. *)

module Suite = Workloads.Suite
module Tcache = Cms.Tcache
module Srng = Cms_fuzz.Srng
module Gen = Cms_fuzz.Gen
module Oracle = Cms_fuzz.Oracle

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool

let all_workloads () =
  Workloads.Progs_boot.all @ Workloads.Progs_spec.all
  @ Workloads.Progs_apps.all @ Workloads.Progs_quake.all
  @ [ Workloads.Progs_quake.blt_driver () ]
  @ Workloads.Progs_kernel.all

(* Everything guest-visible or cost-model-visible.  Only the new chain
   counters are normalized out: closure compilation and chain
   following are bookkept, but must change nothing else. *)
let digest (c : Cms.t) =
  let s = Cms.stats c in
  let s_norm =
    {
      s with
      Cms.Stats.closures_compiled = 0;
      chained_exits_taken = 0;
      chain_unlinks_evict = 0;
      chain_unlinks_demote = 0;
      chain_unlinks_smc = 0;
      chain_unlinks_aot = 0;
      chain_unlinks_chaos = 0;
      (* background-translation queue counters depend on worker-domain
         timing, never on guest-visible behavior *)
      bg_enqueued = 0;
      bg_prefetched = 0;
      bg_deduped = 0;
      bg_dropped = 0;
      bg_compiled = 0;
      bg_installed = 0;
      bg_stale = 0;
      bg_waits = 0;
      bg_unready = 0;
      bg_failed = 0;
      bg_overlap_insns = 0;
    }
  in
  let m = Cms.mem c in
  let bus = m.Machine.Mem.bus in
  ( ( List.map (Cms.gpr c) X86.Regs.all,
      Cms.eip c,
      Cms.eflags c,
      Digest.bytes m.Machine.Mem.phys.Machine.Phys.data ),
    (s_norm, Cms.total_molecules c, Cms.retired c),
    ( m.Machine.Mem.smc_events,
      m.Machine.Mem.page_prot_faults,
      m.Machine.Mem.dma_smc_events,
      bus.Machine.Bus.mmio_reads,
      bus.Machine.Bus.mmio_writes,
      bus.Machine.Bus.port_ops ) )

let differential (w : Suite.t) () =
  let run cfg = Suite.run ~cfg w in
  let full =
    run
      {
        Cms.Config.default with
        Cms.Config.closure_exec = true;
        chain_exits = true;
      }
  in
  let no_closures =
    run { Cms.Config.default with Cms.Config.closure_exec = false }
  in
  let no_chain =
    run { Cms.Config.default with Cms.Config.chain_exits = false }
  in
  check cb (w.Suite.name ^ ": closures off identical") true
    (digest full = digest no_closures);
  check cb (w.Suite.name ^ ": chain off identical") true
    (digest full = digest no_chain);
  (* and the full VLIW perf counters agree too *)
  check cb (w.Suite.name ^ ": identical perf") true
    (Cms.perf full = Cms.perf no_closures && Cms.perf full = Cms.perf no_chain)

let differential_tests =
  List.map
    (fun w -> Alcotest.test_case w.Suite.name `Slow (differential w))
    (all_workloads ())

(* ------------------------------------------------------------------ *)
(* Chain bookkeeping (unit level, synthetic records)                   *)
(* ------------------------------------------------------------------ *)

let mk_region ~entry =
  {
    Cms.Region.entry;
    insns = [||];
    cont = None;
    src_ranges = [ (entry, entry + 8) ];
  }

let insert tc ~entry =
  Tcache.insert tc ~entry
    ~code:(Cms.Codegen.zero_insn_code ~entry)
    ~region:(mk_region ~entry)
    ~policy:(Cms.Policy.default Cms.Config.default)
    ~snapshot:None

let exit0 (tr : Tcache.trans) = tr.Tcache.code.Vliw.Code.exits.(0)

(* What the engine's patch path does: mark the exit chained and record
   the reverse link for eager teardown. *)
let chain a b =
  (exit0 a).Vliw.Code.chain <- Vliw.Code.Chained b.Tcache.id;
  Tcache.link ~src:a ~exit_idx:0 ~dst:b

let test_unlink_on_eviction () =
  let tc = Tcache.create ~capacity:8 in
  let a = insert tc ~entry:0x1000 and b = insert tc ~entry:0x2000 in
  chain a b;
  check ci "one chained exit" 1 (List.length (Tcache.chained_exits tc));
  (* the eviction path: drop [b] from the cache *)
  Tcache.invalidate tc b ~keep_in_group:false;
  check cb "a's exit unchained" true
    ((exit0 a).Vliw.Code.chain = Vliw.Code.Unchained);
  check ci "counted under eviction" 1 tc.Tcache.unlinks_evict;
  check ci "no chained exits left" 0 (List.length (Tcache.chained_exits tc));
  (* idempotent: the link is gone, a second death cannot recount it *)
  Tcache.drop tc b ~cause:Tcache.Uevict;
  check ci "counted once" 1 tc.Tcache.unlinks_evict

let test_unlink_on_smc () =
  let c = Cms.create () in
  let tc = c.Cms.Engine.tcache in
  let a = insert tc ~entry:0x1000 and b = insert tc ~entry:0x2000 in
  chain a b;
  (* the SMC path: a code write invalidates [b] through the Smc layer *)
  Cms.Smc.invalidate c.Cms.Engine.smc b ~keep_in_group:false;
  check cb "a's exit unchained" true
    ((exit0 a).Vliw.Code.chain = Vliw.Code.Unchained);
  check ci "counted under smc" 1 tc.Tcache.unlinks_smc;
  check ci "not counted under eviction" 0 tc.Tcache.unlinks_evict;
  Cms.Engine.sync_host_stats c;
  check ci "surfaced in stats" 1 (Cms.stats c).Cms.Stats.chain_unlinks_smc

let test_flush_unlinks_all () =
  let tc = Tcache.create ~capacity:8 in
  let a = insert tc ~entry:0x1000 and b = insert tc ~entry:0x2000 in
  chain a b;
  chain b a;
  check ci "two chained exits" 2 (List.length (Tcache.chained_exits tc));
  Tcache.flush tc;
  check ci "both counted under eviction" 2 tc.Tcache.unlinks_evict;
  check cb "exits reset" true
    ((exit0 a).Vliw.Code.chain = Vliw.Code.Unchained
    && (exit0 b).Vliw.Code.chain = Vliw.Code.Unchained)

let test_unlink_nth () =
  let tc = Tcache.create ~capacity:8 in
  check cb "empty cache: nothing to cut" false (Tcache.unlink_nth tc ~k:7);
  let a = insert tc ~entry:0x1000 and b = insert tc ~entry:0x2000 in
  chain a b;
  chain b a;
  (* canonical order is (id, exit): k = 1 names b's exit *)
  check cb "cut something" true (Tcache.unlink_nth tc ~k:1);
  check cb "b's exit cut" true
    ((exit0 b).Vliw.Code.chain = Vliw.Code.Unchained);
  check cb "a's exit intact" true
    ((exit0 a).Vliw.Code.chain = Vliw.Code.Chained b.Tcache.id);
  (* selection wraps modulo the live link count *)
  check cb "cut the survivor" true (Tcache.unlink_nth tc ~k:5);
  check cb "a's exit cut too" true
    ((exit0 a).Vliw.Code.chain = Vliw.Code.Unchained);
  check ci "both counted under chaos" 2 tc.Tcache.unlinks_chaos;
  check cb "nothing left to cut" false (Tcache.unlink_nth tc ~k:0)

let unit_tests =
  [
    Alcotest.test_case "unlink on eviction" `Quick test_unlink_on_eviction;
    Alcotest.test_case "unlink on smc" `Quick test_unlink_on_smc;
    Alcotest.test_case "flush unlinks all" `Quick test_flush_unlinks_all;
    Alcotest.test_case "unlink-storm selection" `Quick test_unlink_nth;
  ]

(* ------------------------------------------------------------------ *)
(* AOT round trip: chained exits ship as Unchained, re-chain locally   *)
(* ------------------------------------------------------------------ *)

let test_aot_chain_reset () =
  let w = List.hd Workloads.Progs_spec.all in
  let cfg = Cms.Config.default in
  let c = Suite.prepare ~cfg w in
  let img =
    (Cms_analysis.Aotgen.build ~label:w.Suite.name c ~entry:w.Suite.entry)
      .Cms_analysis.Aotgen.image
  in
  (* the real boot path: through the stable codec *)
  let img = Cms_persist.Aot.of_string (Cms_persist.Aot.to_string img) in
  ignore (Cms_persist.Aot.install c img : Cms_persist.Aot.install_report);
  check ci "no chained exits after install" 0
    (List.length (Tcache.chained_exits c.Cms.Engine.tcache));
  let c = Suite.run_prepared w c in
  let s = Cms.stats c in
  check cb "re-chained locally" true (s.Cms.Stats.chain_patches > 0);
  check cb "chained transfers taken" true (s.Cms.Stats.chained_exits_taken > 0)

(* The live counters move on an ordinary hot workload too. *)
let test_counters_move () =
  let c = Suite.run ~cfg:Cms.Config.default (List.hd Workloads.Progs_spec.all) in
  let s = Cms.stats c in
  check cb "closures compiled" true (s.Cms.Stats.closures_compiled > 0);
  check cb "chained exits taken" true (s.Cms.Stats.chained_exits_taken > 0)

let aot_tests =
  [
    Alcotest.test_case "aot round-trip resets chains" `Slow
      test_aot_chain_reset;
    Alcotest.test_case "counters move when hot" `Quick test_counters_move;
  ]

(* ------------------------------------------------------------------ *)
(* Fuzz slice with closures + chaining forced on in oracle B           *)
(* ------------------------------------------------------------------ *)

let test_fuzz_slice () =
  let rng = Srng.create 0xc4a1 in
  for index = 0 to 23 do
    let case = Gen.generate (Srng.split rng) ~seed:31 ~index in
    match Oracle.check (Oracle.render case) with
    | Oracle.Pass | Oracle.Hang -> ()
    | Oracle.Divergence d -> Alcotest.failf "case %d diverges: %s" index d
  done

let fuzz_tests =
  [ Alcotest.test_case "24-case slice" `Slow test_fuzz_slice ]

let suites =
  [
    ("chain.unit", unit_tests);
    ("chain.aot", aot_tests);
    ("chain.fuzz", fuzz_tests);
    ("chain.differential", differential_tests);
  ]
