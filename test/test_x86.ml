(* Tests for the x86 substrate: flags semantics, decoder/encoder
   round-trips (including against hand-checked real IA-32 byte
   sequences), and the assembler. *)

open X86

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int

(* ------------------------------------------------------------------ *)
(* Flags                                                               *)
(* ------------------------------------------------------------------ *)

let f0 = Flags.initial

let test_add_carry () =
  let r, f = Flags.add S32 f0 0xffffffff 1 in
  check ci "wraps" 0 r;
  check cb "CF" true (Flags.cf f);
  check cb "ZF" true (Flags.zf f);
  check cb "OF" false (Flags.of_ f)

let test_add_overflow () =
  let r, f = Flags.add S32 f0 0x7fffffff 1 in
  check ci "result" 0x80000000 r;
  check cb "OF" true (Flags.of_ f);
  check cb "CF" false (Flags.cf f);
  check cb "SF" true (Flags.sf f)

let test_sub_borrow () =
  let r, f = Flags.sub S32 f0 0 1 in
  check ci "result" 0xffffffff r;
  check cb "CF" true (Flags.cf f);
  check cb "SF" true (Flags.sf f);
  check cb "OF" false (Flags.of_ f)

let test_sub_overflow () =
  let _, f = Flags.sub S32 f0 0x80000000 1 in
  check cb "OF" true (Flags.of_ f);
  check cb "CF" false (Flags.cf f)

let test_inc_preserves_cf () =
  let _, f = Flags.add S32 f0 0xffffffff 1 in
  (* CF set *)
  let _, f' = Flags.inc S32 f 5 in
  check cb "CF preserved" true (Flags.cf f');
  let _, f'' = Flags.dec S32 f 0 in
  check cb "CF preserved by dec" true (Flags.cf f'')

let test_logic_clears () =
  let _, f = Flags.add S32 f0 0xffffffff 1 in
  let r, f = Flags.and_ S32 f 0xf0 0x0f in
  check ci "and" 0 r;
  check cb "CF cleared" false (Flags.cf f);
  check cb "OF cleared" false (Flags.of_ f);
  check cb "ZF" true (Flags.zf f)

let test_parity () =
  let _, f = Flags.or_ S32 f0 0x3 0 in
  check cb "0x3 parity even" true (Flags.pf f);
  let _, f = Flags.or_ S32 f0 0x7 0 in
  check cb "0x7 parity odd" false (Flags.pf f);
  let _, f = Flags.or_ S32 f0 0x100 0 in
  (* parity looks at low byte only *)
  check cb "low byte only" true (Flags.pf f)

let test_shl () =
  let r, f = Flags.shl S32 f0 0x80000001 1 in
  check ci "result" 2 r;
  check cb "CF = bit shifted out" true (Flags.cf f);
  let r, f = Flags.shl S32 f0 1 0 in
  check ci "count 0 identity" 1 r;
  check cb "count 0 flags unchanged" false (Flags.cf f)

let test_sar_signed () =
  let r, _ = Flags.sar S32 f0 0x80000000 4 in
  check ci "sign extends" 0xf8000000 r;
  let r, _ = Flags.shr S32 f0 0x80000000 4 in
  check ci "shr zero extends" 0x08000000 r

let test_mul_wide () =
  let lo, hi, f = Flags.mul S32 f0 0xffffffff 0xffffffff in
  check ci "lo" 1 lo;
  check ci "hi" 0xfffffffe hi;
  check cb "CF" true (Flags.cf f);
  let lo, hi, f = Flags.mul S32 f0 2 3 in
  check ci "small lo" 6 lo;
  check ci "small hi" 0 hi;
  check cb "small CF clear" false (Flags.cf f)

let test_imul_wide () =
  (* -1 * -1 = 1 *)
  let lo, hi, f = Flags.imul S32 f0 0xffffffff 0xffffffff in
  check ci "lo" 1 lo;
  check ci "hi" 0 hi;
  check cb "no overflow" false (Flags.cf f);
  (* 0x10000 * 0x10000 overflows signed 32 *)
  let lo, _, f = Flags.imul S32 f0 0x10000 0x10000 in
  check ci "lo wraps" 0 lo;
  check cb "overflow" true (Flags.cf f)

let test_div () =
  (match Flags.div S32 0 100 7 with
  | Some (q, r) ->
      check ci "q" 14 q;
      check ci "r" 2 r
  | None -> Alcotest.fail "div faulted");
  check cb "div by zero" true (Flags.div S32 0 1 0 = None);
  (* hi:lo = 2^32, divisor 1 -> quotient overflow *)
  check cb "quotient overflow" true (Flags.div S32 1 0 1 = None)

let test_idiv () =
  (match Flags.idiv S32 0xffffffff 0xffffff9c 7 with
  (* -100 / 7 = -14 rem -2, truncation toward zero *)
  | Some (q, r) ->
      check ci "q" 0xfffffff2 q;
      check ci "r" 0xfffffffe r
  | None -> Alcotest.fail "idiv faulted");
  (* INT_MIN / -1 overflows *)
  check cb "overflow" true (Flags.idiv S32 0xffffffff 0x80000000 0xffffffff = None)

let test_cond_negate () =
  List.iter
    (fun c ->
      List.iter
        (fun f ->
          check cb "negate" (not (Flags.eval_cond c f))
            (Flags.eval_cond (Cond.negate c) f))
        [ 0; Flags.cf_mask; Flags.zf_mask; Flags.sf_mask; Flags.of_mask;
          Flags.sf_mask lor Flags.of_mask; Flags.cf_mask lor Flags.zf_mask ])
    Cond.all

let flags_tests =
  [
    Alcotest.test_case "add carry" `Quick test_add_carry;
    Alcotest.test_case "add overflow" `Quick test_add_overflow;
    Alcotest.test_case "sub borrow" `Quick test_sub_borrow;
    Alcotest.test_case "sub overflow" `Quick test_sub_overflow;
    Alcotest.test_case "inc preserves CF" `Quick test_inc_preserves_cf;
    Alcotest.test_case "logic clears CF/OF" `Quick test_logic_clears;
    Alcotest.test_case "parity" `Quick test_parity;
    Alcotest.test_case "shl" `Quick test_shl;
    Alcotest.test_case "sar/shr" `Quick test_sar_signed;
    Alcotest.test_case "mul wide" `Quick test_mul_wide;
    Alcotest.test_case "imul wide" `Quick test_imul_wide;
    Alcotest.test_case "div" `Quick test_div;
    Alcotest.test_case "idiv" `Quick test_idiv;
    Alcotest.test_case "cond negate" `Quick test_cond_negate;
  ]

(* ------------------------------------------------------------------ *)
(* Decoder against hand-checked real IA-32 bytes                       *)
(* ------------------------------------------------------------------ *)

let decode_bytes ?(at = 0x1000) lst =
  let arr = Array.of_list lst in
  let fetch a = arr.(a - at) in
  X86.Decode.decode ~fetch at

let insn_eq = Alcotest.testable X86.Insn.pp ( = )

let test_decode_known () =
  let open Insn in
  let cases =
    [
      (* mov eax, ebx = 89 D8 *)
      ([ 0x89; 0xd8 ], Mov (S32, RM_R (R Regs.eax, Regs.ebx)), 2);
      (* add eax, 0x12345678 = 05 78 56 34 12 *)
      ( [ 0x05; 0x78; 0x56; 0x34; 0x12 ],
        Arith (Add, S32, RM_I (R Regs.eax, 0x12345678)),
        5 );
      (* mov eax, [ebx+ecx*4+4] = 8B 44 8B 04 *)
      ( [ 0x8b; 0x44; 0x8b; 0x04 ],
        Mov (S32, R_RM (Regs.eax, M (mem ~base:Regs.ebx ~index:(Regs.ecx, 4) 4))),
        4 );
      (* imul eax, ebx = 0F AF C3 *)
      ([ 0x0f; 0xaf; 0xc3 ], Imul2 (Regs.eax, R Regs.ebx), 3);
      (* push ebp = 55 *)
      ([ 0x55 ], Push (PushR Regs.ebp), 1);
      (* mov [ebp-4], eax = 89 45 FC *)
      ( [ 0x89; 0x45; 0xfc ],
        Mov (S32, RM_R (M (mem ~base:Regs.ebp (-4)), Regs.eax)),
        3 );
      (* ret = C3 *)
      ([ 0xc3 ], Ret 0, 1);
      (* rep movsd = F3 A5 *)
      ([ 0xf3; 0xa5 ], Strop { rep = true; op = Movs; size = S32 }, 2);
      (* xor ecx, ecx = 31 C9 *)
      ([ 0x31; 0xc9 ], Arith (Xor, S32, RM_R (R Regs.ecx, Regs.ecx)), 2);
      (* int 0x21 = CD 21 *)
      ([ 0xcd; 0x21 ], Int 0x21, 2);
      (* sub esp, 8 via 83 EC 08 (sign-extended imm8 form) *)
      ([ 0x83; 0xec; 0x08 ], Arith (Sub, S32, RM_I (R Regs.esp, 8)), 3);
      (* mov byte [eax], 7 = C6 00 07 *)
      ([ 0xc6; 0x00; 0x07 ], Mov (S8, RM_I (M (mem ~base:Regs.eax 0), 7)), 3);
    ]
  in
  List.iter
    (fun (bytes, expected, len) ->
      let f = decode_bytes bytes in
      check insn_eq "insn" expected f.Decode.insn;
      check ci "len" len f.Decode.len)
    cases

let test_decode_rel8 () =
  (* jnz -2 at 0x1000: 75 FE -> target 0x1000 *)
  let f = decode_bytes [ 0x75; 0xfe ] in
  check insn_eq "jnz self" (Insn.Jcc (Cond.NE, 0x1000)) f.Decode.insn;
  (* jmp +0 short: EB 00 -> target 0x1002 *)
  let f = decode_bytes [ 0xeb; 0x00 ] in
  check insn_eq "jmp next" (Insn.Jmp 0x1002) f.Decode.insn

let test_decode_ud () =
  (* 0x0F 0xFF is not in the subset *)
  match decode_bytes [ 0x0f; 0xff ] with
  | exception Exn.Fault Exn.UD -> ()
  | _ -> Alcotest.fail "expected #UD"

let test_decode_imm_off () =
  (* mov eax, imm32: immediate at offset 1 *)
  let f = decode_bytes [ 0xb8; 1; 2; 3; 4 ] in
  check (Alcotest.option ci) "imm off" (Some 1) f.Decode.imm32_off;
  (* add [ebx+4], imm32 : 81 43 04 <imm> -> offset 3 *)
  let f = decode_bytes [ 0x81; 0x43; 0x04; 9; 9; 9; 9 ] in
  check (Alcotest.option ci) "imm off" (Some 3) f.Decode.imm32_off;
  (* branch displacement is not a data immediate *)
  let f = decode_bytes [ 0xe9; 0; 0; 0; 0 ] in
  check (Alcotest.option ci) "no imm" None f.Decode.imm32_off

let decode_tests =
  [
    Alcotest.test_case "known encodings" `Quick test_decode_known;
    Alcotest.test_case "rel8 branches" `Quick test_decode_rel8;
    Alcotest.test_case "#UD on unknown" `Quick test_decode_ud;
    Alcotest.test_case "imm32 offsets" `Quick test_decode_imm_off;
  ]

(* ------------------------------------------------------------------ *)
(* Property: encode/decode round trip                                  *)
(* ------------------------------------------------------------------ *)

let gen_gpr = QCheck.Gen.int_range 0 7
let gen_imm32 = QCheck.Gen.(map (fun i -> i land 0xffffffff) (int_bound max_int))

let gen_imm32' =
  QCheck.Gen.(
    oneof
      [
        int_range 0 255;
        map (fun i -> i land 0xffffffff) (int_bound max_int);
        return 0xffffffff;
        return 0x80000000;
      ])

let _ = gen_imm32

let gen_mem =
  let open QCheck.Gen in
  let* base = opt gen_gpr in
  let* index =
    opt
      (let* r = oneofl [ 0; 1; 2; 3; 5; 6; 7 ] in
       let* s = oneofl [ 1; 2; 4; 8 ] in
       return (r, s))
  in
  let* disp = gen_imm32' in
  return (Insn.mem ?base ?index disp)

let gen_rm =
  QCheck.Gen.(
    oneof [ map (fun r -> Insn.R r) gen_gpr; map (fun m -> Insn.M m) gen_mem ])

let gen_insn =
  let open QCheck.Gen in
  let open Insn in
  let gen_size = oneofl [ S8; S32 ] in
  let gen_arith = oneofl [ Add; Or; Adc; Sbb; And; Sub; Xor; Cmp ] in
  let gen_imm_for sz = match sz with S8 -> int_range 0 255 | S32 -> gen_imm32' in
  let gen_ops sz =
    oneof
      [
        (let* rm = gen_rm and* r = gen_gpr in
         return (RM_R (rm, r)));
        (let* rm = gen_rm and* r = gen_gpr in
         return (R_RM (r, rm)));
        (let* rm = gen_rm and* i = gen_imm_for sz in
         return (RM_I (rm, i)));
      ]
  in
  oneof
    [
      (let* op = gen_arith and* sz = gen_size in
       let* ops = gen_ops sz in
       return (Arith (op, sz, ops)));
      (let* sz = gen_size and* rm = gen_rm in
       oneof
         [
           (let* r = gen_gpr in
            return (Test (sz, rm, T_R r)));
           (let* i = gen_imm_for sz in
            return (Test (sz, rm, T_I i)));
         ]);
      (let* sz = gen_size in
       let* ops = gen_ops sz in
       match ops with
       | RM_R _ | R_RM _ | RM_I _ -> return (Mov (sz, ops)));
      (let* sign = bool and* dst = gen_gpr and* src = gen_rm in
       return (Movx { sign; dst; src }));
      (let* r = gen_gpr and* m = gen_mem in
       return (Lea (r, m)));
      (let* sz = gen_size and* rm = gen_rm and* r = gen_gpr in
       return (Xchg (sz, rm, r)));
      (let* sz = gen_size and* rm = gen_rm in
       oneofl [ Inc (sz, rm); Dec (sz, rm); Not (sz, rm); Neg (sz, rm) ]);
      (let* op = oneofl [ Shl; Shr; Sar; Rol; Ror ]
       and* sz = gen_size
       and* rm = gen_rm
       and* c = oneof [ return C1; return Ccl; map (fun i -> Cimm i) (int_range 0 255) ] in
       return (Shift (op, sz, rm, c)));
      (let* sz = gen_size and* rm = gen_rm in
       oneofl [ Mul (sz, rm); Imul1 (sz, rm); Div (sz, rm); Idiv (sz, rm) ]);
      (let* r = gen_gpr and* rm = gen_rm in
       return (Imul2 (r, rm)));
      return Cdq;
      (let* src =
         oneof
           [
             map (fun r -> PushR r) gen_gpr;
             map (fun i -> PushI i) gen_imm32';
             map (fun m -> PushM m) gen_mem;
           ]
       in
       return (Push src));
      (let* rm = gen_rm in
       return (Pop rm));
      return Pushf;
      return Popf;
      (let* cc = oneofl Cond.all and* t = gen_imm32' in
       return (Jcc (cc, t)));
      (let* cc = oneofl Cond.all and* rm = gen_rm in
       return (Setcc (cc, rm)));
      (let* t = gen_imm32' in
       oneofl [ Jmp t; Call t ]);
      (let* rm = gen_rm in
       oneofl [ JmpInd rm; CallInd rm ]);
      (let* n = oneofl [ 0; 4; 8; 0xfffe ] in
       return (Ret n));
      return Int3;
      (let* v = int_range 0 255 in
       return (Int v));
      return Iret;
      (let* sz = gen_size
       and* p = oneof [ map (fun p -> PortImm p) (int_range 0 255); return PortDx ] in
       oneofl [ In (sz, p); Out (sz, p) ]);
      oneofl [ Hlt; Nop; Cli; Sti ];
      (let* rep = bool and* op = oneofl [ Movs; Stos ] and* size = gen_size in
       return (Strop { rep; op; size }));
      (let* m = gen_mem in
       return (Lidt m));
    ]

let arbitrary_insn = QCheck.make ~print:Insn.to_string gen_insn

let prop_roundtrip =
  QCheck.Test.make ~count:2000 ~name:"encode/decode roundtrip" arbitrary_insn
    (fun insn ->
      let at = 0x40000 in
      let { Encode.bytes; imm32_off } = Encode.encode ~at insn in
      let fetch a = Char.code (Bytes.get bytes (a - at)) in
      let f = Decode.decode ~fetch at in
      f.Decode.insn = insn
      && f.Decode.len = Bytes.length bytes
      && f.Decode.imm32_off = imm32_off
      && f.Decode.len <= Decode.max_len)

let prop_length_stable =
  QCheck.Test.make ~count:500 ~name:"encoded length placement-independent"
    arbitrary_insn (fun insn ->
      Encode.length insn
      = Bytes.length (Encode.encode ~at:0x12345 insn).Encode.bytes)

(* Exhaustive encode→decode→encode over the fuzzer's opcode table: one
   canonical instruction per decoder dispatch arm
   ({!Cms_fuzz.Coverage.exemplars}), so every arm the generator can
   reach is known to survive a full byte-level round trip — the QCheck
   property above covers the randomized-operand side. *)
let test_roundtrip_exemplars () =
  List.iter
    (fun insn ->
      let at = 0x10000 in
      let { Encode.bytes; imm32_off } = Encode.encode ~at insn in
      let fetch a = Char.code (Bytes.get bytes (a - at)) in
      let f = Decode.decode ~fetch at in
      if f.Decode.insn <> insn then
        Alcotest.failf "decode mismatch for %s: got %s" (Insn.to_string insn)
          (Insn.to_string f.Decode.insn);
      if f.Decode.len <> Bytes.length bytes then
        Alcotest.failf "length mismatch for %s" (Insn.to_string insn);
      let re = Encode.encode ~at f.Decode.insn in
      if re.Encode.bytes <> bytes then
        Alcotest.failf "re-encode mismatch for %s" (Insn.to_string insn);
      if re.Encode.imm32_off <> imm32_off then
        Alcotest.failf "imm32_off mismatch for %s" (Insn.to_string insn))
    Cms_fuzz.Coverage.exemplars

(* ------------------------------------------------------------------ *)
(* Assembler                                                           *)
(* ------------------------------------------------------------------ *)

let test_asm_loop () =
  let open Asm in
  let l =
    assemble ~base:0x2000
      [
        label "start";
        mov_ri eax 0;
        label "loop";
        add_ri eax 1;
        cmp_ri eax 10;
        jne "loop";
        hlt;
        label "data";
        dd [ 0xdeadbeef ];
      ]
  in
  check ci "start" 0x2000 (label_addr l "start");
  check ci "loop is after mov" 0x2005 (label_addr l "loop");
  (* Decode the jne and verify it targets "loop". *)
  let fetch a = Char.code (Bytes.get l.image (a - l.base)) in
  let jne_info = List.nth l.insns 3 in
  let f = Decode.decode ~fetch jne_info.addr in
  (match f.Decode.insn with
  | Insn.Jcc (Cond.NE, t) -> check ci "target" (label_addr l "loop") t
  | i -> Alcotest.failf "expected jne, got %s" (Insn.to_string i));
  (* Data word is little-endian. *)
  let d = label_addr l "data" in
  check ci "byte0" 0xef (fetch d);
  check ci "byte3" 0xde (fetch (d + 3))

let test_asm_align () =
  let open Asm in
  let l = assemble ~base:0x1000 [ nop; align 16; label "aligned"; hlt ] in
  check ci "aligned" 0x1010 (label_addr l "aligned");
  (* padding is NOPs *)
  check ci "pad byte" 0x90 (Char.code (Bytes.get l.image 5))

let test_asm_imm_patch_info () =
  let open Asm in
  let l =
    assemble ~base:0x3000 [ label "i"; mov_ri eax 0x11223344; hlt ]
  in
  let info = List.hd l.insns in
  check (Alcotest.option ci) "imm addr" (Some 0x3001) info.imm32_addr

let test_asm_mov_label () =
  let open Asm in
  let l =
    assemble ~base:0x1000 [ mov_rl eax "tgt"; hlt; label "tgt"; dd [ 42 ] ]
  in
  let fetch a = Char.code (Bytes.get l.image (a - l.base)) in
  let f = Decode.decode ~fetch 0x1000 in
  match f.Decode.insn with
  | Insn.Mov (Insn.S32, Insn.RM_I (Insn.R 0, v)) ->
      check ci "label value" (label_addr l "tgt") v
  | i -> Alcotest.failf "unexpected %s" (Insn.to_string i)

let asm_tests =
  [
    Alcotest.test_case "loop with labels" `Quick test_asm_loop;
    Alcotest.test_case "align" `Quick test_asm_align;
    Alcotest.test_case "imm32 patch metadata" `Quick test_asm_imm_patch_info;
    Alcotest.test_case "mov reg, label" `Quick test_asm_mov_label;
  ]

let suites =
  [
    ("x86.flags", flags_tests);
    ("x86.decode", decode_tests);
    ( "x86.roundtrip",
      Alcotest.test_case "opcode-table exemplars" `Quick
        test_roundtrip_exemplars
      :: List.map QCheck_alcotest.to_alcotest
           [ prop_roundtrip; prop_length_stable ] );
    ("x86.asm", asm_tests);
  ]
