(* Tests for the checkpoint/restore subsystem: the stable codec and its
   corruption diagnostics, snapshot capture/restore fidelity, the
   kill-and-resume soak drill across the whole workload suite,
   deterministic record-replay (suite, clean fuzz cases, a chaos
   campaign slice), mid-run resume from snapshot + journal suffix, and
   the forensics dump. *)

open Cms_fuzz
module P = Cms_persist

let check = Alcotest.check

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let expect_corrupt ?substr (f : unit -> unit) =
  match f () with
  | () -> Alcotest.fail "expected Codec.Corrupt to be raised"
  | exception P.Codec.Corrupt msg -> (
      match substr with
      | Some s when not (contains msg s) ->
          Alcotest.failf "diagnostic %S does not mention %S" msg s
      | _ -> ())

(* ------------------------------------------------------------------ *)
(* Codec                                                               *)
(* ------------------------------------------------------------------ *)

let test_codec_roundtrip () =
  let b = P.Codec.writer () in
  P.Codec.w_int b 0;
  P.Codec.w_int b (-1);
  P.Codec.w_int b max_int;
  P.Codec.w_bool b true;
  P.Codec.w_bool b false;
  P.Codec.w_string b "";
  P.Codec.w_string b "hello\x00world";
  P.Codec.w_int64 b (-0x1234_5678_9abc_def0L);
  P.Codec.w_list b P.Codec.w_int [ 3; 1; 2 ];
  P.Codec.w_int_array b [| 9; 8 |];
  P.Codec.w_opt b P.Codec.w_string None;
  P.Codec.w_opt b P.Codec.w_string (Some "x");
  let r = P.Codec.reader (P.Codec.contents b) in
  check Alcotest.int "int 0" 0 (P.Codec.r_int r);
  check Alcotest.int "int -1" (-1) (P.Codec.r_int r);
  check Alcotest.int "int max" max_int (P.Codec.r_int r);
  check Alcotest.bool "bool t" true (P.Codec.r_bool r);
  check Alcotest.bool "bool f" false (P.Codec.r_bool r);
  check Alcotest.string "empty string" "" (P.Codec.r_string r);
  check Alcotest.string "string" "hello\x00world" (P.Codec.r_string r);
  check Alcotest.int64 "int64" (-0x1234_5678_9abc_def0L) (P.Codec.r_int64 r);
  check (Alcotest.list Alcotest.int) "list" [ 3; 1; 2 ]
    (P.Codec.r_list r P.Codec.r_int);
  check (Alcotest.array Alcotest.int) "array" [| 9; 8 |]
    (P.Codec.r_int_array r);
  check (Alcotest.option Alcotest.string) "opt none" None
    (P.Codec.r_opt r P.Codec.r_string);
  check (Alcotest.option Alcotest.string) "opt some" (Some "x")
    (P.Codec.r_opt r P.Codec.r_string);
  P.Codec.r_end r

let test_codec_strictness () =
  (* trailing bytes *)
  (let b = P.Codec.writer () in
   P.Codec.w_int b 1;
   let r = P.Codec.reader (P.Codec.contents b ^ "z") in
   ignore (P.Codec.r_int r);
   expect_corrupt ~substr:"trailing" (fun () -> P.Codec.r_end r));
  (* truncation *)
  expect_corrupt ~substr:"truncated" (fun () ->
      ignore (P.Codec.r_int (P.Codec.reader "abc")));
  (* invalid boolean byte *)
  expect_corrupt ~substr:"boolean" (fun () ->
      ignore (P.Codec.r_bool (P.Codec.reader "\x07")));
  (* negative string length *)
  let b = P.Codec.writer () in
  P.Codec.w_int b (-4);
  expect_corrupt (fun () ->
      ignore (P.Codec.r_string (P.Codec.reader (P.Codec.contents b))))

let test_codec_sparse () =
  let roundtrip data =
    let b = P.Codec.writer () in
    P.Codec.w_sparse b data;
    let r = P.Codec.reader (P.Codec.contents b) in
    let out = P.Codec.r_sparse r in
    P.Codec.r_end r;
    Alcotest.(check bool) "sparse roundtrip" true (Bytes.equal data out)
  in
  roundtrip (Bytes.create 0);
  roundtrip (Bytes.make 20_000 '\x00');
  roundtrip (Bytes.make 5000 '\xff');
  (* one live byte per region, zero gaps between *)
  let d = Bytes.make 40_000 '\x00' in
  Bytes.set d 0 'a';
  Bytes.set d 4095 'b';
  Bytes.set d 4096 'c';
  Bytes.set d 39_999 'z';
  roundtrip d;
  (* a 16 MiB image with one live page stays small *)
  let big = Bytes.make (16 * 1024 * 1024) '\x00' in
  Bytes.blit_string "payload" 0 big 0x100000 7;
  let b = P.Codec.writer () in
  P.Codec.w_sparse b big;
  Alcotest.(check bool)
    "sparse compresses zeros" true
    (String.length (P.Codec.contents b) < 16_384)

let test_container () =
  let img =
    P.Codec.write_container ~kind:"TEST" ~version:3
      [ ("AAAA", "alpha"); ("BBBB", "") ]
  in
  let secs = P.Codec.read_container ~kind:"TEST" ~version:3 img in
  check Alcotest.string "section A" "alpha" (P.Codec.section secs "AAAA");
  check Alcotest.string "section B" "" (P.Codec.section secs "BBBB");
  expect_corrupt ~substr:"missing required section" (fun () ->
      ignore (P.Codec.section secs "CCCC"));
  (* every corruption mode produces a diagnostic, never a wrong parse *)
  expect_corrupt ~substr:"magic" (fun () ->
      ignore (P.Codec.read_container ~kind:"TEST" ~version:3 ("X" ^ img)));
  expect_corrupt ~substr:"wrong image kind" (fun () ->
      ignore (P.Codec.read_container ~kind:"OTHR" ~version:3 img));
  expect_corrupt ~substr:"version" (fun () ->
      ignore (P.Codec.read_container ~kind:"TEST" ~version:4 img));
  expect_corrupt (fun () ->
      ignore
        (P.Codec.read_container ~kind:"TEST" ~version:3
           (String.sub img 0 (String.length img - 3))));
  (let flipped = Bytes.of_string img in
   let pos = String.length P.Codec.magic + 4 + 8 + 8 + 4 + 8 + 1 in
   Bytes.set flipped pos
     (Char.chr (Char.code (Bytes.get flipped pos) lxor 0xff));
   expect_corrupt ~substr:"digest mismatch" (fun () ->
       ignore
         (P.Codec.read_container ~kind:"TEST" ~version:3
            (Bytes.to_string flipped))));
  expect_corrupt (fun () ->
      ignore (P.Codec.read_container ~kind:"TEST" ~version:3 (img ^ "junk")))

let codec_tests =
  [
    Alcotest.test_case "primitive roundtrip" `Quick test_codec_roundtrip;
    Alcotest.test_case "reader strictness" `Quick test_codec_strictness;
    Alcotest.test_case "sparse encoding" `Quick test_codec_sparse;
    Alcotest.test_case "container + corruption" `Quick test_container;
  ]

(* ------------------------------------------------------------------ *)
(* Snapshot                                                            *)
(* ------------------------------------------------------------------ *)

module Suite = Workloads.Suite

let all_workloads () =
  Workloads.Progs_boot.all @ Workloads.Progs_spec.all
  @ Workloads.Progs_apps.all @ Workloads.Progs_quake.all
  @ [ Workloads.Progs_quake.blt_driver () ]
  @ Workloads.Progs_kernel.all

let compress () =
  List.find (fun w -> w.Suite.name = "026.compress (Linux)") (all_workloads ())

let test_inconsistent_capture () =
  let c = Suite.prepare (compress ()) in
  (* dirty the working copy without committing *)
  Vliw.Regfile.set (Cms.Cpu.regs (Cms.cpu c)) (Vliw.Abi.gpr X86.Regs.eax) 42;
  match P.Snapshot.capture c with
  | _ -> Alcotest.fail "capture of inconsistent state must raise"
  | exception P.Snapshot.Inconsistent _ -> ()

(* Capture mid-run, restore, capture again: every section except STAT
   (the restore bumps [resumes]) and PROT (protection is rebuilt cold,
   by design) must be byte-identical — the restore loses nothing it
   promises to keep. *)
let test_snapshot_stability () =
  let c = Suite.prepare (compress ()) in
  (match Cms.run ~max_insns:200_000 c with
  | Cms.Engine.Insn_limit -> ()
  | Cms.Engine.Halted -> Alcotest.fail "workload finished too early");
  let img1 = P.Snapshot.capture ~label:"stability" c in
  let c', meta = P.Snapshot.restore img1 in
  check Alcotest.string "label" "stability" meta.P.Snapshot.label;
  check Alcotest.int "retired clock" (Cms.retired c) meta.P.Snapshot.retired;
  let img2 = P.Snapshot.capture ~label:"stability" c' in
  let secs img =
    P.Codec.read_container ~kind:"SNAP" ~version:P.Snapshot.version img
  in
  List.iter2
    (fun (tag1, pay1) (tag2, pay2) ->
      check Alcotest.string "section order" tag1 tag2;
      if tag1 <> "STAT" && tag1 <> "PROT" then
        Alcotest.(check bool)
          (Fmt.str "section %s byte-identical" tag1)
          true (pay1 = pay2))
    (secs img1) (secs img2)

let test_snapshot_corruption () =
  let c = Suite.prepare (compress ()) in
  ignore (Cms.run ~max_insns:50_000 c);
  let img = P.Snapshot.capture c in
  expect_corrupt (fun () ->
      ignore (P.Snapshot.restore (String.sub img 0 (String.length img / 2))));
  (let flipped = Bytes.of_string img in
   Bytes.set flipped
     (String.length img / 2)
     (Char.chr
        (Char.code (Bytes.get flipped (String.length img / 2)) lxor 0x01));
   expect_corrupt ~substr:"digest mismatch" (fun () ->
       ignore (P.Snapshot.restore (Bytes.to_string flipped))));
  (* kind confusion both ways *)
  let j =
    {
      P.Journal.label = "x";
      cfg = Cms.Config.default;
      guest = [];
      host = [];
      arch_hex = None;
      strict_hex = None;
    }
  in
  expect_corrupt ~substr:"wrong image kind" (fun () ->
      ignore (P.Snapshot.restore (P.Journal.to_string j)));
  expect_corrupt ~substr:"wrong image kind" (fun () ->
      ignore (P.Journal.of_string img))

let test_persist_counters () =
  let c = Suite.prepare (compress ()) in
  ignore (Cms.run ~max_insns:50_000 c);
  let img = P.Snapshot.capture c in
  let s = Cms.stats c in
  check Alcotest.int "snapshots_written" 1 s.Cms.Stats.snapshots_written;
  check Alcotest.int "snapshot_bytes" (String.length img)
    s.Cms.Stats.snapshot_bytes;
  let c', _ = P.Snapshot.restore img in
  let s' = Cms.stats c' in
  check Alcotest.int "resumes after restore" 1 s'.Cms.Stats.resumes;
  (* the image carries pre-capture counters *)
  check Alcotest.int "restored snapshots_written" 0
    s'.Cms.Stats.snapshots_written

let snapshot_tests =
  [
    Alcotest.test_case "inconsistent capture rejected" `Quick
      test_inconsistent_capture;
    Alcotest.test_case "capture/restore/capture stability" `Quick
      test_snapshot_stability;
    Alcotest.test_case "corrupt image rejected" `Quick test_snapshot_corruption;
    Alcotest.test_case "persist counters" `Quick test_persist_counters;
  ]

(* ------------------------------------------------------------------ *)
(* Kill-and-resume soak across the whole suite                         *)
(* ------------------------------------------------------------------ *)

(* Timer-driven workloads are molecule-clock-dependent: a resumed run
   (cold tcache) consumes a different number of molecules to retire the
   same instructions, so jiffy counts, handler-frame stack bytes and
   device-poll counts legitimately differ.  Architectural results (GPRs,
   EIP, EFLAGS, UART, frame buffer) must match regardless. *)
let test_soak_suite () =
  List.iter
    (fun w ->
      let r =
        P.Soak.drill
          ~make:(fun () -> Suite.prepare w)
          ~max_insns:w.Suite.max_insns ~every:100_000
          ~compare_mem:(not w.Suite.uses_timer) ()
      in
      if not (P.Soak.ok r) then
        Alcotest.failf "%s: %a" w.Suite.name P.Soak.pp_result r;
      if r.P.Soak.resumes = 0 && w.Suite.max_insns > 100_000 then ())
    (all_workloads ())

let soak_tests =
  [ Alcotest.test_case "kill-and-resume, all workloads" `Slow test_soak_suite ]

(* ------------------------------------------------------------------ *)
(* Record / replay                                                     *)
(* ------------------------------------------------------------------ *)

(* A suite run is a pure function of its configuration: running twice
   must produce bit-identical arch and strict digests (what cmsrun
   --record / --replay checks end to end). *)
let test_suite_record_replay () =
  List.iter
    (fun w ->
      let digest () =
        let t = Suite.run w in
        ( P.Digests.arch_hex (P.Digests.arch t),
          P.Digests.strict_hex (P.Digests.strict t) )
      in
      let a1, s1 = digest () in
      let a2, s2 = digest () in
      check Alcotest.string (w.Suite.name ^ " arch") a1 a2;
      check Alcotest.string (w.Suite.name ^ " strict") s1 s2)
    (all_workloads ())

let test_journal_roundtrip () =
  let j =
    {
      P.Journal.label = "case-7";
      cfg = { Cms.Config.default with Cms.Config.tcache_capacity = 5 };
      guest =
        [
          P.Journal.Irq { at = 100; line = 3 };
          P.Journal.Dma { addr = 0x2000; data = "\x01\x02" };
          P.Journal.Prot { virt = 0x3000; writable = false };
        ];
      host =
        [
          P.Journal.Kill { nth = 2 };
          P.Journal.Pre_fault { nth = 5; alias = true };
          P.Journal.Spoof { nth = 0 };
          P.Journal.Flush { nth = 9 };
          P.Journal.Evict { nth = 4 };
        ];
      arch_hex = Some "deadbeef";
      strict_hex = None;
    }
  in
  let j' = P.Journal.of_string (P.Journal.to_string j) in
  Alcotest.(check bool) "journal roundtrip" true (j = j');
  (* corruption of the event section is rejected *)
  let img = Bytes.of_string (P.Journal.to_string j) in
  Bytes.set img
    (Bytes.length img - 30)
    (Char.chr (Char.code (Bytes.get img (Bytes.length img - 30)) lxor 0x10));
  expect_corrupt (fun () ->
      ignore (P.Journal.of_string (Bytes.to_string img)))

(* Clean fuzz cases (guest events only): record then replay must be
   bit-identical, including at an instruction-limit cutoff. *)
let test_fuzz_record_replay () =
  let root = Srng.create 11 in
  for index = 0 to 29 do
    let rng = Srng.split root in
    let case = Gen.generate rng ~seed:11 ~index in
    match Oracle.check_record_replay (Oracle.render case) with
    | Oracle.Pass -> ()
    | Oracle.Hang -> ()
    | Oracle.Divergence d -> Alcotest.failf "case %d: %s" index d
  done

(* The chaos campaign slice: translator deaths, forced faults, spoofed
   interrupts and cache storms are journaled as opportunity indices and
   replayed with no RNG at all — and the replay must match the recording
   bit for bit. *)
let test_chaos_record_replay () =
  let root = Srng.create 5 in
  for index = 0 to 99 do
    let rng = Srng.split root in
    let case = Gen.generate rng ~seed:5 ~index in
    let chaos_seed = Srng.int32 rng in
    match Oracle.check_record_replay (Oracle.render ~chaos:chaos_seed case) with
    | Oracle.Pass -> ()
    | Oracle.Hang -> ()
    | Oracle.Divergence d -> Alcotest.failf "chaos case %d: %s" index d
  done

(* Mid-run resume: restore the last checkpoint and replay the journal
   *suffix* (delivery cursors from the snapshot metadata); the final
   architectural state must match the uninterrupted recording. *)
let test_fuzz_resume_from_checkpoint () =
  let root = Srng.create 23 in
  let resumed = ref 0 in
  let diag = ref [] in
  for index = 0 to 19 do
    let rng = Srng.split root in
    let case = Gen.generate rng ~seed:23 ~index in
    let r = Oracle.render case in
    (* generated cases are small — checkpoint densely so most runs cut
       at least once mid-flight *)
    let rec_ = Oracle.record ~checkpoint_every:50 ~label:"resume" r in
    diag :=
      Fmt.str "%d:%s,ck=%b" index
        (match rec_.Oracle.outcome.Oracle.stop with
        | Oracle.Halted -> "halt"
        | Oracle.Limit -> "limit"
        | Oracle.Crash m -> "crash:" ^ m)
        (rec_.Oracle.checkpoint <> None)
      :: !diag;
    match (rec_.Oracle.checkpoint, rec_.Oracle.outcome.Oracle.stop) with
    | Some img, Oracle.Halted ->
        incr resumed;
        let c, meta = P.Snapshot.restore img in
        ignore
          (P.Journal.install_guest ~irq_cursor:meta.P.Snapshot.irq_cursor
             ~sync_cursor:meta.P.Snapshot.sync_cursor c
             rec_.Oracle.journal.P.Journal.guest);
        (match Cms.run ~max_insns:r.Oracle.max_insns c with
        | Cms.Engine.Halted -> ()
        | Cms.Engine.Insn_limit ->
            Alcotest.failf "case %d: resumed run hit the limit" index);
        let arch = P.Digests.arch ~mask:Oracle.stack_mask c in
        if arch <> rec_.Oracle.outcome.Oracle.arch then
          Alcotest.failf "case %d resume diverges: %s" index
            (P.Digests.arch_diff rec_.Oracle.outcome.Oracle.arch arch)
    | _ -> ()
  done;
  if !resumed < 5 then
    Alcotest.failf "only %d/20 cases exercised a resume (%s)" !resumed
      (String.concat " " !diag)

let replay_tests =
  [
    Alcotest.test_case "suite digests deterministic" `Slow
      test_suite_record_replay;
    Alcotest.test_case "journal roundtrip + corruption" `Quick
      test_journal_roundtrip;
    Alcotest.test_case "record=replay, clean cases" `Quick
      test_fuzz_record_replay;
    Alcotest.test_case "record=replay, 100-case chaos slice" `Slow
      test_chaos_record_replay;
    Alcotest.test_case "resume from checkpoint + journal suffix" `Quick
      test_fuzz_resume_from_checkpoint;
  ]

(* ------------------------------------------------------------------ *)
(* Forensics                                                           *)
(* ------------------------------------------------------------------ *)

let test_forensics_dump () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Fmt.str "cms-forensics-%d" (Unix.getpid ()))
  in
  let c = Suite.prepare (compress ()) in
  ignore (Cms.run ~max_insns:50_000 c);
  let snapshot = P.Snapshot.capture c in
  let journal =
    {
      P.Journal.label = "drill";
      cfg = Cms.Config.default;
      guest = [ P.Journal.Irq { at = 5; line = 0 } ];
      host = [];
      arch_hex = None;
      strict_hex = None;
    }
  in
  let d =
    P.Forensics.dump ~dir ~name:"drill-1" ~reason:"unit test" ~snapshot
      ~journal ~case_text:"mov eax, 1" ~engine:c ()
  in
  let report = In_channel.with_open_bin d.P.Forensics.report In_channel.input_all in
  Alcotest.(check bool) "report mentions reason" true
    (contains report "unit test");
  Alcotest.(check bool) "report lists artifacts" true
    (contains report "artifact:");
  List.iter
    (fun (_, path) ->
      Alcotest.(check bool) (path ^ " exists") true (Sys.file_exists path))
    d.P.Forensics.artifacts;
  (* the dumped snapshot restores *)
  let snap_path =
    List.assoc "snapshot" d.P.Forensics.artifacts
  in
  let c', _ = P.Snapshot.restore (In_channel.with_open_bin snap_path In_channel.input_all) in
  check Alcotest.int "dumped snapshot restores at the same clock"
    (Cms.retired c) (Cms.retired c')

let forensics_tests =
  [ Alcotest.test_case "divergence bundle" `Quick test_forensics_dump ]

let suites =
  [
    ("persist codec", codec_tests);
    ("persist snapshot", snapshot_tests);
    ("persist soak", soak_tests);
    ("persist replay", replay_tests);
    ("persist forensics", forensics_tests);
  ]
