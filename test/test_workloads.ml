(* Workload validation: every synthetic benchmark must produce exactly
   the same architectural result under interpreter-only execution and
   under full translation.  A representative subset runs in the default
   test pass (the full suite is exercised by the benchmark harness);
   the subset covers each workload family: boot, SPEC-like, dispatch-
   heavy, string-heavy, and the SMC/MMIO-heavy Quake renderer. *)

module Suite = Workloads.Suite
module Progs_boot = Workloads.Progs_boot
module Progs_spec = Workloads.Progs_spec
module Progs_apps = Workloads.Progs_apps
module Progs_quake = Workloads.Progs_quake

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool

let digest t =
  ( Cms.gpr t X86.Regs.eax,
    Cms.gpr t X86.Regs.ebx,
    Cms.eip t )

let differential (w : Suite.t) () =
  (* debug config: runtime molecule validation, the latency interlock
     and the static translation verifier are all on *)
  let t_ref =
    Suite.run
      ~cfg:{ Cms.Config.debug with Cms.Config.translate_threshold = max_int }
      w
  in
  let t_hot =
    Suite.run
      ~cfg:{ Cms.Config.debug with Cms.Config.translate_threshold = 4 }
      w
  in
  let a, b, _ = digest t_ref and a', b', _ = digest t_hot in
  check ci (w.Suite.name ^ " eax") a a';
  check ci (w.Suite.name ^ " ebx") b b';
  (* the hot config must actually have translated a dominant fraction *)
  let s = Cms.stats t_hot in
  check cb
    (Fmt.str "%s mostly translated (%d vs %d)" w.Suite.name
       s.Cms.Stats.x86_translated s.Cms.Stats.x86_interp)
    true
    (s.Cms.Stats.x86_translated > s.Cms.Stats.x86_interp / 4)

let subset =
  [
    Progs_boot.dos;
    Progs_spec.eqntott;
    Progs_spec.compress;
    Progs_spec.sc;
    Progs_spec.ora;
    Progs_spec.gcc;
    Progs_spec.espresso;
    Progs_spec.li;
    Progs_spec.spice2g6;
    Progs_apps.wordperfect;
    Progs_apps.multimedia;
    Progs_quake.quake;
    Progs_quake.blt_driver ();
    Workloads.Progs_kernel.kernel_rr;
    Workloads.Progs_kernel.kernel_echo;
  ]

let workload_cases =
  List.map
    (fun w ->
      Alcotest.test_case w.Suite.name `Slow (differential w))
    subset

(* Sanity properties of the workload suite itself *)
let test_suite_shape () =
  check ci "eight boots" 8 (List.length Progs_boot.all);
  check cb "at least 12 apps" true
    (List.length (Progs_spec.all @ Progs_apps.all @ Progs_quake.all) >= 12);
  check ci "two kernels" 2 (List.length Workloads.Progs_kernel.all)

let test_quake_frames () =
  let t = Suite.run ~cfg:Cms.Config.debug Progs_quake.quake in
  check ci "60 frames rendered" 60 (Cms.frames t)

let suites =
  [
    ("workloads.differential", workload_cases);
    ( "workloads.shape",
      [
        Alcotest.test_case "suite composition" `Quick test_suite_shape;
        Alcotest.test_case "quake renders frames" `Quick test_quake_frames;
      ] );
  ]
