(* Recovery-hardening tests: the engine's containment boundary, the
   demotion ladder's forward-progress guarantee, the stall watchdog,
   graceful tcache degradation (generational eviction with full flush
   as last resort), the bounded adaptive-policy table, and chaos-mode
   determinism.  The host-side attacks use the engine's chaos hooks
   directly where a test needs a deterministic 100% schedule, and
   {!Cms_robust.Chaos} where the seeded profile is itself under test. *)

module Chaos = Cms_robust.Chaos
module Srng = Cms_robust.Srng
module Tcache = Cms.Tcache
module Adapt = Cms.Adapt
module Suite = Workloads.Suite

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool

(* ------------------------------------------------------------------ *)
(* A hot counting loop with a self-checking result                     *)
(* ------------------------------------------------------------------ *)

let loop_base = 0x1000

let loop_listing ~iters =
  X86.Asm.(
    assemble ~base:loop_base
      [
        mov_ri eax 0;
        mov_ri ebp iters;
        label "l";
        add_ri eax 3;
        xor_ri eax 0x55;
        dec_r ebp;
        jne "l";
        hlt;
      ])

let expected_eax ~iters =
  let v = ref 0 in
  for _ = 1 to iters do
    v := (!v + 3) lxor 0x55
  done;
  !v

let hot_cfg = { Cms.Config.default with Cms.Config.translate_threshold = 4 }

(* Run the loop to completion under [cfg]; [arm] installs the attack
   after boot.  Halting with the right checksum IS the forward-progress
   assertion — a recovery bug shows up as a wrong result or as the
   instruction limit. *)
let run_loop ?(arm = fun (_ : Cms.t) -> ()) ~iters cfg =
  let c = Cms.create ~cfg () in
  Cms.load c (loop_listing ~iters);
  Cms.boot c ~entry:loop_base;
  (* standing speculation non-interference invariant: every rollback
     in every robustness scenario must leave no speculative state —
     shadow registers, gated stores, armed alias ranges, uninstalled
     background translations — architecturally observable *)
  c.Cms.Engine.on_rollback <-
    Some
      (fun () ->
        if Cms.Engine.speculation_visible c then
          Alcotest.fail "speculative state visible after rollback");
  arm c;
  let stop = Cms.run ~max_insns:1_000_000 c in
  check cb "halted" true (stop = Cms.Engine.Halted);
  check ci "checksum" (expected_eax ~iters) (Cms.gpr c X86.Regs.eax);
  c

(* ------------------------------------------------------------------ *)
(* Containment boundary                                                *)
(* ------------------------------------------------------------------ *)

(* Every translation attempt dies with a host-side exception; the
   engine must absorb each one, fall back to interpretation, and after
   [translate_fail_limit] failures quarantine the entry so it stops
   paying for doomed attempts. *)
let test_containment () =
  let c =
    run_loop ~iters:400 hot_cfg ~arm:(fun c ->
        c.Cms.Engine.chaos <-
          Some
            {
              Cms.Engine.on_translate =
                (fun _ -> failwith "injected translator death");
              pre_exec = (fun _ -> None);
              irq_spoof = (fun () -> false);
              bg_doom = (fun _ -> None);
            })
  in
  let s = Cms.stats c in
  check cb "exceptions contained" true (s.Cms.Stats.containments >= 1);
  check ci "nothing ever translated" 0 s.Cms.Stats.x86_translated;
  check cb "entry quarantined" true (s.Cms.Stats.quarantines >= 1);
  (* the failure budget bounds the attempts per entry.  Quarantining
     the loop head makes dispatch single-step past it, so successive
     loop-body instructions become hot entries in turn — each gets its
     own budget, and the cascade is bounded by the quarantine count *)
  check cb
    (Fmt.str "attempts stop at the budget (%d deaths, %d quarantines)"
       s.Cms.Stats.containments s.Cms.Stats.quarantines)
    true
    (s.Cms.Stats.containments
    <= (s.Cms.Stats.quarantines + 1)
       * Cms.Config.default.Cms.Config.translate_fail_limit);
  check cb "quarantine fast path used" true (s.Cms.Stats.quarantined_steps > 0)

(* ------------------------------------------------------------------ *)
(* Demotion ladder: forward progress under a 100% fault schedule       *)
(* ------------------------------------------------------------------ *)

(* Every translation execution faults before its first molecule.  The
   per-entry escalation budget must climb full-opt → conservative →
   quarantine in a bounded number of rollbacks, after which the loop
   runs interpretively to the correct result. *)
let test_forward_progress () =
  let c =
    run_loop ~iters:400 hot_cfg ~arm:(fun c ->
        c.Cms.Engine.chaos <-
          Some
            {
              Cms.Engine.on_translate = (fun _ -> ());
              pre_exec = (fun _ -> Some (Vliw.Nexn.Alias_violation 0));
              irq_spoof = (fun () -> false);
              bg_doom = (fun _ -> None);
            })
  in
  let s = Cms.stats c in
  let cfg = Cms.Config.default in
  check cb "entry quarantined" true (s.Cms.Stats.quarantines >= 1);
  (* each translation version absorbs at most spec_fault_limit faults
     before it is scrapped for one ladder rung; quarantine_limit rungs
     end the storm — the per-entry forward-progress bound.  The entry
     count is the quarantine count (plus one for an in-flight entry):
     single-stepping past a quarantined head hatches new hot entries
     from the loop body, each with its own budget *)
  check cb
    (Fmt.str "rollback storm bounded (%d faults, %d quarantines)"
       s.Cms.Stats.spec_faults s.Cms.Stats.quarantines)
    true
    (s.Cms.Stats.spec_faults
    <= (s.Cms.Stats.quarantines + 1)
       * cfg.Cms.Config.quarantine_limit * cfg.Cms.Config.spec_fault_limit);
  check cb "quarantine fast path used" true (s.Cms.Stats.quarantined_steps > 0)

(* ------------------------------------------------------------------ *)
(* Stall watchdog: spoofed interrupts with nothing to deliver          *)
(* ------------------------------------------------------------------ *)

(* Every in-translation poll reports a phantom IRQ: the translation
   exits at (or rolls back to) its entry commit point forever, retiring
   nothing.  The dispatcher's stall watchdog must notice the wedged
   boundary and force interpreter steps through it. *)
let test_spoof_storm_watchdog () =
  let c =
    run_loop ~iters:100 hot_cfg ~arm:(fun c ->
        c.Cms.Engine.chaos <-
          Some
            {
              Cms.Engine.on_translate = (fun _ -> ());
              pre_exec = (fun _ -> None);
              irq_spoof = (fun () -> true);
              bg_doom = (fun _ -> None);
            })
  in
  let s = Cms.stats c in
  check cb "watchdog forced progress" true (s.Cms.Stats.progress_forces >= 1);
  check ci "spoofs delivered nothing" 0 s.Cms.Stats.irq_delivered

(* ------------------------------------------------------------------ *)
(* Seeded chaos profile (pressure-only) over the loop                  *)
(* ------------------------------------------------------------------ *)

let test_chaos_pressure_only () =
  let rng = Srng.create 42 in
  let ch = Chaos.create ~profile:Chaos.pressure_only rng in
  let c = run_loop ~iters:400 hot_cfg ~arm:(fun c -> Chaos.install ch c) in
  check cb "cache storms fired" true (ch.Chaos.flushes + ch.Chaos.evicted >= 1);
  let s = Cms.stats c in
  check cb "flushes surfaced in stats" true
    (s.Cms.Stats.tcache_flushes >= ch.Chaos.flushes)

(* ------------------------------------------------------------------ *)
(* Tcache edge paths (unit level, synthetic records)                   *)
(* ------------------------------------------------------------------ *)

let mk_region ~entry =
  {
    Cms.Region.entry;
    insns = [||];
    cont = None;
    src_ranges = [ (entry, entry + 8) ];
  }

let insert tc ~entry ~snapshot =
  Tcache.insert tc ~entry
    ~code:(Cms.Codegen.zero_insn_code ~entry)
    ~region:(mk_region ~entry)
    ~policy:(Cms.Policy.default Cms.Config.default)
    ~snapshot

let test_group_reactivation () =
  let tc = Tcache.create ~capacity:8 in
  let snap_a = Bytes.of_string "AAAA" and snap_b = Bytes.of_string "BBBB" in
  let v1 = insert tc ~entry:0x1000 ~snapshot:(Some snap_a) in
  let v2 = insert tc ~entry:0x1000 ~snapshot:(Some snap_b) in
  check ci "old version parked" 1 (Tcache.group_size tc ~entry:0x1000);
  check ci "both records held" 2 tc.Tcache.count;
  (match Tcache.group_match tc ~entry:0x1000 ~current_bytes:snap_a with
  | None -> Alcotest.fail "snapshot should have matched"
  | Some tr ->
      check ci "reactivated v1" v1.Tcache.id tr.Tcache.id;
      check cb "valid again" true tr.Tcache.valid;
      (match Tcache.lookup tc 0x1000 with
      | Some cur -> check ci "dispatch sees v1" v1.Tcache.id cur.Tcache.id
      | None -> Alcotest.fail "no current translation after reactivation");
      check ci "v2 parked in turn" 1 (Tcache.group_size tc ~entry:0x1000));
  (* eviction takes parked group members like anything else, and fires
     the hook for each so page protection can be released *)
  let evicted_ids = ref [] in
  tc.Tcache.on_evict <-
    (fun tr -> evicted_ids := tr.Tcache.id :: !evicted_ids);
  let n = Tcache.evict_coldest tc in
  check ci "coldest generation was the parked v2" 1 n;
  check cb "on_evict saw it" true (List.mem v2.Tcache.id !evicted_ids);
  check ci "group emptied" 0 (Tcache.group_size tc ~entry:0x1000);
  check ci "reactivated v1 survives" 1 tc.Tcache.count

let test_flush_and_page_index () =
  let tc = Tcache.create ~capacity:8 in
  let shift = Machine.Mmu.page_shift in
  let v1 = insert tc ~entry:0x1000 ~snapshot:None in
  let _v2 = insert tc ~entry:0x5000 ~snapshot:None in
  check ci "page index live" 1
    (List.length (Tcache.on_page tc ~ppn:(0x1000 lsr shift)));
  (* generational eviction must drop the by-page index entries too —
     a stale one would invalidate a reused id on the next SMC hit *)
  let n = Tcache.evict_coldest tc in
  check ci "one record evicted" 1 n;
  check cb "evicted record dead" false v1.Tcache.valid;
  check ci "page index cleared by eviction" 0
    (List.length (Tcache.on_page tc ~ppn:(0x1000 lsr shift)));
  check ci "other page intact" 1
    (List.length (Tcache.on_page tc ~ppn:(0x5000 lsr shift)));
  let fired = ref 0 in
  tc.Tcache.on_flush <- (fun () -> incr fired);
  Tcache.flush tc;
  check ci "on_flush fired" 1 !fired;
  check ci "cache empty" 0 tc.Tcache.count;
  check cb "lookup misses after flush" true (Tcache.lookup tc 0x5000 = None)

let test_capacity_degradation () =
  let tc = Tcache.create ~capacity:4 in
  for i = 0 to 5 do
    ignore (insert tc ~entry:(0x1000 + (i * 0x100)) ~snapshot:None)
  done;
  check cb "count stays bounded" true (tc.Tcache.count <= 4);
  check ci "high-water mark" 4 tc.Tcache.hwm;
  check cb "colder generations evicted" true (tc.Tcache.evicted >= 1);
  check ci "no full flush while colder work exists" 0 tc.Tcache.flushes;
  (* last resort: when every held record is current-generation (all
     refreshed by dispatch hits), only the full flush can make room *)
  let tc2 = Tcache.create ~capacity:2 in
  ignore (insert tc2 ~entry:0x1000 ~snapshot:None);
  ignore (insert tc2 ~entry:0x2000 ~snapshot:None);
  ignore (Tcache.lookup tc2 0x1000);
  ignore (Tcache.lookup tc2 0x2000);
  ignore (insert tc2 ~entry:0x3000 ~snapshot:None);
  check ci "full flush as last resort" 1 tc2.Tcache.flushes;
  check ci "only the new record held" 1 tc2.Tcache.count

(* ------------------------------------------------------------------ *)
(* Bounded adaptive-policy table                                       *)
(* ------------------------------------------------------------------ *)

let test_adapt_bounded () =
  let cfg = { Cms.Config.default with Cms.Config.adapt_capacity = 4 } in
  let a = Adapt.create cfg in
  check cb "quarantine reported" true (Adapt.quarantine a 0x9000);
  for i = 0 to 9 do
    Adapt.set_no_reorder a (0x1000 + (i * 8))
  done;
  check cb "table bounded" true (Adapt.size a <= 4);
  check cb "evictions counted" true (a.Adapt.evictions >= 6);
  (* eviction prefers non-quarantined victims: the forward-progress
     state must survive capacity pressure *)
  check cb "quarantine survives pressure" true (Adapt.quarantined a 0x9000);
  check cb "cold plain entry evicted instead" true (not (Adapt.hot a 0x1000))

(* ------------------------------------------------------------------ *)
(* Eviction differential over the workload suite                       *)
(* ------------------------------------------------------------------ *)

let all_workloads () =
  Workloads.Progs_boot.all @ Workloads.Progs_spec.all
  @ Workloads.Progs_apps.all @ Workloads.Progs_quake.all
  @ [ Workloads.Progs_quake.blt_driver () ]
  @ Workloads.Progs_kernel.all

(* Architectural state only; stats legitimately differ under pressure.
   The stack pages are zeroed before digesting, as in the fuzz oracle:
   timer-interrupt delivery boundaries differ between translation
   shapes, leaving different dead bytes below ESP. *)
let arch (c : Cms.t) =
  let m = Cms.mem c in
  let bus = m.Machine.Mem.bus in
  let data = Bytes.copy m.Machine.Mem.phys.Machine.Phys.data in
  Bytes.fill data 0x70000 0x10000 '\x00';
  ( List.map (Cms.gpr c) X86.Regs.all,
    Cms.eip c,
    Cms.eflags c,
    Digest.bytes data,
    ( bus.Machine.Bus.mmio_reads,
      bus.Machine.Bus.mmio_writes,
      bus.Machine.Bus.port_ops,
      Cms.uart_output c ) )

(* Rerun each workload with the tcache capacity pinned just below the
   unconstrained run's high-water mark, forcing at least one graceful-
   degradation step; the result must be bit-identical. *)
let eviction_differential (w : Suite.t) () =
  let base = Suite.run ~cfg:Cms.Config.default w in
  let hwm = base.Cms.Engine.tcache.Tcache.hwm in
  if hwm >= 2 then begin
    let cfg =
      { Cms.Config.default with Cms.Config.tcache_capacity = hwm - 1 }
    in
    let tight = Suite.run ~cfg w in
    let tc = tight.Cms.Engine.tcache in
    check cb
      (w.Suite.name ^ ": pressure exercised")
      true
      (tc.Tcache.evicted >= 1 || tc.Tcache.flushes >= 1);
    if Workloads.Progs_kernel.is_kernel w then begin
      (* Eviction moves commit boundaries, so timer delivery lands at
         different retired instants and the preemptive kernels take a
         different (equally valid) schedule: jiffies, cur_task and the
         PIC EOI counts legitimately differ.  The kernels' contract is
         the schedule-independent pair (EAX checksum, EBX syscall
         count), both already validated against the generator's mirror
         by [Suite.run]; pin them across the pressure flip here. *)
      let pair c = (Cms.gpr c X86.Regs.eax, Cms.gpr c X86.Regs.ebx) in
      check cb
        (w.Suite.name ^ ": schedule-independent state under eviction")
        true
        (pair base = pair tight)
    end
    else
      check cb
        (w.Suite.name ^ ": architecturally identical under eviction")
        true
        (arch base = arch tight)
  end

let eviction_tests =
  List.map
    (fun w -> Alcotest.test_case w.Suite.name `Slow (eviction_differential w))
    (all_workloads ())

(* ------------------------------------------------------------------ *)
(* Chaos campaign determinism                                          *)
(* ------------------------------------------------------------------ *)

let test_chaos_campaign_deterministic () =
  let run () = Cms_fuzz.Campaign.run ~seed:7 ~cases:40 ~chaos:true () in
  let a = run () and b = run () in
  check ci "passed equal" a.Cms_fuzz.Campaign.passed b.Cms_fuzz.Campaign.passed;
  Alcotest.(check string)
    "fingerprint stable"
    (Digest.to_hex (Cms_fuzz.Campaign.fingerprint a))
    (Digest.to_hex (Cms_fuzz.Campaign.fingerprint b));
  check ci "no divergences" 0 (List.length a.Cms_fuzz.Campaign.divergences)

let suites =
  [
    ( "robust.recovery",
      [
        Alcotest.test_case "containment boundary" `Quick test_containment;
        Alcotest.test_case "forward progress under 100% faults" `Quick
          test_forward_progress;
        Alcotest.test_case "spoof-storm watchdog" `Quick
          test_spoof_storm_watchdog;
        Alcotest.test_case "pressure-only chaos profile" `Quick
          test_chaos_pressure_only;
      ] );
    ( "robust.tcache",
      [
        Alcotest.test_case "group reactivation across eviction" `Quick
          test_group_reactivation;
        Alcotest.test_case "flush hook and page index" `Quick
          test_flush_and_page_index;
        Alcotest.test_case "capacity degradation ladder" `Quick
          test_capacity_degradation;
        Alcotest.test_case "bounded adapt table" `Quick test_adapt_bounded;
      ] );
    ("robust.eviction-differential", eviction_tests);
    ( "robust.chaos",
      [
        Alcotest.test_case "campaign deterministic" `Slow
          test_chaos_campaign_deterministic;
      ] );
  ]
