(* Host fast-path invisibility tests.

   The three host-side caching layers (MMU software TLB, decoded-
   instruction cache, RAM fast path — {!Cms.Config.host_fast_paths})
   claim to be observationally invisible: same guest-visible state,
   same cost-model charges, same fault and SMC event counts, whether
   on or off.  The differential suite pins that claim over the whole
   workload corpus; the targeted cases pin each invalidation edge of
   the decoded-instruction cache. *)

module Suite = Workloads.Suite

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool

let all_workloads () =
  Workloads.Progs_boot.all @ Workloads.Progs_spec.all
  @ Workloads.Progs_apps.all @ Workloads.Progs_quake.all
  @ [ Workloads.Progs_quake.blt_driver () ]
  @ Workloads.Progs_kernel.all

(* Everything guest-visible or cost-model-visible, with the host-cache
   counters (which legitimately differ between modes) normalized out. *)
let digest (c : Cms.t) =
  let s = Cms.stats c in
  let s_norm =
    {
      s with
      Cms.Stats.tlb_hits = 0;
      tlb_misses = 0;
      dcache_hits = 0;
      dcache_misses = 0;
      dcache_invalidations = 0;
      ram_fast_reads = 0;
      ram_fast_writes = 0;
      (* background-translation queue counters depend on worker-domain
         timing, never on guest-visible behavior *)
      bg_enqueued = 0;
      bg_prefetched = 0;
      bg_deduped = 0;
      bg_dropped = 0;
      bg_compiled = 0;
      bg_installed = 0;
      bg_stale = 0;
      bg_waits = 0;
      bg_unready = 0;
      bg_failed = 0;
      bg_overlap_insns = 0;
    }
  in
  let m = Cms.mem c in
  let bus = m.Machine.Mem.bus in
  ( ( List.map (Cms.gpr c) X86.Regs.all,
      Cms.eip c,
      Cms.eflags c,
      Digest.bytes m.Machine.Mem.phys.Machine.Phys.data ),
    ( s_norm,
      Cms.total_molecules c,
      Cms.retired c ),
    ( m.Machine.Mem.smc_events,
      m.Machine.Mem.page_prot_faults,
      m.Machine.Mem.dma_smc_events,
      bus.Machine.Bus.mmio_reads,
      bus.Machine.Bus.mmio_writes,
      bus.Machine.Bus.port_ops ) )

let differential (w : Suite.t) () =
  let run fast =
    Suite.run ~cfg:{ Cms.Config.default with Cms.Config.host_fast_paths = fast } w
  in
  let on = run true and off = run false in
  check cb (w.Suite.name ^ ": identical observables") true
    (digest on = digest off);
  (* and the full VLIW perf counters agree too *)
  check cb (w.Suite.name ^ ": identical perf") true (Cms.perf on = Cms.perf off)

let differential_tests =
  List.map
    (fun w -> Alcotest.test_case w.Suite.name `Slow (differential w))
    (all_workloads ())

(* ------------------------------------------------------------------ *)
(* Decoded-instruction cache: targeted invalidation                    *)
(* ------------------------------------------------------------------ *)

(* Pure interpretation, so the decode cache is the only code cache in
   play (no translations, no SMC page protection). *)
let interp_cfg =
  { Cms.Config.default with Cms.Config.translate_threshold = max_int }

(* `l: mov eax, imm32 ; jmp l` — the imm32 lives at 0x1001, so a write
   there is self-modifying code on an unprotected, interpreted page:
   exactly the case only the decode cache's own write snoop catches. *)
let smc_listing imm =
  X86.Asm.(assemble ~base:0x1000 [ label "l"; mov_ri X86.Regs.eax imm; jmp "l" ])

let boot_loop imm =
  let c = Cms.create ~cfg:interp_cfg () in
  Cms.load c (smc_listing imm);
  Cms.boot c ~entry:0x1000;
  ignore (Cms.run ~max_insns:6 c);
  check ci "warmed" 0xaa11 (Cms.gpr c X86.Regs.eax);
  check cb "cache populated" true
    (Cms.Interp.dcache_population c.Cms.Engine.interp > 0);
  c

let test_dcache_smc_write () =
  let c = boot_loop 0xaa11 in
  (* guest store rewrites the mov's immediate *)
  Machine.Mem.write (Cms.mem c) ~size:4 0x1001 0xbb22;
  ignore (Cms.run ~max_insns:16 c);
  check ci "sees new imm" 0xbb22 (Cms.gpr c X86.Regs.eax);
  check cb "invalidated" true
    ((Cms.stats c).Cms.Stats.dcache_invalidations >= 1)

let test_dcache_dma_write () =
  let c = boot_loop 0xaa11 in
  let patch = Bytes.create 4 in
  Bytes.set_int32_le patch 0 0xcc33l;
  Machine.Mem.dma_write (Cms.mem c) 0x1001 patch;
  ignore (Cms.run ~max_insns:16 c);
  check ci "sees dma imm" 0xcc33 (Cms.gpr c X86.Regs.eax);
  check cb "invalidated" true
    ((Cms.stats c).Cms.Stats.dcache_invalidations >= 1)

let test_dcache_tcache_flush () =
  let c = boot_loop 0xaa11 in
  let interp = c.Cms.Engine.interp in
  Cms.Tcache.flush c.Cms.Engine.tcache;
  check ci "cleared" 0 (Cms.Interp.dcache_population interp);
  (* and it refills transparently *)
  ignore (Cms.run ~max_insns:12 c);
  check ci "still correct" 0xaa11 (Cms.gpr c X86.Regs.eax);
  check cb "repopulated" true (Cms.Interp.dcache_population interp > 0)

let test_dcache_counters () =
  let c = boot_loop 0xaa11 in
  let s = Cms.stats c in
  check cb "hits counted" true (s.Cms.Stats.dcache_hits > 0);
  check cb "misses counted" true (s.Cms.Stats.dcache_misses > 0);
  (* off mode: no decode cache at all *)
  let c' = Cms.create ~cfg:{ interp_cfg with Cms.Config.host_fast_paths = false } () in
  Cms.load c' (smc_listing 0xaa11);
  Cms.boot c' ~entry:0x1000;
  ignore (Cms.run ~max_insns:6 c');
  let s' = Cms.stats c' in
  check ci "no hits off" 0 s'.Cms.Stats.dcache_hits;
  check ci "no misses off" 0 s'.Cms.Stats.dcache_misses;
  check ci "no population off" 0
    (Cms.Interp.dcache_population c'.Cms.Engine.interp)

let dcache_tests =
  [
    Alcotest.test_case "smc write invalidates" `Quick test_dcache_smc_write;
    Alcotest.test_case "dma write invalidates" `Quick test_dcache_dma_write;
    Alcotest.test_case "tcache flush clears" `Quick test_dcache_tcache_flush;
    Alcotest.test_case "hit/miss counters" `Quick test_dcache_counters;
  ]

let suites =
  [
    ("hotpath.dcache", dcache_tests);
    ("hotpath.differential", differential_tests);
  ]
