(* Aggregates all test suites into one alcotest runner.  The rejecting
   translation verifier is installed for the whole run: every test that
   compiles under Config.debug (verify_translations = true) has its
   translations statically checked, and a violation fails the test via
   Codegen.Verify_failed. *)
let () = Cms_analysis.Pipeline.install ()

let () = Alcotest.run "cms-repro" (Test_x86.suites @ Test_machine.suites @ Test_vliw.suites @ Test_cms.suites @ Test_smc.suites @ Test_workloads.suites @ Test_verify.suites @ Test_props.suites @ Test_hotpath.suites @ Test_chain.suites @ Test_fuzz.suites @ Test_robust.suites @ Test_persist.suites @ Test_aot.suites @ Test_bgtrans.suites @ Test_storm.suites @ Test_fleet.suites)
