(* Fleet mode: the shared warm translation store (atomic persistence,
   truncated-image rejection, fleet-wide poison quarantine — exactly
   once), the supervisor's restart/quarantine ladder, and a seeded
   100-case slice of the fleet-chaos campaign with its record-replay
   journal round trip and determinism fingerprint. *)

module Fleet = Cms_fleet.Fleet
module Share = Cms_fleet.Share
module Tstore = Cms_persist.Tstore
module Codec = Cms_persist.Codec
module Fleetfault = Cms_robust.Fleetfault
module Srng = Cms_robust.Srng

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool

(* Unit-test supervision config: single shard, no solo mirror (specs
   self-validate against their schedule-independent expected state). *)
let fcfg = { Fleet.campaign_config with Fleet.mirror = false }

(* A warmed store plus the traffic spec that warmed it. *)
let warm_store seed =
  let specs = Fleet.traffic_specs ~seed ~machines:2 in
  let publisher, joiner =
    match specs with [ a; b ] -> (a, b) | _ -> assert false
  in
  let store = Tstore.create () in
  let r = Fleet.run_machine ~store fcfg publisher in
  check cb "publisher healthy" true (r.Fleet.r_status = Fleet.Healthy);
  check cb "publisher published" true (Tstore.size store > 0);
  (store, joiner)

(* ------------------------------------------------------------------ *)
(* Store persistence                                                   *)
(* ------------------------------------------------------------------ *)

let test_atomic_save () =
  let store, _ = warm_store 41 in
  let path = Filename.temp_file "tstore" ".img" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      Tstore.save path store;
      check cb "image written" true (Sys.file_exists path);
      check cb "no temp file left behind" false
        (Sys.file_exists (path ^ ".tmp"));
      let loaded = Tstore.load path in
      check ci "entries round-trip" (Tstore.size store) (Tstore.size loaded))

let test_truncated_image_rejected () =
  let store, _ = warm_store 42 in
  let image = Tstore.to_string store in
  let n = String.length image in
  (* every prefix is a torn image a killed publisher could have left
     without the atomic rename; all of them must be rejected *)
  List.iter
    (fun cut ->
      match Tstore.of_string (String.sub image 0 cut) with
      | _ -> Alcotest.failf "truncated image (%d/%d bytes) accepted" cut n
      | exception Codec.Corrupt _ -> ())
    [ 1; n / 4; n / 2; n - 1 ];
  (* and the untruncated image still loads *)
  check ci "full image loads" (Tstore.size store)
    (Tstore.size (Tstore.of_string image))

(* ------------------------------------------------------------------ *)
(* Poison quarantine: fleet-wide, exactly once                         *)
(* ------------------------------------------------------------------ *)

let store_stat (r : Fleet.report) f =
  match r.Fleet.r_stats with Some s -> f s | None -> 0

let test_poison_exactly_once () =
  let store, joiner = warm_store 43 in
  (* tamper *every* entry consistently (fresh MD5, matching source-page
     digest): only the structural validator / mandatory verifier stand
     between the poisoned molecules and the consumers.  Tampering all
     of them makes the test independent of which keys a timer-driven
     rerun happens to look up. *)
  let keys =
    Tstore.locked store (fun () ->
        Hashtbl.fold (fun k _ acc -> k :: acc) store.Tstore.entries [])
  in
  check cb "store was warmed" true (keys <> []);
  List.iter (fun k -> ignore (Fleetfault.tamper_code store k : bool)) keys;
  check ci "nothing quarantined yet" 0 (Tstore.poisoned_count store);
  (* consumer #1 hits tampered entries, rejects every one it sees, and
     quarantines each key for the whole fleet — each exactly once —
     then serves from its private translator and still validates *)
  let r1 = Fleet.run_machine ~store fcfg joiner in
  let rejects1 = store_stat r1 (fun s -> s.Cms.Stats.store_rejects) in
  let quar1 = store_stat r1 (fun s -> s.Cms.Stats.store_quarantines) in
  check cb "consumer 1 healthy" true (r1.Fleet.r_status = Fleet.Healthy);
  check cb "consumer 1 validated" true (r1.Fleet.r_divergence = None);
  check cb "consumer 1 rejected tampered entries" true (rejects1 > 0);
  check ci "every reject quarantined its key exactly once" rejects1 quar1;
  check ci "poison list matches" quar1 (Tstore.poisoned_count store);
  (* consumer #2 sees already-poisoned keys as misses (no re-reject, no
     re-quarantine — poisoning is per-key, exactly once, fleet-wide);
     any key it *does* reject is one consumer #1 never consulted, and
     that reject is again a first-time quarantine.  Either way it serves
     those regions from its private translator and still validates. *)
  let r2 = Fleet.run_machine ~store fcfg joiner in
  let rejects2 = store_stat r2 (fun s -> s.Cms.Stats.store_rejects) in
  let quar2 = store_stat r2 (fun s -> s.Cms.Stats.store_quarantines) in
  check cb "consumer 2 healthy" true (r2.Fleet.r_status = Fleet.Healthy);
  check cb "consumer 2 validated" true (r2.Fleet.r_divergence = None);
  check ci "consumer 2's rejects are all first-time quarantines" rejects2
    quar2;
  check ci "poison list is the union, each key once" (quar1 + quar2)
    (Tstore.poisoned_count store);
  (* the law holds for every later consumer: rejects are always
     first-time quarantines, and the poison list is their disjoint
     union — no key is ever quarantined twice *)
  let r3 = Fleet.run_machine ~store fcfg joiner in
  let rejects3 = store_stat r3 (fun s -> s.Cms.Stats.store_rejects) in
  let quar3 = store_stat r3 (fun s -> s.Cms.Stats.store_quarantines) in
  check cb "consumer 3 healthy" true (r3.Fleet.r_status = Fleet.Healthy);
  check ci "consumer 3's rejects are all first-time quarantines" rejects3
    quar3;
  check ci "poison list is still the disjoint union"
    (quar1 + quar2 + quar3)
    (Tstore.poisoned_count store)

(* ------------------------------------------------------------------ *)
(* Supervision: restart ladder and permanent quarantine                *)
(* ------------------------------------------------------------------ *)

let test_restart_from_snapshot () =
  let store, joiner = warm_store 44 in
  let spec =
    { joiner with Fleet.s_faults = [ Fleetfault.Kill { at = 30_000 } ] }
  in
  let r = Fleet.run_machine ~store fcfg spec in
  (match r.Fleet.r_status with
  | Fleet.Restarted 1 -> ()
  | s -> Alcotest.failf "expected one restart, got %s" (Fleet.status_name s));
  check ci "one kill fired" 1 r.Fleet.r_kills;
  check cb "backoff charged" true (r.Fleet.r_backoff > 0);
  check cb "restarted machine validated" true (r.Fleet.r_divergence = None)

let test_permanent_quarantine () =
  let store, joiner = warm_store 45 in
  let spec =
    { joiner with Fleet.s_faults = [ Fleetfault.Permafault { at = 30_000 } ] }
  in
  let r = Fleet.run_machine ~store fcfg spec in
  (match r.Fleet.r_status with
  | Fleet.Quarantined _ -> ()
  | s ->
      Alcotest.failf "expected permanent quarantine, got %s"
        (Fleet.status_name s));
  check ci "climbed the whole ladder" fcfg.Fleet.max_restarts
    r.Fleet.r_restarts;
  check cb "backoff at the cap position" true
    (r.Fleet.r_backoff >= fcfg.Fleet.backoff_base)

(* A quarantined machine never takes the fleet down: the other
   machines in the same (single-shard) fleet still run to health. *)
let test_containment () =
  let specs = Fleet.traffic_specs ~seed:46 ~machines:3 in
  let specs =
    List.mapi
      (fun i s ->
        if i = 1 then
          { s with Fleet.s_faults = [ Fleetfault.Permafault { at = 10_000 } ] }
        else s)
      specs
  in
  let store = Tstore.create () in
  let t = Fleet.run ~store { fcfg with Fleet.shards = 1 } specs in
  check ci "one machine quarantined" 1 t.Fleet.t_quarantined;
  check ci "the other two healthy" 2 t.Fleet.t_healthy;
  check ci "no divergences" 0 t.Fleet.t_divergences;
  check ci "no speculation violations" 0 t.Fleet.t_spec_violations

(* ------------------------------------------------------------------ *)
(* Seeded fleet-chaos campaign slice                                   *)
(* ------------------------------------------------------------------ *)

let slice_profile = { Fleetfault.default_profile with n_machines = 2 }

let test_campaign_slice () =
  let t =
    Fleet.campaign ~profile:slice_profile ~fcfg ~seed:1 ~cases:100 ()
  in
  if t.Fleet.failed > 0 then
    List.iter
      (fun (i, e) -> Fmt.epr "case %d: %s@." i e)
      (List.rev t.Fleet.failures);
  check ci "all cases pass" 100 t.Fleet.passed;
  check ci "no cross-machine divergences" 0 t.Fleet.divergences;
  check ci "no speculation violations" 0 t.Fleet.spec_violations;
  (* the slice must actually exercise the machinery it claims to *)
  check cb "restarts exercised" true (t.Fleet.restarts > 0);
  check cb "store sharing exercised" true (t.Fleet.store_hits > 0);
  check cb "store attacks exercised" true (t.Fleet.attacks > 0)

let test_campaign_deterministic () =
  let run () =
    Fleet.campaign ~profile:slice_profile ~fcfg ~seed:9 ~cases:15 ()
  in
  let a = run () and b = run () in
  check Alcotest.string "campaign fingerprints match" (Fleet.fingerprint a)
    (Fleet.fingerprint b);
  check ci "same pass count" a.Fleet.passed b.Fleet.passed

let suites =
  [
    ( "fleet.store",
      [
        Alcotest.test_case "atomic save (temp file + rename)" `Slow
          test_atomic_save;
        Alcotest.test_case "truncated image rejected" `Slow
          test_truncated_image_rejected;
        Alcotest.test_case "poison quarantined exactly once" `Slow
          test_poison_exactly_once;
      ] );
    ( "fleet.supervisor",
      [
        Alcotest.test_case "restart from snapshot with backoff" `Slow
          test_restart_from_snapshot;
        Alcotest.test_case "permanent quarantine ladder" `Slow
          test_permanent_quarantine;
        Alcotest.test_case "fault containment across the fleet" `Slow
          test_containment;
      ] );
    ( "fleet.campaign",
      [
        Alcotest.test_case "seeded 100-case slice" `Slow test_campaign_slice;
        Alcotest.test_case "fingerprint determinism" `Slow
          test_campaign_deterministic;
      ] );
  ]
