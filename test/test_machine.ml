(* Tests for the machine substrate: MMU translation and faults, bus/MMIO
   dispatch, fine-grain protection cache, SMC write events, devices and
   DMA. *)

open Machine

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool

(* ------------------------------------------------------------------ *)
(* MMU                                                                 *)
(* ------------------------------------------------------------------ *)

let test_mmu_identity () =
  let m = Mmu.create () in
  Mmu.map_identity m ~virt:0 ~pages:16 ~writable:true;
  check ci "ident" 0x1234 (Mmu.translate m Mmu.Read 0x1234);
  check ci "page 15" 0xf123 (Mmu.translate m Mmu.Write 0xf123)

let test_mmu_remap () =
  let m = Mmu.create () in
  Mmu.map m ~virt:0x400000 ~phys:0x1000 ~writable:true;
  check ci "remap" 0x1abc (Mmu.translate m Mmu.Read 0x400abc)

let expect_pf ?(write = false) ?(present = false) f =
  match f () with
  | exception X86.Exn.Fault (X86.Exn.PF p) ->
      check cb "write bit" write p.write;
      check cb "present bit" present p.present
  | _ -> Alcotest.fail "expected #PF"

let test_mmu_not_present () =
  let m = Mmu.create () in
  expect_pf (fun () -> Mmu.translate m Mmu.Read 0x5000);
  Mmu.map m ~virt:0x5000 ~phys:0x5000 ~writable:true;
  Mmu.unmap m ~virt:0x5000;
  expect_pf (fun () -> Mmu.translate m Mmu.Read 0x5000)

let test_mmu_readonly () =
  let m = Mmu.create () in
  Mmu.map m ~virt:0x2000 ~phys:0x2000 ~writable:false;
  check ci "read ok" 0x2004 (Mmu.translate m Mmu.Read 0x2004);
  expect_pf ~write:true ~present:true (fun () ->
      Mmu.translate m Mmu.Write 0x2004)

let mmu_tests =
  [
    Alcotest.test_case "identity map" `Quick test_mmu_identity;
    Alcotest.test_case "remap" `Quick test_mmu_remap;
    Alcotest.test_case "not present faults" `Quick test_mmu_not_present;
    Alcotest.test_case "read-only faults writes" `Quick test_mmu_readonly;
  ]

(* ------------------------------------------------------------------ *)
(* Fine-grain cache                                                    *)
(* ------------------------------------------------------------------ *)

let test_fg_mask () =
  let m = Finegrain.mask_of_range ~paddr:0x1000 ~len:1 in
  check cb "chunk 0" true (Int64.logand m 1L <> 0L);
  let m = Finegrain.mask_of_range ~paddr:0x1040 ~len:4 in
  check cb "chunk 1" true (Int64.logand m 2L <> 0L);
  (* write spanning chunk boundary touches both *)
  let m = Finegrain.mask_of_range ~paddr:0x103e ~len:4 in
  check cb "both chunks" true (Int64.logand m 3L = 3L)

let test_fg_cache () =
  let fg = Finegrain.create ~capacity:2 () in
  check cb "miss first" true (Finegrain.check fg ~paddr:0x1000 ~len:4 = Finegrain.Miss);
  Finegrain.install fg ~ppn:1 ~mask:1L;
  (* chunk 0 protected *)
  check cb "hit protected" true
    (Finegrain.check fg ~paddr:0x1000 ~len:4 = Finegrain.Protected_chunk);
  check cb "hit clear" true
    (Finegrain.check fg ~paddr:0x1100 ~len:4 = Finegrain.Clear)

let test_fg_lru_evict () =
  let fg = Finegrain.create ~capacity:2 () in
  Finegrain.install fg ~ppn:1 ~mask:0L;
  Finegrain.install fg ~ppn:2 ~mask:0L;
  (* touch 1 so 2 becomes LRU *)
  ignore (Finegrain.check fg ~paddr:0x1000 ~len:1);
  Finegrain.install fg ~ppn:3 ~mask:0L;
  check cb "1 kept" true (Finegrain.check fg ~paddr:0x1000 ~len:1 = Finegrain.Clear);
  check cb "2 evicted" true (Finegrain.check fg ~paddr:0x2000 ~len:1 = Finegrain.Miss)

let fg_tests =
  [
    Alcotest.test_case "chunk masks" `Quick test_fg_mask;
    Alcotest.test_case "cache hit/miss" `Quick test_fg_cache;
    Alcotest.test_case "LRU eviction" `Quick test_fg_lru_evict;
  ]

(* ------------------------------------------------------------------ *)
(* Mem: SMC protection layering                                        *)
(* ------------------------------------------------------------------ *)

let mk_mem () =
  let m = Mem.create ~ram_size:(1 lsl 20) () in
  Mmu.map_identity m.Mem.mmu ~virt:0 ~pages:256 ~writable:true;
  m

let test_write_read_roundtrip () =
  let m = mk_mem () in
  Mem.write m ~size:4 0x1000 0xdeadbeef;
  check ci "read32" 0xdeadbeef (Mem.read m ~size:4 0x1000);
  check ci "read8" 0xad (Mem.read m ~size:1 0x1002);
  Mem.write m ~size:1 0x1001 0x55;
  check ci "byte patch" 0xdead55ef (Mem.read m ~size:4 0x1000)

let test_cross_page_access () =
  let m = mk_mem () in
  Mem.write m ~size:4 0xfff 0x11223344;
  check ci "crosses" 0x11223344 (Mem.read m ~size:4 0xfff);
  check ci "page0 byte" 0x44 (Mem.read m ~size:1 0xfff);
  check ci "page1 byte" 0x33 (Mem.read m ~size:1 0x1000)

let test_smc_page_event () =
  let m = mk_mem () in
  let hits = ref [] in
  m.Mem.on_smc <-
    (fun hit ~paddr ~len:_ ->
      hits := (hit, paddr) :: !hits;
      (* handler unprotects, like CMS after invalidating translations *)
      Mem.unprotect_page m ~ppn:(paddr lsr 12));
  Mem.protect_page m ~ppn:2;
  Mem.write m ~size:4 0x2010 42;
  check ci "one event" 1 (List.length !hits);
  (match !hits with
  | [ (Mem.Page_level, 0x2010) ] -> ()
  | _ -> Alcotest.fail "wrong event");
  check ci "write landed" 42 (Mem.read m ~size:4 0x2010);
  (* page now unprotected: no more events *)
  Mem.write m ~size:4 0x2014 43;
  check ci "still one event" 1 (List.length !hits)

let test_smc_fine_grain () =
  let m = mk_mem () in
  let events = ref [] in
  m.Mem.on_smc <-
    (fun hit ~paddr ~len:_ ->
      events := hit :: !events;
      match hit with
      | Mem.Fg_miss ->
          (* CMS refills the cache: chunk 0 holds code *)
          Finegrain.install m.Mem.fg ~ppn:(paddr lsr 12) ~mask:1L
      | Mem.Fg_chunk | Mem.Page_level ->
          Mem.unprotect_page m ~ppn:(paddr lsr 12));
  Mem.protect_page m ~ppn:3;
  Mem.set_fg_mode m ~ppn:3 true;
  (* data write to chunk 4: first a miss, then clear, no more events *)
  Mem.write m ~size:4 0x3100 7;
  check ci "miss only" 1 (List.length !events);
  Mem.write m ~size:4 0x3104 8;
  check ci "no new events" 1 (List.length !events);
  (* write into chunk 0 = protected code chunk *)
  Mem.write m ~size:4 0x3004 9;
  check cb "chunk event" true (List.hd !events = Mem.Fg_chunk)

let test_fg_disabled_falls_back () =
  let m = mk_mem () in
  m.Mem.fg_enabled <- false;
  let count = ref 0 in
  m.Mem.on_smc <-
    (fun hit ~paddr ~len:_ ->
      incr count;
      check cb "page level" true (hit = Mem.Page_level);
      Mem.unprotect_page m ~ppn:(paddr lsr 12));
  Mem.protect_page m ~ppn:4;
  Mem.set_fg_mode m ~ppn:4 true;
  (* ignored when hardware absent *)
  Mem.write m ~size:4 0x4100 1;
  check ci "faulted at page level" 1 !count

let mem_tests =
  [
    Alcotest.test_case "write/read roundtrip" `Quick test_write_read_roundtrip;
    Alcotest.test_case "cross-page access" `Quick test_cross_page_access;
    Alcotest.test_case "page-level SMC event" `Quick test_smc_page_event;
    Alcotest.test_case "fine-grain filtering" `Quick test_smc_fine_grain;
    Alcotest.test_case "fg disabled falls back" `Quick test_fg_disabled_falls_back;
  ]

(* ------------------------------------------------------------------ *)
(* Platform devices                                                    *)
(* ------------------------------------------------------------------ *)

let test_uart () =
  let p = Platform.create () in
  let bus = p.Platform.mem.Mem.bus in
  Bus.port_write bus Platform.uart_base (Char.code 'h');
  Bus.port_write bus Platform.uart_base (Char.code 'i');
  check Alcotest.string "output" "hi" (Uart.output p.Platform.uart);
  Uart.feed_input p.Platform.uart [ 65 ];
  check ci "status ready" 0x21 (Bus.port_read bus (Platform.uart_base + 5));
  check ci "read input" 65 (Bus.port_read bus Platform.uart_base);
  check ci "fifo drained" 0 (Bus.port_read bus Platform.uart_base)

let test_timer_irq () =
  let p = Platform.create () in
  let bus = p.Platform.mem.Mem.bus in
  Bus.port_write bus Platform.timer_base 1000;
  Bus.port_write bus (Platform.timer_base + 1) 0;
  check cb "nothing yet" false (Irq.has_pending p.Platform.irq);
  Bus.tick bus 999;
  check cb "still nothing" false (Irq.has_pending p.Platform.irq);
  Bus.tick bus 2;
  check cb "fired" true (Irq.has_pending p.Platform.irq);
  (match Irq.ack p.Platform.irq with
  | Some v -> check ci "vector" (Irq.base_vector + Platform.timer_irq_line) v
  | None -> Alcotest.fail "no vector");
  check cb "latched once" false (Irq.has_pending p.Platform.irq)

let test_irq_mask () =
  let irq = Irq.create () in
  Irq.raise_line irq 3;
  Irq.set_mask irq (1 lsl 3);
  check cb "masked" false (Irq.has_pending irq);
  Irq.set_mask irq 0;
  check cb "unmasked shows" true (Irq.has_pending irq);
  (* priority: lowest line first *)
  Irq.raise_line irq 1;
  (match Irq.ack irq with
  | Some v -> check ci "line 1 first" (Irq.base_vector + 1) v
  | None -> Alcotest.fail "nothing pending")

let test_framebuf_mmio () =
  let p = Platform.create () in
  let m = p.Platform.mem in
  Mmu.map_identity m.Mem.mmu ~virt:Platform.fb_base ~pages:16 ~writable:true;
  check cb "is mmio" true (Bus.is_mmio m.Mem.bus Platform.fb_base);
  check cb "ram is not" false (Bus.is_mmio m.Mem.bus 0x1000);
  Mem.write m ~size:4 Platform.fb_base 0xabcd1234;
  check ci "fb readback" 0xabcd1234 (Mem.read m ~size:4 Platform.fb_base);
  check ci "fb write count" 1 p.Platform.fb.Framebuf.writes;
  (* frame port *)
  Bus.port_write m.Mem.bus Platform.frame_port 1;
  check ci "frames" 1 p.Platform.fb.Framebuf.frames

let test_disk_dma () =
  let image = Bytes.make 4096 'x' in
  Bytes.blit_string "hello-dma!" 0 image 512 10;
  let p = Platform.create ~disk_image:image ~disk_latency:100 () in
  let m = p.Platform.mem in
  Mmu.map_identity m.Mem.mmu ~virt:0 ~pages:256 ~writable:true;
  let bus = m.Mem.bus in
  Bus.port_write bus Platform.disk_base 1; (* sector 1 *)
  Bus.port_write bus (Platform.disk_base + 1) 0x8000; (* dest *)
  Bus.port_write bus (Platform.disk_base + 2) 1; (* one sector *)
  Bus.port_write bus (Platform.disk_base + 3) 1; (* start *)
  check ci "busy" 1 (Bus.port_read bus (Platform.disk_base + 3));
  Bus.tick bus 100;
  check ci "idle" 0 (Bus.port_read bus (Platform.disk_base + 3));
  check cb "irq" true (Irq.has_pending p.Platform.irq);
  check ci "data arrived" (Char.code 'h') (Mem.read m ~size:1 0x8000);
  check ci "data arrived 2" (Char.code '-') (Mem.read m ~size:1 0x8005)

let test_dma_smc_notify () =
  let image = Bytes.make 1024 'z' in
  let p = Platform.create ~disk_image:image ~disk_latency:10 () in
  let m = p.Platform.mem in
  Mmu.map_identity m.Mem.mmu ~virt:0 ~pages:256 ~writable:true;
  let notified = ref [] in
  m.Mem.on_dma_smc <-
    (fun ~ppn ->
      notified := ppn :: !notified;
      Mem.unprotect_page m ~ppn);
  Mem.protect_page m ~ppn:8;
  let bus = m.Mem.bus in
  Bus.port_write bus Platform.disk_base 0;
  Bus.port_write bus (Platform.disk_base + 1) 0x8000;
  Bus.port_write bus (Platform.disk_base + 2) 1;
  Bus.port_write bus (Platform.disk_base + 3) 1;
  Bus.tick bus 10;
  check (Alcotest.list ci) "ppn 8 notified" [ 8 ] !notified;
  check cb "unprotected" false (Mem.is_protected m ~ppn:8)

let device_tests =
  [
    Alcotest.test_case "uart" `Quick test_uart;
    Alcotest.test_case "timer irq" `Quick test_timer_irq;
    Alcotest.test_case "irq mask/priority" `Quick test_irq_mask;
    Alcotest.test_case "framebuffer mmio" `Quick test_framebuf_mmio;
    Alcotest.test_case "disk dma" `Quick test_disk_dma;
    Alcotest.test_case "dma smc notify" `Quick test_dma_smc_notify;
  ]

(* ------------------------------------------------------------------ *)
(* Host fast paths: software-TLB and RAM-fast-path invalidation.       *)
(* Every test here relies on the caches being ON (the default); the    *)
(* point is that stale entries must die on every remapping event.      *)
(* ------------------------------------------------------------------ *)

let test_tlb_remap_invalidates () =
  let m = Mmu.create () in
  Mmu.map m ~virt:0x4000 ~phys:0x1000 ~writable:true;
  (* fill the TLB for all three access kinds *)
  check ci "read 1" 0x1010 (Mmu.translate m Mmu.Read 0x4010);
  check ci "write 1" 0x1010 (Mmu.translate m Mmu.Write 0x4010);
  check ci "exec 1" 0x1010 (Mmu.translate m Mmu.Exec 0x4010);
  (* remap the same virtual page elsewhere: cached entries must die *)
  Mmu.map m ~virt:0x4000 ~phys:0x2000 ~writable:true;
  check ci "read 2" 0x2010 (Mmu.translate m Mmu.Read 0x4010);
  check ci "write 2" 0x2010 (Mmu.translate m Mmu.Write 0x4010);
  check ci "exec 2" 0x2010 (Mmu.translate m Mmu.Exec 0x4010)

let test_tlb_unmap_invalidates () =
  let m = Mmu.create () in
  Mmu.map m ~virt:0x4000 ~phys:0x1000 ~writable:true;
  check ci "hit" 0x1000 (Mmu.translate m Mmu.Read 0x4000);
  Mmu.unmap m ~virt:0x4000;
  expect_pf (fun () -> Mmu.translate m Mmu.Read 0x4000)

let test_tlb_set_writable_invalidates () =
  let m = Mmu.create () in
  Mmu.map m ~virt:0x4000 ~phys:0x1000 ~writable:true;
  check ci "write ok" 0x1000 (Mmu.translate m Mmu.Write 0x4000);
  Mmu.set_writable m ~virt:0x4000 false;
  (* the cached Write-way entry must not authorize this store *)
  expect_pf ~write:true ~present:true (fun () ->
      Mmu.translate m Mmu.Write 0x4000);
  check ci "read survives" 0x1000 (Mmu.translate m Mmu.Read 0x4000);
  Mmu.set_writable m ~virt:0x4000 true;
  check ci "write again" 0x1000 (Mmu.translate m Mmu.Write 0x4000)

let test_tlb_enable_toggle_invalidates () =
  let m = Mmu.create () in
  Mmu.map m ~virt:0x5000 ~phys:0x2000 ~writable:true;
  check ci "mapped" 0x2000 (Mmu.translate m Mmu.Read 0x5000);
  Mmu.set_enabled m false;
  (* disabled: virtual = physical; a stale TLB entry would say 0x2000 *)
  check ci "identity" 0x5000 (Mmu.translate m Mmu.Read 0x5000);
  Mmu.set_enabled m true;
  check ci "mapped again" 0x2000 (Mmu.translate m Mmu.Read 0x5000)

let test_tlb_counters_and_off_mode () =
  let m = Mmu.create () in
  Mmu.map m ~virt:0x4000 ~phys:0x1000 ~writable:true;
  ignore (Mmu.translate m Mmu.Read 0x4000);
  ignore (Mmu.translate m Mmu.Read 0x4004);
  check cb "counted a hit" true (m.Mmu.tlb_hits >= 1);
  check cb "counted a miss" true (m.Mmu.tlb_misses >= 1);
  (* with fast paths off, translation still works and counters stop *)
  m.Mmu.fast_paths <- false;
  Mmu.flush_tlb m;
  let h = m.Mmu.tlb_hits and mi = m.Mmu.tlb_misses in
  check ci "slow path" 0x1008 (Mmu.translate m Mmu.Read 0x4008);
  check ci "hits frozen" h m.Mmu.tlb_hits;
  check ci "misses frozen" mi m.Mmu.tlb_misses

let test_translate_opt_no_exceptions () =
  let m = Mmu.create () in
  check cb "unmapped" true (Mmu.translate_opt m Mmu.Read 0x9000 = None);
  Mmu.map m ~virt:0x9000 ~phys:0x3000 ~writable:false;
  check cb "mapped" true (Mmu.translate_opt m Mmu.Read 0x9abc = Some 0x3abc);
  check cb "ro write" true (Mmu.translate_opt m Mmu.Write 0x9abc = None)

(* The RAM fast path must defer to protection: page-level and
   fine-grain SMC events fire identically with the fast path on. *)
let fg_events_with mode =
  let m = mk_mem () in
  Mem.set_fast_paths m mode;
  let events = ref [] in
  m.Mem.on_smc <-
    (fun hit ~paddr ~len:_ ->
      events := hit :: !events;
      match hit with
      | Mem.Fg_miss -> Finegrain.install m.Mem.fg ~ppn:(paddr lsr 12) ~mask:1L
      | Mem.Fg_chunk | Mem.Page_level -> Mem.unprotect_page m ~ppn:(paddr lsr 12));
  Mem.protect_page m ~ppn:3;
  Mem.set_fg_mode m ~ppn:3 true;
  Mem.write m ~size:4 0x3100 7;
  Mem.write m ~size:4 0x3104 8;
  Mem.write m ~size:4 0x3004 9;
  List.rev !events

let test_fast_path_keeps_fg_events () =
  let fast = fg_events_with true and slow = fg_events_with false in
  check cb "Fg_miss then Fg_chunk" true (fast = [ Mem.Fg_miss; Mem.Fg_chunk ]);
  check cb "same either mode" true (fast = slow)

(* MMIO never takes the RAM fast path: device read/write counters must
   advance identically in both modes (the framebuffer at 0xa0000). *)
let test_fast_path_mmio_exact () =
  let counts mode =
    let plat = Platform.create ~ram_size:(2 * 1024 * 1024) () in
    let m = plat.Platform.mem in
    Mem.set_fast_paths m mode;
    Mmu.map_identity m.Mem.mmu ~virt:0 ~pages:512 ~writable:true;
    Mem.write m ~size:1 0xa0000 0x12;
    ignore (Mem.read m ~size:1 0xa0000);
    Mem.write m ~size:4 0x8000 1;
    ignore (Mem.read m ~size:4 0x8000);
    (m.Mem.bus.Bus.mmio_reads, m.Mem.bus.Bus.mmio_writes)
  in
  check cb "mmio counted both modes" true (counts true = counts false);
  check cb "exactly one read+write" true (counts true = (1, 1))

let hotpath_tests =
  [
    Alcotest.test_case "tlb: remap invalidates" `Quick
      test_tlb_remap_invalidates;
    Alcotest.test_case "tlb: unmap invalidates" `Quick
      test_tlb_unmap_invalidates;
    Alcotest.test_case "tlb: set_writable invalidates" `Quick
      test_tlb_set_writable_invalidates;
    Alcotest.test_case "tlb: enable toggle invalidates" `Quick
      test_tlb_enable_toggle_invalidates;
    Alcotest.test_case "tlb: counters + off mode" `Quick
      test_tlb_counters_and_off_mode;
    Alcotest.test_case "translate_opt: no exceptions" `Quick
      test_translate_opt_no_exceptions;
    Alcotest.test_case "fast path keeps fg events" `Quick
      test_fast_path_keeps_fg_events;
    Alcotest.test_case "fast path keeps mmio exact" `Quick
      test_fast_path_mmio_exact;
  ]

let suites =
  [
    ("machine.mmu", mmu_tests);
    ("machine.finegrain", fg_tests);
    ("machine.mem", mem_tests);
    ("machine.devices", device_tests);
    ("machine.hotpath", hotpath_tests);
  ]
