(* Interrupt-storm robustness: NIC device-model units (descriptor
   protocol, ring wrap, bounded-backlog backpressure, interrupt
   mitigation, snapshot round trip), determinism of the RX-server
   kernel under injected packet events, and a short seeded slice of
   the full storm campaign (packet storms with channel faults, IRQ
   floods, DMA bursts over translated code; speculation probe armed;
   record-replay through the serialized journal). *)

module Bus = Machine.Bus
module Nic = Machine.Nic
module Platform = Machine.Platform
module Journal = Cms_persist.Journal
module Storm = Cms_robust.Storm
module Progs_kernel = Workloads.Progs_kernel
module Suite = Workloads.Suite

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool

(* A platform gives the NIC its wired DMA callbacks and MMIO window;
   registers are driven through the bus like guest MMIO would. *)
let mk () =
  let p = Platform.create () in
  let bus = p.Platform.mem.Machine.Mem.bus in
  (p.Platform.nic, bus)

let reg bus off = Bus.read bus (Platform.nic_base + off) 4
let regw bus off v = Bus.write bus (Platform.nic_base + off) 4 v

(* Arm an [n]-slot RX ring at [ring], buffers at [bufs], each [cap]
   bytes. *)
let arm_ring bus ~ring ~bufs ~n ~cap =
  for i = 0 to n - 1 do
    Bus.write bus (ring + (8 * i)) 4 (bufs + (cap * i));
    Bus.write bus (ring + (8 * i) + 4) 4 cap
  done;
  regw bus Nic.r_rx_base ring;
  regw bus Nic.r_rx_count n;
  regw bus Nic.r_ctrl 1

let test_ring_wrap () =
  let nic, bus = mk () in
  arm_ring bus ~ring:0x6100 ~bufs:0x6400 ~n:3 ~cap:64;
  check cb "armed ring accepts" true (Nic.can_accept nic);
  check cb "inject 1" true (Nic.rx_inject nic "aa");
  check cb "inject 2" true (Nic.rx_inject nic "bbbb");
  check cb "inject 3" true (Nic.rx_inject nic (String.make 100 'c'));
  (* head wrapped to slot 0, which is still done: ring full *)
  check cb "full ring rejects" false (Nic.can_accept nic);
  check cb "inject 4 drops" false (Nic.rx_inject nic "dd");
  check ci "drop counted" 1 (reg bus Nic.r_rx_dropped);
  check ci "frames delivered" 3 (reg bus Nic.r_rx_frames);
  (* descriptor protocol: status = done | length, truncated to cap *)
  check ci "slot0 status" (Nic.rx_done lor 2) (Bus.read bus 0x6104 4);
  check ci "slot1 status" (Nic.rx_done lor 4) (Bus.read bus 0x610c 4);
  check ci "slot2 truncated" (Nic.rx_done lor 64) (Bus.read bus 0x6114 4);
  check ci "slot1 payload" (Char.code 'b') (Bus.read bus (0x6400 + 64) 1);
  (* re-arm slot 0: the wrapped head accepts again *)
  Bus.write bus 0x6104 4 64;
  check cb "re-armed accepts" true (Nic.can_accept nic);
  check cb "inject after wrap" true (Nic.rx_inject nic "ee")

let test_backlog_backpressure () =
  let nic, bus = mk () in
  arm_ring bus ~ring:0x6100 ~bufs:0x6400 ~n:2 ~cap:64;
  (* overfill the bounded backlog: capacity 32, the rest are counted
     drops at enqueue — never unbounded growth *)
  for i = 0 to 39 do
    Nic.queue_frame nic (Fmt.str "frame-%d" i)
  done;
  check ci "backlog capped" 32 (reg bus Nic.r_backlog);
  check ci "enqueue drops" 8 (reg bus Nic.r_rx_dropped);
  check ci "status: backlog pending" 1 (reg bus Nic.r_status);
  (* the first tick starts a work unit: busy bit joins the status *)
  Bus.tick bus 1;
  check ci "status: backlog + busy" 3 (reg bus Nic.r_status);
  (* drain: one work unit per latency period; 2 frames land in the
     ring, the remaining 30 hit a full ring and are counted drops *)
  let guard = ref 0 in
  while Nic.active nic && !guard < 200 do
    Bus.tick bus 400;
    incr guard
  done;
  check cb "backlog quiesced" false (Nic.active nic);
  check ci "ring frames" 2 (reg bus Nic.r_rx_frames);
  check ci "drain drops" (8 + 30) (reg bus Nic.r_rx_dropped)

let test_mitigation () =
  let nic, bus = mk () in
  arm_ring bus ~ring:0x6100 ~bufs:0x6400 ~n:8 ~cap:64;
  regw bus Nic.r_mitigation 4;
  for _ = 1 to 8 do
    ignore (Nic.rx_inject nic "x" : bool)
  done;
  check ci "raised once per 4 frames" 2 nic.Nic.irqs_raised;
  check ci "coalesced" 6 nic.Nic.irqs_coalesced;
  (* ISR is read-to-clear *)
  check ci "isr rx" Nic.isr_rx (reg bus Nic.r_isr);
  check ci "isr cleared" 0 (reg bus Nic.r_isr)

let test_snapshot_roundtrip () =
  let nic, bus = mk () in
  arm_ring bus ~ring:0x6100 ~bufs:0x6400 ~n:3 ~cap:64;
  regw bus Nic.r_mitigation 2;
  ignore (Nic.rx_inject nic "hello" : bool);
  Nic.queue_frame nic "queued";
  let saved = Nic.snapshot nic in
  (* scramble, then restore *)
  regw bus Nic.r_ctrl 0;
  regw bus Nic.r_rx_count 0;
  ignore (reg bus Nic.r_isr : int);
  Nic.queue_frame nic "junk";
  Nic.restore nic saved;
  check cb "roundtrip" true (Nic.snapshot nic = saved);
  check ci "backlog restored" 1 (reg bus Nic.r_backlog);
  check cb "accepts again" true (Nic.can_accept nic)

(* ------------------------------------------------------------------ *)
(* RX-server kernel determinism                                        *)
(* ------------------------------------------------------------------ *)

(* Fixed frames (including an oversize one that the device truncates)
   at fixed retired-clock instants: interpreter-only and the full
   translator must agree on the checksum (EAX) and the syscall count
   (EBX), and both must match the generator's mirror. *)
let test_rx_kernel_determinism () =
  let frames = [ "a"; String.make 80 'z'; "hello storm"; "\x00\xff\x7f" ] in
  let w = Progs_kernel.kernel_rx frames in
  let ats = [ 5_000; 9_000; 40_000; 120_000 ] in
  let events =
    List.map2 (fun at data -> Journal.Pkt { at; data }) ats frames
  in
  let run cfg =
    let c = Suite.prepare ~cfg w in
    ignore (Journal.install_guest c events : Journal.injector);
    let c = Suite.run_prepared w c in
    (Cms.gpr c X86.Regs.eax, Cms.gpr c X86.Regs.ebx, Cms.stats c)
  in
  let eax_i, ebx_i, _ = run Storm.cfg_interp in
  let eax_t, ebx_t, s = run Storm.cfg_translate in
  let want_eax, want_ebx = Progs_kernel.rx_expected frames in
  check ci "interp eax" want_eax eax_i;
  check ci "translate eax" want_eax eax_t;
  check ci "interp ebx" want_ebx ebx_i;
  check ci "translate ebx" want_ebx ebx_t;
  check ci "all frames delivered" (List.length frames)
    s.Cms.Stats.nic_rx_frames;
  check ci "no gated drops" 0 s.Cms.Stats.nic_rx_dropped

(* ------------------------------------------------------------------ *)
(* Campaign slice                                                      *)
(* ------------------------------------------------------------------ *)

let test_campaign_slice () =
  let t = Storm.campaign ~seed:11 ~cases:6 () in
  List.iter
    (fun (i, e) -> Alcotest.failf "storm case %d: %s" i e)
    (List.rev t.Storm.failures);
  check ci "all passed" t.Storm.cases t.Storm.passed;
  check ci "no speculation violations" 0 t.Storm.spec_violations;
  check cb "packets injected" true (t.Storm.frames_injected > 0);
  check cb "irq floods injected" true (t.Storm.irqs_injected > 0);
  check cb "events fired" true (t.Storm.events_fired > 0);
  check ci "no gated drops" 0 t.Storm.nic_drops

let suites =
  [
    ( "storm.nic",
      [
        Alcotest.test_case "ring wrap and descriptor protocol" `Quick
          test_ring_wrap;
        Alcotest.test_case "bounded backlog backpressure" `Quick
          test_backlog_backpressure;
        Alcotest.test_case "interrupt mitigation" `Quick test_mitigation;
        Alcotest.test_case "snapshot roundtrip" `Quick test_snapshot_roundtrip;
      ] );
    ( "storm.kernel",
      [
        Alcotest.test_case "rx kernel determinism" `Slow
          test_rx_kernel_determinism;
      ] );
    ( "storm.campaign",
      [ Alcotest.test_case "seeded slice" `Slow test_campaign_slice ] );
  ]
