(* Tests for the differential fuzzing subsystem: the splittable RNG,
   coverage accounting, generator determinism, the greedy shrinker's
   contract, corpus round-trips, replay of the checked-in corpus, and
   campaign-level fingerprint determinism. *)

open Cms_fuzz

let ci = Alcotest.int
let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Srng                                                                *)
(* ------------------------------------------------------------------ *)

let drain rng n = List.init n (fun _ -> Srng.next_int64 rng)

let test_srng_deterministic () =
  check
    (Alcotest.list Alcotest.int64)
    "same seed, same stream"
    (drain (Srng.create 42) 16)
    (drain (Srng.create 42) 16);
  Alcotest.(check bool)
    "different seeds differ" true
    (drain (Srng.create 1) 16 <> drain (Srng.create 2) 16)

let test_srng_split_independent () =
  (* A child split off at position k yields the same stream no matter
     how much the parent is consumed afterwards — the property the
     campaign driver relies on for per-case independence. *)
  let a = Srng.create 7 in
  let c1 = Srng.split a in
  ignore (drain a 100);
  let want = drain c1 16 in
  let b = Srng.create 7 in
  let c2 = Srng.split b in
  check (Alcotest.list Alcotest.int64) "child stream fixed at split" want
    (drain c2 16);
  (* siblings split consecutively are distinct *)
  let p = Srng.create 7 in
  let s1 = Srng.split p and s2 = Srng.split p in
  Alcotest.(check bool)
    "siblings differ" true
    (drain s1 16 <> drain s2 16)

let test_srng_bounds () =
  let rng = Srng.create 3 in
  for _ = 1 to 1000 do
    let v = Srng.int rng 7 in
    if v < 0 || v >= 7 then Alcotest.failf "int out of bounds: %d" v;
    let r = Srng.range rng 5 9 in
    if r < 5 || r > 9 then Alcotest.failf "range out of bounds: %d" r;
    let w = Srng.weighted rng [| (1, `A); (0, `B) |] in
    if w <> `A then Alcotest.fail "weighted picked zero-weight arm"
  done;
  Alcotest.check_raises "int 0 rejected" (Invalid_argument "Srng.int")
    (fun () -> ignore (Srng.int rng 0))

let srng_tests =
  [
    Alcotest.test_case "deterministic" `Quick test_srng_deterministic;
    Alcotest.test_case "split independence" `Quick test_srng_split_independent;
    Alcotest.test_case "bounds" `Quick test_srng_bounds;
  ]

(* ------------------------------------------------------------------ *)
(* Coverage                                                            *)
(* ------------------------------------------------------------------ *)

let test_coverage_table () =
  (* every exemplar has a distinct key, and the table is what [total]
     reports (plus the three event keys) *)
  let keys = List.map Coverage.key Coverage.exemplars in
  check ci "exemplar keys distinct"
    (List.length keys)
    (List.length (List.sort_uniq compare keys));
  check ci "all_keys = exemplars + events"
    (List.length keys + List.length Coverage.event_keys)
    (Coverage.total ())

let test_coverage_counting () =
  let c = Coverage.create () in
  check ci "empty" 0 (Coverage.covered c);
  Coverage.note c "lea";
  Coverage.note c "lea";
  Coverage.note c "ev.irq";
  check ci "covered" 2 (Coverage.covered c);
  Alcotest.(check bool) "hit" true (Coverage.hit c "lea");
  Alcotest.(check bool) "not hit" false (Coverage.hit c "cdq");
  check ci "count accumulates" 2 (List.assoc "lea" (Coverage.to_list c));
  Alcotest.(check bool)
    "missing excludes hits" true
    (not (List.mem "lea" (Coverage.missing c)))

let test_generator_keys_known () =
  (* whatever the generator emits must land in the declared table —
     otherwise the coverage percentage is measuring the wrong universe *)
  let cov = Coverage.create () in
  let rng = Srng.create 99 in
  for index = 0 to 19 do
    Gen.note_coverage cov (Gen.generate (Srng.split rng) ~seed:99 ~index)
  done;
  Hashtbl.iter
    (fun k _ ->
      if not (List.mem k Coverage.all_keys) then
        Alcotest.failf "generator produced unknown coverage key %S" k)
    cov

let coverage_tests =
  [
    Alcotest.test_case "key table" `Quick test_coverage_table;
    Alcotest.test_case "counting" `Quick test_coverage_counting;
    Alcotest.test_case "generator keys known" `Quick test_generator_keys_known;
  ]

(* ------------------------------------------------------------------ *)
(* Generator determinism                                               *)
(* ------------------------------------------------------------------ *)

let test_gen_deterministic () =
  let make () =
    let rng = Srng.create 5 in
    ignore (Srng.split rng);
    Gen.generate (Srng.split rng) ~seed:5 ~index:1
  in
  let a = make () and b = make () in
  Alcotest.(check bool)
    "same image" true
    ((Gen.assemble a.Gen.prog).X86.Asm.image
    = (Gen.assemble b.Gen.prog).X86.Asm.image);
  check ci "same events" (List.length a.Gen.events) (List.length b.Gen.events)

let test_gen_programs_run () =
  (* every generated program must terminate and be oracle-clean or a
     counted hang — a quick sample (the campaign tests cover more) *)
  let rng = Srng.create 11 in
  for index = 0 to 4 do
    let case = Gen.generate (Srng.split rng) ~seed:11 ~index in
    match Oracle.check (Oracle.render case) with
    | Oracle.Pass | Oracle.Hang -> ()
    | Oracle.Divergence d -> Alcotest.failf "case %d diverges: %s" index d
  done

let gen_tests =
  [
    Alcotest.test_case "deterministic" `Quick test_gen_deterministic;
    Alcotest.test_case "programs run clean" `Quick test_gen_programs_run;
  ]

(* ------------------------------------------------------------------ *)
(* Shrinker                                                            *)
(* ------------------------------------------------------------------ *)

let sample_case () =
  let rng = Srng.create 21 in
  Gen.generate (Srng.split rng) ~seed:21 ~index:0

let test_shrink_rejects_non_repro () =
  Alcotest.check_raises "non-reproducing input rejected"
    (Invalid_argument "Shrink.minimize: case does not reproduce")
    (fun () -> ignore (Shrink.minimize ~check:(fun _ -> false) (sample_case ())))

let test_shrink_preserves_predicate () =
  (* shrink against a synthetic predicate: result must still satisfy it,
     never grow, and reach the predicate's obvious minimum *)
  let case = sample_case () in
  let check_pred c =
    List.exists (fun (b : Gen.block) -> b.Gen.slots <> []) c.Gen.prog.Gen.blocks
  in
  Alcotest.(check bool) "sample satisfies predicate" true (check_pred case);
  let m = Shrink.minimize ~check:check_pred case in
  Alcotest.(check bool) "minimized still satisfies" true (check_pred m);
  Alcotest.(check bool)
    "never grows" true
    (Shrink.size m <= Shrink.size case);
  (* greedy slot deletion against this predicate leaves exactly one slot
     and nothing else shrinkable *)
  check ci "fully minimized" 1 (Shrink.size m);
  check ci "events dropped" 0 (List.length m.Gen.events)

let test_shrink_deterministic () =
  let case = sample_case () in
  let check_pred c =
    List.exists (fun (b : Gen.block) -> b.Gen.slots <> []) c.Gen.prog.Gen.blocks
  in
  let m1 = Shrink.minimize ~check:check_pred case in
  let m2 = Shrink.minimize ~check:check_pred case in
  Alcotest.(check bool)
    "same minimal image" true
    ((Gen.assemble m1.Gen.prog).X86.Asm.image
    = (Gen.assemble m2.Gen.prog).X86.Asm.image)

let shrink_tests =
  [
    Alcotest.test_case "rejects non-repro" `Quick test_shrink_rejects_non_repro;
    Alcotest.test_case "preserves predicate" `Quick test_shrink_preserves_predicate;
    Alcotest.test_case "deterministic" `Quick test_shrink_deterministic;
  ]

(* ------------------------------------------------------------------ *)
(* Corpus round-trip + replay                                          *)
(* ------------------------------------------------------------------ *)

let test_corpus_roundtrip () =
  let case = sample_case () in
  let r = Oracle.render case in
  let path = Filename.temp_file "cmsfuzz" ".case" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Corpus.save path r ~seed:21 ~comment:[ "round-trip test" ];
      let r', seed = Corpus.load path in
      check ci "seed" 21 seed;
      check ci "base" r.Oracle.listing.X86.Asm.base
        r'.Oracle.listing.X86.Asm.base;
      check ci "entry" r.Oracle.entry r'.Oracle.entry;
      check ci "max_insns" r.Oracle.max_insns r'.Oracle.max_insns;
      Alcotest.(check bool)
        "image" true
        (r.Oracle.listing.X86.Asm.image = r'.Oracle.listing.X86.Asm.image);
      Alcotest.(check bool) "events" true (r.Oracle.events = r'.Oracle.events))

(* The checked-in corpus: minimized repros of real divergences this
   fuzzer found (each fixed in the commit that added the file) plus
   hand-built SMC / interrupt edge cases.  All must replay clean. *)
let corpus_replay_tests =
  match Corpus.files "corpus" with
  | [] -> [ Alcotest.test_case "corpus present" `Quick (fun () ->
        Alcotest.fail "test/corpus is empty or missing") ]
  | files ->
      List.map
        (fun path ->
          Alcotest.test_case (Filename.basename path) `Quick (fun () ->
              match Corpus.replay path with
              | Oracle.Pass -> ()
              | Oracle.Hang -> Alcotest.failf "%s hangs" path
              | Oracle.Divergence d -> Alcotest.failf "%s diverges: %s" path d))
        files

(* ------------------------------------------------------------------ *)
(* Campaign determinism                                                *)
(* ------------------------------------------------------------------ *)

let test_campaign_deterministic () =
  let run () = Campaign.run ~seed:1 ~cases:25 () in
  let a = run () and b = run () in
  check ci "passed" a.Campaign.passed b.Campaign.passed;
  Alcotest.(check string)
    "fingerprint" (Digest.to_hex (Campaign.fingerprint a))
    (Digest.to_hex (Campaign.fingerprint b));
  check ci "no divergences" 0 (List.length a.Campaign.divergences)

let campaign_tests =
  [ Alcotest.test_case "fingerprint stable" `Slow test_campaign_deterministic ]

let suites =
  [
    ("fuzz.srng", srng_tests);
    ("fuzz.coverage", coverage_tests);
    ("fuzz.gen", gen_tests);
    ("fuzz.shrink", shrink_tests);
    ( "fuzz.corpus",
      Alcotest.test_case "round-trip" `Quick test_corpus_roundtrip
      :: corpus_replay_tests );
    ("fuzz.campaign", campaign_tests);
  ]
