(* cmsrun: run a workload from the suite under a configurable CMS.

     dune exec bin/cmsrun.exe -- --list
     dune exec bin/cmsrun.exe -- -w "Quake Demo2 (DOS)" --no-reorder -v *)

module Suite = Workloads.Suite

let all_workloads () =
  Workloads.Progs_boot.all @ Workloads.Progs_spec.all
  @ Workloads.Progs_apps.all @ Workloads.Progs_quake.all
  @ [ Workloads.Progs_quake.blt_driver () ]
  @ Workloads.Progs_kernel.all

let find_workload name =
  List.find_opt (fun w -> w.Suite.name = name) (all_workloads ())

module Persist = Cms_persist

(* A suite run is deterministic given its configuration, so a workload
   journal carries no events — just the config and the final digests.
   Replay reruns under the journal's config and compares. *)
let digests_of (t : Cms.t) =
  ( Persist.Digests.arch_hex (Persist.Digests.arch t),
    Persist.Digests.strict_hex (Persist.Digests.strict t) )

let report ~stats ~verbose w t =
  let s = Cms.stats t in
  let p = Cms.perf t in
  Fmt.pr "workload: %s@." w.Suite.name;
  Fmt.pr "eax (checksum): %#x@." (Cms.gpr t X86.Regs.eax);
  Fmt.pr "x86 retired: %d (%d interp / %d translated)@."
    (Cms.retired t) s.Cms.Stats.x86_interp s.Cms.Stats.x86_translated;
  Fmt.pr "molecules: %d  (%.2f per x86 insn)@." (Cms.total_molecules t)
    (Cms.mpi t);
  if stats || verbose then begin
    Fmt.pr "host caches: %a@." Cms.Stats.pp_host s;
    Fmt.pr "chain: %a@." Cms.Stats.pp_chain s;
    Fmt.pr "bgtrans: %a@." Cms.Stats.pp_bgtrans s;
    Fmt.pr "recovery: %a@." Cms.Stats.pp_recovery s;
    Fmt.pr "irq: %a@." Cms.Stats.pp_irq s;
    Fmt.pr "persist: %a@." Cms.Stats.pp_persist s;
    Fmt.pr "fleet: %a@." Cms.Stats.pp_fleet s
  end;
  if verbose then begin
    Fmt.pr "stats: %a@." Cms.Stats.pp s;
    Fmt.pr "perf:  %a@." Vliw.Perf.pp p;
    let out = Cms.uart_output t in
    if out <> "" then Fmt.pr "--- serial ---@.%s@." out
  end

let do_record ~stats ~verbose ~cfg w path =
  let t = Suite.run ~cfg w in
  let arch_hex, strict_hex = digests_of t in
  Persist.Journal.save path
    {
      Persist.Journal.label = w.Suite.name;
      cfg;
      guest = [];
      host = [];
      arch_hex = Some arch_hex;
      strict_hex = Some strict_hex;
    };
  report ~stats ~verbose w t;
  Fmt.pr "recorded: %s (arch %s, strict %s)@." path arch_hex strict_hex;
  `Ok ()

let do_replay ~stats ~verbose w path =
  match Persist.Journal.load path with
  | exception Persist.Codec.Corrupt msg ->
      `Error (false, Fmt.str "cannot replay %s: %s" path msg)
  | exception Sys_error msg -> `Error (false, "cannot replay: " ^ msg)
  | j ->
      if j.Persist.Journal.label <> w.Suite.name then
        `Error
          ( false,
            Fmt.str "journal %s records workload %S, not %S" path
              j.Persist.Journal.label w.Suite.name )
      else begin
        let t = Suite.run ~cfg:j.Persist.Journal.cfg w in
        let arch_hex, strict_hex = digests_of t in
        report ~stats ~verbose w t;
        let check name recorded now =
          match recorded with
          | Some r when r <> now ->
              Some (Fmt.str "%s digest mismatch (recorded %s, got %s)" name r now)
          | _ -> None
        in
        match
          List.filter_map Fun.id
            [
              check "arch" j.Persist.Journal.arch_hex arch_hex;
              check "strict" j.Persist.Journal.strict_hex strict_hex;
            ]
        with
        | [] ->
            Fmt.pr "replay: PASS (bit-identical to recording)@.";
            `Ok ()
        | ms -> `Error (false, "replay FAILED: " ^ String.concat "; " ms)
      end

let do_aot_build ~verbose ~cfg w path =
  let t = Suite.prepare ~cfg w in
  let r = Cms_analysis.Aotgen.build ~label:w.Suite.name t ~entry:w.Suite.entry in
  Persist.Aot.save path r.Cms_analysis.Aotgen.image;
  Fmt.pr "%a@." Cms_analysis.Aotgen.pp_result r;
  if verbose then
    List.iter
      (fun (d : Cms_analysis.Aotgen.demotion) ->
        Fmt.pr "  demoted %#x: %s@." d.Cms_analysis.Aotgen.leader
          d.Cms_analysis.Aotgen.why)
      r.Cms_analysis.Aotgen.demotions;
  let size =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    close_in ic;
    n
  in
  Fmt.pr "aot image: %s (%d bytes)@." path size;
  `Ok ()

let do_aot_run ~stats ~verbose ~check ~cfg w path =
  match Persist.Aot.load path with
  | exception Persist.Codec.Corrupt msg ->
      `Error (false, Fmt.str "cannot load AOT image %s: %s" path msg)
  | exception Sys_error msg -> `Error (false, "cannot load AOT image: " ^ msg)
  | img -> (
      let t = Suite.prepare ~cfg w in
      match Persist.Aot.install t img with
      | exception Persist.Aot.Stale msg ->
          `Error (false, Fmt.str "stale AOT image %s: %s" path msg)
      | rep ->
          Fmt.pr "%a@." Persist.Aot.pp_report rep;
          if verbose then
            List.iter
              (fun (entry, why) -> Fmt.pr "  rejected %#x: %s@." entry why)
              rep.Persist.Aot.rejected;
          let t = Suite.run_prepared w t in
          report ~stats ~verbose w t;
          if stats || verbose then
            Fmt.pr "aot: %a@." Cms.Stats.pp_aot (Cms.stats t);
          if not check then `Ok ()
          else begin
            (* differential gate: the same workload cold, same config,
               no image.  Deterministic workloads must be bit-identical
               architecturally; timer-driven ones are compared by their
               checksum — interrupt delivery lands on consistent exits
               (§3.3) and AOT regions tile the code differently than
               profile-guided dynamic ones. *)
            let cold = Suite.run ~cfg w in
            if w.Suite.uses_timer then
              if Cms.gpr t X86.Regs.eax <> Cms.gpr cold X86.Regs.eax then
                `Error (false, "aot-check FAILED: checksum diverged")
              else begin
                Fmt.pr
                  "aot-check: PASS (checksum %#x matches cold run; \
                   timer-driven, memory not compared)@."
                  (Cms.gpr t X86.Regs.eax);
                `Ok ()
              end
            else
              let warm_arch =
                Persist.Digests.arch_hex (Persist.Digests.arch t)
              in
              let cold_arch =
                Persist.Digests.arch_hex (Persist.Digests.arch cold)
              in
              if warm_arch <> cold_arch then
                `Error
                  ( false,
                    Fmt.str
                      "aot-check FAILED: arch digest diverged (aot %s, cold %s)"
                      warm_arch cold_arch )
              else if Cms.gpr t X86.Regs.eax <> Cms.gpr cold X86.Regs.eax then
                `Error (false, "aot-check FAILED: checksum diverged")
              else begin
                Fmt.pr "aot-check: PASS (arch %s bit-identical to cold run)@."
                  warm_arch;
                `Ok ()
              end
          end)

let do_soak ~cfg w every =
  let r =
    Persist.Soak.drill
      ~make:(fun () -> Suite.prepare ~cfg w)
      ~max_insns:w.Suite.max_insns ~every
      ~compare_mem:(not w.Suite.uses_timer) ()
  in
  Fmt.pr "soak %s: %a@." w.Suite.name Persist.Soak.pp_result r;
  if Persist.Soak.ok r then `Ok ()
  else `Error (false, "soak drill diverged")

let run_cmd name list_only no_reorder no_alias no_fg no_chaining no_closures
    no_chain no_reval no_groups no_stylized force_selfcheck interp_only
    no_fast_paths no_bg_translate threshold max_region stats record replay
    soak soak_every aot_build aot aot_check verbose =
  if list_only then begin
    List.iter (fun w -> Fmt.pr "%s@." w.Suite.name) (all_workloads ());
    `Ok ()
  end
  else
    match find_workload name with
    | None ->
        `Error (false, Fmt.str "unknown workload %S (try --list)" name)
    | Some w ->
        let cfg =
          {
            Cms.Config.default with
            Cms.Config.enable_reorder = not no_reorder;
            enable_alias_hw = not no_alias;
            enable_fine_grain = not no_fg;
            enable_chaining = not no_chaining;
            closure_exec = not no_closures;
            chain_exits = not no_chain;
            enable_self_reval = not no_reval;
            enable_groups = not no_groups;
            enable_stylized = not no_stylized;
            force_self_check = force_selfcheck;
            host_fast_paths = not no_fast_paths;
            background_translation = not no_bg_translate;
            translate_threshold =
              (if interp_only then max_int else threshold);
            max_region_insns = max_region;
          }
        in
        match (record, replay, soak, aot_build, aot) with
        | Some path, None, false, None, None ->
            do_record ~stats ~verbose ~cfg w path
        | None, Some path, false, None, None -> do_replay ~stats ~verbose w path
        | None, None, true, None, None -> do_soak ~cfg w soak_every
        | None, None, false, Some path, None -> do_aot_build ~verbose ~cfg w path
        | None, None, false, None, Some path ->
            do_aot_run ~stats ~verbose ~check:aot_check ~cfg w path
        | None, None, false, None, None ->
            if aot_check then
              `Error (false, "--aot-check requires --aot IMAGE")
            else begin
              let t = Suite.run ~cfg w in
              report ~stats ~verbose w t;
              `Ok ()
            end
        | _ ->
            `Error
              ( false,
                "--record, --replay, --soak, --aot-build and --aot are \
                 mutually exclusive" )

open Cmdliner

let workload_arg =
  Arg.(value & opt string "026.compress (Linux)"
       & info [ "w"; "workload" ] ~docv:"NAME" ~doc:"Workload to run.")

let list_only =
  Arg.(value & flag & info [ "list" ] ~doc:"List available workloads.")

let flag names doc = Arg.(value & flag & info names ~doc)

let no_reorder = flag [ "no-reorder" ] "Suppress memory reordering (Fig. 2)."
let no_alias = flag [ "no-alias" ] "Disable the alias hardware (Fig. 3)."
let no_fg = flag [ "no-fine-grain" ] "Disable fine-grain protection (Table 1)."
let no_chaining = flag [ "no-chaining" ] "Disable translation chaining."
let no_closures =
  flag [ "no-closures" ]
    "Execute translations through the two-phase decoder instead of the \
     pre-compiled closure tier.  Guest-visible behavior is identical \
     either way; the knob exists for measurement and fallback."
let no_chain =
  flag [ "no-chain" ]
    "Keep chain patching but never follow a patched exit: every \
     translation exit returns to the dispatcher.  Guest-visible behavior \
     is identical either way."
let no_reval = flag [ "no-self-reval" ] "Disable self-revalidation."
let no_groups = flag [ "no-groups" ] "Disable translation groups."
let no_stylized = flag [ "no-stylized" ] "Disable stylized-SMC translations."
let force_selfcheck =
  flag [ "force-self-check" ] "Make every translation self-checking."
let interp_only = flag [ "interp-only" ] "Never translate; pure interpreter."
let no_fast_paths =
  flag [ "no-fast-paths" ]
    "Disable the host-side caching layers (software TLB, decoded-instruction \
     cache, RAM fast path).  Guest-visible behavior is identical either way; \
     the knob exists for measurement and fallback."

let no_bg_translate =
  flag [ "no-bg-translate" ]
    "Translate synchronously on the execution path instead of handing \
     hot regions to the background translator domain.  Guest-visible \
     behavior is identical either way; the knob exists for measurement, \
     single-domain hosts and fallback."

let stats_flag =
  flag [ "stats" ]
    "Print the host-side cache hit/miss counters and the recovery \
     counters (rollbacks, demotions, quarantines, containments, \
     evictions)."

let threshold =
  Arg.(value & opt int Cms.Config.default.Cms.Config.translate_threshold
       & info [ "threshold" ] ~docv:"N"
           ~doc:"Interpreter executions before translating.")

let max_region =
  Arg.(value & opt int Cms.Config.default.Cms.Config.max_region_insns
       & info [ "max-region" ] ~docv:"N" ~doc:"Region size cap (x86 insns).")

let record_arg =
  Arg.(value & opt (some string) None
       & info [ "record" ] ~docv:"FILE"
           ~doc:"Run the workload and write a deterministic journal (config + \
                 final-state digests) to $(docv); verify later with --replay.")

let replay_arg =
  Arg.(value & opt (some string) None
       & info [ "replay" ] ~docv:"FILE"
           ~doc:"Re-run the workload under the configuration recorded in \
                 $(docv) and require bit-identical final-state digests.")

let soak_flag =
  flag [ "soak" ]
    "Run the kill-and-resume soak drill: execute in segments, snapshot at \
     each cut, destroy the machine, restore from the image and continue; \
     then differentially compare against an uninterrupted run."

let soak_every =
  Arg.(value & opt int 150_000
       & info [ "soak-every" ] ~docv:"N"
           ~doc:"Soak segment length in retired instructions.")

let aot_build_arg =
  Arg.(value & opt (some string) None
       & info [ "aot-build" ] ~docv:"FILE"
           ~doc:"Statically discover the workload's code (recursive descent \
                 from the entry point), pre-translate every discovered region \
                 under the mandatory verifier and write the ahead-of-time \
                 translation image to $(docv).  The workload is not run.")

let aot_arg =
  Arg.(value & opt (some string) None
       & info [ "aot" ] ~docv:"FILE"
           ~doc:"Boot the workload from the ahead-of-time translation image \
                 $(docv): installed translations are validated copy-on-boot \
                 against the live memory and the image's code-page digests; \
                 a stale image is refused with a diagnostic.")

let aot_check =
  flag [ "aot-check" ]
    "With --aot: also run the workload cold (no image) under the same \
     configuration and require a bit-identical architectural digest; exits \
     nonzero on divergence."

let verbose = flag [ "v"; "verbose" ] "Print detailed statistics."

let cmd =
  let doc = "run a workload on the Code Morphing Software reproduction" in
  Cmd.v
    (Cmd.info "cmsrun" ~doc)
    Term.(
      ret
        (const run_cmd $ workload_arg $ list_only $ no_reorder $ no_alias $ no_fg
       $ no_chaining $ no_closures $ no_chain $ no_reval $ no_groups
       $ no_stylized $ force_selfcheck $ interp_only $ no_fast_paths
       $ no_bg_translate $ threshold $ max_region $ stats_flag $ record_arg
       $ replay_arg $ soak_flag $ soak_every $ aot_build_arg $ aot_arg
       $ aot_check $ verbose))

let () = exit (Cmd.eval cmd)
