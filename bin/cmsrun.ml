(* cmsrun: run a workload from the suite under a configurable CMS.

     dune exec bin/cmsrun.exe -- --list
     dune exec bin/cmsrun.exe -- -w "Quake Demo2 (DOS)" --no-reorder -v *)

module Suite = Workloads.Suite

let all_workloads () =
  Workloads.Progs_boot.all @ Workloads.Progs_spec.all
  @ Workloads.Progs_apps.all @ Workloads.Progs_quake.all
  @ [ Workloads.Progs_quake.blt_driver () ]

let find_workload name =
  List.find_opt (fun w -> w.Suite.name = name) (all_workloads ())

let run_cmd name list_only no_reorder no_alias no_fg no_chain no_reval
    no_groups no_stylized force_selfcheck interp_only no_fast_paths threshold
    max_region stats verbose =
  if list_only then begin
    List.iter (fun w -> Fmt.pr "%s@." w.Suite.name) (all_workloads ());
    `Ok ()
  end
  else
    match find_workload name with
    | None ->
        `Error (false, Fmt.str "unknown workload %S (try --list)" name)
    | Some w ->
        let cfg =
          {
            Cms.Config.default with
            Cms.Config.enable_reorder = not no_reorder;
            enable_alias_hw = not no_alias;
            enable_fine_grain = not no_fg;
            enable_chaining = not no_chain;
            enable_self_reval = not no_reval;
            enable_groups = not no_groups;
            enable_stylized = not no_stylized;
            force_self_check = force_selfcheck;
            host_fast_paths = not no_fast_paths;
            translate_threshold =
              (if interp_only then max_int else threshold);
            max_region_insns = max_region;
          }
        in
        let t = Suite.run ~cfg w in
        let s = Cms.stats t in
        let p = Cms.perf t in
        Fmt.pr "workload: %s@." w.Suite.name;
        Fmt.pr "eax (checksum): %#x@." (Cms.gpr t X86.Regs.eax);
        Fmt.pr "x86 retired: %d (%d interp / %d translated)@."
          (Cms.retired t) s.Cms.Stats.x86_interp s.Cms.Stats.x86_translated;
        Fmt.pr "molecules: %d  (%.2f per x86 insn)@." (Cms.total_molecules t)
          (Cms.mpi t);
        if stats || verbose then begin
          Fmt.pr "host caches: %a@." Cms.Stats.pp_host s;
          Fmt.pr "recovery: %a@." Cms.Stats.pp_recovery s
        end;
        if verbose then begin
          Fmt.pr "stats: %a@." Cms.Stats.pp s;
          Fmt.pr "perf:  %a@." Vliw.Perf.pp p;
          let out = Cms.uart_output t in
          if out <> "" then Fmt.pr "--- serial ---@.%s@." out
        end;
        `Ok ()

open Cmdliner

let workload_arg =
  Arg.(value & opt string "026.compress (Linux)"
       & info [ "w"; "workload" ] ~docv:"NAME" ~doc:"Workload to run.")

let list_only =
  Arg.(value & flag & info [ "list" ] ~doc:"List available workloads.")

let flag names doc = Arg.(value & flag & info names ~doc)

let no_reorder = flag [ "no-reorder" ] "Suppress memory reordering (Fig. 2)."
let no_alias = flag [ "no-alias" ] "Disable the alias hardware (Fig. 3)."
let no_fg = flag [ "no-fine-grain" ] "Disable fine-grain protection (Table 1)."
let no_chain = flag [ "no-chaining" ] "Disable translation chaining."
let no_reval = flag [ "no-self-reval" ] "Disable self-revalidation."
let no_groups = flag [ "no-groups" ] "Disable translation groups."
let no_stylized = flag [ "no-stylized" ] "Disable stylized-SMC translations."
let force_selfcheck =
  flag [ "force-self-check" ] "Make every translation self-checking."
let interp_only = flag [ "interp-only" ] "Never translate; pure interpreter."
let no_fast_paths =
  flag [ "no-fast-paths" ]
    "Disable the host-side caching layers (software TLB, decoded-instruction \
     cache, RAM fast path).  Guest-visible behavior is identical either way; \
     the knob exists for measurement and fallback."

let stats_flag =
  flag [ "stats" ]
    "Print the host-side cache hit/miss counters and the recovery \
     counters (rollbacks, demotions, quarantines, containments, \
     evictions)."

let threshold =
  Arg.(value & opt int Cms.Config.default.Cms.Config.translate_threshold
       & info [ "threshold" ] ~docv:"N"
           ~doc:"Interpreter executions before translating.")

let max_region =
  Arg.(value & opt int Cms.Config.default.Cms.Config.max_region_insns
       & info [ "max-region" ] ~docv:"N" ~doc:"Region size cap (x86 insns).")

let verbose = flag [ "v"; "verbose" ] "Print detailed statistics."

let cmd =
  let doc = "run a workload on the Code Morphing Software reproduction" in
  Cmd.v
    (Cmd.info "cmsrun" ~doc)
    Term.(
      ret
        (const run_cmd $ workload_arg $ list_only $ no_reorder $ no_alias $ no_fg
       $ no_chain $ no_reval $ no_groups $ no_stylized $ force_selfcheck
       $ interp_only $ no_fast_paths $ threshold $ max_region $ stats_flag
       $ verbose))

let () = exit (Cmd.eval cmd)
