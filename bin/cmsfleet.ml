(* cmsfleet: fault-contained fleet mode.

   Runs N guest machines — the same RX-server kernel image serving
   per-machine seeded packet streams — sharded across OCaml domains
   and sharing one read-only warm translation store (copy-on-validate,
   mandatory verifier on both the publish and consume side).  Every
   machine is individually supervised: injected deaths restart from
   the last commit-boundary snapshot with capped exponential backoff,
   persistent faults climb into permanent quarantine, and survivors
   must match their schedule-independent solo mirrors.

     dune exec bin/cmsfleet.exe -- --machines 8 --shards 4 --stats
     dune exec bin/cmsfleet.exe -- --campaign --seed 1 --cases 200
     dune exec bin/cmsfleet.exe -- --machines 4 --no-store   # cold fleet

   Exits non-zero on any divergence, speculation violation, or failed
   campaign case. *)

module Fleet = Cms_fleet.Fleet
module Tstore = Cms_persist.Tstore

let run_fleet machines shards seed stats mirror no_store forensics =
  let fcfg =
    {
      Fleet.default_config with
      Fleet.shards;
      mirror;
      forensics = (if forensics = "" then None else Some forensics);
    }
  in
  let specs = Fleet.traffic_specs ~seed ~machines in
  let store = if no_store then None else Some (Tstore.create ()) in
  let t = Fleet.run ?store fcfg specs in
  Fmt.pr "%a@." Fleet.pp_totals t;
  if stats then
    List.iter
      (fun (r : Fleet.report) ->
        Fmt.pr "machine %d: %s, %d restarts (backoff %d), retired %d, \
                eax %#x ebx %d@."
          r.Fleet.r_id
          (Fleet.status_name r.Fleet.r_status)
          r.Fleet.r_restarts r.Fleet.r_backoff r.Fleet.r_retired
          r.Fleet.r_eax r.Fleet.r_ebx;
        match r.Fleet.r_stats with
        | Some s -> Fmt.pr "  %a@." Cms.Stats.pp_fleet s
        | None -> ())
      t.Fleet.t_reports;
  if t.Fleet.t_divergences > 0 || t.Fleet.t_spec_violations > 0 then exit 1

let run_campaign seed cases machines json quiet forensics =
  let profile = { Cms_robust.Fleetfault.default_profile with n_machines = machines } in
  let fcfg =
    {
      Fleet.campaign_config with
      Fleet.forensics = (if forensics = "" then None else Some forensics);
    }
  in
  let on_case (r : Fleet.case_report) =
    if (not json) && not quiet then begin
      (match r.Fleet.c_error with
      | Some e -> Fmt.pr "case %d: FAIL %s@." r.Fleet.c_idx e
      | None -> ());
      if (r.Fleet.c_idx + 1) mod 25 = 0 then
        Fmt.pr "... %d cases@." (r.Fleet.c_idx + 1)
    end
  in
  let t = Fleet.campaign ~profile ~fcfg ~on_case ~seed ~cases () in
  if json then begin
    let failures =
      List.rev_map
        (fun (i, e) -> Fmt.str "{\"case\":%d,\"reason\":%S}" i e)
        t.Fleet.failures
    in
    Fmt.pr
      "{\"seed\":%d,\"cases\":%d,\"passed\":%d,\"failed\":%d,\
       \"machines\":%d,\"restarts\":%d,\"quarantined\":%d,\
       \"kills\":%d,\"wedges\":%d,\"divergences\":%d,\
       \"speculation_violations\":%d,\"store_hits\":%d,\
       \"store_rejects\":%d,\"store_quarantines\":%d,\"degraded\":%d,\
       \"attacks\":%d,\"fingerprint\":%S,\"failures\":[%s]}@."
      seed t.Fleet.cases t.Fleet.passed t.Fleet.failed t.Fleet.machines
      t.Fleet.restarts t.Fleet.quarantined t.Fleet.kills t.Fleet.wedges
      t.Fleet.divergences t.Fleet.spec_violations t.Fleet.store_hits
      t.Fleet.store_rejects t.Fleet.store_quarantines t.Fleet.degraded
      t.Fleet.attacks (Fleet.fingerprint t)
      (String.concat "," failures)
  end
  else begin
    Fmt.pr "seed %d:@." seed;
    Fmt.pr "%a@." Fleet.pp_campaign t
  end;
  if t.Fleet.failed > 0 then exit 1

let main campaign machines shards seed cases stats mirror no_store json quiet
    forensics =
  if campaign then run_campaign seed cases machines json quiet forensics
  else run_fleet machines shards seed stats mirror no_store forensics

open Cmdliner

let campaign =
  Arg.(
    value & flag
    & info [ "campaign" ]
        ~doc:
          "Run the seeded fleet-chaos campaign (machine kills, wedges, \
           persistent faults, store corruption/tampering/truncation) \
           instead of a plain fleet.")

let machines =
  Arg.(
    value & opt int 4
    & info [ "machines" ] ~docv:"N"
        ~doc:
          "Fleet size (plain mode) or machines per campaign case \
           (--campaign).")

let shards =
  Arg.(
    value & opt int 2
    & info [ "shards" ] ~docv:"N"
        ~doc:"OCaml domains to shard the fleet across (plain mode).")

let seed =
  Arg.(
    value & opt int 1
    & info [ "seed" ] ~docv:"N"
        ~doc:"Seed; the whole run is a pure function of it.")

let cases =
  Arg.(
    value & opt int 100
    & info [ "cases" ] ~docv:"N" ~doc:"Campaign cases (--campaign).")

let stats =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:"Per-machine reports including shared-store counters.")

let mirror =
  Arg.(
    value & opt bool true
    & info [ "mirror" ] ~docv:"BOOL"
        ~doc:
          "Check every surviving machine against an interpreter-only solo \
           run of the same inputs (plain mode).")

let no_store =
  Arg.(
    value & flag
    & info [ "no-store" ]
        ~doc:"Run cold: no shared store, every machine translates privately.")

let json =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit a JSON report on stdout.")

let quiet =
  Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"No per-case progress output.")

let forensics =
  Arg.(
    value & opt string ""
    & info [ "forensics" ] ~docv:"DIR"
        ~doc:"Bundle failures (quarantines, divergences) into $(docv).")

let cmd =
  let doc = "fault-contained fleet: N machines, one shared warm store" in
  Cmd.v
    (Cmd.info "cmsfleet" ~doc)
    Term.(
      const main $ campaign $ machines $ shards $ seed $ cases $ stats
      $ mirror $ no_store $ json $ quiet $ forensics)

let () = exit (Cmd.eval cmd)
