(* cmsstorm: interrupt-storm / device-fault campaigns.

   Generates seeded storm cases against the preemptive kernel
   workloads — packet storms with generation-time channel faults
   (drops, corruptions, duplicates, reorderings) into the RX-server
   kernel, IRQ floods on arbitrary lines, asynchronous DMA bursts over
   the guest's own code image — and runs each case through the full
   gauntlet: interpreter, translator, chaos-composed translator, and a
   record/replay round trip through the serialized journal.  Every run
   arms the speculation-visibility probe on rollback.

     dune exec bin/cmsstorm.exe -- --seed 1 --cases 500
     dune exec bin/cmsstorm.exe -- --seed 7 --cases 50 --json

   Exits non-zero if any case fails. *)

module Storm = Cms_robust.Storm

let main seed cases json quiet =
  let on_case (r : Storm.case_report) =
    if (not json) && not quiet then begin
      (match r.Storm.r_error with
      | Some e -> Fmt.pr "case %d (%s): FAIL %s@." r.Storm.r_idx r.Storm.r_kind e
      | None -> ());
      if (r.Storm.r_idx + 1) mod 50 = 0 then
        Fmt.pr "... %d cases@." (r.Storm.r_idx + 1)
    end
  in
  let t = Storm.campaign ~on_case ~seed ~cases () in
  if json then begin
    let failures =
      List.rev_map
        (fun (i, e) -> Fmt.str "{\"case\":%d,\"reason\":%S}" i e)
        t.Storm.failures
    in
    Fmt.pr
      "{\"seed\":%d,\"cases\":%d,\"passed\":%d,\"failed\":%d,\
       \"speculation_violations\":%d,\"frames_injected\":%d,\
       \"irqs_injected\":%d,\"dmas_injected\":%d,\"events_fired\":%d,\
       \"nic_rx\":%d,\"nic_drops\":%d,\"irq_delivered\":%d,\
       \"irq_rollbacks\":%d,\"failures\":[%s]}@."
      seed t.Storm.cases t.Storm.passed t.Storm.failed t.Storm.spec_violations
      t.Storm.frames_injected t.Storm.irqs_injected t.Storm.dmas_injected
      t.Storm.events_fired t.Storm.nic_rx t.Storm.nic_drops
      t.Storm.irq_delivered t.Storm.irq_rollbacks
      (String.concat "," failures)
  end
  else begin
    Fmt.pr "seed %d:@." seed;
    Fmt.pr "%a@." Storm.pp_totals t
  end;
  if t.Storm.failed > 0 || t.Storm.spec_violations > 0 then exit 1

open Cmdliner

let seed =
  Arg.(
    value & opt int 1
    & info [ "seed" ] ~docv:"N"
        ~doc:"Campaign seed; the whole run is a pure function of it.")

let cases =
  Arg.(
    value & opt int 100
    & info [ "cases" ] ~docv:"N" ~doc:"Number of storm cases to generate.")

let json =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit a JSON report on stdout.")

let quiet =
  Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"No per-case progress output.")

let cmd =
  let doc = "interrupt-storm and device-fault campaigns" in
  Cmd.v
    (Cmd.info "cmsstorm" ~doc)
    Term.(const main $ seed $ cases $ json $ quiet)

let () = exit (Cmd.eval cmd)
