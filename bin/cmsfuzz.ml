(* cmsfuzz: differential fuzzer for the CMS runtime.

   Generates random guest programs with injected events (interrupts,
   DMA, protection flips), runs each under interpreter-only /
   translator / fast-paths-off oracles and demands identical
   architectural results plus verifier-clean translations.  Diverging
   cases are shrunk to minimal repros and written to the corpus.

     dune exec bin/cmsfuzz.exe -- --seed 1 --cases 1000
     dune exec bin/cmsfuzz.exe -- --seed 7 --cases 50 --json
     dune exec bin/cmsfuzz.exe -- --replay test/corpus/smc-patch.case

   Exits non-zero if any divergence (or replay failure) was found. *)

let replay_cmd files json =
  let results = List.map (fun f -> (f, Cms_fuzz.Corpus.replay f)) files in
  let failed =
    List.filter
      (fun (_, v) -> match v with Cms_fuzz.Oracle.Pass -> false | _ -> true)
      results
  in
  if json then begin
    let entry (f, v) =
      Fmt.str "{\"file\":%S,\"verdict\":%S}" f
        (match v with
        | Cms_fuzz.Oracle.Pass -> "pass"
        | Cms_fuzz.Oracle.Hang -> "hang"
        | Cms_fuzz.Oracle.Divergence r -> "divergence: " ^ r)
    in
    Fmt.pr "{\"replays\":[%s],\"failures\":%d}@."
      (String.concat "," (List.map entry results))
      (List.length failed)
  end
  else
    List.iter
      (fun (f, v) ->
        Fmt.pr "%-48s %s@." f
          (match v with
          | Cms_fuzz.Oracle.Pass -> "pass"
          | Cms_fuzz.Oracle.Hang -> "HANG"
          | Cms_fuzz.Oracle.Divergence r -> "DIVERGENCE: " ^ r))
      results;
  if failed <> [] then exit 1

let fuzz_cmd seed cases max_insns chaos out_dir forensics json quiet =
  let progress i v =
    if (not json) && not quiet then begin
      (match v with
      | Cms_fuzz.Oracle.Pass -> ()
      | Cms_fuzz.Oracle.Hang -> Fmt.pr "case %d: hang@." i
      | Cms_fuzz.Oracle.Divergence r -> Fmt.pr "case %d: DIVERGENCE %s@." i r);
      if (i + 1) mod 100 = 0 then Fmt.pr "... %d cases@." (i + 1)
    end
  in
  (match out_dir with
  | Some d when not (Sys.file_exists d) -> Sys.mkdir d 0o755
  | _ -> ());
  let r =
    Cms_fuzz.Campaign.run ~progress ?out_dir ?forensics ~max_insns ~chaos ~seed
      ~cases ()
  in
  let cov = r.Cms_fuzz.Campaign.coverage in
  let pct = Cms_fuzz.Coverage.percent cov in
  let ndiv = List.length r.Cms_fuzz.Campaign.divergences in
  if json then begin
    let divs =
      List.map
        (fun (d : Cms_fuzz.Campaign.divergence) ->
          Fmt.str "{\"case\":%d,\"reason\":%S%s}" d.Cms_fuzz.Campaign.index
            d.Cms_fuzz.Campaign.reason
            (match d.Cms_fuzz.Campaign.saved with
            | Some p -> Fmt.str ",\"corpus\":%S" p
            | None -> ""))
        r.Cms_fuzz.Campaign.divergences
    in
    let counts =
      Cms_fuzz.Coverage.to_list cov
      |> List.map (fun (k, n) -> Fmt.str "%S:%d" k n)
    in
    Fmt.pr
      "{\"seed\":%d,\"cases\":%d,\"passed\":%d,\"hangs\":%d,\
       \"divergences\":[%s],\"coverage\":{\"hit\":%d,\"total\":%d,\
       \"percent\":%.1f,\"counts\":{%s}},\"fingerprint\":%S}@."
      r.Cms_fuzz.Campaign.seed r.Cms_fuzz.Campaign.cases
      r.Cms_fuzz.Campaign.passed r.Cms_fuzz.Campaign.hangs
      (String.concat "," divs)
      (Cms_fuzz.Coverage.covered cov)
      (Cms_fuzz.Coverage.total ())
      pct
      (String.concat "," counts)
      (Digest.to_hex (Cms_fuzz.Campaign.fingerprint r))
  end
  else begin
    Fmt.pr "@.seed %d: %d cases, %d passed, %d hangs, %d divergences@."
      r.Cms_fuzz.Campaign.seed r.Cms_fuzz.Campaign.cases
      r.Cms_fuzz.Campaign.passed r.Cms_fuzz.Campaign.hangs ndiv;
    Fmt.pr "coverage: %d/%d keys (%.1f%%)@."
      (Cms_fuzz.Coverage.covered cov)
      (Cms_fuzz.Coverage.total ())
      pct;
    let missing = Cms_fuzz.Coverage.missing cov in
    if missing <> [] && not quiet then
      Fmt.pr "missing: %s@." (String.concat " " missing);
    List.iter
      (fun (d : Cms_fuzz.Campaign.divergence) ->
        Fmt.pr "divergence in case %d: %s%s@." d.Cms_fuzz.Campaign.index
          d.Cms_fuzz.Campaign.reason
          (match d.Cms_fuzz.Campaign.saved with
          | Some p -> " -> " ^ p
          | None -> ""))
      r.Cms_fuzz.Campaign.divergences;
    Fmt.pr "fingerprint: %s@."
      (Digest.to_hex (Cms_fuzz.Campaign.fingerprint r))
  end;
  if ndiv > 0 then exit 1

let main seed cases max_insns chaos replay out_dir forensics json quiet =
  match replay with
  | [] -> fuzz_cmd seed cases max_insns chaos out_dir forensics json quiet
  | files -> replay_cmd files json

open Cmdliner

let seed =
  Arg.(
    value & opt int 1
    & info [ "seed" ] ~docv:"N"
        ~doc:"Campaign seed; the whole run is a pure function of it.")

let cases =
  Arg.(
    value & opt int 100
    & info [ "cases" ] ~docv:"N" ~doc:"Number of cases to generate.")

let max_insns =
  Arg.(
    value
    & opt int Cms_fuzz.Oracle.default_max_insns
    & info [ "max-insns" ] ~docv:"N"
        ~doc:"Per-run retired-instruction budget (hitting it counts as \
              a hang).")

let chaos =
  Arg.(
    value & flag
    & info [ "chaos" ]
        ~doc:"Run every case under the chaos oracle: the translator \
              gets a seeded host-side fault-injection schedule \
              (translator deaths, spurious rollbacks, cache storms, \
              tiny capacities) and must still match the clean \
              interpreter architecturally.")

let replay =
  Arg.(
    value & opt_all file []
    & info [ "replay" ] ~docv:"FILE"
        ~doc:"Replay a corpus case through the oracle instead of \
              fuzzing (repeatable).")

let out_dir =
  Arg.(
    value
    & opt (some string) None
    & info [ "out" ] ~docv:"DIR"
        ~doc:"Write minimized diverging cases to $(docv) as corpus \
              files.")

let forensics =
  Arg.(
    value
    & opt (some string) None
    & info [ "forensics" ] ~docv:"DIR"
        ~doc:"For every divergence, dump a replayable forensics bundle \
              into $(docv): the recorded event journal, last-checkpoint \
              and final-state snapshots, the minimized case text and a \
              counter report.")

let json =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit a JSON report on stdout.")

let quiet =
  Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"No per-case progress output.")

let cmd =
  let doc = "differential fuzzing of the CMS runtime" in
  Cmd.v
    (Cmd.info "cmsfuzz" ~doc)
    Term.(
      const main $ seed $ cases $ max_insns $ chaos $ replay $ out_dir
      $ forensics $ json $ quiet)

let () = exit (Cmd.eval cmd)
