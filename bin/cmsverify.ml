(* cmsverify: sweep the workload suite with the translation verifier
   collecting diagnostics, and print a per-rule violation table.

     dune exec bin/cmsverify.exe                    # whole suite
     dune exec bin/cmsverify.exe -- -w "026.compress (Linux)"
     dune exec bin/cmsverify.exe -- --json

   Exits non-zero if any translation violated a verifier rule. *)

module Suite = Workloads.Suite

let all_workloads () =
  Workloads.Progs_boot.all @ Workloads.Progs_spec.all
  @ Workloads.Progs_apps.all @ Workloads.Progs_quake.all
  @ [ Workloads.Progs_quake.blt_driver () ]
  @ Workloads.Progs_kernel.all

(* Sweep every pre-minted translation in an AOT image through the
   static verifier — the offline counterpart of the build-time mandatory
   check, usable on an image produced elsewhere (or tampered with). *)
let verify_aot json path =
  match Cms_persist.Aot.load path with
  | exception Cms_persist.Codec.Corrupt msg ->
      `Error (false, Fmt.str "cannot load AOT image %s: %s" path msg)
  | exception Sys_error msg -> `Error (false, "cannot load AOT image: " ^ msg)
  | img ->
      let cfg = img.Cms_persist.Aot.cfg in
      let diags = ref [] in
      List.iter
        (fun (t : Cms_persist.Aot.tran) ->
          let ds =
            Cms_analysis.Tverify.verify ~cfg ~entry:t.Cms_persist.Aot.tentry
              ~ninsns:(List.length t.Cms_persist.Aot.insns)
              t.Cms_persist.Aot.code
          in
          diags := !diags @ ds)
        img.Cms_persist.Aot.trans;
      let diags = !diags in
      let violations = List.length diags in
      let ntrans = List.length img.Cms_persist.Aot.trans in
      if json then begin
        let counts =
          Cms_analysis.Pipeline.rule_counts diags
          |> List.map (fun (r, _, _, n) -> Fmt.str "\"%s\":%d" r n)
          |> String.concat ","
        in
        let ds =
          List.map Cms_analysis.Diag.to_json diags |> String.concat ","
        in
        Fmt.pr
          "{\"image\":\"%s\",\"label\":\"%s\",\"translations\":%d,\
           \"violations\":%d,\"rules\":{%s},\"diags\":[%s]}@."
          (String.escaped path)
          (String.escaped img.Cms_persist.Aot.meta.Cms_persist.Aot.label)
          ntrans violations counts ds
      end
      else begin
        Fmt.pr "aot image %s (%s): %d translations@." path
          img.Cms_persist.Aot.meta.Cms_persist.Aot.label ntrans;
        Fmt.pr "@.%a@." Cms_analysis.Pipeline.pp_table diags;
        Fmt.pr "%d violations@." violations;
        List.iter (fun d -> Fmt.pr "  %a@." Cms_analysis.Diag.pp d) diags
      end;
      if violations > 0 then exit 1;
      `Ok ()

let run_cmd name json threshold force_selfcheck aot =
  match aot with
  | Some path -> verify_aot json path
  | None ->
  let wl =
    match name with
    | None -> all_workloads ()
    | Some n -> List.filter (fun w -> w.Suite.name = n) (all_workloads ())
  in
  if wl = [] then
    `Error (false, "unknown workload (run cmsrun --list for names)")
  else begin
    let cfg =
      {
        Cms.Config.default with
        Cms.Config.verify_translations = true;
        translate_threshold = threshold;
        force_self_check = force_selfcheck;
      }
    in
    let diags = ref [] in
    let translations = ref 0 in
    let verified = ref 0 in
    Cms_analysis.Pipeline.install_collect (fun d -> diags := d :: !diags);
    List.iter
      (fun w ->
        if not json then Fmt.pr "%-36s %!" w.Suite.name;
        let before = List.length !diags in
        let t = Suite.run ~cfg w in
        let s = Cms.stats t in
        translations := !translations + s.Cms.Stats.translations;
        verified := !verified + s.Cms.Stats.translations_verified;
        if not json then
          Fmt.pr "%4d translations  %d violations@." s.Cms.Stats.translations
            (List.length !diags - before))
      wl;
    Cms_analysis.Pipeline.uninstall ();
    let diags = List.rev !diags in
    let violations = List.length diags in
    if json then begin
      let counts =
        Cms_analysis.Pipeline.rule_counts diags
        |> List.map (fun (r, _, _, n) -> Fmt.str "\"%s\":%d" r n)
        |> String.concat ","
      in
      let ds =
        List.map Cms_analysis.Diag.to_json diags |> String.concat ","
      in
      Fmt.pr
        "{\"workloads\":%d,\"translations\":%d,\"verified\":%d,\
         \"violations\":%d,\"rules\":{%s},\"diags\":[%s]}@."
        (List.length wl) !translations !verified violations counts ds
    end
    else begin
      Fmt.pr "@.%a@." Cms_analysis.Pipeline.pp_table diags;
      Fmt.pr "%d workloads, %d translations (%d verified), %d violations@."
        (List.length wl) !translations !verified violations;
      List.iter (fun d -> Fmt.pr "  %a@." Cms_analysis.Diag.pp d) diags
    end;
    if violations > 0 then exit 1;
    `Ok ()
  end

open Cmdliner

let workload_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "w"; "workload" ] ~docv:"NAME" ~doc:"Verify only this workload.")

let json =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit a JSON report on stdout.")

let threshold =
  Arg.(
    value & opt int 4
    & info [ "threshold" ] ~docv:"N"
        ~doc:"Interpreter executions before translating (low = translate \
              aggressively so the verifier sees more code).")

let force_selfcheck =
  Arg.(
    value & flag
    & info [ "force-self-check" ]
        ~doc:"Make every translation self-checking (exercises the \
              alias-guard rules everywhere).")

let aot_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "aot" ] ~docv:"FILE"
        ~doc:"Instead of running the suite, sweep every pre-minted \
              translation in the ahead-of-time image $(docv) through the \
              verifier; per-rule results honor $(b,--json).")

let cmd =
  let doc = "statically verify every translation the suite produces" in
  Cmd.v
    (Cmd.info "cmsverify" ~doc)
    Term.(
      ret
        (const run_cmd $ workload_arg $ json $ threshold $ force_selfcheck
       $ aot_arg))

let () = exit (Cmd.eval cmd)
