(** Workload suite framework.

    Each workload is a self-contained guest program built with the
    assembler DSL, mirroring one entry of the paper's benchmark set
    (Appendix A): OS boots, SPECcpu-like kernels, Windows-productivity-
    like string/dictionary code, media kernels, and the Quake-style
    self-modifying frame renderer.  Every workload self-validates: it
    leaves a checksum in EAX whose expected value is computed by the
    generator, so any translation bug turns into a hard failure rather
    than a silently wrong benchmark number. *)

type kind = Boot | App

type t = {
  name : string;
  kind : kind;
  listing : X86.Asm.listing;
  entry : int;
  expected_eax : int option;  (** architectural result to verify *)
  max_insns : int;  (** safety bound for the run *)
  disk_image : Bytes.t option;
  uses_timer : bool;
}

let make ?(kind = App) ?(expected_eax = None) ?(max_insns = 3_000_000)
    ?disk_image ?(uses_timer = false) ~name ~entry listing =
  { name; kind; listing; entry; expected_eax; max_insns; disk_image; uses_timer }

(** Build the machine for a workload — created, loaded, booted, not yet
    run.  Snapshot/record harnesses use this to instrument the engine
    before the first instruction. *)
let prepare ?(cfg = Cms.Config.default) (w : t) =
  let t = Cms.create ~cfg ?disk_image:w.disk_image () in
  Cms.load t w.listing;
  (* the suite's data regions reach up to ~0x2c0000 *)
  Cms.boot ~map_mib:4 t ~entry:w.entry;
  t

(** Run an already-prepared machine to completion and self-validate.
    Raises if the workload's self-check fails — experiment numbers from
    broken runs are worthless.  Split from [run] so harnesses that
    instrument the machine between boot and first instruction (AOT
    image install, record hooks) share the validation. *)
let run_prepared (w : t) t =
  let stop = Cms.run ~max_insns:w.max_insns t in
  (match stop with
  | Cms.Engine.Halted -> ()
  | Cms.Engine.Insn_limit ->
      failwith (Fmt.str "workload %s hit its instruction limit" w.name));
  (match w.expected_eax with
  | Some v when Cms.gpr t X86.Regs.eax <> v ->
      failwith
        (Fmt.str "workload %s: checksum mismatch: expected %#x, got %#x"
           w.name v
           (Cms.gpr t X86.Regs.eax))
  | _ -> ());
  t

(** Run a workload under [cfg]; returns the engine after the run. *)
let run ?cfg (w : t) = run_prepared w (prepare ?cfg w)

(** Molecules-per-x86-instruction for a workload under a config. *)
let mpi ?cfg w = Cms.mpi (run ?cfg w)

(** Relative degradation of config [b] versus baseline [a], in percent
    (the Figure 2 / Figure 3 metric). *)
let degradation ~baseline ~vs w =
  let a = mpi ~cfg:baseline w and b = mpi ~cfg:vs w in
  (b -. a) /. a *. 100.0
