(** Miniature preemptive kernel workloads.

    Two guests exercise the interrupt path as an *operating system*
    rather than as isolated handler stubs:

    - {!kernel_rr}: a timer-sliced round-robin kernel over three
      compute tasks.  Context switches go through the interrupt path —
      the timer handler saves the interrupted task's registers on its
      own stack, parks its ESP in a task table, picks the next runnable
      task and returns into it with [iret].  Tasks request services via
      [int 0x30] (fold a partial result into a shared accumulator) and
      terminate via [int 0x31].
    - {!kernel_echo}: the same kernel with one task replaced by a
      packet-echo server.  It transmits frames through the NIC in
      loopback mode, waits for the looped frame to land in the armed RX
      descriptor by DMA, folds the received payload into its running
      checksum and re-arms the ring — the kernel meanwhile keeps
      time-slicing the other tasks and servicing the NIC's RX/TX
      interrupts.

    Scheduling is asynchronous — *when* a task is preempted depends on
    the execution configuration's molecule clock — so the architectural
    result must not depend on the schedule.  Every task computes a
    function of its private registers only (preserved exactly by the
    context switch), and tasks meet only in the service accumulator,
    which is updated commutatively (addition) with interrupts disabled.
    EAX (the accumulator) and EBX (the total syscall count) are
    therefore schedule-independent and mirrored by the generator, while
    jiffies / stray-IRQ / NIC-IRQ tallies stay in memory cells that the
    checksum deliberately excludes.  Every IRQ vector gets at least a
    counting handler, so fault-injection campaigns can flood any line
    without wandering through a null IDT entry. *)

open X86.Asm

let mask32 x = x land 0xffffffff
let rol32 x n = mask32 ((x lsl n) lor (mask32 x lsr (32 - n)))

(* ------------------------------------------------------------------ *)
(* Memory map (all below the 0xA0000 framebuffer window)               *)
(* ------------------------------------------------------------------ *)

let idt = 0x1000
let idt_ptr = 0x5000

(* kernel cells *)
let cur_task = 0x6000
let done_count = 0x6004
let svc_acc = 0x6008
let sys_count = 0x600c
let jiffies = 0x6010
let stray_cell = 0x6014
let nic_cell = 0x6018
let task_esp = 0x6020 (* 4 words *)
let task_state = 0x6040 (* 4 words: 0 = runnable, 1 = done *)

(* NIC rings and buffers (kernel_echo) *)
let rx_ring = 0x6100
let tx_ring = 0x6110
let rx_buf = 0x6200
let tx_buf = 0x6300
let buf_cap = 64

(* Per-task stacks: task 0 keeps the boot stack (0x80000, growing
   down); tasks 1..3 get 16 KiB regions below it.  All of them live in
   the canonical 0x70000..0x80000 stack window that the differential
   harnesses zero before digesting memory — dead bytes below a task's
   ESP record *where* it was preempted, which is molecule-clock
   territory, not architecture. *)
let stack_top i = 0x80000 - (i * 0x4000)

let ntasks = 4 (* power of two: the scheduler masks with [ntasks-1] *)
let timer_period = 12_000

let sys_service = 0x30
let sys_exit = 0x31

(* ------------------------------------------------------------------ *)
(* Task bodies                                                         *)
(* ------------------------------------------------------------------ *)

type compute = { seed : int; rounds : int; inner : int; mult : int }

(* Private-register compute kernel: EBX accumulates, ESI/EDI hold the
   constants, EBP counts rounds, ECX the inner loop.  One [int 0x30]
   per round publishes the partial sum; [int 0x31] terminates. *)
let compute_items i (p : compute) =
  [
    label (Fmt.str "task_%d" i);
    mov_ri esi p.mult;
    mov_ri edi p.seed;
    mov_ri ebx p.seed;
    mov_ri ebp p.rounds;
    label (Fmt.str "t%d_round" i);
    mov_ri ecx p.inner;
    label (Fmt.str "t%d_inner" i);
    mov_rr edx ecx;
    imul_rr edx esi;
    add_rr edx edi;
    xor_rr ebx edx;
    rol_ri ebx 3;
    dec_r ecx;
    jne (Fmt.str "t%d_inner" i);
    mov_rr eax ebx;
    int_ sys_service;
    dec_r ebp;
    jne (Fmt.str "t%d_round" i);
    int_ sys_exit;
  ]

(* Generator-side mirror of [compute_items]: returns the value the task
   publishes per round and the number of service calls it makes. *)
let compute_sim (p : compute) ~acc ~calls =
  let b = ref p.seed in
  for _ = 1 to p.rounds do
    for c = p.inner downto 1 do
      b := rol32 (!b lxor mask32 ((c * p.mult) + p.seed)) 3
    done;
    acc := mask32 (!acc + !b);
    incr calls
  done;
  incr calls (* the exit syscall *)

type echo = { e_seed : int; e_rounds : int; e_words : int; e_mult : int }

(* Packet-echo server: fill a frame from the running checksum, transmit
   it through the loopback NIC, spin on the RX descriptor's status word
   (plain RAM, written by device DMA) until the frame returns, fold the
   received payload back in, re-arm the ring, publish the partial sum.
   One frame in flight at a time, so no configuration can drop one. *)
let echo_items i (p : echo) =
  [
    label (Fmt.str "task_%d" i);
    mov_ri esi Machine.Platform.nic_base;
    mov_ri edx p.e_mult;
    mov_ri ebx p.e_seed;
    mov_ri edi p.e_rounds;
    label "e_round";
    mov_ri ebp tx_buf;
    mov_ri ecx p.e_words;
    label "e_fill";
    mov_rr eax ecx;
    imul_rr eax edx;
    xor_rr eax ebx;
    rol_ri eax 7;
    mov_rr ebx eax;
    mov_mr (mb ebp) ebx;
    add_ri ebp 4;
    dec_r ecx;
    jne "e_fill";
    mov_mi (m (tx_ring + 4)) (Machine.Nic.tx_ready lor (p.e_words * 4));
    mov_mr (mbd esi Machine.Nic.r_tx_kick) eax;
    label "e_poll";
    mov_rm eax (m (rx_ring + 4));
    test_ri eax Machine.Nic.rx_done;
    je "e_poll";
    mov_ri ebp rx_buf;
    mov_ri ecx p.e_words;
    label "e_sum";
    xor_rm ebx (mb ebp);
    rol_ri ebx 1;
    add_ri ebp 4;
    dec_r ecx;
    jne "e_sum";
    mov_mi (m (rx_ring + 4)) buf_cap;
    mov_rr eax ebx;
    int_ sys_service;
    dec_r edi;
    jne "e_round";
    mov_mi (mbd esi Machine.Nic.r_ctrl) 0;
    int_ sys_exit;
  ]

(* RX-server task: serve exactly [nframes] externally injected frames.
   The storm campaign injects the frames as retired-clock packet events
   through the journal's gated installer, which delivers each one only
   when the NIC line latch is clear and the descriptor has been
   re-armed — so all [nframes] land, in order, in every configuration,
   and the checksum below is a pure function of the injected frame
   list.  Per frame: fold the DMA-written length, then every payload
   byte; publish the partial sum; re-arm. *)
let rx_seed = 0x0ecff00d

let rx_items i ~nframes =
  [
    label (Fmt.str "task_%d" i);
    mov_ri esi Machine.Platform.nic_base;
    mov_ri edi nframes;
    mov_ri ebx rx_seed;
    label "r_wait";
    mov_rm eax (m (rx_ring + 4));
    test_ri eax Machine.Nic.rx_done;
    je "r_wait";
    and_ri eax 0xffff;
    add_rr ebx eax;
    mov_rr ecx eax;
    mov_ri ebp rx_buf;
    test_rr ecx ecx;
    je "r_skip";
    label "r_bytes";
    movzx edx (mb ebp);
    rol_ri ebx 5;
    xor_rr ebx edx;
    inc_r ebp;
    dec_r ecx;
    jne "r_bytes";
    label "r_skip";
    mov_mi (m (rx_ring + 4)) buf_cap;
    mov_rr eax ebx;
    int_ sys_service;
    dec_r edi;
    jne "r_wait";
    mov_mi (mbd esi Machine.Nic.r_ctrl) 0;
    int_ sys_exit;
  ]

(* Mirror of [rx_items], including the device's truncation of frames
   longer than the descriptor's armed capacity. *)
let rx_sim frames ~acc ~calls =
  let b = ref rx_seed in
  List.iter
    (fun data ->
      let len = min (String.length data) buf_cap in
      b := mask32 (!b + len);
      for k = 0 to len - 1 do
        b := rol32 !b 5 lxor Char.code data.[k]
      done;
      acc := mask32 (!acc + !b);
      incr calls)
    frames;
  incr calls

let echo_sim (p : echo) ~acc ~calls =
  let b = ref p.e_seed in
  let frame = Array.make p.e_words 0 in
  for _ = 1 to p.e_rounds do
    for c = p.e_words downto 1 do
      b := rol32 (mask32 (c * p.e_mult) lxor !b) 7;
      frame.(p.e_words - c) <- !b
    done;
    (* loopback returns the frame verbatim *)
    Array.iter (fun w -> b := rol32 (!b lxor w) 1) frame;
    acc := mask32 (!acc + !b);
    incr calls
  done;
  incr calls

(* ------------------------------------------------------------------ *)
(* The kernel proper                                                   *)
(* ------------------------------------------------------------------ *)

(* Registers saved across a context switch, in push order. *)
let save_regs = [ eax; ecx; edx; ebx; ebp; esi; edi ]
let frame_words = 2 + List.length save_regs (* EFLAGS, EIP, 7 GPRs *)

let kernel_items ?(nic_ctrl = 7) ~with_nic ~tasks () =
  let vec line = idt + (4 * (Machine.Irq.base_vector + line)) in
  let idt_setup =
    [ mov_rl eax "h_stray" ]
    @ List.concat
        (List.init Machine.Irq.lines (fun line ->
             [ mov_mr (m (vec line)) eax ]))
    @ [
        mov_rl eax "h_timer";
        mov_mr (m (vec Machine.Platform.timer_irq_line)) eax;
        mov_rl eax "h_svc";
        mov_mr (m (idt + (4 * sys_service))) eax;
        mov_rl eax "h_exit";
        mov_mr (m (idt + (4 * sys_exit))) eax;
      ]
    @ (if with_nic then
         [
           mov_rl eax "h_nic";
           mov_mr (m (vec Machine.Platform.nic_irq_line)) eax;
         ]
       else [])
    @ [ mov_mi (m idt_ptr) idt; lidt (m idt_ptr) ]
  in
  let cells =
    List.map
      (fun c -> mov_mi (m c) 0)
      [ cur_task; done_count; svc_acc; sys_count; jiffies; stray_cell; nic_cell ]
  in
  (* fabricate an interrupt frame + saved registers for each task, as
     if it had just been preempted at its entry point *)
  let frames =
    List.concat
      (List.init (ntasks - 1) (fun k ->
           let i = k + 1 in
           let top = stack_top i in
           [
             mov_mi (m (top - 4)) (X86.Flags.if_mask lor X86.Flags.reserved);
             mov_rl eax (Fmt.str "task_%d" i);
             mov_mr (m (top - 8)) eax;
           ]
           @ List.mapi
               (fun j _ -> mov_mi (m (top - 12 - (4 * j))) 0)
               save_regs
           @ [
               mov_mi (m (task_esp + (4 * i))) (top - (4 * frame_words));
               mov_mi (m (task_state + (4 * i))) 0;
             ]))
    @ [ mov_mi (m task_state) 0 ]
  in
  let nic_setup =
    if not with_nic then []
    else
      [
        mov_mi (m rx_ring) rx_buf;
        mov_mi (m (rx_ring + 4)) buf_cap;
        mov_mi (m tx_ring) tx_buf;
        mov_mi (m (tx_ring + 4)) 0;
        mov_ri ebx Machine.Platform.nic_base;
        mov_mi (mbd ebx Machine.Nic.r_rx_base) rx_ring;
        mov_mi (mbd ebx Machine.Nic.r_rx_count) 1;
        mov_mi (mbd ebx Machine.Nic.r_tx_base) tx_ring;
        mov_mi (mbd ebx Machine.Nic.r_tx_count) 1;
        mov_mi (mbd ebx Machine.Nic.r_mitigation) 1;
        mov_mi (mbd ebx Machine.Nic.r_ctrl) nic_ctrl;
      ]
  in
  let timer_on =
    [
      mov_ri eax (timer_period land 0xffff);
      mov_ri edx Machine.Platform.timer_base;
      out32_dx;
      mov_ri eax (timer_period lsr 16);
      mov_ri edx (Machine.Platform.timer_base + 1);
      out32_dx;
      sti;
    ]
  in
  let idle =
    [
      label "idle";
      cmp_mi (m done_count) (ntasks - 1);
      je "finish";
      hlt;
      jmp "idle";
      label "finish";
      cli;
      mov_ri eax 0;
      mov_ri edx Machine.Platform.timer_base;
      out32_dx;
      mov_ri edx (Machine.Platform.timer_base + 1);
      out32_dx;
      mov_rm eax (m svc_acc);
      mov_rm ebx (m sys_count);
      hlt;
    ]
  in
  let handlers =
    [
      (* timer: full context switch *)
      label "h_timer";
    ]
    @ List.map push_r save_regs
    @ [ inc_m (m jiffies); jmp "do_switch" ]
    @ [ label "h_exit" ]
    @ List.map push_r save_regs
    @ [
        inc_m (m sys_count);
        mov_rm eax (m cur_task);
        mov_mi (m ~index:(eax, 4) task_state) 1;
        inc_m (m done_count);
        jmp "do_switch";
        (* shared switch tail: park ESP, pick the next runnable task
           (task 0 is always runnable, so the scan terminates), resume *)
        label "do_switch";
        mov_rm eax (m cur_task);
        mov_mr (m ~index:(eax, 4) task_esp) esp;
        label "pick";
        inc_r eax;
        and_ri eax (ntasks - 1);
        cmp_mi (m ~index:(eax, 4) task_state) 0;
        jne "pick";
        mov_mr (m cur_task) eax;
        mov_rm esp (m ~index:(eax, 4) task_esp);
      ]
    @ List.map pop_r (List.rev save_regs)
    @ [
        iret;
        (* service call: commutative fold under IF=0 *)
        label "h_svc";
        add_mr (m svc_acc) eax;
        inc_m (m sys_count);
        iret;
        label "h_stray";
        inc_m (m stray_cell);
        iret;
      ]
    @
    if with_nic then
      [
        label "h_nic";
        push_r eax;
        mov_rm eax (m (Machine.Platform.nic_base + Machine.Nic.r_isr));
        inc_m (m nic_cell);
        pop_r eax;
        iret;
      ]
    else []
  in
  idt_setup @ cells @ frames @ nic_setup @ timer_on @ idle @ handlers @ tasks

(* ------------------------------------------------------------------ *)
(* Workloads                                                           *)
(* ------------------------------------------------------------------ *)

let c1 = { seed = 0x12345601; rounds = 40; inner = 300; mult = 0x01000193 }
let c2 = { seed = 0x0badf00d; rounds = 50; inner = 240; mult = 0x9e3779b1 }
let c3 = { seed = 0x00c0ffee; rounds = 60; inner = 200; mult = 0x85ebca6b }
let e1 = { e_seed = 0x5eed0001; e_rounds = 40; e_words = 8; e_mult = 0x01000193 }

let expected ~sims =
  let acc = ref 0 and calls = ref 0 in
  List.iter (fun sim -> sim ~acc ~calls) sims;
  (!acc, !calls)

let build ?nic_ctrl ~name ~with_nic ~tasks ~sims () =
  let items = kernel_items ?nic_ctrl ~with_nic ~tasks () in
  let listing = assemble ~base:0x10000 items in
  let eax, _calls = expected ~sims in
  Suite.make ~kind:Suite.Boot ~name ~entry:0x10000 ~max_insns:4_000_000
    ~uses_timer:true ~expected_eax:(Some eax) listing

(** Timer-sliced round-robin over three compute tasks. *)
let kernel_rr =
  build ~name:"RR Kernel" ~with_nic:false
    ~tasks:(compute_items 1 c1 @ compute_items 2 c2 @ compute_items 3 c3)
    ~sims:[ compute_sim c1; compute_sim c2; compute_sim c3 ]
    ()

(** The same kernel with a packet-echo server task driving the NIC in
    loopback mode under the other tasks' compute load. *)
let kernel_echo =
  build ~name:"Packet Echo Kernel" ~with_nic:true
    ~tasks:(echo_items 1 e1 @ compute_items 2 c2 @ compute_items 3 c3)
    ~sims:[ echo_sim e1; compute_sim c2; compute_sim c3 ]
    ()

(** The same kernel with an RX-server task that consumes exactly the
    given externally injected frames (storm-campaign parameterized, so
    not part of {!all}).  EAX/EBX are a pure function of [frames]. *)
let kernel_rx frames =
  if frames = [] then invalid_arg "Progs_kernel.kernel_rx: no frames";
  build ~nic_ctrl:1 ~name:"RX Server Kernel" ~with_nic:true
    ~tasks:
      (rx_items 1 ~nframes:(List.length frames)
      @ compute_items 2 c2 @ compute_items 3 c3)
    ~sims:[ rx_sim frames; compute_sim c2; compute_sim c3 ]
    ()

(** (expected EAX, expected EBX) for {!kernel_rx} on [frames]. *)
let rx_expected frames =
  expected ~sims:[ rx_sim frames; compute_sim c2; compute_sim c3 ]

(** Expected EBX (total syscall count) — fixed in every schedule. *)
let expected_calls w =
  let sims =
    if w == kernel_echo then [ echo_sim e1; compute_sim c2; compute_sim c3 ]
    else [ compute_sim c1; compute_sim c2; compute_sim c3 ]
  in
  snd (expected ~sims)

let all = [ kernel_rr; kernel_echo ]

(** Preemptive-kernel workloads validate through schedule-independent
    registers (EAX checksum, EBX syscall count), not raw memory: timer
    delivery boundaries move with translation shape, so jiffies,
    [cur_task] and the saved task stacks legitimately differ between
    configurations that place commit boundaries differently. *)
let is_kernel w = List.memq w all
