(** Memory-mapped frame buffer (the "VGA hole").

    Backed by private storage and exposed as an MMIO window, so every
    access goes over the device path: a *speculatively reordered* memory
    atom that touches it triggers the native MMIO-speculation exception
    (paper §3.4), while in-order accesses proceed.  A frame port lets
    workloads signal end-of-frame; the Quake-style experiment measures
    frames per million molecules from it. *)

type t = {
  base : int;
  size : int;
  mem : Bytes.t;
  mutable writes : int;
  mutable reads : int;
  mutable frames : int;
}

let create ~base ~size =
  { base; size; mem = Bytes.make size '\x00'; writes = 0; reads = 0; frames = 0 }

let mmio_handler t =
  {
    Bus.lo = t.base;
    hi = t.base + t.size;
    mread =
      (fun paddr size ->
        t.reads <- t.reads + 1;
        let off = paddr - t.base in
        match size with
        | 1 -> Char.code (Bytes.get t.mem off)
        | 4 ->
            if off + 4 <= t.size then
              Int32.to_int (Bytes.get_int32_le t.mem off) land 0xffffffff
            else 0
        | _ -> 0);
    mwrite =
      (fun paddr size v ->
        t.writes <- t.writes + 1;
        let off = paddr - t.base in
        match size with
        | 1 -> Bytes.set t.mem off (Char.chr (v land 0xff))
        | 4 ->
            if off + 4 <= t.size then Bytes.set_int32_le t.mem off (Int32.of_int v)
        | _ -> ());
  }

(* Snapshot support: contents plus counters.  Restore blits into the
   existing backing store ([mem] is fixed-size per window). *)
let snapshot t = (Bytes.copy t.mem, t.writes, t.reads, t.frames)

let restore t (mem, writes, reads, frames) =
  if Bytes.length mem <> t.size then
    invalid_arg "Framebuf.restore: size mismatch";
  Bytes.blit mem 0 t.mem 0 t.size;
  t.writes <- writes;
  t.reads <- reads;
  t.frames <- frames

(** Checksum of the frame-buffer contents, for workload validation. *)
let checksum t =
  let acc = ref 0 in
  Bytes.iter (fun c -> acc := ((!acc * 31) + Char.code c) land 0xffffffff) t.mem;
  !acc

let attach t bus ~frame_port =
  Bus.add_mmio bus (mmio_handler t);
  Bus.add_port bus frame_port
    {
      Bus.pread = (fun _ -> t.frames);
      pwrite = (fun _ _ -> t.frames <- t.frames + 1);
    }
