(** A small interrupt controller (PIC).

    Devices raise numbered lines; the CPU polls for the highest-priority
    unmasked pending line and acknowledges it, receiving the x86 vector
    (line + [base_vector]).  Matches the subset's needs: level-style
    latched lines, a mask register, EOI-free auto-ack. *)

let base_vector = 0x20
let lines = 16

type t = {
  mutable pending : int;  (** bitmask of latched lines *)
  mutable mask : int;  (** 1 = masked (inhibited) *)
  mutable raised_total : int;
  mutable delivered_total : int;
  mutable deferred_total : int;
      (** raises that could not become a fresh delivery immediately:
          the line was already latched, or masked — the raise merged
          into the pending latch instead of producing a new vector *)
}

let create () =
  {
    pending = 0;
    mask = 0;
    raised_total = 0;
    delivered_total = 0;
    deferred_total = 0;
  }

let raise_line t line =
  if line < 0 || line >= lines then invalid_arg "Irq.raise_line";
  let bit = 1 lsl line in
  if t.pending land bit <> 0 || t.mask land bit <> 0 then
    t.deferred_total <- t.deferred_total + 1;
  t.pending <- t.pending lor bit;
  t.raised_total <- t.raised_total + 1

let set_mask t m = t.mask <- m land 0xffff

(* Snapshot support: the full controller state as a plain tuple. *)
let snapshot t =
  (t.pending, t.mask, t.raised_total, t.delivered_total, t.deferred_total)

let restore t (pending, mask, raised_total, delivered_total, deferred_total) =
  t.pending <- pending;
  t.mask <- mask;
  t.raised_total <- raised_total;
  t.delivered_total <- delivered_total;
  t.deferred_total <- deferred_total

(** Is any unmasked interrupt pending? *)
let has_pending t = t.pending land lnot t.mask land 0xffff <> 0

(** Acknowledge the highest-priority (lowest-numbered) unmasked pending
    line; returns its x86 vector and clears the latch. *)
let ack t =
  let avail = t.pending land lnot t.mask land 0xffff in
  if avail = 0 then None
  else begin
    let rec lowest i = if avail land (1 lsl i) <> 0 then i else lowest (i + 1) in
    let line = lowest 0 in
    t.pending <- t.pending land lnot (1 lsl line);
    t.delivered_total <- t.delivered_total + 1;
    Some (base_vector + line)
  end
