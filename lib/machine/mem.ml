(** The guest memory system: MMU + bus + CMS translated-page protection.

    Every guest-visible access funnels through here, from both the
    interpreter and committed translation stores, so self-modifying-code
    detection sees all writes regardless of execution mode.

    Protection is layered (paper §3.6):

    - a physical page can be [protected] because translations were made
      from code on it; a store that hits a protected page raises an
      *SMC event* toward CMS (it is not a guest-visible fault);
    - a protected page may additionally be in *fine-grain mode*: the
      {!Finegrain} hardware cache then filters writes by 64-byte chunk,
      so stores to pure-data chunks proceed without any fault.

    The guest's own #PF (not-present / read-only page) is raised from
    {!Mmu.translate} before protection is even consulted.

    Hot-path layer: ordinary-RAM accesses — physical pages that are in
    RAM, not shadowed by an MMIO window, and not under CMS protection —
    bypass {!Bus} dispatch and hit {!Phys} directly.  A per-page state
    table classifies every physical page; {!protect_page} /
    {!unprotect_page} keep it coherent with the SMC machinery (so every
    store that protection must see still takes the slow path), and a
    {!Bus} generation counter triggers a rebuild if the MMIO topology
    changes.  The fast path is skipped while a one-shot [write_pass] is
    armed so the SMC handler's authorization is always consumed by
    {!check_store}.  All of it is gated on [fast_paths]
    ({!Config.host_fast_paths}).

    Decode-cache snoop: pages whose bytes are held decoded by the
    interpreter's instruction cache are flagged in [code_pages]; every
    write path (ordered guest writes, committed translation stores via
    {!commit_write}, DMA, image loads) reports landing writes so the
    cache entry dies before stale bytes could execute. *)

type smc_hit =
  | Page_level  (** page-granular protection fault *)
  | Fg_miss  (** fine-grain cache miss; software refill needed *)
  | Fg_chunk  (** write overlaps a protected chunk *)

exception Smc_stuck of int
(** raised if an SMC handler fails to make progress (internal bug guard) *)

(* Per-page fast-path classification. *)
let ps_slow = '\000' (* MMIO-shadowed, partial, or outside RAM *)
let ps_fast = '\001' (* plain RAM: eligible for the fast path *)
let ps_protected = '\002' (* RAM under CMS protection: slow, but cacheable code *)

type t = {
  phys : Phys.t;
  mmu : Mmu.t;
  bus : Bus.t;
  fg : Finegrain.t;
  mutable fg_enabled : bool;  (** fine-grain hardware present (Table 1 knob) *)
  protected_pages : (int, unit) Hashtbl.t;  (** ppn set *)
  fg_pages : (int, unit) Hashtbl.t;  (** ppn set: pages in fine-grain mode *)
  mutable on_smc : smc_hit -> paddr:int -> len:int -> unit;
      (** CMS handler invoked on an SMC event from the ordered write
          path; must update protection state so the write can retry *)
  mutable on_dma_smc : ppn:int -> unit;
      (** CMS handler for DMA touching a protected page *)
  mutable write_pass : bool;
      (** one-shot: the SMC handler performs/authorizes the pending
          write itself; the next protection check is waved through *)
  mutable page_prot_faults : int;  (** page-level SMC faults taken *)
  mutable smc_events : int;  (** all SMC events (any granularity) *)
  mutable dma_smc_events : int;
  (* --- host fast paths --- *)
  mutable fast_paths : bool;
  page_state : Bytes.t;  (** per-ppn classification (ps_* above) *)
  mutable bus_gen_seen : int;  (** MMIO topology generation reflected *)
  code_pages : Bytes.t;  (** per-ppn: decoded-instruction cache holds bytes *)
  mutable on_code_write : ppn:int -> unit;
      (** decode-cache invalidation callback for a write landing on a
          flagged page (the flag is cleared before the call) *)
  mutable fast_reads : int;
  mutable fast_writes : int;
}

let ppn_of paddr = paddr lsr Mmu.page_shift

let create ?(ram_size = 16 * 1024 * 1024) ?(fg_capacity = 8) () =
  let phys = Phys.create ram_size in
  let npages = ram_size lsr Mmu.page_shift in
  {
    phys;
    mmu = Mmu.create ();
    bus = Bus.create phys;
    fg = Finegrain.create ~capacity:fg_capacity ();
    fg_enabled = true;
    protected_pages = Hashtbl.create 64;
    fg_pages = Hashtbl.create 16;
    on_smc = (fun _ ~paddr:_ ~len:_ -> ());
    on_dma_smc = (fun ~ppn:_ -> ());
    write_pass = false;
    page_prot_faults = 0;
    smc_events = 0;
    dma_smc_events = 0;
    fast_paths = true;
    page_state = Bytes.make npages ps_fast;
    bus_gen_seen = 0;
    code_pages = Bytes.make npages '\000';
    on_code_write = (fun ~ppn:_ -> ());
    fast_reads = 0;
    fast_writes = 0;
  }

(* ------------------------------------------------------------------ *)
(* Fast-path page classification                                       *)
(* ------------------------------------------------------------------ *)

(* Recompute every page's class from the bus topology and protection
   sets.  Runs at creation-generation mismatches (MMIO registration) —
   rare — and keeps the hot-path check down to one byte load. *)
let rebuild_page_state t =
  let npages = Bytes.length t.page_state in
  for ppn = 0 to npages - 1 do
    let lo = ppn lsl Mmu.page_shift in
    let hi = lo + Mmu.page_size in
    let mmio =
      List.exists
        (fun (h : Bus.mmio_handler) -> h.Bus.lo < hi && lo < h.Bus.hi)
        t.bus.Bus.mmio
    in
    Bytes.unsafe_set t.page_state ppn
      (if mmio then ps_slow
       else if Hashtbl.mem t.protected_pages ppn then ps_protected
       else ps_fast)
  done;
  t.bus_gen_seen <- t.bus.Bus.generation

let sync_page_state t =
  if t.bus_gen_seen <> t.bus.Bus.generation then rebuild_page_state t

(* May [paddr]'s page take the RAM fast path right now? *)
let page_fast t paddr =
  sync_page_state t;
  let ppn = ppn_of paddr in
  ppn < Bytes.length t.page_state
  && Bytes.unsafe_get t.page_state ppn = ps_fast

(** Is [paddr]'s page backed by plain RAM (no MMIO shadowing)?  The
    decode cache only holds instructions from such pages: MMIO fetches
    are device reads that must not be elided. *)
let code_page_cacheable t paddr =
  sync_page_state t;
  let ppn = ppn_of paddr in
  ppn < Bytes.length t.page_state
  && Bytes.unsafe_get t.page_state ppn <> ps_slow

(** Flag [paddr]'s page as holding decoded-instruction-cache entries so
    subsequent writes to it invalidate them. *)
let mark_code_page t paddr =
  let ppn = ppn_of paddr in
  if ppn < Bytes.length t.code_pages then
    Bytes.unsafe_set t.code_pages ppn '\001'

(** Clear a page's decode-cache flag (the cache dropped its entries). *)
let unmark_code_page t ~ppn =
  if ppn < Bytes.length t.code_pages then
    Bytes.unsafe_set t.code_pages ppn '\000'

(* A write landed on physical [paddr]: if the decode cache holds
   instructions from that page, invalidate them.  [len] never crosses a
   page here (all single-write paths are page-local); DMA handles its
   range page by page. *)
let note_write t paddr =
  let ppn = ppn_of paddr in
  if ppn < Bytes.length t.code_pages
     && Bytes.unsafe_get t.code_pages ppn = '\001'
  then begin
    Bytes.unsafe_set t.code_pages ppn '\000';
    t.on_code_write ~ppn
  end

(* ------------------------------------------------------------------ *)
(* Protection state                                                    *)
(* ------------------------------------------------------------------ *)

let protect_page t ~ppn =
  Hashtbl.replace t.protected_pages ppn ();
  if ppn < Bytes.length t.page_state
     && Bytes.unsafe_get t.page_state ppn = ps_fast
  then Bytes.unsafe_set t.page_state ppn ps_protected

let unprotect_page t ~ppn =
  Hashtbl.remove t.protected_pages ppn;
  Hashtbl.remove t.fg_pages ppn;
  Finegrain.invalidate t.fg ~ppn;
  if ppn < Bytes.length t.page_state
     && Bytes.unsafe_get t.page_state ppn = ps_protected
  then Bytes.unsafe_set t.page_state ppn ps_fast

let is_protected t ~ppn = Hashtbl.mem t.protected_pages ppn

let set_fg_mode t ~ppn on =
  if on && t.fg_enabled then Hashtbl.replace t.fg_pages ppn ()
  else begin
    Hashtbl.remove t.fg_pages ppn;
    Finegrain.invalidate t.fg ~ppn
  end

let in_fg_mode t ~ppn = Hashtbl.mem t.fg_pages ppn

(** Enable or disable every host fast path below the CMS layer: the MMU
    software TLB and the RAM fast path.  Off must reproduce the
    original dispatch behavior exactly (the differential suite pins
    this). *)
let set_fast_paths t on =
  t.fast_paths <- on;
  t.mmu.Mmu.fast_paths <- on;
  Mmu.flush_tlb t.mmu

(** Hardware-side protection check for a store to physical [paddr].
    Returns [None] when the store may proceed. *)
let check_store t ~paddr ~len =
  let ppn = ppn_of paddr in
  if t.write_pass then begin
    t.write_pass <- false;
    None
  end
  else if not (Hashtbl.mem t.protected_pages ppn) then None
  else if t.fg_enabled && Hashtbl.mem t.fg_pages ppn then
    match Finegrain.check t.fg ~paddr ~len with
    | Finegrain.Clear -> None
    | Finegrain.Miss -> Some Fg_miss
    | Finegrain.Protected_chunk -> Some Fg_chunk
  else Some Page_level

let note_smc t hit =
  t.smc_events <- t.smc_events + 1;
  if hit = Page_level then t.page_prot_faults <- t.page_prot_faults + 1

(* ------------------------------------------------------------------ *)
(* Guest accessors                                                     *)
(* ------------------------------------------------------------------ *)

let page_room vaddr = Mmu.page_size - (vaddr land Mmu.page_mask)

(** Guest read of [size] in {1,4} bytes at linear [vaddr]. *)
let rec read t ~size vaddr =
  if size <= page_room vaddr then begin
    let paddr = Mmu.translate t.mmu Mmu.Read vaddr in
    if t.fast_paths && page_fast t paddr then begin
      t.fast_reads <- t.fast_reads + 1;
      match size with
      | 1 -> Phys.read8 t.phys paddr
      | 4 -> Phys.read32 t.phys paddr
      | _ -> Bus.read t.bus paddr size
    end
    else Bus.read t.bus paddr size
  end
  else
    (* crosses a page: assemble bytewise *)
    let v = ref 0 in
    for i = 0 to size - 1 do
      v := !v lor (read t ~size:1 (vaddr + i) lsl (8 * i))
    done;
    !v

(** Physical write that has already passed (or bypassed) protection. *)
let write_phys_nocheck t ~size paddr v =
  note_write t paddr;
  Bus.write t.bus paddr size v

(** Committed translation store: the {!Vliw.Storebuf} drain path.
    Protection was checked at store issue; this only has to keep the
    decode cache honest before the bytes land. *)
let commit_write t paddr size v =
  note_write t paddr;
  Bus.write t.bus paddr size v

(** Ordered guest write: translates, runs the SMC protection loop
    (invoking the CMS handler until the write is allowed), then stores. *)
let rec write t ~size vaddr v =
  if size <= page_room vaddr then begin
    let paddr = Mmu.translate t.mmu Mmu.Write vaddr in
    if
      t.fast_paths && (not t.write_pass)
      && (size = 1 || size = 4)
      && page_fast t paddr
    then begin
      (* plain RAM, unprotected, no pending handler authorization: the
         protection check is statically [None], so skip Bus dispatch *)
      t.fast_writes <- t.fast_writes + 1;
      note_write t paddr;
      match size with
      | 1 -> Phys.write8 t.phys paddr v
      | 4 -> Phys.write32 t.phys paddr v
      | _ -> assert false
    end
    else begin
      let rec attempt tries =
        if tries > 8 then raise (Smc_stuck paddr);
        match check_store t ~paddr ~len:size with
        | None ->
            note_write t paddr;
            Bus.write t.bus paddr size v
        | Some hit ->
            note_smc t hit;
            t.on_smc hit ~paddr ~len:size;
            attempt (tries + 1)
      in
      attempt 0
    end
  end
  else
    for i = 0 to size - 1 do
      write t ~size:1 (vaddr + i) ((v lsr (8 * i)) land 0xff)
    done

(** Instruction fetch of one byte (Exec access). *)
let fetch8 t vaddr =
  let paddr = Mmu.translate t.mmu Mmu.Exec vaddr in
  if t.fast_paths && page_fast t paddr then begin
    t.fast_reads <- t.fast_reads + 1;
    Phys.read8 t.phys paddr
  end
  else Bus.read t.bus paddr 1

(** Snapshot [len] code bytes starting at linear [addr] (used for
    translation-time source capture and self-checking). *)
let read_code t ~addr ~len =
  let b = Bytes.create len in
  for i = 0 to len - 1 do
    Bytes.set b i (Char.chr (fetch8 t (addr + i)))
  done;
  b

(* ------------------------------------------------------------------ *)
(* DMA                                                                 *)
(* ------------------------------------------------------------------ *)

(** DMA store into physical memory.  Protected pages get the coarse
    treatment the paper describes: notify CMS (which invalidates every
    translation on the page and unprotects it), then write. *)
let dma_write t paddr data =
  let len = Bytes.length data in
  let first = ppn_of paddr and last = ppn_of (paddr + len - 1) in
  for ppn = first to last do
    if is_protected t ~ppn then begin
      t.dma_smc_events <- t.dma_smc_events + 1;
      t.on_dma_smc ~ppn
    end;
    (* decode-cache entries from DMA'd pages die too (§3.6.1 ladder) *)
    note_write t (ppn lsl Mmu.page_shift)
  done;
  Phys.blit_bytes t.phys ~addr:paddr data

(* ------------------------------------------------------------------ *)
(* Loading                                                             *)
(* ------------------------------------------------------------------ *)

(** Place an assembled listing into RAM at its base address (physical =
    linear for loading; the workload's page tables control the rest). *)
let load_listing t (l : X86.Asm.listing) =
  let base = l.X86.Asm.base and len = Bytes.length l.X86.Asm.image in
  if len > 0 then
    for ppn = ppn_of base to ppn_of (base + len - 1) do
      note_write t (ppn lsl Mmu.page_shift)
    done;
  Phys.blit_bytes t.phys ~addr:l.X86.Asm.base l.X86.Asm.image
