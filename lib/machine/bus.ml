(** Physical address-space and I/O-port dispatch.

    The bus routes physical accesses either to RAM or to a device MMIO
    window (device windows shadow RAM, like the VGA hole on a PC).
    Port-mapped I/O has its own 16-bit space.  Devices that need to make
    progress in "time" register a ticker that is advanced by executed
    molecules — the simulator's clock, consistent with the paper's
    molecule-count measurement basis. *)

type mmio_handler = {
  lo : int;
  hi : int;  (** exclusive *)
  mread : int -> int -> int;  (** paddr -> size_bytes -> value *)
  mwrite : int -> int -> int -> unit;  (** paddr -> size_bytes -> value *)
}

type port_handler = {
  pread : int -> int;  (** port -> value *)
  pwrite : int -> int -> unit;  (** port -> value *)
}

type t = {
  phys : Phys.t;
  mutable mmio : mmio_handler list;
  ports : (int, port_handler) Hashtbl.t;
  mutable tickers : (int -> unit) list;
  mutable mmio_reads : int;
  mutable mmio_writes : int;
  mutable port_ops : int;
  mutable generation : int;
      (** bumped whenever the MMIO topology changes; {!Mem} watches it
          to keep its RAM-fast-path page table coherent *)
}

let create phys =
  {
    phys;
    mmio = [];
    ports = Hashtbl.create 16;
    tickers = [];
    mmio_reads = 0;
    mmio_writes = 0;
    port_ops = 0;
    generation = 0;
  }

let add_mmio t h =
  t.mmio <- h :: t.mmio;
  t.generation <- t.generation + 1

let add_port t port h = Hashtbl.replace t.ports port h

let add_ticker t f = t.tickers <- f :: t.tickers

let find_mmio t paddr =
  List.find_opt (fun h -> paddr >= h.lo && paddr < h.hi) t.mmio

(** Is this physical address in I/O space?  The hardware uses this to
    fault speculative (reordered) memory atoms, paper §3.4. *)
let is_mmio t paddr = find_mmio t paddr <> None

let read t paddr size =
  match find_mmio t paddr with
  | Some h ->
      t.mmio_reads <- t.mmio_reads + 1;
      h.mread paddr size
  | None -> (
      match size with
      | 1 -> Phys.read8 t.phys paddr
      | 4 -> Phys.read32 t.phys paddr
      | _ -> invalid_arg "Bus.read size")

let write t paddr size v =
  match find_mmio t paddr with
  | Some h ->
      t.mmio_writes <- t.mmio_writes + 1;
      h.mwrite paddr size v
  | None -> (
      match size with
      | 1 -> Phys.write8 t.phys paddr v
      | 4 -> Phys.write32 t.phys paddr v
      | _ -> invalid_arg "Bus.write size")

let port_read t port =
  t.port_ops <- t.port_ops + 1;
  match Hashtbl.find_opt t.ports port with
  | Some h -> h.pread port
  | None -> 0xffffffff (* open bus *)

let port_write t port v =
  t.port_ops <- t.port_ops + 1;
  match Hashtbl.find_opt t.ports port with
  | Some h -> h.pwrite port v
  | None -> ()

(** Advance device time by [molecules] executed host molecules. *)
let tick t molecules = List.iter (fun f -> f molecules) t.tickers
