(** Fine-grain write-protection hardware (paper §3.6.1).

    The key insight from the paper: sub-page protection granularity is
    only needed for a few pages at a time, so the hardware keeps a small
    cache of per-page chunk masks and a software handler refills it on
    misses.  We model exactly that: a [capacity]-entry LRU cache mapping
    a physical page number to a 64-bit mask of protected 64-byte chunks.

    The authoritative masks live in CMS software ([Cms.Smc]); this module
    is only the hardware cache.  The CMS write path consults {!check}:

    - [Miss]: page has no cached entry; software must fault, look up the
      mask, and {!install} it (cheap fault).
    - [Protected_chunk]: the write overlaps a chunk that holds translated
      code bytes; CMS must treat it as a real SMC event.
    - [Clear]: the write only touches unprotected chunks; it proceeds
      with no fault at all — this is where the big Table 1 win comes
      from. *)

let chunk_shift = 6 (* 64-byte chunks *)
let chunks_per_page = Mmu.page_size lsr chunk_shift (* 64 *)

type result = Miss | Protected_chunk | Clear

type t = {
  capacity : int;
  entries : (int, int64) Hashtbl.t;  (** ppn -> chunk mask *)
  mutable lru : int list;  (** most recent first *)
  mutable misses : int;
  mutable hits_protected : int;
  mutable hits_clear : int;
  mutable installs : int;
}

let create ?(capacity = 8) () =
  {
    capacity;
    entries = Hashtbl.create 16;
    lru = [];
    misses = 0;
    hits_protected = 0;
    hits_clear = 0;
    installs = 0;
  }

(** Mask with bits set for every chunk overlapped by [paddr, paddr+len). *)
let mask_of_range ~paddr ~len =
  let first = (paddr land Mmu.page_mask) lsr chunk_shift in
  let last = ((paddr + len - 1) land Mmu.page_mask) lsr chunk_shift in
  let m = ref 0L in
  for c = first to min last (chunks_per_page - 1) do
    m := Int64.logor !m (Int64.shift_left 1L c)
  done;
  !m

let touch t ppn = t.lru <- ppn :: List.filter (fun p -> p <> ppn) t.lru

let check t ~paddr ~len =
  let ppn = paddr lsr Mmu.page_shift in
  match Hashtbl.find_opt t.entries ppn with
  | None ->
      t.misses <- t.misses + 1;
      Miss
  | Some mask ->
      touch t ppn;
      if Int64.logand mask (mask_of_range ~paddr ~len) <> 0L then begin
        t.hits_protected <- t.hits_protected + 1;
        Protected_chunk
      end
      else begin
        t.hits_clear <- t.hits_clear + 1;
        Clear
      end

(** Software refill after a miss; evicts the LRU entry when full. *)
let install t ~ppn ~mask =
  t.installs <- t.installs + 1;
  if (not (Hashtbl.mem t.entries ppn)) && Hashtbl.length t.entries >= t.capacity
  then begin
    match List.rev t.lru with
    | victim :: _ ->
        Hashtbl.remove t.entries victim;
        t.lru <- List.filter (fun p -> p <> victim) t.lru
    | [] -> ()
  end;
  Hashtbl.replace t.entries ppn mask;
  touch t ppn

(** Drop the cached entry for a page (e.g. when its mask changes). *)
let invalidate t ~ppn =
  Hashtbl.remove t.entries ppn;
  t.lru <- List.filter (fun p -> p <> ppn) t.lru

let clear t =
  Hashtbl.reset t.entries;
  t.lru <- []

(** Cached entries in deterministic (ppn) order — captured by snapshots
    for forensics (the cache itself is restored cold, like the tcache:
    the authoritative masks live CMS-side and are re-derived). *)
let dump t =
  Hashtbl.fold (fun ppn mask acc -> (ppn, mask) :: acc) t.entries []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
