(** Standard platform wiring: a PC-flavoured machine for the workloads.

    Port map (all well-known PC-ish addresses):
    - 0x3f8..0x3ff  UART (data/status)
    - 0x0040..0x0042 interval timer (period lo/hi, fired count)
    - 0x0021        PIC mask register
    - 0x01f0..0x01f3 DMA disk (sector, dest, count, start/status)
    - 0x03c0        frame counter ("vsync") port

    MMIO map:
    - 0xA0000..0xAFFFF frame buffer (the VGA hole — shadows RAM)
    - 0xB0000..0xB00FF NIC register window (RX/TX descriptor rings) *)

let uart_base = 0x3f8
let timer_base = 0x40
let pic_mask_port = 0x21
let disk_base = 0x1f0
let frame_port = 0x3c0
let fb_base = 0xa0000
let fb_size = 0x10000
let nic_base = 0xb0000
let nic_size = 0x100
let timer_irq_line = 0
let disk_irq_line = 5
let nic_irq_line = 9

(** Free imm8-addressable port reserved for test/fuzz harnesses.  An
    [out] to it is an interpreter-only instruction, so it marks an exact
    architectural point in every execution configuration — harnesses
    attach a handler here to trigger synchronous injected events (DMA
    writes, protection flips). *)
let fuzz_port = 0xf1

type t = {
  mem : Mem.t;
  irq : Irq.t;
  uart : Uart.t;
  timer : Timer.t;
  fb : Framebuf.t;
  disk : Disk.t;
  nic : Nic.t;
}

let create ?(ram_size = 16 * 1024 * 1024) ?(fg_capacity = 8)
    ?(disk_image = Bytes.make (256 * 1024) '\x00') ?(disk_latency = 20_000)
    ?(nic_latency = 400) () =
  let mem = Mem.create ~ram_size ~fg_capacity () in
  let irq = Irq.create () in
  let uart = Uart.create () in
  let timer = Timer.create irq ~line:timer_irq_line in
  let fb = Framebuf.create ~base:fb_base ~size:fb_size in
  let disk =
    Disk.create ~image:disk_image ~irq ~line:disk_irq_line
      ~latency:disk_latency
  in
  let nic = Nic.create ~irq ~line:nic_irq_line ~latency:nic_latency () in
  Uart.attach uart mem.Mem.bus ~base:uart_base;
  Timer.attach timer mem.Mem.bus ~base:timer_base;
  Framebuf.attach fb mem.Mem.bus ~frame_port;
  Disk.attach disk mem.Mem.bus ~base:disk_base;
  Disk.set_dma_write disk (Mem.dma_write mem);
  Nic.attach nic mem.Mem.bus ~base:nic_base ~size:nic_size;
  Nic.set_dma nic ~write:(Mem.dma_write mem)
    ~read32:(fun a -> Phys.read32 mem.Mem.bus.Bus.phys a)
    ~read8:(fun a -> Phys.read8 mem.Mem.bus.Bus.phys a);
  Bus.add_port mem.Mem.bus pic_mask_port
    {
      Bus.pread = (fun _ -> irq.Irq.mask);
      pwrite = (fun _ v -> Irq.set_mask irq v);
    };
  { mem; irq; uart; timer; fb; disk; nic }

(** Identity-map the first [mib] MiB as writable guest memory, plus the
    frame-buffer window.  Most workloads start from this then adjust. *)
let map_low_memory t ~mib =
  Mmu.map_identity t.mem.Mem.mmu ~virt:0 ~pages:(mib * 256) ~writable:true
