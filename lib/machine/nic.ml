(** MMIO-programmed NIC with DMA descriptor rings.

    The guest programs RX and TX descriptor rings in its own memory
    through a 32-bit MMIO register window, then exchanges whole frames
    with the device by DMA.  Everything the device stores — frame
    payloads *and* descriptor status words — goes through the injected
    [dma_write] callback, i.e. through the same §3.6.1 ladder as disk
    DMA: a frame landing in a page that carries translations invalidates
    them behind the CPU's back.  Device reads (descriptors, TX payloads)
    use the injected [read32]/[read8] callbacks straight from physical
    memory, so they perturb no architectural access counters.

    Descriptors are 8 bytes: word0 = buffer physical address, word1 =
    status.  RX status: guest arms a slot by writing the buffer
    capacity with {!rx_done} clear; the device fills the buffer, writes
    [rx_done lor length] and advances.  TX status: guest writes
    [tx_ready lor length]; after transmitting the device writes
    [tx_done lor length].  Both rings are scanned in order with a
    device-owned head index, so guests never do index arithmetic.

    Ingress has two paths with distinct timing disciplines:
    - {!rx_inject} delivers a frame to the ring *immediately* — the
      record-replay injector uses it at retired-clock boundaries, gated
      on {!can_accept}, so delivery is an exact architectural event.
    - {!queue_frame} appends to a bounded host-side backlog that the
      molecule-clocked ticker drains one frame per latency period;
      overflow and ring-full drains are counted drops, never unbounded
      growth.  Loopback TX re-enters through this path.

    RX interrupts are coalescable: the mitigation register makes the
    device latch its line once per N delivered frames (suppressed
    raises are counted).  The ISR register is read-to-clear — safe
    because translated MMIO loads fault [Mmio_spec] *before* touching
    the bus, so the architectural read happens exactly once. *)

let desc_size = 8
let max_frame = 2048
let max_ring = 1024

(* Status word bits (descriptor word1). *)
let rx_done = 0x8000_0000
let tx_ready = 0x8000_0000
let tx_done = 0x4000_0000

(* Register offsets from the MMIO window base. *)
let r_ctrl = 0x00 (* bit0 rx enable, bit1 tx enable, bit2 loopback *)
let r_status = 0x04 (* RO: bit0 backlog nonempty, bit1 busy *)
let r_rx_base = 0x08
let r_rx_count = 0x0c (* writing resets the RX head *)
let r_tx_base = 0x10
let r_tx_count = 0x14 (* writing resets the TX head *)
let r_tx_kick = 0x18 (* write-only: start scanning TX descriptors *)
let r_mitigation = 0x1c (* raise the RX line once per max(1,N) frames *)
let r_isr = 0x20 (* read-to-clear: bit0 RX, bit1 TX *)
let r_rx_frames = 0x24 (* RO *)
let r_tx_frames = 0x28 (* RO *)
let r_rx_dropped = 0x2c (* RO *)
let r_backlog = 0x30 (* RO: current backlog depth *)

let isr_rx = 1
let isr_tx = 2

type t = {
  irq : Irq.t;
  line : int;
  latency : int;  (** molecules per backlog-drain / TX work unit *)
  backlog_cap : int;
  mutable ctrl : int;
  mutable rx_base : int;
  mutable rx_count : int;
  mutable rx_head : int;
  mutable tx_base : int;
  mutable tx_count : int;
  mutable tx_head : int;
  mutable tx_pending : bool;
  mutable mitigation : int;
  mutable isr : int;
  mutable busy : int;  (** molecules until the next work unit; 0 = idle *)
  mutable coalesce_acc : int;  (** RX frames since the last raise *)
  mutable backlog : string list;  (** reversed arrival order *)
  mutable backlog_len : int;
  (* counters (guest-visible through RO registers) *)
  mutable rx_frames : int;
  mutable tx_frames : int;
  mutable rx_dropped : int;
  mutable irqs_raised : int;
  mutable irqs_coalesced : int;
  mutable dma_write : int -> Bytes.t -> unit;
  mutable read32 : int -> int;
  mutable read8 : int -> int;
}

let create ~irq ~line ?(latency = 400) ?(backlog_cap = 32) () =
  {
    irq;
    line;
    latency;
    backlog_cap;
    ctrl = 0;
    rx_base = 0;
    rx_count = 0;
    rx_head = 0;
    tx_base = 0;
    tx_count = 0;
    tx_head = 0;
    tx_pending = false;
    mitigation = 1;
    isr = 0;
    busy = 0;
    coalesce_acc = 0;
    backlog = [];
    backlog_len = 0;
    rx_frames = 0;
    tx_frames = 0;
    rx_dropped = 0;
    irqs_raised = 0;
    irqs_coalesced = 0;
    dma_write = (fun _ _ -> invalid_arg "Nic: dma_write not wired");
    read32 = (fun _ -> invalid_arg "Nic: read32 not wired");
    read8 = (fun _ -> invalid_arg "Nic: read8 not wired");
  }

let set_dma t ~write ~read32 ~read8 =
  t.dma_write <- write;
  t.read32 <- read32;
  t.read8 <- read8

let rx_enabled t = t.ctrl land 1 <> 0
let tx_enabled t = t.ctrl land 2 <> 0
let loopback t = t.ctrl land 4 <> 0

(* ------------------------------------------------------------------ *)
(* RX                                                                  *)
(* ------------------------------------------------------------------ *)

let rx_desc_addr t = t.rx_base + (desc_size * t.rx_head)

(** Can the ring take a frame right now?  True iff RX is enabled and
    the descriptor at the head is armed (done bit clear).  A pure
    function of guest-visible state — the journal injector gates
    packet-arrival events on it so that delivery is identical in every
    execution configuration. *)
let can_accept t =
  rx_enabled t && t.rx_count > 0
  && t.read32 (rx_desc_addr t + 4) land rx_done = 0

let raise_rx t =
  t.coalesce_acc <- t.coalesce_acc + 1;
  if t.coalesce_acc >= max 1 t.mitigation then begin
    t.coalesce_acc <- 0;
    t.isr <- t.isr lor isr_rx;
    t.irqs_raised <- t.irqs_raised + 1;
    Irq.raise_line t.irq t.line
  end
  else t.irqs_coalesced <- t.irqs_coalesced + 1

(** Deliver [data] to the ring immediately.  Returns false (and counts
    a drop) if the head descriptor is not armed. *)
let rx_inject t data =
  if not (can_accept t) then begin
    t.rx_dropped <- t.rx_dropped + 1;
    false
  end
  else begin
    let d = rx_desc_addr t in
    let buf = t.read32 d in
    let cap = t.read32 (d + 4) land 0xffff in
    let len = min (String.length data) (min cap max_frame) in
    if len > 0 then t.dma_write buf (Bytes.of_string (String.sub data 0 len));
    t.dma_write (d + 4)
      (let b = Bytes.create 4 in
       Bytes.set_int32_le b 0 (Int32.of_int (rx_done lor len));
       b);
    t.rx_head <- (t.rx_head + 1) mod t.rx_count;
    t.rx_frames <- t.rx_frames + 1;
    raise_rx t;
    true
  end

(** Append a frame to the bounded backlog (dropped and counted when
    full); the ticker drains it one frame per latency period. *)
let queue_frame t data =
  if t.backlog_len >= t.backlog_cap then
    t.rx_dropped <- t.rx_dropped + 1
  else begin
    t.backlog <- data :: t.backlog;
    t.backlog_len <- t.backlog_len + 1
  end

let backlog_pop t =
  match List.rev t.backlog with
  | [] -> None
  | first :: rest ->
      t.backlog <- List.rev rest;
      t.backlog_len <- t.backlog_len - 1;
      Some first

(* ------------------------------------------------------------------ *)
(* TX                                                                  *)
(* ------------------------------------------------------------------ *)

let read_frame t ~addr ~len = String.init len (fun i -> Char.chr (t.read8 (addr + i)))

(* Process the descriptor at the TX head if the guest marked it ready;
   clears [tx_pending] when the scan catches up with the guest. *)
let tx_unit t =
  if not (tx_enabled t) || t.tx_count = 0 then t.tx_pending <- false
  else begin
    let d = t.tx_base + (desc_size * t.tx_head) in
    let st = t.read32 (d + 4) in
    if st land tx_ready = 0 then t.tx_pending <- false
    else begin
      let len = min (st land 0xffff) max_frame in
      let frame = read_frame t ~addr:(t.read32 d) ~len in
      t.tx_frames <- t.tx_frames + 1;
      if loopback t && rx_enabled t then queue_frame t frame;
      t.dma_write (d + 4)
        (let b = Bytes.create 4 in
         Bytes.set_int32_le b 0 (Int32.of_int (tx_done lor len));
         b);
      t.tx_head <- (t.tx_head + 1) mod t.tx_count;
      t.isr <- t.isr lor isr_tx;
      t.irqs_raised <- t.irqs_raised + 1;
      Irq.raise_line t.irq t.line
    end
  end

(* ------------------------------------------------------------------ *)
(* Time                                                                *)
(* ------------------------------------------------------------------ *)

let has_work t = t.backlog_len > 0 || t.tx_pending

(** Device-side activity the engine's halt loop must wait out.  The
    backlog always drains (every frame either lands in the ring or is
    counted as a drop), so this quiesces on every run. *)
let active t = t.busy > 0 || has_work t

(* One work unit per latency period: drain one backlog frame (ring-full
   at drain time is a counted drop — explicit backpressure), else
   transmit one ready TX descriptor. *)
let work_unit t =
  match backlog_pop t with
  | Some frame ->
      if not (rx_inject t frame) then ()
      (* rx_inject counted the drop *)
  | None -> if t.tx_pending then tx_unit t

let tick t molecules =
  if t.busy = 0 && has_work t then t.busy <- t.latency;
  if t.busy > 0 then begin
    t.busy <- t.busy - molecules;
    if t.busy <= 0 then begin
      t.busy <- 0;
      work_unit t;
      if has_work t then t.busy <- t.latency
    end
  end

(* ------------------------------------------------------------------ *)
(* MMIO window                                                         *)
(* ------------------------------------------------------------------ *)

let reg_read t off =
  if off = r_ctrl then t.ctrl
  else if off = r_status then
    (if t.backlog_len > 0 then 1 else 0) lor (if t.busy > 0 then 2 else 0)
  else if off = r_rx_base then t.rx_base
  else if off = r_rx_count then t.rx_count
  else if off = r_tx_base then t.tx_base
  else if off = r_tx_count then t.tx_count
  else if off = r_mitigation then t.mitigation
  else if off = r_isr then begin
    let v = t.isr in
    t.isr <- 0;
    v
  end
  else if off = r_rx_frames then t.rx_frames
  else if off = r_tx_frames then t.tx_frames
  else if off = r_rx_dropped then t.rx_dropped
  else if off = r_backlog then t.backlog_len
  else 0

let reg_write t off v =
  if off = r_ctrl then t.ctrl <- v land 7
  else if off = r_rx_base then t.rx_base <- v
  else if off = r_rx_count then begin
    t.rx_count <- min (max v 0) max_ring;
    t.rx_head <- 0
  end
  else if off = r_tx_base then t.tx_base <- v
  else if off = r_tx_count then begin
    t.tx_count <- min (max v 0) max_ring;
    t.tx_head <- 0
  end
  else if off = r_tx_kick then begin
    if tx_enabled t && t.tx_count > 0 then t.tx_pending <- true
  end
  else if off = r_mitigation then t.mitigation <- v land 0xffff
  else () (* STATUS / ISR / counters: read-only *)

let attach t bus ~base ~size =
  Bus.add_mmio bus
    {
      Bus.lo = base;
      hi = base + size;
      mread =
        (fun paddr sz ->
          let off = paddr - base in
          let v = reg_read t (off land lnot 3) in
          let shift = (off land 3) * 8 in
          let mask = if sz >= 4 then 0xffff_ffff else (1 lsl (8 * sz)) - 1 in
          (v lsr shift) land mask);
      mwrite =
        (fun paddr sz v ->
          let off = paddr - base in
          let aligned = off land lnot 3 in
          if sz >= 4 then reg_write t aligned v
          else begin
            (* sub-word write: read-modify-write the 32-bit register,
               without triggering read side effects (ISR is RMW-safe
               here because partial writes to it are ignored anyway) *)
            let cur =
              if aligned = r_isr then t.isr else reg_read t aligned
            in
            let shift = (off land 3) * 8 in
            let mask = ((1 lsl (8 * sz)) - 1) lsl shift in
            reg_write t aligned
              (cur land lnot mask lor ((v lsl shift) land mask))
          end);
    };
  Bus.add_ticker bus (tick t)

(* ------------------------------------------------------------------ *)
(* Snapshot support                                                    *)
(* ------------------------------------------------------------------ *)

(* Mutable register + queue state as a plain tuple; latency, line and
   backlog capacity are creation parameters. *)
let snapshot t =
  ( ( t.ctrl,
      t.rx_base,
      t.rx_count,
      t.rx_head,
      t.tx_base,
      t.tx_count,
      t.tx_head,
      t.tx_pending ),
    (t.mitigation, t.isr, t.busy, t.coalesce_acc, t.backlog),
    (t.rx_frames, t.tx_frames, t.rx_dropped, t.irqs_raised, t.irqs_coalesced)
  )

let restore t
    ( (ctrl, rx_base, rx_count, rx_head, tx_base, tx_count, tx_head, tx_pending),
      (mitigation, isr, busy, coalesce_acc, backlog),
      (rx_frames, tx_frames, rx_dropped, irqs_raised, irqs_coalesced) ) =
  t.ctrl <- ctrl;
  t.rx_base <- rx_base;
  t.rx_count <- rx_count;
  t.rx_head <- rx_head;
  t.tx_base <- tx_base;
  t.tx_count <- tx_count;
  t.tx_head <- tx_head;
  t.tx_pending <- tx_pending;
  t.mitigation <- mitigation;
  t.isr <- isr;
  t.busy <- busy;
  t.coalesce_acc <- coalesce_acc;
  t.backlog <- backlog;
  t.backlog_len <- List.length backlog;
  t.rx_frames <- rx_frames;
  t.tx_frames <- tx_frames;
  t.rx_dropped <- rx_dropped;
  t.irqs_raised <- irqs_raised;
  t.irqs_coalesced <- irqs_coalesced
