(** DMA block device.

    A workload programs source sector, destination physical address and
    sector count through ports, then starts the transfer.  After a fixed
    latency (in molecules) the device copies data into RAM *behind the
    CPU's back* and latches its IRQ line.  DMA writes bypass the MMU but
    not CMS's translated-page protection: the injected [dma_write]
    callback routes every stored byte through the memory system so that
    DMA into a protected page invalidates the page's translations
    (paper §3.6.1: "DMA writes to a protected page invalidate all
    translations for the page"). *)

let sector_size = 512

type t = {
  image : Bytes.t;
  irq : Irq.t;
  line : int;
  latency : int;  (** molecules from start to completion *)
  mutable sector : int;
  mutable dest : int;
  mutable count : int;  (** sectors *)
  mutable busy : int;  (** molecules remaining; 0 = idle *)
  mutable transfers : int;
  mutable dma_write : int -> Bytes.t -> unit;  (** paddr -> data *)
}

let create ~image ~irq ~line ~latency =
  {
    image;
    irq;
    line;
    latency;
    sector = 0;
    dest = 0;
    count = 0;
    busy = 0;
    transfers = 0;
    dma_write = (fun _ _ -> invalid_arg "Disk: dma_write not wired");
  }

let set_dma_write t f = t.dma_write <- f

(* Snapshot support: mutable register state as a plain tuple.  The
   sector image and the latency are creation parameters, captured
   separately by the snapshot layer. *)
let snapshot t = (t.sector, t.dest, t.count, t.busy, t.transfers)

let restore t (sector, dest, count, busy, transfers) =
  t.sector <- sector;
  t.dest <- dest;
  t.count <- count;
  t.busy <- busy;
  t.transfers <- transfers

let start t =
  if t.busy = 0 && t.count > 0 then t.busy <- t.latency

let complete t =
  let len = t.count * sector_size in
  let off = t.sector * sector_size in
  let len = min len (Bytes.length t.image - off) in
  if len > 0 then t.dma_write t.dest (Bytes.sub t.image off len);
  t.transfers <- t.transfers + 1;
  Irq.raise_line t.irq t.line

let tick t molecules =
  if t.busy > 0 then begin
    t.busy <- t.busy - molecules;
    if t.busy <= 0 then begin
      t.busy <- 0;
      complete t
    end
  end

(* Ports: +0 sector, +1 dest paddr, +2 count, +3 start/status
   (write = start, read = busy flag). *)
let attach t bus ~base =
  let h =
    {
      Bus.pread =
        (fun port ->
          if port = base + 3 then if t.busy > 0 then 1 else 0 else 0);
      pwrite =
        (fun port v ->
          match port - base with
          | 0 -> t.sector <- v
          | 1 -> t.dest <- v
          | 2 -> t.count <- v
          | 3 -> start t
          | _ -> ());
    }
  in
  for o = 0 to 3 do
    Bus.add_port bus (base + o) h
  done;
  Bus.add_ticker bus (tick t)
