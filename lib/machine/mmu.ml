(** Paging MMU for the guest's linear address space.

    A single-level software page table maps 4 KiB virtual pages to
    physical pages with present/writable attributes.  Translation
    failures raise the guest-visible [X86.Exn.Fault (PF _)] — precisely
    the fault the CMS interpreter must reproduce at the right
    instruction boundary.

    Hot-path layer: a direct-mapped software TLB, one way per access
    kind, caches successful translations so that the per-byte fetch and
    per-operand paths of the interpreter cost an array probe instead of
    a [Hashtbl] lookup.  The TLB is observationally invisible: it caches
    only translations the page table would produce right now, and every
    operation that could change that — {!map}, {!unmap},
    {!set_writable}, {!set_enabled} — flushes it.  Disable it wholesale
    with [fast_paths <- false] (the {!Config.host_fast_paths} knob). *)

let page_shift = 12
let page_size = 1 lsl page_shift
let page_mask = page_size - 1

type entry = { mutable ppn : int; mutable present : bool; mutable writable : bool }

(* TLB geometry: direct-mapped, [tlb_slots] entries per access kind. *)
let tlb_bits = 8
let tlb_slots = 1 lsl tlb_bits
let tlb_index_mask = tlb_slots - 1

type t = {
  table : (int, entry) Hashtbl.t;  (** vpn -> entry *)
  mutable enabled : bool;
      (** when disabled, virtual = physical (boot-time identity) *)
  mutable fast_paths : bool;  (** consult/fill the software TLB *)
  tlb_tag : int array;
      (** vpn per slot, -1 = invalid; slots [0,n) Read, [n,2n) Write,
          [2n,3n) Exec *)
  tlb_base : int array;  (** physical page base per slot *)
  mutable tlb_hits : int;
  mutable tlb_misses : int;
}

type access = Read | Write | Exec

let access_way = function Read -> 0 | Write -> 1 | Exec -> 2

let create () =
  {
    table = Hashtbl.create 256;
    enabled = true;
    fast_paths = true;
    tlb_tag = Array.make (3 * tlb_slots) (-1);
    tlb_base = Array.make (3 * tlb_slots) 0;
    tlb_hits = 0;
    tlb_misses = 0;
  }

(** Drop every cached translation.  Correctness depends on this running
    whenever the page table (or the enable bit) changes. *)
let flush_tlb t = Array.fill t.tlb_tag 0 (3 * tlb_slots) (-1)

let map t ~virt ~phys ~writable =
  flush_tlb t;
  let vpn = virt lsr page_shift and ppn = phys lsr page_shift in
  match Hashtbl.find_opt t.table vpn with
  | Some e ->
      e.ppn <- ppn;
      e.present <- true;
      e.writable <- writable
  | None -> Hashtbl.add t.table vpn { ppn; present = true; writable }

(** Identity-map [pages] pages starting at [virt]. *)
let map_identity t ~virt ~pages ~writable =
  for i = 0 to pages - 1 do
    let a = virt + (i lsl page_shift) in
    map t ~virt:a ~phys:a ~writable
  done

let unmap t ~virt =
  flush_tlb t;
  match Hashtbl.find_opt t.table (virt lsr page_shift) with
  | Some e -> e.present <- false
  | None -> ()

let set_writable t ~virt w =
  flush_tlb t;
  match Hashtbl.find_opt t.table (virt lsr page_shift) with
  | Some e -> e.writable <- w
  | None -> ()

(** Toggle paging.  Flushes the TLB: entries cached while enabled must
    not survive a disable/re-enable cycle during which the table may
    have been rebuilt. *)
let set_enabled t on =
  flush_tlb t;
  t.enabled <- on

(* Snapshot support: enumerate the page table in deterministic (vpn)
   order, and rebuild it from such a dump.  Restoring flushes the TLB —
   the rebuilt table is a wholesale change. *)
let dump_entries t =
  Hashtbl.fold
    (fun vpn e acc -> (vpn, e.ppn, e.present, e.writable) :: acc)
    t.table []
  |> List.sort (fun (a, _, _, _) (b, _, _, _) -> compare a b)

let restore_entries t entries =
  Hashtbl.reset t.table;
  List.iter
    (fun (vpn, ppn, present, writable) ->
      Hashtbl.replace t.table vpn { ppn; present; writable })
    entries;
  flush_tlb t

let fault addr access present =
  raise
    (X86.Exn.Fault
       (X86.Exn.PF { addr; write = (access = Write); present }))

(* Slow path: walk the page table, fill the TLB on success. *)
let translate_slow t access vaddr vpn =
  match Hashtbl.find_opt t.table vpn with
  | None -> fault vaddr access false
  | Some e ->
      if not e.present then fault vaddr access false
      else if access = Write && not e.writable then fault vaddr access true
      else begin
        let base = e.ppn lsl page_shift in
        if t.fast_paths then begin
          let slot = (access_way access * tlb_slots) + (vpn land tlb_index_mask) in
          Array.unsafe_set t.tlb_tag slot vpn;
          Array.unsafe_set t.tlb_base slot base
        end;
        base lor (vaddr land page_mask)
      end

(** Translate a linear address; raises #PF on miss or write-protection. *)
let translate t access vaddr =
  let vaddr = vaddr land 0xffffffff in
  if not t.enabled then vaddr
  else begin
    let vpn = vaddr lsr page_shift in
    if t.fast_paths then begin
      let slot = (access_way access * tlb_slots) + (vpn land tlb_index_mask) in
      if Array.unsafe_get t.tlb_tag slot = vpn then begin
        t.tlb_hits <- t.tlb_hits + 1;
        Array.unsafe_get t.tlb_base slot lor (vaddr land page_mask)
      end
      else begin
        t.tlb_misses <- t.tlb_misses + 1;
        translate_slow t access vaddr vpn
      end
    end
    else translate_slow t access vaddr vpn
  end

(** Translation that reports failure rather than raising; used by the
    translator to probe whether speculation assumptions can be checked.
    Probes the page table directly — the miss path is common in the
    translator's scan loop, so it must not allocate and catch an
    exception per probe. *)
let translate_opt t access vaddr =
  let vaddr = vaddr land 0xffffffff in
  if not t.enabled then Some vaddr
  else
    match Hashtbl.find_opt t.table (vaddr lsr page_shift) with
    | None -> None
    | Some e ->
        if not e.present then None
        else if access = Write && not e.writable then None
        else Some ((e.ppn lsl page_shift) lor (vaddr land page_mask))
