(** Programmable interval timer.

    Counts executed host molecules (the simulator's clock) and latches
    an IRQ line each time the programmed period elapses.  This is the
    source of the asynchronous interrupts that exercise the paper's
    rollback-on-interrupt behaviour (§3.3). *)

type t = {
  irq : Irq.t;
  line : int;
  mutable period : int;  (** molecules between interrupts; 0 = disabled *)
  mutable count : int;
  mutable fired : int;
}

let create irq ~line = { irq; line; period = 0; count = 0; fired = 0 }

let set_period t p =
  t.period <- max 0 p;
  t.count <- 0

let tick t molecules =
  if t.period > 0 then begin
    t.count <- t.count + molecules;
    while t.count >= t.period do
      t.count <- t.count - t.period;
      t.fired <- t.fired + 1;
      Irq.raise_line t.irq t.line
    done
  end

(* Snapshot support: the full device state as a plain tuple. *)
let snapshot t = (t.period, t.count, t.fired)

let restore t (period, count, fired) =
  t.period <- period;
  t.count <- count;
  t.fired <- fired

(* Ports: +0 = period low 16 bits, +1 = period high 16 bits (write
   latches), +2 = fired count (read). *)
let attach t bus ~base =
  let lo = ref 0 in
  let h =
    {
      Bus.pread =
        (fun port -> if port = base + 2 then t.fired else t.period);
      pwrite =
        (fun port v ->
          if port = base then lo := v land 0xffff
          else if port = base + 1 then
            set_period t (((v land 0xffff) lsl 16) lor !lo));
    }
  in
  for o = 0 to 2 do
    Bus.add_port bus (base + o) h
  done;
  Bus.add_ticker bus (tick t)
