(** Port-mapped serial console (16550-flavoured, heavily simplified).

    Writes to the data port append to an output buffer the harness can
    inspect; reads pop an input FIFO.  The input FIFO read has a side
    effect — exactly the kind of device behaviour that makes replaying
    memory/port operations after a rollback unsafe, which is why the CMS
    engine must keep I/O in order (paper §3.4). *)

type t = {
  out_buf : Buffer.t;
  mutable in_fifo : int list;
  mutable data_reads : int;
  mutable data_writes : int;
}

let create () =
  { out_buf = Buffer.create 64; in_fifo = []; data_reads = 0; data_writes = 0 }

let feed_input t bytes = t.in_fifo <- t.in_fifo @ bytes

let output t = Buffer.contents t.out_buf

(* Snapshot support: the full device state as a plain tuple (the output
   buffer as a string, since [Buffer.t] is opaque to callers). *)
let snapshot t = (output t, t.in_fifo, t.data_reads, t.data_writes)

let restore t (out, in_fifo, data_reads, data_writes) =
  Buffer.clear t.out_buf;
  Buffer.add_string t.out_buf out;
  t.in_fifo <- in_fifo;
  t.data_reads <- data_reads;
  t.data_writes <- data_writes

(* Register layout (relative to the base port):
   +0 data (R: pop input fifo, W: append output)
   +5 line status (bit0: input ready, bit5: tx empty = always) *)
let data_off = 0
let status_off = 5

let port_handler t ~base =
  {
    Bus.pread =
      (fun port ->
        match port - base with
        | o when o = data_off -> (
            t.data_reads <- t.data_reads + 1;
            match t.in_fifo with
            | [] -> 0
            | b :: rest ->
                t.in_fifo <- rest;
                b)
        | o when o = status_off ->
            (if t.in_fifo <> [] then 1 else 0) lor 0x20
        | _ -> 0);
    pwrite =
      (fun port v ->
        if port - base = data_off then begin
          t.data_writes <- t.data_writes + 1;
          Buffer.add_char t.out_buf (Char.chr (v land 0xff))
        end);
  }

let attach t bus ~base =
  let h = port_handler t ~base in
  for o = 0 to 7 do
    Bus.add_port bus (base + o) h
  done
