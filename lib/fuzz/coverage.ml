(** Opcode and event coverage accounting.

    Every instruction the decoder supports maps to a canonical string
    key ({!key}); {!all_keys} enumerates the complete supported table
    (derived from {!exemplars}, one canonical instance per decode-table
    arm).  A campaign counts the keys present in each generated case and
    reports what fraction of the table the generator actually reached —
    the ISSUE's ≥90 % acceptance gate. *)

open X86.Insn

let size_key = function S8 -> "8" | S32 -> "32"

let shape_key = function
  | RM_R (R _, _) -> "rr"
  | RM_R (M _, _) -> "mr"
  | R_RM (_, R _) -> "rr2"
  | R_RM (_, M _) -> "rm"
  | RM_I (R _, _) -> "ri"
  | RM_I (M _, _) -> "mi"

let rm_key = function R _ -> "r" | M _ -> "m"

let count_key = function C1 -> "1" | Cimm _ -> "imm" | Ccl -> "cl"

let port_key = function PortImm _ -> "imm" | PortDx -> "dx"

(** Canonical coverage key of an instruction.  Operand registers,
    immediates and branch targets are abstracted away; operand size,
    operand shape (reg vs mem on each side) and sub-opcode are kept —
    one key per distinct arm of the decoder's dispatch table. *)
let key = function
  | Arith (op, sz, ops) ->
      Fmt.str "%s.%s.%s" (arith_name op) (size_key sz) (shape_key ops)
  | Test (sz, rm, T_R _) -> Fmt.str "test.%s.%s_r" (size_key sz) (rm_key rm)
  | Test (sz, rm, T_I _) -> Fmt.str "test.%s.%s_i" (size_key sz) (rm_key rm)
  | Mov (sz, ops) -> Fmt.str "mov.%s.%s" (size_key sz) (shape_key ops)
  | Movx { sign; src; _ } ->
      Fmt.str "%s.%s" (if sign then "movsx" else "movzx") (rm_key src)
  | Lea _ -> "lea"
  | Xchg (sz, rm, _) -> Fmt.str "xchg.%s.%s" (size_key sz) (rm_key rm)
  | Inc (sz, rm) -> Fmt.str "inc.%s.%s" (size_key sz) (rm_key rm)
  | Dec (sz, rm) -> Fmt.str "dec.%s.%s" (size_key sz) (rm_key rm)
  | Not (sz, rm) -> Fmt.str "not.%s.%s" (size_key sz) (rm_key rm)
  | Neg (sz, rm) -> Fmt.str "neg.%s.%s" (size_key sz) (rm_key rm)
  | Shift (op, sz, rm, c) ->
      Fmt.str "%s.%s.%s.%s" (shift_name op) (size_key sz) (rm_key rm)
        (count_key c)
  | Mul (sz, rm) -> Fmt.str "mul.%s.%s" (size_key sz) (rm_key rm)
  | Imul1 (sz, rm) -> Fmt.str "imul1.%s.%s" (size_key sz) (rm_key rm)
  | Imul2 (_, rm) -> Fmt.str "imul2.%s" (rm_key rm)
  | Div (sz, rm) -> Fmt.str "div.%s.%s" (size_key sz) (rm_key rm)
  | Idiv (sz, rm) -> Fmt.str "idiv.%s.%s" (size_key sz) (rm_key rm)
  | Cdq -> "cdq"
  | Push (PushR _) -> "push.r"
  | Push (PushI _) -> "push.i"
  | Push (PushM _) -> "push.m"
  | Pop rm -> Fmt.str "pop.%s" (rm_key rm)
  | Pushf -> "pushf"
  | Popf -> "popf"
  | Jcc (cc, _) -> Fmt.str "j%s" (X86.Cond.name cc)
  | Setcc (cc, rm) -> Fmt.str "set%s.%s" (X86.Cond.name cc) (rm_key rm)
  | Jmp _ -> "jmp"
  | JmpInd rm -> Fmt.str "jmp_ind.%s" (rm_key rm)
  | Call _ -> "call"
  | CallInd rm -> Fmt.str "call_ind.%s" (rm_key rm)
  | Ret 0 -> "ret"
  | Ret _ -> "retn"
  | Int3 -> "int3"
  | Int _ -> "int"
  | Iret -> "iret"
  | In (sz, p) -> Fmt.str "in.%s.%s" (size_key sz) (port_key p)
  | Out (sz, p) -> Fmt.str "out.%s.%s" (size_key sz) (port_key p)
  | Hlt -> "hlt"
  | Nop -> "nop"
  | Cli -> "cli"
  | Sti -> "sti"
  | Strop { rep; op; size } ->
      Fmt.str "%s%s.%s"
        (if rep then "rep_" else "")
        (match op with Movs -> "movs" | Stos -> "stos")
        (size_key size)
  | Lidt _ -> "lidt"

(* ------------------------------------------------------------------ *)
(* The supported table                                                  *)
(* ------------------------------------------------------------------ *)

let all_sizes = [ S8; S32 ]
let r1 = X86.Regs.ecx (* arbitrary canonical operand registers *)
let r2 = X86.Regs.ebx
let m1 = X86.Insn.mem ~base:X86.Regs.esi 8
let all_rms = [ R r1; M m1 ]

let all_shapes =
  [ RM_R (R r1, r2); RM_R (M m1, r2); R_RM (r1, R r2); R_RM (r1, M m1);
    RM_I (R r1, 5); RM_I (M m1, 5) ]

let all_conds = X86.Cond.all

(** One canonical instruction per arm of the decoder's dispatch table.
    This list *defines* the coverage denominator, and the exhaustive
    encode→decode→encode property in [test_x86] walks it (with
    randomized operands) to pin the round-trip. *)
let exemplars : t list =
  let cart f xs ys = List.concat_map (fun x -> List.map (f x) ys) xs in
  let ops = [ Add; Or; Adc; Sbb; And; Sub; Xor; Cmp ] in
  List.concat
    [
      (* Arith: 8 ops x 2 sizes x 6 shapes *)
      List.concat_map
        (fun op -> cart (fun sz sh -> Arith (op, sz, sh)) all_sizes all_shapes)
        ops;
      cart (fun sz rm -> Test (sz, rm, T_R r2)) all_sizes all_rms;
      cart (fun sz rm -> Test (sz, rm, T_I 3)) all_sizes all_rms;
      cart (fun sz sh -> Mov (sz, sh)) all_sizes all_shapes;
      List.map (fun src -> Movx { sign = false; dst = r1; src }) all_rms;
      List.map (fun src -> Movx { sign = true; dst = r1; src }) all_rms;
      [ Lea (r1, m1) ];
      cart (fun sz rm -> Xchg (sz, rm, r2)) all_sizes all_rms;
      cart (fun sz rm -> Inc (sz, rm)) all_sizes all_rms;
      cart (fun sz rm -> Dec (sz, rm)) all_sizes all_rms;
      cart (fun sz rm -> Not (sz, rm)) all_sizes all_rms;
      cart (fun sz rm -> Neg (sz, rm)) all_sizes all_rms;
      (* Shifts: 5 ops x 2 sizes x 2 rms x 3 counts *)
      List.concat_map
        (fun op ->
          cart
            (fun sz (rm, c) -> Shift (op, sz, rm, c))
            all_sizes
            (cart (fun rm c -> (rm, c)) all_rms [ C1; Cimm 3; Ccl ]))
        [ Shl; Shr; Sar; Rol; Ror ];
      cart (fun sz rm -> Mul (sz, rm)) all_sizes all_rms;
      cart (fun sz rm -> Imul1 (sz, rm)) all_sizes all_rms;
      List.map (fun rm -> Imul2 (r1, rm)) all_rms;
      cart (fun sz rm -> Div (sz, rm)) all_sizes all_rms;
      cart (fun sz rm -> Idiv (sz, rm)) all_sizes all_rms;
      [ Cdq ];
      [ Push (PushR r1); Push (PushI 42); Push (PushM m1) ];
      [ Pop (R r1); Pop (M m1) ];
      [ Pushf; Popf ];
      List.map (fun cc -> Jcc (cc, 0x2000)) all_conds;
      List.concat_map
        (fun cc -> List.map (fun rm -> Setcc (cc, rm)) all_rms)
        all_conds;
      [ Jmp 0x2000; JmpInd (R r1); JmpInd (M m1) ];
      [ Call 0x2000; CallInd (R r1); CallInd (M m1) ];
      [ Ret 0; Ret 8 ];
      [ Int3; Int 0x30; Iret ];
      cart (fun sz p -> In (sz, p)) all_sizes [ PortImm 0xf1; PortDx ];
      cart (fun sz p -> Out (sz, p)) all_sizes [ PortImm 0xf1; PortDx ];
      [ Hlt; Nop; Cli; Sti ];
      cart
        (fun rep (op, size) -> Strop { rep; op; size })
        [ false; true ]
        (cart (fun op size -> (op, size)) [ Movs; Stos ] all_sizes);
      [ Lidt m1 ];
    ]

let event_keys = [ "ev.irq"; "ev.dma"; "ev.prot"; "ev.pkt"; "ev.dma_at" ]

let all_keys =
  List.sort_uniq compare (List.map key exemplars) @ event_keys

(* ------------------------------------------------------------------ *)
(* Counters                                                            *)
(* ------------------------------------------------------------------ *)

type t_counts = (string, int) Hashtbl.t

let create () : t_counts = Hashtbl.create 256

let note (t : t_counts) k =
  Hashtbl.replace t k (1 + Option.value ~default:0 (Hashtbl.find_opt t k))

let hit (t : t_counts) k = Hashtbl.mem t k

let covered (t : t_counts) =
  List.length (List.filter (Hashtbl.mem t) all_keys)

let total () = List.length all_keys

let percent (t : t_counts) =
  100.0 *. float_of_int (covered t) /. float_of_int (total ())

let missing (t : t_counts) =
  List.filter (fun k -> not (Hashtbl.mem t k)) all_keys

(** Stable sorted (key, count) dump, for --json and determinism checks. *)
let to_list (t : t_counts) =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t []
  |> List.sort compare
