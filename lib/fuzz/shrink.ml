(** Greedy case minimization.

    Structure-aware shrinking: candidates delete whole semantic slots
    (an instruction plus its operand setup), empty blocks and leaf
    functions, drop loop wrappers and remove injected events — never
    individual bytes — so every candidate re-renders to a valid,
    terminating program.  Block and function *skeletons* are kept (their
    labels are referenced by SMC patch slots and the function table);
    only their contents shrink.

    Each candidate is re-rendered and re-checked with the caller's
    predicate; a candidate is kept only if it still reproduces.  Passes
    repeat to a fixpoint.  Every decision is a pure function of the
    input case and the predicate, so minimization is deterministic —
    the same diverging case always shrinks to the same minimal repro. *)

(** Total shrinkable weight: slots, loop wrappers and events. *)
let size (c : Gen.case) =
  let p = c.Gen.prog in
  let block_w (b : Gen.block) =
    List.length b.Gen.slots + match b.Gen.loop with Some _ -> 1 | None -> 0
  in
  List.fold_left (fun a b -> a + block_w b) 0 p.Gen.blocks
  + List.fold_left (fun a f -> a + List.length f.Gen.fslots) 0 p.Gen.funcs
  + List.length c.Gen.events

let set_nth l i v = List.mapi (fun j x -> if j = i then v else x) l
let drop_nth l i = List.filteri (fun j _ -> j <> i) l

(** Minimize [case] with respect to [check] (true = still reproduces).
    @raise Invalid_argument if [check case] is false to begin with. *)
let minimize ~check (case : Gen.case) =
  if not (check case) then
    invalid_arg "Shrink.minimize: case does not reproduce";
  let current = ref case in
  let accept c = if check c then (current := c; true) else false in
  let with_blocks c blocks =
    { c with Gen.prog = { c.Gen.prog with Gen.blocks } }
  in
  let with_funcs c funcs =
    { c with Gen.prog = { c.Gen.prog with Gen.funcs } }
  in
  let progress = ref true in
  while !progress do
    progress := false;
    let mark b = if b then progress := true in
    (* drop all events at once, then one at a time (back to front) *)
    let c = !current in
    if c.Gen.events <> [] then mark (accept { c with Gen.events = [] });
    for i = List.length !current.Gen.events - 1 downto 0 do
      let c = !current in
      mark (accept { c with Gen.events = drop_nth c.Gen.events i })
    done;
    (* empty whole blocks (keeping the skeleton), back to front *)
    for i = List.length !current.Gen.prog.Gen.blocks - 1 downto 0 do
      let c = !current in
      let b = List.nth c.Gen.prog.Gen.blocks i in
      if b.Gen.slots <> [] || b.Gen.loop <> None then
        mark
          (accept
             (with_blocks c
                (set_nth c.Gen.prog.Gen.blocks i
                   { Gen.loop = None; slots = [] })))
    done;
    (* per-block: drop the loop wrapper, then individual slots *)
    for i = List.length !current.Gen.prog.Gen.blocks - 1 downto 0 do
      let c = !current in
      let b = List.nth c.Gen.prog.Gen.blocks i in
      if b.Gen.loop <> None then
        mark
          (accept
             (with_blocks c
                (set_nth c.Gen.prog.Gen.blocks i { b with Gen.loop = None })));
      let b = List.nth !current.Gen.prog.Gen.blocks i in
      for s = List.length b.Gen.slots - 1 downto 0 do
        let c = !current in
        let b = List.nth c.Gen.prog.Gen.blocks i in
        if s < List.length b.Gen.slots then
          mark
            (accept
               (with_blocks c
                  (set_nth c.Gen.prog.Gen.blocks i
                     { b with Gen.slots = drop_nth b.Gen.slots s })))
      done
    done;
    (* per-function slot deletion (skeleton + ret stay) *)
    for i = List.length !current.Gen.prog.Gen.funcs - 1 downto 0 do
      let c = !current in
      let f = List.nth c.Gen.prog.Gen.funcs i in
      for s = List.length f.Gen.fslots - 1 downto 0 do
        let c = !current in
        let f = List.nth c.Gen.prog.Gen.funcs i in
        if s < List.length f.Gen.fslots then
          mark
            (accept
               (with_funcs c
                  (set_nth c.Gen.prog.Gen.funcs i
                     { f with Gen.fslots = drop_nth f.Gen.fslots s })))
      done
    done
  done;
  !current

(** Shrink against the full differential oracle ([chaos] carries the
    case's chaos seed, so chaos-found divergences shrink against the
    same injection schedule that found them). *)
let minimize_diverging ?max_insns ?chaos case =
  minimize
    ~check:(fun c -> Oracle.diverges (Oracle.render ?max_insns ?chaos c))
    case
