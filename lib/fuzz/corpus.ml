(** Replayable corpus cases.

    A corpus file captures a *rendered* case — the assembled image plus
    its injected events — in a stable, diff-friendly text format, so a
    minimized divergence found by one fuzz run becomes a permanent
    regression test independent of later generator changes:

    {v
    cmsfuzz-case v1
    # free-form comment lines
    seed 42
    base 0x10000
    entry 0x10000
    max-insns 200000
    image 8b0425...
    image 90c3...
    event irq 120 2
    event dma 0x41000 deadbeef
    event prot 0x10000 0
    v}

    An optional [chaos <seed>] directive marks a chaos-mode case:
    replay then runs the chaos oracle (translator under the seeded
    host-side injection schedule) instead of the clean differential.

    [image] lines concatenate in order.  Replay loads the bytes at
    [base], boots at [entry], installs the events and runs the full
    differential oracle. *)

let magic = "cmsfuzz-case v1"

let to_hex s =
  let b = Buffer.create (2 * String.length s) in
  String.iter (fun ch -> Buffer.add_string b (Fmt.str "%02x" (Char.code ch))) s;
  Buffer.contents b

let of_hex s =
  if String.length s mod 2 <> 0 then invalid_arg "Corpus.of_hex";
  String.init
    (String.length s / 2)
    (fun i -> Char.chr (int_of_string ("0x" ^ String.sub s (2 * i) 2)))

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)
(* ------------------------------------------------------------------ *)

let write_string (r : Oracle.rendered) ~seed ~comment =
  let b = Buffer.create 4096 in
  Buffer.add_string b (magic ^ "\n");
  List.iter
    (fun line -> Buffer.add_string b ("# " ^ line ^ "\n"))
    comment;
  Buffer.add_string b (Fmt.str "seed %d\n" seed);
  Buffer.add_string b (Fmt.str "base 0x%x\n" r.Oracle.listing.X86.Asm.base);
  Buffer.add_string b (Fmt.str "entry 0x%x\n" r.Oracle.entry);
  Buffer.add_string b (Fmt.str "max-insns %d\n" r.Oracle.max_insns);
  (match r.Oracle.chaos with
  | Some s -> Buffer.add_string b (Fmt.str "chaos %d\n" s)
  | None -> ());
  let hex = to_hex (Bytes.to_string r.Oracle.listing.X86.Asm.image) in
  let n = String.length hex in
  let stride = 128 in
  let rec lines i =
    if i < n then begin
      Buffer.add_string b
        (Fmt.str "image %s\n" (String.sub hex i (min stride (n - i))));
      lines (i + stride)
    end
  in
  lines 0;
  List.iter
    (fun ev ->
      Buffer.add_string b
        (match ev with
        | Inject.Irq { at; line } -> Fmt.str "event irq %d %d\n" at line
        | Inject.Dma { addr; data } ->
            Fmt.str "event dma 0x%x %s\n" addr (to_hex data)
        | Inject.Prot { virt; writable } ->
            Fmt.str "event prot 0x%x %d\n" virt (if writable then 1 else 0)
        | Inject.Pkt { at; data } ->
            Fmt.str "event pkt %d %s\n" at (to_hex data)
        | Inject.Dma_at { at; addr; data } ->
            Fmt.str "event dmaat %d 0x%x %s\n" at addr (to_hex data)))
    r.Oracle.events;
  Buffer.contents b

let save path (r : Oracle.rendered) ~seed ~comment =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (write_string r ~seed ~comment))

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)
(* ------------------------------------------------------------------ *)

let parse_error path line msg =
  failwith (Fmt.str "%s: corpus parse error at %S: %s" path line msg)

(** Parse a corpus file; returns the rendered case and its recorded
    seed. *)
let load path : Oracle.rendered * int =
  let ic = open_in path in
  let lines =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let rec go acc =
          match input_line ic with
          | l -> go (l :: acc)
          | exception End_of_file -> List.rev acc
        in
        go [])
  in
  (match lines with
  | first :: _ when String.trim first = magic -> ()
  | _ -> failwith (Fmt.str "%s: not a %s file" path magic));
  let seed = ref 0 in
  let base = ref 0 in
  let entry = ref 0 in
  let max_insns = ref Oracle.default_max_insns in
  let chaos = ref None in
  let image = Buffer.create 4096 in
  let events = ref [] in
  List.iteri
    (fun i line ->
      let line = String.trim line in
      if i = 0 || line = "" || line.[0] = '#' then ()
      else
        match String.split_on_char ' ' line with
        | [ "seed"; v ] -> seed := int_of_string v
        | [ "base"; v ] -> base := int_of_string v
        | [ "entry"; v ] -> entry := int_of_string v
        | [ "max-insns"; v ] -> max_insns := int_of_string v
        | [ "chaos"; v ] -> chaos := Some (int_of_string v)
        | [ "image"; hex ] -> Buffer.add_string image (of_hex hex)
        | [ "event"; "irq"; at; ln ] ->
            events :=
              Inject.Irq { at = int_of_string at; line = int_of_string ln }
              :: !events
        | [ "event"; "dma"; addr; hex ] ->
            events :=
              Inject.Dma { addr = int_of_string addr; data = of_hex hex }
              :: !events
        | [ "event"; "prot"; virt; w ] ->
            events :=
              Inject.Prot
                { virt = int_of_string virt; writable = int_of_string w <> 0 }
              :: !events
        | [ "event"; "pkt"; at; hex ] ->
            events :=
              Inject.Pkt { at = int_of_string at; data = of_hex hex }
              :: !events
        | [ "event"; "dmaat"; at; addr; hex ] ->
            events :=
              Inject.Dma_at
                { at = int_of_string at;
                  addr = int_of_string addr;
                  data = of_hex hex }
              :: !events
        | _ -> parse_error path line "unrecognized directive")
    lines;
  if Buffer.length image = 0 then parse_error path "(end)" "no image lines";
  let listing =
    {
      X86.Asm.base = !base;
      image = Buffer.to_bytes image;
      labels = [];
      insns = [];
    }
  in
  ( { Oracle.listing; entry = !entry; events = List.rev !events;
      max_insns = !max_insns; chaos = !chaos },
    !seed )

(** Replay one corpus file through the differential oracle. *)
let replay path : Oracle.verdict =
  let r, _seed = load path in
  Oracle.check r

(** All corpus files in [dir], sorted for deterministic order. *)
let files dir =
  if Sys.file_exists dir && Sys.is_directory dir then
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".case")
    |> List.sort compare
    |> List.map (Filename.concat dir)
  else []
