(** Deterministic splittable RNG — the implementation lives in the
    shared {!Splitmix} library (one copy for both the chaos layer and
    the fuzzer); re-exported here so fuzzer code (and the bench
    harness) keeps its spelling. *)

include Splitmix
