(** Deterministic splittable RNG — moved to {!Cms_robust.Srng} so the
    chaos layer can be seeded without depending on the fuzzer; re-
    exported here so fuzzer code (and the bench harness) keeps its
    spelling. *)

include Cms_robust.Srng
