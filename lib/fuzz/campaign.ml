(** Fuzzing campaign driver: generate → oracle → shrink → corpus.

    A campaign is fully determined by its seed: each case gets an
    independent child RNG via {!Srng.split}, so case [i] is the same
    program whatever happened to cases [0..i-1], and the whole run —
    case sequence, verdicts, coverage counters — replays bit-identically
    from the seed ({!fingerprint} pins that in tests). *)

type divergence = {
  index : int;
  reason : string;
  minimized : Gen.case;
  saved : string option;  (** corpus path, when [out_dir] was given *)
}

type result = {
  seed : int;
  cases : int;
  passed : int;
  hangs : int;
  divergences : divergence list;
  coverage : Coverage.t_counts;
}

(** Run [cases] cases from [seed].  Divergences are minimized and, when
    [out_dir] is given, written there as corpus files.  [progress] is
    called after each case with (index, verdict).  With [chaos] each
    case additionally carries a derived chaos seed and runs the chaos
    oracle (clean interpreter vs translator-under-injection) instead of
    the clean three-way differential. *)
let run ?(progress = fun _ _ -> ()) ?out_dir ?(max_insns = Oracle.default_max_insns)
    ?(chaos = false) ~seed ~cases () =
  let root = Srng.create seed in
  let coverage = Coverage.create () in
  let passed = ref 0 in
  let hangs = ref 0 in
  let divergences = ref [] in
  for index = 0 to cases - 1 do
    let rng = Srng.split root in
    let case = Gen.generate rng ~seed ~index in
    Gen.note_coverage coverage case;
    let chaos_seed = if chaos then Some (Srng.int32 rng) else None in
    let rendered = Oracle.render ~max_insns ?chaos:chaos_seed case in
    let verdict = Oracle.check rendered in
    (match verdict with
    | Oracle.Pass -> incr passed
    | Oracle.Hang -> incr hangs
    | Oracle.Divergence reason ->
        let minimized =
          Shrink.minimize_diverging ~max_insns ?chaos:chaos_seed case
        in
        let saved =
          match out_dir with
          | None -> None
          | Some dir ->
              let path =
                Filename.concat dir (Fmt.str "seed%d-case%d.case" seed index)
              in
              Corpus.save path
                (Oracle.render ~max_insns ?chaos:chaos_seed minimized)
                ~seed
                ~comment:
                  [
                    Fmt.str "minimized divergence: %s" reason;
                    Fmt.str "campaign seed %d, case %d" seed index;
                  ];
              Some path
        in
        divergences := { index; reason; minimized; saved } :: !divergences);
    progress index verdict
  done;
  {
    seed;
    cases;
    passed = !passed;
    hangs = !hangs;
    divergences = List.rev !divergences;
    coverage;
  }

(** Deterministic digest of everything a campaign observed: used to
    assert that the same seed reproduces the identical case sequence
    and coverage numbers. *)
let fingerprint (r : result) =
  Digest.string
    (Marshal.to_string
       ( r.seed,
         r.cases,
         r.passed,
         r.hangs,
         List.map (fun d -> (d.index, d.reason)) r.divergences,
         Coverage.to_list r.coverage )
       [])
