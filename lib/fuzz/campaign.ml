(** Fuzzing campaign driver: generate → oracle → shrink → corpus.

    A campaign is fully determined by its seed: each case gets an
    independent child RNG via {!Srng.split}, so case [i] is the same
    program whatever happened to cases [0..i-1], and the whole run —
    case sequence, verdicts, coverage counters — replays bit-identically
    from the seed ({!fingerprint} pins that in tests). *)

type divergence = {
  index : int;
  reason : string;
  minimized : Gen.case;
  saved : string option;  (** corpus path, when [out_dir] was given *)
}

type result = {
  seed : int;
  cases : int;
  passed : int;
  hangs : int;
  divergences : divergence list;
  coverage : Coverage.t_counts;
}

(** Run [cases] cases from [seed].  Divergences are minimized and, when
    [out_dir] is given, written there as corpus files.  [progress] is
    called after each case with (index, verdict).  With [chaos] each
    case additionally carries a derived chaos seed and runs the chaos
    oracle (clean interpreter vs translator-under-injection) instead of
    the clean three-way differential.  With [forensics] every
    divergence additionally dumps a replayable bundle into that
    directory: the recorded event journal, the last-checkpoint and
    final-state snapshots, the minimized case text and a counter
    report. *)
let run ?(progress = fun _ _ -> ()) ?out_dir ?forensics
    ?(max_insns = Oracle.default_max_insns)
    ?(chaos = false) ~seed ~cases () =
  let root = Srng.create seed in
  let coverage = Coverage.create () in
  let passed = ref 0 in
  let hangs = ref 0 in
  let divergences = ref [] in
  for index = 0 to cases - 1 do
    let rng = Srng.split root in
    let case = Gen.generate rng ~seed ~index in
    Gen.note_coverage coverage case;
    let chaos_seed = if chaos then Some (Srng.int32 rng) else None in
    let rendered = Oracle.render ~max_insns ?chaos:chaos_seed case in
    let verdict = Oracle.check rendered in
    (match verdict with
    | Oracle.Pass -> incr passed
    | Oracle.Hang -> incr hangs
    | Oracle.Divergence reason ->
        let minimized =
          Shrink.minimize_diverging ~max_insns ?chaos:chaos_seed case
        in
        let saved =
          match out_dir with
          | None -> None
          | Some dir ->
              let path =
                Filename.concat dir (Fmt.str "seed%d-case%d.case" seed index)
              in
              Corpus.save path
                (Oracle.render ~max_insns ?chaos:chaos_seed minimized)
                ~seed
                ~comment:
                  [
                    Fmt.str "minimized divergence: %s" reason;
                    Fmt.str "campaign seed %d, case %d" seed index;
                  ];
              Some path
        in
        (match forensics with
        | None -> ()
        | Some dir ->
            let name = Fmt.str "seed%d-case%d" seed index in
            let rmin = Oracle.render ~max_insns ?chaos:chaos_seed minimized in
            let rec_ = Oracle.record ~checkpoint_every:10_000 ~label:name rmin in
            (* an AOT-oracle divergence is only debuggable with the
               image that produced it: bundle its serialized bytes *)
            let aot =
              if
                String.length reason >= 3 && String.sub reason 0 3 = "aot"
              then Oracle.aot_image_bytes rmin
              else None
            in
            ignore
              (Cms_persist.Forensics.dump ~dir ~name ~reason
                 ?snapshot:rec_.Oracle.final_image
                 ?checkpoint:rec_.Oracle.checkpoint ~journal:rec_.Oracle.journal
                 ~case_text:
                   (Corpus.write_string rmin ~seed
                      ~comment:[ Fmt.str "divergence: %s" reason ])
                 ?aot ()));
        divergences := { index; reason; minimized; saved } :: !divergences);
    progress index verdict
  done;
  {
    seed;
    cases;
    passed = !passed;
    hangs = !hangs;
    divergences = List.rev !divergences;
    coverage;
  }

(** Deterministic digest of everything a campaign observed: used to
    assert that the same seed reproduces the identical case sequence
    and coverage numbers.  Encoded with the stable {!Cms_persist.Codec}
    byte format (not [Marshal]) so fingerprints are comparable across
    compiler versions and builds. *)
let fingerprint (r : result) =
  let module C = Cms_persist.Codec in
  let b = C.writer () in
  C.w_int b r.seed;
  C.w_int b r.cases;
  C.w_int b r.passed;
  C.w_int b r.hangs;
  C.w_list b
    (fun b (index, reason) ->
      C.w_int b index;
      C.w_string b reason)
    (List.map (fun d -> (d.index, d.reason)) r.divergences);
  C.w_list b
    (fun b (key, count) ->
      C.w_string b key;
      C.w_int b count)
    (Coverage.to_list r.coverage);
  Digest.string (C.contents b)
