(** Seeded random x86 program generator.

    Emits structured, *terminating-by-construction* guest programs as
    {!X86.Asm} item lists: a fixed skeleton (IDT with every vector
    installed, register init, [sti] when interrupts are in play, and a
    parking epilogue — an interruptible halt loop when IRQs are in
    play, [cli; hlt] otherwise) around randomized blocks of
    instruction slots.

    Robustness rules that make every generated program a valid oracle
    subject, whatever the dice say:

    - Loops are single-level, bounded by the reserved counter register
      EBP, which no random operand may touch (ESP likewise).
    - Memory operands land inside a dedicated scratch window (or are
      explicit SMC patches of known immediate cells, MMIO touches of the
      frame buffer, or rare probes of an unmapped page).
    - Stack traffic comes only in balanced push/pop pairs or call/ret to
      generated leaf functions.
    - Fault handlers are abort-style: reset ESP, bump a counter cell,
      and jump through a resume cell that each block points at its
      successor — so any fault (deliberate #DE/#PF slots included)
      deterministically skips to the next block.
    - Interrupt handlers only increment dedicated counter cells and
      IRET, so the architectural end state does not depend on exactly
      which instruction boundary delivery lands on — the property that
      makes comparing interpreter and translator runs sound.
    - Divisions are guarded (zeroed/sign-extended high half, non-zero
      divisor) except for deliberate rare divide-fault slots. *)

open X86.Asm

(* ------------------------------------------------------------------ *)
(* Memory layout (shared with the oracle and corpus replays)           *)
(* ------------------------------------------------------------------ *)

let code_base = 0x10000
let stack_top = 0x80000

(** Stack pages [stack_lo, stack_top): excluded from the cross-config
    memory digest, because interrupt delivery pushes/pops its frame at
    boundaries that legitimately differ between interpreter and
    translator runs, leaving different dead bytes below ESP. *)
let stack_lo = 0x70000

let cells = 0x40000 (* one page of counter/linkage cells *)
let resume_cell = cells (* fault handler jumps through here *)
let fault_cell = cells + 4 (* faults taken *)
let int_cell = cells + 8 (* int 0x30 traps *)
let bp_cell = cells + 12 (* int3 traps *)
let irq_cell k = cells + 16 + (4 * k) (* per-line IRQ deliveries *)

let scratch_lo = 0x41000
let scratch_hi = 0x48000 (* exclusive; 7 pages *)
let fb_base = 0xa0000
let fb_size = 0x10000
let unmapped_base = 0x300000 (* beyond the 2 MiB identity map *)

let irq_lines = 4

(* NIC front (packet-arrival events): a static RX ring programmed once
   in the prologue — descriptors and buffers live just past the scratch
   window, where no random slot and no sync DMA event can touch them,
   so ring contents are a pure function of the delivered frame list. *)
let nic_ring = 0x49000 (* descriptor area *)
let nic_bufs = 0x49100 (* frame buffers *)
let nic_slots = 4
let nic_buf_cap = 64
let nic_cell = cells + 16 + (4 * irq_lines) (* NIC IRQ deliveries *)

(* ------------------------------------------------------------------ *)
(* Case structure                                                      *)
(* ------------------------------------------------------------------ *)

(** A slot is one semantic unit: optional operand setup plus the
    instruction(s) under test.  The shrinker deletes whole slots, which
    keeps candidates valid by construction. *)
type slot = { items : item list }

type block = {
  loop : int option;  (** iteration count of the EBP-bounded loop *)
  slots : slot list;
}

type func = { ret_imm : int; fslots : slot list }
(* ret_imm > 0 means the function returns with [ret n] and every call
   site pushes one extra word first *)

type prog = {
  blocks : block list;
  funcs : func list;
  has_irq : bool;  (** prologue STI + handler re-enable *)
  nic : int option;
      (** NIC front armed, with this mitigation-register value: the
          prologue programs a static [nic_slots]-descriptor RX ring and
          enables the device, and packet-arrival events may inject *)
}

type case = {
  seed : int;  (** campaign seed, for reporting *)
  index : int;  (** case number within the campaign *)
  prog : prog;
  events : Inject.event list;
}

(* ------------------------------------------------------------------ *)
(* Slot generators                                                     *)
(* ------------------------------------------------------------------ *)

(* Registers random operands may use: everything but ESP (stack) and
   EBP (reserved loop counter). *)
let gp_regs = [| eax; ecx; edx; ebx; esi; edi |]

let reg rng = Srng.choose rng gp_regs
let reg8 rng = Srng.int rng 8 (* al..bh: aliases of eax..ebx only *)

let imm32 rng = Srng.int32 rng
let imm8 rng = Srng.int rng 256

(* A scratch-window address with room for [slack] bytes after it. *)
let scratch_addr rng ~slack =
  scratch_lo + Srng.int rng (scratch_hi - scratch_lo - slack)

(* A random addressing form resolving inside the scratch window (with
   [slack] bytes of room), together with its setup instructions.
   Returns registers it clobbers so callers can avoid reusing them. *)
let mem_operand rng ~slack =
  match Srng.int rng 4 with
  | 0 ->
      (* absolute [disp32] *)
      ([], m (scratch_addr rng ~slack))
  | 1 ->
      (* [base + disp] with mod 0/1/2 displacements *)
      let b = reg rng in
      let d = Srng.choose rng [| 0; Srng.int rng 0x80; 0x100 + Srng.int rng 0x600 |] in
      let addr = scratch_addr rng ~slack:(slack + d) in
      ([ mov_ri b addr ], mbd b d)
  | 2 ->
      (* [base + index*scale + disp] *)
      let b = reg rng in
      let x = ref (reg rng) in
      while !x = b || !x = esp do x := reg rng done;
      let scale = Srng.choose rng [| 1; 2; 4; 8 |] in
      let k = Srng.int rng 16 in
      let d = Srng.int rng 0x40 in
      let addr = scratch_addr rng ~slack:(slack + (16 * scale) + d) in
      ([ mov_ri b addr; mov_ri !x k ], mbid b !x scale d)
  | _ ->
      (* [index*scale + disp32], no base *)
      let x = reg rng in
      let scale = Srng.choose rng [| 1; 2; 4; 8 |] in
      let k = Srng.int rng 16 in
      let addr = scratch_addr rng ~slack:(slack + (16 * scale)) in
      ([ mov_ri x k ], X86.Insn.mem ~index:(x, scale) addr)

open X86.Insn

let arith_ops = [| Add; Or; Adc; Sbb; And; Sub; Xor; Cmp |]
let shift_ops = [| Shl; Shr; Sar; Rol; Ror |]

let slot_arith rng =
  let op = Srng.choose rng arith_ops in
  let sz = if Srng.bool rng then S32 else S8 in
  match Srng.int rng 6 with
  | 0 -> [ I (Arith (op, sz, RM_R (R (reg rng), reg rng))) ]
  | 1 ->
      let setup, mm = mem_operand rng ~slack:4 in
      setup @ [ I (Arith (op, sz, RM_R (M mm, reg rng))) ]
  | 2 -> [ I (Arith (op, sz, R_RM (reg rng, R (reg rng)))) ]
  | 3 ->
      let setup, mm = mem_operand rng ~slack:4 in
      setup @ [ I (Arith (op, sz, R_RM (reg rng, M mm))) ]
  | 4 ->
      let i = match sz with S8 -> imm8 rng | S32 -> imm32 rng in
      [ I (Arith (op, sz, RM_I (R (reg rng), i))) ]
  | _ ->
      let setup, mm = mem_operand rng ~slack:4 in
      let i = match sz with S8 -> imm8 rng | S32 -> imm32 rng in
      setup @ [ I (Arith (op, sz, RM_I (M mm, i))) ]

let slot_test rng =
  let sz = if Srng.bool rng then S32 else S8 in
  let with_rm f =
    if Srng.bool rng then [ I (f (R (reg rng))) ]
    else
      let setup, mm = mem_operand rng ~slack:4 in
      setup @ [ I (f (M mm)) ]
  in
  if Srng.bool rng then with_rm (fun rm -> Test (sz, rm, T_R (reg rng)))
  else
    let i = match sz with S8 -> imm8 rng | S32 -> imm32 rng in
    with_rm (fun rm -> Test (sz, rm, T_I i))

let slot_mov rng =
  match Srng.int rng 8 with
  | 0 -> [ mov_rr (reg rng) (reg rng) ]
  | 1 -> [ mov_ri (reg rng) (imm32 rng) ]
  | 2 ->
      let setup, mm = mem_operand rng ~slack:4 in
      setup @ [ mov_rm (reg rng) mm ]
  | 3 ->
      let setup, mm = mem_operand rng ~slack:4 in
      setup @ [ mov_mr mm (reg rng) ]
  | 4 ->
      let setup, mm = mem_operand rng ~slack:4 in
      setup @ [ mov_mi mm (imm32 rng) ]
  | 5 -> [ mov8_ri (reg8 rng) (imm8 rng) ]
  | 6 ->
      let setup, mm = mem_operand rng ~slack:1 in
      setup
      @ [
          (if Srng.bool rng then mov8_mi mm (imm8 rng)
           else I (Mov (S8, RM_R (M mm, reg8 rng))));
        ]
  | _ ->
      let setup, mm = mem_operand rng ~slack:1 in
      setup @ [ I (Mov (S8, R_RM (reg8 rng, M mm))) ]

let slot_movx rng =
  let sign = Srng.bool rng in
  if Srng.bool rng then
    [ I (Movx { sign; dst = reg rng; src = R (reg8 rng) }) ]
  else
    let setup, mm = mem_operand rng ~slack:1 in
    setup @ [ I (Movx { sign; dst = reg rng; src = M mm }) ]

(* LEA never dereferences: any operand combination is safe, so this is
   where arbitrary ModRM/SIB shapes (including EBP bases and huge
   displacements) get exercised. *)
let slot_lea rng =
  let base = if Srng.bool rng then Some (Srng.choose rng gp_regs) else None in
  let index =
    if Srng.bool rng then
      let x = ref (reg rng) in
      while !x = esp do x := reg rng done;
      Some (!x, Srng.choose rng [| 1; 2; 4; 8 |])
    else None
  in
  [ lea (reg rng) (X86.Insn.mem ?base ?index (imm32 rng)) ]

let slot_xchg rng =
  let sz = if Srng.bool rng then S32 else S8 in
  if Srng.bool rng then
    match sz with
    | S32 -> [ xchg_rr (reg rng) (reg rng) ]
    | S8 -> [ I (Xchg (S8, R (reg8 rng), reg8 rng)) ]
  else
    let setup, mm = mem_operand rng ~slack:4 in
    let r = match sz with S32 -> reg rng | S8 -> reg8 rng in
    setup @ [ I (Xchg (sz, M mm, r)) ]

let slot_unary rng =
  let sz = if Srng.bool rng then S32 else S8 in
  let mk rm =
    match Srng.int rng 4 with
    | 0 -> Inc (sz, rm)
    | 1 -> Dec (sz, rm)
    | 2 -> Not (sz, rm)
    | _ -> Neg (sz, rm)
  in
  if Srng.bool rng then
    let r = match sz with S32 -> reg rng | S8 -> reg8 rng in
    [ I (mk (R r)) ]
  else
    let setup, mm = mem_operand rng ~slack:4 in
    setup @ [ I (mk (M mm)) ]

let slot_shift rng =
  let op = Srng.choose rng shift_ops in
  let sz = if Srng.bool rng then S32 else S8 in
  let count =
    match Srng.int rng 3 with
    | 0 -> (C1, [])
    | 1 -> (Cimm (Srng.int rng 32), [])
    | _ -> (Ccl, [ mov8_ri 1 (Srng.int rng 32) ] (* cl *))
  in
  let c, setup_cl = count in
  if Srng.bool rng then
    let r = match sz with S32 -> reg rng | S8 -> reg8 rng in
    setup_cl @ [ I (Shift (op, sz, R r, c)) ]
  else
    let setup, mm = mem_operand rng ~slack:4 in
    setup_cl @ setup @ [ I (Shift (op, sz, M mm, c)) ]

(* Multiplies are unguarded (no faults); divides clamp the dividend and
   load a non-zero divisor, except the rare deliberate #DE slot. *)
let slot_muldiv rng =
  let sz = if Srng.bool rng then S32 else S8 in
  let rm_of setup_ok =
    if Srng.bool rng || not setup_ok then
      let r = ref (reg rng) in
      while !r = eax || !r = edx do r := reg rng done;
      ([], R (match sz with S32 -> !r | S8 -> reg8 rng))
    else
      let setup, mm = mem_operand rng ~slack:4 in
      (setup, M mm)
  in
  match Srng.int rng 6 with
  | 0 ->
      let setup, rm = rm_of true in
      setup @ [ I (Mul (sz, rm)) ]
  | 1 ->
      let setup, rm = rm_of true in
      setup @ [ I (Imul1 (sz, rm)) ]
  | 2 ->
      if Srng.bool rng then [ imul_rr (reg rng) (reg rng) ]
      else
        let setup, mm = mem_operand rng ~slack:4 in
        setup @ [ imul_rm (reg rng) mm ]
  | 3 -> (
      (* guarded div *)
      let d = 1 + Srng.int rng 250 in
      match sz with
      | S32 ->
          let r = ref (reg rng) in
          while !r = eax || !r = edx do r := reg rng done;
          [ mov_ri edx 0; mov_ri !r d; div_r !r ]
      | S8 ->
          (* dividend is AX; zero AH so the quotient fits AL *)
          [ mov8_ri 4 0; mov8_ri 1 d; I (Div (S8, R 1)) ])
  | 4 -> (
      (* guarded idiv *)
      let d = 2 + Srng.int rng 200 in
      match sz with
      | S32 ->
          let r = ref (reg rng) in
          while !r = eax || !r = edx do r := reg rng done;
          [ cdq; mov_ri !r d; idiv_r !r ]
      | S8 ->
          [ mov8_ri 4 0; mov8_ri 1 d; I (Idiv (S8, R 1)) ])
  | _ ->
      if Srng.chance rng 1 8 then
        (* deliberate #DE: the fault handler aborts the block *)
        [ mov_ri ecx 0; div_r ecx ]
      else [ cdq ]

let slot_pushpop rng =
  match Srng.int rng 4 with
  | 0 -> [ push_r (reg rng); pop_r (reg rng) ]
  | 1 -> [ push_i (imm32 rng); pop_r (reg rng) ]
  | 2 ->
      let setup, mm = mem_operand rng ~slack:4 in
      let setup2, mm2 = mem_operand rng ~slack:4 in
      setup @ [ I (Push (PushM mm)) ] @ setup2 @ [ I (Pop (M mm2)) ]
  | _ -> [ pushf; popf ]

let fresh_label =
  (* Unique labels within one rendered listing: the counter resets per
     render, so renders are reproducible. *)
  ref 0

let new_label prefix =
  incr fresh_label;
  Fmt.str "%s_%d" prefix !fresh_label

let slot_jcc rng =
  let cc = Srng.choose_list rng X86.Cond.all in
  let skip = new_label "sk" in
  let guard =
    if Srng.bool rng then cmp_ri (reg rng) (imm32 rng)
    else test_rr (reg rng) (reg rng)
  in
  let body =
    match Srng.int rng 3 with
    | 0 -> [ inc_r (reg rng) ]
    | 1 -> [ xor_ri (reg rng) (imm32 rng) ]
    | _ -> [ mov_ri (reg rng) (imm32 rng) ]
  in
  [ guard; jcc cc skip ] @ body @ [ label skip ]

let slot_setcc rng =
  let cc = Srng.choose_list rng X86.Cond.all in
  if Srng.bool rng then [ setcc cc (reg8 rng) ]
  else
    let setup, mm = mem_operand rng ~slack:1 in
    setup @ [ I (Setcc (cc, M mm)) ]

let slot_jmp rng =
  let cont = new_label "jc" in
  match Srng.int rng 3 with
  | 0 -> [ jmp cont; mov_ri (reg rng) (imm32 rng); label cont ]
  | 1 ->
      let r = reg rng in
      [ mov_rl r cont; jmp_r r; inc_r (reg rng); label cont ]
  | _ ->
      (* data-dependent dispatch through a jump table of forward labels *)
      let tbl = new_label "jt" in
      let l0 = new_label "jl" and l1 = new_label "jl" in
      let b = reg rng in
      let x = ref (reg rng) in
      while !x = b do x := reg rng done;
      [
        mov_rl b tbl;
        mov_ri !x (Srng.int rng 2);
        jmp_m (mbid b !x 4 0);
        label tbl;
        dd_l [ l0; l1 ];
        label l0;
        add_ri (reg rng) (imm32 rng);
        jmp cont;
        label l1;
        sub_ri (reg rng) (imm32 rng);
        label cont;
      ]

let slot_strop rng =
  let rep = Srng.bool rng in
  let op = if Srng.bool rng then Movs else Stos in
  let size = if Srng.bool rng then S32 else S8 in
  let n = Srng.int rng 48 in
  let src = scratch_addr rng ~slack:256 in
  let dst = scratch_addr rng ~slack:256 in
  let setup =
    [ mov_ri edi dst; mov_ri ecx n ]
    @ (match op with Movs -> [ mov_ri esi src ] | Stos -> [])
  in
  setup @ [ I (Strop { rep; op; size }) ]

let slot_io rng ~fuzz_port =
  match Srng.int rng 6 with
  | 0 -> [ I (Out (S8, PortImm fuzz_port)) ] (* sync event trigger *)
  | 1 -> [ I (Out (S32, PortImm fuzz_port)) ]
  | 2 ->
      (* uart output: lands in the compared console digest *)
      [
        mov_ri edx 0x3f8;
        mov_ri eax (0x20 + Srng.int rng 0x5f);
        I (Out ((if Srng.bool rng then S8 else S32), PortDx));
      ]
  | 3 -> [ I (In ((if Srng.bool rng then S8 else S32), PortImm fuzz_port)) ]
  | 4 ->
      (* uart status: deterministic constant *)
      [ mov_ri edx 0x3fd; I (In ((if Srng.bool rng then S8 else S32), PortDx)) ]
  | _ -> [ I (Out (S8, PortImm fuzz_port)) ]

let slot_mmio rng =
  let off = Srng.int rng (fb_size - 8) in
  let b = reg rng in
  let addr = fb_base + off in
  match Srng.int rng 3 with
  | 0 -> [ mov_ri b addr; mov_rm (reg rng) (mb b) ]
  | 1 -> [ mov_ri b addr; mov_mr (mb b) (reg rng) ]
  | _ -> [ mov_ri b addr; add_mi (mb b) (imm32 rng) ]

(* Store to the imm32 cell of another block's patch-point instruction:
   self-modifying code through the full protection ladder. *)
let patch_imm_off =
  (* offset of the imm32 inside the canonical patch-point encoding *)
  match (X86.Encode.encode ~at:0 (Mov (S32, RM_I (R X86.Regs.eax, 0)))).X86.Encode.imm32_off with
  | Some o -> o
  | None -> assert false

let slot_smc rng ~n_blocks =
  let target = Srng.int rng n_blocks in
  let b = reg rng in
  let store =
    if Srng.bool rng then [ mov_mi (mbd b patch_imm_off) (imm32 rng) ]
    else
      let v = ref (reg rng) in
      while !v = b do v := reg rng done;
      [ mov_mr (mbd b patch_imm_off) !v ]
  in
  mov_rl b (Fmt.str "p_%d" target) :: store

let slot_pf_probe rng =
  let b = reg rng in
  let addr = unmapped_base + Srng.int rng 0x10000 in
  if Srng.bool rng then [ mov_ri b addr; mov_rm (reg rng) (mb b) ]
  else [ mov_ri b addr; mov_mr (mb b) (reg rng) ]

let slot_int rng =
  if Srng.bool rng then [ int_ 0x30 ] else [ int3 ]

(* [funcs_ret.(f)] is f's [ret n] immediate (0 for plain ret): call
   sites must push that many extra bytes first to keep ESP balanced. *)
let slot_call rng ~funcs_ret =
  let n_funcs = Array.length funcs_ret in
  if n_funcs = 0 then [ nop ]
  else
    let f = Srng.int rng n_funcs in
    let name = Fmt.str "f_%d" f in
    let extra =
      List.init (funcs_ret.(f) / 4) (fun _ -> push_i (imm32 rng))
    in
    extra
    @
    match Srng.int rng 3 with
    | 0 -> [ call name ]
    | 1 ->
        let r = reg rng in
        [ mov_rl r name; call_r r ]
    | _ ->
        let b = reg rng in
        [ mov_rl b "ftab"; I (CallInd (M (mbd b (4 * f)))) ]

(* ------------------------------------------------------------------ *)
(* Slot dispatch                                                       *)
(* ------------------------------------------------------------------ *)

(* [in_func] excludes slots that are unsafe inside a leaf function
   (nested calls) or pointless there. *)
let gen_slot rng ~n_blocks ~funcs_ret ~in_func ~fuzz_port =
  let pick =
    Srng.weighted rng
      [|
        (18, `Arith); (6, `Test); (14, `Mov); (4, `Movx); (4, `Lea);
        (3, `Xchg); (6, `Unary); (8, `Shift); (6, `Muldiv); (5, `Pushpop);
        (8, `Jcc); (4, `Setcc); (4, `Jmp); (3, `Strop); (5, `Io);
        (3, `Mmio); (4, `Smc); (2, `Pf); (2, `Int); (3, `Call); (1, `Nop);
      |]
  in
  let items =
    match pick with
    | `Arith -> slot_arith rng
    | `Test -> slot_test rng
    | `Mov -> slot_mov rng
    | `Movx -> slot_movx rng
    | `Lea -> slot_lea rng
    | `Xchg -> slot_xchg rng
    | `Unary -> slot_unary rng
    | `Shift -> slot_shift rng
    | `Muldiv -> slot_muldiv rng
    | `Pushpop -> slot_pushpop rng
    | `Jcc -> slot_jcc rng
    | `Setcc -> slot_setcc rng
    | `Jmp -> slot_jmp rng
    | `Strop -> slot_strop rng
    | `Io -> slot_io rng ~fuzz_port
    | `Mmio -> slot_mmio rng
    | `Smc -> if in_func then slot_arith rng else slot_smc rng ~n_blocks
    | `Pf -> slot_pf_probe rng
    | `Int -> slot_int rng
    | `Call -> if in_func then slot_arith rng else slot_call rng ~funcs_ret
    | `Nop -> [ nop ]
  in
  { items }

(* ------------------------------------------------------------------ *)
(* Program generation                                                  *)
(* ------------------------------------------------------------------ *)

let generate_prog rng ~fuzz_port ~has_irq ~nic =
  let n_blocks = Srng.range rng 3 7 in
  let n_funcs = Srng.range rng 0 3 in
  let ret_imms =
    Array.init n_funcs (fun _ -> if Srng.chance rng 1 3 then 4 else 0)
  in
  let funcs =
    List.init n_funcs (fun i ->
        let n = Srng.range rng 1 4 in
        {
          ret_imm = ret_imms.(i);
          fslots =
            List.init n (fun _ ->
                gen_slot rng ~n_blocks ~funcs_ret:ret_imms ~in_func:true
                  ~fuzz_port);
        })
  in
  let blocks =
    List.init n_blocks (fun _ ->
        let loop =
          if Srng.chance rng 1 2 then Some (Srng.range rng 4 40) else None
        in
        let n = Srng.range rng 2 9 in
        {
          loop;
          slots =
            List.init n (fun _ ->
                gen_slot rng ~n_blocks ~funcs_ret:ret_imms ~in_func:false
                  ~fuzz_port);
        })
  in
  { blocks; funcs; has_irq; nic }

(* ------------------------------------------------------------------ *)
(* Rendering: prog -> Asm items                                        *)
(* ------------------------------------------------------------------ *)

(* The IDT covers vectors 0..0x3f.  Architectural faults (#DE #UD #GP
   #PF and anything unexpected) go to the abort-style fault handler;
   INT3 (trap), INT 0x30 (trap) and the PIC vectors 0x20.. get
   transparent counting handlers. *)
let idt_entries ~has_irq:_ =
  let nic_vector = 0x20 + Machine.Platform.nic_irq_line in
  List.init 0x40 (fun v ->
      if v = 3 then "h_bp"
      else if v = 0x30 then "h_int"
      else if v >= 0x20 && v < 0x20 + irq_lines then Fmt.str "h_irq_%d" (v - 0x20)
      else if v = nic_vector then "h_nic"
      else "h_fault")

(** Render a program to an assemble-ready item list.  [entry] is
    [code_base]. *)
let render (p : prog) : item list =
  fresh_label := 0;
  let n_blocks = List.length p.blocks in
  let block_label i = Fmt.str "b_%d" i in
  let next_label i =
    if i + 1 >= n_blocks then "epilogue" else block_label (i + 1)
  in
  let prologue =
    [ jmp "start" ]
    @ [ label "idtptr"; dd_l [ "idt" ] ]
    @ [ label "idt"; dd_l (idt_entries ~has_irq:p.has_irq) ]
    @ [ label "ftab";
        dd_l (List.mapi (fun i _ -> Fmt.str "f_%d" i) p.funcs) ]
    @ [ label "start"; mov_rl eax "idtptr"; lidt (mb eax) ]
    (* static RX ring + device enable, before the random blocks run:
       no random slot can reach the NIC window, so ring geometry is
       fixed for the whole run and packet delivery (gated on an armed
       descriptor) is configuration-independent *)
    @ (match p.nic with
      | None -> []
      | Some mit ->
          List.concat
            (List.init nic_slots (fun i ->
                 [
                   mov_mi (m (nic_ring + (8 * i))) (nic_bufs + (nic_buf_cap * i));
                   mov_mi (m (nic_ring + (8 * i) + 4)) nic_buf_cap;
                 ]))
          @ [
              mov_ri ebx Machine.Platform.nic_base;
              mov_mi (mbd ebx Machine.Nic.r_rx_base) nic_ring;
              mov_mi (mbd ebx Machine.Nic.r_rx_count) nic_slots;
              mov_mi (mbd ebx Machine.Nic.r_mitigation) mit;
              mov_mi (mbd ebx Machine.Nic.r_ctrl) 1;
            ])
    (* randomish but fixed register init; EBP reserved, ESP from boot *)
    @ [
        mov_ri eax 0x01234567;
        mov_ri ecx 0x2;
        mov_ri edx 0x40;
        mov_ri ebx 0x7fffffff;
        mov_ri esi scratch_lo;
        mov_ri edi (scratch_lo + 0x800);
        mov_ri ebp 0;
      ]
    @ (if p.has_irq then [ sti ] else [])
    @ [ jmp "b_0" ]
  in
  let handlers =
    [
      label "h_fault";
      mov_ri esp stack_top;
      inc_m (m fault_cell);
    ]
    @ (if p.has_irq then [ sti ] else [])
    @ [ jmp_m (m resume_cell) ]
    @ [ label "h_int"; inc_m (m int_cell); iret ]
    @ [ label "h_bp"; inc_m (m bp_cell); iret ]
    @ [ label "h_nic"; inc_m (m nic_cell); iret ]
    @ List.concat
        (List.init irq_lines (fun k ->
             [ label (Fmt.str "h_irq_%d" k); inc_m (m (irq_cell k)); iret ]))
  in
  let funcs =
    List.concat
      (List.mapi
         (fun i f ->
           [ label (Fmt.str "f_%d" i) ]
           @ List.concat_map (fun s -> s.items) f.fslots
           @ [ (if f.ret_imm > 0 then retn f.ret_imm else ret) ])
         p.funcs)
  in
  let blocks =
    List.concat
      (List.mapi
         (fun i b ->
           let loop_head = Fmt.str "bl_%d" i in
           [ label (block_label i) ]
           (* point the fault-resume cell at the next block *)
           @ [ mov_rl edx (next_label i); mov_mr (m resume_cell) edx ]
           (* the patch point SMC slots aim at *)
           @ [ label (Fmt.str "p_%d" i); mov_ri eax 0x11110000 ]
           @ (match b.loop with
             | Some n -> [ mov_ri ebp n; label loop_head ]
             | None -> [])
           @ List.concat_map (fun s -> s.items) b.slots
           @ (match b.loop with
             | Some _ -> [ dec_r ebp; jne loop_head ]
             | None -> []))
         p.blocks)
  in
  (* The epilogue must not drop a latched-but-undelivered IRQ line.  An
     async event raises its line at the first *boundary* where the
     retired count has passed [at], and translator boundaries lag
     interpreter boundaries (the §3.3 slack) — chained translations can
     carry execution from before [at] to past a [cli] without touching
     the dispatcher.  A [cli; hlt] ending therefore loses exactly the
     raises landing in that lag window, making the per-line delivery
     count depend on translation shape — the one thing the
     counting-handler design cannot absorb (found by chaos-mode
     fuzzing, which scrambles translation shapes).  With interrupts in
     play the program instead parks in an interruptible halt loop:
     every raised line eventually wakes it and gets counted, in every
     configuration, and the run ends once nothing more can arrive. *)
  let epilogue =
    [ label "epilogue" ]
    @ (if p.has_irq then [ hlt; jmp "epilogue" ] else [ cli; hlt ])
  in
  prologue @ handlers @ funcs @ blocks @ epilogue

let assemble p = X86.Asm.assemble ~base:code_base (render p)

(* ------------------------------------------------------------------ *)
(* Event generation                                                    *)
(* ------------------------------------------------------------------ *)

(* Sync (DMA / protection-flip) events fire when the guest executes an
   OUT to the harness port — an interpreter-only instruction, hence an
   exact architectural point in every oracle configuration.  Async IRQ
   events key on the retired-instruction count, which the counting-only
   handlers make sound (see module doc). *)
let generate_events rng (listing : X86.Asm.listing) ~has_irq ~has_pkt =
  let n = Srng.range rng 0 6 in
  let patch_cells =
    List.filter_map (fun (name, addr) ->
        if String.length name > 2 && String.sub name 0 2 = "p_" then
          Some (addr + patch_imm_off)
        else None)
      listing.X86.Asm.labels
  in
  let kinds = 2 + (if has_irq then 1 else 0) + if has_pkt then 1 else 0 in
  List.init n (fun _ ->
      match Srng.int rng kinds with
      | 3 ->
          (* NIC frame: fits any armed descriptor ([nic_buf_cap]) *)
          let len = 1 + Srng.int rng 32 in
          let data = String.init len (fun _ -> Char.chr (Srng.int rng 256)) in
          Inject.Pkt { at = 1 + Srng.int rng 3000; data }
      | 0 ->
          let len = 1 + Srng.int rng 8 in
          let data = String.init len (fun _ -> Char.chr (Srng.int rng 256)) in
          let addr =
            if Srng.chance rng 1 3 && patch_cells <> [] then
              Srng.choose_list rng patch_cells
            else scratch_lo + Srng.int rng (scratch_hi - scratch_lo - 8)
          in
          Inject.Dma { addr; data }
      | 1 ->
          let page =
            if Srng.chance rng 1 4 then code_base
            else scratch_lo + (Srng.int rng 7 * 0x1000)
          in
          Inject.Prot { virt = page; writable = Srng.bool rng }
      | _ ->
          Inject.Irq
            { at = 1 + Srng.int rng 3000; line = Srng.int rng irq_lines })

(* ------------------------------------------------------------------ *)
(* Case generation                                                     *)
(* ------------------------------------------------------------------ *)

let generate rng ~seed ~index =
  let has_irq = Srng.chance rng 2 3 in
  (* the NIC front needs the STI prologue: frames deliver through the
     interrupt path *)
  let nic =
    if has_irq && Srng.chance rng 1 2 then Some (1 + Srng.int rng 3) else None
  in
  let prog =
    generate_prog rng ~fuzz_port:Machine.Platform.fuzz_port ~has_irq ~nic
  in
  let listing = assemble prog in
  let events = generate_events rng listing ~has_irq ~has_pkt:(nic <> None) in
  (* no IRQ events without the STI prologue, no frames without a ring *)
  let events =
    List.filter
      (function
        | Inject.Irq _ -> has_irq
        | Inject.Pkt _ -> nic <> None
        | _ -> true)
      events
  in
  { seed; index; prog; events }

(* ------------------------------------------------------------------ *)
(* Coverage keys of a case                                             *)
(* ------------------------------------------------------------------ *)

(* Count what the case actually contains: every instruction of the
   rendered listing (scaffolding included — IRET, LIDT, STI are real
   coverage) plus the injected event kinds. *)
let note_coverage cov (case : case) =
  let items = render case.prog in
  List.iter
    (fun it ->
      let insn =
        match it with
        | I i -> Some i
        | IJcc (cc, _) -> Some (Jcc (cc, 0))
        | IJmp _ -> Some (Jmp 0)
        | ICall _ -> Some (Call 0)
        | IMovLbl (r, _) -> Some (Mov (S32, RM_I (R r, 0)))
        | IPushLbl _ -> Some (Push (PushI 0))
        | Label _ | Raw _ | Dd _ | DdLbl _ | Space _ | Align _ -> None
      in
      match insn with
      | Some i -> Coverage.note cov (Coverage.key i)
      | None -> ())
    items;
  List.iter
    (fun ev ->
      Coverage.note cov
        (match ev with
        | Inject.Irq _ -> "ev.irq"
        | Inject.Dma _ -> "ev.dma"
        | Inject.Prot _ -> "ev.prot"
        | Inject.Pkt _ -> "ev.pkt"
        | Inject.Dma_at _ -> "ev.dma_at"))
    case.events
