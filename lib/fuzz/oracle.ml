(** Multi-oracle differential executor.

    Each case runs under four configurations:

    - {b A} interpreter-only (reference semantics),
    - {b B} full translator with the static verifier armed,
    - {b C} translator with host fast paths (software TLB, decode
      cache, RAM fast path) disabled, verifier armed,
    - {b D} translator booted from an ahead-of-time translation image
      built for the case, round-tripped through the stable codec and
      installed copy-on-validate ({!Cms_persist.Aot}) — AOT-warm vs
      AOT-off must agree architecturally (strict digests legitimately
      differ: translation counts do).

    Correctness claims checked:

    - A, B and C agree on everything *architectural*: GPRs, EIP, the
      architectural EFLAGS, a digest of physical memory, MMIO/port
      access counts, UART output and the frame-buffer checksum.  The
      stack pages are zeroed before digesting: interrupt delivery
      boundaries legitimately differ between interpreter and translator
      (§3.3 — the translator only stops at consistent exits), leaving
      different dead bytes below ESP.  CMS-internal event counters
      (SMC, protection faults) are excluded too — the interpreter never
      protects pages, so those ladders only run under B/C.
    - B and C agree on the *strict* PR 2 digest as well: full stats
      (host-cache counters normalized), molecule count, retired count,
      SMC/protection/DMA-SMC events and the whole VLIW perf record —
      fast paths must be observationally invisible.
    - The translation verifier reports zero diagnostics in B and C.
    - All three stop the same way.  Hitting the instruction limit in
      every configuration is a {!Hang} (a generator bug, counted but
      not bit-compared — states at an arbitrary cut-off differ
      legitimately); hitting it in only some is a divergence.

    Digests come from {!Cms_persist.Digests} (stable byte format, no
    [Marshal]).  The module also hosts the fuzzer side of
    record-replay: {!record} runs a case while journaling every
    nondeterministic input (guest events verbatim; chaos injections via
    {!Cms_robust.Chaos.tap} as opportunity indices), {!replay} re-runs
    a journal with no RNG at all, and {!check_record_replay} asserts
    the two runs are bit-identical. *)

module Digests = Cms_persist.Digests
module Journal = Cms_persist.Journal
module Snapshot = Cms_persist.Snapshot

type rendered = {
  listing : X86.Asm.listing;
  entry : int;
  events : Inject.event list;
  max_insns : int;
  chaos : int option;
      (** chaos-mode seed: run the translator oracle under a seeded
          host-side injection schedule ({!Cms_robust.Chaos}) with
          scrambled capacities, and require architectural equality
          with the clean interpreter anyway *)
}

let default_max_insns = 200_000

let render ?(max_insns = default_max_insns) ?chaos (case : Gen.case) =
  {
    listing = Gen.assemble case.Gen.prog;
    entry = Gen.code_base;
    events = case.Gen.events;
    max_insns;
    chaos;
  }

(* 2 MiB backs exactly the identity-mapped window the generator uses;
   keeping RAM small keeps the per-run memory digests cheap. *)
let ram_size = 2 * 1024 * 1024

let cfg_interp =
  { Cms.Config.default with Cms.Config.translate_threshold = max_int }

let cfg_translate =
  (* closure compilation and chained transfers forced on (they are the
     defaults, but the oracle must keep exercising them even if the
     defaults ever change): every fuzz case differentially checks the
     fastest execution tier against the interpreter *)
  {
    Cms.Config.default with
    Cms.Config.verify_translations = true;
    closure_exec = true;
    chain_exits = true;
    background_translation = true;
  }

let cfg_nofast =
  { cfg_translate with Cms.Config.host_fast_paths = false }

(* ------------------------------------------------------------------ *)
(* Digests                                                             *)
(* ------------------------------------------------------------------ *)

(* Interrupt delivery boundaries differ legitimately between
   configurations, leaving different dead bytes below ESP: mask the
   stack pages out of every memory digest. *)
let stack_mask = [ (Gen.stack_lo, Gen.stack_top) ]

type arch = Digests.arch

let arch_digest (c : Cms.t) = Digests.arch ~mask:stack_mask c
let arch_diff = Digests.arch_diff

(* ------------------------------------------------------------------ *)
(* Running one configuration                                           *)
(* ------------------------------------------------------------------ *)

type stop_kind = Halted | Limit | Crash of string

type outcome = {
  stop : stop_kind;
  arch : arch;
  strict : Digest.t;
  ndiags : int;
      (** rejecting verifier diagnostics collected during the run;
          advisory rules (recoverable runtime events like
          [sbuf-overflow], which fire routinely under chaos-scrambled
          capacities) are excluded, matching the rejecting verifier's
          own contract *)
}

(* Run one configuration of [r] with [setup] wiring the event sources
   (recorded-journal replay installs different hooks than first-run
   injection); returns the outcome *and* the machine for capture. *)
let execute ~cfg ~setup (r : rendered) : outcome * Cms.t =
  let result, diags =
    Cms_analysis.Pipeline.with_collect (fun () ->
        let c = Cms.create ~cfg ~ram_size () in
        Cms.load c r.listing;
        Cms.boot c ~entry:r.entry;
        (* standing invariant on every oracle run: after any rollback,
           no speculative state — shadow registers, gated stores,
           armed alias ranges, uninstalled background translations —
           may be architecturally observable.  A violation escapes as
           an exception and lands in [Crash], i.e. a divergence. *)
        c.Cms.Engine.on_rollback <-
          Some
            (fun () ->
              if Cms.Engine.speculation_visible c then
                failwith "speculative state visible after rollback");
        setup c;
        match Cms.run ~max_insns:r.max_insns c with
        | Cms.Engine.Halted -> (Halted, c)
        | Cms.Engine.Insn_limit -> (Limit, c)
        | exception Cms.Cpu.Panic msg -> (Crash msg, c)
        | exception ((Out_of_memory | Stack_overflow) as e) -> raise e
        | exception e ->
            (* "zero unhandled exceptions" is part of the chaos-mode
               contract: anything escaping the engine is a finding *)
            (Crash (Printexc.to_string e), c))
  in
  let stop, c = result in
  let rejecting =
    List.filter (fun d -> not (Cms_analysis.Diag.is_advisory d)) diags
  in
  ( {
      stop;
      arch = arch_digest c;
      strict = Digests.strict ~mask:stack_mask c;
      ndiags = List.length rejecting;
    },
    c )

let run_config ?chaos cfg (r : rendered) : outcome =
  let setup c =
    Inject.install c r.events;
    match chaos with Some ch -> Cms_robust.Chaos.install ch c | None -> ()
  in
  fst (execute ~cfg ~setup r)

(* ------------------------------------------------------------------ *)
(* AOT oracle                                                          *)
(* ------------------------------------------------------------------ *)

(* Build an ahead-of-time image from a pristine (booted, never run)
   machine for this case.  Deterministic: the same rendered case always
   yields byte-identical image contents. *)
let aot_image (r : rendered) =
  let c = Cms.create ~cfg:cfg_translate ~ram_size () in
  Cms.load c r.listing;
  Cms.boot c ~entry:r.entry;
  (Cms_analysis.Aotgen.build ~label:"fuzz case" c ~entry:r.entry)
    .Cms_analysis.Aotgen.image

(** The serialized AOT image for a case, for forensics bundles; [None]
    when the build itself crashes (which the oracle reports its own
    way). *)
let aot_image_bytes (r : rendered) =
  match aot_image r with
  | img -> Some (Cms_persist.Aot.to_string img)
  | exception ((Out_of_memory | Stack_overflow) as e) -> raise e
  | exception _ -> None

(* Oracle D: build the image, round-trip it through the stable codec
   (the persistence path is under test, not just the translations),
   install it on a fresh machine and run the translator from the warm
   cache. *)
let run_config_aot (r : rendered) : outcome =
  let img =
    Cms_persist.Aot.of_string (Cms_persist.Aot.to_string (aot_image r))
  in
  let setup c =
    ignore (Cms_persist.Aot.install c img : Cms_persist.Aot.install_report);
    Inject.install c r.events
  in
  fst (execute ~cfg:cfg_translate ~setup r)

(* ------------------------------------------------------------------ *)
(* Verdict                                                             *)
(* ------------------------------------------------------------------ *)

type verdict =
  | Pass
  | Hang  (** instruction limit reached in every configuration *)
  | Divergence of string

let stop_name = function
  | Halted -> "halted"
  | Limit -> "insn-limit"
  | Crash m -> "crash:" ^ m

(* The clean four-oracle differential (no injection). *)
let check_clean (r : rendered) : verdict =
  let a = run_config cfg_interp r in
  let b = run_config cfg_translate r in
  let c = run_config cfg_nofast r in
  match run_config_aot r with
  | exception ((Out_of_memory | Stack_overflow) as e) -> raise e
  | exception e ->
      (* the build/serialize/install harness itself must never throw —
         a per-region failure demotes, a stale image raises only when
         memory actually changed, and neither can happen here *)
      Divergence ("aot harness crash: " ^ Printexc.to_string e)
  | d ->
      let crash =
        List.exists (fun o -> match o.stop with Crash _ -> true | _ -> false)
      in
      if crash [ a; b; c; d ] then
        Divergence
          (Fmt.str "crash (interp=%s translator=%s nofast=%s aot=%s)"
             (stop_name a.stop) (stop_name b.stop) (stop_name c.stop)
             (stop_name d.stop))
      else if
        a.stop = Limit && b.stop = Limit && c.stop = Limit && d.stop = Limit
      then Hang
      else if a.stop <> b.stop || b.stop <> c.stop then
        Divergence
          (Fmt.str "stop mismatch (interp=%s translator=%s nofast=%s)"
             (stop_name a.stop) (stop_name b.stop) (stop_name c.stop))
      else if a.stop <> d.stop then
        Divergence
          (Fmt.str "aot stop mismatch (interp=%s aot=%s)" (stop_name a.stop)
             (stop_name d.stop))
      else if b.ndiags > 0 || c.ndiags > 0 then
        Divergence
          (Fmt.str "verifier diagnostics (translator=%d nofast=%d)" b.ndiags
             c.ndiags)
      else if d.ndiags > 0 then
        Divergence (Fmt.str "aot verifier diagnostics (%d)" d.ndiags)
      else if a.arch <> b.arch then
        Divergence ("interpreter vs translator: " ^ arch_diff a.arch b.arch)
      else if a.arch <> c.arch then
        Divergence ("interpreter vs fast-paths-off: " ^ arch_diff a.arch c.arch)
      else if a.arch <> d.arch then
        (* AOT-warm vs AOT-off: strict digests differ by design
           (translation counts do), the architectural state must not *)
        Divergence ("aot: interpreter vs aot-warm: " ^ arch_diff a.arch d.arch)
      else if b.strict <> c.strict then
        Divergence "strict digest: fast paths on vs off"
      else Pass

(* The chaos run's configuration and injector, derived from the seed.
   The split order is load-bearing: it fixes the byte-for-byte RNG
   streams, so a seed names one exact adversity schedule. *)
let chaos_cfg_of_seed seed =
  let rng = Srng.create seed in
  let cfg = Cms_robust.Chaos.scramble_cfg (Srng.split rng) cfg_translate in
  let ch = Cms_robust.Chaos.create (Srng.split rng) in
  (cfg, ch)

(* The chaos differential: clean interpreter vs the translator under a
   seeded injection schedule and scrambled capacities.  The strict
   digest is meaningless here (injection perturbs every counter), but
   the *architectural* state must still match bit-for-bit — the paper's
   recovery thesis under host-side attack. *)
let check_chaos (r : rendered) ~seed : verdict =
  let a = run_config cfg_interp r in
  let cfg, ch = chaos_cfg_of_seed seed in
  let b = run_config ~chaos:ch cfg r in
  let crashed o = match o.stop with Crash _ -> true | _ -> false in
  if crashed a || crashed b then
    Divergence
      (Fmt.str "crash under chaos (interp=%s chaos=%s)" (stop_name a.stop)
         (stop_name b.stop))
  else if a.stop = Limit && b.stop = Limit then Hang
  else if a.stop <> b.stop then
    Divergence
      (Fmt.str "stop mismatch under chaos (interp=%s chaos=%s)"
         (stop_name a.stop) (stop_name b.stop))
  else if b.ndiags > 0 then
    Divergence (Fmt.str "verifier diagnostics under chaos (%d)" b.ndiags)
  else if a.arch <> b.arch then
    Divergence ("interpreter vs chaos translator: " ^ arch_diff a.arch b.arch)
  else Pass

(** Run a rendered case through its oracle: the clean three-way
    differential, or the chaos differential when the case carries a
    chaos seed. *)
let check (r : rendered) : verdict =
  match r.chaos with
  | None -> check_clean r
  | Some seed -> check_chaos r ~seed

let diverges (r : rendered) =
  match check r with Divergence _ -> true | Pass | Hang -> false

(* ------------------------------------------------------------------ *)
(* Record / replay                                                     *)
(* ------------------------------------------------------------------ *)

type recording = {
  journal : Journal.t;
  outcome : outcome;
  final_image : string option;
      (** final-state snapshot (when the run ended at a consistent
          boundary — a [Crash] can leave the machine mid-molecule) *)
  checkpoint : string option;  (** last periodic checkpoint image *)
}

(** Run [r]'s translator configuration (chaos-scrambled when the case
    carries a chaos seed) while recording every nondeterministic input.
    Guest events are journaled verbatim; chaos injections are observed
    through {!Cms_robust.Chaos.tap} and journaled as opportunity
    indices.  [checkpoint_every] arms periodic snapshotting so a later
    failure is resumable from mid-run. *)
let record ?checkpoint_every ?(label = "case") (r : rendered) : recording =
  let cfg, chaos =
    match r.chaos with
    | None -> (cfg_translate, None)
    | Some seed ->
        let cfg, ch = chaos_cfg_of_seed seed in
        (cfg, Some ch)
  in
  let host = ref [] in
  let tap =
    {
      Cms_robust.Chaos.tap_kill =
        (fun nth -> host := Journal.Kill { nth } :: !host);
      tap_fault =
        (fun nth alias -> host := Journal.Pre_fault { nth; alias } :: !host);
      tap_spoof = (fun nth -> host := Journal.Spoof { nth } :: !host);
      tap_flush = (fun nth -> host := Journal.Flush { nth } :: !host);
      tap_evict = (fun nth -> host := Journal.Evict { nth } :: !host);
      tap_unlink = (fun nth k -> host := Journal.Unlink { nth; k } :: !host);
      (* background dooms are observation-only — replay is virtual, so
         the journal never re-injects them *)
      tap_bg = (fun _nth _doom -> ());
    }
  in
  let ckpt = ref None in
  let setup c =
    (* journal every canonical background-consume instant; replay
       verifies it reproduces the identical (entry, at) stream *)
    c.Cms.Engine.on_bg_consume <-
      Some
        (fun ~entry ~at -> host := Journal.Bg_arrive { entry; at } :: !host);
    let injector = Journal.install_guest c r.events in
    (match checkpoint_every with
    | Some every ->
        ckpt := Some (Snapshot.arm ~label ~injector c ~every)
    | None -> ());
    match chaos with
    | Some ch -> Cms_robust.Chaos.install ~tap ch c
    | None -> ()
  in
  let outcome, c = execute ~cfg ~setup r in
  let final_image =
    if Snapshot.consistent c then Some (Snapshot.capture ~label c) else None
  in
  let journal =
    {
      Journal.label;
      cfg;
      guest = r.events;
      host = List.rev !host;
      arch_hex = Some (Digests.arch_hex outcome.arch);
      strict_hex = Some (Digests.strict_hex outcome.strict);
    }
  in
  {
    journal;
    outcome;
    final_image;
    checkpoint = (match !ckpt with Some ck -> ck.Snapshot.image | None -> None);
  }

(** Re-run a journal deterministically: guest events through the same
    gated installer, host events by opportunity-counter matching.  No
    RNG runs; the journal alone drives every injection. *)
let replay (r : rendered) (j : Journal.t) : outcome =
  let setup c =
    ignore (Journal.install_guest c j.Journal.guest);
    if j.Journal.host <> [] then Journal.install_host c j.Journal.host
  in
  fst (execute ~cfg:j.Journal.cfg ~setup { r with chaos = None })

(** The record-replay differential: record [r], replay the journal, and
    require bit-identical outcomes (stop kind, architectural digest,
    strict digest, verifier diagnostics). *)
let check_record_replay (r : rendered) : verdict =
  let rec_ = record r in
  let rep = replay r rec_.journal in
  let o = rec_.outcome in
  if o.stop <> rep.stop then
    Divergence
      (Fmt.str "record/replay stop mismatch (%s vs %s)" (stop_name o.stop)
         (stop_name rep.stop))
  else if o.arch <> rep.arch then
    Divergence ("record/replay arch: " ^ arch_diff o.arch rep.arch)
  else if o.strict <> rep.strict then Divergence "record/replay strict digest"
  else if o.ndiags <> rep.ndiags then
    Divergence
      (Fmt.str "record/replay diagnostics (%d vs %d)" o.ndiags rep.ndiags)
  else Pass
