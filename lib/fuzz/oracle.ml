(** Multi-oracle differential executor.

    Each case runs under three configurations:

    - {b A} interpreter-only (reference semantics),
    - {b B} full translator with the static verifier armed,
    - {b C} translator with host fast paths (software TLB, decode
      cache, RAM fast path) disabled, verifier armed.

    Correctness claims checked:

    - A, B and C agree on everything *architectural*: GPRs, EIP, the
      architectural EFLAGS, a digest of physical memory, MMIO/port
      access counts, UART output and the frame-buffer checksum.  The
      stack pages are zeroed before digesting: interrupt delivery
      boundaries legitimately differ between interpreter and translator
      (§3.3 — the translator only stops at consistent exits), leaving
      different dead bytes below ESP.  CMS-internal event counters
      (SMC, protection faults) are excluded too — the interpreter never
      protects pages, so those ladders only run under B/C.
    - B and C agree on the *strict* PR 2 digest as well: full stats
      (host-cache counters normalized), molecule count, retired count,
      SMC/protection/DMA-SMC events and the whole VLIW perf record —
      fast paths must be observationally invisible.
    - The translation verifier reports zero diagnostics in B and C.
    - All three stop the same way.  Hitting the instruction limit in
      every configuration is a {!Hang} (a generator bug, counted but
      not bit-compared — states at an arbitrary cut-off differ
      legitimately); hitting it in only some is a divergence. *)

type rendered = {
  listing : X86.Asm.listing;
  entry : int;
  events : Inject.event list;
  max_insns : int;
  chaos : int option;
      (** chaos-mode seed: run the translator oracle under a seeded
          host-side injection schedule ({!Cms_robust.Chaos}) with
          scrambled capacities, and require architectural equality
          with the clean interpreter anyway *)
}

let default_max_insns = 200_000

let render ?(max_insns = default_max_insns) ?chaos (case : Gen.case) =
  {
    listing = Gen.assemble case.Gen.prog;
    entry = Gen.code_base;
    events = case.Gen.events;
    max_insns;
    chaos;
  }

(* 2 MiB backs exactly the identity-mapped window the generator uses;
   keeping RAM small keeps the per-run memory digests cheap. *)
let ram_size = 2 * 1024 * 1024

let cfg_interp =
  { Cms.Config.default with Cms.Config.translate_threshold = max_int }

let cfg_translate =
  { Cms.Config.default with Cms.Config.verify_translations = true }

let cfg_nofast =
  { cfg_translate with Cms.Config.host_fast_paths = false }

(* ------------------------------------------------------------------ *)
(* Digests                                                             *)
(* ------------------------------------------------------------------ *)

let mem_digest_sans_stack (c : Cms.t) =
  let m = Cms.mem c in
  let data = Bytes.copy m.Machine.Mem.phys.Machine.Phys.data in
  Bytes.fill data Gen.stack_lo (Gen.stack_top - Gen.stack_lo) '\x00';
  Digest.bytes data

(** Cross-configuration architectural state (see module doc). *)
type arch = {
  gprs : int list;
  eip : int;
  eflags : int;
  mem : Digest.t;
  mmio_reads : int;
  mmio_writes : int;
  port_ops : int;
  uart : string;
  fb : int;
}

let arch_digest (c : Cms.t) =
  let m = Cms.mem c in
  let bus = m.Machine.Mem.bus in
  {
    gprs = List.map (Cms.gpr c) X86.Regs.all;
    eip = Cms.eip c;
    eflags = Cms.eflags c;
    mem = mem_digest_sans_stack c;
    mmio_reads = bus.Machine.Bus.mmio_reads;
    mmio_writes = bus.Machine.Bus.mmio_writes;
    port_ops = bus.Machine.Bus.port_ops;
    uart = Cms.uart_output c;
    fb = Machine.Framebuf.checksum (Cms.platform c).Machine.Platform.fb;
  }

(** Which fields of two architectural states differ (for divergence
    reports). *)
let arch_diff x y =
  let d = ref [] in
  let add fmt = Format.kasprintf (fun s -> d := s :: !d) fmt in
  List.iteri
    (fun i (a, b) ->
      if a <> b then add "%s=%#x/%#x" X86.Regs.name32.(i) a b)
    (List.combine x.gprs y.gprs);
  if x.eip <> y.eip then add "eip=%#x/%#x" x.eip y.eip;
  if x.eflags <> y.eflags then add "eflags=%#x/%#x" x.eflags y.eflags;
  if x.mem <> y.mem then add "mem";
  if x.mmio_reads <> y.mmio_reads then
    add "mmio_reads=%d/%d" x.mmio_reads y.mmio_reads;
  if x.mmio_writes <> y.mmio_writes then
    add "mmio_writes=%d/%d" x.mmio_writes y.mmio_writes;
  if x.port_ops <> y.port_ops then add "port_ops=%d/%d" x.port_ops y.port_ops;
  if x.uart <> y.uart then add "uart";
  if x.fb <> y.fb then add "fb=%d/%d" x.fb y.fb;
  String.concat " " (List.rev !d)

(** B-vs-C digest: everything in the PR 2 fast-path differential —
    guest state plus cost model plus event counters plus perf. *)
let strict_digest (c : Cms.t) =
  let s = Cms.stats c in
  let s_norm =
    {
      s with
      Cms.Stats.tlb_hits = 0;
      tlb_misses = 0;
      dcache_hits = 0;
      dcache_misses = 0;
      dcache_invalidations = 0;
      ram_fast_reads = 0;
      ram_fast_writes = 0;
    }
  in
  let m = Cms.mem c in
  ( arch_digest c,
    (s_norm, Cms.total_molecules c, Cms.retired c),
    ( m.Machine.Mem.smc_events,
      m.Machine.Mem.page_prot_faults,
      m.Machine.Mem.dma_smc_events ),
    Cms.perf c )

(* ------------------------------------------------------------------ *)
(* Running one configuration                                           *)
(* ------------------------------------------------------------------ *)

type stop_kind = Halted | Limit | Crash of string

type outcome = {
  stop : stop_kind;
  arch : arch;
  strict : Digest.t;
  ndiags : int;
      (** rejecting verifier diagnostics collected during the run;
          advisory rules (recoverable runtime events like
          [sbuf-overflow], which fire routinely under chaos-scrambled
          capacities) are excluded, matching the rejecting verifier's
          own contract *)
}

let run_config ?chaos cfg (r : rendered) : outcome =
  let result, diags =
    Cms_analysis.Pipeline.with_collect (fun () ->
        let c = Cms.create ~cfg ~ram_size () in
        Cms.load c r.listing;
        Cms.boot c ~entry:r.entry;
        Inject.install c r.events;
        (match chaos with
        | Some ch -> Cms_robust.Chaos.install ch c
        | None -> ());
        match Cms.run ~max_insns:r.max_insns c with
        | Cms.Engine.Halted -> (Halted, c)
        | Cms.Engine.Insn_limit -> (Limit, c)
        | exception Cms.Cpu.Panic msg -> (Crash msg, c)
        | exception ((Out_of_memory | Stack_overflow) as e) -> raise e
        | exception e ->
            (* "zero unhandled exceptions" is part of the chaos-mode
               contract: anything escaping the engine is a finding *)
            (Crash (Printexc.to_string e), c))
  in
  let stop, c = result in
  let rejecting =
    List.filter (fun d -> not (Cms_analysis.Diag.is_advisory d)) diags
  in
  {
    stop;
    arch = arch_digest c;
    strict = Digest.string (Marshal.to_string (strict_digest c) []);
    ndiags = List.length rejecting;
  }

(* ------------------------------------------------------------------ *)
(* Verdict                                                             *)
(* ------------------------------------------------------------------ *)

type verdict =
  | Pass
  | Hang  (** instruction limit reached in every configuration *)
  | Divergence of string

let stop_name = function
  | Halted -> "halted"
  | Limit -> "insn-limit"
  | Crash m -> "crash:" ^ m

(* The clean three-oracle differential (no injection). *)
let check_clean (r : rendered) : verdict =
  let a = run_config cfg_interp r in
  let b = run_config cfg_translate r in
  let c = run_config cfg_nofast r in
  let crash = List.exists (fun o -> match o.stop with Crash _ -> true | _ -> false) in
  if crash [ a; b; c ] then
    Divergence
      (Fmt.str "crash (interp=%s translator=%s nofast=%s)" (stop_name a.stop)
         (stop_name b.stop) (stop_name c.stop))
  else if a.stop = Limit && b.stop = Limit && c.stop = Limit then Hang
  else if a.stop <> b.stop || b.stop <> c.stop then
    Divergence
      (Fmt.str "stop mismatch (interp=%s translator=%s nofast=%s)"
         (stop_name a.stop) (stop_name b.stop) (stop_name c.stop))
  else if b.ndiags > 0 || c.ndiags > 0 then
    Divergence
      (Fmt.str "verifier diagnostics (translator=%d nofast=%d)" b.ndiags
         c.ndiags)
  else if a.arch <> b.arch then
    Divergence
      ("interpreter vs translator: " ^ arch_diff a.arch b.arch)
  else if a.arch <> c.arch then
    Divergence
      ("interpreter vs fast-paths-off: " ^ arch_diff a.arch c.arch)
  else if b.strict <> c.strict then
    Divergence "strict digest: fast paths on vs off"
  else Pass

(* The chaos differential: clean interpreter vs the translator under a
   seeded injection schedule and scrambled capacities.  The strict
   digest is meaningless here (injection perturbs every counter), but
   the *architectural* state must still match bit-for-bit — the paper's
   recovery thesis under host-side attack. *)
let check_chaos (r : rendered) ~seed : verdict =
  let a = run_config cfg_interp r in
  let rng = Srng.create seed in
  let cfg = Cms_robust.Chaos.scramble_cfg (Srng.split rng) cfg_translate in
  let ch = Cms_robust.Chaos.create (Srng.split rng) in
  let b = run_config ~chaos:ch cfg r in
  let crashed o = match o.stop with Crash _ -> true | _ -> false in
  if crashed a || crashed b then
    Divergence
      (Fmt.str "crash under chaos (interp=%s chaos=%s)" (stop_name a.stop)
         (stop_name b.stop))
  else if a.stop = Limit && b.stop = Limit then Hang
  else if a.stop <> b.stop then
    Divergence
      (Fmt.str "stop mismatch under chaos (interp=%s chaos=%s)"
         (stop_name a.stop) (stop_name b.stop))
  else if b.ndiags > 0 then
    Divergence (Fmt.str "verifier diagnostics under chaos (%d)" b.ndiags)
  else if a.arch <> b.arch then
    Divergence ("interpreter vs chaos translator: " ^ arch_diff a.arch b.arch)
  else Pass

(** Run a rendered case through its oracle: the clean three-way
    differential, or the chaos differential when the case carries a
    chaos seed. *)
let check (r : rendered) : verdict =
  match r.chaos with
  | None -> check_clean r
  | Some seed -> check_chaos r ~seed

let diverges (r : rendered) =
  match check r with Divergence _ -> true | Pass | Hang -> false
