(** Event injection for differential fuzzing.

    Two delivery mechanisms, chosen for cross-configuration soundness:

    - {b Asynchronous} IRQ events key on the retired-instruction count
      and are raised from the engine's [on_boundary] hook.  The retired
      clock ticks identically in interpreter and translator runs (one
      per committed x86 instruction, REP iterations excluded), but the
      *boundary* at which a given count is observed can differ — the
      translator only stops at translation exits.  That is exactly the
      slack the paper's §3.3 interrupt handling allows, and the
      generator's counting-only handlers make the final architectural
      state independent of it.
    - {b Synchronous} DMA and protection-flip events are consumed, in
      order, by guest [out]s to {!Machine.Platform.fuzz_port}.  Port
      I/O is interpreter-only (never inside a translation), so these
      fire at the same architectural instruction in every
      configuration, making their effects — including SMC invalidation
      storms — directly comparable. *)

type event =
  | Irq of { at : int; line : int }
      (** raise IRQ [line] once ≥ [at] instructions have retired *)
  | Dma of { addr : int; data : string }
      (** device write of [data] at physical [addr] *)
  | Prot of { virt : int; writable : bool }
      (** flip page-table writability of the page at [virt] *)

let pp_event ppf = function
  | Irq { at; line } -> Fmt.pf ppf "irq@%d line=%d" at line
  | Dma { addr; data } -> Fmt.pf ppf "dma@%#x len=%d" addr (String.length data)
  | Prot { virt; writable } -> Fmt.pf ppf "prot@%#x w=%b" virt writable

(** Wire [events] into a freshly created engine (before [run]).  IRQ
    events install the boundary hook; DMA/protection events queue on
    the fuzz port, fired by successive guest [out]s. *)
let install (c : Cms.t) (events : event list) =
  let plat = Cms.platform c in
  let mem = plat.Machine.Platform.mem in
  let irqs =
    List.filter_map
      (function Irq { at; line } -> Some (at, line) | _ -> None)
      events
    |> List.stable_sort (fun (a, _) (b, _) -> compare a b)
    |> Array.of_list
  in
  let sync = Queue.create () in
  List.iter
    (function (Dma _ | Prot _) as e -> Queue.add e sync | Irq _ -> ())
    events;
  if Array.length irqs > 0 then begin
    (* Gate each raise on the line's latch being clear: the PIC latches
       a line as a single bit, so raising the same line twice before
       the first delivery would collapse two events into one — and
       whether two nearby events straddle a delivery is exactly what
       differs between interpreter and translator boundaries.  Holding
       the later event back until the earlier one has been delivered
       makes the total delivery count per line a pure function of the
       event list in every configuration. *)
    let next = ref 0 in
    let irqc = plat.Machine.Platform.irq in
    c.Cms.Engine.on_boundary <-
      Some
        (fun retired ->
          let continue_ = ref true in
          while !continue_ && !next < Array.length irqs do
            let at, line = irqs.(!next) in
            if at <= retired && irqc.Machine.Irq.pending land (1 lsl line) = 0
            then begin
              Machine.Irq.raise_line irqc line;
              incr next
            end
            else continue_ := false
          done)
  end;
  let fire _v =
    match Queue.take_opt sync with
    | None -> ()
    | Some (Dma { addr; data }) ->
        Machine.Mem.dma_write mem addr (Bytes.of_string data)
    | Some (Prot { virt; writable }) ->
        Machine.Mmu.set_writable mem.Machine.Mem.mmu ~virt writable
    | Some (Irq _) -> assert false
  in
  Machine.Bus.add_port mem.Machine.Mem.bus Machine.Platform.fuzz_port
    { Machine.Bus.pread = (fun _ -> Queue.length sync); pwrite = (fun _ v -> fire v) }
