(** Event injection for differential fuzzing.

    The implementation lives in {!Cms_persist.Journal} — the fuzzer's
    injected events are exactly the journal's guest events, and sharing
    the installer is what makes record → replay faithful: a recorded
    event list replays through the same gated delivery algorithm that
    injected it.  This module keeps the fuzzer-facing names.

    Delivery mechanics (see {!Cms_persist.Journal.install_guest}):

    - {b Asynchronous} IRQ events key on the retired-instruction count
      and are raised from the engine's [on_boundary] hook.  The retired
      clock ticks identically in interpreter and translator runs, but
      the *boundary* at which a given count is observed can differ —
      exactly the slack the paper's §3.3 interrupt handling allows.
    - {b Synchronous} DMA and protection-flip events are consumed, in
      order, by guest [out]s to {!Machine.Platform.fuzz_port}: port I/O
      is interpreter-only, so these fire at the same architectural
      instruction in every configuration. *)

type event = Cms_persist.Journal.guest_event =
  | Irq of { at : int; line : int }
      (** raise IRQ [line] once ≥ [at] instructions have retired *)
  | Dma of { addr : int; data : string }
      (** device write of [data] at physical [addr] *)
  | Prot of { virt : int; writable : bool }
      (** flip page-table writability of the page at [virt] *)
  | Pkt of { at : int; data : string }
      (** deliver a frame to the NIC RX ring once ≥ [at] instructions
          have retired (gated on the NIC line latch and a free armed
          descriptor — see {!Cms_persist.Journal.install_guest}) *)
  | Dma_at of { at : int; addr : int; data : string }
      (** asynchronous DMA burst at the first boundary past [at] *)

let pp_event = Cms_persist.Journal.pp_guest_event

(** Wire [events] into a freshly created engine (before [run]). *)
let install (c : Cms.t) (events : event list) =
  ignore (Cms_persist.Journal.install_guest c events)
