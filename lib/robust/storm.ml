(** Interrupt-storm and device-fault campaigns.

    Where {!Chaos} attacks the engine from the *host* side (translator
    deaths, spoofed polls, cache storms), this layer attacks it from
    the *device* side: seeded packet storms against the NIC, IRQ floods
    on arbitrary lines at adversarial retired-clock instants, and
    asynchronous DMA bursts aimed at the guest's own code image — the
    §3.6.1 race between device writes and installed translations.

    Frame-level faults (drops, corruptions, duplicates, reorderings)
    are applied at *generation* time: the post-transform frame list is
    the ground truth, the RX-server kernel's expected checksum is
    computed from it, and the journal's gated installer guarantees
    exactly those frames land, in that order, in every execution
    configuration.  What the campaign then checks per case:

    - every configuration self-validates (EAX checksum, EBX syscall
      count) and halts — interpreter-only, full translator, and a
      chaos-composed translator with scrambled capacities;
    - {!Cms.Engine.speculation_visible} is armed on every rollback:
      an asynchronous event that exposes shadow state is a finding;
    - the translator run record-replays bit-identically through
      {!Cms_persist.Journal} (serialized and re-parsed, so the on-disk
      codec is in the loop). *)

module Journal = Cms_persist.Journal
module Digests = Cms_persist.Digests
module Suite = Workloads.Suite
module Progs_kernel = Workloads.Progs_kernel

(* ------------------------------------------------------------------ *)
(* Campaign profile                                                    *)
(* ------------------------------------------------------------------ *)

(** Storm shape.  Ranges are inclusive; rates are per-mille, applied
    per frame at generation time. *)
type profile = {
  n_pkts : int * int;  (** frames per RX case *)
  pkt_len : int * int;  (** frame payload length *)
  oversize : int;
      (** per-mille: frame longer than the descriptor's 64-byte buffer,
          exercising the device's DMA truncation *)
  drop : int;  (** frame lost before reaching the NIC *)
  corrupt : int;  (** one payload byte flipped in flight *)
  duplicate : int;  (** frame delivered twice *)
  reorder : int;  (** frame swapped with its successor *)
  n_irqs : int * int;  (** IRQ-flood raises per case, any line *)
  n_dmas : int * int;  (** async DMA bursts per case *)
  at_hi : int;  (** latest retired-clock instant for any event *)
  chaos_share : int;  (** percent of cases also chaos-armed *)
}

let default_profile =
  {
    n_pkts = (4, 14);
    pkt_len = (1, 48);
    oversize = 80;
    drop = 120;
    corrupt = 150;
    duplicate = 120;
    reorder = 150;
    n_irqs = (0, 24);
    n_dmas = (0, 6);
    at_hi = 150_000;
    chaos_share = 40;
  }

(* ------------------------------------------------------------------ *)
(* Case generation                                                     *)
(* ------------------------------------------------------------------ *)

(* Generate the raw frame stream, then act the channel faults out on
   it.  Whatever survives *is* the delivered stream: the kernel's
   expected checksum is computed from the transformed list, so a
   generation-time drop is indistinguishable from a link-level loss,
   and determinism across configurations is untouched. *)
let gen_frames rng (p : profile) =
  let lo, hi = p.n_pkts in
  let n = Srng.range rng (max 1 lo) hi in
  let raw =
    List.init n (fun _ ->
        let len =
          if Srng.chance rng p.oversize 1000 then Srng.range rng 65 96
          else Srng.range rng (fst p.pkt_len) (snd p.pkt_len)
        in
        String.init len (fun _ -> Char.chr (Srng.int rng 256)))
  in
  let kept = List.filter (fun _ -> not (Srng.chance rng p.drop 1000)) raw in
  let kept = if kept = [] then [ List.hd raw ] else kept in
  let corrupted =
    List.map
      (fun f ->
        if String.length f > 0 && Srng.chance rng p.corrupt 1000 then begin
          let i = Srng.int rng (String.length f) in
          let bit = 1 lsl Srng.int rng 8 in
          let b = Bytes.of_string f in
          Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor bit));
          Bytes.to_string b
        end
        else f)
      kept
  in
  let duplicated =
    List.concat_map
      (fun f -> if Srng.chance rng p.duplicate 1000 then [ f; f ] else [ f ])
      corrupted
  in
  let rec reorder = function
    | a :: b :: tl when Srng.chance rng p.reorder 1000 -> b :: reorder (a :: tl)
    | a :: tl -> a :: reorder tl
    | [] -> []
  in
  reorder duplicated

let sorted_ats rng (p : profile) n =
  List.init n (fun _ -> Srng.range rng 1_000 p.at_hi) |> List.sort compare

let gen_irq_flood rng (p : profile) =
  let lo, hi = p.n_irqs in
  let n = Srng.range rng lo hi in
  List.init n (fun _ ->
      Journal.Irq
        {
          at = Srng.range rng 1_000 p.at_hi;
          line = Srng.int rng Machine.Irq.lines;
        })

(* Asynchronous DMA bursts that write the guest's *own code bytes*
   back over the image: architecturally inert, but every burst that
   lands on translated code must invalidate the covering translations
   at a consistent boundary (the §3.6.1 protocol).  Timing them with
   the retired clock steers them into translation / install / chain
   windows across configurations. *)
let gen_dma_bursts rng (p : profile) (listing : X86.Asm.listing) =
  let image = listing.X86.Asm.image in
  let size = Bytes.length image in
  let lo, hi = p.n_dmas in
  let n = Srng.range rng lo hi in
  List.init n (fun _ ->
      let len = Srng.range rng 4 16 in
      let off = Srng.int rng (max 1 (size - len)) in
      Journal.Dma_at
        {
          at = Srng.range rng 1_000 p.at_hi;
          addr = listing.X86.Asm.base + off;
          data = Bytes.sub_string image off len;
        })

type case = {
  idx : int;
  ckind : string;  (** "rr" | "echo" | "rx" *)
  workload : Suite.t;
  events : Journal.guest_event list;
  expected_ebx : int;
  chaos_seed : int option;
}

(* The echo kernel keeps its own loopback frame in flight, so external
   packets would race it for the armed descriptor — schedule-dependent
   and deliberately excluded: echo and rr cases take the IRQ floods
   and DMA bursts, the rx kernel takes the packet storms. *)
let gen_case rng (p : profile) idx =
  let ckind =
    Srng.choose rng [| "rx"; "rx"; "echo"; "rr" |] (* rx-heavy mix *)
  in
  let workload, pkt_events, expected_ebx =
    match ckind with
    | "rx" ->
        let frames = gen_frames rng p in
        let ats = sorted_ats rng p (List.length frames) in
        let w = Progs_kernel.kernel_rx frames in
        let evs =
          List.map2 (fun at data -> Journal.Pkt { at; data }) ats frames
        in
        (w, evs, snd (Progs_kernel.rx_expected frames))
    | "echo" ->
        ( Progs_kernel.kernel_echo,
          [],
          Progs_kernel.expected_calls Progs_kernel.kernel_echo )
    | _ ->
        ( Progs_kernel.kernel_rr,
          [],
          Progs_kernel.expected_calls Progs_kernel.kernel_rr )
  in
  let irqs = gen_irq_flood rng p in
  let dmas = gen_dma_bursts rng p workload.Suite.listing in
  let chaos_seed =
    if Srng.chance rng p.chaos_share 100 then Some (Srng.int rng 0x3fffffff)
    else None
  in
  { idx; ckind; workload; events = pkt_events @ irqs @ dmas; expected_ebx;
    chaos_seed }

(* ------------------------------------------------------------------ *)
(* Running one configuration                                           *)
(* ------------------------------------------------------------------ *)

let cfg_interp =
  { Cms.Config.default with Cms.Config.translate_threshold = max_int }

let cfg_translate =
  {
    Cms.Config.default with
    Cms.Config.verify_translations = true;
    closure_exec = true;
    chain_exits = true;
    background_translation = true;
  }

(* The kernels keep their task stacks inside this window; dead bytes
   below a preempted task's ESP are molecule-clock territory and are
   masked out of every memory digest, exactly as the fuzz oracle does
   for its canonical stack. *)
let stack_mask = [ (0x70000, 0x80000) ]

type stop_kind = Halted | Limit | Crash of string

let stop_name = function
  | Halted -> "halted"
  | Limit -> "insn-limit"
  | Crash m -> "crash: " ^ m

type outcome = {
  stop : stop_kind;
  arch : Digests.arch;
  strict : Digest.t;
  spec_violation : bool;
      (** a rollback left speculative state architecturally visible *)
  stats : Cms.Stats.t;
}

let execute ~cfg ~setup (w : Suite.t) : outcome * Cms.t =
  let c = Suite.prepare ~cfg w in
  let spec = ref false in
  c.Cms.Engine.on_rollback <-
    Some
      (fun () ->
        if Cms.Engine.speculation_visible c then begin
          spec := true;
          failwith "speculative state visible after rollback"
        end);
  setup c;
  let stop =
    match Cms.run ~max_insns:w.Suite.max_insns c with
    | Cms.Engine.Halted -> Halted
    | Cms.Engine.Insn_limit -> Limit
    | exception ((Out_of_memory | Stack_overflow) as e) -> raise e
    | exception e -> Crash (Printexc.to_string e)
  in
  ( {
      stop;
      arch = Digests.arch ~mask:stack_mask c;
      strict = Digests.strict ~mask:stack_mask c;
      spec_violation = !spec;
      stats = Cms.stats c;
    },
    c )

(* Self-validation of one finished run: halted, checksum in EAX,
   syscall count in EBX — both schedule-independent by construction,
   hence identical in every configuration. *)
let validate (case : case) tag (o : outcome) c =
  let w = case.workload in
  match o.stop with
  | Limit -> Error (Fmt.str "%s: hit the %d-insn limit" tag w.Suite.max_insns)
  | Crash m -> Error (Fmt.str "%s: %s" tag m)
  | Halted ->
      let eax = Cms.gpr c X86.Regs.eax in
      let ebx = Cms.gpr c X86.Regs.ebx in
      let want_eax = Option.get w.Suite.expected_eax in
      if eax <> want_eax then
        Error
          (Fmt.str "%s: checksum mismatch: expected %#x, got %#x" tag want_eax
             eax)
      else if ebx <> case.expected_ebx then
        Error
          (Fmt.str "%s: syscall count mismatch: expected %d, got %d" tag
             case.expected_ebx ebx)
      else Ok ()

let chaos_of_seed seed cfg =
  let rng = Srng.create seed in
  let cfg = Chaos.scramble_cfg rng cfg in
  (cfg, Chaos.create rng)

(* ------------------------------------------------------------------ *)
(* Record / replay through the journal                                 *)
(* ------------------------------------------------------------------ *)

(* Record the translator run of [case] (chaos-composed when the case
   carries a chaos seed), serialize the journal through the stable
   codec, re-parse it, replay it, and require a bit-identical outcome.
   Mirrors the fuzz oracle's record/replay differential, with the
   serialization round-trip added so the version-4 guest-event codec
   (packet arrivals, async DMA) is exercised on every case. *)
let check_record_replay (case : case) : (unit, string) result =
  let cfg, chaos =
    match case.chaos_seed with
    | None -> (cfg_translate, None)
    | Some seed ->
        let cfg, ch = chaos_of_seed seed cfg_translate in
        (cfg, Some ch)
  in
  let host = ref [] in
  let tap =
    {
      Chaos.tap_kill = (fun nth -> host := Journal.Kill { nth } :: !host);
      tap_fault =
        (fun nth alias -> host := Journal.Pre_fault { nth; alias } :: !host);
      tap_spoof = (fun nth -> host := Journal.Spoof { nth } :: !host);
      tap_flush = (fun nth -> host := Journal.Flush { nth } :: !host);
      tap_evict = (fun nth -> host := Journal.Evict { nth } :: !host);
      tap_unlink = (fun nth k -> host := Journal.Unlink { nth; k } :: !host);
      tap_bg = (fun _nth _doom -> ());
    }
  in
  let setup c =
    c.Cms.Engine.on_bg_consume <-
      Some (fun ~entry ~at -> host := Journal.Bg_arrive { entry; at } :: !host);
    ignore (Journal.install_guest c case.events : Journal.injector);
    match chaos with Some ch -> Chaos.install ~tap ch c | None -> ()
  in
  let recorded, _c = execute ~cfg ~setup case.workload in
  let journal =
    Journal.of_string
      (Journal.to_string
         {
           Journal.label = case.workload.Suite.name;
           cfg;
           guest = case.events;
           host = List.rev !host;
           arch_hex = Some (Digests.arch_hex recorded.arch);
           strict_hex = Some (Digests.strict_hex recorded.strict);
         })
  in
  let setup c =
    ignore (Journal.install_guest c journal.Journal.guest : Journal.injector);
    if journal.Journal.host <> [] then Journal.install_host c journal.Journal.host
  in
  let replayed, _c = execute ~cfg:journal.Journal.cfg ~setup case.workload in
  if recorded.stop <> replayed.stop then
    Error
      (Fmt.str "record/replay stop mismatch (%s vs %s)"
         (stop_name recorded.stop) (stop_name replayed.stop))
  else if recorded.arch <> replayed.arch then
    Error ("record/replay arch: " ^ Digests.arch_diff recorded.arch replayed.arch)
  else if recorded.strict <> replayed.strict then
    Error "record/replay strict digest mismatch"
  else if recorded.spec_violation || replayed.spec_violation then
    Error "record/replay: speculative state visible"
  else Ok ()

(* ------------------------------------------------------------------ *)
(* One case through the full gauntlet                                  *)
(* ------------------------------------------------------------------ *)

type case_report = {
  r_idx : int;
  r_kind : string;
  r_chaos : bool;
  r_error : string option;
  r_spec_violations : int;
  r_events_fired : int;  (** journaled deliveries in the translator run *)
  r_nic_rx : int;
  r_nic_drops : int;
  r_irq_delivered : int;
  r_irq_rollbacks : int;
}

let run_case (case : case) : case_report =
  let clean_setup c =
    ignore (Journal.install_guest c case.events : Journal.injector)
  in
  let run_one tag ~cfg ~setup =
    let o, c = execute ~cfg ~setup case.workload in
    (validate case tag o c, o)
  in
  let spec_violations = ref 0 in
  let note_spec (o : outcome) =
    if o.spec_violation then incr spec_violations
  in
  let interp = run_one "interp" ~cfg:cfg_interp ~setup:clean_setup in
  let hot = run_one "translate" ~cfg:cfg_translate ~setup:clean_setup in
  let chaosed =
    match case.chaos_seed with
    | None -> None
    | Some seed ->
        let cfg, ch = chaos_of_seed seed cfg_translate in
        let setup c =
          clean_setup c;
          Chaos.install ch c
        in
        Some (run_one "chaos" ~cfg ~setup)
  in
  note_spec (snd interp);
  note_spec (snd hot);
  (match chaosed with Some (_, o) -> note_spec o | None -> ());
  let error =
    match (fst interp, fst hot) with
    | Error e, _ | _, Error e -> Some e
    | Ok (), Ok () -> (
        match chaosed with
        | Some (Error e, _) -> Some e
        | _ -> (
            match check_record_replay case with
            | Error e -> Some e
            | Ok () -> None))
  in
  let error =
    match error with
    | Some _ -> error
    | None ->
        if !spec_violations > 0 then Some "speculative state visible" else None
  in
  let s = (snd hot).stats in
  {
    r_idx = case.idx;
    r_kind = case.ckind;
    r_chaos = case.chaos_seed <> None;
    r_error = error;
    r_spec_violations = !spec_violations;
    r_events_fired = s.Cms.Stats.journal_events;
    r_nic_rx = s.Cms.Stats.nic_rx_frames;
    r_nic_drops = s.Cms.Stats.nic_rx_dropped;
    r_irq_delivered = s.Cms.Stats.irq_delivered;
    r_irq_rollbacks = s.Cms.Stats.irq_rollbacks;
  }

(* ------------------------------------------------------------------ *)
(* Campaign                                                            *)
(* ------------------------------------------------------------------ *)

type totals = {
  mutable cases : int;
  mutable passed : int;
  mutable failed : int;
  mutable spec_violations : int;
  mutable frames_injected : int;
  mutable irqs_injected : int;
  mutable dmas_injected : int;
  mutable events_fired : int;
  mutable nic_rx : int;
  mutable nic_drops : int;
  mutable irq_delivered : int;
  mutable irq_rollbacks : int;
  mutable failures : (int * string) list;  (** newest first, capped *)
}

let campaign ?(profile = default_profile) ?on_case ~seed ~cases () =
  let rng = Srng.create seed in
  let t =
    {
      cases = 0;
      passed = 0;
      failed = 0;
      spec_violations = 0;
      frames_injected = 0;
      irqs_injected = 0;
      dmas_injected = 0;
      events_fired = 0;
      nic_rx = 0;
      nic_drops = 0;
      irq_delivered = 0;
      irq_rollbacks = 0;
      failures = [];
    }
  in
  for idx = 0 to cases - 1 do
    let case = gen_case (Srng.split rng) profile idx in
    List.iter
      (function
        | Journal.Pkt _ -> t.frames_injected <- t.frames_injected + 1
        | Journal.Irq _ -> t.irqs_injected <- t.irqs_injected + 1
        | Journal.Dma_at _ -> t.dmas_injected <- t.dmas_injected + 1
        | Journal.Dma _ | Journal.Prot _ -> ())
      case.events;
    let r = run_case case in
    t.cases <- t.cases + 1;
    (match r.r_error with
    | None -> t.passed <- t.passed + 1
    | Some e ->
        t.failed <- t.failed + 1;
        if List.length t.failures < 20 then
          t.failures <- (idx, e) :: t.failures);
    t.spec_violations <- t.spec_violations + r.r_spec_violations;
    t.events_fired <- t.events_fired + r.r_events_fired;
    t.nic_rx <- t.nic_rx + r.r_nic_rx;
    t.nic_drops <- t.nic_drops + r.r_nic_drops;
    t.irq_delivered <- t.irq_delivered + r.r_irq_delivered;
    t.irq_rollbacks <- t.irq_rollbacks + r.r_irq_rollbacks;
    match on_case with Some f -> f r | None -> ()
  done;
  t

let pp_totals ppf (t : totals) =
  Fmt.pf ppf
    "storm: %d cases, %d passed, %d failed, %d speculation violations@.\
     injected: %d frames, %d irq raises, %d dma bursts (%d fired in the \
     translator runs)@.\
     translator runs: nic-rx=%d ring-full-drops=%d irq-delivered=%d \
     irq-rollbacks=%d"
    t.cases t.passed t.failed t.spec_violations t.frames_injected
    t.irqs_injected t.dmas_injected t.events_fired t.nic_rx t.nic_drops
    t.irq_delivered t.irq_rollbacks
