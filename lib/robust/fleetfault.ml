(** Seeded fault plans for the fleet campaign.

    Where {!Chaos} attacks one engine from the host side and {!Storm}
    attacks one machine from the device side, this layer attacks the
    *fleet*: machine deaths at adversarial retired-clock instants,
    stall-watchdog wedges, permanent faults that drive the supervisor's
    quarantine ladder, and attacks on the shared translation store
    itself (blob corruption, consistent-looking tampered code,
    truncated images).  Everything is a pure function of the seed; the
    fleet supervisor ({!Cms_fleet.Fleet}) acts the plans out.

    Packet traffic is count-preserving by design: every machine in a
    case serves the *same number* of frames (so all machines boot the
    byte-identical RX-server kernel image and the shared store actually
    shares), while frame contents, corruption, and reordering are
    seeded per machine — same workload image, different inputs. *)

module Journal = Cms_persist.Journal

(* ------------------------------------------------------------------ *)
(* Machine faults                                                      *)
(* ------------------------------------------------------------------ *)

type fault =
  | Kill of { at : int }
      (** one-shot machine death at the given retired-clock instant —
          a transient fault; the restarted machine survives it *)
  | Wedge of { at : int }
      (** one-shot stall-watchdog trip: the machine stops making
          progress and the supervisor's watchdog reaps it *)
  | Permafault of { at : int }
      (** refires on every attempt once reached — a persistent fault
          that must climb the backoff ladder into permanent quarantine *)

let fault_at = function Kill { at } | Wedge { at } | Permafault { at } -> at

(* ------------------------------------------------------------------ *)
(* Store attacks                                                       *)
(* ------------------------------------------------------------------ *)

type store_attack =
  | Flip_blob
      (** flip one byte of a live entry's blob without fixing its MD5 —
          plain store corruption; the consumer's digest check rejects *)
  | Tamper_code
      (** re-serialize a live entry with a mangled molecule body and a
          *consistent* MD5 — the digest passes, the source bytes still
          match, and only structural validation / the molecule verifier
          stands between the poisoned code and the consumer *)
  | Truncate_image
      (** serialize the store and truncate the image mid-byte — the
          torn-image case a killed publisher could leave without the
          atomic rename; the container codec must reject it and the
          affected machine degrades to its private translator *)

let attack_name = function
  | Flip_blob -> "flip-blob"
  | Tamper_code -> "tamper-code"
  | Truncate_image -> "truncate-image"

(* ------------------------------------------------------------------ *)
(* Plans                                                               *)
(* ------------------------------------------------------------------ *)

type machine_plan = {
  mp_frames : string list;  (** delivered frame stream, ground truth *)
  mp_ats : int list;  (** arrival instants, sorted, one per frame *)
  mp_faults : fault list;
  mp_chaos_seed : int option;
}

type plan = {
  p_idx : int;
  p_nframes : int;  (** identical across machines: identical kernel *)
  p_machines : machine_plan list;
  p_attacks : (int * store_attack) list;
      (** (machine index, attack): fired after that machine finishes *)
}

type profile = {
  n_machines : int;
  nframes : int * int;  (** frames per machine (fixed within a case) *)
  pkt_len : int * int;
  oversize : int;  (** per-mille, as in {!Storm.profile} *)
  corrupt : int;
  reorder : int;
  fault_share : int;  (** percent of machines carrying any fault *)
  perma_share : int;  (** percent of faulty machines whose fault persists *)
  chaos_share : int;  (** percent of machines also chaos-armed *)
  attack_share : int;  (** percent of cases attacking the store *)
  at_hi : int;  (** latest retired-clock instant for any event *)
}

let default_profile =
  {
    n_machines = 3;
    nframes = (3, 8);
    pkt_len = (1, 48);
    oversize = 60;
    corrupt = 150;
    reorder = 150;
    fault_share = 45;
    perma_share = 20;
    chaos_share = 35;
    attack_share = 45;
    at_hi = 150_000;
  }

(* Count-preserving channel faults: corruption and reordering only, so
   every machine's delivered stream has exactly [nframes] frames and
   the generated kernels are byte-identical across the fleet. *)
let gen_frames rng (p : profile) ~nframes =
  let raw =
    List.init nframes (fun _ ->
        let len =
          if Srng.chance rng p.oversize 1000 then Srng.range rng 65 96
          else Srng.range rng (fst p.pkt_len) (snd p.pkt_len)
        in
        String.init len (fun _ -> Char.chr (Srng.int rng 256)))
  in
  let corrupted =
    List.map
      (fun f ->
        if String.length f > 0 && Srng.chance rng p.corrupt 1000 then begin
          let i = Srng.int rng (String.length f) in
          let bit = 1 lsl Srng.int rng 8 in
          let b = Bytes.of_string f in
          Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor bit));
          Bytes.to_string b
        end
        else f)
      raw
  in
  let rec reorder = function
    | a :: b :: tl when Srng.chance rng p.reorder 1000 -> b :: reorder (a :: tl)
    | a :: tl -> a :: reorder tl
    | [] -> []
  in
  reorder corrupted

let gen_machine rng (p : profile) ~nframes =
  let frames = gen_frames rng p ~nframes in
  let ats =
    List.init nframes (fun _ -> Srng.range rng 1_000 p.at_hi)
    |> List.sort compare
  in
  let faults =
    if not (Srng.chance rng p.fault_share 100) then []
    else if Srng.chance rng p.perma_share 100 then
      [ Permafault { at = Srng.range rng 2_000 p.at_hi } ]
    else
      List.init
        (Srng.range rng 1 2)
        (fun _ ->
          let at = Srng.range rng 2_000 p.at_hi in
          if Srng.chance rng 30 100 then Wedge { at } else Kill { at })
  in
  let chaos_seed =
    if Srng.chance rng p.chaos_share 100 then Some (Srng.int rng 0x3fffffff)
    else None
  in
  { mp_frames = frames; mp_ats = ats; mp_faults = faults;
    mp_chaos_seed = chaos_seed }

let gen_plan rng (p : profile) idx =
  let nframes = Srng.range rng (fst p.nframes) (snd p.nframes) in
  let machines =
    List.init p.n_machines (fun _ -> gen_machine rng p ~nframes)
  in
  let attacks =
    if not (Srng.chance rng p.attack_share 100) then []
    else
      List.init
        (Srng.range rng 1 2)
        (fun _ ->
          let after = Srng.int rng (max 1 (p.n_machines - 1)) in
          let kind =
            Srng.choose rng [| Flip_blob; Tamper_code; Truncate_image |]
          in
          (after, kind))
  in
  { p_idx = idx; p_nframes = nframes; p_machines = machines;
    p_attacks = attacks }

(* ------------------------------------------------------------------ *)
(* Acting store attacks out                                            *)
(* ------------------------------------------------------------------ *)

module Tstore = Cms_persist.Tstore
module Codec = Cms_persist.Codec

(* Deterministically pick a live key, if any. *)
let pick_key rng (store : Tstore.t) =
  let keys =
    Tstore.locked store (fun () ->
        Hashtbl.fold (fun k _ acc -> k :: acc) store.Tstore.entries [])
    |> List.sort compare
  in
  match keys with
  | [] -> None
  | ks -> Some (List.nth ks (Srng.int rng (List.length ks)))

(** Corrupt one byte of [key]'s blob in place, leaving the recorded MD5
    alone — the consumer-side digest check must catch it. *)
let flip_blob rng (store : Tstore.t) k =
  Tstore.locked store (fun () ->
      match Hashtbl.find_opt store.Tstore.entries k with
      | None -> false
      | Some e ->
          let b = Bytes.of_string e.Tstore.blob in
          let i = Srng.int rng (Bytes.length b) in
          let bit = 1 lsl Srng.int rng 8 in
          Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor bit));
          Hashtbl.replace store.Tstore.entries k
            { e with Tstore.blob = Bytes.to_string b };
          true)

(* Mutations whose verifier rule is independent of the consumer's
   (possibly chaos-scrambled) capacities — a tampered entry must be
   rejected under *every* engine configuration, never executed. *)
let tamper_mutations =
  [
    Cms_analysis.Mutate.Clobber_guest;
    Cms_analysis.Mutate.Drop_commit;
    Cms_analysis.Mutate.Unallocated_vreg;
  ]

(** Corrupt [key]'s molecule body with a real verifier-invariant
    violation (a clobbered guest register, a dropped commit, a leaked
    virtual register) and re-serialize *consistently* (fresh MD5): the
    source-byte digest still matches, so only structural validation and
    the mandatory molecule verifier stand between this and the
    consumer. *)
let tamper_code (store : Tstore.t) k =
  Tstore.locked store (fun () ->
      match Hashtbl.find_opt store.Tstore.entries k with
      | None -> false
      | Some e -> (
          match
            let r = Codec.reader e.Tstore.blob in
            let p = Tstore.r_payload r in
            Codec.r_end r;
            p
          with
          | exception Codec.Corrupt _ -> false
          | p -> (
              let code = p.Tstore.tran.Cms_persist.Aot.code in
              let mutated =
                List.find_map
                  (fun m ->
                    Cms_analysis.Mutate.apply ~cfg:Cms.Config.default code m)
                  tamper_mutations
              in
              match mutated with
              | None -> false
              | Some code ->
                  let tran = { p.Tstore.tran with Cms_persist.Aot.code } in
                  let p = { p with Tstore.tran } in
                  let b = Codec.writer () in
                  Tstore.w_payload b p;
                  let blob = Codec.contents b in
                  Hashtbl.replace store.Tstore.entries k
                    { Tstore.blob; sum = Digest.string blob };
                  true)))

type attack_result =
  | Applied of string  (** what the attack did; the campaign logs it *)
  | Nothing  (** nothing to bite (empty store) *)
  | Torn_accepted
      (** a truncated image decoded successfully — a codec finding;
          the campaign fails the case *)

(** Act [attack] out against [store].

    [Truncate_image] round-trips the store through a truncated image
    and *requires* the codec to reject it; the caller degrades the
    next consumer to its private translator. *)
let apply rng (store : Tstore.t) attack =
  match attack with
  | Flip_blob -> (
      match pick_key rng store with
      | None -> Nothing
      | Some k ->
          if flip_blob rng store k then Applied ("flip-blob " ^ k) else Nothing)
  | Tamper_code -> (
      match pick_key rng store with
      | None -> Nothing
      | Some k ->
          if tamper_code store k then Applied ("tamper-code " ^ k) else Nothing)
  | Truncate_image -> (
      let image = Tstore.to_string store in
      let n = String.length image in
      if n < 2 then Nothing
      else
        let cut = 1 + Srng.int rng (n - 1) in
        match Tstore.of_string (String.sub image 0 cut) with
        | _ -> Torn_accepted
        | exception Codec.Corrupt _ ->
            Applied (Printf.sprintf "truncate-image rejected at %d/%d" cut n))
