(** Deterministic splittable RNG — the implementation lives in the
    shared {!Splitmix} library (one copy for both the chaos layer and
    the fuzzer); re-exported here so chaos code keeps its spelling. *)

include Splitmix
