(** Chaos mode: deterministic host-side fault injection.

    The guest can exercise the recovery machinery only from the inside
    (faults, SMC, interrupts); this layer attacks it from the *host*
    side, injecting the adversities a real Crusoe would meet as
    translator bugs, verifier rejections and cache pressure — all
    seeded from a {!Srng} stream, so a campaign replays bit-identically
    from its seed.

    Injected adversities:
    - translator/verifier death: {!Injected} raised from inside the
      engine's containment boundary at a translation attempt;
    - spurious rollbacks: a native fault ({!Vliw.Nexn.Alias_violation}
      or {!Vliw.Nexn.Sbuf_overflow}) forced before a translation runs,
      and spoofed interrupt-pending signals that make a running
      translation roll back with nothing to deliver;
    - cache-pressure storms: surprise full tcache flushes and
      coldest-generation evictions at dispatch boundaries;
    - artificially tiny capacities via {!scramble_cfg}.

    Every one of these must be architecturally invisible: the hardened
    engine absorbs them with containment, the demotion ladder and the
    forward-progress watchdog, and the run must end bit-identical to a
    clean interpreter run (the [chaos] oracle in [lib/fuzz] enforces
    exactly that for every fuzz case). *)

(** The simulated translator/verifier death.  Raised only from
    [on_translate], i.e. inside the engine's containment boundary; if
    it ever escapes to a caller, containment is broken. *)
exception Injected of string

(** Injection rates.  The integer rates are per-mille probabilities
    drawn per opportunity. *)
type profile = {
  translate_die : int;  (** a translation attempt raises {!Injected} *)
  pre_fault : int;  (** a dispatch forces a native fault pre-execution *)
  alias_share : int;
      (** of injected pre-faults, percent that are alias-check false
          positives (the rest are store-buffer overflows) *)
  irq_spoof : int;  (** an in-translation poll reports a phantom IRQ *)
  flush_storm : int;  (** a dispatch boundary full-flushes the tcache *)
  evict_storm : int;  (** a boundary evicts the coldest generation *)
  unlink_storm : int;
      (** a boundary forcibly unlinks one chained exit (selected
          deterministically over {!Cms.Tcache.chained_exits}); the
          engine must re-chain through the normal patch path with no
          architectural effect *)
  (* background-translator adversities: each rate dooms the request
     being enqueued (the worker domain acts the doom out later); every
     doom must degrade to synchronous translation, architecturally
     invisible.  Checked in ladder order — die, wedge, fail, delay —
     first hit wins. *)
  bg_die : int;  (** the worker domain dies mid-request (permanent) *)
  bg_wedge : int;  (** the request never completes *)
  bg_fail : int;  (** the background compile "crashes" *)
  bg_delay : int;  (** the background compile is artificially slowed *)
  tiny_caches : bool;  (** scramble capacities with {!scramble_cfg} *)
}

let default_profile =
  {
    translate_die = 30;
    pre_fault = 30;
    alias_share = 50;
    irq_spoof = 15;
    flush_storm = 3;
    evict_storm = 12;
    unlink_storm = 20;
    bg_die = 2;
    bg_wedge = 10;
    bg_fail = 25;
    bg_delay = 40;
    tiny_caches = true;
  }

(** A profile that only starves capacities — no event injection; used
    to isolate graceful-degradation bugs from recovery bugs. *)
let pressure_only =
  {
    translate_die = 0;
    pre_fault = 0;
    alias_share = 0;
    irq_spoof = 0;
    flush_storm = 5;
    evict_storm = 40;
    unlink_storm = 0;
    bg_die = 0;
    bg_wedge = 0;
    bg_fail = 0;
    bg_delay = 0;
    tiny_caches = true;
  }

type t = {
  rng : Srng.t;
  profile : profile;
  (* what actually got injected (for campaign reporting and for tests
     asserting the schedule fired at all) *)
  mutable translator_kills : int;
  mutable injected_faults : int;
  mutable irq_spoofs : int;
  mutable flushes : int;
  mutable evicted : int;
  mutable unlinks : int;  (** chained exits actually cut by unlink storms *)
  mutable bg_dooms : int;  (** background requests doomed at enqueue *)
}

let create ?(profile = default_profile) rng =
  {
    rng;
    profile;
    translator_kills = 0;
    injected_faults = 0;
    irq_spoofs = 0;
    flushes = 0;
    evicted = 0;
    unlinks = 0;
    bg_dooms = 0;
  }

let injections t =
  t.translator_kills + t.injected_faults + t.irq_spoofs + t.flushes
  + t.evicted + t.unlinks + t.bg_dooms

(** Shrink the run's capacities so pressure paths fire constantly:
    tcache small enough that real workloads evict, policy table small
    enough that it churns, store buffer small enough that conservative
    translations still fit (the interpreter bypasses it, so this only
    starves translations).  Architecturally invisible by construction —
    capacities are host resources. *)
let scramble_cfg rng (cfg : Cms.Config.t) =
  (* the bg-queue draw comes last: minimized corpus cases predate it,
     and appending keeps the RNG stream prefix — and so every other
     scrambled capacity — unchanged for them *)
  let tcache_capacity = Srng.range rng 3 24 in
  let sbuf_capacity = Srng.range rng 8 24 in
  let adapt_capacity = Srng.range rng 4 64 in
  let bg_queue_capacity = Srng.range rng 2 12 in
  {
    cfg with
    Cms.Config.tcache_capacity;
    sbuf_capacity;
    adapt_capacity;
    bg_queue_capacity;
  }

let hit t rate = rate > 0 && Srng.chance t.rng rate 1000

(** Observer for the injections that actually fire, keyed by
    *opportunity index* — the nth time the corresponding hook ran.  The
    opportunity streams are pure functions of the deterministic
    execution, so a recorded [(kind, nth)] list replayed by counter
    matching (no RNG) reproduces the identical injection schedule: this
    is what {!Cms_persist.Journal} records for record-replay. *)
type tap = {
  tap_kill : int -> unit;  (** nth [on_translate] opportunity *)
  tap_fault : int -> bool -> unit;
      (** nth [pre_exec] opportunity; [true] = alias fault, [false] =
          store-buffer overflow *)
  tap_spoof : int -> unit;  (** nth [irq_spoof] poll *)
  tap_flush : int -> unit;  (** nth dispatch boundary *)
  tap_evict : int -> unit;  (** nth dispatch boundary *)
  tap_unlink : int -> int -> unit;
      (** nth dispatch boundary, with the link selector [k] (the RNG
          draw); recorded even when no link existed to cut — replaying
          the attempt is then also a no-op *)
  tap_bg : int -> int -> unit;
      (** nth [bg_doom] opportunity, with the doom encoded as an int
          (0 = die, 1 = wedge, 2 = fail, 3 = delay).  Observation
          only: background dooms shape worker timing, never the
          architectural schedule, so the journal does not replay them *)
}

(** Arm an engine.  Composes with any already-installed
    [on_boundary] hook (the fuzzer's event injector), running the
    previous hook first.  [tap] observes realized injections with their
    opportunity indices (for the record-replay journal); counting the
    opportunities draws nothing from the RNG, so armed-with-tap and
    armed-without-tap runs are bit-identical. *)
let install ?tap t (e : Cms.Engine.t) =
  let n_boundary = ref 0 in
  let n_translate = ref 0 in
  let n_exec = ref 0 in
  let n_spoof = ref 0 in
  let n_bg = ref 0 in
  let prev = e.Cms.Engine.on_boundary in
  e.Cms.Engine.on_boundary <-
    Some
      (fun retired ->
        (match prev with Some f -> f retired | None -> ());
        let n = !n_boundary in
        incr n_boundary;
        if hit t t.profile.flush_storm then begin
          t.flushes <- t.flushes + 1;
          (match tap with Some tp -> tp.tap_flush n | None -> ());
          Cms.Tcache.flush e.Cms.Engine.tcache
        end;
        if hit t t.profile.evict_storm then begin
          (match tap with Some tp -> tp.tap_evict n | None -> ());
          t.evicted <-
            t.evicted + Cms.Tcache.evict_coldest e.Cms.Engine.tcache
        end;
        if hit t t.profile.unlink_storm then begin
          (* the selector draws unconditionally so the RNG stream does
             not depend on tcache state *)
          let k = Srng.range t.rng 0 65536 in
          (match tap with Some tp -> tp.tap_unlink n k | None -> ());
          if Cms.Tcache.unlink_nth e.Cms.Engine.tcache ~k then
            t.unlinks <- t.unlinks + 1
        end);
  e.Cms.Engine.chaos <-
    Some
      {
        Cms.Engine.on_translate =
          (fun entry ->
            let n = !n_translate in
            incr n_translate;
            if hit t t.profile.translate_die then begin
              t.translator_kills <- t.translator_kills + 1;
              (match tap with Some tp -> tp.tap_kill n | None -> ());
              raise (Injected (Fmt.str "translator death at %#x" entry))
            end);
        pre_exec =
          (fun _tr ->
            let n = !n_exec in
            incr n_exec;
            if hit t t.profile.pre_fault then begin
              t.injected_faults <- t.injected_faults + 1;
              let alias = Srng.chance t.rng t.profile.alias_share 100 in
              (match tap with Some tp -> tp.tap_fault n alias | None -> ());
              Some
                (if alias then Vliw.Nexn.Alias_violation 0
                 else Vliw.Nexn.Sbuf_overflow)
            end
            else None);
        irq_spoof =
          (fun () ->
            let n = !n_spoof in
            incr n_spoof;
            if hit t t.profile.irq_spoof then begin
              t.irq_spoofs <- t.irq_spoofs + 1;
              (match tap with Some tp -> tp.tap_spoof n | None -> ());
              true
            end
            else false);
        bg_doom =
          (fun _entry ->
            let n = !n_bg in
            incr n_bg;
            (* every rate draws unconditionally, so the RNG stream does
               not depend on which doom (if any) fires *)
            let die = hit t t.profile.bg_die in
            let wedge = hit t t.profile.bg_wedge in
            let fail = hit t t.profile.bg_fail in
            let delay = hit t t.profile.bg_delay in
            let doom =
              if die then Some (0, Cms.Bgtrans.Ddie)
              else if wedge then Some (1, Cms.Bgtrans.Dwedge)
              else if fail then Some (2, Cms.Bgtrans.Dfail)
              else if delay then Some (3, Cms.Bgtrans.Ddelay)
              else None
            in
            match doom with
            | Some (code, d) ->
                t.bg_dooms <- t.bg_dooms + 1;
                (match tap with Some tp -> tp.tap_bg n code | None -> ());
                Some d
            | None -> None);
      }

let pp fmt t =
  Fmt.pf fmt
    "chaos[kills=%d faults=%d spoofs=%d flushes=%d evicted=%d unlinks=%d \
     bg-dooms=%d]"
    t.translator_kills t.injected_faults t.irq_spoofs t.flushes t.evicted
    t.unlinks t.bg_dooms
