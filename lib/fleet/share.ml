(** Engine-side wiring of the shared translation store.

    One {!attach} per machine installs both fleet hooks on the engine:

    - {!Cms.Engine.shared_source} — consulted at the synchronous
      translate instant, after the tcache and the background worker
      both missed.  The store key is derived from the canonical compile
      inputs computed *right there* (entry, current source bytes,
      adaptive policy), and a hit is only returned after
      {!Cms_persist.Tstore.decode_validated} fully revalidates the
      blob.  Any defect poisons the key fleet-wide (exactly once) and
      falls back to the private translator.
    - {!Cms.Engine.on_fresh_translation} — the publish seam.  Every
      freshly minted translation goes through the mandatory rejecting
      verifier *again* on the publisher side before its serialized form
      enters the store; no verifier installed means nothing is ever
      published.

    A machine that rejects too many entries stops trusting the store
    altogether ({!t.detached}) and keeps serving from its private
    translator — graceful degradation, never an error. *)

module Tstore = Cms_persist.Tstore

type t = {
  store : Tstore.t;
  max_rejects : int;
      (** consecutive-reject budget before the machine detaches *)
  mutable rejects : int;
  mutable detached : bool;
}

let attach ?(max_rejects = 8) (c : Cms.t) (store : Tstore.t) : t =
  let cfg = c.Cms.Engine.cfg in
  let stats = Cms.stats c in
  let sh = { store; max_rejects; rejects = 0; detached = false } in
  c.Cms.Engine.shared_source <-
    Some
      (fun ~entry ~region ~policy ~bytes_ ->
        if sh.detached then None
        else
          let k = Tstore.key ~entry ~bytes:bytes_ ~policy in
          match Tstore.lookup store k with
          | Tstore.Miss ->
              stats.Cms.Stats.store_misses <-
                stats.Cms.Stats.store_misses + 1;
              None
          | Tstore.Poisoned ->
              (* quarantined fleet-wide by some machine's earlier
                 rejection: fall back to the private translator without
                 paying for revalidation *)
              stats.Cms.Stats.store_misses <-
                stats.Cms.Stats.store_misses + 1;
              None
          | Tstore.Hit e -> (
              match
                Tstore.decode_validated ~cfg ~entry ~region ~policy
                  ~bytes:bytes_ e
              with
              | compiled -> Some compiled
              | exception Tstore.Untrusted reason ->
                  stats.Cms.Stats.store_rejects <-
                    stats.Cms.Stats.store_rejects + 1;
                  if Tstore.poison store ~key:k ~reason then
                    stats.Cms.Stats.store_quarantines <-
                      stats.Cms.Stats.store_quarantines + 1;
                  sh.rejects <- sh.rejects + 1;
                  if sh.rejects >= sh.max_rejects then sh.detached <- true;
                  None));
  c.Cms.Engine.on_fresh_translation <-
    Some
      (fun ~entry ~region ~policy ~bytes_ ~compiled ->
        if (not sh.detached) && Cms.Region.instruction_count region > 0 then
          match !Cms.Codegen.verify_hook with
          | None ->
              (* no verifier, no publication: the store only ever holds
                 verified translations *)
              Tstore.note_refused store
          | Some v -> (
              match
                v.Cms.Codegen.verify_code ~cfg ~entry
                  ~ninsns:(Cms.Region.instruction_count region)
                  compiled.Cms.Codegen.code
              with
              | _ :: _ -> Tstore.note_refused store
              | [] ->
                  let key, blob =
                    Tstore.encode ~entry ~region ~policy ~bytes:bytes_
                      ~compiled
                  in
                  if Tstore.publish store ~key ~blob then
                    stats.Cms.Stats.store_published <-
                      stats.Cms.Stats.store_published + 1));
  sh

(** Remove both hooks (the machine keeps its installed translations). *)
let detach (c : Cms.t) =
  c.Cms.Engine.shared_source <- None;
  c.Cms.Engine.on_fresh_translation <- None
