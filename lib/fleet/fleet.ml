(** The fleet supervisor: N guest machines, one shared warm store.

    Machines run the same workload image with different seeded inputs
    (the PR 9 RX-server kernel serving per-machine packet streams),
    sharded round-robin across OCaml domains.  All of them feed and
    drink from one {!Cms_persist.Tstore} through {!Share.attach}.

    Robustness is the contract, not a feature:

    - {b Containment boundary.}  Each machine runs inside its own
      [try]-scope: an injected death, a stall-watchdog trip, a chaos
      crash, or a speculation-visibility assertion only ever takes
      down that machine's current attempt — never the shard, never the
      fleet.
    - {b Supervised restart-from-snapshot.}  Every machine checkpoints
      itself at commit boundaries ({!Cms_persist.Snapshot.arm}); on
      death the supervisor restores the last checkpoint, re-installs
      the journal suffix from the snapshot's event cursors, and
      charges a capped exponential backoff penalty (molecules of dead
      air — device time keeps moving while the machine is down).
    - {b Quarantine ladder.}  A machine that keeps dying past
      [max_restarts] is permanently quarantined with its final cause,
      and forensics-bundled when a directory is configured.  Nothing
      is ever silently wedged: a run that stops retiring instructions
      is reaped by the instruction budget and treated as a watchdog
      trip.
    - {b Divergence detection.}  A surviving machine must reproduce
      its schedule-independent mirror state — the RX kernel's EAX
      checksum and EBX syscall count, pure functions of its frame
      stream — and, when [mirror] is on, match an interpreter-only
      solo run of the same machine.  Any mismatch is a cross-machine
      divergence finding.

    Fleet engines translate synchronously
    ([background_translation = false]): the fleet's parallelism is its
    shard domains, and a 64-machine fleet must not spawn 64 worker
    domains. *)

module Journal = Cms_persist.Journal
module Snapshot = Cms_persist.Snapshot
module Tstore = Cms_persist.Tstore
module Forensics = Cms_persist.Forensics
module Suite = Workloads.Suite
module Progs_kernel = Workloads.Progs_kernel
module Chaos = Cms_robust.Chaos
module Fleetfault = Cms_robust.Fleetfault
module Srng = Cms_robust.Srng

exception Fault_injected of string
(** raised by the fault bombs {!Fleetfault} plants at dispatch
    boundaries; the supervisor's containment catches it *)

(* The shared store is verifier-gated on both sides: no verifier, no
   publication and no consumption.  Fleet entry points install the
   analysis pipeline's verifier if the host process has not. *)
let ensure_verifier () =
  if !Cms.Codegen.verify_hook = None then Cms_analysis.Pipeline.install ()

(* ------------------------------------------------------------------ *)
(* Machine specs                                                       *)
(* ------------------------------------------------------------------ *)

type spec = {
  s_id : int;
  s_workload : Suite.t;
  s_events : Journal.guest_event list;
  s_expected_eax : int;
  s_expected_ebx : int;
  s_faults : Fleetfault.fault list;
  s_chaos_seed : int option;
}

let spec_of_plan ~id (mp : Fleetfault.machine_plan) =
  let frames = mp.Fleetfault.mp_frames in
  let w = Progs_kernel.kernel_rx frames in
  let eax, ebx = Progs_kernel.rx_expected frames in
  let events =
    List.map2
      (fun at data -> Journal.Pkt { at; data })
      mp.Fleetfault.mp_ats frames
  in
  {
    s_id = id;
    s_workload = w;
    s_events = events;
    s_expected_eax = eax;
    s_expected_ebx = ebx;
    s_faults = mp.Fleetfault.mp_faults;
    s_chaos_seed = mp.Fleetfault.mp_chaos_seed;
  }

(** Fault-free RX traffic for [n] machines: the default [cmsfleet]
    workload.  Every machine serves the same number of frames (the
    kernels are byte-identical, so the store shares), with per-machine
    seeded contents and arrival times. *)
let traffic_specs ~seed ~machines =
  let profile =
    {
      Fleetfault.default_profile with
      Fleetfault.fault_share = 0;
      chaos_share = 0;
      attack_share = 0;
    }
  in
  let rng = Srng.create seed in
  let nframes =
    Srng.range rng
      (fst profile.Fleetfault.nframes)
      (snd profile.Fleetfault.nframes)
  in
  List.init machines (fun id ->
      spec_of_plan ~id (Fleetfault.gen_machine (Srng.split rng) profile ~nframes))

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)
(* ------------------------------------------------------------------ *)

type config = {
  shards : int;  (** OCaml domains; machines assigned round-robin *)
  checkpoint_every : int;  (** retired insns between snapshots *)
  max_restarts : int;  (** restarts before permanent quarantine *)
  backoff_base : int;  (** molecules charged at the first restart *)
  backoff_cap : int;  (** ladder ceiling *)
  mirror : bool;  (** check survivors against an interp-only solo run *)
  engine_cfg : Cms.Config.t;
  forensics : string option;  (** bundle directory for failures *)
}

(* Full production pipeline per machine, but synchronous translation:
   shard domains are the fleet's parallelism. *)
let engine_cfg =
  {
    Cms.Config.default with
    Cms.Config.verify_translations = true;
    closure_exec = true;
    chain_exits = true;
    background_translation = false;
  }

let default_config =
  {
    shards = 2;
    checkpoint_every = 20_000;
    max_restarts = 3;
    backoff_base = 1_000;
    backoff_cap = 64_000;
    mirror = true;
    engine_cfg;
    forensics = None;
  }

let interp_cfg =
  { Cms.Config.default with Cms.Config.translate_threshold = max_int }

(* ------------------------------------------------------------------ *)
(* One machine under supervision                                       *)
(* ------------------------------------------------------------------ *)

type status = Healthy | Restarted of int | Quarantined of string

let status_name = function
  | Healthy -> "healthy"
  | Restarted n -> Printf.sprintf "restarted(%d)" n
  | Quarantined c -> "quarantined: " ^ c

type report = {
  r_id : int;
  r_status : status;
  r_restarts : int;
  r_backoff : int;  (** final ladder position, in molecules *)
  r_kills : int;
  r_wedges : int;
  r_retired : int;
  r_eax : int;  (** -1 when quarantined *)
  r_ebx : int;
  r_spec_violations : int;
  r_divergence : string option;
  r_degraded : bool;  (** ran without a trusted shared store *)
  r_stats : Cms.Stats.t option;  (** final machine counters *)
}

let run_solo ~cfg (spec : spec) =
  let c = Suite.prepare ~cfg spec.s_workload in
  ignore (Journal.install_guest c spec.s_events : Journal.injector);
  let viol = ref false in
  c.Cms.Engine.on_rollback <-
    Some (fun () -> if Cms.Engine.speculation_visible c then viol := true);
  match Cms.run ~max_insns:spec.s_workload.Suite.max_insns c with
  | Cms.Engine.Halted ->
      Ok (Cms.gpr c X86.Regs.eax, Cms.gpr c X86.Regs.ebx, !viol)
  | Cms.Engine.Insn_limit -> Error "solo mirror hit the instruction limit"
  | exception ((Out_of_memory | Stack_overflow) as e) -> raise e
  | exception e -> Error (Printexc.to_string e)

let backoff_at (fcfg : config) n =
  if n <= 0 then 0
  else min fcfg.backoff_cap (fcfg.backoff_base * (1 lsl min 16 (n - 1)))

let run_machine ?store (fcfg : config) (spec : spec) : report =
  let label = Printf.sprintf "m%d" spec.s_id in
  let nf = List.length spec.s_faults in
  let fired = Array.make (max 1 nf) false in
  let kills = ref 0 and wedges = ref 0 in
  let spec_viol = ref 0 in
  let checkpoint : string option ref = ref None in
  (* Chaos scrambles codegen-relevant capacities, so it must shape the
     config *before* the first boot: snapshots embed the config and
     restarts inherit it, keeping every attempt self-consistent. *)
  let run_cfg =
    match spec.s_chaos_seed with
    | Some seed -> Chaos.scramble_cfg (Srng.create seed) fcfg.engine_cfg
    | None -> fcfg.engine_cfg
  in
  let forensics reason =
    match fcfg.forensics with
    | None -> ()
    | Some dir ->
        ignore
          (Forensics.dump ~dir ~name:label ~reason ?checkpoint:!checkpoint
             ~journal:
               {
                 Journal.label = spec.s_workload.Suite.name;
                 cfg = run_cfg;
                 guest = spec.s_events;
                 host = [];
                 arch_hex = None;
                 strict_hex = None;
               }
             ()
            : Forensics.dump)
  in
  let install_bombs c =
    let prev = c.Cms.Engine.on_boundary in
    c.Cms.Engine.on_boundary <-
      Some
        (fun retired ->
          (match prev with Some f -> f retired | None -> ());
          List.iteri
            (fun i f ->
              match f with
              | Fleetfault.Kill { at } when (not fired.(i)) && retired >= at ->
                  fired.(i) <- true;
                  incr kills;
                  raise (Fault_injected "injected kill")
              | Fleetfault.Wedge { at } when (not fired.(i)) && retired >= at
                ->
                  fired.(i) <- true;
                  incr wedges;
                  raise (Fault_injected "stall-watchdog trip")
              | Fleetfault.Permafault { at } when retired >= at ->
                  incr kills;
                  raise (Fault_injected "persistent fault")
              | _ -> ())
            spec.s_faults)
  in
  let finish c restarts =
    let eax = Cms.gpr c X86.Regs.eax in
    let ebx = Cms.gpr c X86.Regs.ebx in
    let divergence =
      if eax <> spec.s_expected_eax then
        Some
          (Printf.sprintf "checksum diverged: expected %#x, got %#x"
             spec.s_expected_eax eax)
      else if ebx <> spec.s_expected_ebx then
        Some
          (Printf.sprintf "syscall count diverged: expected %d, got %d"
             spec.s_expected_ebx ebx)
      else if not fcfg.mirror then None
      else
        match run_solo ~cfg:interp_cfg spec with
        | Error e -> Some ("solo mirror failed: " ^ e)
        | Ok (meax, mebx, mviol) ->
            if mviol then incr spec_viol;
            if meax <> eax || mebx <> ebx then
              Some
                (Printf.sprintf
                   "diverged from solo mirror: (%#x,%d) vs (%#x,%d)" eax ebx
                   meax mebx)
            else None
    in
    (match divergence with Some d -> forensics d | None -> ());
    {
      r_id = spec.s_id;
      r_status = (if restarts = 0 then Healthy else Restarted restarts);
      r_restarts = restarts;
      r_backoff = backoff_at fcfg restarts;
      r_kills = !kills;
      r_wedges = !wedges;
      r_retired = Cms.retired c;
      r_eax = eax;
      r_ebx = ebx;
      r_spec_violations = !spec_viol;
      r_divergence = divergence;
      r_degraded = store = None;
      r_stats = Some (Cms.stats c);
    }
  in
  let quarantine c_opt restarts cause =
    forensics cause;
    {
      r_id = spec.s_id;
      r_status = Quarantined cause;
      r_restarts = restarts;
      r_backoff = backoff_at fcfg restarts;
      r_kills = !kills;
      r_wedges = !wedges;
      r_retired = (match c_opt with Some c -> Cms.retired c | None -> 0);
      r_eax = -1;
      r_ebx = -1;
      r_spec_violations = !spec_viol;
      r_divergence = None;
      r_degraded = store = None;
      r_stats = Option.map Cms.stats c_opt;
    }
  in
  let rec attempt n =
    (* boot or restore — itself inside the containment boundary: a
       corrupt checkpoint must quarantine the machine, not the shard *)
    match
      match (!checkpoint, n) with
      | Some image, n when n > 0 ->
          let c, meta = Snapshot.restore image in
          let inj =
            Journal.install_guest ~irq_cursor:meta.Snapshot.irq_cursor
              ~sync_cursor:meta.Snapshot.sync_cursor c spec.s_events
          in
          (c, inj)
      | _ ->
          let c = Suite.prepare ~cfg:run_cfg spec.s_workload in
          (c, Journal.install_guest c spec.s_events)
    with
    | exception ((Out_of_memory | Stack_overflow) as e) -> raise e
    | exception e ->
        quarantine None n ("boot/restore failed: " ^ Printexc.to_string e)
    | c, inj ->
        let penalty = backoff_at fcfg n in
        if penalty > 0 then Cms.Stats.charge (Cms.stats c) penalty;
        (match store with Some st -> ignore (Share.attach c st : Share.t) | None -> ());
        (match spec.s_chaos_seed with
        | Some seed ->
            (* fresh chaos stream per attempt, deterministically derived *)
            Chaos.install (Chaos.create (Srng.create (seed + (1 + n)))) c
        | None -> ());
        c.Cms.Engine.on_rollback <-
          Some
            (fun () ->
              if Cms.Engine.speculation_visible c then begin
                incr spec_viol;
                failwith "speculative state visible after rollback"
              end);
        let ck =
          Snapshot.arm ~label ~injector:inj c ~every:fcfg.checkpoint_every
        in
        install_bombs c;
        let outcome =
          match Cms.run ~max_insns:spec.s_workload.Suite.max_insns c with
          | Cms.Engine.Halted -> Ok ()
          | Cms.Engine.Insn_limit ->
              incr wedges;
              Error "wedged: instruction budget exhausted (watchdog)"
          | exception ((Out_of_memory | Stack_overflow) as e) -> raise e
          | exception Fault_injected cause -> Error cause
          | exception e -> Error ("crashed: " ^ Printexc.to_string e)
        in
        (* keep the newest checkpoint across attempts *)
        (match ck.Snapshot.image with
        | Some img -> checkpoint := Some img
        | None -> ());
        (match outcome with
        | Ok () -> finish c n
        | Error cause ->
            if n >= fcfg.max_restarts then quarantine (Some c) n cause
            else attempt (n + 1))
  in
  attempt 0

(* ------------------------------------------------------------------ *)
(* The fleet                                                           *)
(* ------------------------------------------------------------------ *)

type totals = {
  t_machines : int;
  t_shards : int;
  t_healthy : int;
  t_restarted : int;
  t_quarantined : int;
  t_restarts : int;
  t_kills : int;
  t_wedges : int;
  t_max_backoff : int;
  t_divergences : int;
  t_spec_violations : int;
  t_retired : int;
  t_shard_retired : int array;
  t_degraded : int;
  t_store_hits : int;
  t_store_misses : int;
  t_store_rejects : int;
  t_store_quarantines : int;
  t_store_published : int;
  t_reports : report list;  (** sorted by machine id *)
}

let aggregate ~shards (reports : report list) : totals =
  let reports = List.sort (fun a b -> compare a.r_id b.r_id) reports in
  let shard_retired = Array.make shards 0 in
  let t =
    List.fold_left
      (fun t r ->
        let sh = r.r_id mod shards in
        shard_retired.(sh) <- shard_retired.(sh) + r.r_retired;
        let s k =
          match r.r_stats with None -> 0 | Some st -> k st
        in
        {
          t with
          t_healthy = (t.t_healthy + if r.r_status = Healthy then 1 else 0);
          t_restarted =
            (t.t_restarted
            + match r.r_status with Restarted _ -> 1 | _ -> 0);
          t_quarantined =
            (t.t_quarantined
            + match r.r_status with Quarantined _ -> 1 | _ -> 0);
          t_restarts = t.t_restarts + r.r_restarts;
          t_kills = t.t_kills + r.r_kills;
          t_wedges = t.t_wedges + r.r_wedges;
          t_max_backoff = max t.t_max_backoff r.r_backoff;
          t_divergences =
            (t.t_divergences + if r.r_divergence <> None then 1 else 0);
          t_spec_violations = t.t_spec_violations + r.r_spec_violations;
          t_retired = t.t_retired + r.r_retired;
          t_degraded = (t.t_degraded + if r.r_degraded then 1 else 0);
          t_store_hits = t.t_store_hits + s (fun st -> st.Cms.Stats.store_hits);
          t_store_misses =
            t.t_store_misses + s (fun st -> st.Cms.Stats.store_misses);
          t_store_rejects =
            t.t_store_rejects + s (fun st -> st.Cms.Stats.store_rejects);
          t_store_quarantines =
            t.t_store_quarantines
            + s (fun st -> st.Cms.Stats.store_quarantines);
          t_store_published =
            t.t_store_published + s (fun st -> st.Cms.Stats.store_published);
        })
      {
        t_machines = List.length reports;
        t_shards = shards;
        t_healthy = 0;
        t_restarted = 0;
        t_quarantined = 0;
        t_restarts = 0;
        t_kills = 0;
        t_wedges = 0;
        t_max_backoff = 0;
        t_divergences = 0;
        t_spec_violations = 0;
        t_retired = 0;
        t_shard_retired = shard_retired;
        t_degraded = 0;
        t_store_hits = 0;
        t_store_misses = 0;
        t_store_rejects = 0;
        t_store_quarantines = 0;
        t_store_published = 0;
        t_reports = reports;
      }
      reports
  in
  t

(** Run [specs] sharded round-robin across [fcfg.shards] domains.
    Each shard runs its machines sequentially; every machine is
    individually supervised by {!run_machine}. *)
let run ?store (fcfg : config) (specs : spec list) : totals =
  ensure_verifier ();
  let shards = max 1 (min fcfg.shards (max 1 (List.length specs))) in
  let buckets = Array.make shards [] in
  List.iteri
    (fun i s -> buckets.(i mod shards) <- s :: buckets.(i mod shards))
    specs;
  let buckets = Array.map List.rev buckets in
  let run_bucket b () = List.map (fun s -> run_machine ?store fcfg s) b in
  let reports =
    if shards = 1 then run_bucket buckets.(0) ()
    else
      Array.map (fun b -> Domain.spawn (run_bucket b)) buckets
      |> Array.to_list
      |> List.concat_map Domain.join
  in
  aggregate ~shards reports

let pp_totals ppf (t : totals) =
  Fmt.pf ppf
    "fleet: %d machines on %d shards: %d healthy, %d restarted (%d restarts, \
     max backoff %d molecules), %d quarantined@.\
     faults: %d kills, %d wedges; %d divergences, %d speculation violations; \
     %d degraded@.\
     store: hits=%d misses=%d rejects=%d quarantines=%d published=%d@.\
     retired: %d total, per shard [%s]"
    t.t_machines t.t_shards t.t_healthy t.t_restarted t.t_restarts
    t.t_max_backoff t.t_quarantined t.t_kills t.t_wedges t.t_divergences
    t.t_spec_violations t.t_degraded t.t_store_hits t.t_store_misses
    t.t_store_rejects t.t_store_quarantines t.t_store_published t.t_retired
    (String.concat ";"
       (Array.to_list (Array.map string_of_int t.t_shard_retired)))

(* ------------------------------------------------------------------ *)
(* Seeded fleet-chaos campaign                                         *)
(* ------------------------------------------------------------------ *)

(* Deterministic single-shard supervision for campaigns: store attacks
   interleave between machines at exact points, and the whole run is a
   pure function of the seed. *)
let campaign_config =
  {
    default_config with
    shards = 1;
    checkpoint_every = 8_000;
    max_restarts = 2;
    backoff_base = 500;
    backoff_cap = 8_000;
  }

type case_report = {
  c_idx : int;
  c_error : string option;
  c_machines : int;
  c_restarts : int;
  c_quarantined : int;
  c_kills : int;
  c_wedges : int;
  c_divergences : int;
  c_spec_violations : int;
  c_store_hits : int;
  c_store_rejects : int;
  c_store_quarantines : int;
  c_degraded : int;
  c_attacks : string list;  (** what the store attacks actually did *)
  c_outcome : string;  (** per-machine outcome line, fingerprint input *)
}

(* The journal codec sits in the loop on every case: each machine's
   guest-event stream is serialized and re-parsed before installation,
   exactly as a recorded case would be replayed from disk. *)
let roundtrip_events ~cfg (spec : spec) =
  let j =
    Journal.of_string
      (Journal.to_string
         {
           Journal.label = spec.s_workload.Suite.name;
           cfg;
           guest = spec.s_events;
           host = [];
           arch_hex = None;
           strict_hex = None;
         })
  in
  { spec with s_events = j.Journal.guest }

let run_case ?(fcfg = campaign_config) (plan : Fleetfault.plan) : case_report =
  ensure_verifier ();
  let arng = Srng.create (0x5eed + plan.Fleetfault.p_idx) in
  let store = Tstore.create () in
  let specs =
    List.mapi (fun id mp -> spec_of_plan ~id mp) plan.Fleetfault.p_machines
    |> List.map (roundtrip_events ~cfg:fcfg.engine_cfg)
  in
  let degraded = ref false in
  let torn_accepted = ref false in
  let attacks = ref [] in
  let reports =
    List.mapi
      (fun i spec ->
        let store_opt = if !degraded then None else Some store in
        let r = run_machine ?store:store_opt fcfg spec in
        List.iter
          (fun (after, atk) ->
            if after = i then
              match Fleetfault.apply arng store atk with
              | Fleetfault.Applied d ->
                  attacks := d :: !attacks;
                  if atk = Fleetfault.Truncate_image then degraded := true
              | Fleetfault.Nothing -> ()
              | Fleetfault.Torn_accepted ->
                  attacks := "truncate-image ACCEPTED" :: !attacks;
                  torn_accepted := true)
          plan.Fleetfault.p_attacks;
        r)
      specs
  in
  let t = aggregate ~shards:1 reports in
  let has_perma (s : spec) =
    List.exists
      (function Fleetfault.Permafault _ -> true | _ -> false)
      s.s_faults
  in
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  if !torn_accepted then err "truncated store image was accepted";
  if t.t_divergences > 0 then err "%d cross-machine divergences" t.t_divergences;
  if t.t_spec_violations > 0 then
    err "%d speculation-visibility violations" t.t_spec_violations;
  List.iter2
    (fun (spec : spec) (r : report) ->
      match r.r_status with
      | Quarantined cause when not (has_perma spec) ->
          err "machine %d quarantined without a persistent fault: %s" r.r_id
            cause
      | _ -> ())
    specs reports;
  let outcome =
    String.concat "|"
      (List.map
         (fun r ->
           Printf.sprintf "%d:%s:%d:%x:%d:%b" r.r_id (status_name r.r_status)
             r.r_restarts r.r_eax r.r_ebx r.r_degraded)
         reports)
  in
  {
    c_idx = plan.Fleetfault.p_idx;
    c_error =
      (match List.rev !errors with
      | [] -> None
      | es -> Some (String.concat "; " es));
    c_machines = t.t_machines;
    c_restarts = t.t_restarts;
    c_quarantined = t.t_quarantined;
    c_kills = t.t_kills;
    c_wedges = t.t_wedges;
    c_divergences = t.t_divergences;
    c_spec_violations = t.t_spec_violations;
    c_store_hits = t.t_store_hits;
    c_store_rejects = t.t_store_rejects;
    c_store_quarantines = t.t_store_quarantines;
    c_degraded = t.t_degraded;
    c_attacks = List.rev !attacks;
    c_outcome = outcome;
  }

type campaign_totals = {
  mutable cases : int;
  mutable passed : int;
  mutable failed : int;
  mutable machines : int;
  mutable restarts : int;
  mutable quarantined : int;
  mutable kills : int;
  mutable wedges : int;
  mutable divergences : int;
  mutable spec_violations : int;
  mutable store_hits : int;
  mutable store_rejects : int;
  mutable store_quarantines : int;
  mutable degraded : int;
  mutable attacks : int;
  mutable failures : (int * string) list;  (** newest first, capped *)
  mutable outcome_acc : string list;  (** newest first *)
}

(** Campaign fingerprint: MD5 over every case's per-machine outcome
    lines — two campaigns from the same seed must produce identical
    fingerprints (RNG-free, schedule-independent replay). *)
let fingerprint (t : campaign_totals) =
  Digest.to_hex (Digest.string (String.concat "\n" (List.rev t.outcome_acc)))

let campaign ?(profile = Fleetfault.default_profile) ?(fcfg = campaign_config)
    ?on_case ~seed ~cases () =
  let rng = Srng.create seed in
  let t =
    {
      cases = 0;
      passed = 0;
      failed = 0;
      machines = 0;
      restarts = 0;
      quarantined = 0;
      kills = 0;
      wedges = 0;
      divergences = 0;
      spec_violations = 0;
      store_hits = 0;
      store_rejects = 0;
      store_quarantines = 0;
      degraded = 0;
      attacks = 0;
      failures = [];
      outcome_acc = [];
    }
  in
  for idx = 0 to cases - 1 do
    let plan = Fleetfault.gen_plan (Srng.split rng) profile idx in
    let r = run_case ~fcfg plan in
    t.cases <- t.cases + 1;
    (match r.c_error with
    | None -> t.passed <- t.passed + 1
    | Some e ->
        t.failed <- t.failed + 1;
        if List.length t.failures < 20 then t.failures <- (idx, e) :: t.failures);
    t.machines <- t.machines + r.c_machines;
    t.restarts <- t.restarts + r.c_restarts;
    t.quarantined <- t.quarantined + r.c_quarantined;
    t.kills <- t.kills + r.c_kills;
    t.wedges <- t.wedges + r.c_wedges;
    t.divergences <- t.divergences + r.c_divergences;
    t.spec_violations <- t.spec_violations + r.c_spec_violations;
    t.store_hits <- t.store_hits + r.c_store_hits;
    t.store_rejects <- t.store_rejects + r.c_store_rejects;
    t.store_quarantines <- t.store_quarantines + r.c_store_quarantines;
    t.degraded <- t.degraded + r.c_degraded;
    t.attacks <- t.attacks + List.length r.c_attacks;
    t.outcome_acc <- r.c_outcome :: t.outcome_acc;
    match on_case with Some f -> f r | None -> ()
  done;
  t

let pp_campaign ppf (t : campaign_totals) =
  Fmt.pf ppf
    "fleet campaign: %d cases, %d passed, %d failed@.\
     machines: %d total, %d restarts, %d quarantined, %d kills, %d wedges, \
     %d degraded@.\
     checks: %d divergences, %d speculation violations@.\
     store: %d hits, %d rejects, %d quarantines, %d attacks landed@.\
     fingerprint: %s"
    t.cases t.passed t.failed t.machines t.restarts t.quarantined t.kills
    t.wedges t.degraded t.divergences t.spec_violations t.store_hits
    t.store_rejects t.store_quarantines t.attacks (fingerprint t)
