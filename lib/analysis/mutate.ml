(** Seeded mutations: deliberately corrupt a correct translation in a
    way that violates exactly one verifier invariant, so the self-tests
    can assert {!Tverify} flags each rule.  [apply] returns [None] when
    the code has no applicable mutation site (e.g. no alias guards in a
    non-self-checking translation). *)

module A = Vliw.Atom

type t =
  | Drop_commit  (** nop out the commit before an exit *)
  | Clear_check  (** erase a store's guard-slot check mask *)
  | Barrier_hoist  (** place an atom after a loop back-edge branch *)
  | Clobber_guest  (** retarget a load at a live guest register *)
  | Sbuf_overflow  (** exceed the gated store buffer between commits *)
  | Slot_out_of_range  (** arm an alias slot beyond the hardware *)
  | Double_arm  (** arm the same alias slot twice without a commit *)
  | Unspec_protected  (** clear the spec bit on a protected load *)
  | Unallocated_vreg  (** leak a virtual register past regalloc *)

let all =
  [
    Drop_commit; Clear_check; Barrier_hoist; Clobber_guest; Sbuf_overflow;
    Slot_out_of_range; Double_arm; Unspec_protected; Unallocated_vreg;
  ]

let name = function
  | Drop_commit -> "drop-commit"
  | Clear_check -> "clear-check"
  | Barrier_hoist -> "barrier-hoist"
  | Clobber_guest -> "clobber-guest"
  | Sbuf_overflow -> "sbuf-overflow"
  | Slot_out_of_range -> "slot-out-of-range"
  | Double_arm -> "double-arm"
  | Unspec_protected -> "unspec-protected"
  | Unallocated_vreg -> "unallocated-vreg"

(** The rule id each mutation must trip. *)
let expected_rule = function
  | Drop_commit -> "exit-uncommitted"
  | Clear_check -> "store-missing-check"
  | Barrier_hoist -> "barrier-hoist"
  | Clobber_guest -> "guest-clobber"
  | Sbuf_overflow -> "sbuf-overflow"
  | Slot_out_of_range -> "alias-slot-range"
  | Double_arm -> "alias-double-arm"
  | Unspec_protected -> "spec-missing"
  | Unallocated_vreg -> "regalloc-range"

let copy (code : Vliw.Code.t) =
  {
    Vliw.Code.molecules = Array.map Array.copy code.Vliw.Code.molecules;
    exits =
      Array.map
        (fun (e : Vliw.Code.exit) -> { e with Vliw.Code.chain = e.Vliw.Code.chain })
        code.Vliw.Code.exits;
  }

let is_backward i = function
  | A.Br { target } | A.BrCond { target; _ } | A.BrCmp { target; _ } ->
      target <= i
  | _ -> false

(* Insert [extra] molecules at position [pos], shifting every branch
   target at or beyond the insertion point. *)
let insert_molecules (code : Vliw.Code.t) ~pos extra =
  let n = List.length extra in
  let shift t = if t >= pos then t + n else t in
  let fixed =
    Array.map
      (fun m ->
        Array.map
          (fun a ->
            match a with
            | A.Br { target } -> A.Br { target = shift target }
            | A.BrCond b -> A.BrCond { b with target = shift b.target }
            | A.BrCmp b -> A.BrCmp { b with target = shift b.target }
            | a -> a)
          m)
      code.Vliw.Code.molecules
  in
  let before = Array.sub fixed 0 pos in
  let after = Array.sub fixed pos (Array.length fixed - pos) in
  {
    code with
    Vliw.Code.molecules =
      Array.concat [ before; Array.of_list extra; after ];
  }

(* Find the first atom satisfying [p]; returns (molecule, slot). *)
let find_atom (code : Vliw.Code.t) p =
  let found = ref None in
  Array.iteri
    (fun i m ->
      Array.iteri
        (fun k a -> if !found = None && p i a then found := Some (i, k))
        m)
    code.Vliw.Code.molecules;
  !found

let apply ~(cfg : Cms.Config.t) (code : Vliw.Code.t) (m : t) :
    Vliw.Code.t option =
  let code = copy code in
  let mols = code.Vliw.Code.molecules in
  match m with
  | Drop_commit ->
      (* nop a commit whose next branch-class atom (in layout order) is
         an exit, so the walk reaches that exit with dirty state *)
      let target = ref None in
      let pending = ref None in
      Array.iteri
        (fun i mol ->
          Array.iteri
            (fun k a ->
              if !target = None then
                match a with
                | A.Commit _ -> pending := Some (i, k)
                | A.Exit _ -> if !pending <> None then target := !pending
                | A.Br _ | A.BrCond _ | A.BrCmp _ -> pending := None
                | _ -> ())
            mol)
        mols;
      Option.map
        (fun (i, k) ->
          mols.(i).(k) <- A.Nop;
          code)
        !target
  | Clear_check ->
      (* erase the guard checks of a store while a range guard is armed *)
      let armed = ref false in
      let site = ref None in
      Array.iteri
        (fun i mol ->
          Array.iteri
            (fun k a ->
              if !site = None then
                match a with
                | A.ArmRange _ -> armed := true
                | A.Commit _ -> armed := false
                | A.Store _ when !armed -> site := Some (i, k)
                | _ -> ())
            mol)
        mols;
      Option.map
        (fun (i, k) ->
          (match mols.(i).(k) with
          | A.Store s -> mols.(i).(k) <- A.Store { s with check = 0 }
          | _ -> assert false);
          code)
        !site
  | Barrier_hoist ->
      find_atom code is_backward
      |> Option.map (fun (i, _) ->
             mols.(i) <-
               Array.append mols.(i)
                 [| A.MovI { rd = Vliw.Abi.tmp_base; imm = 0 } |];
             code)
  | Clobber_guest ->
      find_atom code (fun _ a -> match a with A.Load _ -> true | _ -> false)
      |> Option.map (fun (i, k) ->
             (match mols.(i).(k) with
             | A.Load l -> mols.(i).(k) <- A.Load { l with rd = 0 }
             | _ -> assert false);
             code)
  | Sbuf_overflow ->
      (* flood the gated store buffer before the first commit *)
      let store =
        [| A.Store { rs = A.I 0; base = 0; disp = 0; size = 4; spec = false; check = 0 } |]
      in
      let extra =
        List.init (cfg.Cms.Config.sbuf_capacity + 1) (fun _ -> store)
      in
      Some (insert_molecules code ~pos:0 extra)
  | Slot_out_of_range -> (
      let bad = cfg.Cms.Config.alias_slots in
      match
        find_atom code (fun _ a ->
            match a with A.ArmRange _ -> true | _ -> false)
      with
      | Some (i, k) ->
          (match mols.(i).(k) with
          | A.ArmRange ar -> mols.(i).(k) <- A.ArmRange { ar with slot = bad }
          | _ -> assert false);
          Some code
      | None ->
          find_atom code (fun _ a ->
              match a with A.Load { protect = Some _; _ } -> true | _ -> false)
          |> Option.map (fun (i, k) ->
                 (match mols.(i).(k) with
                 | A.Load l -> mols.(i).(k) <- A.Load { l with protect = Some bad }
                 | _ -> assert false);
                 code))
  | Double_arm -> (
      match
        find_atom code (fun _ a ->
            match a with
            | A.ArmRange _ | A.Load { protect = Some _; _ } -> true
            | _ -> false)
      with
      | Some (i, k) ->
          Some (insert_molecules code ~pos:(i + 1) [ [| mols.(i).(k) |] ])
      | None -> None)
  | Unspec_protected ->
      find_atom code (fun _ a ->
          match a with
          | A.Load { protect = Some _; spec = true; _ } -> true
          | _ -> false)
      |> Option.map (fun (i, k) ->
             (match mols.(i).(k) with
             | A.Load l -> mols.(i).(k) <- A.Load { l with spec = false }
             | _ -> assert false);
             code)
  | Unallocated_vreg ->
      find_atom code (fun _ a -> match a with A.MovI _ -> true | _ -> false)
      |> Option.map (fun (i, k) ->
             (match mols.(i).(k) with
             | A.MovI mv -> mols.(i).(k) <- A.MovI { mv with rd = Cms.Ir.vreg_base + 1 }
             | _ -> assert false);
             code)
