(** Static whole-image code discovery (recursive descent).

    Starting from the entry point, decode with {!X86.Decode} and follow
    every control edge that can be resolved statically: fallthrough,
    direct jumps, both arms of conditional branches, direct call targets
    and their return points.  Everything the walk cannot prove is
    *classified*, never guessed:

    - indirect jumps/calls and [int] vectors defer their targets to the
      dynamic tier (a {!site} records each, with the reason);
    - a decode fault ends the path and defers the address;
    - pages that a statically-resolvable store provably writes are
      demoted wholesale to dynamic-only ([smc_pages]) — pre-minting
      translations for write-reachable code would just bounce off the
      runtime SMC machinery, and stores through registers are counted
      ([blind_stores]) so reports stay honest about what the analysis
      could not see.  Runtime SMC invalidation remains the safety net
      for everything the static scan misses.

    The walk is deterministic (FIFO worklist, sorted outputs), so the
    same image always yields the same discovery — a property the AOT
    image round-trip tests pin. *)

type reason =
  | Indirect_jump  (** [jmp r/m]: target unresolvable *)
  | Indirect_call  (** [call r/m]: callee unresolvable *)
  | Int_vector  (** software interrupt: handler found via the IDT *)
  | Decode_fault  (** undecodable bytes (or a fetch outside the image) *)
  | Smc_page  (** leader on a page demoted as write-reachable *)

let reason_name = function
  | Indirect_jump -> "indirect-jump"
  | Indirect_call -> "indirect-call"
  | Int_vector -> "int-vector"
  | Decode_fault -> "decode-fault"
  | Smc_page -> "smc-page"

type site = { addr : int; why : reason }

(** One straight-line decode run: [start, stop) with [insns]
    instructions.  Runs from distinct leaders may overlap (overlapping
    decode starts are kept, not reconciled — the tcache tolerates
    overlapping translations). *)
type block = { start : int; stop : int; insns : int }

type t = {
  entry : int;
  leaders : int list;  (** every discovered region entry, sorted *)
  blocks : block list;  (** sorted by start address *)
  deferred : site list;  (** dynamic-only sites, sorted by address *)
  code_pages : int list;  (** ppns holding any discovered code byte *)
  smc_pages : int list;  (** pages demoted as write-reachable *)
  bytes_static : int;  (** discovered code bytes off [smc_pages] *)
  bytes_deferred : int;  (** discovered code bytes on [smc_pages] *)
  insn_count : int;  (** distinct decoded instruction starts *)
  blind_stores : int;
      (** stores through registers the scan could not resolve *)
  truncated : bool;  (** the instruction budget cut the walk short *)
}

(* ------------------------------------------------------------------ *)
(* Store-target resolution (conservative SMC classification)           *)
(* ------------------------------------------------------------------ *)

(* The memory operand an instruction writes, if any. *)
let store_dest (i : X86.Insn.t) : (X86.Insn.mem * X86.Insn.size) option =
  let open X86.Insn in
  let dest_of_ops sz = function
    | RM_R (M m, _) | RM_I (M m, _) -> Some (m, sz)
    | RM_R (R _, _) | RM_I (R _, _) | R_RM _ -> None
  in
  match i with
  | Arith (Cmp, _, _) | Test _ -> None
  | Arith (_, sz, ops) -> dest_of_ops sz ops
  | Mov (sz, ops) -> dest_of_ops sz ops
  | Xchg (sz, M m, _) -> Some (m, sz)
  | Inc (sz, M m) | Dec (sz, M m) | Not (sz, M m) | Neg (sz, M m) ->
      Some (m, sz)
  | Shift (_, sz, M m, _) -> Some (m, sz)
  | Setcc (_, M m) -> Some (m, S8)
  | Pop (M m) -> Some (m, S32)
  | _ -> None

(* Writes whose target is not statically resolvable: through-register
   memory destinations, string stores, and the stack engine. *)
let is_blind_store (i : X86.Insn.t) =
  let open X86.Insn in
  match store_dest i with
  | Some ({ base = Some _; _ }, _) | Some ({ index = Some _; _ }, _) -> true
  | Some _ -> false
  | None -> (
      match i with
      | Strop { op = Stos; _ } | Strop { op = Movs; _ } -> true
      | Push _ | Call _ | CallInd _ -> true  (* stack stores *)
      | _ -> false)

(* Absolute [lo, hi) range of a statically-resolved store, if any. *)
let resolved_store_range (i : X86.Insn.t) =
  match store_dest i with
  | Some ({ X86.Insn.base = None; index = None; disp }, sz) ->
      let len = match sz with X86.Insn.S8 -> 1 | S32 -> 4 in
      Some (disp, disp + len)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* The walk                                                            *)
(* ------------------------------------------------------------------ *)

let page ppn_addr = ppn_addr lsr Machine.Mmu.page_shift

(** Discover code reachable from [entry].  [fetch] reads one image
    byte and raises {!X86.Exn.Fault} outside the image; [max_insns]
    bounds the walk (a garbage image cannot run it away). *)
let discover ?(max_insns = 65536) ~fetch ~entry () =
  let visited : (int, X86.Insn.t * int) Hashtbl.t =
    Hashtbl.create 1024
  in
  let leaders : (int, unit) Hashtbl.t = Hashtbl.create 256 in
  let deferred : (int, reason) Hashtbl.t = Hashtbl.create 32 in
  let blocks = ref [] in
  let queue = Queue.create () in
  let truncated = ref false in
  let defer a why =
    if not (Hashtbl.mem deferred a) then Hashtbl.add deferred a why
  in
  let add_leader a =
    let a = a land 0xffffffff in
    if not (Hashtbl.mem leaders a) then begin
      Hashtbl.add leaders a ();
      Queue.add a queue
    end
  in
  add_leader entry;
  while not (Queue.is_empty queue) do
    let start = Queue.pop queue in
    (* Decode linearly until an unconditional transfer, a revisit of an
       already-decoded start, or the budget.  Conditional branches and
       direct calls enqueue their targets as fresh leaders. *)
    let rec walk pc ninsns =
      if Hashtbl.mem visited pc then pc  (* falls into discovered code *)
      else if Hashtbl.length visited >= max_insns then begin
        truncated := true;
        pc
      end
      else
        match X86.Decode.decode ~fetch pc with
        | exception X86.Exn.Fault _ ->
            defer pc Decode_fault;
            pc
        | f -> (
            let insn = f.X86.Decode.insn in
            Hashtbl.add visited pc (insn, f.X86.Decode.len);
            let next = (pc + f.X86.Decode.len) land 0xffffffff in
            match insn with
            | X86.Insn.Jcc (_, target) ->
                add_leader target;
                walk next (ninsns + 1)
            | X86.Insn.Jmp target ->
                add_leader target;
                next
            | X86.Insn.Call target ->
                add_leader target;
                (* the return point is reached when the callee returns *)
                add_leader next;
                next
            | X86.Insn.CallInd _ ->
                defer pc Indirect_call;
                add_leader next;
                next
            | X86.Insn.JmpInd _ ->
                defer pc Indirect_jump;
                next
            | X86.Insn.Int _ | X86.Insn.Int3 ->
                (* handler via the IDT: dynamic-only; execution resumes
                   after the int on iret *)
                defer pc Int_vector;
                add_leader next;
                next
            | X86.Insn.Ret _ | X86.Insn.Iret ->
                (* return targets of discovered calls are already
                   leaders; anything else (a pushed computed address)
                   is the dynamic tier's problem *)
                next
            | X86.Insn.Hlt -> next
            | _ -> walk next (ninsns + 1))
    in
    let stop = walk start 0 in
    if stop > start then
      blocks := { start; stop; insns = 0 } :: !blocks
  done;
  (* Per-instruction byte spans, and the pages they land on. *)
  let code_pages = Hashtbl.create 16 in
  Hashtbl.iter
    (fun a (_, len) ->
      for p = page a to page (a + len - 1) do
        Hashtbl.replace code_pages p ()
      done)
    visited;
  (* Conservative SMC classification: a store whose absolute target is
     statically known and overlaps a discovered code page demotes that
     page to dynamic-only. *)
  let smc_pages = Hashtbl.create 4 in
  let blind = ref 0 in
  Hashtbl.iter
    (fun _ (insn, _) ->
      if is_blind_store insn then incr blind;
      match resolved_store_range insn with
      | Some (lo, hi) ->
          for p = page lo to page (hi - 1) do
            if Hashtbl.mem code_pages p then Hashtbl.replace smc_pages p ()
          done
      | None -> ())
    visited;
  let on_smc_page a len =
    let rec go p = p <= page (a + len - 1) && (Hashtbl.mem smc_pages p || go (p + 1)) in
    go (page a)
  in
  let bytes_static = ref 0 and bytes_deferred = ref 0 in
  Hashtbl.iter
    (fun a (_, len) ->
      if on_smc_page a len then bytes_deferred := !bytes_deferred + len
      else bytes_static := !bytes_static + len)
    visited;
  (* Leaders landing on demoted pages are themselves deferred. *)
  Hashtbl.iter
    (fun a () -> if Hashtbl.mem smc_pages (page a) then defer a Smc_page)
    leaders;
  let sorted_keys tbl =
    Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort compare
  in
  let blocks =
    List.sort compare !blocks
    |> List.map (fun b ->
           let n = ref 0 in
           Hashtbl.iter
             (fun a _ -> if a >= b.start && a < b.stop then incr n)
             visited;
           { b with insns = !n })
  in
  {
    entry;
    leaders = sorted_keys leaders;
    blocks;
    deferred =
      Hashtbl.fold (fun addr why acc -> { addr; why } :: acc) deferred []
      |> List.sort compare;
    code_pages = sorted_keys code_pages;
    smc_pages = sorted_keys smc_pages;
    bytes_static = !bytes_static;
    bytes_deferred = !bytes_deferred;
    insn_count = Hashtbl.length visited;
    blind_stores = !blind;
    truncated = !truncated;
  }

(** Leaders the AOT pass may pre-translate: not on a write-reachable
    page (the rest stay dynamic-only by construction). *)
let static_leaders t =
  let smc = t.smc_pages in
  List.filter (fun a -> not (List.mem (page a) smc)) t.leaders

let pp fmt t =
  Fmt.pf fmt
    "discovery: entry=%#x leaders=%d blocks=%d insns=%d bytes[static=%d \
     deferred=%d] pages[code=%d smc=%d] deferred-sites=%d blind-stores=%d%s"
    t.entry (List.length t.leaders) (List.length t.blocks) t.insn_count
    t.bytes_static t.bytes_deferred
    (List.length t.code_pages) (List.length t.smc_pages)
    (List.length t.deferred) t.blind_stores
    (if t.truncated then " (truncated)" else "")
