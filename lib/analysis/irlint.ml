(** Static IR lint.

    Runs twice per translation — after {!Cms.Lower} and again after
    {!Cms.Opt} — over the linear item list, before self-check injection
    (self-check loads legitimately carry no memory sequence number).
    All checks are linear-order checks: lowering emits traces, so
    program order and layout order coincide at this stage. *)

module A = Vliw.Atom
module I = Cms.Ir

let lint ~stage ~entry ~(ir : I.t) (items : I.item list) : Diag.t list =
  let diags = ref [] in
  let add rule msg = diags := Diag.v ~rule ~entry ~stage msg :: !diags in
  let nexits = Array.length (I.exits ir) in
  (* label definitions (collected up front: forward branches are fine) *)
  let defined : (I.label, unit) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (function
      | I.Lbl l ->
          if Hashtbl.mem defined l then
            add "ir-label" (Fmt.str "label L%d defined twice" l)
          else Hashtbl.add defined l ()
      | I.Op _ -> ())
    items;
  (* linear walk *)
  let vdef : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let seen_lbl : (I.label, unit) Hashtbl.t = Hashtbl.create 16 in
  let last_seq = ref (-1) in
  (* atoms emitted since the last label, most recent first *)
  let seg = ref [] in
  List.iter
    (fun item ->
      match item with
      | I.Lbl l ->
          Hashtbl.replace seen_lbl l ();
          seg := []
      | I.Op o ->
          let a = o.I.atom in
          List.iter
            (fun r ->
              if I.is_vreg r && not (Hashtbl.mem vdef r) then
                add "ir-vreg-undef"
                  (Fmt.str "v%d used before any definition" (r - I.vreg_base)))
            (A.uses a);
          List.iter
            (fun r -> if I.is_vreg r then Hashtbl.replace vdef r ())
            (A.defs a);
          (* memory ops keep their program-order sequence numbers; the
             optimizer may delete mem ops (or demote them to moves) but
             never reorders them, so the survivors stay monotone *)
          if A.is_mem a then begin
            if o.I.mem_seq < 0 then
              add "ir-memseq" "memory op without a sequence number"
            else if o.I.mem_seq <= !last_seq then
              add "ir-memseq"
                (Fmt.str "mem_seq %d after %d: program order lost" o.I.mem_seq
                   !last_seq)
            else last_seq := o.I.mem_seq
          end;
          (match a with
          | A.Br { target } | A.BrCond { target; _ } | A.BrCmp { target; _ } ->
              if not (Hashtbl.mem defined target) then
                add "ir-label" (Fmt.str "branch to undefined label L%d" target);
              if Hashtbl.mem seen_lbl target then begin
                (* loop back-edge: the scheduler must not hoist anything
                   above it, so it either carries the barrier flag or
                   immediately follows a commit (back-edge stubs commit
                   right before branching, which serializes just as
                   hard) *)
                let after_commit =
                  match !seg with A.Commit _ :: _ -> true | _ -> false
                in
                if not (o.I.barrier || after_commit) then
                  add "ir-backedge-barrier"
                    (Fmt.str
                       "back-edge to L%d has no barrier flag and no \
                        preceding commit"
                       target)
              end
          | A.Exit e ->
              if e < 0 || e >= nexits then
                add "ir-label" (Fmt.str "exit #%d outside table of %d" e nexits);
              (* every exit stub must write EIP and commit it before
                 leaving: scanning back from the exit we must meet a
                 commit first, then a def of the EIP register *)
              let rec scan saw_commit = function
                | [] -> false
                | at :: rest ->
                    if List.mem Vliw.Abi.eip (A.defs at) then saw_commit
                    else
                      scan
                        (saw_commit
                        || match at with A.Commit _ -> true | _ -> false)
                        rest
              in
              if not (scan false !seg) then
                add "ir-exit-eip"
                  (Fmt.str "exit #%d without a committed EIP update" e)
          | _ -> ());
          seg := a :: !seg)
    items;
  List.rev !diags
