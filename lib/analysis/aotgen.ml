(** The ahead-of-time translation builder: static discovery → verified
    pre-translation → persistent image.

    [build] walks the image with {!Discover}, then feeds every static
    leader through the *production* translator pipeline
    ({!Cms.Region.select} + {!Cms.Codegen.compile}) under the rejecting
    verifier — verification is mandatory here, regardless of the ambient
    hook or config: a region the verifier refuses is demoted to
    dynamic-only and recorded, never silently shipped.  The result is a
    {!Cms_persist.Aot} image keyed by code-page digests.

    Build-time regions differ from warm dynamic ones in exactly one
    way: the profile is empty, so conditional branches are traced
    fallthrough-biased (no taken-bias data) and no instruction is known
    to touch MMIO.  Both are safe — a pre-minted region that turns out
    to do MMIO faults [Mmio_spec] on first execution and the runtime
    adapts exactly as it does for any cold translation. *)

type demotion = {
  leader : int;
  why : string;  (** verifier diagnostic or selection failure *)
}

type build_result = {
  image : Cms_persist.Aot.t;
  discovery : Discover.t;
  minted : int;
  demotions : demotion list;
}

(* Translate one leader; [None] when nothing translatable starts there
   (interp-only first instruction, or the region kept being Too_big). *)
let translate_leader ~cfg ~mem ~profile leader =
  let rec attempt (policy : Cms.Policy.t) =
    match Cms.Region.select ~mem ~profile ~policy leader with
    | None -> None
    | Some region -> (
        match Cms.Codegen.compile ~cfg ~policy ~mem region with
        | compiled -> Some (policy, region, compiled)
        | exception Cms.Codegen.Too_big ->
            if policy.Cms.Policy.max_insns <= 4 then None
            else
              attempt
                { policy with Cms.Policy.max_insns = policy.Cms.Policy.max_insns / 2 })
  in
  attempt (Cms.Policy.default cfg)

(** Build an AOT image for the booted-but-unrun machine [c], starting
    discovery at [entry].  The machine is not executed — only its
    memory is read. *)
let build ?(max_insns = 65536) ~label (c : Cms.t) ~entry =
  let mem = Cms.mem c in
  let phys = mem.Machine.Mem.phys in
  let fetch a =
    if a >= 0 && a < phys.Machine.Phys.size then Machine.Phys.read8 phys a
    else raise (X86.Exn.Fault (X86.Exn.GP 0))
  in
  let d = Discover.discover ~max_insns ~fetch ~entry () in
  (* compile with verification forced on; the hook is the rejecting one
     for the duration of the build *)
  let cfg = { c.Cms.Engine.cfg with Cms.Config.verify_translations = true } in
  let profile = Cms.Profile.create () in
  let smc_pages = d.Discover.smc_pages in
  let crosses_smc (region : Cms.Region.t) =
    List.exists
      (fun ppn -> List.mem ppn smc_pages)
      (Cms.Tcache.pages_of_ranges region.Cms.Region.src_ranges)
  in
  let minted = ref [] in
  let demotions = ref [] in
  let demoted_verify = ref 0 and demoted_select = ref 0 in
  Pipeline.with_reject (fun () ->
      List.iter
        (fun leader ->
          match translate_leader ~cfg ~mem ~profile leader with
          | None -> incr demoted_select
          | exception Cms.Codegen.Verify_failed why ->
              incr demoted_verify;
              demotions := { leader; why } :: !demotions
          | exception Out_of_memory -> raise Out_of_memory
          | exception Stack_overflow -> raise Stack_overflow
          | exception e ->
              (* translator containment, AOT flavour: a crash on one
                 region demotes that region, not the build *)
              incr demoted_verify;
              demotions := { leader; why = Printexc.to_string e } :: !demotions
          | Some (policy, region, compiled) ->
              if crosses_smc region then
                (* grew onto a write-reachable page: dynamic-only *)
                demotions :=
                  { leader; why = "region crosses a write-reachable page" }
                  :: !demotions
              else
                let snapshot =
                  match compiled.Cms.Codegen.snapshot with
                  | Some s -> s
                  | None -> Cms.Codegen.take_snapshot mem region
                in
                minted :=
                  {
                    Cms_persist.Aot.tentry = leader;
                    policy;
                    cont = region.Cms.Region.cont;
                    src_ranges = region.Cms.Region.src_ranges;
                    insns =
                      Array.to_list region.Cms.Region.insns
                      |> List.map (fun (i : Cms.Region.insn_info) ->
                             {
                               Cms_persist.Aot.addr = i.Cms.Region.addr;
                               len = i.Cms.Region.len;
                               follow =
                                 (match i.Cms.Region.follow with
                                 | Cms.Region.FNext -> 0
                                 | Cms.Region.FTarget -> 1
                                 | Cms.Region.FEnd -> 2);
                               loops = i.Cms.Region.loops;
                               imm32_addr = i.Cms.Region.imm32_addr;
                             });
                    snapshot;
                    code = compiled.Cms.Codegen.code;
                  }
                  :: !minted)
        (Discover.static_leaders d));
  let minted = List.rev !minted in
  (* digest every page any minted translation reads its source from *)
  let pages =
    List.concat_map
      (fun (t : Cms_persist.Aot.tran) ->
        Cms.Tcache.pages_of_ranges t.Cms_persist.Aot.src_ranges)
      minted
    |> List.sort_uniq compare
    |> List.filter_map (fun ppn ->
           Option.map
             (fun dg -> (ppn, dg))
             (Cms_persist.Aot.page_digest phys ppn))
  in
  let meta =
    {
      Cms_persist.Aot.label;
      entry;
      leaders = List.length d.Discover.leaders;
      insn_count = d.Discover.insn_count;
      bytes_static = d.Discover.bytes_static;
      bytes_deferred = d.Discover.bytes_deferred;
      deferred =
        List.map
          (fun (s : Discover.site) ->
            (s.Discover.addr, Discover.reason_name s.Discover.why))
          d.Discover.deferred;
      demoted_verify = !demoted_verify;
      demoted_select = !demoted_select;
      blind_stores = d.Discover.blind_stores;
      truncated = d.Discover.truncated;
    }
  in
  {
    image = { Cms_persist.Aot.meta; cfg; pages; trans = minted };
    discovery = d;
    minted = List.length minted;
    demotions = List.rev !demotions;
  }

let pp_result fmt r =
  Fmt.pf fmt "%a@.aot build: %d translations minted, %d demoted \
              (verify=%d select=%d)"
    Discover.pp r.discovery r.minted
    (List.length r.demotions)
    r.image.Cms_persist.Aot.meta.Cms_persist.Aot.demoted_verify
    r.image.Cms_persist.Aot.meta.Cms_persist.Aot.demoted_select
