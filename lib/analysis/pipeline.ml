(** Wiring the verifier into the translator, and result reporting.

    {!Cms.Codegen} exposes a hook rather than depending on this library
    (the dependency points the other way); [install] plugs the two
    passes in so that — with {!Cms.Config.verify_translations} on — a
    violation makes the translator reject the translation by raising
    {!Cms.Codegen.Verify_failed}.  [install_collect] records structured
    diagnostics through a sink instead of rejecting, which is what the
    [cmsverify] sweep and the suite-is-clean property test use. *)

let verifier ?sink () =
  let deliver ds =
    match sink with
    | None ->
        (* rejecting mode: advisory rules (recoverable runtime events,
           e.g. a statically overflow-prone store run the engine
           escalates on) must not kill the translation *)
        List.filter_map
          (fun d -> if Diag.is_advisory d then None else Some (Diag.to_string d))
          ds
    | Some f ->
        List.iter f ds;
        []
  in
  {
    Cms.Codegen.lint_ir =
      (fun ~stage ~entry ~ir items -> deliver (Irlint.lint ~stage ~entry ~ir items));
    verify_code =
      (fun ~cfg ~entry ~ninsns code ->
        deliver (Tverify.verify ~cfg ~entry ~ninsns code));
  }

(** Install the rejecting verifier: any violation raises
    {!Cms.Codegen.Verify_failed} out of the translator. *)
let install () = Cms.Codegen.verify_hook := Some (verifier ())

(** Install a collecting verifier: diagnostics go to [f], translations
    are never rejected. *)
let install_collect f = Cms.Codegen.verify_hook := Some (verifier ~sink:f ())

let uninstall () = Cms.Codegen.verify_hook := None

(** Run [body] with the rejecting verifier installed, restoring the
    previous hook after.  The AOT builder uses this so pre-minted
    translations are always verified mandatorily, even when the ambient
    hook is a collecting one (e.g. under the fuzzer's oracles). *)
let with_reject body =
  let saved = !Cms.Codegen.verify_hook in
  install ();
  Fun.protect
    ~finally:(fun () -> Cms.Codegen.verify_hook := saved)
    body

(** Run [body] with a collecting verifier installed; returns its result
    and the diagnostics gathered, restoring the previous hook. *)
let with_collect body =
  let saved = !Cms.Codegen.verify_hook in
  let acc = ref [] in
  (* the background translator domain runs the verifier on its own
     compiles, so the sink is shared across domains *)
  let lock = Mutex.create () in
  install_collect (fun d -> Mutex.protect lock (fun () -> acc := d :: !acc));
  Fun.protect
    ~finally:(fun () -> Cms.Codegen.verify_hook := saved)
    (fun () ->
      let r = body () in
      (r, List.rev !acc))

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

(** Violation count per rule, one row per known rule (zero rows
    included: a sweep should document what it checked), plus any
    unknown rule ids at the end. *)
let rule_counts (diags : Diag.t list) =
  let count r = List.length (List.filter (fun d -> d.Diag.rule = r) diags) in
  let known = List.map (fun (r, _, _) -> r) Diag.rules in
  let extra =
    List.sort_uniq compare
      (List.filter_map
         (fun d ->
           if List.mem d.Diag.rule known then None else Some d.Diag.rule)
         diags)
  in
  List.map (fun (r, what, where) -> (r, what, where, count r)) Diag.rules
  @ List.map (fun r -> (r, "(unknown rule)", "-", count r)) extra

let pp_table fmt diags =
  Fmt.pf fmt "%-22s %-6s %-10s %s@." "rule" "hits" "paper" "checks";
  List.iter
    (fun (r, what, where, n) ->
      Fmt.pf fmt "%-22s %-6d %-10s %s@." r n where what)
    (rule_counts diags)
