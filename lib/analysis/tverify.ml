(** Static molecule verifier.

    A linear abstract walk (see {!Absstate}) over a scheduled code
    block, checking the invariants speculation and recovery depend on:
    commits sit at x86 boundaries with sane retired counts, nothing is
    placed after a loop back-edge branch, speculative state (gated
    stores, dirty guest registers, armed alias slots) never leaks
    through an exit, the alias hardware is used within its limits, and
    register allocation stayed inside the host register file.

    The walk is CFG-free on purpose: layout order over-approximates
    every real path between commits (stubs always commit before
    exiting, and the scheduler keeps slot order equal to program
    order), so a clean walk implies clean execution. *)

module A = Vliw.Atom
module S = Absstate

let is_tmp r = r >= Vliw.Abi.tmp_base && r < Vliw.Abi.num_regs
let is_guest r = r >= 0 && r < Vliw.Abi.shadow_count

let verify ~(cfg : Cms.Config.t) ~entry ?(ninsns = max_int)
    (code : Vliw.Code.t) : Diag.t list =
  let diags = ref [] in
  let nmol = Array.length code.Vliw.Code.molecules in
  let nexits = Array.length code.Vliw.Code.exits in
  let slots = cfg.Cms.Config.alias_slots in
  let capacity = cfg.Cms.Config.sbuf_capacity in
  let st = S.create () in
  Array.iteri
    (fun i m ->
      let add rule msg =
        diags := Diag.v ~rule ~entry ~stage:"code" ~molecule:i msg :: !diags
      in
      let check_mask what mask =
        if mask land lnot ((1 lsl slots) - 1) <> 0 then
          add "alias-slot-range"
            (Fmt.str "%s check mask %#x has bits beyond %d slots" what mask
               slots)
      in
      let arm what slot =
        if slot < 0 || slot >= slots then
          add "alias-slot-range"
            (Fmt.str "%s arms slot %d of %d" what slot slots)
        else begin
          if S.ISet.mem slot st.S.armed then
            add "alias-double-arm"
              (Fmt.str "%s re-arms slot %d with no commit since the last \
                        arming"
                 what slot);
          st.S.armed <- S.ISet.add slot st.S.armed
        end
      in
      (match Vliw.Molecule.check m with
      | Ok () -> ()
      | Error e -> add "issue-constraints" e);
      let mol_tmp_defs = ref [] in
      let past_backedge = ref false in
      Array.iter
        (fun a ->
          if !past_backedge && a <> A.Nop then
            add "barrier-hoist"
              (Fmt.str "atom placed after a loop back-edge branch: %a" A.pp a);
          List.iter
            (fun r ->
              if r >= Vliw.Abi.num_regs then
                add "regalloc-range"
                  (Fmt.str "register r%d outside the host register file \
                            (unallocated virtual register?)"
                     r))
            (A.uses a @ A.defs a);
          List.iter
            (fun r ->
              if is_tmp r && not (S.ISet.mem r st.S.tmp_defined) then
                add "tmp-undef"
                  (Fmt.str "temporary r%d used before any definition" r))
            (A.uses a);
          (match a with
          | A.Load l ->
              if is_guest l.rd then
                add "guest-clobber"
                  (Fmt.str
                     "load targets guest register r%d: a speculative load \
                      must land in a temporary"
                     l.rd);
              check_mask "load" l.check;
              (match l.protect with
              | Some s ->
                  arm "protected load" s;
                  if not l.spec then
                    add "spec-missing"
                      (Fmt.str
                         "load protected by slot %d is not marked \
                          speculative"
                         s)
              | None -> ())
          | A.Store sa ->
              check_mask "store" sa.check;
              S.ISet.iter
                (fun s ->
                  if sa.check land (1 lsl s) = 0 then
                    add "store-missing-check"
                      (Fmt.str
                         "store does not check live guarded range in slot %d"
                         s))
                st.S.armed_guard;
              st.S.pending_stores <- st.S.pending_stores + 1;
              if st.S.pending_stores = capacity + 1 then
                add "sbuf-overflow"
                  (Fmt.str
                     "more than %d gated stores with no intervening commit"
                     capacity)
          | A.ArmRange ar ->
              arm "range guard" ar.slot;
              st.S.armed_guard <- S.ISet.add ar.slot st.S.armed_guard
          | A.Commit n ->
              if n < 0 || n > ninsns then
                add "commit-retired"
                  (Fmt.str "commit retires %d of a %d-instruction region" n
                     ninsns);
              S.commit st
          | A.Exit e ->
              if e < 0 || e >= nexits then
                add "branch-target"
                  (Fmt.str "exit #%d outside table of %d" e nexits)
              else begin
                let x = code.Vliw.Code.exits.(e).Vliw.Code.x86_retired in
                if x < 0 || x > ninsns then
                  add "commit-retired"
                    (Fmt.str "exit #%d retires %d of a %d-instruction region"
                       e x ninsns)
              end;
              if st.S.pending_stores > 0 then
                add "exit-uncommitted"
                  (Fmt.str "exit with %d stores still gated"
                     st.S.pending_stores);
              if not (S.ISet.is_empty st.S.dirty_guest) then
                add "exit-uncommitted"
                  (Fmt.str "exit with uncommitted guest registers %a"
                     S.pp_regs st.S.dirty_guest)
          | A.Br { target } ->
              if target < 0 || target >= nmol then
                add "branch-target" (Fmt.str "branch to molecule %d" target)
              else if target <= i then past_backedge := true
          | A.BrCond { target; _ } | A.BrCmp { target; _ } ->
              if target < 0 || target >= nmol then
                add "branch-target" (Fmt.str "branch to molecule %d" target)
              else if target <= i then past_backedge := true
          | _ -> ());
          List.iter
            (fun r ->
              if is_guest r then st.S.dirty_guest <- S.ISet.add r st.S.dirty_guest
              else if is_tmp r then mol_tmp_defs := r :: !mol_tmp_defs)
            (A.defs a))
        m;
      (* within a molecule all reads observe pre-molecule state, so tmp
         defs only become visible to later molecules *)
      List.iter
        (fun r -> st.S.tmp_defined <- S.ISet.add r st.S.tmp_defined)
        !mol_tmp_defs)
    code.Vliw.Code.molecules;
  (* exit table *)
  Array.iteri
    (fun e (x : Vliw.Code.exit) ->
      let add rule msg =
        diags := Diag.v ~rule ~entry ~stage:"code" msg :: !diags
      in
      if x.Vliw.Code.x86_retired < 0 || x.Vliw.Code.x86_retired > ninsns then
        add "commit-retired"
          (Fmt.str "exit #%d retires %d of a %d-instruction region" e
             x.Vliw.Code.x86_retired ninsns);
      match x.Vliw.Code.target with
      | Vliw.Code.FromReg r ->
          if r < 0 || r >= Vliw.Abi.num_regs then
            add "regalloc-range"
              (Fmt.str "exit #%d reads target from r%d" e r)
      | Vliw.Code.Const _ -> ())
    code.Vliw.Code.exits;
  List.rev !diags
