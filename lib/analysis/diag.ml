(** Structured diagnostics for the translation verifier.

    Every violation carries the region entry address, the pipeline
    stage it was found at, the molecule index (for scheduled code), a
    stable rule id, and a human-readable explanation.  Rule ids are the
    contract between the passes, the seeded-mutation self-tests and the
    [cmsverify] reporting table — never rename one without updating all
    three. *)

type t = {
  rule : string;  (** stable rule id, one of {!rules} *)
  entry : int;  (** region entry address (guest EIP) *)
  stage : string;  (** ["lower"], ["opt"] (IR lint) or ["code"] *)
  molecule : int option;  (** molecule index, for scheduled-code rules *)
  msg : string;
}

let v ~rule ~entry ~stage ?molecule msg = { rule; entry; stage; molecule; msg }

let pp fmt d =
  Fmt.pf fmt "0x%x/%s%a [%s] %s" d.entry d.stage
    Fmt.(option (any "@m" ++ int))
    d.molecule d.rule d.msg

let to_string d = Fmt.str "%a" pp d

(* --- JSON rendering (hand-rolled; no JSON library in the image) --- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json d =
  Printf.sprintf
    "{\"rule\":\"%s\",\"entry\":\"0x%x\",\"stage\":\"%s\",\"molecule\":%s,\"msg\":\"%s\"}"
    (json_escape d.rule) d.entry (json_escape d.stage)
    (match d.molecule with Some m -> string_of_int m | None -> "null")
    (json_escape d.msg)

(** The full rule set: id, what it checks, and the paper section the
    invariant comes from.  [cmsverify] prints a row per rule (including
    zero-violation rows) so a sweep documents its own coverage. *)
let rules =
  [
    ("ir-vreg-undef", "virtual register used before any definition", "IR");
    ("ir-memseq", "memory-op sequence numbers monotone in program order", "§3.5");
    ("ir-backedge-barrier", "loop back-edges carry a barrier or follow a commit", "§3.2");
    ("ir-label", "labels unique, branch targets and exit indices defined", "IR");
    ("ir-exit-eip", "every exit stub commits an EIP update", "§3.1");
    ("issue-constraints", "molecule respects functional-unit issue limits", "§2");
    ("branch-target", "branch/exit targets inside the code block", "IR");
    ("exit-uncommitted", "no exit with uncommitted stores or guest state", "§3.1");
    ("commit-retired", "commit/exit retired-instruction counts in range", "§3.1");
    ("barrier-hoist", "no atom placed after a loop back-edge branch", "§3.2");
    ("guest-clobber", "loads never target live guest-state registers", "§3.1");
    ("regalloc-range", "all registers allocated into the host register file", "§2");
    ("tmp-undef", "host temporaries defined before use", "§2");
    ("sbuf-overflow", "gated stores between commits fit the store buffer", "§3.1");
    ("alias-slot-range", "alias protect/check slots within hardware range", "§3.5");
    ("alias-double-arm", "no alias slot armed twice without a commit", "§3.5");
    ("store-missing-check", "stores check every live guarded range", "§3.6.3");
    ("spec-missing", "alias-protected loads are marked speculative", "§3.4");
  ]

(** Rules that flag a predictable, *recoverable* runtime event rather
    than a broken translation.  A region with more straight-line stores
    than the gated buffer holds is legitimate output: the hardware
    faults cleanly mid-execution, the engine rolls back, replays in the
    interpreter and escalates the policy to smaller regions (§3.1) —
    that adaptive path is part of the design, so the rejecting verifier
    must not preempt it.  Sweeps and the mutation self-tests still
    report these. *)
let advisory = [ "sbuf-overflow" ]

let is_advisory d = List.mem d.rule advisory
