(** Abstract machine state for the linear molecule walk.

    {!Tverify} walks the scheduled molecules in layout order, atoms in
    slot order (the scheduler orders slots by program index, and the
    execution engine applies phase-2 effects in slot order, so this is
    execution order within a molecule).  The state tracks exactly what
    commit/rollback manipulate: the gated store buffer, the
    shadowed guest registers, and the alias hardware slots.  Layout
    order over-approximates any real path between two commits — every
    stub commits before exiting — so checks against this state are
    sound without a CFG. *)

module ISet = Set.Make (Int)

type t = {
  mutable pending_stores : int;
      (** stores sitting in the gated store buffer since the last commit *)
  mutable dirty_guest : ISet.t;
      (** shadowed guest registers written since the last commit *)
  mutable armed_guard : ISet.t;
      (** alias slots armed by [ArmRange] (source-range guards, §3.6.3);
          every store must check these *)
  mutable armed : ISet.t;
      (** all armed alias slots — [ArmRange] plus load [protect] *)
  mutable tmp_defined : ISet.t;
      (** host temporaries defined in an earlier molecule (never reset:
          temporaries are not shadowed, so commits do not touch them) *)
}

let create () =
  {
    pending_stores = 0;
    dirty_guest = ISet.empty;
    armed_guard = ISet.empty;
    armed = ISet.empty;
    tmp_defined = ISet.empty;
  }

(** Commit: drain the store buffer, shadow the guest registers, clear
    the alias slots (mirrors {!Vliw.Exec.commit}). *)
let commit t =
  t.pending_stores <- 0;
  t.dirty_guest <- ISet.empty;
  t.armed_guard <- ISet.empty;
  t.armed <- ISet.empty

let pp_regs fmt s =
  Fmt.(list ~sep:comma (fmt "r%d")) fmt (ISet.elements s)
