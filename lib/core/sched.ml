(** VLIW list scheduler, speculation assignment, and register allocation.

    Packs IR ops into molecules respecting functional units (2 ALU /
    1 MEM / 1 FP-media / 1 BR), operation latencies (explicit nop
    molecules fill exposed latency — the hardware has no interlocks),
    and a dependence graph whose *breakable* edges are where the paper's
    speculation happens:

    - a store→load order edge is removed when the accesses are provably
      disjoint (static disambiguation), or — with the alias hardware —
      by arming a slot at the load and checking it at the store (§3.5);
    - loads may hoist above conditional branches (boosting); rollback
      recovery makes the bookkeeping free (§3.2);
    - stores, guest-state writes, commits and branches are anchors that
      never cross each other: side exits commit, so architectural state
      must be in program order at every branch.

    After scheduling, any load that ended up ahead of a program-earlier
    store or branch is marked [spec] — the bit the hardware uses to
    fault speculative accesses to I/O space (§3.4).

    Register allocation runs after scheduling (temporaries are virtual
    until then, so no false dependences constrain the schedule); running
    out of host temporaries raises {!Regalloc_overflow}, which the
    translator handles by retrying with a smaller region. *)

module A = Vliw.Atom

exception Regalloc_overflow

type opts = {
  reorder : bool;  (** break st→ld edges at all (Fig. 2 knob) *)
  use_alias : bool;  (** alias hardware available (Fig. 3 knob) *)
  alias_slots : int;
}

(* ------------------------------------------------------------------ *)
(* Dependence graph                                                    *)
(* ------------------------------------------------------------------ *)

type node = {
  op : Ir.op;
  idx : int;  (** program order within segment *)
  mutable succs : (int * int) list;  (** (node, weight) *)
  mutable preds : int;  (** unscheduled predecessor count *)
  mutable earliest : int;
  mutable prio : int;  (** critical-path length *)
  mutable cycle : int;  (** assigned cycle; -1 unscheduled *)
}

let sext32 v = if v land 0x80000000 <> 0 then v - 0x100000000 else v

let mem_parts (a : A.t) =
  match a with
  | A.Load { base; disp; size; _ } -> Some (base, sext32 (disp land 0xffffffff), size)
  | A.Store { base; disp; size; _ } -> Some (base, sext32 (disp land 0xffffffff), size)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Static disambiguation prepass                                       *)
(* ------------------------------------------------------------------ *)

(* Annotate every memory op with the def-version of its base register
   (so "same register" means "same value") and, when the trace itself
   materialized the base (MovI / simple arithmetic on a constant), its
   absolute value.  This gives three-way answers: provably disjoint,
   provably aliasing (never speculate: it would always fault), or
   unknown (the alias hardware's job). *)
let annotate_bases items =
  let ver : (int, int) Hashtbl.t = Hashtbl.create 32 in
  let cst : (int, int) Hashtbl.t = Hashtbl.create 32 in
  let getv r = Hashtbl.find_opt ver r |> Option.value ~default:0 in
  List.iter
    (fun item ->
      match item with
      | Ir.Lbl _ ->
          (* joins invalidate constant knowledge *)
          Hashtbl.reset cst
      | Ir.Op o ->
          (match o.Ir.atom with
          | A.Load { base; _ } | A.Store { base; _ } ->
              o.Ir.base_ver <- getv base;
              o.Ir.base_abs <- Hashtbl.find_opt cst base
          | _ -> ());
          (* update constant/version tracking with this op's defs *)
          (match o.Ir.atom with
          | A.MovI { rd; imm } -> Hashtbl.replace cst rd (imm land 0xffffffff)
          | A.MovR { rd; rs } -> (
              match Hashtbl.find_opt cst rs with
              | Some v -> Hashtbl.replace cst rd v
              | None -> Hashtbl.remove cst rd)
          | A.Alu { op = A.HAdd; rd; a; b = A.I i } when Hashtbl.mem cst a ->
              Hashtbl.replace cst rd ((Hashtbl.find cst a + i) land 0xffffffff)
          | A.Alu { op = A.HSub; rd; a; b = A.I i } when Hashtbl.mem cst a ->
              Hashtbl.replace cst rd ((Hashtbl.find cst a - i) land 0xffffffff)
          | atom -> List.iter (Hashtbl.remove cst) (A.defs atom));
          List.iter
            (fun r -> Hashtbl.replace ver r (getv r + 1))
            (A.defs o.Ir.atom))
    items

type mem_rel = Disjoint | Must_alias | Unknown

let mem_relation (a : Ir.op) (b : Ir.op) =
  match (mem_parts a.Ir.atom, mem_parts b.Ir.atom) with
  | Some (b1, d1, s1), Some (b2, d2, s2) -> (
      match (a.Ir.base_abs, b.Ir.base_abs) with
      | Some v1, Some v2 ->
          let lo1 = v1 + d1 and lo2 = v2 + d2 in
          if lo1 + s1 <= lo2 || lo2 + s2 <= lo1 then Disjoint else Must_alias
      | _ ->
          if b1 = b2 && a.Ir.base_ver = b.Ir.base_ver then
            if d1 + s1 <= d2 || d2 + s2 <= d1 then Disjoint else Must_alias
          else Unknown)
  | _ -> Unknown

let provably_disjoint a b = mem_relation a b = Disjoint

let is_store a = match a with A.Store _ -> true | _ -> false
let is_arm a = match a with A.ArmRange _ -> true | _ -> false
let is_load a = match a with A.Load _ -> true | _ -> false
let is_commit a = match a with A.Commit _ -> true | _ -> false

let guest_def a =
  List.exists (fun r -> r < Vliw.Abi.shadow_count) (A.defs a)

(* Anchors are ops that must stay in program order relative to
   branches: architectural effects. *)
let is_anchor a = is_store a || guest_def a || is_commit a

let build_graph ~(opts : opts) ~slot_counter (ops : Ir.op array) =
  let n = Array.length ops in
  let nodes =
    Array.mapi
      (fun i op ->
        { op; idx = i; succs = []; preds = 0; earliest = 0; prio = 0; cycle = -1 })
      ops
  in
  let edge i j w =
    if i <> j then begin
      (* keep the max weight between a pair; duplicates are harmless for
         correctness but we avoid pred-count inflation *)
      let ni = nodes.(i) in
      match List.assoc_opt j ni.succs with
      | Some w' ->
          if w > w' then
            ni.succs <- (j, w) :: List.remove_assoc j ni.succs
      | None ->
          ni.succs <- (j, w) :: ni.succs;
          nodes.(j).preds <- nodes.(j).preds + 1
    end
  in
  (* --- register dependences --- *)
  let last_def : (int, int) Hashtbl.t = Hashtbl.create 32 in
  let readers : (int, int list) Hashtbl.t = Hashtbl.create 32 in
  for j = 0 to n - 1 do
    let a = ops.(j).Ir.atom in
    List.iter
      (fun r ->
        (match Hashtbl.find_opt last_def r with
        | Some i -> edge i j (A.latency ops.(i).Ir.atom) (* RAW *)
        | None -> ());
        Hashtbl.replace readers r
          (j :: (Hashtbl.find_opt readers r |> Option.value ~default:[])))
      (A.uses a);
    List.iter
      (fun r ->
        (match Hashtbl.find_opt last_def r with
        | Some i -> edge i j 1 (* WAW *)
        | None -> ());
        List.iter (fun i -> if i <> j then edge i j 0 (* WAR *))
          (Hashtbl.find_opt readers r |> Option.value ~default:[]);
        Hashtbl.replace last_def r j;
        Hashtbl.replace readers r [])
      (A.defs a)
  done;
  (* --- memory / anchor / control dependences --- *)
  let prev_stores = ref [] and prev_loads = ref [] in
  let prev_branches = ref [] and prev_anchors = ref [] in
  let last_commit = ref (-1) in
  let prev_all = ref [] in
  for j = 0 to n - 1 do
    let nj = ops.(j) in
    let aj = nj.Ir.atom in
    (* commits serialize against everything *)
    if is_commit aj then List.iter (fun i -> edge i j 0) !prev_all;
    if !last_commit >= 0 then edge !last_commit j 1;
    (* nothing may hoist above a loop back-edge: it would re-execute
       on every iteration (and, for loads, mis-speculate against the
       loop's own stores) *)
    (match List.find_opt (fun i -> ops.(i).Ir.barrier) !prev_branches with
    | Some i -> edge i j 1
    | None -> ());
    if A.is_branch aj then begin
      List.iter (fun i -> edge i j 1) !prev_branches;
      List.iter (fun i -> edge i j 0) !prev_anchors;
      (* loads must not sink below a later branch (their fault would be
         skipped after a committed exit) *)
      List.iter (fun i -> edge i j 0) !prev_loads
    end;
    if is_anchor aj then List.iter (fun i -> edge i j 1) !prev_branches;
    if is_load aj && not (is_commit aj) then begin
      (* st -> ld: the breakable edge.  With reordering suppressed
         entirely (Fig. 2) even provably-disjoint pairs stay ordered;
         static disambiguation is what the no-alias-hardware
         configuration (Fig. 3) still gets to use.  Provably-aliasing
         pairs are never speculated — they would fault every time. *)
      List.iter
        (fun i ->
          if not opts.reorder then edge i j 1
          else
          match mem_relation ops.(i) nj with
          | Disjoint -> ()
          | Must_alias -> edge i j 1
          | Unknown ->
          if opts.use_alias && !slot_counter < opts.alias_slots then begin
            (* arm a slot at the load, check it at the store *)
            let slot =
              match nj.Ir.atom with
              | A.Load ({ protect = Some s; _ }) -> s
              | A.Load ({ protect = None; _ } as l) ->
                  let s = !slot_counter in
                  incr slot_counter;
                  nj.Ir.atom <- A.Load { l with protect = Some s };
                  s
              | _ -> assert false
            in
            match ops.(i).Ir.atom with
            | A.Store ({ check; _ } as st) ->
                ops.(i).Ir.atom <- A.Store { st with check = check lor (1 lsl slot) }
            | _ -> assert false
          end
          else if opts.use_alias then edge i j 1 (* out of slots *)
          else edge i j 1 (* no alias hw, not provably disjoint *))
        !prev_stores;
      (* a load also may not hoist above a branch *into an armed region*
         carelessly — that is allowed and marked spec after scheduling *)
      ()
    end;
    if is_store aj then begin
      (* stores must not hoist above range-arming atoms *)
      Array.iteri
        (fun i o -> if i < j && is_arm o.Ir.atom then edge i j 0)
        ops;
      List.iter (fun i -> edge i j 1) !prev_stores;
      (* stores may not pass earlier loads (the load must see the old
         value) unless disjoint *)
      List.iter
        (fun i -> if not (provably_disjoint ops.(i) nj) then edge i j 0)
        !prev_loads
    end;
    (* bookkeeping *)
    if is_store aj then prev_stores := j :: !prev_stores;
    if is_load aj then prev_loads := j :: !prev_loads;
    if A.is_branch aj then prev_branches := j :: !prev_branches;
    if is_anchor aj then prev_anchors := j :: !prev_anchors;
    if is_commit aj then begin
      last_commit := j;
      (* a commit resets memory ordering state: buffered stores are
         flushed and alias slots cleared *)
      prev_stores := [];
      prev_loads := []
    end;
    prev_all := j :: !prev_all
  done;
  (* critical-path priorities *)
  for i = n - 1 downto 0 do
    let ni = nodes.(i) in
    ni.prio <-
      List.fold_left
        (fun acc (j, w) -> max acc (nodes.(j).prio + max w 1))
        (A.latency ni.op.Ir.atom)
        ni.succs
  done;
  nodes

(* ------------------------------------------------------------------ *)
(* List scheduling                                                     *)
(* ------------------------------------------------------------------ *)

let unit_of a = A.unit_of a

let schedule_segment ~opts ~slot_counter (ops : Ir.op array) =
  if Array.length ops = 0 then []
  else begin
    let nodes = build_graph ~opts ~slot_counter ops in
    let n = Array.length nodes in
    let unscheduled = ref n in
    let cycle = ref 0 in
    (* one row per cycle: the placed nodes ([None] = explicit nop).
       Atoms are extracted only after the speculative-load marking
       below, which rewrites node atoms post-schedule — snapshotting
       them here would silently drop the spec bits from the emitted
       code. *)
    let rows = ref [] in
    while !unscheduled > 0 do
      (* candidates ready at this cycle *)
      let cands =
        Array.to_list nodes
        |> List.filter (fun nd ->
               nd.cycle < 0 && nd.preds = 0 && nd.earliest <= !cycle)
        |> List.sort (fun a b ->
               match compare b.prio a.prio with
               | 0 -> compare a.idx b.idx
               | c -> c)
      in
      let alu = ref 0 and mem = ref 0 and fpm = ref 0 and br = ref 0 in
      let slots = ref 0 in
      let placed = ref [] in
      List.iter
        (fun nd ->
          if !slots < Vliw.Molecule.max_slots then begin
            let fits =
              match unit_of nd.op.Ir.atom with
              | A.UAlu -> !alu < 2
              | A.UMem -> !mem < 1
              | A.UFpm -> !fpm < 1
              | A.UBr -> !br < 1
              | A.UFree -> true
            in
            (* two defs of the same register cannot share a molecule *)
            let defs = A.defs nd.op.Ir.atom in
            let def_clash =
              List.exists
                (fun p ->
                  List.exists
                    (fun d -> List.mem d (A.defs p.op.Ir.atom))
                    defs)
                !placed
            in
            if fits && not def_clash then begin
              (match unit_of nd.op.Ir.atom with
              | A.UAlu -> incr alu
              | A.UMem -> incr mem
              | A.UFpm -> incr fpm
              | A.UBr -> incr br
              | A.UFree -> ());
              (match unit_of nd.op.Ir.atom with
              | A.UFree -> () (* commits do not consume an issue slot *)
              | _ -> incr slots);
              placed := nd :: !placed
            end
          end)
        cands;
      match !placed with
      | [] ->
          (* exposed latency: the hardware needs an explicit nop *)
          rows := None :: !rows;
          incr cycle
      | ps ->
          (* atoms within a molecule are ordered by program index so
             phase-2 effects (stores, commit) land in program order *)
          let ps = List.sort (fun a b -> compare a.idx b.idx) ps in
          List.iter
            (fun nd ->
              nd.cycle <- !cycle;
              List.iter
                (fun (j, w) ->
                  let s = nodes.(j) in
                  s.preds <- s.preds - 1;
                  s.earliest <- max s.earliest (!cycle + w))
                nd.succs;
              decr unscheduled)
            ps;
          rows := Some ps :: !rows;
          incr cycle
    done;
    (* --- latency padding at the segment end --- *)
    (* Control may leave this segment (fallthrough, branch, or loop
       back-edge) into code scheduled independently, which assumes all
       values are ready.  Pad with nops until every outstanding result
       latency is covered. *)
    let len = ref !cycle in
    Array.iter
      (fun nd ->
        let fin = nd.cycle + A.latency nd.op.Ir.atom in
        if fin > !len then len := fin)
      nodes;
    while !cycle < !len do
      rows := None :: !rows;
      incr cycle
    done;
    (* --- speculative-load marking --- *)
    (* A load that executes no later than a program-earlier store or
       branch has been reordered w.r.t. the x86 program. *)
    Array.iter
      (fun nd ->
        match nd.op.Ir.atom with
        | A.Load l ->
            let reordered =
              Array.exists
                (fun other ->
                  other.idx < nd.idx
                  && (is_store other.op.Ir.atom || A.is_branch other.op.Ir.atom)
                  && other.cycle >= nd.cycle)
                nodes
            in
            if reordered || l.protect <> None then
              nd.op.Ir.atom <- A.Load { l with spec = true }
        | _ -> ())
      nodes;
    (* emit: atom values are read only now, with all marks in place *)
    List.rev_map
      (function
        | None -> [| A.Nop |]
        | Some ps -> Array.of_list (List.map (fun nd -> nd.op.Ir.atom) ps))
      !rows
  end

(* ------------------------------------------------------------------ *)
(* Whole-block scheduling                                              *)
(* ------------------------------------------------------------------ *)

(* Split items into label-delimited segments. *)
let segments items =
  let segs = ref [] and cur = ref [] and cur_label = ref None in
  let flush () =
    segs := (!cur_label, Array.of_list (List.rev !cur)) :: !segs;
    cur := [];
    cur_label := None
  in
  List.iter
    (fun it ->
      match it with
      | Ir.Lbl l ->
          flush ();
          cur_label := Some l
      | Ir.Op o -> cur := o :: !cur)
    items;
  flush ();
  List.rev !segs |> List.filter (fun (l, ops) -> l <> None || Array.length ops > 0)

(** Schedule IR items into molecules; returns the molecule list (with
    branch targets still holding label ids) plus the label->molecule
    map. *)
let schedule ~opts items =
  annotate_bases items;
  let slot_counter = ref 0 in
  let label_mol : (Ir.label, int) Hashtbl.t = Hashtbl.create 16 in
  let all = ref [] in
  let count = ref 0 in
  List.iter
    (fun (label, ops) ->
      (match label with Some l -> Hashtbl.replace label_mol l !count | None -> ());
      let ms = schedule_segment ~opts ~slot_counter ops in
      List.iter
        (fun m ->
          all := m :: !all;
          incr count)
        ms)
    (segments items);
  let molecules = Array.of_list (List.rev !all) in
  (* resolve label ids to molecule indices *)
  let resolve l =
    match Hashtbl.find_opt label_mol l with
    | Some m -> m
    | None -> failwith (Fmt.str "Sched: unresolved label %d" l)
  in
  Array.iteri
    (fun i m ->
      Array.iteri
        (fun k a ->
          match a with
          | A.Br { target } -> m.(k) <- A.Br { target = resolve target }
          | A.BrCond b -> m.(k) <- A.BrCond { b with target = resolve b.target }
          | A.BrCmp b -> m.(k) <- A.BrCmp { b with target = resolve b.target }
          | _ -> ())
        m;
      molecules.(i) <- m)
    molecules;
  molecules

(* ------------------------------------------------------------------ *)
(* Register allocation (post-schedule linear scan)                     *)
(* ------------------------------------------------------------------ *)

let map_atom f (a : A.t) =
  let fs = function A.R r -> A.R (f r) | A.I i -> A.I i in
  let f r = if r < 0 then r else f r in
  match a with
  | A.Nop -> A.Nop
  | A.MovI m -> A.MovI { m with rd = f m.rd }
  | A.MovR m -> A.MovR { rd = f m.rd; rs = f m.rs }
  | A.Alu m -> A.Alu { m with rd = f m.rd; a = f m.a; b = fs m.b }
  | A.AluX m ->
      A.AluX
        { m with rd = Option.map f m.rd; a = fs m.a; b = fs m.b; fr = f m.fr; fw = f m.fw }
  | A.MulX m ->
      A.MulX
        { m with rd_lo = f m.rd_lo; rd_hi = Option.map f m.rd_hi; a = fs m.a;
          b = fs m.b; fr = f m.fr; fw = f m.fw }
  | A.DivX m ->
      A.DivX
        { m with rd_q = f m.rd_q; rd_r = f m.rd_r; hi = f m.hi; lo = f m.lo;
          divisor = fs m.divisor }
  | A.SetCond m -> A.SetCond { m with rd = f m.rd; fr = f m.fr }
  | A.ExtField m -> A.ExtField { m with rd = f m.rd; rs = f m.rs }
  | A.InsField m -> A.InsField { m with rd = f m.rd; rs = f m.rs }
  | A.Load m -> A.Load { m with rd = f m.rd; base = f m.base }
  | A.Store m -> A.Store { m with rs = fs m.rs; base = f m.base }
  | A.ArmRange m -> A.ArmRange { m with base = f m.base }
  | A.BrCond m -> A.BrCond { m with fr = f m.fr }
  | A.BrCmp m -> A.BrCmp { m with a = f m.a; b = fs m.b }
  | A.Br _ | A.Commit _ | A.Exit _ -> a

(** Map virtual registers to host temporaries in place. *)
let regalloc (molecules : Vliw.Molecule.t array) =
  (* global last use (as molecule index) of each vreg *)
  let last_use : (int, int) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri
    (fun i m ->
      Array.iter
        (fun a ->
          List.iter
            (fun r -> if Ir.is_vreg r then Hashtbl.replace last_use r i)
            (A.uses a @ A.defs a))
        m)
    molecules;
  let mapping : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let free = Queue.create () in
  for r = Vliw.Abi.tmp_base to Vliw.Abi.num_regs - 1 do
    Queue.add r free
  done;
  let expiring : (int, int list) Hashtbl.t = Hashtbl.create 64 in
  let map_use r =
    if Ir.is_vreg r then
      match Hashtbl.find_opt mapping r with
      | Some h -> h
      | None -> raise Regalloc_overflow (* use before def: internal bug *)
    else r
  in
  let map_def r =
    if Ir.is_vreg r then (
      match Hashtbl.find_opt mapping r with
      | Some h -> h
      | None ->
          if Queue.is_empty free then raise Regalloc_overflow;
          let h = Queue.pop free in
          Hashtbl.replace mapping r h;
          let lu = Hashtbl.find_opt last_use r |> Option.value ~default:0 in
          Hashtbl.replace expiring lu
            (r :: (Hashtbl.find_opt expiring lu |> Option.value ~default:[]));
          h)
    else r
  in
  Array.iteri
    (fun i m ->
      Array.iteri
        (fun k a ->
          (* map uses with existing bindings; allocate defs *)
          let f r =
            if Ir.is_vreg r then
              if List.mem r (A.defs a) && not (List.mem r (A.uses a)) then
                map_def r
              else map_use r
            else r
          in
          (* ensure defs that are also uses (InsField) resolve to the
             same existing binding *)
          m.(k) <- map_atom f a)
        m;
      (* free vregs whose last use was this molecule *)
      (match Hashtbl.find_opt expiring i with
      | Some vs ->
          List.iter
            (fun v ->
              match Hashtbl.find_opt mapping v with
              | Some h ->
                  Hashtbl.remove mapping v;
                  Queue.add h free
              | None -> ())
            vs
      | None -> ())
    )
    molecules
