(** x86 → IR lowering.

    Turns a {!Region} trace into IR ops.  Design points:

    - Guest registers are accessed as their dedicated host registers;
      loads land in fresh temporaries so the scheduler can hoist them
      without moving architectural state (guest-state writes are
      scheduling anchors, loads are speculation candidates).
    - Flag-producing instructions use [AluX] atoms whose output goes to
      the architectural flags register; the optimizer later retargets
      dead flag results to a scratch register.
    - Side exits become stubs ([set EIP; commit; exit]); a branch whose
      followed edge returns to the entry becomes an internal back edge,
      so hot loops run entirely inside one translation.  The back-edge
      commit retires one iteration's worth of instructions.
    - REP string instructions lower to an internal loop that commits
      every iteration with EIP on the instruction itself — the same
      restartable semantics the interpreter implements.  A checkpoint
      commit in front of the loop counts the instructions preceding
      the string op (and later commits on the path count relative to
      it), keeping the retired-instruction clock monotone with
      architectural state even when an interrupt stops the translation
      at a mid-string commit point.
    - Stylized-SMC instructions (policy) load their 32-bit immediate
      from the code bytes at run time instead of embedding it
      (paper §3.6.4). *)

open X86
module A = Vliw.Atom

let fr = Vliw.Abi.eflags

(* [retired] in a stub is the absolute count of x86 instructions the
   path has completed (recorded as the exit's [x86_retired]); [base] is
   how many of those an earlier checkpoint commit already counted (see
   the REP lowering), so the stub's own commit counts [retired - base]. *)
type stub =
  | Sconst of { label : Ir.label; target : int; retired : int; base : int;
                kind : Vliw.Code.exit_kind }
  | Sreg of { label : Ir.label; reg : int; retired : int; base : int }
  | Sback of { label : Ir.label; retired : int; base : int }
      (** loop back edge: commit one iteration, branch to the entry *)

type ctx = {
  ir : Ir.t;
  region : Region.t;
  policy : Policy.t;
  mutable stubs : stub list;
  mutable committed : int;
      (** x86 instructions already counted by checkpoint commits on the
          fall-through path — the retired clock must tick the moment
          state commits, not when the path ends, or an interrupt taken
          at a mid-region commit point loses the count for instructions
          whose effects are already architectural *)
  entry_label : Ir.label;
}

let xop_of_arith : Insn.arith -> A.xop = function
  | Insn.Add -> A.XAdd
  | Or -> A.XOr
  | Adc -> A.XAdc
  | Sbb -> A.XSbb
  | And -> A.XAnd
  | Sub -> A.XSub
  | Xor -> A.XXor
  | Cmp -> A.XCmp

let xop_of_shift : Insn.shift -> A.xop = function
  | Insn.Shl -> A.XShl
  | Shr -> A.XShr
  | Sar -> A.XSar
  | Rol -> A.XRol
  | Ror -> A.XRor

let size_bytes = function Insn.S8 -> 1 | Insn.S32 -> 4

(* ------------------------------------------------------------------ *)
(* Emission helpers                                                    *)
(* ------------------------------------------------------------------ *)

let emit ctx ~idx atom = Ir.emit ctx.ir ~x86_idx:idx atom
let vreg ctx = Ir.fresh_vreg ctx.ir

(* Compute the (base register, displacement) pair for a Load/Store atom
   from an x86 memory operand, emitting index arithmetic as needed. *)
let lower_addr ctx ~idx (m : Insn.mem) =
  match (m.base, m.index) with
  | Some b, None -> (b, m.disp)
  | None, None ->
      let t = vreg ctx in
      emit ctx ~idx (A.MovI { rd = t; imm = m.disp });
      (t, 0)
  | base, Some (i, scale) ->
      let scaled =
        if scale = 1 then i
        else begin
          let t = vreg ctx in
          let sh = match scale with 2 -> 1 | 4 -> 2 | 8 -> 3 | _ -> 0 in
          emit ctx ~idx (A.Alu { op = A.HShl; rd = t; a = i; b = A.I sh });
          t
        end
      in
      let addr =
        match base with
        | None -> scaled
        | Some b ->
            let t = vreg ctx in
            emit ctx ~idx (A.Alu { op = A.HAdd; rd = t; a = b; b = A.R scaled });
            t
      in
      (addr, m.disp)

let load ctx ~idx ~size (base, disp) =
  let t = vreg ctx in
  emit ctx ~idx
    (A.Load { rd = t; base; disp; size; spec = false; protect = None; check = 0 });
  t

let store ctx ~idx ~size (base, disp) src =
  emit ctx ~idx (A.Store { rs = src; base; disp; size; spec = false; check = 0 })

(* 8-bit register read: extract the byte from its backing GPR. *)
let read8 ctx ~idx r =
  let g, sh = Regs.gpr_of_r8 r in
  let t = vreg ctx in
  emit ctx ~idx (A.ExtField { rd = t; rs = g; shift = sh; width = 8; sign = false });
  t

let write8 ctx ~idx r src =
  let g, sh = Regs.gpr_of_r8 r in
  emit ctx ~idx (A.InsField { rd = g; rs = src; shift = sh; width = 8 })

(** Read an r/m operand into a register (temps for memory and 8-bit). *)
let read_rm ctx ~idx sz (rm : Insn.rm) =
  match (sz, rm) with
  | Insn.S32, Insn.R r -> r
  | Insn.S8, Insn.R r -> read8 ctx ~idx r
  | _, Insn.M m ->
      let a = lower_addr ctx ~idx m in
      load ctx ~idx ~size:(size_bytes sz) a

(* An r/m destination: either write-back goes to a register field or to
   memory at an address computed once. *)
type dst =
  | Dreg of int  (** 32-bit guest register: ops may target it directly *)
  | Dreg8 of int  (** 8-bit register: needs insert *)
  | Dmem of (int * int) * int  (** (base,disp), size *)

let prep_dst ctx ~idx sz (rm : Insn.rm) =
  match (sz, rm) with
  | Insn.S32, Insn.R r -> Dreg r
  | Insn.S8, Insn.R r -> Dreg8 r
  | _, Insn.M m -> Dmem (lower_addr ctx ~idx m, size_bytes sz)

let read_dst ctx ~idx = function
  | Dreg r -> r
  | Dreg8 r -> read8 ctx ~idx r
  | Dmem (a, size) -> load ctx ~idx ~size a

let write_dst ctx ~idx dst src =
  match dst with
  | Dreg r -> if r <> src then emit ctx ~idx (A.MovR { rd = r; rs = src })
  | Dreg8 r -> write8 ctx ~idx r src
  | Dmem (a, size) -> store ctx ~idx ~size a (A.R src)

(* Destination register an AluX may write directly (avoids a move). *)
let direct_rd = function Dreg r -> Some r | _ -> None

let read_reg ctx ~idx sz r =
  match sz with Insn.S32 -> r | Insn.S8 -> read8 ctx ~idx r

let write_reg ctx ~idx sz r src =
  match sz with
  | Insn.S32 -> if r <> src then emit ctx ~idx (A.MovR { rd = r; rs = src })
  | Insn.S8 -> write8 ctx ~idx r src

let push32 ctx ~idx (src : A.src) =
  store ctx ~idx ~size:4 (Regs.esp, -4) src;
  emit ctx ~idx
    (A.Alu { op = A.HSub; rd = Regs.esp; a = Regs.esp; b = A.I 4 })

(* ------------------------------------------------------------------ *)
(* Exits                                                               *)
(* ------------------------------------------------------------------ *)

let stub_const ctx ?(kind = Vliw.Code.Enext) ~target ~retired () =
  let label = Ir.fresh_label ctx.ir in
  ctx.stubs <-
    Sconst { label; target; retired; base = ctx.committed; kind } :: ctx.stubs;
  label

let stub_reg ctx ~reg ~retired =
  let label = Ir.fresh_label ctx.ir in
  ctx.stubs <- Sreg { label; reg; retired; base = ctx.committed } :: ctx.stubs;
  label

(* ------------------------------------------------------------------ *)
(* Per-instruction lowering                                            *)
(* ------------------------------------------------------------------ *)

(* [retired] = number of x86 instructions completed if control leaves
   right after this one (idx + 1). *)
let lower_insn ctx ~idx (info : Region.insn_info) =
  let retired = idx + 1 in
  let next = (info.Region.addr + info.Region.len) land 0xffffffff in
  (* Stylized SMC: materialize the instruction's imm32 by loading it
     from the code image at run time. *)
  let imm_src imm =
    if
      Policy.ISet.mem info.Region.addr ctx.policy.Policy.stylized_imms
      && info.Region.imm32_addr <> None
    then begin
      let addr = Option.get info.Region.imm32_addr in
      let ta = vreg ctx in
      emit ctx ~idx (A.MovI { rd = ta; imm = addr });
      let t = vreg ctx in
      emit ctx ~idx
        (A.Load
           { rd = t; base = ta; disp = 0; size = 4; spec = false; protect = None; check = 0 });
      A.R t
    end
    else A.I imm
  in
  match info.Region.insn with
  | Insn.Arith (op, sz, ops) -> (
      let xop = xop_of_arith op in
      let alux ~rd a b =
        emit ctx ~idx (A.AluX { op = xop; size = sz; rd; a; b; fr; fw = fr })
      in
      match ops with
      | Insn.RM_R (rm, r) ->
          let dst = prep_dst ctx ~idx sz rm in
          let a = read_dst ctx ~idx dst in
          let b = read_reg ctx ~idx sz r in
          if op = Insn.Cmp then alux ~rd:None (A.R a) (A.R b)
          else begin
            match direct_rd dst with
            | Some r -> alux ~rd:(Some r) (A.R a) (A.R b)
            | None ->
                let t = vreg ctx in
                alux ~rd:(Some t) (A.R a) (A.R b);
                write_dst ctx ~idx dst t
          end
      | Insn.R_RM (r, rm) ->
          let a = read_reg ctx ~idx sz r in
          let b = read_rm ctx ~idx sz rm in
          if op = Insn.Cmp then alux ~rd:None (A.R a) (A.R b)
          else if sz = Insn.S32 then alux ~rd:(Some r) (A.R a) (A.R b)
          else begin
            let t = vreg ctx in
            alux ~rd:(Some t) (A.R a) (A.R b);
            write8 ctx ~idx r t
          end
      | Insn.RM_I (rm, i) ->
          let dst = prep_dst ctx ~idx sz rm in
          let a = read_dst ctx ~idx dst in
          let b = if sz = Insn.S32 then imm_src i else A.I i in
          if op = Insn.Cmp then alux ~rd:None (A.R a) b
          else begin
            match direct_rd dst with
            | Some r -> alux ~rd:(Some r) (A.R a) b
            | None ->
                let t = vreg ctx in
                alux ~rd:(Some t) (A.R a) b;
                write_dst ctx ~idx dst t
          end)
  | Insn.Test (sz, rm, src) ->
      let a = read_rm ctx ~idx sz rm in
      let b =
        match src with
        | Insn.T_R r -> A.R (read_reg ctx ~idx sz r)
        | Insn.T_I i -> if sz = Insn.S32 then imm_src i else A.I i
      in
      emit ctx ~idx
        (A.AluX { op = A.XTest; size = sz; rd = None; a = A.R a; b; fr; fw = fr })
  | Insn.Mov (sz, ops) -> (
      match ops with
      | Insn.RM_R (rm, r) -> (
          match (sz, rm) with
          | Insn.S32, Insn.R d -> emit ctx ~idx (A.MovR { rd = d; rs = r })
          | Insn.S8, Insn.R d -> write8 ctx ~idx d (read8 ctx ~idx r)
          | _, Insn.M m ->
              let a = lower_addr ctx ~idx m in
              let v = read_reg ctx ~idx sz r in
              store ctx ~idx ~size:(size_bytes sz) a (A.R v))
      | Insn.R_RM (r, rm) -> (
          match (sz, rm) with
          | Insn.S32, Insn.R s -> emit ctx ~idx (A.MovR { rd = r; rs = s })
          | Insn.S8, Insn.R s -> write8 ctx ~idx r (read8 ctx ~idx s)
          | _, Insn.M m ->
              let a = lower_addr ctx ~idx m in
              let t = load ctx ~idx ~size:(size_bytes sz) a in
              write_reg ctx ~idx sz r t)
      | Insn.RM_I (rm, i) -> (
          match (sz, rm) with
          | Insn.S32, Insn.R d -> (
              match imm_src i with
              | A.I imm -> emit ctx ~idx (A.MovI { rd = d; imm })
              | A.R t -> emit ctx ~idx (A.MovR { rd = d; rs = t }))
          | Insn.S8, Insn.R d ->
              let t = vreg ctx in
              emit ctx ~idx (A.MovI { rd = t; imm = i });
              write8 ctx ~idx d t
          | _, Insn.M m ->
              let a = lower_addr ctx ~idx m in
              let src = if sz = Insn.S32 then imm_src i else A.I i in
              store ctx ~idx ~size:(size_bytes sz) a src))
  | Insn.Movx { sign; dst; src } -> (
      match src with
      | Insn.R r ->
          let g, sh = Regs.gpr_of_r8 r in
          emit ctx ~idx (A.ExtField { rd = dst; rs = g; shift = sh; width = 8; sign })
      | Insn.M m ->
          let a = lower_addr ctx ~idx m in
          let t = load ctx ~idx ~size:1 a in
          if sign then
            emit ctx ~idx (A.ExtField { rd = dst; rs = t; shift = 0; width = 8; sign = true })
          else emit ctx ~idx (A.MovR { rd = dst; rs = t }))
  | Insn.Lea (r, m) -> (
      let base, disp = lower_addr ctx ~idx m in
      if disp = 0 then emit ctx ~idx (A.MovR { rd = r; rs = base })
      else emit ctx ~idx (A.Alu { op = A.HAdd; rd = r; a = base; b = A.I disp }))
  | Insn.Xchg (sz, rm, r) -> (
      match (sz, rm) with
      | Insn.S32, Insn.R a ->
          let t = vreg ctx in
          emit ctx ~idx (A.MovR { rd = t; rs = a });
          emit ctx ~idx (A.MovR { rd = a; rs = r });
          emit ctx ~idx (A.MovR { rd = r; rs = t })
      | _ ->
          let dst = prep_dst ctx ~idx sz rm in
          let a = read_dst ctx ~idx dst in
          let b = read_reg ctx ~idx sz r in
          write_dst ctx ~idx dst b;
          write_reg ctx ~idx sz r a)
  | Insn.Inc (sz, rm) | Insn.Dec (sz, rm) | Insn.Not (sz, rm) | Insn.Neg (sz, rm)
    -> (
      let xop =
        match info.Region.insn with
        | Insn.Inc _ -> A.XInc
        | Insn.Dec _ -> A.XDec
        | Insn.Not _ -> A.XNot
        | _ -> A.XNeg
      in
      let dst = prep_dst ctx ~idx sz rm in
      let a = read_dst ctx ~idx dst in
      match direct_rd dst with
      | Some r ->
          emit ctx ~idx
            (A.AluX { op = xop; size = sz; rd = Some r; a = A.R a; b = A.I 0; fr; fw = fr })
      | None ->
          let t = vreg ctx in
          emit ctx ~idx
            (A.AluX { op = xop; size = sz; rd = Some t; a = A.R a; b = A.I 0; fr; fw = fr });
          write_dst ctx ~idx dst t)
  | Insn.Shift (op, sz, rm, count) -> (
      let xop = xop_of_shift op in
      let b =
        match count with
        | Insn.C1 -> A.I 1
        | Insn.Cimm i -> A.I i
        | Insn.Ccl -> A.R Regs.ecx (* AluX masks the count to 5 bits *)
      in
      let dst = prep_dst ctx ~idx sz rm in
      let a = read_dst ctx ~idx dst in
      match direct_rd dst with
      | Some r ->
          emit ctx ~idx
            (A.AluX { op = xop; size = sz; rd = Some r; a = A.R a; b; fr; fw = fr })
      | None ->
          let t = vreg ctx in
          emit ctx ~idx
            (A.AluX { op = xop; size = sz; rd = Some t; a = A.R a; b; fr; fw = fr });
          write_dst ctx ~idx dst t)
  | Insn.Mul (sz, rm) | Insn.Imul1 (sz, rm) -> (
      let signed =
        match info.Region.insn with Insn.Imul1 _ -> true | _ -> false
      in
      let b = read_rm ctx ~idx sz rm in
      match sz with
      | Insn.S32 ->
          emit ctx ~idx
            (A.MulX
               { signed; size = Insn.S32; rd_lo = Regs.eax; rd_hi = Some Regs.edx;
                 a = A.R Regs.eax; b = A.R b; fr; fw = fr })
      | Insn.S8 ->
          let al = read8 ctx ~idx 0 in
          let tlo = vreg ctx and thi = vreg ctx in
          emit ctx ~idx
            (A.MulX
               { signed; size = Insn.S8; rd_lo = tlo; rd_hi = Some thi;
                 a = A.R al; b = A.R b; fr; fw = fr });
          write8 ctx ~idx 0 tlo;
          write8 ctx ~idx 4 thi)
  | Insn.Imul2 (r, rm) ->
      let b = read_rm ctx ~idx Insn.S32 rm in
      emit ctx ~idx
        (A.MulX
           { signed = true; size = Insn.S32; rd_lo = r; rd_hi = None;
             a = A.R r; b = A.R b; fr; fw = fr })
  | Insn.Div (sz, rm) | Insn.Idiv (sz, rm) -> (
      let signed =
        match info.Region.insn with Insn.Idiv _ -> true | _ -> false
      in
      let d = read_rm ctx ~idx sz rm in
      match sz with
      | Insn.S32 ->
          emit ctx ~idx
            (A.DivX
               { signed; size = Insn.S32; rd_q = Regs.eax; rd_r = Regs.edx;
                 hi = Regs.edx; lo = Regs.eax; divisor = A.R d })
      | Insn.S8 ->
          let ah = read8 ctx ~idx 4 and al = read8 ctx ~idx 0 in
          let tq = vreg ctx and tr = vreg ctx in
          emit ctx ~idx
            (A.DivX
               { signed; size = Insn.S8; rd_q = tq; rd_r = tr; hi = ah; lo = al;
                 divisor = A.R d });
          write8 ctx ~idx 0 tq;
          write8 ctx ~idx 4 tr)
  | Insn.Cdq ->
      (* edx = eax asr 31 *)
      emit ctx ~idx
        (A.Alu { op = A.HSar; rd = Regs.edx; a = Regs.eax; b = A.I 31 })
  | Insn.Push src -> (
      match src with
      | Insn.PushR r -> push32 ctx ~idx (A.R r)
      | Insn.PushI i -> push32 ctx ~idx (imm_src i)
      | Insn.PushM m ->
          let a = lower_addr ctx ~idx m in
          let t = load ctx ~idx ~size:4 a in
          push32 ctx ~idx (A.R t))
  | Insn.Pop rm -> (
      let t = load ctx ~idx ~size:4 (Regs.esp, 0) in
      emit ctx ~idx
        (A.Alu { op = A.HAdd; rd = Regs.esp; a = Regs.esp; b = A.I 4 });
      match rm with
      | Insn.R r -> emit ctx ~idx (A.MovR { rd = r; rs = t })
      | Insn.M m ->
          (* address uses the updated ESP, like hardware *)
          let a = lower_addr ctx ~idx m in
          store ctx ~idx ~size:4 a (A.R t))
  | Insn.Jcc (cc, target) ->
      if info.Region.loops then begin
        (* taken edge goes back to the region entry via a stub that
           commits the completed iteration first; the fallthrough path
           is unaffected (its later exit retires the full path) *)
        let l = Ir.fresh_label ctx.ir in
        ctx.stubs <-
          Sback { label = l; retired; base = ctx.committed } :: ctx.stubs;
        emit ctx ~idx (A.BrCond { cond = cc; fr; target = l });
        (match ctx.ir.Ir.items with
        | Ir.Op o :: _ -> o.Ir.barrier <- true
        | _ -> ())
      end
      else begin
        match info.Region.follow with
        | Region.FTarget ->
            (* trace follows the taken edge; exit on the fallthrough *)
            let l = stub_const ctx ~target:next ~retired () in
            emit ctx ~idx (A.BrCond { cond = Cond.negate cc; fr; target = l })
        | Region.FNext | Region.FEnd ->
            let l = stub_const ctx ~target ~retired () in
            emit ctx ~idx (A.BrCond { cond = cc; fr; target = l })
      end
  | Insn.Setcc (cc, rm) -> (
      let t = vreg ctx in
      emit ctx ~idx (A.SetCond { rd = t; cond = cc; fr });
      match rm with
      | Insn.R r -> write8 ctx ~idx r t
      | Insn.M m ->
          let a = lower_addr ctx ~idx m in
          store ctx ~idx ~size:1 a (A.R t))
  | Insn.Jmp target ->
      if info.Region.loops then begin
        emit ctx ~idx (A.MovI { rd = Vliw.Abi.eip; imm = ctx.region.Region.entry });
        emit ctx ~idx (A.Commit (retired - ctx.committed));
        emit ctx ~idx (A.Br { target = ctx.entry_label });
        (match ctx.ir.Ir.items with
        | Ir.Op o :: _ -> o.Ir.barrier <- true
        | _ -> ())
      end
      else if info.Region.follow = Region.FTarget then () (* folded away *)
      else
        let l = stub_const ctx ~target ~retired () in
        emit ctx ~idx (A.Br { target = l })
  | Insn.JmpInd rm ->
      let t = read_rm ctx ~idx Insn.S32 rm in
      let l = stub_reg ctx ~reg:t ~retired in
      emit ctx ~idx (A.Br { target = l })
  | Insn.Call target ->
      push32 ctx ~idx (A.I next);
      let l = stub_const ctx ~target ~retired () in
      emit ctx ~idx (A.Br { target = l })
  | Insn.CallInd rm ->
      let t = read_rm ctx ~idx Insn.S32 rm in
      push32 ctx ~idx (A.I next);
      let l = stub_reg ctx ~reg:t ~retired in
      emit ctx ~idx (A.Br { target = l })
  | Insn.Ret n ->
      let t = load ctx ~idx ~size:4 (Regs.esp, 0) in
      emit ctx ~idx
        (A.Alu { op = A.HAdd; rd = Regs.esp; a = Regs.esp; b = A.I (4 + n) });
      let l = stub_reg ctx ~reg:t ~retired in
      emit ctx ~idx (A.Br { target = l })
  | Insn.Strop { rep; op; size } ->
      let bytes = size_bytes size in
      let l_loop = Ir.fresh_label ctx.ir in
      let l_done = Ir.fresh_label ctx.ir in
      if not rep then begin
        (match op with
        | Insn.Movs ->
            let t = load ctx ~idx ~size:bytes (Regs.esi, 0) in
            store ctx ~idx ~size:bytes (Regs.edi, 0) (A.R t);
            emit ctx ~idx
              (A.Alu { op = A.HAdd; rd = Regs.esi; a = Regs.esi; b = A.I bytes })
        | Insn.Stos ->
            let v =
              match size with
              | Insn.S8 -> read8 ctx ~idx 0
              | Insn.S32 -> Regs.eax
            in
            store ctx ~idx ~size:bytes (Regs.edi, 0) (A.R v));
        emit ctx ~idx
          (A.Alu { op = A.HAdd; rd = Regs.edi; a = Regs.edi; b = A.I bytes })
      end
      else begin
        (* committed EIP must stay on the REP instruction while the loop
           commits per iteration (restartable semantics) *)
        emit ctx ~idx (A.MovI { rd = Vliw.Abi.eip; imm = info.Region.addr });
        (* Checkpoint the instructions completed before the string op.
           The per-iteration commits below publish their architectural
           effects, so deferring their count to the path-end commit
           would let an interrupt taken at a mid-string commit point (a
           consistent state — no rollback) leave the translation with
           committed-but-uncounted instructions, permanently stalling
           the retired-instruction clock that drives timers and
           injected events.  Later commits on this path count relative
           to [ctx.committed]. *)
        if idx > ctx.committed then begin
          emit ctx ~idx (A.Commit (idx - ctx.committed));
          ctx.committed <- idx
        end;
        Ir.emit_label ctx.ir l_loop;
        emit ctx ~idx (A.BrCmp { cmp = A.Ceq; a = Regs.ecx; b = A.I 0; target = l_done });
        (match op with
        | Insn.Movs ->
            let t = load ctx ~idx ~size:bytes (Regs.esi, 0) in
            store ctx ~idx ~size:bytes (Regs.edi, 0) (A.R t);
            emit ctx ~idx
              (A.Alu { op = A.HAdd; rd = Regs.esi; a = Regs.esi; b = A.I bytes })
        | Insn.Stos ->
            let v =
              match size with
              | Insn.S8 -> read8 ctx ~idx 0
              | Insn.S32 -> Regs.eax
            in
            store ctx ~idx ~size:bytes (Regs.edi, 0) (A.R v));
        emit ctx ~idx
          (A.Alu { op = A.HAdd; rd = Regs.edi; a = Regs.edi; b = A.I bytes });
        emit ctx ~idx
          (A.Alu { op = A.HSub; rd = Regs.ecx; a = Regs.ecx; b = A.I 1 });
        emit ctx ~idx (A.Commit 0);
        emit ctx ~idx (A.Br { target = l_loop });
        Ir.emit_label ctx.ir l_done
      end
  | Insn.In _ | Insn.Out _ | Insn.Int _ | Insn.Int3 | Insn.Iret | Insn.Hlt
  | Insn.Cli | Insn.Sti | Insn.Lidt _ | Insn.Pushf | Insn.Popf ->
      (* interpreter-only; region selection never includes these *)
      assert false
  | Insn.Nop -> ()

(* ------------------------------------------------------------------ *)
(* Whole-region lowering                                               *)
(* ------------------------------------------------------------------ *)

(* Emit the exit stubs collected during lowering. *)
let emit_stubs ctx =
  List.iter
    (fun stub ->
      match stub with
      | Sconst { label; target; retired; base; kind } ->
          Ir.emit_label ctx.ir label;
          let exit_idx =
            Ir.add_exit ctx.ir ~target:(Vliw.Code.Const target) ~kind
              ~x86_retired:retired
          in
          emit ctx ~idx:(retired - 1) (A.MovI { rd = Vliw.Abi.eip; imm = target });
          emit ctx ~idx:(retired - 1) (A.Commit (retired - base));
          emit ctx ~idx:(retired - 1) (A.Exit exit_idx)
      | Sreg { label; reg; retired; base } ->
          Ir.emit_label ctx.ir label;
          let exit_idx =
            Ir.add_exit ctx.ir ~target:(Vliw.Code.FromReg Vliw.Abi.eip)
              ~kind:Vliw.Code.Enext ~x86_retired:retired
          in
          emit ctx ~idx:(retired - 1) (A.MovR { rd = Vliw.Abi.eip; rs = reg });
          emit ctx ~idx:(retired - 1) (A.Commit (retired - base));
          emit ctx ~idx:(retired - 1) (A.Exit exit_idx)
      | Sback { label; retired; base } ->
          Ir.emit_label ctx.ir label;
          (* committed EIP at an iteration boundary is the entry *)
          emit ctx ~idx:(retired - 1)
            (A.MovI { rd = Vliw.Abi.eip; imm = ctx.region.Region.entry });
          emit ctx ~idx:(retired - 1) (A.Commit (retired - base));
          emit ctx ~idx:(retired - 1) (A.Br { target = ctx.entry_label }))
    (List.rev ctx.stubs)

(** Lower a region to IR.  The returned IR still uses virtual registers
    and label ids; optimization, scheduling and register allocation
    follow. *)
let lower ~(policy : Policy.t) (region : Region.t) =
  let ir = Ir.create () in
  let ctx =
    { ir; region; policy; stubs = []; committed = 0;
      entry_label = Ir.fresh_label ir }
  in
  Ir.emit_label ir ctx.entry_label;
  let n = Array.length region.Region.insns in
  Array.iteri (fun idx info -> lower_insn ctx ~idx info) region.Region.insns;
  (* Fallthrough off the end of the trace. *)
  (match region.Region.cont with
  | Some c ->
      let l = stub_const ctx ~target:c ~retired:n () in
      emit ctx ~idx:(n - 1) (A.Br { target = l })
  | None -> ());
  emit_stubs ctx;
  ir
