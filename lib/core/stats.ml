(** CMS-level statistics, layered over the host {!Vliw.Perf} counters.

    The headline metric everywhere is *molecules per retired x86
    instruction* (the paper's Table 1 metric).  Total molecules =
    molecules executed by translations + cost-model charges for the
    interpreter, the translator and the runtime's fault handling. *)

type t = {
  mutable x86_interp : int;  (** x86 insns retired by the interpreter *)
  mutable x86_translated : int;  (** x86 insns retired from the tcache *)
  mutable translations : int;
  mutable retranslations : int;
  mutable invalidations : int;
  mutable insns_translated : int;  (** x86 insns fed to the translator *)
  mutable translated_atoms : int;  (** emitted code size in atoms *)
  mutable translations_verified : int;
      (** translations accepted by the static verifier
          ({!Config.verify_translations} on and a verifier installed) *)
  mutable spec_faults : int;  (** native faults that proved speculative *)
  mutable genuine_faults : int;  (** faults that reproduced under interp *)
  mutable irq_delivered : int;
  mutable irq_rollbacks : int;  (** interrupts that interrupted a translation *)
  mutable chain_patches : int;
  mutable lookups : int;  (** dispatcher lookups on unchained paths *)
  mutable fault_entries : int;  (** CMS native-fault handler entries *)
  mutable fg_installs : int;
  mutable reval_checks : int;  (** self-revalidation prologue runs *)
  mutable reval_hits : int;  (** prologue found code unchanged *)
  mutable selfcheck_fails : int;
  mutable group_hits : int;  (** reactivated a grouped translation *)
  mutable tcache_flushes : int;
  mutable charged_molecules : int;  (** cost-model molecules (non-translation) *)
  (* --- recovery hardening (containment, demotion ladder, eviction) --- *)
  mutable containments : int;
      (** exceptions that escaped translate/schedule/codegen and were
          absorbed by the engine's containment boundary *)
  mutable demotions : int;  (** entries dropped to the hard conservative policy *)
  mutable quarantines : int;  (** entries demoted to interpreter-only *)
  mutable quarantined_steps : int;
      (** dispatches interpreted because the entry is quarantined *)
  mutable progress_forces : int;
      (** interpreter steps forced by the forward-progress watchdog *)
  mutable tcache_evictions : int;  (** generational eviction rounds *)
  mutable tcache_evicted : int;  (** translations discarded by eviction *)
  mutable adapt_evictions : int;  (** policy-table entries evicted at capacity *)
  (* --- host fast-path counters (hits/misses of the host-side caches;
     purely observational — no cost-model impact) --- *)
  mutable tlb_hits : int;  (** software-TLB hits in {!Machine.Mmu} *)
  mutable tlb_misses : int;
  mutable dcache_hits : int;  (** decoded-instruction cache hits *)
  mutable dcache_misses : int;
  mutable dcache_invalidations : int;  (** page invalidations + flushes *)
  mutable ram_fast_reads : int;  (** reads/fetches that bypassed the bus *)
  mutable ram_fast_writes : int;  (** writes that bypassed the bus *)
  (* --- persist (checkpoint/restore + deterministic record-replay);
     host-side bookkeeping, normalized away by strict digests --- *)
  mutable snapshots_written : int;  (** snapshot images captured *)
  mutable snapshot_bytes : int;  (** total bytes across those images *)
  mutable journal_events : int;
      (** journal events recorded or replayed into this engine *)
  mutable resumes : int;  (** times this state was restored from an image *)
  (* --- ahead-of-time translation images (static discovery + AOT) --- *)
  mutable aot_loaded : int;  (** translations installed from an AOT image *)
  mutable aot_rejected : int;
      (** image entries refused at install (code bytes diverged from the
          snapshot, or an entry already had a live translation) *)
  mutable aot_hits : int;  (** dispatches served by an AOT translation *)
  mutable aot_x86_retired : int;
      (** x86 instructions retired inside AOT-minted translations *)
  mutable aot_invalidated : int;
      (** AOT translations invalidated (SMC) or evicted at runtime;
          re-translation of those entries falls to the dynamic tier *)
  (* --- closure execution + direct chaining (steady-state tier) --- *)
  mutable closures_compiled : int;
      (** translations closure-compiled at first dispatch
          ({!Config.closure_exec}) *)
  mutable chained_exits_taken : int;
      (** translation-to-translation transfers that bypassed the
          dispatcher through a patched [Chained] exit
          ({!Config.chain_exits}) *)
  mutable chain_unlinks_evict : int;
      (** chained exits unlinked because a translation died to
          generational eviction, capacity flush or replacement *)
  mutable chain_unlinks_demote : int;
      (** chained exits unlinked by demotion-ladder invalidation *)
  mutable chain_unlinks_smc : int;
      (** chained exits unlinked by SMC/DMA invalidation *)
  mutable chain_unlinks_aot : int;
      (** chained exits unlinked because the dying translation was an
          AOT entry (any trigger) *)
  mutable chain_unlinks_chaos : int;
      (** chained exits forcibly unlinked by the chaos layer's
          unlink storms *)
  (* --- background translation (concurrent translator domain).  All
     of these are host-side scheduling bookkeeping: completion order,
     queue pressure and wait/overlap accounting depend on wall-clock
     domain scheduling, so every counter here is normalized to zero by
     the strict digests and the differential suites. --- *)
  mutable bg_enqueued : int;
      (** requests accepted into the background work queue *)
  mutable bg_prefetched : int;
      (** of those, branch-target prefetches of a region's continuation *)
  mutable bg_deduped : int;
      (** enqueue attempts skipped because the entry already has a live
          request (queued, compiling, or done-awaiting-install) *)
  mutable bg_dropped : int;  (** enqueues rejected by the queue bound *)
  mutable bg_compiled : int;  (** compilations the worker domain finished *)
  mutable bg_installed : int;
      (** hotness-instant installs served by a validated background
          result (no synchronous compile needed) *)
  mutable bg_stale : int;
      (** background results rejected at install: code bytes, region
          shape or policy drifted between enqueue and install (SMC,
          adaptation) — the engine recompiled synchronously *)
  mutable bg_waits : int;
      (** installs that blocked on an in-flight background compile *)
  mutable bg_unready : int;
      (** installs that found the request still queued (worker busy)
          and reclaimed it for synchronous translation *)
  mutable bg_failed : int;
      (** requests that died in the worker (compile failure, injected
          doom, or translator-domain death) — synchronous fallback *)
  mutable bg_overlap_insns : int;
      (** x86 instructions the interpreter retired while at least one
          background request was in flight (the overlap the paper's
          asynchronous translator buys) *)
  (* --- interrupt pressure (device raises vs. CPU delivery; mirrors of
     deterministic machine-side counters, synced by the engine) --- *)
  mutable irq_raised : int;  (** device raises latched by the PIC *)
  mutable irq_deferred : int;
      (** raises that could not become a fresh delivery immediately:
          the line was already latched or masked, so the raise merged
          into the pending latch (delivery deferred) *)
  mutable nic_rx_frames : int;  (** frames delivered into the RX ring *)
  mutable nic_tx_frames : int;  (** frames transmitted from the TX ring *)
  mutable nic_rx_dropped : int;
      (** frames dropped by backpressure: backlog overflow or an
          unarmed RX ring at drain time *)
  mutable nic_irqs : int;  (** interrupts the NIC actually raised *)
  mutable nic_irq_coalesced : int;
      (** RX interrupts suppressed by the mitigation register *)
  (* --- shared translation store (fleet mode) --- *)
  mutable store_hits : int;
      (** translations installed from the shared store after consumer
          revalidation (no local compile needed) *)
  mutable store_misses : int;
      (** store lookups that found no entry for the current
          (entry, source bytes, policy) key *)
  mutable store_rejects : int;
      (** store entries refused at consume time: codec corruption,
          digest mismatch, region drift, or verifier failure *)
  mutable store_quarantines : int;
      (** keys this machine poisoned fleet-wide (first rejection of a
          bad entry; later consumers skip it without revalidating) *)
  mutable store_published : int;
      (** freshly minted translations this machine published into the
          shared store (post publisher-side verification) *)
}

let create () =
  {
    x86_interp = 0;
    x86_translated = 0;
    translations = 0;
    retranslations = 0;
    invalidations = 0;
    insns_translated = 0;
    translated_atoms = 0;
    translations_verified = 0;
    spec_faults = 0;
    genuine_faults = 0;
    irq_delivered = 0;
    irq_rollbacks = 0;
    chain_patches = 0;
    lookups = 0;
    fault_entries = 0;
    fg_installs = 0;
    reval_checks = 0;
    reval_hits = 0;
    selfcheck_fails = 0;
    group_hits = 0;
    tcache_flushes = 0;
    charged_molecules = 0;
    containments = 0;
    demotions = 0;
    quarantines = 0;
    quarantined_steps = 0;
    progress_forces = 0;
    tcache_evictions = 0;
    tcache_evicted = 0;
    adapt_evictions = 0;
    tlb_hits = 0;
    tlb_misses = 0;
    dcache_hits = 0;
    dcache_misses = 0;
    dcache_invalidations = 0;
    ram_fast_reads = 0;
    ram_fast_writes = 0;
    snapshots_written = 0;
    snapshot_bytes = 0;
    journal_events = 0;
    resumes = 0;
    aot_loaded = 0;
    aot_rejected = 0;
    aot_hits = 0;
    aot_x86_retired = 0;
    aot_invalidated = 0;
    closures_compiled = 0;
    chained_exits_taken = 0;
    chain_unlinks_evict = 0;
    chain_unlinks_demote = 0;
    chain_unlinks_smc = 0;
    chain_unlinks_aot = 0;
    chain_unlinks_chaos = 0;
    bg_enqueued = 0;
    bg_prefetched = 0;
    bg_deduped = 0;
    bg_dropped = 0;
    bg_compiled = 0;
    bg_installed = 0;
    bg_stale = 0;
    bg_waits = 0;
    bg_unready = 0;
    bg_failed = 0;
    bg_overlap_insns = 0;
    irq_raised = 0;
    irq_deferred = 0;
    nic_rx_frames = 0;
    nic_tx_frames = 0;
    nic_rx_dropped = 0;
    nic_irqs = 0;
    nic_irq_coalesced = 0;
    store_hits = 0;
    store_misses = 0;
    store_rejects = 0;
    store_quarantines = 0;
    store_published = 0;
  }

let charge t m = t.charged_molecules <- t.charged_molecules + m

let x86_retired t = t.x86_interp + t.x86_translated

(** Total molecules: host-executed plus cost-model charges. *)
let total_molecules t (perf : Vliw.Perf.t) =
  perf.Vliw.Perf.molecules + t.charged_molecules

(** Molecules per retired x86 instruction — the headline metric. *)
let mpi t perf =
  let retired = x86_retired t in
  if retired = 0 then 0.0
  else float_of_int (total_molecules t perf) /. float_of_int retired

let pp fmt t =
  Fmt.pf fmt
    "x86[interp=%d trans=%d] translations=%d (re=%d inval=%d verif=%d) \
     faults[spec=%d genuine=%d] irq[%d rb=%d] chain=%d lookups=%d \
     smc[fginst=%d reval=%d/%d scfail=%d group=%d] charged=%d"
    t.x86_interp t.x86_translated t.translations t.retranslations
    t.invalidations t.translations_verified t.spec_faults t.genuine_faults
    t.irq_delivered t.irq_rollbacks t.chain_patches t.lookups t.fg_installs
    t.reval_hits t.reval_checks t.selfcheck_fails t.group_hits
    t.charged_molecules

(** Recovery/robustness counters: rollback handling, the demotion
    ladder, containment, and cache-pressure degradation. *)
let pp_recovery fmt t =
  Fmt.pf fmt
    "faults[spec=%d genuine=%d] irq-rollbacks=%d containments=%d \
     ladder[demote=%d quarantine=%d interp-steps=%d] watchdog=%d \
     tcache[flush=%d evict-rounds=%d evicted=%d] adapt-evict=%d"
    t.spec_faults t.genuine_faults t.irq_rollbacks t.containments
    t.demotions t.quarantines t.quarantined_steps t.progress_forces
    t.tcache_flushes t.tcache_evictions t.tcache_evicted t.adapt_evictions

(** The host-side cache counters ({!Config.host_fast_paths} layers). *)
let pp_host fmt t =
  Fmt.pf fmt
    "tlb[hit=%d miss=%d] dcache[hit=%d miss=%d inval=%d] \
     ram-fast[read=%d write=%d]"
    t.tlb_hits t.tlb_misses t.dcache_hits t.dcache_misses
    t.dcache_invalidations t.ram_fast_reads t.ram_fast_writes

(** Persist counters (checkpoint/restore + record-replay). *)
let pp_persist fmt t =
  Fmt.pf fmt
    "snapshots[written=%d bytes=%d] journal-events=%d resumes=%d"
    t.snapshots_written t.snapshot_bytes t.journal_events t.resumes

(** Closure/chaining counters: how much of the run went through the
    steady-state tier, and why links were torn down. *)
let pp_chain fmt t =
  Fmt.pf fmt
    "closures=%d chained-exits=%d patches=%d \
     unlinks[evict=%d demote=%d smc=%d aot=%d chaos=%d]"
    t.closures_compiled t.chained_exits_taken t.chain_patches
    t.chain_unlinks_evict t.chain_unlinks_demote t.chain_unlinks_smc
    t.chain_unlinks_aot t.chain_unlinks_chaos

(** Background-translation counters: queue traffic, install outcomes
    and the execution/translation overlap. *)
let pp_bgtrans fmt t =
  Fmt.pf fmt
    "bg[enq=%d prefetch=%d dedup=%d dropped=%d] compiled=%d \
     installs[bg=%d stale=%d waits=%d unready=%d failed=%d] \
     overlap-insns=%d"
    t.bg_enqueued t.bg_prefetched t.bg_deduped t.bg_dropped t.bg_compiled
    t.bg_installed t.bg_stale t.bg_waits t.bg_unready t.bg_failed
    t.bg_overlap_insns

(** Interrupt-pressure counters: device raises vs. CPU deliveries,
    rollbacks forced by asynchronous events, and the NIC's frame /
    backpressure / coalescing accounting. *)
let pp_irq fmt t =
  Fmt.pf fmt
    "irq[raised=%d delivered=%d deferred=%d rollbacks=%d] \
     nic[rx=%d tx=%d dropped=%d irqs=%d coalesced=%d]"
    t.irq_raised t.irq_delivered t.irq_deferred t.irq_rollbacks
    t.nic_rx_frames t.nic_tx_frames t.nic_rx_dropped t.nic_irqs
    t.nic_irq_coalesced

(** Shared-store counters (fleet mode): how much of this machine's
    translation work the fleet's warm store carried, and how much of
    the store it refused to trust. *)
let pp_fleet fmt t =
  Fmt.pf fmt
    "store[hits=%d misses=%d rejects=%d quarantines=%d published=%d] \
     translations=%d"
    t.store_hits t.store_misses t.store_rejects t.store_quarantines
    t.store_published t.translations

(** AOT counters: what the static pass shipped and how much of the run
    it actually carried (AOT hits vs dynamic retranslations). *)
let pp_aot fmt t =
  Fmt.pf fmt
    "aot[loaded=%d rejected=%d inval=%d] hits[aot=%d] x86-from-aot=%d \
     dynamic-translations=%d"
    t.aot_loaded t.aot_rejected t.aot_invalidated t.aot_hits
    t.aot_x86_retired t.translations
