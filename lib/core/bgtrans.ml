(** The concurrent background translator (ROADMAP item 1).

    The paper's CMS hides translation cost behind execution: the
    interpreter keeps retiring instructions while hot regions are
    translated asynchronously.  This module is the host-side
    realization — a single worker OCaml domain fed by a bounded,
    deduplicated, profile-priority work queue.

    {b The determinism contract.}  Background translation is a pure
    wall-clock accelerator; canonical semantics are "as if
    synchronous".  Three rules enforce that:

    - {b Immutable inputs.}  A request carries an immutable snapshot of
      everything the compiler needs: the selected region, the policy in
      force at enqueue, and the source code bytes.  The worker never
      reads shared engine or machine state — {!Codegen.compile_presnapped}
      is a deterministic pure function of the job.
    - {b Canonical install instant.}  The engine consumes a result only
      at the exact dispatch boundary where synchronous translation
      would have run (the hotness threshold).  Until then the finished
      translation sits in the request table, invisible to dispatch.
    - {b Validate or recompile.}  At install the engine re-derives the
      canonical inputs (region selection, policy, current code bytes)
      and compares them against the job.  Any drift — self-modifying
      code between enqueue and install, policy adaptation, profile-bias
      reshaping the trace — rejects the background result and the
      engine compiles synchronously.  Since the compiler is
      deterministic, a validated hit is bit-identical to the
      synchronous compile it replaces.

    A fourth rule makes the queue replayable: {b request existence is
    deterministic}.  Whether an enqueue is accepted, deduplicated or
    dropped depends only on the engine's own deterministic sequence of
    [enqueue]/[consume] calls — the capacity bound counts {e
    unconsumed} requests (released only at the canonical consume
    instant), never worker progress, and worker death never rejects an
    enqueue.  Worker timing can therefore only change a request's
    {e status} (ready / still compiling / failed), every branch of
    which the consume protocol maps to the same architectural outcome;
    the set and order of consume events — what the record-replay
    journal captures as [Bg_arrive] — is identical across record,
    replay, and any scheduler interleaving.

    Chaos (the {!Cms_robust} layer) dooms individual requests — fail,
    wedge, delay, or kill the worker domain outright — and every doom
    degrades to the synchronous fallback, so the demotion ladder and
    forward progress are untouched.  Record-replay runs the queue in
    {e virtual} mode: requests are tracked (so install-boundary
    consume events fire at the recorded instants) but nothing compiles
    and no domain is spawned — replay is scheduler-free. *)

(** An injected adversity for one request (drawn engine-side from the
    chaos RNG at enqueue, so the schedule is deterministic; the worker
    only acts it out). *)
type doom =
  | Dfail  (** the compile "crashes": request fails, sync fallback *)
  | Dwedge
      (** the compile never finishes: the request is abandoned in a
          never-completing state and the worker moves on — awaiters
          must not block on it *)
  | Ddelay  (** the compile is artificially slowed before completing *)
  | Ddie
      (** the worker domain dies mid-request: everything queued behind
          it fails and the domain exits — no respawn, so the rest of
          the run degrades to synchronous translation (the
          translator-death demotion) *)

(** An immutable unit of background work. *)
type job = {
  entry : int;
  region : Region.t;  (** enqueue-time canonical selection *)
  policy : Policy.t;  (** enqueue-time adaptive policy *)
  bytes : Bytes.t;  (** enqueue-time source bytes ({!Codegen.take_snapshot} format) *)
  priority : int;  (** profile count at enqueue; higher compiles first *)
  doom : doom option;
  prefetched : bool;  (** branch-target prefetch, not a direct hot leader *)
}

type status =
  | Queued
  | Compiling
  | Done of Codegen.compiled
  | Broken  (** compile failed / doomed / worker died: sync fallback *)
  | Wedged  (** never completes; consume must not block on it *)
  | Consumed  (** the install boundary took its decision *)

type req = { job : job; mutable status : status }

type t = {
  cfg : Config.t;
  lock : Mutex.t;
  work : Condition.t;  (** worker wakeup: queue non-empty or stopping *)
  finished : Condition.t;  (** awaiter wakeup: a request left [Compiling] *)
  reqs : (int, req) Hashtbl.t;  (** entry → lifecycle record *)
  mutable queue : req list;  (** pending, sorted by descending priority *)
  mutable live : int;
      (** unconsumed requests — the deterministically-bounded quantity:
          incremented at enqueue, decremented only at consume, so the
          capacity decision never observes worker progress *)
  mutable busy : int;
      (** queued + compiling (worker-paced; racy overlap metric only) *)
  mutable done_held : int;  (** finished results awaiting install *)
  mutable worker : unit Domain.t option;
  mutable stopping : bool;  (** quiesce in progress: worker must exit *)
  mutable dead : bool;  (** the worker domain died (chaos); permanent *)
  mutable virtual_ : bool;  (** replay mode: track requests, never compile *)
  (* worker-side tallies, read under [lock] by [counters] *)
  mutable n_compiled : int;
  mutable n_failed : int;
}

let create (cfg : Config.t) =
  {
    cfg;
    lock = Mutex.create ();
    work = Condition.create ();
    finished = Condition.create ();
    reqs = Hashtbl.create 64;
    queue = [];
    live = 0;
    busy = 0;
    done_held = 0;
    worker = None;
    stopping = false;
    dead = false;
    virtual_ = false;
    n_compiled = 0;
    n_failed = 0;
  }

(** Switch to virtual (replay) mode: requests are recorded and consumed
    at the same canonical instants, but nothing is compiled and no
    domain runs — the installing side always takes the synchronous
    path, which yields the identical translation. *)
let set_virtual t v = t.virtual_ <- v

(** Racy read used by the dispatcher's overlap accounting (one int
    load per interpreted instruction; taking the lock there would cost
    more than the counter is worth, and the counter is normalized out
    of every digest). *)
let in_flight t = t.busy

let counters t =
  Mutex.lock t.lock;
  let c = (t.n_compiled, t.n_failed) in
  Mutex.unlock t.lock;
  c

(* ------------------------------------------------------------------ *)
(* Worker domain                                                       *)
(* ------------------------------------------------------------------ *)

let spin n =
  for _ = 1 to n do
    Domain.cpu_relax ()
  done

(* Transition a request out of the worker's hands and wake awaiters.
   Never touches [live]: request existence is the engine's business. *)
let finish_locked t (r : req) status =
  r.status <- status;
  t.busy <- t.busy - 1;
  (match status with
  | Done _ ->
      t.done_held <- t.done_held + 1;
      t.n_compiled <- t.n_compiled + 1
  | _ -> t.n_failed <- t.n_failed + 1);
  Condition.broadcast t.finished

(* Worker body: pop the highest-priority request, act out its doom or
   compile it from its immutable inputs, publish the outcome.  Every
   exception is absorbed into [Broken] — the canonical (synchronous)
   retry at install re-raises whatever matters, at the canonical
   point, inside the engine's containment boundary. *)
let worker_loop t =
  let running = ref true in
  while !running do
    Mutex.lock t.lock;
    while t.queue = [] && not t.stopping do
      Condition.wait t.work t.lock
    done;
    match t.queue with
    | [] ->
        (* stopping with an empty queue *)
        running := false;
        Mutex.unlock t.lock
    | r :: rest -> (
        t.queue <- rest;
        r.status <- Compiling;
        Mutex.unlock t.lock;
        match r.job.doom with
        | Some Ddie ->
            (* translator-domain death: fail the current request, fail
               everything still queued, and exit the domain.  [dead]
               stops respawns, so later requests sit [Queued] until the
               install boundary reclaims them for synchronous use. *)
            Mutex.lock t.lock;
            t.dead <- true;
            finish_locked t r Broken;
            List.iter (fun q -> finish_locked t q Broken) t.queue;
            t.queue <- [];
            running := false;
            Mutex.unlock t.lock
        | Some Dwedge ->
            (* a wedge that still lets the harness join the domain:
               the request never completes (awaiters see [Wedged] and
               fall back instead of blocking), the worker moves on *)
            Mutex.lock t.lock;
            finish_locked t r Wedged;
            Mutex.unlock t.lock
        | Some Dfail ->
            Mutex.lock t.lock;
            finish_locked t r Broken;
            Mutex.unlock t.lock
        | (Some Ddelay | None) as d ->
            if d <> None then spin 50_000;
            let outcome =
              match
                Codegen.compile_presnapped ~cfg:t.cfg ~policy:r.job.policy
                  ~bytes:r.job.bytes r.job.region
              with
              | compiled -> Done compiled
              | exception _ -> Broken
            in
            Mutex.lock t.lock;
            finish_locked t r outcome;
            Mutex.unlock t.lock)
  done

(* Lazy spawn, called under [lock].  One domain per engine, joined at
   the end of every [Engine.run] (OCaml 5 caps live domains; tests
   create thousands of engines). *)
let ensure_worker_locked t =
  if t.worker = None && (not t.dead) && not t.virtual_ then
    t.worker <- Some (Domain.spawn (fun () -> worker_loop t))

(* ------------------------------------------------------------------ *)
(* Engine-side API                                                     *)
(* ------------------------------------------------------------------ *)

(** Would an enqueue for [entry] be considered?  (Cheap pre-check so
    the engine skips region selection and snapshotting for entries
    that already have a live request.)  Deliberately ignores worker
    state — the answer must be a pure function of the engine's own
    call history. *)
let wants t entry =
  match Hashtbl.find_opt t.reqs entry with
  | None | Some { status = Consumed; _ } -> true
  | Some _ -> false

type enq = Accepted | Deduped | Full

let enqueue t (job : job) =
  Mutex.lock t.lock;
  let verdict =
    match Hashtbl.find_opt t.reqs job.entry with
    | Some { status = Queued | Compiling | Done _ | Broken | Wedged; _ } ->
        Deduped
    | None | Some { status = Consumed; _ } ->
        if t.live >= max 1 t.cfg.Config.bg_queue_capacity then Full
        else begin
          let r = { job; status = Queued } in
          Hashtbl.replace t.reqs job.entry r;
          (* priority insertion, stable for equal priorities *)
          let rec ins = function
            | [] -> [ r ]
            | r0 :: rest when r0.job.priority >= job.priority ->
                r0 :: ins rest
            | rest -> r :: rest
          in
          t.queue <- ins t.queue;
          t.live <- t.live + 1;
          t.busy <- t.busy + 1;
          ensure_worker_locked t;
          Condition.signal t.work;
          Accepted
        end
  in
  Mutex.unlock t.lock;
  verdict

(** What the install boundary took from the queue. *)
type taken = {
  t_job : job;
  t_result : Codegen.compiled option;  (** [None]: synchronous fallback *)
  t_waited : bool;  (** blocked on an in-flight compile *)
  t_unready : bool;  (** still queued; reclaimed for synchronous use *)
}

(** Consume [entry]'s request at the canonical install instant.
    [None] when no live request exists (never enqueued, or already
    consumed).  A queued request is reclaimed (the engine needs the
    translation {e now}; compiling synchronously is exactly what it
    would have done without the queue).  An in-flight compile is
    awaited — the only blocking point in the design, bounded by one
    region's compile time; wedged or dead requests never block. *)
let consume t entry =
  Mutex.lock t.lock;
  let out =
    match Hashtbl.find_opt t.reqs entry with
    | None | Some { status = Consumed; _ } -> None
    | Some r ->
        let taken =
          match r.status with
          | Queued ->
              t.queue <- List.filter (fun q -> q != r) t.queue;
              t.busy <- t.busy - 1;
              { t_job = r.job; t_result = None; t_waited = false;
                t_unready = true }
          | _ ->
              let waited = ref false in
              while
                (match r.status with Compiling -> true | _ -> false)
                && not t.dead
              do
                waited := true;
                Condition.wait t.finished t.lock
              done;
              let result =
                match r.status with Done c -> Some c | _ -> None
              in
              (match r.status with
              | Done _ -> t.done_held <- t.done_held - 1
              | Compiling ->
                  (* worker died under us mid-transition *)
                  t.busy <- t.busy - 1
              | _ -> ());
              { t_job = r.job; t_result = result; t_waited = !waited;
                t_unready = false }
        in
        r.status <- Consumed;
        t.live <- t.live - 1;
        Some taken
  in
  Mutex.unlock t.lock;
  out

(** Finished-but-uninstalled results, as [(entry, compiled)].  The
    speculation non-interference invariant asserts none of these
    compiled objects is reachable through the translation cache: a
    background result must become observable only when the canonical
    install boundary ships it. *)
let done_uninstalled t =
  if t.done_held = 0 then []
  else begin
    Mutex.lock t.lock;
    let l =
      Hashtbl.fold
        (fun entry r acc ->
          match r.status with Done c -> (entry, c) :: acc | _ -> acc)
        t.reqs []
    in
    Mutex.unlock t.lock;
    l
  end

(** Stop and join the worker domain (idempotent; called at the end of
    every [Engine.run], including exceptional exits).  Queued requests
    survive — a later run's first enqueue respawns the worker and the
    queue drains from where it left off; finished results stay
    installable. *)
let quiesce t =
  match t.worker with
  | None -> ()
  | Some d ->
      Mutex.lock t.lock;
      t.stopping <- true;
      Condition.broadcast t.work;
      Mutex.unlock t.lock;
      Domain.join d;
      t.worker <- None;
      t.stopping <- false
