(** Per-entry adaptive translation policies.

    Records the conservatism accumulated for each translation entry
    point.  Upgrades go through {!Policy.merge}, so policies only ever
    become more conservative — the paper's defence against bouncing
    between incomparable translations (§3.2).  An entry present in the
    table is "hot": it was invalidated for adaptation and should be
    retranslated on next dispatch without climbing the interpreter
    threshold again.

    This module also owns the *demotion ladder*: per-entry budgets that
    escalate a misbehaving entry full-opt → hard-conservative →
    interpreter-only quarantine.  Quarantine is terminal (monotone, like
    every upgrade), which is what turns the paper's "interpreter as
    safety net" into a forward-progress guarantee — an entry whose
    translations fault on every execution climbs the ladder in a bounded
    number of rollbacks and then runs interpretively forever.

    The table is bounded ({!Config.adapt_capacity}): at capacity the
    coldest entry is evicted, preferring non-quarantined victims so the
    forward-progress state survives pressure. *)

type entry = {
  mutable pol : Policy.t;
  mutable touch : int;  (** clock stamp of the last access (for eviction) *)
  mutable escalations : int;  (** ladder rungs climbed (spec-fault storms) *)
  mutable failures : int;  (** contained translator/verifier failures *)
}

(** What a ladder step did to the entry. *)
type verdict = Demoted | Quarantined

type t = {
  tbl : (int, entry) Hashtbl.t;
  cfg : Config.t;
  mutable clock : int;
  mutable quarantined_live : int;
      (** quarantined entries currently in the table; keeps the
          per-dispatch {!quarantined} check off the hashing path while
          nothing is quarantined (the overwhelmingly common case) *)
  mutable evictions : int;
}

let create cfg =
  { tbl = Hashtbl.create 64; cfg; clock = 0; quarantined_live = 0;
    evictions = 0 }

let tick t =
  t.clock <- t.clock + 1;
  t.clock

(* Evict the coldest entry to make room, preferring non-quarantined
   victims: evicting a quarantine would let an always-faulting entry
   re-climb the ladder from scratch. *)
let evict_one t =
  let victim =
    Hashtbl.fold
      (fun key e acc ->
        let better =
          match acc with
          | None -> true
          | Some (_, best) ->
              let bq = best.pol.Policy.interp_only
              and eq = e.pol.Policy.interp_only in
              if bq <> eq then bq (* prefer a non-quarantined victim *)
              else e.touch < best.touch
        in
        if better then Some (key, e) else acc)
      t.tbl None
  in
  match victim with
  | None -> ()
  | Some (key, e) ->
      if e.pol.Policy.interp_only then
        t.quarantined_live <- t.quarantined_live - 1;
      Hashtbl.remove t.tbl key;
      t.evictions <- t.evictions + 1

let ensure t key =
  match Hashtbl.find_opt t.tbl key with
  | Some e ->
      e.touch <- tick t;
      e
  | None ->
      if Hashtbl.length t.tbl >= t.cfg.Config.adapt_capacity then evict_one t;
      let e =
        { pol = Policy.default t.cfg; touch = tick t; escalations = 0;
          failures = 0 }
      in
      Hashtbl.add t.tbl key e;
      e

let get t key =
  match Hashtbl.find_opt t.tbl key with
  | Some e ->
      e.touch <- tick t;
      e.pol
  | None -> Policy.default t.cfg

(** Read an entry's policy without ticking the clock, touching the
    entry or creating it.  The background-translation enqueue path
    uses this: a speculative prefetch must not perturb eviction order
    or table contents, or the background run would diverge from the
    synchronous one under capacity pressure. *)
let peek t key =
  match Hashtbl.find_opt t.tbl key with
  | Some e -> e.pol
  | None -> Policy.default t.cfg

(** Is this entry marked for immediate retranslation?  (Checked once
    per dispatch; the length guard keeps the common nothing-is-hot
    case off the hashing path.)  Quarantined entries are never hot:
    they must not be fed back to the translator. *)
let hot t key =
  Hashtbl.length t.tbl > 0
  &&
  match Hashtbl.find_opt t.tbl key with
  | Some e -> not e.pol.Policy.interp_only
  | None -> false

(** Is this entry interpreter-only?  The dispatcher checks this before
    every profile bump / tcache probe; [quarantined_live] keeps the
    common case to one integer compare. *)
let quarantined t key =
  t.quarantined_live > 0
  &&
  match Hashtbl.find_opt t.tbl key with
  | Some e -> e.pol.Policy.interp_only
  | None -> false

let merge_into t e p =
  let was_q = e.pol.Policy.interp_only in
  e.pol <- Policy.merge e.pol p;
  if e.pol.Policy.interp_only && not was_q then begin
    t.quarantined_live <- t.quarantined_live + 1;
    true
  end
  else false

(** Merge [p] into the entry's policy (monotone). *)
let upgrade t key p = ignore (merge_into t (ensure t key) p)

let quarantine_policy t =
  { (Policy.default t.cfg) with Policy.interp_only = true }

(** Force an entry straight to interpreter-only (chaos / last-resort
    path).  Returns [true] if this call quarantined it. *)
let quarantine t key = merge_into t (ensure t key) (quarantine_policy t)

(** One rung of the demotion ladder, taken when a translation of this
    entry was scrapped for recurring speculation faults.  Escalation
    [demote_limit] merges the hard-conservative policy; escalation
    [quarantine_limit] merges interpreter-only.  The budgets are
    per-entry and never reset, so the ladder is climbed at most
    [quarantine_limit] times — the forward-progress bound. *)
let note_escalation t key =
  let e = ensure t key in
  e.escalations <- e.escalations + 1;
  if e.escalations >= t.cfg.Config.quarantine_limit then
    if merge_into t e (quarantine_policy t) then Some Quarantined else None
  else if e.escalations >= t.cfg.Config.demote_limit then begin
    let before = e.pol in
    ignore (merge_into t e (Policy.conservative t.cfg));
    if Policy.equal before e.pol then None else Some Demoted
  end
  else None

(** A translate/schedule/codegen attempt for this entry died (exception
    contained by the engine).  After [translate_fail_limit] failures the
    entry is quarantined: translation provably cannot succeed, stop
    paying for the attempts. *)
let note_translate_failure t key =
  let e = ensure t key in
  e.failures <- e.failures + 1;
  if e.failures >= t.cfg.Config.translate_fail_limit then
    if merge_into t e (quarantine_policy t) then Some Quarantined else None
  else None

(** Convenience upgrades. *)
let add_interp_insn t entry addr =
  upgrade t entry
    {
      (Policy.default t.cfg) with
      Policy.interp_insns = Policy.ISet.singleton addr;
    }

let add_stylized t entry addrs =
  upgrade t entry
    { (Policy.default t.cfg) with Policy.stylized_imms = addrs }

let set_no_reorder t entry =
  upgrade t entry { (Policy.default t.cfg) with Policy.no_reorder = true }

let set_self_check t entry =
  upgrade t entry { (Policy.default t.cfg) with Policy.self_check = true }

let set_self_reval t entry =
  upgrade t entry { (Policy.default t.cfg) with Policy.self_reval = true }

let cut_region t entry ~current =
  let target = max 4 (current / 2) in
  upgrade t entry { (Policy.default t.cfg) with Policy.max_insns = target }

let size t = Hashtbl.length t.tbl

(* ------------------------------------------------------------------ *)
(* Snapshot support                                                    *)
(* ------------------------------------------------------------------ *)

(** Enumerate the table in deterministic (entry-address) order. *)
let dump t =
  Hashtbl.fold
    (fun key e acc -> (key, e.pol, e.touch, e.escalations, e.failures) :: acc)
    t.tbl []
  |> List.sort (fun (a, _, _, _, _) (b, _, _, _, _) -> compare a b)

(** Rebuild the table from a {!dump}.  This is the soft state worth
    carrying across a restore: the demotion ladder's budgets and
    quarantines, so an always-faulting entry does not get to re-climb
    the ladder from scratch after a resume. *)
let restore t ~clock ~evictions entries =
  Hashtbl.reset t.tbl;
  t.quarantined_live <- 0;
  List.iter
    (fun (key, pol, touch, escalations, failures) ->
      if pol.Policy.interp_only then
        t.quarantined_live <- t.quarantined_live + 1;
      Hashtbl.replace t.tbl key { pol; touch; escalations; failures })
    entries;
  t.clock <- clock;
  t.evictions <- evictions
