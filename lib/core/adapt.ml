(** Per-entry adaptive translation policies.

    Records the conservatism accumulated for each translation entry
    point.  Upgrades go through {!Policy.merge}, so policies only ever
    become more conservative — the paper's defence against bouncing
    between incomparable translations (§3.2).  An entry present in the
    table is "hot": it was invalidated for adaptation and should be
    retranslated on next dispatch without climbing the interpreter
    threshold again. *)

type t = { tbl : (int, Policy.t) Hashtbl.t; cfg : Config.t }

let create cfg = { tbl = Hashtbl.create 64; cfg }

let get t entry =
  match Hashtbl.find_opt t.tbl entry with
  | Some p -> p
  | None -> Policy.default t.cfg

(** Is this entry marked for immediate retranslation?  (Checked once
    per dispatch; the length guard keeps the common nothing-is-hot
    case off the hashing path.) *)
let hot t entry = Hashtbl.length t.tbl > 0 && Hashtbl.mem t.tbl entry

(** Merge [p] into the entry's policy (monotone). *)
let upgrade t entry p =
  Hashtbl.replace t.tbl entry (Policy.merge (get t entry) p)

(** Convenience upgrades. *)
let add_interp_insn t entry addr =
  upgrade t entry
    {
      (Policy.default t.cfg) with
      Policy.interp_insns = Policy.ISet.singleton addr;
    }

let add_stylized t entry addrs =
  upgrade t entry
    { (Policy.default t.cfg) with Policy.stylized_imms = addrs }

let set_no_reorder t entry =
  upgrade t entry { (Policy.default t.cfg) with Policy.no_reorder = true }

let set_self_check t entry =
  upgrade t entry { (Policy.default t.cfg) with Policy.self_check = true }

let set_self_reval t entry =
  upgrade t entry { (Policy.default t.cfg) with Policy.self_reval = true }

let cut_region t entry ~current =
  let target = max 4 (current / 2) in
  upgrade t entry { (Policy.default t.cfg) with Policy.max_insns = target }
