(** Execution profiling gathered by the interpreter (paper §2: the
    interpreter collects "data on execution frequency, branch
    directions, and memory-mapped I/O operations"). *)

type branch_bias = { mutable taken : int; mutable not_taken : int }

(* [bump] and [count] run once per interpreted instruction; a small
   direct-mapped memo over the counts hashtable keeps the interpreter
   hot loop off the hashing path.  The memo caches the [int ref]
   stored in the table, so hits observe exactly the table's counts. *)
let memo_slots = 256
let memo_mask = memo_slots - 1

type t = {
  exec_counts : (int, int ref) Hashtbl.t;  (** per-EIP execution counts *)
  memo_eip : int array;  (** -1 = empty *)
  memo_ref : int ref array;
  branches : (int, branch_bias) Hashtbl.t;  (** per-branch direction data *)
  bmemo_eip : int array;  (** same memo scheme over [branches] *)
  bmemo_bias : branch_bias array;
  mmio_insns : (int, unit) Hashtbl.t;
      (** instructions observed touching memory-mapped I/O *)
}

let dummy_bias_ () = { taken = min_int; not_taken = min_int }

let create () =
  {
    exec_counts = Hashtbl.create 1024;
    memo_eip = Array.make memo_slots (-1);
    memo_ref = Array.make memo_slots (ref 0);
    branches = Hashtbl.create 256;
    bmemo_eip = Array.make memo_slots (-1);
    bmemo_bias = Array.make memo_slots (dummy_bias_ ());
    mmio_insns = Hashtbl.create 64;
  }

let memo_find t eip =
  let slot = eip land memo_mask in
  if Array.unsafe_get t.memo_eip slot = eip then
    Some (Array.unsafe_get t.memo_ref slot)
  else
    match Hashtbl.find_opt t.exec_counts eip with
    | Some r ->
        t.memo_eip.(slot) <- eip;
        t.memo_ref.(slot) <- r;
        Some r
    | None -> None

(** Count one interpreted execution of the instruction at [eip];
    returns the updated count. *)
let bump t eip =
  let slot = eip land memo_mask in
  if Array.unsafe_get t.memo_eip slot = eip then begin
    let r = Array.unsafe_get t.memo_ref slot in
    incr r;
    !r
  end
  else
    match Hashtbl.find_opt t.exec_counts eip with
    | Some r ->
        t.memo_eip.(slot) <- eip;
        t.memo_ref.(slot) <- r;
        incr r;
        !r
    | None ->
        let r = ref 1 in
        Hashtbl.add t.exec_counts eip r;
        t.memo_eip.(slot) <- eip;
        t.memo_ref.(slot) <- r;
        1

let count t eip = match memo_find t eip with Some r -> !r | None -> 0

(** Forget the count (after translating, so invalidation restarts the
    threshold climb). *)
let reset_count t eip =
  let slot = eip land memo_mask in
  if t.memo_eip.(slot) = eip then t.memo_eip.(slot) <- -1;
  Hashtbl.remove t.exec_counts eip

let note_branch t eip ~taken =
  let slot = eip land memo_mask in
  let b =
    if Array.unsafe_get t.bmemo_eip slot = eip then
      Array.unsafe_get t.bmemo_bias slot
    else begin
      let b =
        match Hashtbl.find_opt t.branches eip with
        | Some b -> b
        | None ->
            let b = { taken = 0; not_taken = 0 } in
            Hashtbl.add t.branches eip b;
            b
      in
      t.bmemo_eip.(slot) <- eip;
      t.bmemo_bias.(slot) <- b;
      b
    end
  in
  if taken then b.taken <- b.taken + 1 else b.not_taken <- b.not_taken + 1

(** Predicted direction for the conditional branch at [eip]; [None]
    when there is no clear bias. *)
let bias t eip =
  match Hashtbl.find_opt t.branches eip with
  | None -> None
  | Some { taken; not_taken } ->
      if taken >= 3 * (not_taken + 1) then Some true
      else if not_taken >= 3 * (taken + 1) then Some false
      else None

let note_mmio t eip = Hashtbl.replace t.mmio_insns eip ()
let is_mmio_insn t eip = Hashtbl.mem t.mmio_insns eip
