(** Code generation: region → scheduled native code.

    Drives lowering, optimization, self-check injection, scheduling and
    register allocation, and validates the result.  Also builds the
    special zero-instruction translations (paper §3.2: "a
    zero-instruction translation that simply calls the interpreter to
    execute the faulting instruction"). *)

module A = Vliw.Atom

exception Too_big
(** the region cannot be compiled (register pressure / store buffer);
    the translator retries with a smaller region *)

(* ------------------------------------------------------------------ *)
(* Translation verifier hook                                           *)
(* ------------------------------------------------------------------ *)

type verifier = {
  lint_ir : stage:string -> entry:int -> ir:Ir.t -> Ir.item list -> string list;
      (** static IR lint, run after lowering and again after
          optimization; returns rendered diagnostics (empty = clean) *)
  verify_code :
    cfg:Config.t -> entry:int -> ninsns:int -> Vliw.Code.t -> string list;
      (** static molecule verifier, run on every scheduled code block *)
}

exception Verify_failed of string
(** a static verifier found an invariant violation; the translation is
    rejected (this is a translator bug, not a guest-program condition) *)

(* The verifier lives in the analysis library, which depends on this
   one; it registers itself through this hook ([Cms_analysis.Pipeline]).
   [Config.verify_translations] gates whether the hook is consulted. *)
let verify_hook : verifier option ref = ref None

let run_verifier ~(cfg : Config.t) f =
  if cfg.Config.verify_translations then
    match !verify_hook with
    | None -> ()
    | Some v -> (
        match f v with
        | [] -> ()
        | diags -> raise (Verify_failed (String.concat "\n" diags)))

(* ------------------------------------------------------------------ *)
(* Self-checking translations (§3.6.3)                                 *)
(* ------------------------------------------------------------------ *)

(* Build IR that verifies the source bytes still match [snapshot],
   word by word, branching to a self-check-fail stub on mismatch.
   Placed *before* the entry label so loop iterations skip it.  Words
   overlapping a stylized immediate field are compared under a mask
   (those bytes are legitimately volatile, §3.6.4). *)
let selfcheck_items ir ~(region : Region.t) ~snapshot ~excluded ~fail_label =
  let items = ref [] in
  let emit atom =
    items := Ir.Op { Ir.atom; x86_idx = 0; mem_seq = -1; base_ver = 0; barrier = false; base_abs = None } :: !items
  in
  let snap_pos = ref 0 in
  List.iter
    (fun (lo, hi) ->
      let base = Ir.fresh_vreg ir in
      emit (A.MovI { rd = base; imm = lo });
      let addr = ref lo in
      while !addr < hi do
        let n = min 4 (hi - !addr) in
        (* expected word from the snapshot, little-endian *)
        let expect = ref 0 in
        for k = 0 to n - 1 do
          expect :=
            !expect lor (Char.code (Bytes.get snapshot (!snap_pos + k)) lsl (8 * k))
        done;
        (* mask out excluded (stylized-immediate) bytes *)
        let mask = ref (if n = 4 then 0xffffffff else (1 lsl (8 * n)) - 1) in
        for k = 0 to n - 1 do
          let a = !addr + k in
          if List.exists (fun (elo, ehi) -> a >= elo && a < ehi) excluded then
            mask := !mask land lnot (0xff lsl (8 * k))
        done;
        if !mask <> 0 then begin
          let t = Ir.fresh_vreg ir in
          emit
            (A.Load
               { rd = t; base; disp = !addr - lo; size = 4; spec = false;
                 protect = None; check = 0 });
          let v =
            if !mask = 0xffffffff then t
            else begin
              let t2 = Ir.fresh_vreg ir in
              emit (A.Alu { op = A.HAnd; rd = t2; a = t; b = A.I !mask });
              t2
            end
          in
          emit
            (A.BrCmp
               { cmp = A.Cne; a = v; b = A.I (!expect land !mask);
                 target = fail_label })
        end;
        snap_pos := !snap_pos + n;
        addr := !addr + n
      done)
    region.Region.src_ranges;
  List.rev !items

(* The fail stub: nothing has committed; just exit with the
   self-check-fail kind and let the SMC machinery sort it out. *)
let selfcheck_fail_stub ir ~entry ~fail_label =
  let exit_idx =
    Ir.add_exit ir ~target:(Vliw.Code.Const entry)
      ~kind:Vliw.Code.Eselfcheck_fail ~x86_retired:0
  in
  [
    Ir.Lbl fail_label;
    Ir.Op
      {
        Ir.atom = A.MovI { rd = Vliw.Abi.eip; imm = entry };
        x86_idx = 0;
        mem_seq = -1;
        base_ver = 0;
        barrier = false;
        base_abs = None;
      };
    Ir.Op
      { Ir.atom = A.Commit 0; x86_idx = 0; mem_seq = -1; base_ver = 0; barrier = false; base_abs = None };
    Ir.Op { Ir.atom = A.Exit exit_idx; x86_idx = 0; mem_seq = -1; base_ver = 0; barrier = false; base_abs = None };
  ]

(* ------------------------------------------------------------------ *)
(* Full compilation                                                    *)
(* ------------------------------------------------------------------ *)

type compiled = {
  code : Vliw.Code.t;
  snapshot : Bytes.t option;
  opt_stats : Opt.result;
  unprotected : bool;
      (** self-checking translation whose source ranges are guarded by
          the alias hardware: it runs with page protection off
          (§3.6.3); [false] means protection is still required *)
}

(* Concatenate the source bytes of all ranges, in range order. *)
let take_snapshot mem (region : Region.t) =
  let total = Region.src_bytes region in
  let b = Buffer.create total in
  List.iter
    (fun (lo, hi) ->
      Buffer.add_bytes b (Machine.Mem.read_code mem ~addr:lo ~len:(hi - lo)))
    region.Region.src_ranges;
  Buffer.to_bytes b

(* The compiler proper, parametric over the source-byte supplier: the
   synchronous path reads guest memory ({!take_snapshot}); the
   background translator domain passes bytes captured at enqueue time
   so the worker never touches shared machine state.  Everything else
   is a pure deterministic function of (cfg, policy, region, bytes) —
   which is what makes a validated background result bit-identical to
   the synchronous compile it replaces. *)
let compile_with ~(cfg : Config.t) ~(policy : Policy.t)
    ~(snap : unit -> Bytes.t) (region : Region.t) =
  let entry = region.Region.entry in
  let ir = Lower.lower ~policy region in
  let items = Ir.items ir in
  run_verifier ~cfg (fun v -> v.lint_ir ~stage:"lower" ~entry ~ir items);
  let opt_stats = Opt.run ir items in
  let items = opt_stats.Opt.items in
  run_verifier ~cfg (fun v -> v.lint_ir ~stage:"opt" ~entry ~ir items);
  (* self-check / snapshot *)
  let want_snapshot =
    policy.Policy.self_check || policy.Policy.self_reval
    || not (Policy.ISet.is_empty policy.Policy.stylized_imms)
  in
  let snapshot = if want_snapshot then Some (snap ()) else None in
  let items =
    if policy.Policy.self_check then begin
      let snapshot = Option.get snapshot in
      let fail_label = Ir.fresh_label ir in
      let excluded =
        Array.to_list region.Region.insns
        |> List.filter_map (fun (i : Region.insn_info) ->
               if Policy.ISet.mem i.Region.addr policy.Policy.stylized_imms
               then
                 Option.map (fun a -> (a, a + 4)) i.Region.imm32_addr
               else None)
      in
      selfcheck_items ir ~region ~snapshot ~excluded ~fail_label
      @ items
      @ selfcheck_fail_stub ir ~entry:region.Region.entry ~fail_label
    end
    else items
  in
  (* Self-checking translations run with page protection off; their
     own stores are checked against the source byte ranges through the
     alias hardware (§3.6.3).  The arming atoms sit just after the
     entry label so loop back-edges (whose commits clear the alias
     slots) re-arm them every iteration. *)
  let page_segments =
    List.concat_map
      (fun (lo, hi) ->
        let rec split lo acc =
          if lo >= hi then List.rev acc
          else
            let seg = min (hi - lo) (Machine.Mem.page_room lo) in
            split (lo + seg) ((lo, seg) :: acc)
        in
        split lo [])
      region.Region.src_ranges
  in
  let max_guard_slots = 4 in
  let use_guards =
    policy.Policy.self_check
    && cfg.Config.enable_alias_hw
    && List.length page_segments <= max_guard_slots
    && cfg.Config.alias_slots > max_guard_slots
  in
  let items =
    if not use_guards then items
    else
      let mkop atom =
        Ir.Op
          { Ir.atom; x86_idx = 0; mem_seq = -1; base_ver = 0; barrier = false;
            base_abs = None }
      in
      let arms =
        List.concat
          (List.mapi
             (fun k (lo, len) ->
               let t = Ir.fresh_vreg ir in
               [
                 mkop (A.MovI { rd = t; imm = lo });
                 mkop
                   (A.ArmRange
                      { slot = cfg.Config.alias_slots - 1 - k; base = t;
                        disp = 0; len });
               ])
             page_segments)
      in
      (* insert after the entry label so loops re-arm per iteration *)
      let rec insert = function
        | (Ir.Lbl _ as l) :: rest -> l :: (arms @ rest)
        | op :: rest -> op :: insert rest
        | [] -> arms
      in
      insert items
  in
  let guard_mask =
    if not use_guards then 0
    else
      List.fold_left ( lor ) 0
        (List.mapi
           (fun k _ -> 1 lsl (cfg.Config.alias_slots - 1 - k))
           page_segments)
  in
  let opts =
    {
      Sched.reorder = cfg.Config.enable_reorder && not policy.Policy.no_reorder;
      use_alias = cfg.Config.enable_alias_hw && not policy.Policy.no_alias;
      alias_slots =
        (if use_guards then cfg.Config.alias_slots - max_guard_slots
         else cfg.Config.alias_slots);
    }
  in
  let molecules = Sched.schedule ~opts items in
  (* every store also checks the source-range guards *)
  if guard_mask <> 0 then
    Array.iter
      (fun m ->
        Array.iteri
          (fun k a ->
            match a with
            | A.Store st -> m.(k) <- A.Store { st with check = st.check lor guard_mask }
            | _ -> ())
          m)
      molecules;
  (match Sched.regalloc molecules with
  | () -> ()
  | exception Sched.Regalloc_overflow -> raise Too_big);
  let code = { Vliw.Code.molecules; exits = Ir.exits ir } in
  (match Vliw.Code.validate code with
  | Ok () -> ()
  | Error e -> failwith ("Codegen: invalid code: " ^ e));
  run_verifier ~cfg (fun v ->
      v.verify_code ~cfg ~entry ~ninsns:(Region.instruction_count region) code);
  { code; snapshot; opt_stats; unprotected = use_guards }

(** Compile a region under [policy].  [cfg] supplies hardware knobs. *)
let compile ~cfg ~policy ~mem (region : Region.t) =
  compile_with ~cfg ~policy ~snap:(fun () -> take_snapshot mem region) region

(** Compile from pre-captured source bytes (the background translator
    worker, which must not read guest memory concurrently with the
    interpreter).  [bytes] is the {!take_snapshot}-format concatenation
    of the region's source ranges, captured at enqueue time. *)
let compile_presnapped ~cfg ~policy ~bytes (region : Region.t) =
  compile_with ~cfg ~policy ~snap:(fun () -> bytes) region

(** A zero-instruction translation: interpret one instruction at
    [entry], then continue dispatch. *)
let zero_insn_code ~entry =
  {
    Vliw.Code.molecules =
      [|
        [| A.MovI { rd = Vliw.Abi.eip; imm = entry } |];
        [| A.Commit 0; A.Exit 0 |];
      |];
    exits =
      [|
        {
          Vliw.Code.target = Vliw.Code.Const entry;
          kind = Vliw.Code.Einterp_one;
          x86_retired = 0;
          chain = Vliw.Code.NoChain;
        };
      |];
  }
