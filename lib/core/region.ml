(** Translation-region selection.

    Regions are superblock traces: single entry, multiple side exits,
    grown by following the profiled direction of conditional branches
    and falling through unconditional jumps, up to the policy's size cap
    (the paper's regions reach 200 x86 instructions).  A branch whose
    followed edge returns to the region entry turns the trace into a
    loop (the back edge stays inside the translation).

    The trace stops before instructions the translator never inlines:
    interpreter-only system instructions and instructions the profile
    observed doing memory-mapped I/O (§3.4 — those must execute in
    original order at a consistent boundary, which the interpreter
    guarantees). *)

type follow =
  | FNext  (** trace continues at the next address *)
  | FTarget  (** trace continues at the branch's taken target *)
  | FEnd  (** trace ends after this instruction *)

type insn_info = {
  addr : int;
  insn : X86.Insn.t;
  len : int;
  imm32_addr : int option;  (** address of a 32-bit data immediate field *)
  follow : follow;
  loops : bool;  (** this instruction's taken edge goes back to the entry *)
}

type t = {
  entry : int;
  insns : insn_info array;
  cont : int option;
      (** where execution continues if the trace runs off its end
          ([None] when the last instruction transfers control itself) *)
  src_ranges : (int * int) list;  (** merged [lo, hi) code byte ranges *)
}

let instruction_count t = Array.length t.insns

(** Total source bytes covered (for snapshots and self-checking). *)
let src_bytes t =
  List.fold_left (fun acc (lo, hi) -> acc + (hi - lo)) 0 t.src_ranges

let merge_ranges ranges =
  let sorted = List.sort compare ranges in
  let rec go acc = function
    | [] -> List.rev acc
    | (lo, hi) :: rest -> (
        match acc with
        | (plo, phi) :: acc' when lo <= phi -> go ((plo, max phi hi) :: acc') rest
        | _ -> go ((lo, hi) :: acc) rest)
  in
  go [] sorted

(** Structural equality of two selected regions.  Used by the install
    boundary of the background translator to detect drift between an
    enqueue-time selection and the canonical install-time one: profile
    bias or policy changes can reshape the trace even over unchanged
    bytes.  [insn_info] is plain data (no closures, sets or floats),
    so polymorphic equality is exact. *)
let equal (a : t) (b : t) =
  a.entry = b.entry && a.cont = b.cont
  && a.src_ranges = b.src_ranges
  && a.insns = b.insns

(** Does [addr] fall inside the region's source bytes? *)
let contains t addr =
  List.exists (fun (lo, hi) -> addr >= lo && addr < hi) t.src_ranges

(** Select a region starting at [entry] under [policy].  Returns [None]
    if not even one instruction can be included (the caller then builds
    a zero-instruction translation or keeps interpreting). *)
let select ~mem ~(profile : Profile.t) ~(policy : Policy.t) entry =
  let fetch = Machine.Mem.fetch8 mem in
  let insns = ref [] in
  let count = ref 0 in
  (* Visit counts implement loop unrolling: a trace may include up to
     [policy.unroll] copies of the same instruction, so several loop
     iterations land in one region and the scheduler can overlap them —
     cross-iteration reordering is where speculation pays most. *)
  let visits = Hashtbl.create 64 in
  let visit_count pc =
    Hashtbl.find_opt visits pc |> Option.value ~default:0
  in
  let unroll = max 1 policy.Policy.unroll in
  let stop_before = ref None in
  (* Returns the continuation address if the trace ran off its end. *)
  let rec grow pc =
    if !count >= policy.Policy.max_insns then Some pc
    else if visit_count pc >= unroll then Some pc
    else if Policy.ISet.mem pc policy.Policy.interp_insns then begin
      stop_before := Some pc;
      Some pc
    end
    else
      match X86.Decode.decode ~fetch pc with
      | exception X86.Exn.Fault _ -> Some pc (* fetch faults: let interp take it *)
      | f ->
          let insn = f.X86.Decode.insn in
          if X86.Insn.interp_only insn || Profile.is_mmio_insn profile pc then begin
            stop_before := Some pc;
            Some pc
          end
          else begin
            Hashtbl.replace visits pc (visit_count pc + 1);
            incr count;
            let add follow loops =
              insns :=
                {
                  addr = pc;
                  insn;
                  len = f.X86.Decode.len;
                  imm32_addr =
                    Option.map (fun o -> pc + o) f.X86.Decode.imm32_off;
                  follow;
                  loops;
                }
                :: !insns
            in
            let next = (pc + f.X86.Decode.len) land 0xffffffff in
            let may_follow target =
              visit_count target < unroll
              && !count < policy.Policy.max_insns
            in
            match insn with
            | X86.Insn.Jcc (_, target) ->
                let taken_bias =
                  target = entry || Profile.bias profile pc = Some true
                in
                if taken_bias && target = entry && not (may_follow target)
                then begin
                  (* unroll budget exhausted: close the loop back to the
                     region entry *)
                  add FNext true;
                  grow next
                end
                else if taken_bias && may_follow target then begin
                  (* follow the taken edge — revisits duplicate the loop
                     body (unrolling) *)
                  add FTarget false;
                  grow target
                end
                else begin
                  add FNext false;
                  grow next
                end
            | X86.Insn.Jmp target ->
                if may_follow target then begin
                  (* follow the jump; it costs nothing in the trace *)
                  add FTarget false;
                  grow target
                end
                else if target = entry then begin
                  add FEnd true;
                  None
                end
                else begin
                  (* lowering emits this jump's own exit stub *)
                  add FEnd false;
                  None
                end
            | X86.Insn.Call _ | X86.Insn.CallInd _ | X86.Insn.Ret _
            | X86.Insn.JmpInd _ ->
                (* region ends; lowering emits the transfer itself *)
                add FEnd false;
                None
            | _ ->
                add FNext false;
                grow next
          end
  in
  let cont = grow entry in
  let insns = Array.of_list (List.rev !insns) in
  if Array.length insns = 0 then None
  else
    let src_ranges =
      merge_ranges
        (Array.to_list insns |> List.map (fun i -> (i.addr, i.addr + i.len)))
    in
    Some { entry; insns; cont; src_ranges }
