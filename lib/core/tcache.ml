(** The translation cache.

    Holds translation records indexed by x86 entry address, by id (for
    chain resolution), and by physical page (for SMC invalidation).
    Translation groups (paper §3.6.5) keep superseded translations of
    the same region so that multi-version self-modifying code (the
    Windows/9X BLT driver pattern) can reactivate an old translation by
    snapshot match instead of retranslating.

    Under capacity pressure the cache degrades gracefully: records are
    stamped with a generation that advances as insertions accumulate and
    is refreshed on every dispatch hit, and the cache evicts the coldest
    generations first — hot entries and their groups survive.  The
    all-or-nothing full flush (what the seed did, and the simplest of
    the garbage collection policies real systems use) is retained as the
    last resort when every held record is current-generation. *)

(** Why a chained exit was torn down — the accounting axes of the
    unlink counters (and of {!Stats}). *)
type unlink_cause =
  | Uevict  (** generational eviction, capacity flush, or replacement *)
  | Udemote  (** demotion-ladder invalidation *)
  | Usmc  (** SMC/DMA invalidation *)
  | Uaot  (** the dying translation was an AOT entry (any trigger) *)
  | Uchaos  (** chaos-layer unlink storm *)

(** Closure-compilation state of a translation
    ({!Config.closure_exec}).  Compiled lazily at first dispatch —
    which is also what re-arms AOT-installed translations locally
    after their copy-on-validate install. *)
type comp =
  | Not_compiled
  | Compiled of Vliw.Closure.t
  | Uncompilable
      (** the closure compiler refused (register index outside the
          working array); {!Vliw.Exec.run} handles it, identically *)

type trans = {
  id : int;
  entry : int;
  code : Vliw.Code.t;
  region : Region.t;
  policy : Policy.t;
  snapshot : Bytes.t option;
      (** concatenated source bytes (in [region.src_ranges] order) at
          translation time; present for self-checking / revalidating /
          grouped translations *)
  mutable valid : bool;
  mutable gen : int;  (** generation stamp; refreshed on dispatch hits *)
  mutable execs : int;
  (* adaptive-retranslation counters (per fault class) *)
  mutable spec_faults : int;
  mutable genuine_faults : int;
  mutable smc_false : int;  (** protection faults with unchanged code *)
  mutable reval_armed : bool;
      (** self-revalidation prologue currently enabled: verify source
          bytes, re-protect, then run (§3.6.2) *)
  unprotected : bool;
      (** self-checking translation guarded by the alias hardware; its
          pages need no write protection (§3.6.3) *)
  aot : bool;
      (** minted by the static ahead-of-time pass and installed from a
          translation image at boot; invalidation and eviction treat it
          exactly like a dynamic translation, only the accounting
          differs *)
  mutable compiled : comp;
  mutable in_links : (trans * int) list;
      (** reverse chain index: predecessors whose exit [(src, i)] is
          patched [Chained] to this record.  Best-effort bookkeeping —
          every chained transfer revalidates the successor, so
          correctness never rests on this list; it exists so
          invalidation can tear links down eagerly and count why. *)
}

type t = {
  by_entry : (int, trans) Hashtbl.t;
  by_id : (int, trans) Hashtbl.t;
      (** every record the cache still holds: valid translations plus
          parked group members.  [count] mirrors its size. *)
  by_page : (int, trans list ref) Hashtbl.t;
  groups : (int, trans list ref) Hashtbl.t;
  mutable next_id : int;
  capacity : int;
  mutable count : int;  (** held records: valid + parked-in-group *)
  mutable hwm : int;  (** high-water mark of [count] over the run *)
  mutable cur_gen : int;
  mutable inserts : int;  (** insertions since the last generation turn *)
  gen_step : int;  (** insertions per generation turn *)
  mutable flushes : int;
  mutable evictions : int;  (** generational eviction rounds *)
  mutable evicted : int;  (** records discarded by eviction *)
  (* chained-exit unlink counters, by cause (mirrored into {!Stats}) *)
  mutable unlinks_evict : int;
  mutable unlinks_demote : int;
  mutable unlinks_smc : int;
  mutable unlinks_aot : int;
  mutable unlinks_chaos : int;
  mutable on_flush : unit -> unit;
      (** fired on every full flush; the engine hooks it so dependent
          host caches (the interpreter's decoded-instruction cache)
          die with the translations *)
  mutable on_evict : trans -> unit;
      (** fired once per record discarded by generational eviction; the
          engine hooks it to release the record's SMC page protection *)
}

let create ~capacity =
  {
    by_entry = Hashtbl.create 512;
    by_id = Hashtbl.create 512;
    by_page = Hashtbl.create 128;
    groups = Hashtbl.create 64;
    next_id = 0;
    capacity;
    count = 0;
    hwm = 0;
    cur_gen = 0;
    inserts = 0;
    gen_step = max 1 (capacity / 8);
    flushes = 0;
    evictions = 0;
    evicted = 0;
    unlinks_evict = 0;
    unlinks_demote = 0;
    unlinks_smc = 0;
    unlinks_aot = 0;
    unlinks_chaos = 0;
    on_flush = (fun () -> ());
    on_evict = (fun _ -> ());
  }

let lookup t entry =
  (* checked once per dispatch; skip the hash while nothing is cached
     (the interpreter-warmup phase) *)
  if Hashtbl.length t.by_entry = 0 then None
  else
    match Hashtbl.find_opt t.by_entry entry with
    | Some tr when tr.valid ->
        tr.gen <- t.cur_gen;
        Some tr
    | _ -> None

(** Like {!lookup} but without refreshing the generation stamp.  The
    background translator's enqueue path probes with this: a
    speculative prefetch check must not warm a record, or eviction
    order under capacity pressure would diverge between background-on
    and background-off runs. *)
let probe t entry =
  if Hashtbl.length t.by_entry = 0 then None
  else
    match Hashtbl.find_opt t.by_entry entry with
    | Some tr when tr.valid -> Some tr
    | _ -> None

let by_id t id =
  match Hashtbl.find_opt t.by_id id with
  | Some tr when tr.valid -> Some tr
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Chained-exit link bookkeeping                                       *)
(* ------------------------------------------------------------------ *)

let count_unlink t = function
  | Uevict -> t.unlinks_evict <- t.unlinks_evict + 1
  | Udemote -> t.unlinks_demote <- t.unlinks_demote + 1
  | Usmc -> t.unlinks_smc <- t.unlinks_smc + 1
  | Uaot -> t.unlinks_aot <- t.unlinks_aot + 1
  | Uchaos -> t.unlinks_chaos <- t.unlinks_chaos + 1

(** Record that [src]'s exit [exit_idx] is now [Chained] to [dst], so
    [dst]'s death can tear the link down eagerly. *)
let link ~src ~exit_idx ~dst =
  if
    not
      (List.exists
         (fun (s, i) -> s.id = src.id && i = exit_idx)
         dst.in_links)
  then dst.in_links <- (src, exit_idx) :: dst.in_links

(* A dying AOT record counts its unlinks under the AOT axis whatever
   the trigger was — the axis answers "how much chaining did the
   static tier's churn cost us". *)
let cause_for tr cause = if tr.aot then Uaot else cause

(* Detach every predecessor exit still chained to [tr].  Parked and
   already-dead predecessors are unlinked too: their exits would fail
   the by-id revalidation at next dispatch anyway, so this changes no
   costs, only reclaims the bookkeeping. *)
let unlink_incoming t tr ~cause =
  let cause = cause_for tr cause in
  List.iter
    (fun (src, i) ->
      let e = src.code.Vliw.Code.exits.(i) in
      match e.Vliw.Code.chain with
      | Vliw.Code.Chained id when id = tr.id ->
          e.Vliw.Code.chain <- Vliw.Code.Unchained;
          count_unlink t cause
      | _ -> ())
    tr.in_links;
  tr.in_links <- []

let pages_of_ranges ranges =
  List.concat_map
    (fun (lo, hi) ->
      let first = lo lsr Machine.Mmu.page_shift
      and last = (hi - 1) lsr Machine.Mmu.page_shift in
      List.init (last - first + 1) (fun i -> first + i))
    ranges
  |> List.sort_uniq compare

let pages_of tr = pages_of_ranges tr.region.Region.src_ranges

(** Translations whose source bytes live on physical page [ppn].
    (Source ranges are linear addresses; the workloads map code
    identity, which this exploits — documented limitation.) *)
let on_page t ~ppn =
  match Hashtbl.find_opt t.by_page ppn with
  | Some l -> List.filter (fun tr -> tr.valid) !l
  | None -> []

let flush t =
  (* every link dies with the cache; count the outgoing chained exits
     of every held record (each live link is counted exactly once, on
     the exit that held it) *)
  Hashtbl.iter
    (fun _ tr ->
      Array.iter
        (fun (e : Vliw.Code.exit) ->
          match e.Vliw.Code.chain with
          | Vliw.Code.Chained _ ->
              e.Vliw.Code.chain <- Vliw.Code.Unchained;
              count_unlink t (cause_for tr Uevict)
          | _ -> ())
        tr.code.Vliw.Code.exits;
      tr.in_links <- [])
    t.by_id;
  Hashtbl.iter (fun _ tr -> tr.valid <- false) t.by_id;
  Hashtbl.reset t.by_entry;
  Hashtbl.reset t.by_id;
  Hashtbl.reset t.by_page;
  Hashtbl.reset t.groups;
  t.count <- 0;
  t.flushes <- t.flushes + 1;
  t.on_flush ()

(* Drop a record from every index.  [tr.valid] may be either state
   (eviction takes valid and parked records alike). *)
let drop t tr ~cause =
  unlink_incoming t tr ~cause;
  tr.valid <- false;
  (match Hashtbl.find_opt t.by_entry tr.entry with
  | Some cur when cur.id = tr.id -> Hashtbl.remove t.by_entry tr.entry
  | _ -> ());
  Hashtbl.remove t.by_id tr.id;
  List.iter
    (fun ppn ->
      match Hashtbl.find_opt t.by_page ppn with
      | Some l ->
          l := List.filter (fun x -> x.id <> tr.id) !l;
          if !l = [] then Hashtbl.remove t.by_page ppn
      | None -> ())
    (pages_of tr);
  (match Hashtbl.find_opt t.groups tr.entry with
  | Some l ->
      l := List.filter (fun x -> x.id <> tr.id) !l;
      if !l = [] then Hashtbl.remove t.groups tr.entry
  | None -> ());
  t.count <- t.count - 1

let oldest_generation t =
  Hashtbl.fold
    (fun _ tr acc ->
      match acc with
      | None -> Some tr.gen
      | Some g -> Some (min g tr.gen))
    t.by_id None

(** Evict every record stamped with generation [g] (current entries and
    parked group members alike).  Returns the number discarded; fires
    [on_evict] for each so the engine can release page protection. *)
let evict_generation t g =
  let victims =
    Hashtbl.fold (fun _ tr acc -> if tr.gen = g then tr :: acc else acc)
      t.by_id []
  in
  List.iter
    (fun tr ->
      drop t tr ~cause:Uevict;
      t.on_evict tr)
    victims;
  let n = List.length victims in
  if n > 0 then begin
    t.evictions <- t.evictions + 1;
    t.evicted <- t.evicted + n
  end;
  n

(** One graceful-degradation step: evict the coldest generation still
    held.  Also the chaos layer's "surprise eviction" entry point. *)
let evict_coldest t =
  match oldest_generation t with
  | None -> 0
  | Some g -> evict_generation t g

(* Make room for an insertion: evict coldest generations down to a
   low-water target; full flush only when everything left is
   current-generation (nothing is colder than the work in flight). *)
let ensure_room t =
  if t.count >= t.capacity then begin
    (* the low-water target must sit strictly below capacity, or a
       degenerate capacity (1) would never evict and the cache would
       grow without bound *)
    let target = min (t.capacity - 1) (max 1 (t.capacity * 3 / 4)) in
    let rec loop () =
      if t.count > target then
        match oldest_generation t with
        | Some g when g < t.cur_gen ->
            ignore (evict_generation t g);
            loop ()
        | _ -> if t.count >= t.capacity then flush t
    in
    loop ()
  end

(** Invalidate a translation.  With [keep_in_group] it is parked in the
    entry's translation group for possible reactivation (and keeps
    counting toward capacity until evicted); otherwise the record is
    dropped entirely.  [cause] labels the unlink accounting for any
    predecessor exits chained to it (parked records unlink too: until
    reactivated they are not dispatchable, and reactivation re-chains
    through the normal patch path at identical cost). *)
let invalidate ?(cause = Uevict) t tr ~keep_in_group =
  if tr.valid then begin
    unlink_incoming t tr ~cause;
    tr.valid <- false;
    (match Hashtbl.find_opt t.by_entry tr.entry with
    | Some cur when cur.id = tr.id -> Hashtbl.remove t.by_entry tr.entry
    | _ -> ());
    if keep_in_group then begin
      match Hashtbl.find_opt t.groups tr.entry with
      | Some l -> l := tr :: !l
      | None -> Hashtbl.add t.groups tr.entry (ref [ tr ])
    end
    else drop t tr ~cause
  end

(** Insert a new translation; returns it.  Replaces any current
    translation for the same entry (the old one is parked in the
    group). *)
let insert ?(unprotected = false) ?(aot = false) t ~entry ~code ~region ~policy
    ~snapshot =
  ensure_room t;
  (match Hashtbl.find_opt t.by_entry entry with
  | Some cur when cur.valid -> invalidate t cur ~keep_in_group:true
  | _ -> ());
  let tr =
    {
      id = t.next_id;
      entry;
      code;
      region;
      policy;
      snapshot;
      valid = true;
      gen = t.cur_gen;
      execs = 0;
      spec_faults = 0;
      genuine_faults = 0;
      smc_false = 0;
      reval_armed = false;
      unprotected;
      aot;
      compiled = Not_compiled;
      in_links = [];
    }
  in
  t.next_id <- t.next_id + 1;
  t.count <- t.count + 1;
  if t.count > t.hwm then t.hwm <- t.count;
  t.inserts <- t.inserts + 1;
  if t.inserts >= t.gen_step then begin
    t.inserts <- 0;
    t.cur_gen <- t.cur_gen + 1
  end;
  Hashtbl.replace t.by_entry entry tr;
  Hashtbl.replace t.by_id tr.id tr;
  List.iter
    (fun ppn ->
      match Hashtbl.find_opt t.by_page ppn with
      | Some l -> l := tr :: !l
      | None -> Hashtbl.add t.by_page ppn (ref [ tr ]))
    (pages_of_ranges region.Region.src_ranges);
  tr

(** Search the entry's translation group for a parked translation whose
    snapshot matches the current source bytes; reactivate on match. *)
let group_match t ~entry ~current_bytes =
  match Hashtbl.find_opt t.groups entry with
  | None -> None
  | Some l -> (
      match
        List.find_opt
          (fun tr -> tr.snapshot = Some current_bytes)
          !l
      with
      | Some tr ->
          l := List.filter (fun x -> x.id <> tr.id) !l;
          (match Hashtbl.find_opt t.by_entry entry with
          | Some cur when cur.valid -> invalidate t cur ~keep_in_group:true
          | _ -> ());
          tr.valid <- true;
          tr.gen <- t.cur_gen;
          Hashtbl.replace t.by_entry entry tr;
          Hashtbl.replace t.by_id tr.id tr;
          Some tr
      | None -> None)

let group_size t ~entry =
  match Hashtbl.find_opt t.groups entry with
  | Some l -> List.length !l
  | None -> 0

(** Every live chained exit, as [(source, exit index)], in a canonical
    order (by translation id, then exit index) — the deterministic
    substrate for the chaos layer's unlink storms and their journal
    replay. *)
let chained_exits t =
  Hashtbl.fold
    (fun _ tr acc ->
      if tr.valid then begin
        let exits = tr.code.Vliw.Code.exits in
        let acc = ref acc in
        Array.iteri
          (fun i (e : Vliw.Code.exit) ->
            match e.Vliw.Code.chain with
            | Vliw.Code.Chained _ -> acc := (tr, i) :: !acc
            | _ -> ())
          exits;
        !acc
      end
      else acc)
    t.by_id []
  |> List.sort (fun ((a : trans), i) ((b : trans), j) ->
         compare (a.id, i) (b.id, j))

(** Chaos entry point: forcibly unlink one live chained exit, selected
    deterministically by [k] over the canonical {!chained_exits} order.
    Returns [true] when a link existed to cut. *)
let unlink_nth t ~k =
  match chained_exits t with
  | [] -> false
  | l ->
      let tr, i = List.nth l (k mod List.length l) in
      tr.code.Vliw.Code.exits.(i).Vliw.Code.chain <- Vliw.Code.Unchained;
      count_unlink t Uchaos;
      true
