(** The translation cache.

    Holds translation records indexed by x86 entry address, by id (for
    chain resolution), and by physical page (for SMC invalidation).
    Translation groups (paper §3.6.5) keep superseded translations of
    the same region so that multi-version self-modifying code (the
    Windows/9X BLT driver pattern) can reactivate an old translation by
    snapshot match instead of retranslating.

    When the cache exceeds its capacity the whole cache is flushed —
    the simplest of the garbage collection policies real systems use
    (and what CMS does under pressure). *)

type trans = {
  id : int;
  entry : int;
  code : Vliw.Code.t;
  region : Region.t;
  policy : Policy.t;
  snapshot : Bytes.t option;
      (** concatenated source bytes (in [region.src_ranges] order) at
          translation time; present for self-checking / revalidating /
          grouped translations *)
  mutable valid : bool;
  mutable execs : int;
  (* adaptive-retranslation counters (per fault class) *)
  mutable spec_faults : int;
  mutable genuine_faults : int;
  mutable smc_false : int;  (** protection faults with unchanged code *)
  mutable reval_armed : bool;
      (** self-revalidation prologue currently enabled: verify source
          bytes, re-protect, then run (§3.6.2) *)
  unprotected : bool;
      (** self-checking translation guarded by the alias hardware; its
          pages need no write protection (§3.6.3) *)
}

type t = {
  by_entry : (int, trans) Hashtbl.t;
  by_id : (int, trans) Hashtbl.t;
  by_page : (int, trans list ref) Hashtbl.t;
  groups : (int, trans list ref) Hashtbl.t;
  mutable next_id : int;
  capacity : int;
  mutable count : int;
  mutable flushes : int;
  mutable on_flush : unit -> unit;
      (** fired on every full flush; the engine hooks it so dependent
          host caches (the interpreter's decoded-instruction cache)
          die with the translations *)
}

let create ~capacity =
  {
    by_entry = Hashtbl.create 512;
    by_id = Hashtbl.create 512;
    by_page = Hashtbl.create 128;
    groups = Hashtbl.create 64;
    next_id = 0;
    capacity;
    count = 0;
    flushes = 0;
    on_flush = (fun () -> ());
  }

let lookup t entry =
  (* checked once per dispatch; skip the hash while nothing is cached
     (the interpreter-warmup phase) *)
  if Hashtbl.length t.by_entry = 0 then None
  else
  match Hashtbl.find_opt t.by_entry entry with
  | Some tr when tr.valid -> Some tr
  | _ -> None

let by_id t id =
  match Hashtbl.find_opt t.by_id id with
  | Some tr when tr.valid -> Some tr
  | _ -> None

let pages_of_ranges ranges =
  List.concat_map
    (fun (lo, hi) ->
      let first = lo lsr Machine.Mmu.page_shift
      and last = (hi - 1) lsr Machine.Mmu.page_shift in
      List.init (last - first + 1) (fun i -> first + i))
    ranges
  |> List.sort_uniq compare

(** Translations whose source bytes live on physical page [ppn].
    (Source ranges are linear addresses; the workloads map code
    identity, which this exploits — documented limitation.) *)
let on_page t ~ppn =
  match Hashtbl.find_opt t.by_page ppn with
  | Some l -> List.filter (fun tr -> tr.valid) !l
  | None -> []

let flush t =
  Hashtbl.iter (fun _ tr -> tr.valid <- false) t.by_id;
  Hashtbl.reset t.by_entry;
  Hashtbl.reset t.by_id;
  Hashtbl.reset t.by_page;
  Hashtbl.reset t.groups;
  t.count <- 0;
  t.flushes <- t.flushes + 1;
  t.on_flush ()

(** Insert a new translation; returns it.  Replaces any current
    translation for the same entry (the old one stays in the group). *)
let insert ?(unprotected = false) t ~entry ~code ~region ~policy ~snapshot =
  if t.count >= t.capacity then flush t;
  let tr =
    {
      id = t.next_id;
      entry;
      code;
      region;
      policy;
      snapshot;
      valid = true;
      execs = 0;
      spec_faults = 0;
      genuine_faults = 0;
      smc_false = 0;
      reval_armed = false;
      unprotected;
    }
  in
  t.next_id <- t.next_id + 1;
  t.count <- t.count + 1;
  Hashtbl.replace t.by_entry entry tr;
  Hashtbl.replace t.by_id tr.id tr;
  List.iter
    (fun ppn ->
      match Hashtbl.find_opt t.by_page ppn with
      | Some l -> l := tr :: !l
      | None -> Hashtbl.add t.by_page ppn (ref [ tr ]))
    (pages_of_ranges region.Region.src_ranges);
  tr

(** Invalidate a translation.  With [keep_in_group] it is parked in the
    entry's translation group for possible reactivation. *)
let invalidate t tr ~keep_in_group =
  if tr.valid then begin
    tr.valid <- false;
    (match Hashtbl.find_opt t.by_entry tr.entry with
    | Some cur when cur.id = tr.id -> Hashtbl.remove t.by_entry tr.entry
    | _ -> ());
    if keep_in_group then begin
      match Hashtbl.find_opt t.groups tr.entry with
      | Some l -> l := tr :: !l
      | None -> Hashtbl.add t.groups tr.entry (ref [ tr ])
    end
  end

(** Search the entry's translation group for a parked translation whose
    snapshot matches the current source bytes; reactivate on match. *)
let group_match t ~entry ~current_bytes =
  match Hashtbl.find_opt t.groups entry with
  | None -> None
  | Some l -> (
      match
        List.find_opt
          (fun tr -> tr.snapshot = Some current_bytes)
          !l
      with
      | Some tr ->
          l := List.filter (fun x -> x.id <> tr.id) !l;
          tr.valid <- true;
          Hashtbl.replace t.by_entry entry tr;
          Hashtbl.replace t.by_id tr.id tr;
          Some tr
      | None -> None)

let group_size t ~entry =
  match Hashtbl.find_opt t.groups entry with
  | Some l -> List.length !l
  | None -> 0
