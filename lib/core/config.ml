(** CMS configuration: feature knobs and the molecule cost model.

    The experiments in the paper are ablations over exactly these knobs
    (suppress reordering for Figure 2, no alias hardware for Figure 3,
    no fine-grain protection for Table 1, force self-checking for
    §3.6.3, disable self-revalidation for §3.6.2).

    Cost model: the real interpreter, translator and fault handlers are
    themselves native code, so the simulator charges them in molecules.
    The defaults are order-of-magnitude figures consistent with
    published DBT systems (interpreter ~tens of host ops per guest
    instruction; translator ~thousands per translated instruction) and
    are deliberately configurable — the experiment harness reports how
    conclusions depend on them. *)

type t = {
  (* --- feature knobs (the paper's ablation axes) --- *)
  enable_reorder : bool;  (** allow load/store reordering (Fig. 2) *)
  enable_alias_hw : bool;  (** alias hardware present (Fig. 3) *)
  enable_fine_grain : bool;  (** fine-grain protection (Table 1) *)
  enable_chaining : bool;  (** translation chaining (§2) *)
  enable_self_reval : bool;  (** self-revalidating translations (§3.6.2) *)
  enable_self_check : bool;  (** self-checking translations (§3.6.3) *)
  enable_stylized : bool;  (** stylized-SMC immediate reload (§3.6.4) *)
  enable_groups : bool;  (** translation groups (§3.6.5) *)
  force_self_check : bool;  (** force every translation self-checking *)
  (* --- sizing --- *)
  translate_threshold : int;  (** interpreter executions before translating *)
  max_region_insns : int;  (** region size cap (paper: up to 200) *)
  unroll_limit : int;
      (** how many times a trace may revisit the same instruction —
          loop unrolling inside regions; cross-iteration load/store
          reordering is where speculation pays most *)
  alias_slots : int;
  sbuf_capacity : int;
  fg_capacity : int;  (** fine-grain cache entries *)
  tcache_capacity : int;  (** translations before a full flush (GC) *)
  (* --- adaptive-retranslation thresholds --- *)
  spec_fault_limit : int;
      (** speculative failures of one translation before retranslating
          more conservatively *)
  genuine_fault_limit : int;
      (** genuine x86 faults before narrowing the region *)
  smc_false_limit : int;
      (** protection faults with unchanged code before self-reval *)
  (* --- recovery hardening: the demotion ladder and its budgets --- *)
  adapt_capacity : int;
      (** policy-table entries before coldest-entry eviction *)
  demote_limit : int;
      (** spec-fault escalations of one entry before the hard
          conservative policy (no speculation, tiny regions) *)
  quarantine_limit : int;
      (** escalations before interpreter-only quarantine — the bound
          that makes an always-faulting translation provably terminate
          in interpreter mode *)
  translate_fail_limit : int;
      (** contained translator failures of one entry before quarantine *)
  stall_limit : int;
      (** consecutive dispatches with no architectural progress before
          the dispatcher forces an interpreter step (forward-progress
          watchdog) *)
  (* --- cost model (molecules) --- *)
  interp_cost : int;  (** per interpreted x86 instruction *)
  translate_cost : int;  (** per x86 instruction translated *)
  rollback_cost : int;  (** per rollback (paper: < 2 branch misses) *)
  lookup_cost : int;  (** per tcache lookup on an unchained path *)
  fault_handler_cost : int;  (** per native fault taken (CMS entry) *)
  fg_install_cost : int;  (** per fine-grain cache software refill *)
  reval_cost_per_byte : int;  (** prologue compare cost (self-reval) *)
  (* --- steady-state execution (closures + direct chaining) --- *)
  closure_exec : bool;
      (** compile each installed translation's molecules into OCaml
          closures at first dispatch (atoms pre-resolved to direct
          regfile/storebuf/alias operations, immediates and branch
          targets baked in) and execute those instead of re-matching
          atoms in {!Vliw.Exec.run} every iteration.  Observationally
          invisible by construction (the closure compiler mirrors the
          two-phase evaluate/apply semantics counter for counter; the
          differential suite pins it); the debug interlocks
          ([validate_molecules]/[enforce_latency]) force the [Exec]
          path regardless. *)
  chain_exits : bool;
      (** take patched [Chained] exits directly: control transfers
          translation-to-translation without returning to the engine
          dispatcher, through a boundary that still ticks devices,
          fires hooks, polls interrupts and honours run limits.
          Requires [enable_chaining] (which governs patching); this
          knob governs only whether the patch is *followed*, so the
          cost model is identical on and off. *)
  (* --- background translation (concurrent translator domain) --- *)
  background_translation : bool;
      (** run region translation on a background OCaml domain: the
          dispatcher enqueues a leader once its profile count crosses
          half the translate threshold (plus a branch-target prefetch
          of the region's continuation), keeps interpreting, and
          consumes the finished translation at the canonical hotness
          instant — the same dispatch boundary where synchronous
          translation would run.  Installs are validated against the
          enqueue-time code bytes, region shape and policy; any drift
          (SMC, adaptation) rejects the background result and the
          engine compiles synchronously, so the knob is architecturally
          invisible: on and off produce identical arch + strict
          digests.  The win is wall-clock only — compilation overlaps
          interpretation. *)
  bg_queue_capacity : int;
      (** bound on in-flight (queued + compiling) background requests;
          excess enqueues are dropped (the entry falls back to
          synchronous translation at hotness) *)
  (* --- host-side fast paths --- *)
  host_fast_paths : bool;
      (** enable the host-side caching layers: the MMU software TLB,
          the decoded-instruction cache in the interpreter, and the
          RAM fast path that bypasses bus dispatch.  Observationally
          invisible by construction (each layer has an explicit
          invalidation contract; the differential suite pins it) —
          the knob exists to measure them and to fall back if a
          contract is ever in doubt. *)
  (* --- debug --- *)
  validate_molecules : bool;
  enforce_latency : bool;
  verify_translations : bool;
      (** run the static translation verifier ({!Cms_analysis}) on the
          IR after lowering/optimization and on every scheduled code
          block; a violation makes {!Codegen} reject the translation.
          Needs the verifier hook installed (the analysis library, the
          tests and the CLIs install it); on by default under tests
          via {!debug}. *)
}

let default =
  {
    enable_reorder = true;
    enable_alias_hw = true;
    enable_fine_grain = true;
    enable_chaining = true;
    enable_self_reval = true;
    enable_self_check = true;
    enable_stylized = true;
    enable_groups = true;
    force_self_check = false;
    translate_threshold = 24;
    max_region_insns = 200;
    unroll_limit = 2;
    alias_slots = 8;
    sbuf_capacity = 64;
    fg_capacity = 8;
    tcache_capacity = 8192;
    spec_fault_limit = 3;
    genuine_fault_limit = 3;
    smc_false_limit = 2;
    adapt_capacity = 1024;
    demote_limit = 3;
    quarantine_limit = 5;
    translate_fail_limit = 3;
    stall_limit = 16;
    interp_cost = 45;
    translate_cost = 4000;
    rollback_cost = 4;
    lookup_cost = 15;
    fault_handler_cost = 300;
    fg_install_cost = 60;
    reval_cost_per_byte = 1;
    closure_exec = true;
    chain_exits = true;
    background_translation = true;
    bg_queue_capacity = 32;
    host_fast_paths = true;
    validate_molecules = false;
    enforce_latency = false;
    verify_translations = false;
  }

(** Debug variant with every hardware interlock on; used by tests. *)
let debug =
  { default with
    validate_molecules = true;
    enforce_latency = true;
    verify_translations = true;
  }
