(** Translation policies — the conservatism lattice.

    A translation is made under a policy; recurring faults retranslate
    under a *more conservative* policy.  Crucially, merging is monotone
    (paper §3.2): "the new translation keeps track of the policies used,
    so that if another problem arises requiring different conservative
    policies, CMS will add them to the existing ones to avoid bouncing
    between translations with incomparable policies". *)

module ISet = Set.Make (Int)

type t = {
  no_reorder : bool;  (** suppress all load/store reordering *)
  no_alias : bool;  (** reorder only when statically provable *)
  max_insns : int;  (** region size cap for this entry *)
  unroll : int;  (** unroll budget (region may revisit a pc this often) *)
  self_check : bool;  (** embed source-byte checking code *)
  self_reval : bool;  (** self-revalidating prologue *)
  interp_only : bool;
      (** quarantine: never translate this entry again — the bottom of
          the demotion ladder, the paper's "interpreter as safety net"
          made into an enforced terminal state *)
  interp_insns : ISet.t;
      (** instruction addresses executed via interpreter exits (known
          MMIO accessors, recurrent genuine faulters) *)
  stylized_imms : ISet.t;
      (** addresses whose imm32 field is reloaded from the code bytes at
          run time (stylized SMC, §3.6.4) *)
}

let default (cfg : Config.t) =
  {
    no_reorder = not cfg.Config.enable_reorder;
    no_alias = not cfg.Config.enable_alias_hw;
    max_insns = cfg.Config.max_region_insns;
    unroll = cfg.Config.unroll_limit;
    self_check = cfg.Config.force_self_check;
    self_reval = false;
    interp_only = false;
    interp_insns = ISet.empty;
    stylized_imms = ISet.empty;
  }

(** The hard-demotion policy: no speculation of any kind, tiny regions.
    One rung above quarantine on the ladder. *)
let conservative (cfg : Config.t) =
  {
    (default cfg) with
    no_reorder = true;
    no_alias = true;
    max_insns = 8;
    unroll = 1;
  }

(** Least upper bound: strictly more conservative than both inputs. *)
let merge a b =
  {
    no_reorder = a.no_reorder || b.no_reorder;
    no_alias = a.no_alias || b.no_alias;
    max_insns = min a.max_insns b.max_insns;
    unroll = min a.unroll b.unroll;
    self_check = a.self_check || b.self_check;
    self_reval = a.self_reval || b.self_reval;
    interp_only = a.interp_only || b.interp_only;
    interp_insns = ISet.union a.interp_insns b.interp_insns;
    stylized_imms = ISet.union a.stylized_imms b.stylized_imms;
  }

(** Semantic equality ([Stdlib.( = )] is wrong here: equal [ISet]s can
    have different tree shapes). *)
let equal a b =
  a.no_reorder = b.no_reorder
  && a.no_alias = b.no_alias
  && a.max_insns = b.max_insns
  && a.unroll = b.unroll
  && a.self_check = b.self_check
  && a.self_reval = b.self_reval
  && a.interp_only = b.interp_only
  && ISet.equal a.interp_insns b.interp_insns
  && ISet.equal a.stylized_imms b.stylized_imms

(** Partial order: is [a] at least as conservative as [b]? *)
let geq a b = equal (merge a b) a

let pp fmt p =
  Fmt.pf fmt "{%s%s%s%s%s max=%d interp=%d stylized=%d}"
    (if p.no_reorder then " no-reorder" else "")
    (if p.no_alias then " no-alias" else "")
    (if p.self_check then " self-check" else "")
    (if p.self_reval then " self-reval" else "")
    (if p.interp_only then " quarantined" else "")
    p.max_insns
    (ISet.cardinal p.interp_insns)
    (ISet.cardinal p.stylized_imms)
