(** The x86 interpreter.

    Decodes and executes one instruction at a time "with careful
    attention to memory access ordering and precise reproduction of
    faults, while collecting data on execution frequency, branch
    directions, and memory-mapped I/O operations" (paper §2).

    It is also the recovery mechanism: after a translation rolls back,
    CMS re-executes the region here in original program order, which
    both decides whether a fault was genuine and guarantees forward
    progress (paper §3.2).

    Precision argument: each instruction mutates only the working
    register copies until its final commit; memory writes are ordered
    after every fault point of the instruction.  A fault therefore rolls
    back to the exact x86 state at the instruction boundary. *)

open X86
module F = Flags

(* Decoded-instruction cache geometry: direct-mapped on low physical
   address bits. *)
let dc_bits = 12
let dc_slots = 1 lsl dc_bits
let dc_index_mask = dc_slots - 1

type t = {
  cpu : Cpu.t;
  profile : Profile.t;
  stats : Stats.t;
  cfg : Config.t;
  (* --- decoded-instruction cache (host fast path) ---
     Keyed by the physical address of the instruction's first byte and
     validated against the virtual EIP it was decoded at (branch
     targets inside [Decode.fetched] are absolute, computed from the
     virtual PC, so an aliased mapping must miss).  Entries hold only
     single-page instructions from plain-RAM pages: MMIO fetches must
     not be elided, and the single-page restriction means the hit-path
     translation of the first byte covers every byte the baseline
     decoder would have fetched.  Invalidation: any write landing on a
     flagged page ({!Machine.Mem.note_write} — ordered guest writes,
     committed translation stores, DMA, image loads) kills the page's
     entries, and a translation-cache flush clears the whole cache. *)
  dc_on : bool;
  dc_tags : int array;  (** physical first-byte address; -1 = empty *)
  dc_vaddrs : int array;  (** virtual EIP the entry was decoded at *)
  dc_insns : Decode.fetched array;
  dc_pages : (int, int list ref) Hashtbl.t;  (** ppn -> slot indices *)
}

let dc_dummy = { Decode.insn = Insn.Nop; len = 1; imm32_off = None }

let create cpu ~profile ~stats ~cfg =
  let t =
    {
      cpu;
      profile;
      stats;
      cfg;
      dc_on = cfg.Config.host_fast_paths;
      dc_tags = Array.make dc_slots (-1);
      dc_vaddrs = Array.make dc_slots 0;
      dc_insns = Array.make dc_slots dc_dummy;
      dc_pages = Hashtbl.create 32;
    }
  in
  (* writes landing on pages with cached decodes invalidate them *)
  let mem = Cpu.mem cpu in
  (mem.Machine.Mem.on_code_write <-
     fun ~ppn ->
       (match Hashtbl.find_opt t.dc_pages ppn with
       | Some l ->
           List.iter
             (fun slot ->
               (* the slot may have been reused by another page since *)
               if t.dc_tags.(slot) lsr Machine.Mmu.page_shift = ppn then
                 t.dc_tags.(slot) <- -1)
             !l;
           Hashtbl.remove t.dc_pages ppn
       | None -> ());
       t.stats.Stats.dcache_invalidations <-
         t.stats.Stats.dcache_invalidations + 1);
  t

(** Drop every decoded-instruction cache entry (translation-cache
    flush rides the same big-hammer event). *)
let dcache_clear t =
  Array.fill t.dc_tags 0 dc_slots (-1);
  let mem = Cpu.mem t.cpu in
  Hashtbl.iter
    (fun ppn _ -> Machine.Mem.unmark_code_page mem ~ppn)
    t.dc_pages;
  Hashtbl.reset t.dc_pages;
  t.stats.Stats.dcache_invalidations <-
    t.stats.Stats.dcache_invalidations + 1

(** Number of live cache entries (test introspection). *)
let dcache_population t =
  Array.fold_left (fun n tag -> if tag >= 0 then n + 1 else n) 0 t.dc_tags

(* Decode the instruction at committed [pc], through the cache when the
   fast paths are on.  Fault behavior is identical to a raw decode: the
   first-byte Exec translation runs unconditionally (so #PF on an
   unmapped EIP is reproduced), and misses decode from memory byte by
   byte exactly as before. *)
let decode_at t pc =
  let mem = Cpu.mem t.cpu in
  if not t.dc_on then Decode.decode ~fetch:(Machine.Mem.fetch8 mem) pc
  else begin
    let paddr = Machine.Mmu.translate mem.Machine.Mem.mmu Machine.Mmu.Exec pc in
    let slot = paddr land dc_index_mask in
    if
      Array.unsafe_get t.dc_tags slot = paddr
      && Array.unsafe_get t.dc_vaddrs slot = pc
    then begin
      t.stats.Stats.dcache_hits <- t.stats.Stats.dcache_hits + 1;
      Array.unsafe_get t.dc_insns slot
    end
    else begin
      t.stats.Stats.dcache_misses <- t.stats.Stats.dcache_misses + 1;
      let f = Decode.decode ~fetch:(Machine.Mem.fetch8 mem) pc in
      if
        (pc land Machine.Mmu.page_mask) + f.Decode.len <= Machine.Mmu.page_size
        && Machine.Mem.code_page_cacheable mem paddr
      then begin
        Array.unsafe_set t.dc_tags slot paddr;
        Array.unsafe_set t.dc_vaddrs slot pc;
        Array.unsafe_set t.dc_insns slot f;
        Machine.Mem.mark_code_page mem paddr;
        let ppn = paddr lsr Machine.Mmu.page_shift in
        match Hashtbl.find_opt t.dc_pages ppn with
        | Some l -> l := slot :: !l
        | None -> Hashtbl.add t.dc_pages ppn (ref [ slot ])
      end;
      f
    end
  end

type outcome =
  | Stepped  (** one instruction retired *)
  | Halted  (** CPU is halted; nothing executed *)
  | Faulted of Exn.fault  (** instruction faulted; fault was delivered *)

(* ------------------------------------------------------------------ *)
(* Operand access                                                      *)
(* ------------------------------------------------------------------ *)

let mask32 v = v land 0xffffffff

let ea cpu (m : Insn.mem) =
  let b = match m.base with Some r -> Cpu.gpr cpu r | None -> 0 in
  let i =
    match m.index with Some (r, s) -> Cpu.gpr cpu r * s | None -> 0
  in
  mask32 (b + i + m.disp)

let mem_read cpu ~size addr = Machine.Mem.read (Cpu.mem cpu) ~size addr
let mem_write cpu ~size addr v = Machine.Mem.write (Cpu.mem cpu) ~size addr v

let read_r8 cpu r = Regs.read8 ~read32:(Cpu.gpr cpu) r

let write_r8 cpu r v =
  let g, nv = Regs.write8 ~read32:(Cpu.gpr cpu) r v in
  Cpu.set_gpr cpu g nv

let read_rm cpu sz (rm : Insn.rm) =
  match (sz, rm) with
  | Insn.S32, Insn.R r -> Cpu.gpr cpu r
  | Insn.S8, Insn.R r -> read_r8 cpu r
  | Insn.S32, Insn.M m -> mem_read cpu ~size:4 (ea cpu m)
  | Insn.S8, Insn.M m -> mem_read cpu ~size:1 (ea cpu m)

let write_rm cpu sz (rm : Insn.rm) v =
  match (sz, rm) with
  | Insn.S32, Insn.R r -> Cpu.set_gpr cpu r v
  | Insn.S8, Insn.R r -> write_r8 cpu r v
  | Insn.S32, Insn.M m -> mem_write cpu ~size:4 (ea cpu m) v
  | Insn.S8, Insn.M m -> mem_write cpu ~size:1 (ea cpu m) v

let read_reg cpu sz r =
  match sz with Insn.S32 -> Cpu.gpr cpu r | Insn.S8 -> read_r8 cpu r

let write_reg cpu sz r v =
  match sz with Insn.S32 -> Cpu.set_gpr cpu r v | Insn.S8 -> write_r8 cpu r v

let push32 cpu v =
  let esp = mask32 (Cpu.gpr cpu Regs.esp - 4) in
  mem_write cpu ~size:4 esp v;
  Cpu.set_gpr cpu Regs.esp esp

let pop32 cpu =
  let esp = Cpu.gpr cpu Regs.esp in
  let v = mem_read cpu ~size:4 esp in
  Cpu.set_gpr cpu Regs.esp (mask32 (esp + 4));
  v

(* ------------------------------------------------------------------ *)
(* Instruction semantics                                               *)
(* ------------------------------------------------------------------ *)

let arith_f : Insn.arith -> (F.size -> F.t -> int -> int -> int * F.t) =
  function
  | Insn.Add -> F.add
  | Or -> F.or_
  | Adc -> F.adc
  | Sbb -> F.sbb
  | And -> F.and_
  | Sub -> F.sub
  | Xor -> F.xor
  | Cmp -> fun sz fl a b -> (a, F.cmp sz fl a b)
  (* Cmp: result discarded via writes_result below *)

let arith_writes_result = function Insn.Cmp -> false | _ -> true

let shift_f : Insn.shift -> (F.size -> F.t -> int -> int -> int * F.t) =
  function
  | Insn.Shl -> F.shl
  | Shr -> F.shr
  | Sar -> F.sar
  | Rol -> F.rol
  | Ror -> F.ror

(* Execute the REP-able string ops.  Each iteration is an architectural
   boundary: registers are updated per iteration and the whole
   instruction can pause with EIP still pointing at itself, which is how
   x86 makes REP interruptible. *)
let exec_strop t pc ~next ~rep ~op ~size =
  let cpu = t.cpu in
  let bytes = match size with Insn.S8 -> 1 | S32 -> 4 in
  let one () =
    (match op with
    | Insn.Movs ->
        let v = mem_read cpu ~size:bytes (Cpu.gpr cpu Regs.esi) in
        mem_write cpu ~size:bytes (Cpu.gpr cpu Regs.edi) v;
        Cpu.set_gpr cpu Regs.esi (mask32 (Cpu.gpr cpu Regs.esi + bytes))
    | Insn.Stos ->
        let v =
          match size with
          | Insn.S8 -> read_r8 cpu 0 (* AL *)
          | S32 -> Cpu.gpr cpu Regs.eax
        in
        mem_write cpu ~size:bytes (Cpu.gpr cpu Regs.edi) v);
    Cpu.set_gpr cpu Regs.edi (mask32 (Cpu.gpr cpu Regs.edi + bytes))
  in
  if not rep then one ()
  else begin
    (* Each completed iteration commits with EIP still on the REP
       instruction, so a fault in iteration k resumes at iteration k
       after the handler IRETs — x86's restartable-REP semantics. *)
    let iters = ref 0 in
    let continue_ = ref (Cpu.gpr cpu Regs.ecx <> 0) in
    while !continue_ do
      one ();
      Cpu.set_gpr cpu Regs.ecx (mask32 (Cpu.gpr cpu Regs.ecx - 1));
      incr iters;
      (* charge per-iteration interpretation cost beyond the base *)
      Stats.charge t.stats 3;
      if Cpu.gpr cpu Regs.ecx = 0 then begin
        continue_ := false;
        Cpu.set_eip cpu next
      end
      else begin
        Cpu.set_eip cpu pc;
        Cpu.commit cpu;
        if !iters land 63 = 0 && Cpu.irq_deliverable cpu then
          (* pause: EIP stays on the REP instruction; resume after IRQ *)
          continue_ := false
      end
    done
  end

let exec_insn t pc (f : Decode.fetched) =
  let cpu = t.cpu in
  let fl () = Cpu.eflags cpu in
  let set_fl v = Cpu.set_eflags cpu v in
  match f.Decode.insn with
  | Insn.Arith (op, sz, ops) -> (
      let g = arith_f op in
      match ops with
      | Insn.RM_R (rm, r) ->
          let a = read_rm cpu sz rm and b = read_reg cpu sz r in
          let res, nf = g sz (fl ()) a b in
          if arith_writes_result op then write_rm cpu sz rm res;
          set_fl nf
      | Insn.R_RM (r, rm) ->
          let a = read_reg cpu sz r and b = read_rm cpu sz rm in
          let res, nf = g sz (fl ()) a b in
          if arith_writes_result op then write_reg cpu sz r res;
          set_fl nf
      | Insn.RM_I (rm, i) ->
          let a = read_rm cpu sz rm in
          let res, nf = g sz (fl ()) a i in
          if arith_writes_result op then write_rm cpu sz rm res;
          set_fl nf)
  | Insn.Test (sz, rm, src) ->
      let a = read_rm cpu sz rm in
      let b =
        match src with Insn.T_R r -> read_reg cpu sz r | Insn.T_I i -> i
      in
      set_fl (F.test sz (fl ()) a b)
  | Insn.Mov (sz, ops) -> (
      match ops with
      | Insn.RM_R (rm, r) -> write_rm cpu sz rm (read_reg cpu sz r)
      | Insn.R_RM (r, rm) -> write_reg cpu sz r (read_rm cpu sz rm)
      | Insn.RM_I (rm, i) -> write_rm cpu sz rm i)
  | Insn.Movx { sign; dst; src } ->
      let v = read_rm cpu Insn.S8 src in
      let v = if sign then F.sext Insn.S8 v land 0xffffffff else v in
      Cpu.set_gpr cpu dst v
  | Insn.Lea (r, m) -> Cpu.set_gpr cpu r (ea cpu m)
  | Insn.Xchg (sz, rm, r) ->
      let a = read_rm cpu sz rm and b = read_reg cpu sz r in
      write_rm cpu sz rm b;
      write_reg cpu sz r a
  | Insn.Inc (sz, rm) ->
      let v, nf = F.inc sz (fl ()) (read_rm cpu sz rm) in
      write_rm cpu sz rm v;
      set_fl nf
  | Insn.Dec (sz, rm) ->
      let v, nf = F.dec sz (fl ()) (read_rm cpu sz rm) in
      write_rm cpu sz rm v;
      set_fl nf
  | Insn.Not (sz, rm) ->
      write_rm cpu sz rm (F.trunc sz (lnot (read_rm cpu sz rm)))
  | Insn.Neg (sz, rm) ->
      let v, nf = F.neg sz (fl ()) (read_rm cpu sz rm) in
      write_rm cpu sz rm v;
      set_fl nf
  | Insn.Shift (op, sz, rm, count) ->
      let c =
        match count with
        | Insn.C1 -> 1
        | Insn.Cimm i -> i
        | Insn.Ccl -> Cpu.gpr cpu Regs.ecx land 0xff
      in
      let v, nf = (shift_f op) sz (fl ()) (read_rm cpu sz rm) c in
      write_rm cpu sz rm v;
      set_fl nf
  | Insn.Mul (sz, rm) | Insn.Imul1 (sz, rm) -> (
      let signed = match f.Decode.insn with Insn.Imul1 _ -> true | _ -> false in
      let g = if signed then F.imul else F.mul in
      match sz with
      | Insn.S8 ->
          let lo, hi, nf = g Insn.S8 (fl ()) (read_r8 cpu 0) (read_rm cpu Insn.S8 rm) in
          (* AX = AH:AL <- result *)
          write_r8 cpu 0 lo;
          write_r8 cpu 4 hi;
          set_fl nf
      | Insn.S32 ->
          let lo, hi, nf =
            g Insn.S32 (fl ()) (Cpu.gpr cpu Regs.eax) (read_rm cpu Insn.S32 rm)
          in
          Cpu.set_gpr cpu Regs.eax lo;
          Cpu.set_gpr cpu Regs.edx hi;
          set_fl nf)
  | Insn.Imul2 (r, rm) ->
      let lo, _, nf =
        F.imul Insn.S32 (fl ()) (Cpu.gpr cpu r) (read_rm cpu Insn.S32 rm)
      in
      Cpu.set_gpr cpu r lo;
      set_fl nf
  | Insn.Div (sz, rm) | Insn.Idiv (sz, rm) -> (
      let signed = match f.Decode.insn with Insn.Idiv _ -> true | _ -> false in
      let g = if signed then F.idiv else F.div in
      let divisor = read_rm cpu sz rm in
      match sz with
      | Insn.S8 -> (
          (* dividend = AX = AH:AL *)
          match g Insn.S8 (read_r8 cpu 4) (read_r8 cpu 0) divisor with
          | Some (q, r) ->
              write_r8 cpu 0 q;
              write_r8 cpu 4 r
          | None -> raise (Exn.Fault Exn.DE))
      | Insn.S32 -> (
          match
            g Insn.S32 (Cpu.gpr cpu Regs.edx) (Cpu.gpr cpu Regs.eax) divisor
          with
          | Some (q, r) ->
              Cpu.set_gpr cpu Regs.eax q;
              Cpu.set_gpr cpu Regs.edx r
          | None -> raise (Exn.Fault Exn.DE)))
  | Insn.Cdq ->
      Cpu.set_gpr cpu Regs.edx
        (if Cpu.gpr cpu Regs.eax land 0x80000000 <> 0 then 0xffffffff else 0)
  | Insn.Push src ->
      let v =
        match src with
        | Insn.PushR r -> Cpu.gpr cpu r
        | Insn.PushI i -> mask32 i
        | Insn.PushM m -> mem_read cpu ~size:4 (ea cpu m)
      in
      push32 cpu v
  | Insn.Pop rm -> (
      let v = pop32 cpu in
      match rm with
      | Insn.R r -> Cpu.set_gpr cpu r v
      | Insn.M m -> mem_write cpu ~size:4 (ea cpu m) v)
  | Insn.Pushf ->
      push32 cpu
        (fl () lor (if cpu.Cpu.iflag then F.if_mask else 0))
  | Insn.Popf ->
      (* status bits into the native flags register; IF CMS-side *)
      let v = pop32 cpu in
      set_fl (v land F.status_mask lor F.reserved);
      cpu.Cpu.iflag <- v land F.if_mask <> 0
  | Insn.Jcc (cc, target) ->
      let taken = F.eval_cond cc (fl ()) in
      Profile.note_branch t.profile pc ~taken;
      if taken then Cpu.set_eip cpu target
  | Insn.Setcc (cc, rm) ->
      write_rm cpu Insn.S8 rm (if F.eval_cond cc (fl ()) then 1 else 0)
  | Insn.Jmp target -> Cpu.set_eip cpu target
  | Insn.JmpInd rm -> Cpu.set_eip cpu (read_rm cpu Insn.S32 rm)
  | Insn.Call target ->
      push32 cpu (Cpu.eip cpu);
      Cpu.set_eip cpu target
  | Insn.CallInd rm ->
      let target = read_rm cpu Insn.S32 rm in
      push32 cpu (Cpu.eip cpu);
      Cpu.set_eip cpu target
  | Insn.Ret n ->
      let r = pop32 cpu in
      Cpu.set_gpr cpu Regs.esp (mask32 (Cpu.gpr cpu Regs.esp + n));
      Cpu.set_eip cpu r
  | Insn.Int3 ->
      (* trap: pushed EIP is the next instruction (already in EIP) *)
      Cpu.deliver cpu ~vector:(Exn.vector Exn.BP) ~error_code:None
  | Insn.Int v -> Cpu.deliver cpu ~vector:v ~error_code:None
  | Insn.Iret ->
      let neip = pop32 cpu in
      let nfl = pop32 cpu in
      Cpu.set_eip cpu neip;
      set_fl (nfl land F.status_mask lor F.reserved);
      cpu.Cpu.iflag <- nfl land F.if_mask <> 0
  | Insn.In (sz, port) ->
      let p =
        match port with
        | Insn.PortImm p -> p
        | Insn.PortDx -> Cpu.gpr cpu Regs.edx land 0xffff
      in
      let v = Machine.Bus.port_read (Cpu.bus cpu) p in
      (match sz with
      | Insn.S8 -> write_r8 cpu 0 v
      | Insn.S32 -> Cpu.set_gpr cpu Regs.eax (mask32 v))
  | Insn.Out (sz, port) ->
      let p =
        match port with
        | Insn.PortImm p -> p
        | Insn.PortDx -> Cpu.gpr cpu Regs.edx land 0xffff
      in
      let v =
        match sz with
        | Insn.S8 -> read_r8 cpu 0
        | Insn.S32 -> Cpu.gpr cpu Regs.eax
      in
      Machine.Bus.port_write (Cpu.bus cpu) p v
  | Insn.Hlt -> cpu.Cpu.halted <- true
  | Insn.Nop -> ()
  | Insn.Cli -> cpu.Cpu.iflag <- false
  | Insn.Sti -> cpu.Cpu.iflag <- true
  | Insn.Strop { rep; op; size } ->
      exec_strop t pc ~next:(mask32 (pc + f.Decode.len)) ~rep ~op ~size
  | Insn.Lidt m ->
      cpu.Cpu.idt_base <- mem_read cpu ~size:4 (ea cpu m)

(* ------------------------------------------------------------------ *)
(* The step function                                                   *)
(* ------------------------------------------------------------------ *)

(** Execute exactly one x86 instruction at the committed EIP: decode,
    execute, commit; or fault, roll back, deliver.  Profiles execution
    counts, branch bias and MMIO usage on the way. *)
let step t =
  let cpu = t.cpu in
  if cpu.Cpu.halted then Halted
  else begin
    let pc = Cpu.committed_eip cpu in
    ignore (Profile.bump t.profile pc);
    let bus = Cpu.bus cpu in
    let mmio_before = bus.Machine.Bus.mmio_reads + bus.Machine.Bus.mmio_writes in
    match
      let f = decode_at t pc in
      Cpu.set_eip cpu (mask32 (pc + f.Decode.len));
      exec_insn t pc f
    with
    | () ->
        Cpu.commit cpu;
        if bus.Machine.Bus.mmio_reads + bus.Machine.Bus.mmio_writes
           <> mmio_before
        then Profile.note_mmio t.profile pc;
        t.stats.Stats.x86_interp <- t.stats.Stats.x86_interp + 1;
        Stats.charge t.stats t.cfg.Config.interp_cost;
        Stepped
    | exception Exn.Fault fault ->
        (* discard partial working state; memory writes are ordered
           after all fault points, so none have happened *)
        Cpu.rollback cpu;
        t.stats.Stats.x86_interp <- t.stats.Stats.x86_interp + 1;
        Stats.charge t.stats t.cfg.Config.interp_cost;
        Cpu.deliver_fault cpu fault;
        Faulted fault
  end
