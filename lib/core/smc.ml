(** Self-modifying-code machinery (paper §3.6).

    Owns the authoritative per-page chunk masks and the protection
    ladder:

    page protection → fine-grain protection → self-revalidating
    translations (data writes only) → self-checking translations /
    stylized-SMC immediate reload / translation groups (code really
    changes).

    Installed as the {!Machine.Mem} SMC handler, so it runs for every
    ordered write that hits protection — from the interpreter directly,
    and for translated stores after rollback when the recovery
    interpreter replays the faulting region. *)

module ISet = Policy.ISet

type t = {
  cfg : Config.t;
  mem : Machine.Mem.t;
  tcache : Tcache.t;
  adapt : Adapt.t;
  stats : Stats.t;
  false_faults : (int, int ref) Hashtbl.t;
      (** per-page count of protection faults with no code overlap *)
  disarms : (int, int ref) Hashtbl.t;
      (** per-page count of self-reval disarm events; ping-ponging
          means the writer itself lives on the page -> self-check *)
  invalidation_counts : (int, int ref) Hashtbl.t;
      (** per-entry count of genuine SMC invalidations *)
}

let create ~cfg ~mem ~tcache ~adapt ~stats =
  {
    cfg;
    mem;
    tcache;
    adapt;
    stats;
    false_faults = Hashtbl.create 32;
    disarms = Hashtbl.create 32;
    invalidation_counts = Hashtbl.create 32;
  }

(* ------------------------------------------------------------------ *)
(* Mask bookkeeping                                                    *)
(* ------------------------------------------------------------------ *)

(* Authoritative chunk mask for a page: chunks covered by any valid
   translation's source bytes.  Self-checking translations are excluded:
   they verify their own source bytes at entry instead of relying on
   protection (§3.6.3: "leave the memory page unprotected"). *)
let page_mask t ~ppn =
  let lo_page = ppn lsl Machine.Mmu.page_shift in
  let hi_page = lo_page + Machine.Mmu.page_size in
  List.fold_left
    (fun acc (tr : Tcache.trans) ->
      if tr.Tcache.unprotected then acc
      else
      List.fold_left
        (fun acc (lo, hi) ->
          let lo = max lo lo_page and hi = min hi hi_page in
          if lo < hi then
            Int64.logor acc
              (Machine.Finegrain.mask_of_range ~paddr:lo ~len:(hi - lo))
          else acc)
        acc tr.Tcache.region.Region.src_ranges)
    0L (Tcache.on_page t.tcache ~ppn)

(* Re-derive a page's protection state after translations changed. *)
let refresh_page t ~ppn =
  let mask = page_mask t ~ppn in
  if mask = 0L then Machine.Mem.unprotect_page t.mem ~ppn
  else begin
    Machine.Mem.protect_page t.mem ~ppn;
    if Machine.Mem.in_fg_mode t.mem ~ppn then begin
      Machine.Finegrain.invalidate t.mem.Machine.Mem.fg ~ppn;
      Machine.Finegrain.install t.mem.Machine.Mem.fg ~ppn ~mask
    end
  end

let pages_of tr =
  Tcache.pages_of_ranges tr.Tcache.region.Region.src_ranges

(** Protect the pages of a (newly inserted or reactivated) translation.
    Self-checking translations stay unprotected: the embedded check is
    their consistency mechanism. *)
let register t (tr : Tcache.trans) =
  if not tr.Tcache.unprotected then
    List.iter
      (fun ppn ->
        Machine.Mem.protect_page t.mem ~ppn;
        if Machine.Mem.in_fg_mode t.mem ~ppn then refresh_page t ~ppn)
      (pages_of tr)

(* [cause] labels the chained-exit unlink accounting; everything in
   this module invalidates because of SMC/DMA events, so that is the
   default — the engine's demotion-ladder callers override it. *)
let invalidate ?(cause = Tcache.Usmc) t (tr : Tcache.trans) ~keep_in_group =
  Tcache.invalidate ~cause t.tcache tr ~keep_in_group;
  t.stats.Stats.invalidations <- t.stats.Stats.invalidations + 1;
  if tr.Tcache.aot then
    t.stats.Stats.aot_invalidated <- t.stats.Stats.aot_invalidated + 1;
  List.iter (fun ppn -> refresh_page t ~ppn) (pages_of tr)

(** A translation was discarded by tcache eviction (capacity pressure,
    not an SMC event): re-derive the protection its pages still need
    from the translations that survived. *)
let note_evicted t (tr : Tcache.trans) =
  if tr.Tcache.aot then
    t.stats.Stats.aot_invalidated <- t.stats.Stats.aot_invalidated + 1;
  List.iter (fun ppn -> refresh_page t ~ppn) (pages_of tr)

(* ------------------------------------------------------------------ *)
(* Write-fault handling                                                *)
(* ------------------------------------------------------------------ *)

let overlapping_translations t ~paddr ~len =
  let ppn = paddr lsr Machine.Mmu.page_shift in
  Tcache.on_page t.tcache ~ppn
  |> List.filter (fun (tr : Tcache.trans) ->
         List.exists
           (fun (lo, hi) -> paddr < hi && lo < paddr + len)
           tr.Tcache.region.Region.src_ranges)

let bump tbl key =
  match Hashtbl.find_opt tbl key with
  | Some r ->
      incr r;
      !r
  | None ->
      Hashtbl.add tbl key (ref 1);
      1

(* Stylized-SMC detection: is every byte of [paddr,+len) inside some
   instruction's imm32 field? *)
let all_bytes_in_imm_fields (tr : Tcache.trans) ~paddr ~len =
  let in_field a =
    Array.exists
      (fun (i : Region.insn_info) ->
        match i.Region.imm32_addr with
        | Some f -> a >= f && a < f + 4
        | None -> false)
      tr.Tcache.region.Region.insns
  in
  let rec go k = k >= len || (in_field (paddr + k) && go (k + 1)) in
  go 0

let imm_insns_covering (tr : Tcache.trans) ~paddr ~len =
  Array.to_list tr.Tcache.region.Region.insns
  |> List.filter_map (fun (i : Region.insn_info) ->
         match i.Region.imm32_addr with
         | Some f when paddr < f + 4 && f < paddr + len -> Some i.Region.addr
         | _ -> None)

(* Protection faults on a self-revalidating translation: disarm
   protection and arm the prologue (the fault handler "enables the
   prologue and turns off protection to avoid the cost of faulting
   again", §3.6.2). *)
let disarm_for_reval t (tr : Tcache.trans) =
  tr.Tcache.reval_armed <- true;
  List.iter (fun ppn -> Machine.Mem.unprotect_page t.mem ~ppn) (pages_of tr)

(* A data write landed on a protected page/chunk without touching any
   translation's bytes. *)
let handle_false_fault t ~ppn ~paddr:_ ~len:_ =
  let page_faults = bump t.false_faults ppn in
  let trs_on_page = Tcache.on_page t.tcache ~ppn in
  let reval_ready =
    List.filter
      (fun (tr : Tcache.trans) ->
        tr.Tcache.policy.Policy.self_reval
        && tr.Tcache.snapshot <> None
        && not tr.Tcache.policy.Policy.self_check)
      trs_on_page
  in
  if
    reval_ready <> []
    && List.length reval_ready = List.length trs_on_page
  then begin
    let d = bump t.disarms ppn in
    if d > 8 && t.cfg.Config.enable_self_check then
      (* the disarm/revalidate cycle keeps repeating: the writer itself
         lives on this page, the case §3.6.2 says self-revalidation
         cannot handle — escalate (once per translation) to
         self-checking translations *)
      List.iter
        (fun (tr : Tcache.trans) ->
          Adapt.set_self_check t.adapt tr.Tcache.entry;
          invalidate t tr ~keep_in_group:false)
        trs_on_page
    else
      (* all affected translations can revalidate: unprotect the page
         and arm their prologues; the write then proceeds freely *)
      List.iter (disarm_for_reval t) reval_ready
  end
  else if
    t.cfg.Config.enable_fine_grain
    && not (Machine.Mem.in_fg_mode t.mem ~ppn)
  then begin
    (* first line of defence: switch the page to fine-grain mode *)
    Machine.Mem.set_fg_mode t.mem ~ppn true;
    Machine.Finegrain.install t.mem.Machine.Mem.fg ~ppn ~mask:(page_mask t ~ppn);
    t.stats.Stats.fg_installs <- t.stats.Stats.fg_installs + 1;
    Stats.charge t.stats t.cfg.Config.fg_install_cost
  end
  else if
    t.cfg.Config.enable_self_reval
    && page_faults > t.cfg.Config.smc_false_limit
    && trs_on_page <> []
  then begin
    (* data shares chunks (or, without fine-grain hardware, the page)
       with code: move the page's translations to self-revalidation *)
    List.iter
      (fun (tr : Tcache.trans) ->
        tr.Tcache.smc_false <- tr.Tcache.smc_false + 1;
        Adapt.set_self_reval t.adapt tr.Tcache.entry;
        invalidate t tr ~keep_in_group:false)
      trs_on_page;
    Machine.Mem.(t.mem.write_pass <- true)
  end
  else
    (* handler performs the write; protection stays, so the next write
       will fault again — this is the expensive page-level ping-pong
       Table 1 quantifies *)
    Machine.Mem.(t.mem.write_pass <- true)

(* A write genuinely overlaps translated code bytes. *)
let handle_code_write t ~trs ~paddr ~len =
  List.iter
    (fun (tr : Tcache.trans) ->
      let entry = tr.Tcache.entry in
      (* stylized SMC: writes confined to imm32 fields *)
      if
        t.cfg.Config.enable_stylized
        && all_bytes_in_imm_fields tr ~paddr ~len
      then begin
        let addrs = ISet.of_list (imm_insns_covering tr ~paddr ~len) in
        if
          ISet.subset addrs tr.Tcache.policy.Policy.stylized_imms
          && tr.Tcache.policy.Policy.self_check
        then
          (* the translation already loads these immediates from the
             code bytes at run time and verifies everything else: the
             write needs no invalidation at all — the §3.6.4 payoff *)
          ()
        else begin
          Adapt.add_stylized t.adapt entry addrs;
          (* stylized translations still need their non-immediate bytes
             verified *)
          if t.cfg.Config.enable_self_check then
            Adapt.set_self_check t.adapt entry;
          invalidate t tr
            ~keep_in_group:
              (t.cfg.Config.enable_groups && tr.Tcache.snapshot <> None)
        end
      end
      else begin
        let n = bump t.invalidation_counts entry in
        if t.cfg.Config.enable_self_check && n > t.cfg.Config.smc_false_limit
        then
          (* repeated rewrites: stop invalidating, start checking *)
          Adapt.set_self_check t.adapt entry;
        (* a revalidating translation whose region is written *by itself*
           cannot make progress with a prologue (§3.6.2); self-checking
           handles that case, which the upgrade above moves toward *)
        invalidate t tr
          ~keep_in_group:
            (t.cfg.Config.enable_groups && tr.Tcache.snapshot <> None)
      end)
    trs;
  Machine.Mem.(t.mem.write_pass <- true)

(** The [Machine.Mem.on_smc] handler. *)
let on_write t (hit : Machine.Mem.smc_hit) ~paddr ~len =
  let ppn = paddr lsr Machine.Mmu.page_shift in
  match hit with
  | Machine.Mem.Fg_miss ->
      (* software refill of the fine-grain cache *)
      Machine.Finegrain.install t.mem.Machine.Mem.fg ~ppn
        ~mask:(page_mask t ~ppn);
      t.stats.Stats.fg_installs <- t.stats.Stats.fg_installs + 1;
      Stats.charge t.stats t.cfg.Config.fg_install_cost
  | Machine.Mem.Page_level | Machine.Mem.Fg_chunk -> (
      Stats.charge t.stats t.cfg.Config.fault_handler_cost;
      t.stats.Stats.fault_entries <- t.stats.Stats.fault_entries + 1;
      match overlapping_translations t ~paddr ~len with
      | [] -> handle_false_fault t ~ppn ~paddr ~len
      | trs -> handle_code_write t ~trs ~paddr ~len)

(** The [Machine.Mem.on_dma_smc] handler: paging traffic gets the
    coarse treatment — invalidate everything on the page (§3.6.1). *)
let on_dma t ~ppn =
  Stats.charge t.stats t.cfg.Config.fault_handler_cost;
  List.iter
    (fun tr -> invalidate t tr ~keep_in_group:false)
    (Tcache.on_page t.tcache ~ppn);
  Machine.Mem.unprotect_page t.mem ~ppn

(* ------------------------------------------------------------------ *)
(* Self-check failure and self-revalidation                            *)
(* ------------------------------------------------------------------ *)

(** A running translation's embedded self-check found changed bytes.
    Try the translation group first; otherwise invalidate and record
    stylized candidates from the byte diff. *)
let on_selfcheck_fail t (tr : Tcache.trans) =
  t.stats.Stats.selfcheck_fails <- t.stats.Stats.selfcheck_fails + 1;
  Stats.charge t.stats t.cfg.Config.fault_handler_cost;
  let current = Codegen.take_snapshot t.mem tr.Tcache.region in
  (* stylized-SMC detection from the byte diff: if every changed byte
     sits in some instruction's imm32 field, retranslate with those
     immediates loaded from the code stream at run time (§3.6.4) *)
  (if t.cfg.Config.enable_stylized then
     match tr.Tcache.snapshot with
     | Some snap when Bytes.length snap = Bytes.length current ->
         let diffs = ref [] in
         let off = ref 0 in
         List.iter
           (fun (lo, hi) ->
             for a = lo to hi - 1 do
               let k = !off + (a - lo) in
               if Bytes.get snap k <> Bytes.get current k then
                 diffs := a :: !diffs
             done;
             off := !off + (hi - lo))
           tr.Tcache.region.Region.src_ranges;
         let in_field a =
           Array.exists
             (fun (i : Region.insn_info) ->
               match i.Region.imm32_addr with
               | Some f -> a >= f && a < f + 4
               | None -> false)
             tr.Tcache.region.Region.insns
         in
         if !diffs <> [] && List.for_all in_field !diffs then begin
           let addrs =
             Array.to_list tr.Tcache.region.Region.insns
             |> List.filter_map (fun (i : Region.insn_info) ->
                    match i.Region.imm32_addr with
                    | Some f
                      when List.exists (fun a -> a >= f && a < f + 4) !diffs ->
                        Some i.Region.addr
                    | _ -> None)
             |> ISet.of_list
           in
           Adapt.add_stylized t.adapt tr.Tcache.entry addrs
         end
     | _ -> ());
  invalidate t tr
    ~keep_in_group:(t.cfg.Config.enable_groups && tr.Tcache.snapshot <> None);
  if t.cfg.Config.enable_groups then begin
    match Tcache.group_match t.tcache ~entry:tr.Tcache.entry ~current_bytes:current with
    | Some tr' ->
        t.stats.Stats.group_hits <- t.stats.Stats.group_hits + 1;
        register t tr'
    | None -> ()
  end

(** Self-revalidation prologue (§3.6.2): called at dispatch when the
    translation's prologue is armed.  Verifies the source bytes,
    re-protects, and disables the prologue; returns [false] when the
    code really changed (caller treats it like a self-check failure). *)
(* Compare current source bytes against the snapshot, ignoring bytes
   inside the translation's stylized immediate fields (those are
   legitimately volatile: the translation reloads them at run time). *)
let snapshot_matches (tr : Tcache.trans) current =
  match tr.Tcache.snapshot with
  | None -> false
  | Some snap when Bytes.length snap <> Bytes.length current -> false
  | Some snap ->
      let excluded =
        Array.to_list tr.Tcache.region.Region.insns
        |> List.filter_map (fun (i : Region.insn_info) ->
               if
                 ISet.mem i.Region.addr tr.Tcache.policy.Policy.stylized_imms
               then Option.map (fun a -> (a, a + 4)) i.Region.imm32_addr
               else None)
      in
      let ok = ref true in
      let off = ref 0 in
      List.iter
        (fun (lo, hi) ->
          for a = lo to hi - 1 do
            let k = !off + (a - lo) in
            if
              Bytes.get snap k <> Bytes.get current k
              && not (List.exists (fun (elo, ehi) -> a >= elo && a < ehi) excluded)
            then ok := false
          done;
          off := !off + (hi - lo))
        tr.Tcache.region.Region.src_ranges;
      !ok

let revalidate t (tr : Tcache.trans) =
  t.stats.Stats.reval_checks <- t.stats.Stats.reval_checks + 1;
  let len = Region.src_bytes tr.Tcache.region in
  Stats.charge t.stats (len * t.cfg.Config.reval_cost_per_byte);
  let current = Codegen.take_snapshot t.mem tr.Tcache.region in
  if snapshot_matches tr current then begin
    t.stats.Stats.reval_hits <- t.stats.Stats.reval_hits + 1;
    tr.Tcache.reval_armed <- false;
    register t tr;
    true
  end
  else false
