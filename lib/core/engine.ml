(** The CMS runtime: the control loop of the paper's Figure 1.

    Interpret until hot → translate → execute from the translation
    cache with chaining; on a native fault, roll back to the committed
    x86 state, re-execute the region in the interpreter to decide
    whether the fault was genuine (deliver it) or speculative (count it
    and, past a threshold, retranslate more conservatively); deliver
    external interrupts only at consistent boundaries, rolling back a
    translation the interrupt arrived in (§3.2, §3.3). *)

(** Host-side fault-injection hooks (the chaos layer, {!Cms_robust}).
    Each is called from a point where the injected adversity is
    architecturally recoverable; the clean run installs none. *)
type chaos = {
  on_translate : int -> unit;
      (** called with the entry address at the top of every translation
          attempt, *inside* the containment boundary — raising here
          simulates translator/verifier death *)
  pre_exec : Tcache.trans -> Vliw.Nexn.t option;
      (** consulted before a translation runs; [Some n] suppresses the
          execution and injects native fault [n] at the first molecule
          (a spurious rollback: the state is still at the commit
          point), driving the recovery path and the demotion ladder *)
  irq_spoof : unit -> bool;
      (** spurious interrupt-pending signal for the in-translation
          poll: forces an interrupt exit (and rollback when mid-flight)
          with no interrupt actually deliverable *)
  bg_doom : int -> Bgtrans.doom option;
      (** called with the entry address as a background-translation
          request is built, *before* it is enqueued — the doom travels
          with the job and the worker domain acts it out (fail, wedge,
          delay, or die).  Drawing engine-side keeps the chaos schedule
          deterministic; every doom degrades to synchronous
          translation, so none is architecturally visible *)
}

type t = {
  cfg : Config.t;
  plat : Machine.Platform.t;
  cpu : Cpu.t;
  interp : Interp.t;
  profile : Profile.t;
  stats : Stats.t;
  tcache : Tcache.t;
  smc : Smc.t;
  adapt : Adapt.t;
  bg : Bgtrans.t option;
      (** the background translator ({!Config.background_translation});
          [None] runs every translation synchronously *)
  mutable ticked : int;  (** molecules already reported to the bus *)
  mutable irq_sample : int;  (** divider for in-translation IRQ polls *)
  mutable on_boundary : (int -> unit) option;
      (** Test/fuzz hook, called with the retired-instruction count at
          the top of every dispatch iteration — a consistent
          architectural boundary in every configuration.  Raising IRQ
          lines here makes them deliverable within the same iteration. *)
  mutable chaos : chaos option;  (** fault injection; [None] = clean run *)
  mutable on_bg_consume : (entry:int -> at:int -> unit) option;
      (** record-replay hook, fired at every canonical background
          consume instant with the entry and the retired-instruction
          clock — the journal's [Bg_arrive] stream *)
  mutable on_rollback : (unit -> unit) option;
      (** test hook, fired immediately after every speculative-state
          rollback — the seam where the non-interference invariant
          ({!speculation_visible}) is asserted *)
  mutable shared_source :
    (entry:int ->
    region:Region.t ->
    policy:Policy.t ->
    bytes_:Bytes.t ->
    Codegen.compiled option)
      option;
      (** fleet-mode consult hook, fired at the synchronous translate
          instant when no validated background result was available.
          The hook receives the canonical inputs derived right here —
          the selected region, the adaptive policy, and the current
          source bytes — and may return a pre-minted translation; the
          *hook* owns validation (the fleet layer revalidates every
          shared-store entry against exactly these inputs before
          trusting it).  A returned translation skips the translate
          charge and is charged a revalidation cost instead, so a warm
          store is a genuine cold-start accelerator. *)
  mutable on_fresh_translation :
    (entry:int ->
    region:Region.t ->
    policy:Policy.t ->
    bytes_:Bytes.t ->
    compiled:Codegen.compiled ->
    unit)
      option;
      (** fleet-mode publish seam, fired after a freshly compiled
          translation (synchronous or validated-background, never one
          supplied by {!shared_source}) is installed, with the source
          bytes it was compiled from.  Exceptions escaping the hook are
          contained by {!translate}. *)
  mutable insn_limit : int;
      (** the active [run]'s [max_insns]; the chained fast path checks
          it at every translation-to-translation boundary so a chained
          loop stops exactly where the dispatcher would *)
  (* forward-progress watchdog state *)
  mutable stall_eip : int;  (** eip at the last dispatch iteration *)
  mutable last_retired : int;
  mutable stalls : int;
      (** consecutive dispatch iterations with no retired progress at
          the same eip *)
}

let create ?(cfg = Config.default) plat =
  let cpu = Cpu.create plat ~cfg in
  let stats = Stats.create () in
  let profile = Profile.create () in
  let interp = Interp.create cpu ~profile ~stats ~cfg in
  let tcache = Tcache.create ~capacity:cfg.Config.tcache_capacity in
  let adapt = Adapt.create cfg in
  let mem = plat.Machine.Platform.mem in
  mem.Machine.Mem.fg_enabled <- cfg.Config.enable_fine_grain;
  Machine.Mem.set_fast_paths mem cfg.Config.host_fast_paths;
  let smc = Smc.create ~cfg ~mem ~tcache ~adapt ~stats in
  let bg =
    if cfg.Config.background_translation then Some (Bgtrans.create cfg)
    else None
  in
  let t =
    { cfg; plat; cpu; interp; profile; stats; tcache; smc; adapt; bg;
      ticked = 0; irq_sample = 0; on_boundary = None; chaos = None;
      on_bg_consume = None; on_rollback = None;
      shared_source = None; on_fresh_translation = None;
      insn_limit = max_int; stall_eip = -1; last_retired = -1; stalls = 0 }
  in
  mem.Machine.Mem.on_smc <- (fun hit ~paddr ~len -> Smc.on_write smc hit ~paddr ~len);
  mem.Machine.Mem.on_dma_smc <- (fun ~ppn -> Smc.on_dma smc ~ppn);
  (* a tcache flush is the big hammer: dependent host caches die too *)
  tcache.Tcache.on_flush <- (fun () -> Interp.dcache_clear interp);
  (* generational eviction is the gentle one: only the evicted records'
     page protection needs re-deriving *)
  tcache.Tcache.on_evict <- (fun tr -> Smc.note_evicted smc tr);
  t

let perf t = t.cpu.Cpu.exec.Vliw.Exec.perf

(** Total molecules so far (host-executed + cost model). *)
let total_molecules t = Stats.total_molecules t.stats (perf t)

let retired t = t.stats.Stats.x86_interp + (perf t).Vliw.Perf.x86_committed

(* Advance device time to match consumed molecules. *)
let tick_devices t =
  let now = total_molecules t in
  if now > t.ticked then begin
    Machine.Bus.tick (Cpu.bus t.cpu) (now - t.ticked);
    t.ticked <- now
  end

(* ------------------------------------------------------------------ *)
(* Translator driver                                                   *)
(* ------------------------------------------------------------------ *)

let insert_zero_insn t entry =
  let region =
    { Region.entry; insns = [||]; cont = None; src_ranges = [] }
  in
  let tr =
    Tcache.insert t.tcache ~entry ~code:(Codegen.zero_insn_code ~entry)
      ~region ~policy:(Adapt.get t.adapt entry) ~snapshot:None
  in
  t.stats.Stats.translations <- t.stats.Stats.translations + 1;
  tr

(* Consume any background-translation request for [entry] at its
   canonical install instant (we are about to translate synchronously,
   which is exactly the instant the background result may replace).
   Fires the record-replay hook — the consume event is part of the
   deterministic schedule whether or not a usable result came back. *)
let bg_take t entry =
  match t.bg with
  | None -> None
  | Some bg -> (
      match Bgtrans.consume bg entry with
      | None -> None
      | Some tk ->
          (match t.on_bg_consume with
          | Some f -> f ~entry ~at:(retired t)
          | None -> ());
          if tk.Bgtrans.t_waited then
            t.stats.Stats.bg_waits <- t.stats.Stats.bg_waits + 1;
          if tk.Bgtrans.t_unready then
            t.stats.Stats.bg_unready <- t.stats.Stats.bg_unready + 1;
          Some tk)

(* The translator proper; may raise (verifier rejection, translator
   bug, injected chaos) — callers go through [translate] below, which
   contains any escape. *)
let translate_unprotected t entry =
  let mem = Cpu.mem t.cpu in
  let bg_taken = bg_take t entry in
  let bg_used = ref false in
  let first_attempt = ref true in
  let rec attempt policy =
    match Region.select ~mem ~profile:t.profile ~policy entry with
    | None -> insert_zero_insn t entry
    | Some region -> (
        (* translation groups (§3.6.5): if a parked translation of this
           region matches the current code bytes, reactivate it instead
           of retranslating *)
        match
          if t.cfg.Config.enable_groups && Tcache.group_size t.tcache ~entry > 0
          then
            Tcache.group_match t.tcache ~entry
              ~current_bytes:(Codegen.take_snapshot mem region)
          else None
        with
        | Some tr ->
            t.stats.Stats.group_hits <- t.stats.Stats.group_hits + 1;
            Smc.register t.smc tr;
            tr
        | None ->
        (* Validated background install: the finished result is used
           only if the canonical inputs derived *right here* — policy,
           region shape, and current source bytes — match the job it
           was compiled from.  Any drift (SMC between enqueue and
           install, adaptation, profile-reshaped trace) rejects it and
           we compile synchronously; the compiler is deterministic, so
           a validated hit is bit-identical to the compile it skips —
           which is what makes background translation architecturally
           invisible. *)
        (* One snapshot read per consumed request, taken whether or
           not a result came back: the (cost-model-counted) read
           schedule must be a function of the deterministic request
           schedule, never of worker timing — a ready result must not
           read more or fewer guest bytes than an unready one. *)
        let bg_snap =
          match bg_taken with
          | Some _ when !first_attempt ->
              Some (Codegen.take_snapshot mem region)
          | _ -> None
        in
        first_attempt := false;
        (* With a fleet hook installed (shared-store consult or publish
           seam), the current source bytes are part of every attempt's
           canonical inputs, so the snapshot read happens uniformly —
           never as a function of whether the store had a hit. *)
        let cur_snap =
          match bg_snap with
          | Some _ -> bg_snap
          | None ->
              if
                Option.is_some t.shared_source
                || Option.is_some t.on_fresh_translation
              then Some (Codegen.take_snapshot mem region)
              else None
        in
        let precompiled =
          match (bg_taken, cur_snap) with
          | Some { Bgtrans.t_job = j; t_result = Some c; _ }, Some cur
            when (not !bg_used)
                 && Policy.equal j.Bgtrans.policy policy
                 && Region.equal j.Bgtrans.region region
                 && Bytes.equal j.Bgtrans.bytes cur ->
              bg_used := true;
              Some c
          | _ -> None
        in
        (* Shared-store consult: only when neither the tcache nor the
           background worker could serve the entry.  The hook owns
           validation; anything it returns installs like a local
           compile, minus the translate charge. *)
        let precompiled, from_store =
          match precompiled with
          | Some _ -> (precompiled, false)
          | None -> (
              match (t.shared_source, cur_snap) with
              | Some f, Some cur -> (
                  match f ~entry ~region ~policy ~bytes_:cur with
                  | Some _ as c -> (c, true)
                  | None -> (None, false))
              | _ -> (None, false))
        in
        match
          match (precompiled, cur_snap) with
          | Some c, _ -> c
          | None, Some cur ->
              Codegen.compile_presnapped ~cfg:t.cfg ~policy ~bytes:cur region
          | None, None -> Codegen.compile ~cfg:t.cfg ~policy ~mem region
        with
        | { Codegen.code; snapshot; unprotected; _ } as compiled ->
            let n = Region.instruction_count region in
            if from_store then begin
              (* The fleet's cold-start payoff: a validated store entry
                 skips the per-instruction translate charge and pays
                 only for its consumer-side revalidation (source-byte
                 compare plus code walk). *)
              Stats.charge t.stats
                (Region.src_bytes region * t.cfg.Config.reval_cost_per_byte);
              t.stats.Stats.store_hits <- t.stats.Stats.store_hits + 1
            end
            else begin
              Stats.charge t.stats (n * t.cfg.Config.translate_cost);
              t.stats.Stats.translations <- t.stats.Stats.translations + 1;
              if Adapt.hot t.adapt entry then
                t.stats.Stats.retranslations <-
                  t.stats.Stats.retranslations + 1;
              t.stats.Stats.insns_translated <-
                t.stats.Stats.insns_translated + n;
              t.stats.Stats.translated_atoms <-
                t.stats.Stats.translated_atoms + Vliw.Code.atom_count code;
              if
                t.cfg.Config.verify_translations
                && Option.is_some !Codegen.verify_hook
              then
                t.stats.Stats.translations_verified <-
                  t.stats.Stats.translations_verified + 1
            end;
            let tr =
              Tcache.insert ~unprotected t.tcache ~entry ~code ~region ~policy
                ~snapshot
            in
            Smc.register t.smc tr;
            Profile.reset_count t.profile entry;
            if not from_store then
              (match (t.on_fresh_translation, cur_snap) with
              | Some f, Some cur ->
                  f ~entry ~region ~policy ~bytes_:cur ~compiled
              | _ -> ());
            tr
        | exception Codegen.Too_big ->
            if policy.Policy.max_insns <= 4 then insert_zero_insn t entry
            else begin
              let p =
                { policy with Policy.max_insns = policy.Policy.max_insns / 2 }
              in
              Adapt.upgrade t.adapt entry p;
              attempt p
            end)
  in
  let tr = attempt (Adapt.get t.adapt entry) in
  (match bg_taken with
  | Some { Bgtrans.t_result = Some _; _ } ->
      if !bg_used then
        t.stats.Stats.bg_installed <- t.stats.Stats.bg_installed + 1
      else t.stats.Stats.bg_stale <- t.stats.Stats.bg_stale + 1
  | _ -> ());
  tr

(** Translate the region at [entry] under its adaptive policy.

    This is the containment boundary: any exception escaping region
    selection, scheduling or code generation is absorbed here — counted,
    charged against the entry's failure budget (repeat offenders are
    quarantined), and turned into [None] so the dispatcher falls back to
    the interpreter instead of the run dying.  Resource-exhaustion
    exceptions still propagate: absorbing those would hide real trouble. *)
let translate t entry =
  if (Adapt.get t.adapt entry).Policy.interp_only then None
  else
    try
      (match t.chaos with Some c -> c.on_translate entry | None -> ());
      Some (translate_unprotected t entry)
    with
    | (Out_of_memory | Stack_overflow) as e -> raise e
    | _ ->
        t.stats.Stats.containments <- t.stats.Stats.containments + 1;
        (match Adapt.note_translate_failure t.adapt entry with
        | Some Adapt.Quarantined ->
            t.stats.Stats.quarantines <- t.stats.Stats.quarantines + 1
        | _ -> ());
        None

(** Install a pre-minted translation from an AOT image.  The caller
    (the persist layer's image loader) has already validated the code
    bytes against the image snapshot; here it only takes its place in
    the tcache and under SMC protection, exactly like a dynamic
    translation — crucially *without* the per-instruction translate
    charge, which is the whole cold-start payoff.  Returns [false]
    (and installs nothing) if the entry already has a live translation. *)
let aot_install t ~entry ~code ~region ~policy ~snapshot =
  match Tcache.lookup t.tcache entry with
  | Some _ -> false
  | None ->
      let tr =
        Tcache.insert ~aot:true t.tcache ~entry ~code ~region ~policy
          ~snapshot:(Some snapshot)
      in
      Smc.register t.smc tr;
      t.stats.Stats.aot_loaded <- t.stats.Stats.aot_loaded + 1;
      true

(* ------------------------------------------------------------------ *)
(* Background-translation enqueue (the speculative half)               *)
(* ------------------------------------------------------------------ *)

(* The profile count at which a region is worth compiling ahead of
   need: halfway up the hotness climb, so the worker gets the whole
   second half of the climb (threshold/2 dispatch iterations) of
   wall-clock to finish before the canonical install instant.  Guarded
   against the interpreter-only configuration (threshold = max_int). *)
let bg_prefetch_threshold t =
  let th = t.cfg.Config.translate_threshold in
  if th >= max_int / 2 then max_int else max 2 (th / 2)

(* Build and enqueue one background request.  Every compiler input is
   captured immutably here, on the engine side: region selection and
   the code-byte snapshot read guest state that the worker must never
   touch, and the chaos doom is drawn here so the adversity schedule
   is deterministic.  All reads are observation-only ([Adapt.peek],
   [Region.select], [take_snapshot]) — an enqueue must not perturb the
   clocks or caches that the canonical execution depends on.  Returns
   the selected region so the caller can prefetch its successor. *)
let bg_enqueue_one t bg entry ~priority ~prefetched =
  let policy = Adapt.peek t.adapt entry in
  if policy.Policy.interp_only then None
  else
    let mem = Cpu.mem t.cpu in
    match Region.select ~mem ~profile:t.profile ~policy entry with
    | None -> None
    | Some region ->
        let bytes = Codegen.take_snapshot mem region in
        let doom =
          match t.chaos with Some c -> c.bg_doom entry | None -> None
        in
        let job =
          { Bgtrans.entry; region; policy; bytes; priority; doom; prefetched }
        in
        (match Bgtrans.enqueue bg job with
        | Bgtrans.Accepted ->
            if prefetched then
              t.stats.Stats.bg_prefetched <- t.stats.Stats.bg_prefetched + 1
            else t.stats.Stats.bg_enqueued <- t.stats.Stats.bg_enqueued + 1
        | Bgtrans.Deduped ->
            t.stats.Stats.bg_deduped <- t.stats.Stats.bg_deduped + 1
        | Bgtrans.Full ->
            t.stats.Stats.bg_dropped <- t.stats.Stats.bg_dropped + 1);
        Some region

(* A warming entry crossed the prefetch threshold: enqueue it, plus a
   branch-target prefetch of where its trace runs off the end — the
   likely next hot leader, compiled before it even starts climbing. *)
let bg_request t bg entry ~priority =
  if Bgtrans.wants bg entry then
    match bg_enqueue_one t bg entry ~priority ~prefetched:false with
    | None -> ()
    | Some region -> (
        match region.Region.cont with
        | Some c
          when c <> entry
               && Bgtrans.wants bg c
               && Tcache.probe t.tcache c = None ->
            ignore
              (bg_enqueue_one t bg c ~priority:(priority - 1)
                 ~prefetched:true)
        | _ -> ())

(* ------------------------------------------------------------------ *)
(* Recovery (§3.2)                                                     *)
(* ------------------------------------------------------------------ *)

(* Interpret the region's instructions from the committed state.
   Returns the first genuine fault, if any.  Stops when control leaves
   the region's source ranges, after one region's worth of
   instructions, or at a HLT. *)
let replay_region t (tr : Tcache.trans) =
  let budget = max 1 (Region.instruction_count tr.Tcache.region) in
  let rec go k =
    if k >= budget then None
    else if not (Region.contains tr.Tcache.region (Cpu.committed_eip t.cpu))
    then None
    else begin
      let pc = Cpu.committed_eip t.cpu in
      match Interp.step t.interp with
      | Interp.Stepped -> go (k + 1)
      | Interp.Halted -> None
      | Interp.Faulted f -> Some (f, pc)
    end
  in
  go 0

(* The paper's CMS "monitors recurring failures and generates a more
   conservative translation when it deems the rate of failure to be
   excessive": a handful of faults across many executions is cheaper to
   absorb through rollback+interpret than to pessimize the translation
   for.  Escalate only past an absolute floor AND a rate threshold. *)
let excessive t ~faults ~execs =
  faults >= t.cfg.Config.spec_fault_limit && faults * 64 >= execs

(* One rung of the demotion ladder for [entry]; counts what happened.
   Every scrapped-for-spec-faults translation goes through here, so the
   per-entry escalation budget is what bounds the rollback storm of an
   always-faulting entry (forward progress). *)
let ladder_step t entry =
  match Adapt.note_escalation t.adapt entry with
  | Some Adapt.Demoted -> t.stats.Stats.demotions <- t.stats.Stats.demotions + 1
  | Some Adapt.Quarantined ->
      t.stats.Stats.quarantines <- t.stats.Stats.quarantines + 1
  | None -> ()

(* Escalate a speculative-fault class: first cut the region, then stop
   reordering (paper §3.2 / §3.5); the ladder budget sits on top and
   ends in quarantine. *)
let escalate_spec t (tr : Tcache.trans) =
  let entry = tr.Tcache.entry in
  let n = Region.instruction_count tr.Tcache.region in
  if n > 8 then Adapt.cut_region t.adapt entry ~current:n
  else Adapt.set_no_reorder t.adapt entry;
  ladder_step t entry;
  Smc.invalidate ~cause:Tcache.Udemote t.smc tr ~keep_in_group:false

(** Handle a native fault from a translation.  The engine has already
    rolled back; this decides genuine vs speculative and adapts. *)
let recover t (tr : Tcache.trans) (n : Vliw.Nexn.t) =
  t.stats.Stats.fault_entries <- t.stats.Stats.fault_entries + 1;
  Stats.charge t.stats t.cfg.Config.fault_handler_cost;
  match n with
  | Vliw.Nexn.Smc (_, _) ->
      (* replaying in the interpreter routes the write through the SMC
         handler, which updates protection state (and may invalidate
         this very translation) *)
      ignore (replay_region t tr)
  | Vliw.Nexn.Mmio_spec _ ->
      (* the replay lets the interpreter profile which instruction does
         MMIO; recurring faults retranslate with those instructions
         carved out as interpreter exits (§3.4) *)
      tr.Tcache.spec_faults <- tr.Tcache.spec_faults + 1;
      t.stats.Stats.spec_faults <- t.stats.Stats.spec_faults + 1;
      ignore (replay_region t tr);
      if excessive t ~faults:tr.Tcache.spec_faults ~execs:tr.Tcache.execs
      then begin
        Array.iter
          (fun (i : Region.insn_info) ->
            if Profile.is_mmio_insn t.profile i.Region.addr then
              Adapt.add_interp_insn t.adapt tr.Tcache.entry i.Region.addr)
          tr.Tcache.region.Region.insns;
        ladder_step t tr.Tcache.entry;
        Smc.invalidate ~cause:Tcache.Udemote t.smc tr ~keep_in_group:false
      end
  | Vliw.Nexn.Alias_violation _ ->
      if Sys.getenv_opt "CMS_DEBUG_FAULTS" <> None then begin
        Fmt.epr "[alias fault] entry=%#x execs=%d spec=%d insns=%d@."
          tr.Tcache.entry tr.Tcache.execs tr.Tcache.spec_faults
          (Region.instruction_count tr.Tcache.region);
        if tr.Tcache.execs <= 1 then begin
          Array.iteri
            (fun i (info : Region.insn_info) ->
              Fmt.epr "  x86[%d] %#x: %s@." i info.Region.addr
                (X86.Insn.to_string info.Region.insn))
            tr.Tcache.region.Region.insns;
          Fmt.epr "%a@." Vliw.Code.pp tr.Tcache.code
        end
      end;
      tr.Tcache.spec_faults <- tr.Tcache.spec_faults + 1;
      t.stats.Stats.spec_faults <- t.stats.Stats.spec_faults + 1;
      ignore (replay_region t tr);
      if excessive t ~faults:tr.Tcache.spec_faults ~execs:tr.Tcache.execs then
        escalate_spec t tr
  | Vliw.Nexn.Sbuf_overflow ->
      t.stats.Stats.spec_faults <- t.stats.Stats.spec_faults + 1;
      ignore (replay_region t tr);
      escalate_spec t tr
  | Vliw.Nexn.X86_fault _ -> (
      match replay_region t tr with
      | Some (_, pc) ->
          (* genuine: the interpreter delivered it precisely.  Recurring
             genuine faults narrow the translation around the faulting
             instruction, ultimately to a zero-instruction translation. *)
          tr.Tcache.genuine_faults <- tr.Tcache.genuine_faults + 1;
          t.stats.Stats.genuine_faults <- t.stats.Stats.genuine_faults + 1;
          if
            tr.Tcache.genuine_faults >= t.cfg.Config.genuine_fault_limit
            && tr.Tcache.genuine_faults * 64 >= tr.Tcache.execs
          then begin
            (* carve out the faulting instruction: its neighbours stay
               large and optimized; it becomes a zero-instruction
               translation *)
            Adapt.add_interp_insn t.adapt tr.Tcache.entry pc;
            Smc.invalidate ~cause:Tcache.Udemote t.smc tr ~keep_in_group:false
          end
      | None ->
          (* speculative: a hoisted access faulted on a path the real
             program never takes *)
          tr.Tcache.spec_faults <- tr.Tcache.spec_faults + 1;
          t.stats.Stats.spec_faults <- t.stats.Stats.spec_faults + 1;
          if excessive t ~faults:tr.Tcache.spec_faults ~execs:tr.Tcache.execs
          then escalate_spec t tr)

(* ------------------------------------------------------------------ *)
(* Dispatch                                                            *)
(* ------------------------------------------------------------------ *)

let deliver_irq t =
  match Machine.Irq.ack t.plat.Machine.Platform.irq with
  | Some vector ->
      t.stats.Stats.irq_delivered <- t.stats.Stats.irq_delivered + 1;
      Cpu.deliver t.cpu ~vector ~error_code:None
  | None -> ()

(* Sampled interrupt-pending check used while a translation runs: also
   advances device time so timers can fire mid-translation.  Chaos can
   spoof it: the translation exits (rolling back if mid-flight), the
   dispatcher finds nothing to deliver — a pure spurious rollback. *)
let irq_pending_poll t () =
  t.irq_sample <- t.irq_sample + 1;
  if t.irq_sample land 15 = 0 then tick_devices t;
  Cpu.irq_deliverable t.cpu
  || (match t.chaos with Some c -> c.irq_spoof () | None -> false)

(* Execute a translation's code: through its compiled closure when the
   steady-state tier is eligible (closures never carry the debug
   interlocks, so those force the {!Vliw.Exec} path), else the
   atom-dispatching engine.  Compilation is lazy, at first dispatch —
   also what re-arms AOT-installed translations locally after their
   copy-on-validate install. *)
let exec_code t (tr : Tcache.trans) =
  let exec = t.cpu.Cpu.exec in
  if
    t.cfg.Config.closure_exec
    && (not exec.Vliw.Exec.validate)
    && not exec.Vliw.Exec.enforce_latency
  then
    match tr.Tcache.compiled with
    | Tcache.Compiled c -> Vliw.Closure.run ~irq_pending:(irq_pending_poll t) c
    | Tcache.Uncompilable ->
        Vliw.Exec.run ~irq_pending:(irq_pending_poll t) exec tr.Tcache.code
    | Tcache.Not_compiled -> (
        match Vliw.Closure.compile exec tr.Tcache.code with
        | Some c ->
            tr.Tcache.compiled <- Tcache.Compiled c;
            t.stats.Stats.closures_compiled <-
              t.stats.Stats.closures_compiled + 1;
            Vliw.Closure.run ~irq_pending:(irq_pending_poll t) c
        | None ->
            tr.Tcache.compiled <- Tcache.Uncompilable;
            Vliw.Exec.run ~irq_pending:(irq_pending_poll t) exec tr.Tcache.code)
  else Vliw.Exec.run ~irq_pending:(irq_pending_poll t) exec tr.Tcache.code

(* Run [tr] once.  Returns the successor translation when the exit
   taken is a healthy [Chained] fast exit — the caller decides whether
   the chained transfer actually happens (boundary checks). *)
let run_translation_once t (tr : Tcache.trans) : Tcache.trans option =
  (* self-revalidation prologue *)
  if tr.Tcache.reval_armed then
    if not (Smc.revalidate t.smc tr) then begin
      (* code really changed behind the disarmed protection *)
      Smc.on_selfcheck_fail t.smc tr;
      ()
    end;
  if not tr.Tcache.valid then None
  else begin
    tr.Tcache.execs <- tr.Tcache.execs + 1;
    let aot_before =
      if tr.Tcache.aot then (perf t).Vliw.Perf.x86_committed else 0
    in
    let succ =
      match
        match t.chaos with
        | Some c -> (
            (* injected native fault: the state is still at the commit
               point, so this is exactly a fault at the first molecule *)
            match c.pre_exec tr with
            | Some n -> Vliw.Exec.Faulted n
            | None -> exec_code t tr)
        | None -> exec_code t tr
      with
      | Vliw.Exec.Exited i -> (
          let e = tr.Tcache.code.Vliw.Code.exits.(i) in
          match e.Vliw.Code.kind with
          | Vliw.Code.Enext ->
              (* chaining (§2): resolve an already-patched successor
                 (one id lookup), else patch the exit to its target
                 translation — the patch hands back the successor
                 directly, so a fresh patch costs no extra lookup *)
              let succ =
                match e.Vliw.Code.chain with
                | Vliw.Code.Chained id -> Tcache.by_id t.tcache id
                | _ -> None
              in
              let succ =
                match succ with
                | Some _ -> succ
                | None -> (
                    t.stats.Stats.lookups <- t.stats.Stats.lookups + 1;
                    Stats.charge t.stats t.cfg.Config.lookup_cost;
                    match e.Vliw.Code.target with
                    | Vliw.Code.Const target when t.cfg.Config.enable_chaining
                      -> (
                        match Tcache.lookup t.tcache target with
                        | Some t2 ->
                            e.Vliw.Code.chain <- Vliw.Code.Chained t2.Tcache.id;
                            Tcache.link ~src:tr ~exit_idx:i ~dst:t2;
                            t.stats.Stats.chain_patches <-
                              t.stats.Stats.chain_patches + 1;
                            Some t2
                        | None -> None)
                    | _ -> None)
              in
              (* chained fast exit: hand the healthy successor to the
                 transfer loop instead of the dispatcher *)
              if t.cfg.Config.chain_exits then succ else None
          | Vliw.Code.Einterp_one ->
              ignore (Interp.step t.interp);
              None
          | Vliw.Code.Eselfcheck_fail ->
              Smc.on_selfcheck_fail t.smc tr;
              None)
      | Vliw.Exec.Faulted n ->
          Stats.charge t.stats t.cfg.Config.rollback_cost;
          Vliw.Exec.rollback t.cpu.Cpu.exec;
          (match t.on_rollback with Some f -> f () | None -> ());
          recover t tr n;
          None
      | Vliw.Exec.Interrupted ->
          (* roll back to the consistent boundary unless already there *)
          if
            not
              (Vliw.Regfile.consistent t.cpu.Cpu.exec.Vliw.Exec.regs
              && Vliw.Storebuf.is_empty t.cpu.Cpu.exec.Vliw.Exec.sbuf)
          then begin
            Stats.charge t.stats t.cfg.Config.rollback_cost;
            Vliw.Exec.rollback t.cpu.Cpu.exec;
            (match t.on_rollback with Some f -> f () | None -> ());
            t.stats.Stats.irq_rollbacks <- t.stats.Stats.irq_rollbacks + 1
          end;
          (* Under a spoofed poll this exit can happen with IF clear; a
             latched line must then stay latched for later — acking it
             here would deliver an interrupt the guest has masked. *)
          if Cpu.irq_deliverable t.cpu then deliver_irq t;
          None
      | Vliw.Exec.Runaway ->
          raise (Cpu.Panic "translation exceeded molecule budget")
    in
    if tr.Tcache.aot then begin
      t.stats.Stats.aot_hits <- t.stats.Stats.aot_hits + 1;
      t.stats.Stats.aot_x86_retired <-
        t.stats.Stats.aot_x86_retired
        + ((perf t).Vliw.Perf.x86_committed - aot_before)
    end;
    succ
  end

(* Run a translation, following healthy chained exits translation-to-
   translation.  Each hop passes through a boundary that does exactly
   what the dispatcher's loop top does — device ticks, the boundary
   hook, run-limit / halt / interrupt / quarantine checks — minus the
   tcache lookup the chain replaces; any failed check falls back to the
   dispatcher, which re-derives everything from scratch.  A hop also
   requires retired-instruction progress, so a chained cycle can never
   bypass the forward-progress watchdog. *)
let run_translation t (tr : Tcache.trans) =
  let rec go (tr : Tcache.trans) =
    let before = retired t in
    match run_translation_once t tr with
    | None -> ()
    | Some succ ->
        tick_devices t;
        (match t.on_boundary with None -> () | Some f -> f (retired t));
        (* hooks (fuzz events, chaos storms, journal replay) may have
           changed anything: re-check the successor and the world *)
        if
          retired t > before
          && retired t < t.insn_limit
          && (not t.cpu.Cpu.halted)
          && (not (Cpu.irq_deliverable t.cpu))
          && succ.Tcache.valid
          && (not (Adapt.quarantined t.adapt succ.Tcache.entry))
          && Cpu.committed_eip t.cpu = succ.Tcache.entry
        then begin
          (* the dispatcher's [Tcache.lookup] would refresh the
             generation stamp; the chained path must too, or hot
             successors look cold to the evictor *)
          succ.Tcache.gen <- t.tcache.Tcache.cur_gen;
          t.stats.Stats.chained_exits_taken <-
            t.stats.Stats.chained_exits_taken + 1;
          go succ
        end
  in
  go tr

(* Can any device still wake a halted CPU? *)
let wakeup_possible t =
  t.plat.Machine.Platform.timer.Machine.Timer.period > 0
  || t.plat.Machine.Platform.disk.Machine.Disk.busy > 0
  || Machine.Nic.active t.plat.Machine.Platform.nic

(** Copy the machine-layer fast-path counters into {!Stats}.  They
    accumulate in [Mmu.t]/[Mem.t] (the machine library cannot see the
    cms layer); [run] syncs them on exit and callers reading stats
    mid-run can call this directly. *)
let sync_host_stats t =
  let mem = Cpu.mem t.cpu in
  let mmu = mem.Machine.Mem.mmu in
  t.stats.Stats.tlb_hits <- mmu.Machine.Mmu.tlb_hits;
  t.stats.Stats.tlb_misses <- mmu.Machine.Mmu.tlb_misses;
  t.stats.Stats.ram_fast_reads <- mem.Machine.Mem.fast_reads;
  t.stats.Stats.ram_fast_writes <- mem.Machine.Mem.fast_writes;
  t.stats.Stats.tcache_flushes <- t.tcache.Tcache.flushes;
  t.stats.Stats.tcache_evictions <- t.tcache.Tcache.evictions;
  t.stats.Stats.tcache_evicted <- t.tcache.Tcache.evicted;
  t.stats.Stats.adapt_evictions <- t.adapt.Adapt.evictions;
  t.stats.Stats.chain_unlinks_evict <- t.tcache.Tcache.unlinks_evict;
  t.stats.Stats.chain_unlinks_demote <- t.tcache.Tcache.unlinks_demote;
  t.stats.Stats.chain_unlinks_smc <- t.tcache.Tcache.unlinks_smc;
  t.stats.Stats.chain_unlinks_aot <- t.tcache.Tcache.unlinks_aot;
  t.stats.Stats.chain_unlinks_chaos <- t.tcache.Tcache.unlinks_chaos;
  let irq = t.plat.Machine.Platform.irq in
  t.stats.Stats.irq_raised <- irq.Machine.Irq.raised_total;
  t.stats.Stats.irq_deferred <- irq.Machine.Irq.deferred_total;
  let nic = t.plat.Machine.Platform.nic in
  t.stats.Stats.nic_rx_frames <- nic.Machine.Nic.rx_frames;
  t.stats.Stats.nic_tx_frames <- nic.Machine.Nic.tx_frames;
  t.stats.Stats.nic_rx_dropped <- nic.Machine.Nic.rx_dropped;
  t.stats.Stats.nic_irqs <- nic.Machine.Nic.irqs_raised;
  t.stats.Stats.nic_irq_coalesced <- nic.Machine.Nic.irqs_coalesced;
  match t.bg with
  | Some bg ->
      let compiled, failed = Bgtrans.counters bg in
      t.stats.Stats.bg_compiled <- compiled;
      t.stats.Stats.bg_failed <- failed
  | None -> ()

type stop = Halted | Insn_limit

(** Run until the guest halts with no wakeup source, or [max_insns]
    x86 instructions have retired.

    The translator domain is quiesced (joined) on every exit, normal
    or exceptional: OCaml caps live domains, and test suites run
    thousands of engines — a worker's lifetime must be bounded by its
    run, not its engine.  A later run's first enqueue respawns it. *)
let run ?(max_insns = max_int) t =
  t.insn_limit <- max_insns;
  Fun.protect
    ~finally:(fun () ->
      (match t.bg with Some bg -> Bgtrans.quiesce bg | None -> ());
      t.stats.Stats.x86_translated <- (perf t).Vliw.Perf.x86_committed;
      sync_host_stats t)
  @@ fun () ->
  let continue_ = ref true in
  let result = ref Halted in
  while !continue_ do
    tick_devices t;
    (match t.on_boundary with None -> () | Some f -> f (retired t));
    if retired t >= max_insns then begin
      result := Insn_limit;
      continue_ := false
    end
    else if t.cpu.Cpu.halted then begin
      if Cpu.irq_deliverable t.cpu then deliver_irq t
      else if wakeup_possible t then begin
        (* idle: advance time until something fires *)
        Stats.charge t.stats 256;
        tick_devices t
      end
      else begin
        result := Halted;
        continue_ := false
      end
    end
    else if Cpu.irq_deliverable t.cpu then deliver_irq t
    else begin
      let eip = Cpu.committed_eip t.cpu in
      (* Forward-progress watchdog: if successive dispatch iterations
         retire nothing at the same eip (a translation that always rolls
         back — e.g. under a spoofed-interrupt storm — retires nothing),
         force one interpreter step.  The interpreter commits per
         instruction, so this provably breaks any rollback livelock: the
         safety-net invariant. *)
      let r = retired t in
      if r <> t.last_retired || eip <> t.stall_eip then begin
        t.last_retired <- r;
        t.stall_eip <- eip;
        t.stalls <- 0
      end
      else t.stalls <- t.stalls + 1;
      if t.stalls >= t.cfg.Config.stall_limit then begin
        t.stalls <- 0;
        t.stats.Stats.progress_forces <- t.stats.Stats.progress_forces + 1;
        ignore (Interp.step t.interp)
      end
      else if Adapt.quarantined t.adapt eip then begin
        (* the bottom of the demotion ladder: interpreter-only *)
        t.stats.Stats.quarantined_steps <-
          t.stats.Stats.quarantined_steps + 1;
        ignore (Interp.step t.interp)
      end
      else
        match Tcache.lookup t.tcache eip with
        | Some tr -> run_translation t tr
        | None ->
            let count = Profile.count t.profile eip in
            let hot = Adapt.hot t.adapt eip in
            (* halfway up the hotness climb: hand the region to the
               background translator and keep interpreting — the climb's
               second half is the overlap window *)
            (match t.bg with
            | Some bg
              when (not hot)
                   && count >= bg_prefetch_threshold t
                   && count < t.cfg.Config.translate_threshold ->
                bg_request t bg eip ~priority:count
            | _ -> ());
            if hot || count >= t.cfg.Config.translate_threshold then
              match translate t eip with
              | Some tr -> run_translation t tr
              | None ->
                  (* containment fallback / quarantined mid-check *)
                  ignore (Interp.step t.interp)
            else begin
              (* the paper's pitch made measurable: instructions the
                 interpreter retires while translation is in flight *)
              (match t.bg with
              | Some bg when Bgtrans.in_flight bg > 0 ->
                  t.stats.Stats.bg_overlap_insns <-
                    t.stats.Stats.bg_overlap_insns + 1
              | _ -> ());
              ignore (Interp.step t.interp)
            end
    end
  done;
  !result

(** Put the background queue in virtual mode (journal replay): requests
    are tracked and consumed at the canonical instants, but no domain
    runs and nothing compiles — every install takes the synchronous
    path, which yields the identical translation. *)
let set_bg_virtual t v =
  match t.bg with Some bg -> Bgtrans.set_virtual bg v | None -> ()

(** The speculation non-interference probe: is ANY speculative state
    observable right now?  Meaningful at consistent boundaries — in
    particular immediately after a rollback ({!t.on_rollback}), where
    the answer must always be [no]: working registers match committed,
    the gated store buffer is empty, no alias-detection range is still
    armed, and no finished-but-uninstalled background translation is
    reachable through the translation cache. *)
let speculation_visible t =
  let exec = t.cpu.Cpu.exec in
  (not (Vliw.Regfile.consistent exec.Vliw.Exec.regs))
  || (not (Vliw.Storebuf.is_empty exec.Vliw.Exec.sbuf))
  || exec.Vliw.Exec.alias.Vliw.Alias.any_armed
  ||
  match t.bg with
  | None -> false
  | Some bg ->
      List.exists
        (fun (entry, (c : Codegen.compiled)) ->
          match Tcache.probe t.tcache entry with
          | Some tr -> tr.Tcache.code == c.Codegen.code
          | None -> false)
        (Bgtrans.done_uninstalled bg)

(** Headline metric: molecules per retired x86 instruction. *)
let mpi t =
  let r = retired t in
  if r = 0 then 0.0 else float_of_int (total_molecules t) /. float_of_int r
