(** Public API for the Code Morphing Software reproduction.

    Typical use:
    {[
      let listing = X86.Asm.assemble ~base:0x10000 [ ... ] in
      let c = Cms.create () in
      Cms.load c listing;
      Cms.boot c ~entry:0x10000 ();
      let (_ : Engine.stop) = Cms.run c in
      Fmt.pr "eax = %x, mpi = %.2f@." (Cms.gpr c X86.Regs.eax) (Cms.mpi c)
    ]} *)

(* This module shares the library's name, so it is the library's root:
   re-export the component modules as the public namespace. *)
module Config = Config
module Stats = Stats
module Policy = Policy
module Profile = Profile
module Cpu = Cpu
module Interp = Interp
module Region = Region
module Ir = Ir
module Lower = Lower
module Opt = Opt
module Sched = Sched
module Codegen = Codegen
module Tcache = Tcache
module Adapt = Adapt
module Bgtrans = Bgtrans
module Smc = Smc
module Engine = Engine

type t = Engine.t

(** Build a complete system: platform (RAM, MMU, devices) plus CMS. *)
let create ?(cfg = Config.default) ?(ram_size = 16 * 1024 * 1024) ?disk_image
    () =
  let plat =
    Machine.Platform.create ~ram_size ~fg_capacity:cfg.Config.fg_capacity
      ?disk_image ()
  in
  Engine.create ~cfg plat

let platform (t : t) = t.Engine.plat
let mem (t : t) = t.Engine.plat.Machine.Platform.mem
let stats (t : t) = t.Engine.stats
let perf (t : t) = Engine.perf t
let cpu (t : t) = t.Engine.cpu

(** Copy an assembled listing into guest RAM. *)
let load (t : t) listing = Machine.Mem.load_listing (mem t) listing

(** Identity-map low memory, reset the CPU, point it at [entry]. *)
let boot ?(map_mib = 2) ?(stack = 0x0008_0000) (t : t) ~entry =
  Machine.Platform.map_low_memory (platform t) ~mib:map_mib;
  Cpu.reset t.Engine.cpu ~entry ~stack

let run = Engine.run
let mpi = Engine.mpi
let total_molecules = Engine.total_molecules
let retired = Engine.retired

(* Committed architectural state accessors (for result checking). *)
let gpr (t : t) r = Vliw.Regfile.get_committed (Cpu.regs t.Engine.cpu) (Vliw.Abi.gpr r)
let eip (t : t) = Cpu.committed_eip t.Engine.cpu
let eflags (t : t) = Cpu.arch_eflags t.Engine.cpu
let read_mem (t : t) ~size addr = Machine.Mem.read (mem t) ~size addr
let uart_output (t : t) = Machine.Uart.output (platform t).Machine.Platform.uart
let frames (t : t) = (platform t).Machine.Platform.fb.Machine.Framebuf.frames

(** Run a listing start-to-halt on a fresh system; returns the engine
    for inspection.  The workhorse of tests and experiments. *)
let run_listing ?cfg ?ram_size ?disk_image ?map_mib ?stack ?max_insns listing
    ~entry =
  let t = create ?cfg ?ram_size ?disk_image () in
  load t listing;
  boot ?map_mib ?stack t ~entry;
  let stop = run ?max_insns t in
  (t, stop)

(** Interpreter-only execution of the same listing (reference
    semantics for differential testing). *)
let interp_only_cfg =
  { Config.default with Config.translate_threshold = max_int }
