(** The alias hardware (paper §3.5).

    A small set of slots, each protecting a physical byte range.  The
    translator explicitly arms a slot from a reordered load and marks
    the stores it was hoisted above with a check mask; the hardware
    compares every checked access against the armed ranges and faults on
    overlap.  Much simpler than a memory conflict buffer or the IA-64
    ALAT: the translator, not the hardware, decides what to track —
    exactly the paper's point. *)

type t = {
  slots : (int * int) option array;  (** [lo, hi) per armed slot *)
  mutable any_armed : bool;
      (** at least one slot armed since the last clear; [clear] runs at
          every commit/rollback boundary (once per interpreted
          instruction), so the nothing-armed case must be a no-op *)
  mutable violations : int;
  mutable checks : int;
  mutable arms : int;
}

let create ?(slots = 8) () =
  {
    slots = Array.make slots None;
    any_armed = false;
    violations = 0;
    checks = 0;
    arms = 0;
  }

let num_slots t = Array.length t.slots

let arm t ~slot ~paddr ~len =
  t.arms <- t.arms + 1;
  t.any_armed <- true;
  t.slots.(slot) <- Some (paddr, paddr + len)

(** Check a range against every slot in [mask]; returns the first
    overlapping slot. *)
let check t ~mask ~paddr ~len =
  t.checks <- t.checks + 1;
  let lo = paddr and hi = paddr + len in
  let n = Array.length t.slots in
  let rec go i =
    if i >= n then None
    else if mask land (1 lsl i) <> 0 then
      match t.slots.(i) with
      | Some (slo, shi) when lo < shi && slo < hi ->
          t.violations <- t.violations + 1;
          Some i
      | _ -> go (i + 1)
    else go (i + 1)
  in
  go 0

(** Disarm everything; done at commit and rollback boundaries (alias
    protection never outlives a translation window). *)
let clear t =
  if t.any_armed then begin
    Array.fill t.slots 0 (Array.length t.slots) None;
    t.any_armed <- false
  end
