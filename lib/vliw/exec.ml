(** The VLIW execution engine.

    Executes a {!Code.t} block against the shadowed register file, the
    gated store buffer, the alias hardware and the guest memory system.
    Semantics follow the hardware model:

    - atoms within a molecule execute in parallel (reads see
      pre-molecule state; register writes and store-buffer pushes land
      at molecule end);
    - a faulting atom aborts its molecule with a native exception and
      leaves all state to be rolled back by CMS;
    - loads observe buffered stores (store-to-load forwarding);
    - commits are free (the paper's design goal), rollbacks cost a
      couple of branch-misprediction-equivalents, charged by CMS.

    Two debug interlocks catch code-generator bugs that real hardware
    would turn into silent wrong answers: molecule issue-constraint
    checking and operation-latency enforcement (the TM5800 has almost no
    hardware interlocks — "CMS guarantees correct operation by careful
    scheduling"). *)

type t = {
  regs : Regfile.t;
  sbuf : Storebuf.t;
  alias : Alias.t;
  mem : Machine.Mem.t;
  perf : Perf.t;
  mutable validate : bool;  (** check molecule constraints while executing *)
  mutable enforce_latency : bool;
  ready : int array;  (** per-register ready time (debug interlock) *)
  mutable max_molecules_per_run : int;
  mutable eff_buf : effect_ array;
      (** reusable staging buffer for molecule effects; grows on demand
          so the hot loop never conses a per-molecule list *)
  mutable eff_len : int;
  commit_write : int -> int -> int -> unit;
      (** pre-applied {!Machine.Mem.commit_write}; [commit] runs once
          per interpreted instruction, so the drain closure is built
          once here instead of per call *)
}

and effect_ =
  (* Effects staged during a molecule, applied at molecule end. *)
  | Wreg of int * int
  | Push of { paddr : int; size : int; value : int }
  | Goto of int
  | Take_exit of int
  | Do_commit of int

let create ?(sbuf_capacity = 64) ?(alias_slots = 8) mem =
  {
    regs = Regfile.create ();
    sbuf = Storebuf.create ~capacity:sbuf_capacity ();
    alias = Alias.create ~slots:alias_slots ();
    mem;
    perf = Perf.create ();
    validate = false;
    enforce_latency = false;
    ready = Array.make Abi.num_regs 0;
    max_molecules_per_run = 50_000_000;
    eff_buf = Array.make 256 (Goto 0);
    eff_len = 0;
    commit_write = Machine.Mem.commit_write mem;
  }

(* Stage one effect, growing the buffer when full. *)
let push_eff t e =
  let cap = Array.length t.eff_buf in
  if t.eff_len = cap then begin
    let nb = Array.make (2 * cap) e in
    Array.blit t.eff_buf 0 nb 0 t.eff_len;
    t.eff_buf <- nb
  end;
  Array.unsafe_set t.eff_buf t.eff_len e;
  t.eff_len <- t.eff_len + 1

type outcome =
  | Exited of int  (** left through exit-table entry i *)
  | Faulted of Nexn.t
  | Interrupted  (** pending interrupt sampled between molecules *)
  | Runaway  (** exceeded the per-run molecule budget (internal guard) *)

exception Fault_ of Nexn.t

let fault n = raise (Fault_ n)

let mask32 v = v land 0xffffffff
let sext32 v = if v land 0x80000000 <> 0 then v - 0x100000000 else v

let rollback t =
  Regfile.rollback t.regs;
  Storebuf.rollback t.sbuf;
  Alias.clear t.alias;
  t.perf.Perf.rollbacks <- t.perf.Perf.rollbacks + 1

let commit t =
  Regfile.commit t.regs;
  (* drained stores go through {!Machine.Mem.commit_write} so the
     interpreter's decode cache sees translated code writes too *)
  Storebuf.commit t.sbuf ~mem_write:t.commit_write;
  Alias.clear t.alias;
  t.perf.Perf.commits <- t.perf.Perf.commits + 1

(* ------------------------------------------------------------------ *)
(* Memory access helpers                                               *)
(* ------------------------------------------------------------------ *)

let translate t access vaddr =
  match Machine.Mmu.translate t.mem.Machine.Mem.mmu access vaddr with
  | paddr -> paddr
  | exception X86.Exn.Fault f ->
      t.perf.Perf.x86_fault_atoms <- t.perf.Perf.x86_fault_atoms + 1;
      fault (Nexn.X86_fault f)

let read_mem t paddr size =
  Storebuf.read t.sbuf
    ~mem_read:(Machine.Bus.read t.mem.Machine.Mem.bus)
    ~paddr ~size

(* A load or store may cross a page boundary; physical ranges are then
   discontiguous, so process per byte in that (rare) case. *)
(* I/O space is off-limits to translated code entirely, spec bit or
   not: any access inside a translation is at risk of rollback (a later
   fault in the same region replays from the committed state), and a
   device read must not happen twice — so even an in-order MMIO access
   faults here and executes interpretively (§3.4).  Recurring faults
   make the adaptive machinery carve the instruction out as an
   interpreter exit.  (Found by differential fuzzing: an MMIO load
   followed by an SMC-faulting store in the same region read the device
   once in the interpreter, twice under the translator.) *)
let rec do_load t ~vaddr ~size ~spec ~protect =
  ignore (spec : bool);
  if size <= Machine.Mem.page_room vaddr then begin
    let paddr = translate t Machine.Mmu.Read vaddr in
    if Machine.Bus.is_mmio t.mem.Machine.Mem.bus paddr then begin
      t.perf.Perf.mmio_spec_faults <- t.perf.Perf.mmio_spec_faults + 1;
      fault (Nexn.Mmio_spec paddr)
    end;
    (match protect with
    | Some slot -> Alias.arm t.alias ~slot ~paddr ~len:size
    | None -> ());
    read_mem t paddr size
  end
  else begin
    let v = ref 0 in
    for i = 0 to size - 1 do
      v := !v lor (do_load t ~vaddr:(vaddr + i) ~size:1 ~spec ~protect lsl (8 * i))
    done;
    !v
  end

(* All faulting checks for one non-page-crossing store piece, at issue
   order; returns the physical address the piece will be pushed to.
   Shared with the closure compiler ({!Closure}) so the two execution
   engines cannot drift on fault semantics. *)
let store_checks t ~vaddr ~size ~spec ~check =
  let paddr = translate t Machine.Mmu.Write vaddr in
  if spec && Machine.Bus.is_mmio t.mem.Machine.Mem.bus paddr then begin
    t.perf.Perf.mmio_spec_faults <- t.perf.Perf.mmio_spec_faults + 1;
    fault (Nexn.Mmio_spec paddr)
  end;
  if check <> 0 then (
    match Alias.check t.alias ~mask:check ~paddr ~len:size with
    | Some slot ->
        t.perf.Perf.alias_faults <- t.perf.Perf.alias_faults + 1;
        if Sys.getenv_opt "CMS_DEBUG_FAULTS" <> None then
          Fmt.epr "[alias hw] store paddr=%#x len=%d mask=%#x hit slot %d range=%s@."
            paddr size check slot
            (match t.alias.Alias.slots.(slot) with
             | Some (lo, hi) -> Fmt.str "[%#x,%#x)" lo hi
             | None -> "-");
        fault (Nexn.Alias_violation slot)
    | None -> ());
  (match Machine.Mem.check_store t.mem ~paddr ~len:size with
  | Some hit ->
      t.perf.Perf.smc_faults <- t.perf.Perf.smc_faults + 1;
      fault (Nexn.Smc (hit, paddr))
  | None -> ());
  paddr

(* Stores only *stage* pushes (into the molecule effect buffer); the
   push itself happens at molecule end.  All faulting checks happen
   here, at issue. *)
let rec stage_store t ~vaddr ~size ~value ~spec ~check =
  if size <= Machine.Mem.page_room vaddr then begin
    let paddr = store_checks t ~vaddr ~size ~spec ~check in
    push_eff t (Push { paddr; size; value })
  end
  else
    for i = 0 to size - 1 do
      stage_store t
        ~vaddr:(vaddr + i)
        ~size:1
        ~value:((value lsr (8 * i)) land 0xff)
        ~spec ~check
    done

(* ------------------------------------------------------------------ *)
(* Atom evaluation                                                     *)
(* ------------------------------------------------------------------ *)

let host_alu op a b =
  match op with
  | Atom.HAdd -> mask32 (a + b)
  | HSub -> mask32 (a - b)
  | HAnd -> a land b
  | HOr -> a lor b
  | HXor -> a lxor b
  | HShl -> mask32 (a lsl (b land 31))
  | HShr -> a lsr (b land 31)
  | HSar -> mask32 (sext32 a asr (b land 31))
  | HMul -> mask32 (a * b)

let eval_xop op size fl a b =
  let open X86.Flags in
  match op with
  | Atom.XAdd -> add size fl a b
  | XAdc -> adc size fl a b
  | XSub -> sub size fl a b
  | XSbb -> sbb size fl a b
  | XAnd -> and_ size fl a b
  | XOr -> or_ size fl a b
  | XXor -> xor size fl a b
  | XShl -> shl size fl a b
  | XShr -> shr size fl a b
  | XSar -> sar size fl a b
  | XRol -> rol size fl a b
  | XRor -> ror size fl a b
  | XInc -> inc size fl a
  | XDec -> dec size fl a
  | XNeg -> neg size fl a
  | XNot -> (trunc size (lnot a), fl)
  | XTest -> (0, test size fl a b)
  | XCmp -> (0, cmp size fl a b)

let eval_cmp cmp a b =
  match cmp with
  | Atom.Ceq -> a = b
  | Cne -> a <> b
  | Cult -> a < b (* both masked unsigned *)
  | Cule -> a <= b
  | Cslt -> sext32 a < sext32 b
  | Csle -> sext32 a <= sext32 b

(* ------------------------------------------------------------------ *)
(* The main loop                                                       *)
(* ------------------------------------------------------------------ *)

let check_uses t idx atom =
  List.iter
    (fun r ->
      if t.ready.(r) > idx then
        failwith
          (Fmt.str "latency violation: r%d used at %d, ready at %d (%a)" r idx
             t.ready.(r) Atom.pp atom))
    (Atom.uses atom)

let note_defs t idx atom =
  let l = Atom.latency atom in
  List.iter (fun r -> t.ready.(r) <- idx + l) (Atom.defs atom)

(** Execute [code] until an exit, fault, interrupt or the molecule
    budget.  [irq_pending] is sampled between molecules, modeling
    asynchronous interrupt arrival (§3.3). *)
let run ?(irq_pending = fun () -> false) t (code : Code.t) =
  let get r = Regfile.get t.regs r in
  let src = function Atom.R r -> get r | Atom.I i -> mask32 i in
  if t.enforce_latency then Array.fill t.ready 0 Abi.num_regs 0;
  let budget = ref t.max_molecules_per_run in
  (* monotonic molecule time; the latency interlock must use time, not
     the molecule index, or loop back-edges look like violations *)
  let time = ref 0 in
  let rec step pc =
    if !budget <= 0 then Runaway
    else if irq_pending () then Interrupted
    else begin
      decr budget;
      incr time;
      let m = code.Code.molecules.(pc) in
      if t.validate then (
        match Molecule.check m with
        | Ok () -> ()
        | Error e -> failwith (Fmt.str "bad molecule %d: %s" pc e));
      t.perf.Perf.molecules <- t.perf.Perf.molecules + 1;
      t.perf.Perf.atoms <- t.perf.Perf.atoms + Array.length m;
      match exec_molecule !time m with
      | `Next -> step (pc + 1)
      | `Goto target -> step target
      | `Exit i -> Exited i
      | `Fault n -> Faulted n
    end
  and exec_molecule now m =
    (* Phase 1: evaluate all atoms against pre-molecule state, staging
       effects into the reusable buffer (program order). *)
    t.eff_len <- 0;
    match
      Array.iter
        (fun atom ->
          if t.enforce_latency then check_uses t now atom;
          match atom with
          | Atom.Nop -> t.perf.Perf.nops <- t.perf.Perf.nops + 1
          | MovI { rd; imm } -> push_eff t (Wreg (rd, mask32 imm))
          | MovR { rd; rs } -> push_eff t (Wreg (rd, get rs))
          | Alu { op; rd; a; b } ->
              push_eff t (Wreg (rd, host_alu op (get a) (src b)))
          | AluX { op; size; rd; a; b; fr; fw } ->
              let fl_in =
                if fr >= 0 && Atom.xop_reads_flags op b then get fr
                else X86.Flags.initial
              in
              let r, fl = eval_xop op size fl_in (src a) (src b) in
              (match rd with
              | Some rd -> push_eff t (Wreg (rd, r))
              | None -> ());
              (match op with
              | Atom.XNot -> ()
              | _ when fw < 0 -> ()
              | _ -> push_eff t (Wreg (fw, fl)))
          | MulX { signed; size; rd_lo; rd_hi; a = ma; b = mb; fr = _; fw } ->
              let a = ma and b = mb in
              let fl_in = X86.Flags.initial in
              let f = if signed then X86.Flags.imul else X86.Flags.mul in
              let lo, hi, fl = f size fl_in (src a) (src b) in
              push_eff t (Wreg (rd_lo, lo));
              if fw >= 0 then push_eff t (Wreg (fw, fl));
              (match rd_hi with
              | Some r -> push_eff t (Wreg (r, hi))
              | None -> ())
          | DivX { signed; size; rd_q; rd_r; hi; lo; divisor } -> (
              let f = if signed then X86.Flags.idiv else X86.Flags.div in
              match f size (get hi) (get lo) (src divisor) with
              | Some (q, r) ->
                  push_eff t (Wreg (rd_q, q));
                  push_eff t (Wreg (rd_r, r))
              | None ->
                  t.perf.Perf.x86_fault_atoms <-
                    t.perf.Perf.x86_fault_atoms + 1;
                  fault (Nexn.X86_fault X86.Exn.DE))
          | SetCond { rd; cond; fr } ->
              push_eff t
                (Wreg (rd, if X86.Flags.eval_cond cond (get fr) then 1 else 0))
          | ExtField { rd; rs; shift; width; sign } ->
              let v = (get rs lsr shift) land ((1 lsl width) - 1) in
              let v =
                if sign && v land (1 lsl (width - 1)) <> 0 then
                  mask32 (v - (1 lsl width))
                else v
              in
              push_eff t (Wreg (rd, v))
          | InsField { rd; rs; shift; width } ->
              let m = (1 lsl width) - 1 in
              let v =
                get rd land lnot (m lsl shift)
                lor ((get rs land m) lsl shift)
              in
              push_eff t (Wreg (rd, mask32 v))
          | Load { rd; base; disp; size; spec; protect; check = _ } ->
              t.perf.Perf.loads <- t.perf.Perf.loads + 1;
              let vaddr = mask32 (get base + disp) in
              push_eff t (Wreg (rd, do_load t ~vaddr ~size ~spec ~protect))
          | Store { rs; base; disp; size; spec; check } ->
              t.perf.Perf.stores <- t.perf.Perf.stores + 1;
              let vaddr = mask32 (get base + disp) in
              stage_store t ~vaddr ~size ~value:(src rs) ~spec ~check
          | ArmRange { slot; base; disp; len } ->
              (* arm immediately (phase 1): in-molecule atom order is
                 program order, so stores in the same molecule already
                 see the armed range *)
              let rec arm vaddr remaining =
                if remaining > 0 then begin
                  let seg = min remaining (Machine.Mem.page_room vaddr) in
                  let paddr = translate t Machine.Mmu.Read vaddr in
                  Alias.arm t.alias ~slot ~paddr ~len:seg;
                  arm (vaddr + seg) (remaining - seg)
                end
              in
              (* multi-page ranges would need one slot per page; the
                 code generator splits them, so assert single-page *)
              arm (mask32 (get base + disp)) len
          | Br { target } -> push_eff t (Goto target)
          | BrCond { cond; fr; target } ->
              if X86.Flags.eval_cond cond (get fr) then
                push_eff t (Goto target)
          | BrCmp { cmp; a; b; target } ->
              if eval_cmp cmp (get a) (src b) then push_eff t (Goto target)
          | Commit n -> push_eff t (Do_commit n)
          | Exit i -> push_eff t (Take_exit i))
        m
    with
    | exception Fault_ n -> `Fault n
    | () ->
        (* Phase 2: apply, in staging order. *)
        let control = ref `Next in
        for i = 0 to t.eff_len - 1 do
          match Array.unsafe_get t.eff_buf i with
          | Wreg (r, v) -> Regfile.set t.regs r v
          | Push { paddr; size; value } -> (
              match Storebuf.push t.sbuf ~paddr ~size ~value with
              | Ok () -> ()
              | Error `Overflow ->
                  t.perf.Perf.sbuf_overflows <-
                    t.perf.Perf.sbuf_overflows + 1;
                  control := `Fault Nexn.Sbuf_overflow)
          | Goto tgt -> control := `Goto tgt
          | Take_exit i ->
              t.perf.Perf.exits_taken <- t.perf.Perf.exits_taken + 1;
              control := `Exit i
          | Do_commit n ->
              t.perf.Perf.x86_committed <- t.perf.Perf.x86_committed + n;
              commit t
        done;
        if t.enforce_latency then Array.iter (note_defs t now) m;
        !control
  in
  step 0
