(** Closure-compiled molecule execution — the gear above {!Exec}.

    {!Exec.run} re-dispatches every atom through a [match] on every loop
    iteration and stages effects through a polymorphic buffer.  Here a
    scheduled {!Code.t} block is compiled {e once}, at translation-install
    time, into one OCaml closure per molecule: registers are pre-resolved
    to working-array indices, immediates and branch targets are baked
    into the closures, ALU/flag operations are pre-selected, and the
    compile-time-decidable predicates ([Atom.xop_reads_flags], operand
    shapes, field masks) are evaluated at compile time.  Steady-state
    execution is then a closure call per molecule with zero per-execution
    decode, [match], or effect-constructor allocation.

    Semantics are bit-identical to {!Exec.run} by construction:

    - phase 1 (evaluation) runs per atom in program order against
      pre-molecule state, performing all faulting checks (loads, store
      checks, divides, alias arming) and latching results in
      per-atom scratch cells; a fault raises {!Exec.Fault_} and no
      phase-2 effect of the molecule lands;
    - phase 2 (application) runs per atom in the same program order:
      register writes, store-buffer pushes (an overflow records the
      native fault but later control effects still override it, exactly
      like {!Exec}'s last-control-wins staging buffer), commits, and
      control transfers;
    - atoms that cannot fault and read no register defined by a sibling
      atom in the same molecule are {e fused}: their evaluation moves to
      their phase-2 slot, skipping the scratch round-trip.  The fusion
      condition makes this unobservable (their reads still see values no
      sibling write can change, and their writes land in the same
      phase-2 order);
    - all {!Perf} counters are maintained at the same points as
      {!Exec.run}, so the two engines are differential-testable against
      each other counter for counter.

    Debug interlocks (molecule validation, latency enforcement) are not
    compiled in; the engine only routes execution here when both are
    off. *)

type t = {
  code : Code.t;  (** the source block (identity / debug dumps) *)
  ex : Exec.t;  (** the execution state the closures are bound to *)
  mols : (unit -> int) array;  (** one compiled closure per molecule *)
}

(* Control encoding returned by a molecule closure:
   - [>= 0]: next molecule index (fallthrough or taken branch);
   - [-1 .. -nexits]: leave through exit-table entry [-r - 1];
   - [ctrl_sbuf]: gated-store-buffer overflow (native fault). *)
let ctrl_sbuf = min_int

(* Raised during compilation when a block uses a register index outside
   the working array; the engine falls back to {!Exec.run}, which
   bounds-checks at the same access. *)
exception Unsupported

(* Pre-selected x86-flavoured ALU operation (the [Exec.eval_xop]
   dispatch, resolved at compile time). *)
let xop_fn op size =
  let open X86.Flags in
  match op with
  | Atom.XAdd -> add size
  | XAdc -> adc size
  | XSub -> sub size
  | XSbb -> sbb size
  | XAnd -> and_ size
  | XOr -> or_ size
  | XXor -> xor size
  | XShl -> shl size
  | XShr -> shr size
  | XSar -> sar size
  | XRol -> rol size
  | XRor -> ror size
  | XInc -> fun fl a _ -> inc size fl a
  | XDec -> fun fl a _ -> dec size fl a
  | XNeg -> fun fl a _ -> neg size fl a
  | XNot -> fun fl a _ -> (trunc size (lnot a), fl)
  | XTest -> fun fl a b -> (0, test size fl a b)
  | XCmp -> fun fl a b -> (0, cmp size fl a b)

(* Pre-selected host ALU operation ([Exec.host_alu] resolved at
   compile time). *)
let alu_fn = function
  | Atom.HAdd -> fun a b -> Exec.mask32 (a + b)
  | HSub -> fun a b -> Exec.mask32 (a - b)
  | HAnd -> ( land )
  | HOr -> ( lor )
  | HXor -> ( lxor )
  | HShl -> fun a b -> Exec.mask32 (a lsl (b land 31))
  | HShr -> fun a b -> a lsr (b land 31)
  | HSar -> fun a b -> Exec.mask32 (Exec.sext32 a asr (b land 31))
  | HMul -> fun a b -> Exec.mask32 (a * b)

(* Pre-selected host compare ([Exec.eval_cmp] resolved at compile
   time). *)
let cmp_fn = function
  | Atom.Ceq -> fun a b -> a = b
  | Cne -> fun a b -> a <> b
  | Cult -> fun a b -> a < b (* both masked unsigned *)
  | Cule -> fun a b -> a <= b
  | Cslt -> fun a b -> Exec.sext32 a < Exec.sext32 b
  | Csle -> fun a b -> Exec.sext32 a <= Exec.sext32 b

(* Closure sequencing with specialized arities: a 4-atom molecule
   compiles to at most 8 stage closures; chain them without the
   per-stage [Array.iter] callback overhead. *)
let seq (fs : (unit -> unit) array) =
  match Array.length fs with
  | 0 -> fun () -> ()
  | 1 -> fs.(0)
  | 2 ->
      let f0 = fs.(0) and f1 = fs.(1) in
      fun () -> f0 (); f1 ()
  | 3 ->
      let f0 = fs.(0) and f1 = fs.(1) and f2 = fs.(2) in
      fun () -> f0 (); f1 (); f2 ()
  | 4 ->
      let f0 = fs.(0) and f1 = fs.(1) and f2 = fs.(2) and f3 = fs.(3) in
      fun () -> f0 (); f1 (); f2 (); f3 ()
  | 5 ->
      let f0 = fs.(0) and f1 = fs.(1) and f2 = fs.(2) and f3 = fs.(3)
      and f4 = fs.(4) in
      fun () -> f0 (); f1 (); f2 (); f3 (); f4 ()
  | 6 ->
      let f0 = fs.(0) and f1 = fs.(1) and f2 = fs.(2) and f3 = fs.(3)
      and f4 = fs.(4) and f5 = fs.(5) in
      fun () -> f0 (); f1 (); f2 (); f3 (); f4 (); f5 ()
  | 7 ->
      let f0 = fs.(0) and f1 = fs.(1) and f2 = fs.(2) and f3 = fs.(3)
      and f4 = fs.(4) and f5 = fs.(5) and f6 = fs.(6) in
      fun () -> f0 (); f1 (); f2 (); f3 (); f4 (); f5 (); f6 ()
  | 8 ->
      let f0 = fs.(0) and f1 = fs.(1) and f2 = fs.(2) and f3 = fs.(3)
      and f4 = fs.(4) and f5 = fs.(5) and f6 = fs.(6) and f7 = fs.(7) in
      fun () -> f0 (); f1 (); f2 (); f3 (); f4 (); f5 (); f6 (); f7 ()
  | _ -> fun () -> Array.iter (fun f -> f ()) fs

(* Fusion candidates: atoms whose phase-1 evaluation cannot fault and
   has no phase-1-ordered side effect (alias arming, perf counting on
   the abort path).  Whether one actually fuses also depends on its
   read set — see [compile_molecule]. *)
let fusable = function
  | Atom.MovI _ | MovR _ | Alu _ | AluX _ | MulX _ | SetCond _
  | ExtField _ | InsField _ | Br _ | BrCond _ | BrCmp _ | Exit _
  | Commit _ ->
      true
  | Nop | Load _ | Store _ | DivX _ | ArmRange _ -> false

type ctrl_cell = { mutable ctrl : int }

let compile_exn (ex : Exec.t) (code : Code.t) : t =
  let w = ex.Exec.regs.Regfile.working in
  let nregs = Array.length w in
  let perf = ex.Exec.perf in
  let sbuf = ex.Exec.sbuf in
  let cc = { ctrl = 0 } in
  let reg r =
    if r < 0 || r >= nregs then raise Unsupported;
    r
  in
  let src = function
    | Atom.R r ->
        let r = reg r in
        fun () -> Array.unsafe_get w r
    | Atom.I i ->
        let v = Exec.mask32 i in
        fun () -> v
  in
  (* Compile one atom to optional phase-1 (eval) and phase-2 (apply)
     stages.  With [fused], the whole atom runs at its phase-2 slot. *)
  let compile_atom ~fused (a : Atom.t) :
      (unit -> unit) option * (unit -> unit) option =
    match a with
    | Atom.Nop ->
        (Some (fun () -> perf.Perf.nops <- perf.Perf.nops + 1), None)
    | MovI { rd; imm } ->
        let rd = reg rd in
        let v = Exec.mask32 imm in
        (None, Some (fun () -> Array.unsafe_set w rd v))
    | MovR { rd; rs } ->
        let rd = reg rd and rs = reg rs in
        if fused then
          (None, Some (fun () -> Array.unsafe_set w rd (Array.unsafe_get w rs)))
        else
          let c = ref 0 in
          ( Some (fun () -> c := Array.unsafe_get w rs),
            Some (fun () -> Array.unsafe_set w rd !c) )
    | Alu { op; rd; a; b } ->
        let rd = reg rd and ra = reg a in
        let fb = src b in
        let f = alu_fn op in
        if fused then
          ( None,
            Some
              (fun () ->
                Array.unsafe_set w rd (f (Array.unsafe_get w ra) (fb ()))) )
        else
          let c = ref 0 in
          ( Some (fun () -> c := f (Array.unsafe_get w ra) (fb ())),
            Some (fun () -> Array.unsafe_set w rd !c) )
    | AluX { op; size; rd; a; b; fr; fw } ->
        let fa = src a and fb = src b in
        let xf = xop_fn op size in
        let reads_fl = fr >= 0 && Atom.xop_reads_flags op b in
        let frr = if reads_fl then reg fr else 0 in
        let writes_fl =
          match op with Atom.XNot -> false | _ -> fw >= 0
        in
        let fwr = if writes_fl then reg fw else 0 in
        let has_rd = rd <> None in
        let rdr = match rd with Some r -> reg r | None -> 0 in
        let run_apply r fl =
          if has_rd then Array.unsafe_set w rdr r;
          if writes_fl then Array.unsafe_set w fwr fl
        in
        if fused then
          ( None,
            Some
              (fun () ->
                let fl_in =
                  if reads_fl then Array.unsafe_get w frr
                  else X86.Flags.initial
                in
                let r, fl = xf fl_in (fa ()) (fb ()) in
                run_apply r fl) )
        else
          let cr = ref 0 and cf = ref 0 in
          ( Some
              (fun () ->
                let fl_in =
                  if reads_fl then Array.unsafe_get w frr
                  else X86.Flags.initial
                in
                let r, fl = xf fl_in (fa ()) (fb ()) in
                cr := r;
                cf := fl),
            Some (fun () -> run_apply !cr !cf) )
    | MulX { signed; size; rd_lo; rd_hi; a; b; fr = _; fw } ->
        let fa = src a and fb = src b in
        let f = if signed then X86.Flags.imul size else X86.Flags.mul size in
        let rlo = reg rd_lo in
        let writes_fl = fw >= 0 in
        let fwr = if writes_fl then reg fw else 0 in
        let has_hi = rd_hi <> None in
        let rhi = match rd_hi with Some r -> reg r | None -> 0 in
        (* staging order in {!Exec}: lo, flags, hi *)
        let run_apply lo hi fl =
          Array.unsafe_set w rlo lo;
          if writes_fl then Array.unsafe_set w fwr fl;
          if has_hi then Array.unsafe_set w rhi hi
        in
        if fused then
          ( None,
            Some
              (fun () ->
                let lo, hi, fl = f X86.Flags.initial (fa ()) (fb ()) in
                run_apply lo hi fl) )
        else
          let clo = ref 0 and chi = ref 0 and cf = ref 0 in
          ( Some
              (fun () ->
                let lo, hi, fl = f X86.Flags.initial (fa ()) (fb ()) in
                clo := lo;
                chi := hi;
                cf := fl),
            Some (fun () -> run_apply !clo !chi !cf) )
    | DivX { signed; size; rd_q; rd_r; hi; lo; divisor } ->
        let f = if signed then X86.Flags.idiv size else X86.Flags.div size in
        let rhi = reg hi and rlo = reg lo in
        let fd = src divisor in
        let rq = reg rd_q and rr = reg rd_r in
        let cq = ref 0 and cr = ref 0 in
        ( Some
            (fun () ->
              match
                f (Array.unsafe_get w rhi) (Array.unsafe_get w rlo) (fd ())
              with
              | Some (q, r) ->
                  cq := q;
                  cr := r
              | None ->
                  perf.Perf.x86_fault_atoms <- perf.Perf.x86_fault_atoms + 1;
                  Exec.fault (Nexn.X86_fault X86.Exn.DE)),
          Some
            (fun () ->
              Array.unsafe_set w rq !cq;
              Array.unsafe_set w rr !cr) )
    | SetCond { rd; cond; fr } ->
        let rd = reg rd and fr = reg fr in
        if fused then
          ( None,
            Some
              (fun () ->
                Array.unsafe_set w rd
                  (if X86.Flags.eval_cond cond (Array.unsafe_get w fr) then 1
                   else 0)) )
        else
          let c = ref 0 in
          ( Some
              (fun () ->
                c :=
                  if X86.Flags.eval_cond cond (Array.unsafe_get w fr) then 1
                  else 0),
            Some (fun () -> Array.unsafe_set w rd !c) )
    | ExtField { rd; rs; shift; width; sign } ->
        let rd = reg rd and rs = reg rs in
        let m = (1 lsl width) - 1 in
        let sbit = 1 lsl (width - 1) in
        let wrap = 1 lsl width in
        let extract v =
          let v = (v lsr shift) land m in
          if sign && v land sbit <> 0 then Exec.mask32 (v - wrap) else v
        in
        if fused then
          ( None,
            Some
              (fun () ->
                Array.unsafe_set w rd (extract (Array.unsafe_get w rs))) )
        else
          let c = ref 0 in
          ( Some (fun () -> c := extract (Array.unsafe_get w rs)),
            Some (fun () -> Array.unsafe_set w rd !c) )
    | InsField { rd; rs; shift; width } ->
        let rd = reg rd and rs = reg rs in
        let m = (1 lsl width) - 1 in
        let hole = lnot (m lsl shift) in
        let insert dst sv =
          Exec.mask32 (dst land hole lor ((sv land m) lsl shift))
        in
        if fused then
          ( None,
            Some
              (fun () ->
                Array.unsafe_set w rd
                  (insert (Array.unsafe_get w rd) (Array.unsafe_get w rs))) )
        else
          let c = ref 0 in
          ( Some
              (fun () ->
                c := insert (Array.unsafe_get w rd) (Array.unsafe_get w rs)),
            Some (fun () -> Array.unsafe_set w rd !c) )
    | Load { rd; base; disp; size; spec; protect; check = _ } ->
        let rd = reg rd and rb = reg base in
        let c = ref 0 in
        ( Some
            (fun () ->
              perf.Perf.loads <- perf.Perf.loads + 1;
              let vaddr = Exec.mask32 (Array.unsafe_get w rb + disp) in
              c := Exec.do_load ex ~vaddr ~size ~spec ~protect),
          Some (fun () -> Array.unsafe_set w rd !c) )
    | Store { rs; base; disp; size; spec; check } ->
        let rb = reg base in
        let fv = src rs in
        (* page-crossing stores split bytewise: at most [size] (≤ 4)
           staged pieces *)
        let sp = Array.make 4 0
        and ss = Array.make 4 0
        and sv = Array.make 4 0 in
        let scount = ref 0 in
        let rec stage ~vaddr ~size ~value =
          if size <= Machine.Mem.page_room vaddr then begin
            let paddr = Exec.store_checks ex ~vaddr ~size ~spec ~check in
            let i = !scount in
            Array.unsafe_set sp i paddr;
            Array.unsafe_set ss i size;
            Array.unsafe_set sv i value;
            scount := i + 1
          end
          else
            for i = 0 to size - 1 do
              stage ~vaddr:(vaddr + i) ~size:1
                ~value:((value lsr (8 * i)) land 0xff)
            done
        in
        ( Some
            (fun () ->
              perf.Perf.stores <- perf.Perf.stores + 1;
              let vaddr = Exec.mask32 (Array.unsafe_get w rb + disp) in
              scount := 0;
              stage ~vaddr ~size ~value:(fv ())),
          Some
            (fun () ->
              for i = 0 to !scount - 1 do
                match
                  Storebuf.push sbuf ~paddr:(Array.unsafe_get sp i)
                    ~size:(Array.unsafe_get ss i)
                    ~value:(Array.unsafe_get sv i)
                with
                | Ok () -> ()
                | Error `Overflow ->
                    perf.Perf.sbuf_overflows <- perf.Perf.sbuf_overflows + 1;
                    cc.ctrl <- ctrl_sbuf
              done) )
    | ArmRange { slot; base; disp; len } ->
        let rb = reg base in
        let alias = ex.Exec.alias in
        let rec arm vaddr remaining =
          if remaining > 0 then begin
            let seg = min remaining (Machine.Mem.page_room vaddr) in
            let paddr = Exec.translate ex Machine.Mmu.Read vaddr in
            Alias.arm alias ~slot ~paddr ~len:seg;
            arm (vaddr + seg) (remaining - seg)
          end
        in
        ( Some
            (fun () -> arm (Exec.mask32 (Array.unsafe_get w rb + disp)) len),
          None )
    | Br { target } -> (None, Some (fun () -> cc.ctrl <- target))
    | BrCond { cond; fr; target } ->
        let fr = reg fr in
        if fused then
          ( None,
            Some
              (fun () ->
                if X86.Flags.eval_cond cond (Array.unsafe_get w fr) then
                  cc.ctrl <- target) )
        else
          let taken = ref false in
          ( Some
              (fun () ->
                taken := X86.Flags.eval_cond cond (Array.unsafe_get w fr)),
            Some (fun () -> if !taken then cc.ctrl <- target) )
    | BrCmp { cmp; a; b; target } ->
        let ra = reg a in
        let fb = src b in
        let f = cmp_fn cmp in
        if fused then
          ( None,
            Some
              (fun () ->
                if f (Array.unsafe_get w ra) (fb ()) then cc.ctrl <- target)
          )
        else
          let taken = ref false in
          ( Some (fun () -> taken := f (Array.unsafe_get w ra) (fb ())),
            Some (fun () -> if !taken then cc.ctrl <- target) )
    | Commit n ->
        ( None,
          Some
            (fun () ->
              perf.Perf.x86_committed <- perf.Perf.x86_committed + n;
              Exec.commit ex) )
    | Exit i ->
        let r = -i - 1 in
        ( None,
          Some
            (fun () ->
              perf.Perf.exits_taken <- perf.Perf.exits_taken + 1;
              cc.ctrl <- r) )
  in
  let compile_molecule pc (m : Molecule.t) =
    let n = Array.length m in
    (* An atom fuses when nothing it reads is defined by a sibling atom
       of the same molecule: deferred to its phase-2 slot, its reads
       still see pre-molecule values. *)
    let fuse i a =
      fusable a
      &&
      let reads = Atom.uses a in
      let clash = ref false in
      Array.iteri
        (fun j b ->
          if j <> i && not !clash then
            let dfs = Atom.defs b in
            if List.exists (fun r -> List.mem r dfs) reads then clash := true)
        m;
      not !clash
    in
    let evals = ref [] and applies = ref [] in
    Array.iteri
      (fun i a ->
        let e, ap = compile_atom ~fused:(fuse i a) a in
        (match e with Some f -> evals := f :: !evals | None -> ());
        match ap with Some f -> applies := f :: !applies | None -> ())
      m;
    let body =
      seq (Array.of_list (List.rev_append !evals (List.rev !applies)))
    in
    let next = pc + 1 in
    fun () ->
      perf.Perf.molecules <- perf.Perf.molecules + 1;
      perf.Perf.atoms <- perf.Perf.atoms + n;
      cc.ctrl <- next;
      body ();
      cc.ctrl
  in
  { code; ex; mols = Array.mapi compile_molecule code.Code.molecules }

(** Compile [code] against [ex]'s state; [None] when the block is not
    closure-compilable (a register index outside the working array —
    the engine then falls back to {!Exec.run}, which fails the same
    access with a bounds check). *)
let compile ex code =
  match compile_exn ex code with
  | t -> Some t
  | exception Unsupported -> None

(** Execute until an exit, fault, interrupt or the molecule budget —
    the closure-compiled equivalent of {!Exec.run}, with identical
    outcome semantics and counter updates.  [irq_pending] is sampled
    between molecules, like {!Exec.run}. *)
let run ?(irq_pending = fun () -> false) (t : t) =
  let mols = t.mols in
  let budget = ref t.ex.Exec.max_molecules_per_run in
  let rec step pc =
    if !budget <= 0 then Exec.Runaway
    else if irq_pending () then Exec.Interrupted
    else begin
      decr budget;
      match mols.(pc) () with
      | r ->
          if r >= 0 then step r
          else if r <> ctrl_sbuf then Exec.Exited (-r - 1)
          else Exec.Faulted Nexn.Sbuf_overflow
      | exception Exec.Fault_ n -> Exec.Faulted n
    end
  in
  step 0
