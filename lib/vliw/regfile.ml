(** The shadowed register file (paper §3.1).

    Registers holding x86 state exist in two copies: a working copy that
    normal atoms update, and a shadow copy that only changes on commit.
    Rollback copies shadow back to working, undoing everything since the
    last commit.  Registers at or above [Abi.shadow_count] are plain
    temporaries. *)

type t = {
  working : int array;
  shadow : int array;
  mutable commits : int;
  mutable rollbacks : int;
}

let create () =
  {
    working = Array.make Abi.num_regs 0;
    shadow = Array.make Abi.num_regs 0;
    commits = 0;
    rollbacks = 0;
  }

let get t r = t.working.(r)
let set t r v = t.working.(r) <- v land 0xffffffff

(** Committed (shadow) value — what the x86 state officially is. *)
let get_committed t r = t.shadow.(r)

(** Set both copies; used when CMS updates x86 state at a known-
    consistent boundary (e.g. the interpreter, or exception delivery). *)
let set_committed t r v =
  let v = v land 0xffffffff in
  t.working.(r) <- v;
  t.shadow.(r) <- v

(* Manual copy loops: commit runs once per interpreted instruction and
   per translated molecule with a Do_commit, so the [Array.blit] call
   overhead (bounds checks + C call) is measurable.  [shadow_count] is
   a dozen registers; an unrolled-by-the-compiler int loop beats the
   memmove call at this size. *)
let commit t =
  let w = t.working and s = t.shadow in
  for i = 0 to Abi.shadow_count - 1 do
    Array.unsafe_set s i (Array.unsafe_get w i)
  done;
  t.commits <- t.commits + 1

let rollback t =
  let w = t.working and s = t.shadow in
  for i = 0 to Abi.shadow_count - 1 do
    Array.unsafe_set w i (Array.unsafe_get s i)
  done;
  t.rollbacks <- t.rollbacks + 1

(** Is the working x86 state identical to the committed state? *)
let consistent t =
  let rec go i =
    i >= Abi.shadow_count || (t.working.(i) = t.shadow.(i) && go (i + 1))
  in
  go 0
