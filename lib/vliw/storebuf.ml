(** The gated store buffer (paper §3.1, patent [27]).

    Translated stores are held here and released to the memory system in
    program order only at commit; a rollback simply drops them.  Loads
    executed while stores are buffered must observe them, so the read
    path overlays buffered bytes on top of memory (store-to-load
    forwarding, byte-accurate for partial overlaps).

    The buffer is finite: overflow raises a native fault that makes CMS
    retranslate with shorter regions — a real constraint on translation
    size. *)

type entry = { paddr : int; size : int; value : int }

type t = {
  capacity : int;
  mutable entries : entry list;  (** newest first *)
  mutable count : int;
  mutable total_buffered : int;
  mutable total_committed : int;
  mutable total_dropped : int;
  mutable overflows : int;
}

let create ?(capacity = 64) () =
  {
    capacity;
    entries = [];
    count = 0;
    total_buffered = 0;
    total_committed = 0;
    total_dropped = 0;
    overflows = 0;
  }

let is_empty t = t.entries = []

(** Buffer a store; [Error `Overflow] if the buffer is full. *)
let push t ~paddr ~size ~value =
  if t.count >= t.capacity then begin
    t.overflows <- t.overflows + 1;
    Error `Overflow
  end
  else begin
    t.entries <- { paddr; size; value } :: t.entries;
    t.count <- t.count + 1;
    t.total_buffered <- t.total_buffered + 1;
    Ok ()
  end

(** Byte at [addr] as seen through the buffer, if any entry covers it. *)
let forwarded_byte t addr =
  let rec find = function
    | [] -> None
    | { paddr; size; value } :: rest ->
        if addr >= paddr && addr < paddr + size then
          Some ((value lsr (8 * (addr - paddr))) land 0xff)
        else find rest
  in
  find t.entries

(** Read [size] bytes at [paddr], taking each byte from the youngest
    covering buffered store, or from [mem_read] otherwise. *)
let read t ~mem_read ~paddr ~size =
  (* Only assemble bytewise when some byte really forwards from a
     buffered store: splitting a load that doesn't overlap the buffer
     would turn one bus access into [size] — visibly different on I/O
     space, where a device register must see a single full-width read
     (found by differential fuzzing: an MMIO load executing while an
     unrelated store sat in the buffer counted 4 device reads where the
     interpreter counted 1). *)
  let overlaps =
    t.entries <> []
    &&
    let rec any i =
      i < size
      && (forwarded_byte t (paddr + i) <> None || any (i + 1))
    in
    any 0
  in
  if not overlaps then mem_read paddr size
  else begin
    let v = ref 0 in
    for i = 0 to size - 1 do
      let byte =
        match forwarded_byte t (paddr + i) with
        | Some b -> b
        | None -> mem_read (paddr + i) 1
      in
      v := !v lor (byte lsl (8 * i))
    done;
    !v
  end

(** Release all buffered stores to memory in program (FIFO) order. *)
let commit t ~mem_write =
  if t.entries != [] then begin
    List.iter
      (fun { paddr; size; value } -> mem_write paddr size value)
      (List.rev t.entries);
    t.total_committed <- t.total_committed + t.count;
    t.entries <- [];
    t.count <- 0
  end

(** Drop everything (rollback). *)
let rollback t =
  t.total_dropped <- t.total_dropped + t.count;
  t.entries <- [];
  t.count <- 0
