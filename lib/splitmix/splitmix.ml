(** Deterministic splittable random-number generator (SplitMix64).

    Every random decision in the chaos layer and the fuzzer flows from
    one of these, created from a single printed seed — no global state,
    no [Random] module — so a whole campaign replays bit-identically
    from its seed, and [split] gives independent streams (one per test
    case) whose values do not depend on how much randomness earlier
    cases consumed.

    This is the single shared implementation; [Cms_robust.Srng] and
    [Cms_fuzz.Srng] are aliases of it. *)

type t = { mutable state : int64; gamma : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Gammas must be odd; weak ones (too few bit transitions) get fixed up
   as in the reference SplitMix implementation. *)
let mix_gamma z =
  let z = Int64.logor (mix64 z) 1L in
  let n =
    Int64.logxor z (Int64.shift_right_logical z 1)
    |> fun x ->
    let rec popcount acc x =
      if x = 0L then acc
      else popcount (acc + 1) (Int64.logand x (Int64.sub x 1L))
    in
    popcount 0 x
  in
  if n < 24 then Int64.logxor z 0xAAAAAAAAAAAAAAAAL else z

let create seed = { state = Int64.of_int seed; gamma = golden_gamma }

let next_int64 t =
  t.state <- Int64.add t.state t.gamma;
  mix64 t.state

(** An independent child stream.  Advances the parent, so successive
    splits are themselves independent. *)
let split t =
  let s = next_int64 t in
  let g = next_int64 t in
  { state = s; gamma = mix_gamma g }

(** Uniform in [0, bound); bound must be positive. *)
let int t bound =
  if bound <= 0 then invalid_arg "Srng.int";
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  v mod bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

(** Bernoulli: true with probability [num] in [den]. *)
let chance t num den = int t den < num

(** Uniform in [lo, hi] inclusive. *)
let range t lo hi = lo + int t (hi - lo + 1)

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Srng.choose";
  arr.(int t (Array.length arr))

let choose_list t l = List.nth l (int t (List.length l))

(** A full 32-bit value (for immediates). *)
let int32 t = Int64.to_int (Int64.logand (next_int64 t) 0xFFFFFFFFL)

(** Pick an index by integer weight from [(weight, 'a) array]. *)
let weighted t pairs =
  let total = Array.fold_left (fun a (w, _) -> a + w) 0 pairs in
  let k = int t total in
  let rec go i acc =
    let w, v = pairs.(i) in
    if k < acc + w then v else go (i + 1) (acc + w)
  in
  go 0 0
