(** Ahead-of-time translation images.

    A persistent container (kind ["AOTC"]) holding the output of the
    static discovery + pre-translation pass: per-entry scheduled native
    code, the policy and region shape it was minted under, the exact
    source bytes it translates, and an MD5 digest of every code page it
    depends on.  The digests key the image to the workload: installing
    against memory whose code pages differ raises {!Stale} with the
    precise pages at fault — a stale image is refused, never trusted.

    Install is copy-on-validate: each entry's recorded source bytes are
    re-read from the target machine and its instructions re-decoded;
    any divergence rejects that entry (counted in
    [Stats.aot_rejected]) and the dynamic tier covers it.  Installed
    entries live in the tcache as ordinary translations — SMC
    invalidation and eviction treat them exactly like dynamic ones.

    The guest instructions themselves are *not* serialized: they are
    re-decoded from the digest-validated source bytes at install, so the
    image format cannot smuggle in an instruction stream that disagrees
    with memory. *)

exception Stale of string
(** the image does not match the current machine (code-page digest or
    config mismatch); the diagnostic lists exactly what differs *)

let stale fmt = Format.kasprintf (fun s -> raise (Stale s)) fmt

let kind = "AOTC"

(* version 2: the embedded Config grew closure_exec/chain_exits.
   version 3: Config grew background_translation/bg_queue_capacity. *)
let version = 3

(* ------------------------------------------------------------------ *)
(* Image model                                                         *)
(* ------------------------------------------------------------------ *)

type meta = {
  label : string;  (** workload name the image was built for *)
  entry : int;
  leaders : int;  (** discovered region entry points *)
  insn_count : int;  (** distinct decoded instruction starts *)
  bytes_static : int;
  bytes_deferred : int;
  deferred : (int * string) list;  (** dynamic-only sites: addr, reason *)
  demoted_verify : int;  (** regions the verifier refused to ship *)
  demoted_select : int;  (** leaders with no translatable region *)
  blind_stores : int;
  truncated : bool;
}

(* The region shape, minus the instructions (re-decoded at install). *)
type insn_wire = {
  addr : int;
  len : int;
  follow : int;  (** 0 = FNext, 1 = FTarget, 2 = FEnd *)
  loops : bool;
  imm32_addr : int option;
}

type tran = {
  tentry : int;
  policy : Cms.Policy.t;
  cont : int option;
  src_ranges : (int * int) list;
  insns : insn_wire list;
  snapshot : Bytes.t;  (** source bytes at build time, in range order *)
  code : Vliw.Code.t;
}

type t = {
  meta : meta;
  cfg : Cms.Config.t;  (** full build config (compat-checked at install) *)
  pages : (int * string) list;  (** (ppn, MD5 of the page's bytes) *)
  trans : tran list;
}

(* ------------------------------------------------------------------ *)
(* Atom / code codec                                                   *)
(* ------------------------------------------------------------------ *)

module A = Vliw.Atom

let w_src b = function
  | A.R r ->
      Codec.w_int b 0;
      Codec.w_int b r
  | A.I i ->
      Codec.w_int b 1;
      Codec.w_int b i

let r_src r =
  match Codec.r_int r with
  | 0 -> A.R (Codec.r_int r)
  | 1 -> A.I (Codec.r_int r)
  | t -> Codec.corrupt "aot: bad src tag %d" t

let host_ops =
  [| A.HAdd; A.HSub; A.HAnd; A.HOr; A.HXor; A.HShl; A.HShr; A.HSar; A.HMul |]

let xops =
  [|
    A.XAdd; A.XAdc; A.XSub; A.XSbb; A.XAnd; A.XOr; A.XXor; A.XShl; A.XShr;
    A.XSar; A.XRol; A.XRor; A.XInc; A.XDec; A.XNeg; A.XNot; A.XTest; A.XCmp;
  |]

let cmps = [| A.Ceq; A.Cne; A.Cult; A.Cule; A.Cslt; A.Csle |]

let index_of what a arr =
  let rec go i =
    if i >= Array.length arr then
      invalid_arg (Printf.sprintf "Aot: unknown %s" what)
    else if arr.(i) = a then i
    else go (i + 1)
  in
  go 0

let of_index what r arr =
  let i = Codec.r_int r in
  if i < 0 || i >= Array.length arr then Codec.corrupt "aot: bad %s tag %d" what i
  else arr.(i)

let w_size b (s : X86.Flags.size) =
  Codec.w_bool b (match s with X86.Flags.S32 -> true | S8 -> false)

let r_size r : X86.Flags.size =
  if Codec.r_bool r then X86.Flags.S32 else X86.Flags.S8

let w_cond b c = Codec.w_int b (X86.Cond.to_code c)

let r_cond r =
  let c = Codec.r_int r in
  if c < 0 || c > 0xf then Codec.corrupt "aot: bad condition code %d" c
  else X86.Cond.of_code c

let w_atom b (a : A.t) =
  let tag n = Codec.w_int b n in
  match a with
  | A.Nop -> tag 0
  | A.MovI { rd; imm } ->
      tag 1;
      Codec.w_int b rd;
      Codec.w_int b imm
  | A.MovR { rd; rs } ->
      tag 2;
      Codec.w_int b rd;
      Codec.w_int b rs
  | A.Alu { op; rd; a; b = src } ->
      tag 3;
      Codec.w_int b (index_of "host op" op host_ops);
      Codec.w_int b rd;
      Codec.w_int b a;
      w_src b src
  | A.AluX { op; size; rd; a; b = src; fr; fw } ->
      tag 4;
      Codec.w_int b (index_of "xop" op xops);
      w_size b size;
      Codec.w_opt b Codec.w_int rd;
      w_src b a;
      w_src b src;
      Codec.w_int b fr;
      Codec.w_int b fw
  | A.MulX { signed; size; rd_lo; rd_hi; a; b = src; fr; fw } ->
      tag 5;
      Codec.w_bool b signed;
      w_size b size;
      Codec.w_int b rd_lo;
      Codec.w_opt b Codec.w_int rd_hi;
      w_src b a;
      w_src b src;
      Codec.w_int b fr;
      Codec.w_int b fw
  | A.DivX { signed; size; rd_q; rd_r; hi; lo; divisor } ->
      tag 6;
      Codec.w_bool b signed;
      w_size b size;
      Codec.w_int b rd_q;
      Codec.w_int b rd_r;
      Codec.w_int b hi;
      Codec.w_int b lo;
      w_src b divisor
  | A.SetCond { rd; cond; fr } ->
      tag 7;
      Codec.w_int b rd;
      w_cond b cond;
      Codec.w_int b fr
  | A.ExtField { rd; rs; shift; width; sign } ->
      tag 8;
      Codec.w_int b rd;
      Codec.w_int b rs;
      Codec.w_int b shift;
      Codec.w_int b width;
      Codec.w_bool b sign
  | A.InsField { rd; rs; shift; width } ->
      tag 9;
      Codec.w_int b rd;
      Codec.w_int b rs;
      Codec.w_int b shift;
      Codec.w_int b width
  | A.Load { rd; base; disp; size; spec; protect; check } ->
      tag 10;
      Codec.w_int b rd;
      Codec.w_int b base;
      Codec.w_int b disp;
      Codec.w_int b size;
      Codec.w_bool b spec;
      Codec.w_opt b Codec.w_int protect;
      Codec.w_int b check
  | A.Store { rs; base; disp; size; spec; check } ->
      tag 11;
      w_src b rs;
      Codec.w_int b base;
      Codec.w_int b disp;
      Codec.w_int b size;
      Codec.w_bool b spec;
      Codec.w_int b check
  | A.Br { target } ->
      tag 12;
      Codec.w_int b target
  | A.BrCond { cond; fr; target } ->
      tag 13;
      w_cond b cond;
      Codec.w_int b fr;
      Codec.w_int b target
  | A.BrCmp { cmp; a; b = src; target } ->
      tag 14;
      Codec.w_int b (index_of "cmp" cmp cmps);
      Codec.w_int b a;
      w_src b src;
      Codec.w_int b target
  | A.ArmRange { slot; base; disp; len } ->
      tag 15;
      Codec.w_int b slot;
      Codec.w_int b base;
      Codec.w_int b disp;
      Codec.w_int b len
  | A.Commit n ->
      tag 16;
      Codec.w_int b n
  | A.Exit i ->
      tag 17;
      Codec.w_int b i

let r_atom r : A.t =
  match Codec.r_int r with
  | 0 -> A.Nop
  | 1 ->
      let rd = Codec.r_int r in
      let imm = Codec.r_int r in
      A.MovI { rd; imm }
  | 2 ->
      let rd = Codec.r_int r in
      let rs = Codec.r_int r in
      A.MovR { rd; rs }
  | 3 ->
      let op = of_index "host op" r host_ops in
      let rd = Codec.r_int r in
      let a = Codec.r_int r in
      let b = r_src r in
      A.Alu { op; rd; a; b }
  | 4 ->
      let op = of_index "xop" r xops in
      let size = r_size r in
      let rd = Codec.r_opt r Codec.r_int in
      let a = r_src r in
      let b = r_src r in
      let fr = Codec.r_int r in
      let fw = Codec.r_int r in
      A.AluX { op; size; rd; a; b; fr; fw }
  | 5 ->
      let signed = Codec.r_bool r in
      let size = r_size r in
      let rd_lo = Codec.r_int r in
      let rd_hi = Codec.r_opt r Codec.r_int in
      let a = r_src r in
      let b = r_src r in
      let fr = Codec.r_int r in
      let fw = Codec.r_int r in
      A.MulX { signed; size; rd_lo; rd_hi; a; b; fr; fw }
  | 6 ->
      let signed = Codec.r_bool r in
      let size = r_size r in
      let rd_q = Codec.r_int r in
      let rd_r = Codec.r_int r in
      let hi = Codec.r_int r in
      let lo = Codec.r_int r in
      let divisor = r_src r in
      A.DivX { signed; size; rd_q; rd_r; hi; lo; divisor }
  | 7 ->
      let rd = Codec.r_int r in
      let cond = r_cond r in
      let fr = Codec.r_int r in
      A.SetCond { rd; cond; fr }
  | 8 ->
      let rd = Codec.r_int r in
      let rs = Codec.r_int r in
      let shift = Codec.r_int r in
      let width = Codec.r_int r in
      let sign = Codec.r_bool r in
      A.ExtField { rd; rs; shift; width; sign }
  | 9 ->
      let rd = Codec.r_int r in
      let rs = Codec.r_int r in
      let shift = Codec.r_int r in
      let width = Codec.r_int r in
      A.InsField { rd; rs; shift; width }
  | 10 ->
      let rd = Codec.r_int r in
      let base = Codec.r_int r in
      let disp = Codec.r_int r in
      let size = Codec.r_int r in
      let spec = Codec.r_bool r in
      let protect = Codec.r_opt r Codec.r_int in
      let check = Codec.r_int r in
      A.Load { rd; base; disp; size; spec; protect; check }
  | 11 ->
      let rs = r_src r in
      let base = Codec.r_int r in
      let disp = Codec.r_int r in
      let size = Codec.r_int r in
      let spec = Codec.r_bool r in
      let check = Codec.r_int r in
      A.Store { rs; base; disp; size; spec; check }
  | 12 -> A.Br { target = Codec.r_int r }
  | 13 ->
      let cond = r_cond r in
      let fr = Codec.r_int r in
      let target = Codec.r_int r in
      A.BrCond { cond; fr; target }
  | 14 ->
      let cmp = of_index "cmp" r cmps in
      let a = Codec.r_int r in
      let b = r_src r in
      let target = Codec.r_int r in
      A.BrCmp { cmp; a; b; target }
  | 15 ->
      let slot = Codec.r_int r in
      let base = Codec.r_int r in
      let disp = Codec.r_int r in
      let len = Codec.r_int r in
      A.ArmRange { slot; base; disp; len }
  | 16 -> A.Commit (Codec.r_int r)
  | 17 -> A.Exit (Codec.r_int r)
  | t -> Codec.corrupt "aot: unknown atom tag %d" t

let w_exit b (e : Vliw.Code.exit) =
  (match e.Vliw.Code.target with
  | Vliw.Code.Const c ->
      Codec.w_int b 0;
      Codec.w_int b c
  | Vliw.Code.FromReg r ->
      Codec.w_int b 1;
      Codec.w_int b r);
  Codec.w_int b
    (match e.Vliw.Code.kind with
    | Vliw.Code.Enext -> 0
    | Vliw.Code.Einterp_one -> 1
    | Vliw.Code.Eselfcheck_fail -> 2);
  Codec.w_int b e.Vliw.Code.x86_retired;
  (* chaining state is engine-local: normalize to the unchained /
     never-chain distinction so image bytes are deterministic *)
  Codec.w_bool b (e.Vliw.Code.chain = Vliw.Code.NoChain)

let r_exit r : Vliw.Code.exit =
  let target =
    match Codec.r_int r with
    | 0 -> Vliw.Code.Const (Codec.r_int r)
    | 1 -> Vliw.Code.FromReg (Codec.r_int r)
    | t -> Codec.corrupt "aot: bad exit target tag %d" t
  in
  let kind =
    match Codec.r_int r with
    | 0 -> Vliw.Code.Enext
    | 1 -> Vliw.Code.Einterp_one
    | 2 -> Vliw.Code.Eselfcheck_fail
    | t -> Codec.corrupt "aot: bad exit kind tag %d" t
  in
  let x86_retired = Codec.r_int r in
  let nochain = Codec.r_bool r in
  {
    Vliw.Code.target;
    kind;
    x86_retired;
    chain = (if nochain then Vliw.Code.NoChain else Vliw.Code.Unchained);
  }

let w_molecule b (m : Vliw.Molecule.t) =
  Codec.w_int b (Array.length m);
  Array.iter (w_atom b) m

let r_molecule r : Vliw.Molecule.t =
  let n = Codec.r_int r in
  if n < 0 || n > 64 then Codec.corrupt "aot: implausible molecule width %d" n
  else Array.init n (fun _ -> r_atom r)

let w_code b (c : Vliw.Code.t) =
  Codec.w_int b (Array.length c.Vliw.Code.molecules);
  Array.iter (w_molecule b) c.Vliw.Code.molecules;
  Codec.w_int b (Array.length c.Vliw.Code.exits);
  Array.iter (w_exit b) c.Vliw.Code.exits

let r_code r : Vliw.Code.t =
  let nm = Codec.r_int r in
  if nm < 0 || nm > 1_000_000 then
    Codec.corrupt "aot: implausible molecule count %d" nm;
  let molecules = Array.init nm (fun _ -> r_molecule r) in
  let nx = Codec.r_int r in
  if nx < 0 || nx > 1_000_000 then
    Codec.corrupt "aot: implausible exit count %d" nx;
  let exits = Array.init nx (fun _ -> r_exit r) in
  { Vliw.Code.molecules; exits }

(* ------------------------------------------------------------------ *)
(* Section codecs                                                      *)
(* ------------------------------------------------------------------ *)

let w_meta b (m : meta) =
  Codec.w_string b m.label;
  Codec.w_int b m.entry;
  Codec.w_int b m.leaders;
  Codec.w_int b m.insn_count;
  Codec.w_int b m.bytes_static;
  Codec.w_int b m.bytes_deferred;
  Codec.w_list b
    (fun b (a, why) ->
      Codec.w_int b a;
      Codec.w_string b why)
    m.deferred;
  Codec.w_int b m.demoted_verify;
  Codec.w_int b m.demoted_select;
  Codec.w_int b m.blind_stores;
  Codec.w_bool b m.truncated

let r_meta r : meta =
  let label = Codec.r_string r in
  let entry = Codec.r_int r in
  let leaders = Codec.r_int r in
  let insn_count = Codec.r_int r in
  let bytes_static = Codec.r_int r in
  let bytes_deferred = Codec.r_int r in
  let deferred =
    Codec.r_list r (fun r ->
        let a = Codec.r_int r in
        let why = Codec.r_string r in
        (a, why))
  in
  let demoted_verify = Codec.r_int r in
  let demoted_select = Codec.r_int r in
  let blind_stores = Codec.r_int r in
  let truncated = Codec.r_bool r in
  {
    label;
    entry;
    leaders;
    insn_count;
    bytes_static;
    bytes_deferred;
    deferred;
    demoted_verify;
    demoted_select;
    blind_stores;
    truncated;
  }

let w_insn_wire b (i : insn_wire) =
  Codec.w_int b i.addr;
  Codec.w_int b i.len;
  Codec.w_int b i.follow;
  Codec.w_bool b i.loops;
  Codec.w_opt b Codec.w_int i.imm32_addr

let r_insn_wire r : insn_wire =
  let addr = Codec.r_int r in
  let len = Codec.r_int r in
  let follow = Codec.r_int r in
  if follow < 0 || follow > 2 then
    Codec.corrupt "aot: bad follow tag %d" follow;
  let loops = Codec.r_bool r in
  let imm32_addr = Codec.r_opt r Codec.r_int in
  { addr; len; follow; loops; imm32_addr }

let w_tran b (t : tran) =
  Codec.w_int b t.tentry;
  Stable.w_policy b t.policy;
  Codec.w_opt b Codec.w_int t.cont;
  Codec.w_list b
    (fun b (lo, hi) ->
      Codec.w_int b lo;
      Codec.w_int b hi)
    t.src_ranges;
  Codec.w_list b w_insn_wire t.insns;
  Codec.w_bytes b t.snapshot;
  w_code b t.code

let r_tran r : tran =
  let tentry = Codec.r_int r in
  let policy = Stable.r_policy r in
  let cont = Codec.r_opt r Codec.r_int in
  let src_ranges =
    Codec.r_list r (fun r ->
        let lo = Codec.r_int r in
        let hi = Codec.r_int r in
        (lo, hi))
  in
  let insns = Codec.r_list r r_insn_wire in
  let snapshot = Codec.r_bytes r in
  let code = r_code r in
  { tentry; policy; cont; src_ranges; insns; snapshot; code }

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)
(* ------------------------------------------------------------------ *)

let to_string (img : t) =
  let sec f =
    let b = Codec.writer () in
    f b;
    Codec.contents b
  in
  Codec.write_container ~kind ~version
    [
      ("META", sec (fun b -> w_meta b img.meta));
      ("CONF", sec (fun b -> Stable.w_config b img.cfg));
      ( "PAGE",
        sec (fun b ->
            Codec.w_list b
              (fun b (ppn, d) ->
                Codec.w_int b ppn;
                Codec.w_string b d)
              img.pages) );
      ("TRAN", sec (fun b -> Codec.w_list b w_tran img.trans));
    ]

let of_string data =
  let sections = Codec.read_container ~kind ~version data in
  let rd tag f =
    let r = Codec.reader ~ctx:("aot/" ^ tag) (Codec.section sections tag) in
    let v = f r in
    Codec.r_end r;
    v
  in
  let meta = rd "META" r_meta in
  let cfg = rd "CONF" Stable.r_config in
  let pages =
    rd "PAGE" (fun r ->
        Codec.r_list r (fun r ->
            let ppn = Codec.r_int r in
            let d = Codec.r_string r in
            if String.length d <> 16 then
              Codec.corrupt "aot: page %#x digest has %d bytes (want 16)" ppn
                (String.length d);
            (ppn, d)))
  in
  let trans = rd "TRAN" (fun r -> Codec.r_list r r_tran) in
  { meta; cfg; pages; trans }

let save path img = Codec.write_file path (to_string img)
let load path = of_string (Codec.read_file path)

(* ------------------------------------------------------------------ *)
(* Install (copy-on-validate)                                          *)
(* ------------------------------------------------------------------ *)

(* Config fields that change what code the translator emits; images are
   only compatible with an engine that agrees on all of them.  Runtime
   knobs (cost model, thresholds, capacities) are deliberately free. *)
let config_conflicts (a : Cms.Config.t) (b : Cms.Config.t) =
  let open Cms.Config in
  List.filter_map
    (fun (name, eq) -> if eq then None else Some name)
    [
      ("enable_reorder", a.enable_reorder = b.enable_reorder);
      ("enable_alias_hw", a.enable_alias_hw = b.enable_alias_hw);
      ("alias_slots", a.alias_slots = b.alias_slots);
      ("enable_self_check", a.enable_self_check = b.enable_self_check);
      ("enable_self_reval", a.enable_self_reval = b.enable_self_reval);
      ("enable_stylized", a.enable_stylized = b.enable_stylized);
      ("force_self_check", a.force_self_check = b.force_self_check);
      ("max_region_insns", a.max_region_insns = b.max_region_insns);
      ("unroll_limit", a.unroll_limit = b.unroll_limit);
    ]

let page_digest phys ppn =
  let base = ppn lsl Machine.Mmu.page_shift in
  let len =
    min Machine.Mmu.page_size (phys.Machine.Phys.size - base)
  in
  if len <= 0 then None
  else Some (Digest.bytes (Machine.Phys.read_bytes phys ~addr:base ~len))

type install_report = {
  installed : int;
  rejected : (int * string) list;  (** (entry, reason) per refused entry *)
}

(* Rebuild the region from the wire shape, re-decoding every
   instruction from the image's own (digest-validated) source bytes. *)
let region_of_tran (t : tran) : Cms.Region.t =
  let byte_at a =
    let rec go off = function
      | [] -> raise (X86.Exn.Fault X86.Exn.UD)
      | (lo, hi) :: rest ->
          if a >= lo && a < hi then Char.code (Bytes.get t.snapshot (off + (a - lo)))
          else go (off + (hi - lo)) rest
    in
    go 0 t.src_ranges
  in
  let insns =
    List.map
      (fun (w : insn_wire) ->
        let f = X86.Decode.decode ~fetch:byte_at w.addr in
        if f.X86.Decode.len <> w.len then
          Codec.corrupt
            "aot: entry %#x: instruction at %#x decodes to %d bytes, image \
             recorded %d"
            t.tentry w.addr f.X86.Decode.len w.len;
        let imm32 = Option.map (fun o -> w.addr + o) f.X86.Decode.imm32_off in
        if imm32 <> w.imm32_addr then
          Codec.corrupt "aot: entry %#x: imm32 field mismatch at %#x" t.tentry
            w.addr;
        {
          Cms.Region.addr = w.addr;
          insn = f.X86.Decode.insn;
          len = w.len;
          imm32_addr = imm32;
          follow =
            (match w.follow with
            | 0 -> Cms.Region.FNext
            | 1 -> Cms.Region.FTarget
            | _ -> Cms.Region.FEnd);
          loops = w.loops;
        })
      t.insns
  in
  {
    Cms.Region.entry = t.tentry;
    insns = Array.of_list insns;
    cont = t.cont;
    src_ranges = t.src_ranges;
  }

(** Validate [img] against [c] and populate the tcache.

    Raises {!Stale} when the image as a whole cannot be trusted (config
    conflict, or any code-page digest differs).  Per-entry defects
    (changed bytes, invalid code) reject only that entry; the report
    lists each with its reason.  Installed translations are counted in
    [Stats.aot_loaded], rejections in [Stats.aot_rejected]. *)
let install (c : Cms.t) (img : t) : install_report =
  (match config_conflicts img.cfg c.Cms.Engine.cfg with
  | [] -> ()
  | fields ->
      stale "AOT image built under a different translator config (%s differ)"
        (String.concat ", " fields));
  let phys = (Cms.mem c).Machine.Mem.phys in
  let bad =
    List.filter_map
      (fun (ppn, d) ->
        match page_digest phys ppn with
        | Some d' when d' = d -> None
        | Some _ -> Some (Fmt.str "page %#x: code bytes differ" ppn)
        | None -> Some (Fmt.str "page %#x: outside RAM (%d bytes)" ppn
                          phys.Machine.Phys.size))
      img.pages
  in
  if bad <> [] then
    stale "stale AOT image for %S: %s" img.meta.label (String.concat "; " bad);
  let stats = Cms.stats c in
  let installed = ref 0 and rejected = ref [] in
  List.iter
    (fun (t : tran) ->
      let reject why =
        stats.Cms.Stats.aot_rejected <- stats.Cms.Stats.aot_rejected + 1;
        rejected := (t.tentry, why) :: !rejected
      in
      match region_of_tran t with
      | exception Codec.Corrupt msg -> reject msg
      | exception X86.Exn.Fault _ ->
          reject "instruction bytes outside recorded source ranges"
      | region -> (
          (* copy-on-validate: the target machine's bytes must equal the
             snapshot the code was minted from *)
          let current = Cms.Codegen.take_snapshot (Cms.mem c) region in
          if not (Bytes.equal current t.snapshot) then
            reject "source bytes changed since the image was built"
          else
            match Vliw.Code.validate t.code with
            | Error e -> reject ("invalid native code: " ^ e)
            | Ok () ->
                (* fresh exit records: chaining state is engine-local *)
                let code =
                  {
                    t.code with
                    Vliw.Code.exits =
                      Array.map
                        (fun (e : Vliw.Code.exit) ->
                          {
                            e with
                            Vliw.Code.chain =
                              (match e.Vliw.Code.chain with
                              | Vliw.Code.NoChain -> Vliw.Code.NoChain
                              | _ -> Vliw.Code.Unchained);
                          })
                        t.code.Vliw.Code.exits;
                  }
                in
                if
                  Cms.Engine.aot_install c ~entry:t.tentry ~code ~region
                    ~policy:t.policy ~snapshot:t.snapshot
                then incr installed
                else reject "entry already has a live translation"))
    img.trans;
  { installed = !installed; rejected = List.rev !rejected }

let pp_report fmt (r : install_report) =
  Fmt.pf fmt "aot install: %d translations installed, %d rejected%s"
    r.installed
    (List.length r.rejected)
    (match r.rejected with
    | [] -> ""
    | l ->
        ": "
        ^ String.concat "; "
            (List.map (fun (e, why) -> Fmt.str "%#x (%s)" e why) l))
