(** Versioned machine snapshots at commit boundaries.

    A snapshot captures the complete guest-visible machine state — CPU
    register file (working and shadow copies), MMU page table, sparse
    physical memory, and every platform device — plus the soft CMS state
    worth carrying across a restore: cumulative {!Cms.Stats} /
    {!Vliw.Perf} counters and the adaptation table (demotion ladder
    budgets and quarantines).  Host-side caches — the translation cache,
    the derived page-protection state, the profile, the decode cache and
    the TLB — are deliberately *not* restored: they are pure
    accelerators whose absence only costs retranslation, and restoring
    cold exercises exactly the paper's adaptive-retranslation story.
    The protection map is still written to the image ({b PROT} section)
    for crash forensics.

    Capture is only legal at a consistent commit boundary (working =
    shadow registers, store buffer empty) — precisely where
    [Engine.on_boundary] fires — so a restored machine re-enters the
    dispatch loop as if it had just committed.  {!capture} raises
    {!Inconsistent} anywhere else.

    Restore rebuilds the machine from the image alone: configuration,
    RAM size and disk contents all come from the snapshot, so a resumed
    run needs no access to the original workload files. *)

type meta = {
  label : string;
  retired : int;  (** retired-instruction clock at capture *)
  molecules : int;  (** device-time clock at capture *)
  irq_cursor : int;  (** journal IRQ events already delivered *)
  sync_cursor : int;  (** journal DMA/protection events already fired *)
}

exception Inconsistent of string
(** attempted capture away from a commit boundary *)

(* version 2: the embedded Stats record grew the AOT counters.
   version 3: Config grew closure_exec/chain_exits, Stats the
   closure/chaining counters.
   version 4: Config grew background_translation/bg_queue_capacity,
   Stats the background-translation counters.
   version 5: NIC device section (NICC), the PIC's deferred-raise
   counter in IRQC, Stats the interrupt-pressure counters.
   version 6: Stats grew the shared-translation-store (fleet) counters. *)
let version = 6
let kind = "SNAP"

let consistent (c : Cms.t) =
  let exec = c.Cms.Engine.cpu.Cms.Cpu.exec in
  Vliw.Regfile.consistent exec.Vliw.Exec.regs
  && Vliw.Storebuf.is_empty exec.Vliw.Exec.sbuf

(* ------------------------------------------------------------------ *)
(* Capture                                                             *)
(* ------------------------------------------------------------------ *)

let capture ?(label = "") ?(injector : Journal.injector option) (c : Cms.t) :
    string =
  if not (consistent c) then
    raise
      (Inconsistent
         "snapshot capture requires a consistent commit boundary \
          (uncommitted working state or gated stores pending)");
  let plat = Cms.platform c in
  let mem = Cms.mem c in
  let stats = Cms.stats c in
  let sec f =
    let b = Codec.writer () in
    f b;
    Codec.contents b
  in
  let meta =
    sec (fun b ->
        Codec.w_string b label;
        Codec.w_int b (Cms.retired c);
        Codec.w_int b (Cms.total_molecules c);
        (match injector with
        | Some i ->
            Codec.w_int b i.Journal.irq_next;
            Codec.w_int b i.Journal.sync_taken
        | None ->
            Codec.w_int b 0;
            Codec.w_int b 0))
  in
  let conf = sec (fun b -> Stable.w_config b c.Cms.Engine.cfg) in
  let cpus =
    sec (fun b ->
        let cpu = Cms.cpu c in
        let regs = Cms.Cpu.regs cpu in
        Codec.w_int b Vliw.Abi.num_regs;
        Codec.w_int_array b regs.Vliw.Regfile.working;
        Codec.w_int_array b regs.Vliw.Regfile.shadow;
        Codec.w_int b regs.Vliw.Regfile.commits;
        Codec.w_int b regs.Vliw.Regfile.rollbacks;
        Codec.w_bool b cpu.Cms.Cpu.halted;
        Codec.w_bool b cpu.Cms.Cpu.iflag;
        Codec.w_int b cpu.Cms.Cpu.idt_base)
  in
  let mmus =
    sec (fun b ->
        let mmu = mem.Machine.Mem.mmu in
        Codec.w_bool b mmu.Machine.Mmu.enabled;
        Codec.w_list b
          (fun b (vpn, ppn, present, writable) ->
            Codec.w_int b vpn;
            Codec.w_int b ppn;
            Codec.w_bool b present;
            Codec.w_bool b writable)
          (Machine.Mmu.dump_entries mmu);
        Codec.w_int b mmu.Machine.Mmu.tlb_hits;
        Codec.w_int b mmu.Machine.Mmu.tlb_misses)
  in
  let pmem =
    sec (fun b ->
        Codec.w_sparse b mem.Machine.Mem.phys.Machine.Phys.data;
        Codec.w_int b mem.Machine.Mem.page_prot_faults;
        Codec.w_int b mem.Machine.Mem.smc_events;
        Codec.w_int b mem.Machine.Mem.dma_smc_events;
        Codec.w_int b mem.Machine.Mem.fast_reads;
        Codec.w_int b mem.Machine.Mem.fast_writes)
  in
  (* Derived protection state, for forensics only: restore leaves it
     cold (the fresh engine has no translations to protect). *)
  let prot =
    sec (fun b ->
        let sorted_keys h =
          Hashtbl.fold (fun k () acc -> k :: acc) h [] |> List.sort compare
        in
        Codec.w_list b Codec.w_int (sorted_keys mem.Machine.Mem.protected_pages);
        Codec.w_list b Codec.w_int (sorted_keys mem.Machine.Mem.fg_pages);
        Codec.w_list b
          (fun b (ppn, mask) ->
            Codec.w_int b ppn;
            Codec.w_int64 b mask)
          (Machine.Finegrain.dump mem.Machine.Mem.fg))
  in
  let timr =
    sec (fun b ->
        let period, count, fired =
          Machine.Timer.snapshot plat.Machine.Platform.timer
        in
        Codec.w_int b period;
        Codec.w_int b count;
        Codec.w_int b fired)
  in
  let irqc =
    sec (fun b ->
        let pending, mask, raised, delivered, deferred =
          Machine.Irq.snapshot plat.Machine.Platform.irq
        in
        Codec.w_int b pending;
        Codec.w_int b mask;
        Codec.w_int b raised;
        Codec.w_int b delivered;
        Codec.w_int b deferred)
  in
  let uart =
    sec (fun b ->
        let out, in_fifo, reads, writes =
          Machine.Uart.snapshot plat.Machine.Platform.uart
        in
        Codec.w_string b out;
        Codec.w_list b Codec.w_int in_fifo;
        Codec.w_int b reads;
        Codec.w_int b writes)
  in
  let disk =
    sec (fun b ->
        let d = plat.Machine.Platform.disk in
        let sector, dest, count, busy, transfers = Machine.Disk.snapshot d in
        Codec.w_int b sector;
        Codec.w_int b dest;
        Codec.w_int b count;
        Codec.w_int b busy;
        Codec.w_int b transfers;
        Codec.w_int b d.Machine.Disk.latency;
        Codec.w_sparse b d.Machine.Disk.image)
  in
  let nicc =
    sec (fun b ->
        let n = plat.Machine.Platform.nic in
        let ( (ctrl, rx_base, rx_count, rx_head, tx_base, tx_count, tx_head,
               tx_pending),
              (mitigation, isr, busy, coalesce_acc, backlog),
              (rx_frames, tx_frames, rx_dropped, irqs_raised, irqs_coalesced)
            ) =
          Machine.Nic.snapshot n
        in
        List.iter (Codec.w_int b)
          [ ctrl; rx_base; rx_count; rx_head; tx_base; tx_count; tx_head ];
        Codec.w_bool b tx_pending;
        List.iter (Codec.w_int b) [ mitigation; isr; busy; coalesce_acc ];
        Codec.w_list b Codec.w_string backlog;
        List.iter (Codec.w_int b)
          [ rx_frames; tx_frames; rx_dropped; irqs_raised; irqs_coalesced ];
        Codec.w_int b n.Machine.Nic.latency)
  in
  let fbuf =
    sec (fun b ->
        let fbmem, writes, reads, frames =
          Machine.Framebuf.snapshot plat.Machine.Platform.fb
        in
        Codec.w_sparse b fbmem;
        Codec.w_int b writes;
        Codec.w_int b reads;
        Codec.w_int b frames)
  in
  let busc =
    sec (fun b ->
        let bus = mem.Machine.Mem.bus in
        Codec.w_int b bus.Machine.Bus.mmio_reads;
        Codec.w_int b bus.Machine.Bus.mmio_writes;
        Codec.w_int b bus.Machine.Bus.port_ops)
  in
  let stat = sec (fun b -> Stable.w_stats b stats) in
  let perf = sec (fun b -> Stable.w_perf b (Cms.perf c)) in
  let adpt =
    sec (fun b ->
        let a = c.Cms.Engine.adapt in
        Codec.w_int b a.Cms.Adapt.clock;
        Codec.w_int b a.Cms.Adapt.evictions;
        Codec.w_list b
          (fun b (key, pol, touch, escalations, failures) ->
            Codec.w_int b key;
            Stable.w_policy b pol;
            Codec.w_int b touch;
            Codec.w_int b escalations;
            Codec.w_int b failures)
          (Cms.Adapt.dump a))
  in
  let tcac =
    sec (fun b ->
        let tc = c.Cms.Engine.tcache in
        Codec.w_int b tc.Cms.Tcache.flushes;
        Codec.w_int b tc.Cms.Tcache.evictions;
        Codec.w_int b tc.Cms.Tcache.evicted)
  in
  let image =
    Codec.write_container ~kind ~version
      [
        ("META", meta);
        ("CONF", conf);
        ("CPUS", cpus);
        ("MMUS", mmus);
        ("PMEM", pmem);
        ("PROT", prot);
        ("TIMR", timr);
        ("IRQC", irqc);
        ("UART", uart);
        ("DISK", disk);
        ("NICC", nicc);
        ("FBUF", fbuf);
        ("BUSC", busc);
        ("STAT", stat);
        ("PERF", perf);
        ("ADPT", adpt);
        ("TCAC", tcac);
      ]
  in
  stats.Cms.Stats.snapshots_written <- stats.Cms.Stats.snapshots_written + 1;
  stats.Cms.Stats.snapshot_bytes <-
    stats.Cms.Stats.snapshot_bytes + String.length image;
  image

(* ------------------------------------------------------------------ *)
(* Restore                                                             *)
(* ------------------------------------------------------------------ *)

let read_meta_sec sections =
  let r = Codec.reader ~ctx:"snapshot section META" (Codec.section sections "META") in
  let label = Codec.r_string r in
  let retired = Codec.r_int r in
  let molecules = Codec.r_int r in
  let irq_cursor = Codec.r_int r in
  let sync_cursor = Codec.r_int r in
  Codec.r_end r;
  { label; retired; molecules; irq_cursor; sync_cursor }

(** Peek at an image's metadata without building a machine. *)
let inspect data = read_meta_sec (Codec.read_container ~kind ~version data)

(** Rebuild a machine from a snapshot image.  The returned engine is at
    the captured commit boundary with a *cold* translation cache;
    continue it with [Cms.run].  Raises {!Codec.Corrupt} on any image
    defect. *)
let restore data : Cms.t * meta =
  let sections = Codec.read_container ~kind ~version data in
  let sec tag =
    Codec.reader ~ctx:("snapshot section " ^ tag) (Codec.section sections tag)
  in
  let meta = read_meta_sec sections in
  let conf = sec "CONF" in
  let cfg = Stable.r_config conf in
  Codec.r_end conf;
  (* RAM contents and size, and the disk image, come from the snapshot:
     they are creation parameters of the platform. *)
  let pmem = sec "PMEM" in
  let ram = Codec.r_sparse pmem in
  let page_prot_faults = Codec.r_int pmem in
  let smc_events = Codec.r_int pmem in
  let dma_smc_events = Codec.r_int pmem in
  let fast_reads = Codec.r_int pmem in
  let fast_writes = Codec.r_int pmem in
  Codec.r_end pmem;
  let disk = sec "DISK" in
  let d_sector = Codec.r_int disk in
  let d_dest = Codec.r_int disk in
  let d_count = Codec.r_int disk in
  let d_busy = Codec.r_int disk in
  let d_transfers = Codec.r_int disk in
  let _latency = Codec.r_int disk in
  let disk_image = Codec.r_sparse disk in
  Codec.r_end disk;
  (* No [Cms.boot]: booting would identity-map low memory and reset the
     CPU; the snapshot carries the real page table and register file. *)
  let c = Cms.create ~cfg ~ram_size:(Bytes.length ram) ~disk_image () in
  let mem = Cms.mem c in
  Bytes.blit ram 0 mem.Machine.Mem.phys.Machine.Phys.data 0 (Bytes.length ram);
  mem.Machine.Mem.page_prot_faults <- page_prot_faults;
  mem.Machine.Mem.smc_events <- smc_events;
  mem.Machine.Mem.dma_smc_events <- dma_smc_events;
  mem.Machine.Mem.fast_reads <- fast_reads;
  mem.Machine.Mem.fast_writes <- fast_writes;
  let cpus = sec "CPUS" in
  let nregs = Codec.r_int cpus in
  if nregs <> Vliw.Abi.num_regs then
    Codec.corrupt
      "snapshot register file has %d registers (this build has %d)" nregs
      Vliw.Abi.num_regs;
  let working = Codec.r_int_array cpus in
  let shadow = Codec.r_int_array cpus in
  if Array.length working <> nregs || Array.length shadow <> nregs then
    Codec.corrupt "snapshot register arrays truncated";
  let commits = Codec.r_int cpus in
  let rollbacks = Codec.r_int cpus in
  let halted = Codec.r_bool cpus in
  let iflag = Codec.r_bool cpus in
  let idt_base = Codec.r_int cpus in
  Codec.r_end cpus;
  let cpu = Cms.cpu c in
  let regs = Cms.Cpu.regs cpu in
  Array.blit working 0 regs.Vliw.Regfile.working 0 nregs;
  Array.blit shadow 0 regs.Vliw.Regfile.shadow 0 nregs;
  regs.Vliw.Regfile.commits <- commits;
  regs.Vliw.Regfile.rollbacks <- rollbacks;
  cpu.Cms.Cpu.halted <- halted;
  cpu.Cms.Cpu.iflag <- iflag;
  cpu.Cms.Cpu.idt_base <- idt_base;
  let mmus = sec "MMUS" in
  let mmu = mem.Machine.Mem.mmu in
  let enabled = Codec.r_bool mmus in
  let entries =
    Codec.r_list mmus (fun r ->
        let vpn = Codec.r_int r in
        let ppn = Codec.r_int r in
        let present = Codec.r_bool r in
        let writable = Codec.r_bool r in
        (vpn, ppn, present, writable))
  in
  let tlb_hits = Codec.r_int mmus in
  let tlb_misses = Codec.r_int mmus in
  Codec.r_end mmus;
  Machine.Mmu.restore_entries mmu entries;
  mmu.Machine.Mmu.enabled <- enabled;
  mmu.Machine.Mmu.tlb_hits <- tlb_hits;
  mmu.Machine.Mmu.tlb_misses <- tlb_misses;
  Machine.Mmu.flush_tlb mmu;
  let plat = Cms.platform c in
  let timr = sec "TIMR" in
  let t_period = Codec.r_int timr in
  let t_count = Codec.r_int timr in
  let t_fired = Codec.r_int timr in
  Codec.r_end timr;
  Machine.Timer.restore plat.Machine.Platform.timer (t_period, t_count, t_fired);
  let irqc = sec "IRQC" in
  let i_pending = Codec.r_int irqc in
  let i_mask = Codec.r_int irqc in
  let i_raised = Codec.r_int irqc in
  let i_delivered = Codec.r_int irqc in
  let i_deferred = Codec.r_int irqc in
  Codec.r_end irqc;
  Machine.Irq.restore plat.Machine.Platform.irq
    (i_pending, i_mask, i_raised, i_delivered, i_deferred);
  let uart = sec "UART" in
  let u_out = Codec.r_string uart in
  let u_fifo = Codec.r_list uart Codec.r_int in
  let u_reads = Codec.r_int uart in
  let u_writes = Codec.r_int uart in
  Codec.r_end uart;
  Machine.Uart.restore plat.Machine.Platform.uart
    (u_out, u_fifo, u_reads, u_writes);
  Machine.Disk.restore plat.Machine.Platform.disk
    (d_sector, d_dest, d_count, d_busy, d_transfers);
  let nicc = sec "NICC" in
  let n_ctrl = Codec.r_int nicc in
  let n_rx_base = Codec.r_int nicc in
  let n_rx_count = Codec.r_int nicc in
  let n_rx_head = Codec.r_int nicc in
  let n_tx_base = Codec.r_int nicc in
  let n_tx_count = Codec.r_int nicc in
  let n_tx_head = Codec.r_int nicc in
  let n_tx_pending = Codec.r_bool nicc in
  let n_mitigation = Codec.r_int nicc in
  let n_isr = Codec.r_int nicc in
  let n_busy = Codec.r_int nicc in
  let n_coalesce = Codec.r_int nicc in
  let n_backlog = Codec.r_list nicc Codec.r_string in
  let n_rx_frames = Codec.r_int nicc in
  let n_tx_frames = Codec.r_int nicc in
  let n_rx_dropped = Codec.r_int nicc in
  let n_irqs_raised = Codec.r_int nicc in
  let n_irqs_coalesced = Codec.r_int nicc in
  let _nic_latency = Codec.r_int nicc in
  Codec.r_end nicc;
  Machine.Nic.restore plat.Machine.Platform.nic
    ( ( n_ctrl, n_rx_base, n_rx_count, n_rx_head, n_tx_base, n_tx_count,
        n_tx_head, n_tx_pending ),
      (n_mitigation, n_isr, n_busy, n_coalesce, n_backlog),
      (n_rx_frames, n_tx_frames, n_rx_dropped, n_irqs_raised, n_irqs_coalesced)
    );
  let fbuf = sec "FBUF" in
  let f_mem = Codec.r_sparse fbuf in
  let f_writes = Codec.r_int fbuf in
  let f_reads = Codec.r_int fbuf in
  let f_frames = Codec.r_int fbuf in
  Codec.r_end fbuf;
  (try
     Machine.Framebuf.restore plat.Machine.Platform.fb
       (f_mem, f_writes, f_reads, f_frames)
   with Invalid_argument m -> Codec.corrupt "snapshot FBUF: %s" m);
  let busc = sec "BUSC" in
  let bus = mem.Machine.Mem.bus in
  bus.Machine.Bus.mmio_reads <- Codec.r_int busc;
  bus.Machine.Bus.mmio_writes <- Codec.r_int busc;
  bus.Machine.Bus.port_ops <- Codec.r_int busc;
  Codec.r_end busc;
  let stat = sec "STAT" in
  Stable.r_stats_into stat (Cms.stats c);
  Codec.r_end stat;
  let perf = sec "PERF" in
  Stable.r_perf_into perf (Cms.perf c);
  Codec.r_end perf;
  let adpt = sec "ADPT" in
  let a_clock = Codec.r_int adpt in
  let a_evictions = Codec.r_int adpt in
  let a_entries =
    Codec.r_list adpt (fun r ->
        let key = Codec.r_int r in
        let pol = Stable.r_policy r in
        let touch = Codec.r_int r in
        let escalations = Codec.r_int r in
        let failures = Codec.r_int r in
        (key, pol, touch, escalations, failures))
  in
  Codec.r_end adpt;
  Cms.Adapt.restore c.Cms.Engine.adapt ~clock:a_clock ~evictions:a_evictions
    a_entries;
  let tcac = sec "TCAC" in
  let tc = c.Cms.Engine.tcache in
  tc.Cms.Tcache.flushes <- Codec.r_int tcac;
  tc.Cms.Tcache.evictions <- Codec.r_int tcac;
  tc.Cms.Tcache.evicted <- Codec.r_int tcac;
  Codec.r_end tcac;
  (* Device time already consumed before capture must not be re-ticked:
     align the engine's molecule cursor with the restored counters. *)
  c.Cms.Engine.ticked <- Cms.total_molecules c;
  let stats = Cms.stats c in
  stats.Cms.Stats.resumes <- stats.Cms.Stats.resumes + 1;
  (c, meta)

let save path ?label ?injector c = Codec.write_file path (capture ?label ?injector c)

let load path : Cms.t * meta = restore (Codec.read_file path)

(* ------------------------------------------------------------------ *)
(* Periodic checkpointing                                              *)
(* ------------------------------------------------------------------ *)

(** A boundary-driven checkpointer: keeps the latest snapshot image (and
    nothing else) so a crash is always replayable from the most recent
    checkpoint. *)
type checkpointer = {
  mutable image : string option;  (** most recent snapshot image *)
  mutable captures : int;
  mutable last_capture : int;  (** retired clock of the last capture *)
}

(** Arm periodic checkpointing on [c]: every [every] retired
    instructions (checked at dispatch boundaries), capture a snapshot.
    Composes with any already-installed [on_boundary] hook, running it
    first — so journal delivery at a boundary is reflected in the
    snapshot taken at that same boundary. *)
let arm ?label ?injector (c : Cms.t) ~every =
  if every <= 0 then invalid_arg "Snapshot.arm: every must be positive";
  let ck = { image = None; captures = 0; last_capture = 0 } in
  let prev = c.Cms.Engine.on_boundary in
  c.Cms.Engine.on_boundary <-
    Some
      (fun retired ->
        (match prev with Some f -> f retired | None -> ());
        if retired - ck.last_capture >= every then begin
          ck.image <- Some (capture ?label ?injector c);
          ck.captures <- ck.captures + 1;
          ck.last_capture <- retired
        end);
  ck
