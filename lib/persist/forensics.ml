(** Crash forensics: when a run dies uncontained or a differential
    check diverges, dump everything needed to reproduce and debug it —
    a human-readable report, the final (or last-checkpoint) snapshot,
    the event journal, and the generator case text — into a directory,
    so every failure is replayable offline from its artifacts. *)

type dump = {
  report : string;  (** path of the text report *)
  artifacts : (string * string) list;  (** (kind, path) of binary dumps *)
}

let write path data = Codec.write_file path data

(** Dump the forensics bundle for failure [name] into [dir] (created if
    missing).  All pieces are optional; whatever is available is
    written.  [snapshot] is the final-state image (when the machine died
    at a consistent boundary), [checkpoint] the last periodic
    checkpoint image, [journal] the recorded event journal, [case_text]
    the fuzzer case listing, [aot] the serialized ahead-of-time
    translation image (for AOT-oracle divergences — replayable with
    [cmsverify --aot]), and [engine] the machine to summarize counters
    from. *)
let dump ~dir ~name ~reason ?snapshot ?checkpoint ?(journal : Journal.t option)
    ?case_text ?aot ?(engine : Cms.t option) () : dump =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let path ext = Filename.concat dir (name ^ ext) in
  let artifacts = ref [] in
  let art kind ext data =
    let p = path ext in
    write p data;
    artifacts := (kind, p) :: !artifacts
  in
  (match snapshot with Some s -> art "snapshot" ".final.snap" s | None -> ());
  (match checkpoint with
  | Some s -> art "checkpoint" ".ckpt.snap" s
  | None -> ());
  (match journal with
  | Some j -> art "journal" ".journal" (Journal.to_string j)
  | None -> ());
  (match case_text with Some t -> art "case" ".case" t | None -> ());
  (match aot with Some img -> art "aot-image" ".aot" img | None -> ());
  let report = path ".txt" in
  let b = Buffer.create 1024 in
  let pf fmt = Format.kasprintf (Buffer.add_string b) fmt in
  pf "failure: %s\nreason: %s\n" name reason;
  (match journal with
  | Some j ->
      pf "journal: label=%s guest-events=%d host-events=%d\n" j.Journal.label
        (List.length j.Journal.guest)
        (List.length j.Journal.host)
  | None -> ());
  (match engine with
  | Some c ->
      let s = Cms.stats c in
      pf "retired: %d\nmolecules: %d\n" (Cms.retired c) (Cms.total_molecules c);
      pf "stats: %a\n" Cms.Stats.pp s;
      pf "recovery: %a\n" Cms.Stats.pp_recovery s;
      pf "persist: %a\n" Cms.Stats.pp_persist s
  | None -> ());
  List.iter (fun (kind, p) -> pf "artifact: %s = %s\n" kind p) !artifacts;
  write report (Buffer.contents b);
  { report; artifacts = List.rev !artifacts }
