(** Stable binary encoding for persist images.

    Two layers:

    - {b primitives}: fixed-width little-endian scalars, length-prefixed
      strings, lists, and a zero-run-elided sparse encoding for big
      mostly-zero byte arrays (guest RAM).  Everything is
      format-defined, byte for byte — no [Marshal], so images and
      digests survive compiler upgrades and are diffable across
      machines.
    - {b container}: a tagged image [magic · kind · version · sections ·
      trailer].  Every section carries an MD5 digest of its payload, and
      the trailer digests the whole body, so corruption is both detected
      and *located*: load failures raise {!Corrupt} with the section tag
      and byte position at fault.

    Readers are strict: every length is bounds-checked before use, every
    section must verify, and trailing garbage is rejected.  A truncated,
    bit-flipped or wrong-kind image never produces a half-restored
    machine — it produces a diagnostic. *)

exception Corrupt of string

let corrupt fmt = Format.kasprintf (fun s -> raise (Corrupt s)) fmt

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

type w = Buffer.t

let writer () = Buffer.create 4096
let contents = Buffer.contents
let w_int b v = Buffer.add_int64_le b (Int64.of_int v)
let w_int64 b v = Buffer.add_int64_le b v
let w_bool b v = Buffer.add_char b (if v then '\001' else '\000')

let w_string b s =
  w_int b (String.length s);
  Buffer.add_string b s

let w_bytes b by = w_string b (Bytes.unsafe_to_string by)

let w_list b f l =
  w_int b (List.length l);
  List.iter (f b) l

let w_int_array b a =
  w_int b (Array.length a);
  Array.iter (w_int b) a

let w_opt b f = function
  | None -> w_bool b false
  | Some v ->
      w_bool b true;
      f b v

(* ------------------------------------------------------------------ *)
(* Reader                                                              *)
(* ------------------------------------------------------------------ *)

type r = { data : string; mutable pos : int; ctx : string }

let reader ?(ctx = "image") data = { data; pos = 0; ctx }

let need r n =
  if n < 0 || r.pos + n > String.length r.data then
    corrupt "%s: truncated at byte %d (need %d more bytes, have %d)" r.ctx
      r.pos n
      (String.length r.data - r.pos)

let r_fixed r n =
  need r n;
  let s = String.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

let r_int r =
  need r 8;
  let v = Int64.to_int (String.get_int64_le r.data r.pos) in
  r.pos <- r.pos + 8;
  v

let r_int64 r =
  need r 8;
  let v = String.get_int64_le r.data r.pos in
  r.pos <- r.pos + 8;
  v

let r_bool r =
  need r 1;
  let c = r.data.[r.pos] in
  r.pos <- r.pos + 1;
  match c with
  | '\000' -> false
  | '\001' -> true
  | c -> corrupt "%s: invalid boolean byte %#x at byte %d" r.ctx (Char.code c) (r.pos - 1)

let r_string r =
  let n = r_int r in
  if n < 0 then corrupt "%s: negative string length %d at byte %d" r.ctx n (r.pos - 8);
  r_fixed r n

let r_bytes r = Bytes.of_string (r_string r)

let r_list r f =
  let n = r_int r in
  if n < 0 then corrupt "%s: negative list length %d at byte %d" r.ctx n (r.pos - 8);
  let rec go k acc = if k = 0 then List.rev acc else go (k - 1) (f r :: acc) in
  go n []

let r_int_array r =
  let n = r_int r in
  if n < 0 then corrupt "%s: negative array length %d at byte %d" r.ctx n (r.pos - 8);
  (* element order matters; build via an explicit loop *)
  let a = Array.make (max n 1) 0 in
  for i = 0 to n - 1 do
    a.(i) <- r_int r
  done;
  if n = 0 then [||] else a

let r_opt r f = if r_bool r then Some (f r) else None

(** The reader must be exactly exhausted; catches encoder/decoder skew
    and images with appended garbage. *)
let r_end r =
  if r.pos <> String.length r.data then
    corrupt "%s: %d trailing bytes after byte %d" r.ctx
      (String.length r.data - r.pos)
      r.pos

(* ------------------------------------------------------------------ *)
(* Sparse byte arrays                                                  *)
(* ------------------------------------------------------------------ *)

(* Guest RAM is mostly zero: encode as total length + the non-zero
   [sparse_chunk]-sized runs, each as (offset, bytes).  A 16 MiB image
   with a few hundred KiB live collapses to the live part. *)
let sparse_chunk = 4096

let w_sparse b data =
  let total = Bytes.length data in
  w_int b total;
  let zero off len =
    let rec go i = i >= len || (Bytes.get data (off + i) = '\000' && go (i + 1)) in
    go 0
  in
  let chunks = ref [] in
  let nchunks = ref 0 in
  let off = ref 0 in
  while !off < total do
    let len = min sparse_chunk (total - !off) in
    if not (zero !off len) then begin
      chunks := (!off, len) :: !chunks;
      incr nchunks
    end;
    off := !off + len
  done;
  w_int b !nchunks;
  List.iter
    (fun (off, len) ->
      w_int b off;
      w_string b (Bytes.sub_string data off len))
    (List.rev !chunks)

let r_sparse r =
  let total = r_int r in
  if total < 0 then corrupt "%s: negative sparse image size %d" r.ctx total;
  let data = Bytes.make total '\000' in
  let n = r_int r in
  if n < 0 then corrupt "%s: negative sparse chunk count %d" r.ctx n;
  for _ = 1 to n do
    let off = r_int r in
    let s = r_string r in
    if off < 0 || off + String.length s > total then
      corrupt "%s: sparse chunk [%d, +%d) outside image of %d bytes" r.ctx off
        (String.length s) total;
    Bytes.blit_string s 0 data off (String.length s)
  done;
  data

(* ------------------------------------------------------------------ *)
(* Container                                                           *)
(* ------------------------------------------------------------------ *)

let magic = "CMSPERSIST\n"
let trailer_tag = "ENDS"

(** Assemble a container image of [kind] (a 4-character tag, e.g.
    ["SNAP"]) at [version] from tagged sections. *)
let write_container ~kind ~version (sections : (string * string) list) =
  assert (String.length kind = 4);
  let b = Buffer.create 65536 in
  Buffer.add_string b magic;
  Buffer.add_string b kind;
  w_int b version;
  w_int b (List.length sections);
  List.iter
    (fun (tag, payload) ->
      assert (String.length tag = 4);
      Buffer.add_string b tag;
      w_int b (String.length payload);
      Buffer.add_string b payload;
      Buffer.add_string b (Digest.string payload))
    sections;
  let body = Buffer.contents b in
  body ^ trailer_tag ^ Digest.string body

(** Parse and fully verify a container; returns the sections in image
    order.  Raises {!Corrupt} with a precise diagnostic on any defect:
    bad magic, wrong kind, unsupported version, truncation, a section
    whose payload fails its digest, a missing or failing trailer, or
    trailing garbage. *)
let read_container ~kind ~version data =
  let mlen = String.length magic in
  if String.length data < mlen || String.sub data 0 mlen <> magic then
    corrupt "not a CMS persist image (bad or missing magic)";
  let r = reader ~ctx:"container" data in
  r.pos <- mlen;
  let k = r_fixed r 4 in
  if k <> kind then
    corrupt "wrong image kind %S (expected %S)" k kind;
  let v = r_int r in
  if v <> version then
    corrupt "unsupported %s format version %d (this build reads version %d)"
      kind v version;
  let nsec = r_int r in
  if nsec < 0 || nsec > 0xffff then
    corrupt "implausible section count %d" nsec;
  let sections = ref [] in
  for _ = 1 to nsec do
    let tag = r_fixed r 4 in
    let len = r_int r in
    if len < 0 then corrupt "section %S: negative length %d" tag len;
    if r.pos + len + 16 > String.length data then
      corrupt "section %S: truncated (%d-byte payload at byte %d, image is %d bytes)"
        tag len r.pos (String.length data);
    let payload = r_fixed r len in
    let digest = r_fixed r 16 in
    if Digest.string payload <> digest then
      corrupt "section %S: payload digest mismatch (corrupted bytes)" tag;
    sections := (tag, payload) :: !sections
  done;
  let body_end = r.pos in
  (match r_fixed r 4 with
  | t when t = trailer_tag -> ()
  | t -> corrupt "missing trailer (found %S where %S expected)" t trailer_tag);
  let whole = r_fixed r 16 in
  if Digest.string (String.sub data 0 body_end) <> whole then
    corrupt "whole-image digest mismatch (image corrupted)";
  r_end r;
  List.rev !sections

(** Find a required section. *)
let section sections tag =
  match List.assoc_opt tag sections with
  | Some payload -> payload
  | None -> corrupt "missing required section %S" tag

(* ------------------------------------------------------------------ *)
(* Files                                                               *)
(* ------------------------------------------------------------------ *)

let write_file path data =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc data)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))
