(** The deterministic event journal: every nondeterministic input to a
    run, keyed to deterministic clocks, so that record → replay
    reproduces the identical execution bit for bit.

    Two event classes:

    - {b Guest events} are the fuzzer's injected inputs: asynchronous
      IRQ assertions keyed to the retired-instruction clock (delivered
      from [Engine.on_boundary]), and synchronous DMA writes /
      page-protection flips consumed by guest [out]s to
      {!Machine.Platform.fuzz_port}.  The installer here is the single
      authoritative implementation — [Cms_fuzz.Inject] is an alias — and
      it exposes delivery cursors so a snapshot can record how far the
      schedule had progressed and a resume can replay only the suffix.
    - {b Host events} are the chaos layer's realized injections
      (translator kills, forced pre-execution faults, spoofed interrupt
      polls, flush/evict storms), recorded via {!Cms_robust.Chaos.tap}
      with their *opportunity index* — the nth invocation of the
      corresponding hook.  Replay re-injects by counter matching alone:
      no RNG runs at replay time, so a journal replays identically even
      if the chaos profile, RNG, or rate tuning changes later.

    The replay-fidelity argument: the machine is deterministic apart
    from these inputs, and every opportunity index is a pure function of
    the execution so far; by induction over events, the replayed run
    makes exactly the recorded injections at exactly the recorded
    points, hence ends in the identical state. *)

type guest_event =
  | Irq of { at : int; line : int }
      (** raise IRQ [line] once ≥ [at] instructions have retired *)
  | Dma of { addr : int; data : string }
      (** device write of [data] at physical [addr] *)
  | Prot of { virt : int; writable : bool }
      (** flip page-table writability of the page at [virt] *)
  | Pkt of { at : int; data : string }
      (** deliver a frame into the NIC RX ring once ≥ [at] instructions
          have retired.  Delivery is additionally gated on the NIC's
          line latch being clear *and* {!Machine.Nic.can_accept}, so
          the set of frames that land — and where — is a pure function
          of the event list in every execution configuration *)
  | Dma_at of { at : int; addr : int; data : string }
      (** asynchronous device write of [data] at physical [addr], fired
          at the first boundary once ≥ [at] instructions have retired —
          the §3.6.1 DMA-vs-translation race, journaled verbatim *)

let pp_guest_event ppf = function
  | Irq { at; line } -> Fmt.pf ppf "irq@%d line=%d" at line
  | Dma { addr; data } -> Fmt.pf ppf "dma@%#x len=%d" addr (String.length data)
  | Prot { virt; writable } -> Fmt.pf ppf "prot@%#x w=%b" virt writable
  | Pkt { at; data } -> Fmt.pf ppf "pkt@%d len=%d" at (String.length data)
  | Dma_at { at; addr; data } ->
      Fmt.pf ppf "dma@%d->%#x len=%d" at addr (String.length data)

type host_event =
  | Kill of { nth : int }  (** nth translation attempt dies *)
  | Pre_fault of { nth : int; alias : bool }
      (** nth pre-execution check injects a native fault *)
  | Spoof of { nth : int }  (** nth interrupt poll reports a phantom IRQ *)
  | Flush of { nth : int }  (** nth dispatch boundary flushes the tcache *)
  | Evict of { nth : int }  (** nth boundary evicts the coldest generation *)
  | Unlink of { nth : int; k : int }
      (** nth boundary forcibly unlinks a chained exit, selected by [k]
          over the canonical {!Cms.Tcache.chained_exits} order (the
          selection is a pure function of tcache state, so replaying
          [(nth, k)] cuts the identical link) *)
  | Bg_arrive of { entry : int; at : int }
      (** a background-translation request for [entry] was consumed at
          its canonical install boundary with [at] instructions
          retired.  Unlike the other host events this is not replayed
          but *verified*: consume instants are a pure function of the
          deterministic execution, so the replayed engine must produce
          the identical (entry, at) sequence on its own — a mismatch
          means the background queue leaked scheduling nondeterminism
          into the architectural timeline *)

let pp_host_event ppf = function
  | Kill { nth } -> Fmt.pf ppf "kill@%d" nth
  | Pre_fault { nth; alias } -> Fmt.pf ppf "fault@%d alias=%b" nth alias
  | Spoof { nth } -> Fmt.pf ppf "spoof@%d" nth
  | Flush { nth } -> Fmt.pf ppf "flush@%d" nth
  | Evict { nth } -> Fmt.pf ppf "evict@%d" nth
  | Unlink { nth; k } -> Fmt.pf ppf "unlink@%d k=%d" nth k
  | Bg_arrive { entry; at } -> Fmt.pf ppf "bg-arrive@%d entry=%#x" at entry

type t = {
  label : string;  (** workload / case name *)
  cfg : Cms.Config.t;  (** exact configuration of the recorded run *)
  guest : guest_event list;
  host : host_event list;
  arch_hex : string option;  (** recorded final {!Digests.arch_hex} *)
  strict_hex : string option;  (** recorded final strict digest (hex) *)
}

(* ------------------------------------------------------------------ *)
(* Guest-event injection                                               *)
(* ------------------------------------------------------------------ *)

(** Delivery cursors of an installed guest-event schedule; snapshots
    capture them so a resume can install the undelivered suffix. *)
type injector = {
  mutable irq_next : int;
      (** next index into the sorted asynchronous schedule (IRQ raises,
          packet arrivals and async DMA, merged in [at] order) *)
  mutable sync_taken : int;  (** synchronous events already fired *)
  n_irq : int;
  n_sync : int;
}

(** Wire [events] into a freshly created (or restored) engine, before
    [run].  IRQ events install the boundary hook; DMA/protection events
    queue on the fuzz port, fired by successive guest [out]s.
    [irq_cursor]/[sync_cursor] skip the prefix a resumed run's snapshot
    already saw delivered. *)
let install_guest ?(irq_cursor = 0) ?(sync_cursor = 0) (c : Cms.t)
    (events : guest_event list) : injector =
  let plat = Cms.platform c in
  let mem = plat.Machine.Platform.mem in
  let stats = Cms.stats c in
  let asyncs =
    List.filter_map
      (function
        | Irq { at; line } -> Some (at, `Irq line)
        | Pkt { at; data } -> Some (at, `Pkt data)
        | Dma_at { at; addr; data } -> Some (at, `Dma (addr, data))
        | Dma _ | Prot _ -> None)
      events
    |> List.stable_sort (fun (a, _) (b, _) -> compare a b)
    |> Array.of_list
  in
  let syncs =
    List.filter
      (function Dma _ | Prot _ -> true | Irq _ | Pkt _ | Dma_at _ -> false)
      events
    |> Array.of_list
  in
  let inj =
    {
      irq_next = irq_cursor;
      sync_taken = sync_cursor;
      n_irq = Array.length asyncs;
      n_sync = Array.length syncs;
    }
  in
  if Array.length asyncs > 0 then begin
    (* Gate each raise on the line's latch being clear: the PIC latches
       a line as a single bit, so raising the same line twice before
       the first delivery would collapse two events into one — and
       whether two nearby events straddle a delivery is exactly what
       differs between interpreter and translator boundaries.  Holding
       the later event back until the earlier one has been delivered
       makes the total delivery count per line a pure function of the
       event list in every configuration.  Packet arrivals extend the
       same discipline to the NIC: deliver only when the NIC's line
       latch is clear *and* the RX ring has an armed descriptor, so
       frame placement is also schedule-independent.  The queue is
       head-blocking on purpose: a held-back event delays everything
       behind it identically in every configuration. *)
    let irqc = plat.Machine.Platform.irq in
    let nic = plat.Machine.Platform.nic in
    c.Cms.Engine.on_boundary <-
      Some
        (fun retired ->
          let continue_ = ref true in
          while !continue_ && inj.irq_next < Array.length asyncs do
            let at, ev = asyncs.(inj.irq_next) in
            let fired =
              at <= retired
              &&
              match ev with
              | `Irq line ->
                  irqc.Machine.Irq.pending land (1 lsl line) = 0
                  && begin
                       Machine.Irq.raise_line irqc line;
                       true
                     end
              | `Pkt data ->
                  irqc.Machine.Irq.pending land (1 lsl nic.Machine.Nic.line)
                  = 0
                  && Machine.Nic.can_accept nic
                  && Machine.Nic.rx_inject nic data
              | `Dma (addr, data) ->
                  Machine.Mem.dma_write mem addr (Bytes.of_string data);
                  true
            in
            if fired then begin
              stats.Cms.Stats.journal_events <-
                stats.Cms.Stats.journal_events + 1;
              inj.irq_next <- inj.irq_next + 1
            end
            else continue_ := false
          done)
  end;
  let fire _v =
    if inj.sync_taken < inj.n_sync then begin
      let e = syncs.(inj.sync_taken) in
      inj.sync_taken <- inj.sync_taken + 1;
      stats.Cms.Stats.journal_events <- stats.Cms.Stats.journal_events + 1;
      match e with
      | Dma { addr; data } ->
          Machine.Mem.dma_write mem addr (Bytes.of_string data)
      | Prot { virt; writable } ->
          Machine.Mmu.set_writable mem.Machine.Mem.mmu ~virt writable
      | Irq _ | Pkt _ | Dma_at _ -> assert false
    end
  in
  Machine.Bus.add_port mem.Machine.Mem.bus Machine.Platform.fuzz_port
    {
      Machine.Bus.pread = (fun _ -> inj.n_sync - inj.sync_taken);
      pwrite = (fun _ v -> fire v);
    };
  inj

(* ------------------------------------------------------------------ *)
(* Host-event replay                                                   *)
(* ------------------------------------------------------------------ *)

exception Replayed_death of int
(** The replayed analogue of {!Cms_robust.Chaos.Injected}: raised from
    [on_translate] inside the engine's containment boundary when the
    journal says the nth translation attempt died. *)

(** Re-inject a recorded host-event schedule into an engine: the chaos
    run, replayed without the chaos layer (and without its RNG).
    Composes with an already-installed [on_boundary] hook (the guest
    injector), running it first — the same order {!Cms_robust.Chaos}
    uses when recording. *)
let install_host (c : Cms.t) (events : host_event list) =
  let stats = Cms.stats c in
  let kills = Queue.create () in
  let faults = Queue.create () in
  let spoofs = Queue.create () in
  let flushes = Queue.create () in
  let evicts = Queue.create () in
  let unlinks = Queue.create () in
  let arrivals = Queue.create () in
  List.iter
    (function
      | Kill { nth } -> Queue.add nth kills
      | Pre_fault { nth; alias } -> Queue.add (nth, alias) faults
      | Spoof { nth } -> Queue.add nth spoofs
      | Flush { nth } -> Queue.add nth flushes
      | Evict { nth } -> Queue.add nth evicts
      | Unlink { nth; k } -> Queue.add (nth, k) unlinks
      | Bg_arrive { entry; at } -> Queue.add (entry, at) arrivals)
    events;
  (* Replay is scheduler-free: the background queue runs in virtual
     mode (requests tracked, nothing compiled, no worker domain), so
     every install takes the synchronous path.  The recorded
     [Bg_arrive] stream is then *verified* against the replay's own
     consume instants — both must be the same pure function of the
     deterministic execution. *)
  Cms.Engine.set_bg_virtual c true;
  c.Cms.Engine.on_bg_consume <-
    Some
      (fun ~entry ~at ->
        stats.Cms.Stats.journal_events <- stats.Cms.Stats.journal_events + 1;
        match Queue.take_opt arrivals with
        | Some (entry', at') when entry' = entry && at' = at -> ()
        | Some (entry', at') ->
            failwith
              (Fmt.str
                 "journal: background-consume divergence: replay hit \
                  entry=%#x at=%d, journal recorded entry=%#x at=%d"
                 entry at entry' at')
        | None ->
            failwith
              (Fmt.str
                 "journal: background-consume divergence: replay hit \
                  entry=%#x at=%d past the end of the recorded stream"
                 entry at));
  let due q n =
    match Queue.peek_opt q with
    | Some m when m = n ->
        ignore (Queue.pop q);
        stats.Cms.Stats.journal_events <- stats.Cms.Stats.journal_events + 1;
        true
    | _ -> false
  in
  let n_boundary = ref 0 in
  let n_translate = ref 0 in
  let n_exec = ref 0 in
  let n_spoof = ref 0 in
  let prev = c.Cms.Engine.on_boundary in
  c.Cms.Engine.on_boundary <-
    Some
      (fun retired ->
        (match prev with Some f -> f retired | None -> ());
        let n = !n_boundary in
        incr n_boundary;
        if due flushes n then Cms.Tcache.flush c.Cms.Engine.tcache;
        if due evicts n then
          ignore (Cms.Tcache.evict_coldest c.Cms.Engine.tcache);
        match Queue.peek_opt unlinks with
        | Some (m, k) when m = n ->
            ignore (Queue.pop unlinks);
            stats.Cms.Stats.journal_events <-
              stats.Cms.Stats.journal_events + 1;
            ignore (Cms.Tcache.unlink_nth c.Cms.Engine.tcache ~k)
        | _ -> ());
  c.Cms.Engine.chaos <-
    Some
      {
        Cms.Engine.on_translate =
          (fun entry ->
            let n = !n_translate in
            incr n_translate;
            if due kills n then raise (Replayed_death entry));
        pre_exec =
          (fun _tr ->
            let n = !n_exec in
            incr n_exec;
            match Queue.peek_opt faults with
            | Some (m, alias) when m = n ->
                ignore (Queue.pop faults);
                stats.Cms.Stats.journal_events <-
                  stats.Cms.Stats.journal_events + 1;
                Some
                  (if alias then Vliw.Nexn.Alias_violation 0
                   else Vliw.Nexn.Sbuf_overflow)
            | _ -> None);
        irq_spoof =
          (fun () ->
            let n = !n_spoof in
            incr n_spoof;
            due spoofs n);
        (* background dooms shape worker timing, which virtual-mode
           replay has none of — they are deliberately not journaled *)
        bg_doom = (fun _ -> None);
      }

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)
(* ------------------------------------------------------------------ *)

(* version 2: the embedded Config grew closure_exec/chain_exits, and
   host events grew the chaos unlink storm (tag 5).
   version 3: the embedded Config grew background_translation and
   bg_queue_capacity, Stats grew the bg counters, and host events the
   background-consume boundary (tag 6).
   version 4: guest events grew NIC packet arrivals (tag 3) and
   asynchronous retired-clock DMA bursts (tag 4); the embedded Stats
   grew the interrupt-pressure counters. *)
let version = 4
let kind = "JRNL"

let w_guest_event b = function
  | Irq { at; line } ->
      Codec.w_int b 0;
      Codec.w_int b at;
      Codec.w_int b line
  | Dma { addr; data } ->
      Codec.w_int b 1;
      Codec.w_int b addr;
      Codec.w_string b data
  | Prot { virt; writable } ->
      Codec.w_int b 2;
      Codec.w_int b virt;
      Codec.w_bool b writable
  | Pkt { at; data } ->
      Codec.w_int b 3;
      Codec.w_int b at;
      Codec.w_string b data
  | Dma_at { at; addr; data } ->
      Codec.w_int b 4;
      Codec.w_int b at;
      Codec.w_int b addr;
      Codec.w_string b data

let r_guest_event r =
  match Codec.r_int r with
  | 0 ->
      let at = Codec.r_int r in
      let line = Codec.r_int r in
      Irq { at; line }
  | 1 ->
      let addr = Codec.r_int r in
      let data = Codec.r_string r in
      Dma { addr; data }
  | 2 ->
      let virt = Codec.r_int r in
      let writable = Codec.r_bool r in
      Prot { virt; writable }
  | 3 ->
      let at = Codec.r_int r in
      let data = Codec.r_string r in
      Pkt { at; data }
  | 4 ->
      let at = Codec.r_int r in
      let addr = Codec.r_int r in
      let data = Codec.r_string r in
      Dma_at { at; addr; data }
  | k -> Codec.corrupt "journal: unknown guest-event tag %d" k

let w_host_event b = function
  | Kill { nth } ->
      Codec.w_int b 0;
      Codec.w_int b nth
  | Pre_fault { nth; alias } ->
      Codec.w_int b 1;
      Codec.w_int b nth;
      Codec.w_bool b alias
  | Spoof { nth } ->
      Codec.w_int b 2;
      Codec.w_int b nth
  | Flush { nth } ->
      Codec.w_int b 3;
      Codec.w_int b nth
  | Evict { nth } ->
      Codec.w_int b 4;
      Codec.w_int b nth
  | Unlink { nth; k } ->
      Codec.w_int b 5;
      Codec.w_int b nth;
      Codec.w_int b k
  | Bg_arrive { entry; at } ->
      Codec.w_int b 6;
      Codec.w_int b entry;
      Codec.w_int b at

let r_host_event r =
  match Codec.r_int r with
  | 0 -> Kill { nth = Codec.r_int r }
  | 1 ->
      let nth = Codec.r_int r in
      let alias = Codec.r_bool r in
      Pre_fault { nth; alias }
  | 2 -> Spoof { nth = Codec.r_int r }
  | 3 -> Flush { nth = Codec.r_int r }
  | 4 -> Evict { nth = Codec.r_int r }
  | 5 ->
      let nth = Codec.r_int r in
      let k = Codec.r_int r in
      Unlink { nth; k }
  | 6 ->
      let entry = Codec.r_int r in
      let at = Codec.r_int r in
      Bg_arrive { entry; at }
  | k -> Codec.corrupt "journal: unknown host-event tag %d" k

let to_string (t : t) =
  let meta = Codec.writer () in
  Codec.w_string meta t.label;
  Codec.w_opt meta Codec.w_string t.arch_hex;
  Codec.w_opt meta Codec.w_string t.strict_hex;
  let conf = Codec.writer () in
  Stable.w_config conf t.cfg;
  let gevt = Codec.writer () in
  Codec.w_list gevt w_guest_event t.guest;
  let hevt = Codec.writer () in
  Codec.w_list hevt w_host_event t.host;
  Codec.write_container ~kind ~version
    [
      ("META", Codec.contents meta);
      ("CONF", Codec.contents conf);
      ("GEVT", Codec.contents gevt);
      ("HEVT", Codec.contents hevt);
    ]

let of_string data : t =
  let sections = Codec.read_container ~kind ~version data in
  let sec tag = Codec.reader ~ctx:("journal section " ^ tag) (Codec.section sections tag) in
  let meta = sec "META" in
  let label = Codec.r_string meta in
  let arch_hex = Codec.r_opt meta Codec.r_string in
  let strict_hex = Codec.r_opt meta Codec.r_string in
  Codec.r_end meta;
  let conf = sec "CONF" in
  let cfg = Stable.r_config conf in
  Codec.r_end conf;
  let gevt = sec "GEVT" in
  let guest = Codec.r_list gevt r_guest_event in
  Codec.r_end gevt;
  let hevt = sec "HEVT" in
  let host = Codec.r_list hevt r_host_event in
  Codec.r_end hevt;
  { label; cfg; guest; host; arch_hex; strict_hex }

let save path t = Codec.write_file path (to_string t)
let load path : t = of_string (Codec.read_file path)
