(** Stable codecs for the core record types.

    Field-by-field encoders/decoders over {!Codec} with a fixed field
    order, replacing every [Marshal]-based digest in the tree: the byte
    image of a [Config]/[Stats]/[Perf]/[Policy] value is defined by this
    module alone, so fingerprints are format-versioned rather than
    OCaml-compiler-versioned, and snapshot images interoperate across
    builds.

    Changing any record layout requires updating the matching codec here
    *and* bumping the container version of the images that embed it
    ({!Snapshot.version} / {!Journal.version}) — the decoders read
    exactly as many fields as the encoders wrote, so skew shows up as a
    [Codec.Corrupt] rather than silent misinterpretation. *)

(* ------------------------------------------------------------------ *)
(* Config                                                              *)
(* ------------------------------------------------------------------ *)

let w_config b (c : Cms.Config.t) =
  let open Cms.Config in
  Codec.w_bool b c.enable_reorder;
  Codec.w_bool b c.enable_alias_hw;
  Codec.w_bool b c.enable_fine_grain;
  Codec.w_bool b c.enable_chaining;
  Codec.w_bool b c.enable_self_reval;
  Codec.w_bool b c.enable_self_check;
  Codec.w_bool b c.enable_stylized;
  Codec.w_bool b c.enable_groups;
  Codec.w_bool b c.force_self_check;
  Codec.w_int b c.translate_threshold;
  Codec.w_int b c.max_region_insns;
  Codec.w_int b c.unroll_limit;
  Codec.w_int b c.alias_slots;
  Codec.w_int b c.sbuf_capacity;
  Codec.w_int b c.fg_capacity;
  Codec.w_int b c.tcache_capacity;
  Codec.w_int b c.spec_fault_limit;
  Codec.w_int b c.genuine_fault_limit;
  Codec.w_int b c.smc_false_limit;
  Codec.w_int b c.adapt_capacity;
  Codec.w_int b c.demote_limit;
  Codec.w_int b c.quarantine_limit;
  Codec.w_int b c.translate_fail_limit;
  Codec.w_int b c.stall_limit;
  Codec.w_int b c.interp_cost;
  Codec.w_int b c.translate_cost;
  Codec.w_int b c.rollback_cost;
  Codec.w_int b c.lookup_cost;
  Codec.w_int b c.fault_handler_cost;
  Codec.w_int b c.fg_install_cost;
  Codec.w_int b c.reval_cost_per_byte;
  Codec.w_bool b c.host_fast_paths;
  Codec.w_bool b c.validate_molecules;
  Codec.w_bool b c.enforce_latency;
  Codec.w_bool b c.verify_translations;
  Codec.w_bool b c.closure_exec;
  Codec.w_bool b c.chain_exits;
  Codec.w_bool b c.background_translation;
  Codec.w_int b c.bg_queue_capacity

let r_config r : Cms.Config.t =
  let enable_reorder = Codec.r_bool r in
  let enable_alias_hw = Codec.r_bool r in
  let enable_fine_grain = Codec.r_bool r in
  let enable_chaining = Codec.r_bool r in
  let enable_self_reval = Codec.r_bool r in
  let enable_self_check = Codec.r_bool r in
  let enable_stylized = Codec.r_bool r in
  let enable_groups = Codec.r_bool r in
  let force_self_check = Codec.r_bool r in
  let translate_threshold = Codec.r_int r in
  let max_region_insns = Codec.r_int r in
  let unroll_limit = Codec.r_int r in
  let alias_slots = Codec.r_int r in
  let sbuf_capacity = Codec.r_int r in
  let fg_capacity = Codec.r_int r in
  let tcache_capacity = Codec.r_int r in
  let spec_fault_limit = Codec.r_int r in
  let genuine_fault_limit = Codec.r_int r in
  let smc_false_limit = Codec.r_int r in
  let adapt_capacity = Codec.r_int r in
  let demote_limit = Codec.r_int r in
  let quarantine_limit = Codec.r_int r in
  let translate_fail_limit = Codec.r_int r in
  let stall_limit = Codec.r_int r in
  let interp_cost = Codec.r_int r in
  let translate_cost = Codec.r_int r in
  let rollback_cost = Codec.r_int r in
  let lookup_cost = Codec.r_int r in
  let fault_handler_cost = Codec.r_int r in
  let fg_install_cost = Codec.r_int r in
  let reval_cost_per_byte = Codec.r_int r in
  let host_fast_paths = Codec.r_bool r in
  let validate_molecules = Codec.r_bool r in
  let enforce_latency = Codec.r_bool r in
  let verify_translations = Codec.r_bool r in
  let closure_exec = Codec.r_bool r in
  let chain_exits = Codec.r_bool r in
  let background_translation = Codec.r_bool r in
  let bg_queue_capacity = Codec.r_int r in
  {
    Cms.Config.enable_reorder;
    enable_alias_hw;
    enable_fine_grain;
    enable_chaining;
    enable_self_reval;
    enable_self_check;
    enable_stylized;
    enable_groups;
    force_self_check;
    translate_threshold;
    max_region_insns;
    unroll_limit;
    alias_slots;
    sbuf_capacity;
    fg_capacity;
    tcache_capacity;
    spec_fault_limit;
    genuine_fault_limit;
    smc_false_limit;
    adapt_capacity;
    demote_limit;
    quarantine_limit;
    translate_fail_limit;
    stall_limit;
    interp_cost;
    translate_cost;
    rollback_cost;
    lookup_cost;
    fault_handler_cost;
    fg_install_cost;
    reval_cost_per_byte;
    host_fast_paths;
    validate_molecules;
    enforce_latency;
    verify_translations;
    closure_exec;
    chain_exits;
    background_translation;
    bg_queue_capacity;
  }

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let w_stats b (s : Cms.Stats.t) =
  let open Cms.Stats in
  Codec.w_int b s.x86_interp;
  Codec.w_int b s.x86_translated;
  Codec.w_int b s.translations;
  Codec.w_int b s.retranslations;
  Codec.w_int b s.invalidations;
  Codec.w_int b s.insns_translated;
  Codec.w_int b s.translated_atoms;
  Codec.w_int b s.translations_verified;
  Codec.w_int b s.spec_faults;
  Codec.w_int b s.genuine_faults;
  Codec.w_int b s.irq_delivered;
  Codec.w_int b s.irq_rollbacks;
  Codec.w_int b s.chain_patches;
  Codec.w_int b s.lookups;
  Codec.w_int b s.fault_entries;
  Codec.w_int b s.fg_installs;
  Codec.w_int b s.reval_checks;
  Codec.w_int b s.reval_hits;
  Codec.w_int b s.selfcheck_fails;
  Codec.w_int b s.group_hits;
  Codec.w_int b s.tcache_flushes;
  Codec.w_int b s.charged_molecules;
  Codec.w_int b s.containments;
  Codec.w_int b s.demotions;
  Codec.w_int b s.quarantines;
  Codec.w_int b s.quarantined_steps;
  Codec.w_int b s.progress_forces;
  Codec.w_int b s.tcache_evictions;
  Codec.w_int b s.tcache_evicted;
  Codec.w_int b s.adapt_evictions;
  Codec.w_int b s.tlb_hits;
  Codec.w_int b s.tlb_misses;
  Codec.w_int b s.dcache_hits;
  Codec.w_int b s.dcache_misses;
  Codec.w_int b s.dcache_invalidations;
  Codec.w_int b s.ram_fast_reads;
  Codec.w_int b s.ram_fast_writes;
  Codec.w_int b s.snapshots_written;
  Codec.w_int b s.snapshot_bytes;
  Codec.w_int b s.journal_events;
  Codec.w_int b s.resumes;
  Codec.w_int b s.aot_loaded;
  Codec.w_int b s.aot_rejected;
  Codec.w_int b s.aot_hits;
  Codec.w_int b s.aot_x86_retired;
  Codec.w_int b s.aot_invalidated;
  Codec.w_int b s.closures_compiled;
  Codec.w_int b s.chained_exits_taken;
  Codec.w_int b s.chain_unlinks_evict;
  Codec.w_int b s.chain_unlinks_demote;
  Codec.w_int b s.chain_unlinks_smc;
  Codec.w_int b s.chain_unlinks_aot;
  Codec.w_int b s.chain_unlinks_chaos;
  Codec.w_int b s.bg_enqueued;
  Codec.w_int b s.bg_prefetched;
  Codec.w_int b s.bg_deduped;
  Codec.w_int b s.bg_dropped;
  Codec.w_int b s.bg_compiled;
  Codec.w_int b s.bg_installed;
  Codec.w_int b s.bg_stale;
  Codec.w_int b s.bg_waits;
  Codec.w_int b s.bg_unready;
  Codec.w_int b s.bg_failed;
  Codec.w_int b s.bg_overlap_insns;
  Codec.w_int b s.irq_raised;
  Codec.w_int b s.irq_deferred;
  Codec.w_int b s.nic_rx_frames;
  Codec.w_int b s.nic_tx_frames;
  Codec.w_int b s.nic_rx_dropped;
  Codec.w_int b s.nic_irqs;
  Codec.w_int b s.nic_irq_coalesced;
  Codec.w_int b s.store_hits;
  Codec.w_int b s.store_misses;
  Codec.w_int b s.store_rejects;
  Codec.w_int b s.store_quarantines;
  Codec.w_int b s.store_published

let r_stats_into r (s : Cms.Stats.t) =
  let open Cms.Stats in
  s.x86_interp <- Codec.r_int r;
  s.x86_translated <- Codec.r_int r;
  s.translations <- Codec.r_int r;
  s.retranslations <- Codec.r_int r;
  s.invalidations <- Codec.r_int r;
  s.insns_translated <- Codec.r_int r;
  s.translated_atoms <- Codec.r_int r;
  s.translations_verified <- Codec.r_int r;
  s.spec_faults <- Codec.r_int r;
  s.genuine_faults <- Codec.r_int r;
  s.irq_delivered <- Codec.r_int r;
  s.irq_rollbacks <- Codec.r_int r;
  s.chain_patches <- Codec.r_int r;
  s.lookups <- Codec.r_int r;
  s.fault_entries <- Codec.r_int r;
  s.fg_installs <- Codec.r_int r;
  s.reval_checks <- Codec.r_int r;
  s.reval_hits <- Codec.r_int r;
  s.selfcheck_fails <- Codec.r_int r;
  s.group_hits <- Codec.r_int r;
  s.tcache_flushes <- Codec.r_int r;
  s.charged_molecules <- Codec.r_int r;
  s.containments <- Codec.r_int r;
  s.demotions <- Codec.r_int r;
  s.quarantines <- Codec.r_int r;
  s.quarantined_steps <- Codec.r_int r;
  s.progress_forces <- Codec.r_int r;
  s.tcache_evictions <- Codec.r_int r;
  s.tcache_evicted <- Codec.r_int r;
  s.adapt_evictions <- Codec.r_int r;
  s.tlb_hits <- Codec.r_int r;
  s.tlb_misses <- Codec.r_int r;
  s.dcache_hits <- Codec.r_int r;
  s.dcache_misses <- Codec.r_int r;
  s.dcache_invalidations <- Codec.r_int r;
  s.ram_fast_reads <- Codec.r_int r;
  s.ram_fast_writes <- Codec.r_int r;
  s.snapshots_written <- Codec.r_int r;
  s.snapshot_bytes <- Codec.r_int r;
  s.journal_events <- Codec.r_int r;
  s.resumes <- Codec.r_int r;
  s.aot_loaded <- Codec.r_int r;
  s.aot_rejected <- Codec.r_int r;
  s.aot_hits <- Codec.r_int r;
  s.aot_x86_retired <- Codec.r_int r;
  s.aot_invalidated <- Codec.r_int r;
  s.closures_compiled <- Codec.r_int r;
  s.chained_exits_taken <- Codec.r_int r;
  s.chain_unlinks_evict <- Codec.r_int r;
  s.chain_unlinks_demote <- Codec.r_int r;
  s.chain_unlinks_smc <- Codec.r_int r;
  s.chain_unlinks_aot <- Codec.r_int r;
  s.chain_unlinks_chaos <- Codec.r_int r;
  s.bg_enqueued <- Codec.r_int r;
  s.bg_prefetched <- Codec.r_int r;
  s.bg_deduped <- Codec.r_int r;
  s.bg_dropped <- Codec.r_int r;
  s.bg_compiled <- Codec.r_int r;
  s.bg_installed <- Codec.r_int r;
  s.bg_stale <- Codec.r_int r;
  s.bg_waits <- Codec.r_int r;
  s.bg_unready <- Codec.r_int r;
  s.bg_failed <- Codec.r_int r;
  s.bg_overlap_insns <- Codec.r_int r;
  s.irq_raised <- Codec.r_int r;
  s.irq_deferred <- Codec.r_int r;
  s.nic_rx_frames <- Codec.r_int r;
  s.nic_tx_frames <- Codec.r_int r;
  s.nic_rx_dropped <- Codec.r_int r;
  s.nic_irqs <- Codec.r_int r;
  s.nic_irq_coalesced <- Codec.r_int r;
  s.store_hits <- Codec.r_int r;
  s.store_misses <- Codec.r_int r;
  s.store_rejects <- Codec.r_int r;
  s.store_quarantines <- Codec.r_int r;
  s.store_published <- Codec.r_int r

(* ------------------------------------------------------------------ *)
(* Vliw.Perf                                                           *)
(* ------------------------------------------------------------------ *)

let w_perf b (p : Vliw.Perf.t) =
  let open Vliw.Perf in
  Codec.w_int b p.molecules;
  Codec.w_int b p.atoms;
  Codec.w_int b p.nops;
  Codec.w_int b p.loads;
  Codec.w_int b p.stores;
  Codec.w_int b p.commits;
  Codec.w_int b p.x86_committed;
  Codec.w_int b p.rollbacks;
  Codec.w_int b p.exits_taken;
  Codec.w_int b p.x86_fault_atoms;
  Codec.w_int b p.alias_faults;
  Codec.w_int b p.mmio_spec_faults;
  Codec.w_int b p.smc_faults;
  Codec.w_int b p.sbuf_overflows;
  Codec.w_int b p.interrupts_taken

let r_perf_into r (p : Vliw.Perf.t) =
  let open Vliw.Perf in
  p.molecules <- Codec.r_int r;
  p.atoms <- Codec.r_int r;
  p.nops <- Codec.r_int r;
  p.loads <- Codec.r_int r;
  p.stores <- Codec.r_int r;
  p.commits <- Codec.r_int r;
  p.x86_committed <- Codec.r_int r;
  p.rollbacks <- Codec.r_int r;
  p.exits_taken <- Codec.r_int r;
  p.x86_fault_atoms <- Codec.r_int r;
  p.alias_faults <- Codec.r_int r;
  p.mmio_spec_faults <- Codec.r_int r;
  p.smc_faults <- Codec.r_int r;
  p.sbuf_overflows <- Codec.r_int r;
  p.interrupts_taken <- Codec.r_int r

(* ------------------------------------------------------------------ *)
(* Policy                                                              *)
(* ------------------------------------------------------------------ *)

(* [ISet] elements are written sorted ascending ([ISet.elements]), so
   equal sets give equal bytes regardless of internal tree shape. *)
let w_policy b (p : Cms.Policy.t) =
  let open Cms.Policy in
  Codec.w_bool b p.no_reorder;
  Codec.w_bool b p.no_alias;
  Codec.w_int b p.max_insns;
  Codec.w_int b p.unroll;
  Codec.w_bool b p.self_check;
  Codec.w_bool b p.self_reval;
  Codec.w_bool b p.interp_only;
  Codec.w_list b Codec.w_int (ISet.elements p.interp_insns);
  Codec.w_list b Codec.w_int (ISet.elements p.stylized_imms)

let r_policy r : Cms.Policy.t =
  let no_reorder = Codec.r_bool r in
  let no_alias = Codec.r_bool r in
  let max_insns = Codec.r_int r in
  let unroll = Codec.r_int r in
  let self_check = Codec.r_bool r in
  let self_reval = Codec.r_bool r in
  let interp_only = Codec.r_bool r in
  let interp_insns =
    Cms.Policy.ISet.of_list (Codec.r_list r Codec.r_int)
  in
  let stylized_imms =
    Cms.Policy.ISet.of_list (Codec.r_list r Codec.r_int)
  in
  {
    Cms.Policy.no_reorder;
    no_alias;
    max_insns;
    unroll;
    self_check;
    self_reval;
    interp_only;
    interp_insns;
    stylized_imms;
  }
