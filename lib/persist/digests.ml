(** Stable state digests for differential comparison.

    Two granularities, shared by the fuzzer's oracles, the soak drill
    and the record-replay verifier:

    - {!arch}: the cross-configuration *architectural* state — GPRs,
      EIP, architectural EFLAGS, a physical-memory digest (with caller-
      chosen masked ranges, e.g. dead stack bytes), MMIO/port access
      counts, UART output and the frame-buffer checksum.
    - {!strict}: everything the host-fast-path differential compares —
      the architectural state plus full {!Cms.Stats} (host-cache and
      persist counters normalized to zero), molecule and retired counts,
      SMC/protection event counters and the whole {!Vliw.Perf} record.

    All digests go through {!Stable}'s codecs, never [Marshal], so they
    are compiler-version-independent. *)

type arch = {
  gprs : int list;
  eip : int;
  eflags : int;
  mem : Digest.t;
  mmio_reads : int;
  mmio_writes : int;
  port_ops : int;
  uart : string;
  fb : int;
}

(** Digest of physical memory with [mask] byte ranges ([lo, hi)
    exclusive) zeroed first. *)
let mem_digest ?(mask = []) (c : Cms.t) =
  let m = Cms.mem c in
  let data = m.Machine.Mem.phys.Machine.Phys.data in
  match mask with
  | [] -> Digest.bytes data
  | _ ->
      let d = Bytes.copy data in
      List.iter (fun (lo, hi) -> Bytes.fill d lo (hi - lo) '\x00') mask;
      Digest.bytes d

let arch ?mask (c : Cms.t) =
  let m = Cms.mem c in
  let bus = m.Machine.Mem.bus in
  {
    gprs = List.map (Cms.gpr c) X86.Regs.all;
    eip = Cms.eip c;
    eflags = Cms.eflags c;
    mem = mem_digest ?mask c;
    mmio_reads = bus.Machine.Bus.mmio_reads;
    mmio_writes = bus.Machine.Bus.mmio_writes;
    port_ops = bus.Machine.Bus.port_ops;
    uart = Cms.uart_output c;
    fb = Machine.Framebuf.checksum (Cms.platform c).Machine.Platform.fb;
  }

(** Which fields of two architectural states differ (for divergence
    reports). *)
let arch_diff x y =
  let d = ref [] in
  let add fmt = Format.kasprintf (fun s -> d := s :: !d) fmt in
  List.iteri
    (fun i (a, b) ->
      if a <> b then add "%s=%#x/%#x" X86.Regs.name32.(i) a b)
    (List.combine x.gprs y.gprs);
  if x.eip <> y.eip then add "eip=%#x/%#x" x.eip y.eip;
  if x.eflags <> y.eflags then add "eflags=%#x/%#x" x.eflags y.eflags;
  if x.mem <> y.mem then add "mem";
  if x.mmio_reads <> y.mmio_reads then
    add "mmio_reads=%d/%d" x.mmio_reads y.mmio_reads;
  if x.mmio_writes <> y.mmio_writes then
    add "mmio_writes=%d/%d" x.mmio_writes y.mmio_writes;
  if x.port_ops <> y.port_ops then add "port_ops=%d/%d" x.port_ops y.port_ops;
  if x.uart <> y.uart then add "uart";
  if x.fb <> y.fb then add "fb=%d/%d" x.fb y.fb;
  String.concat " " (List.rev !d)

let w_arch b (a : arch) =
  Codec.w_list b Codec.w_int a.gprs;
  Codec.w_int b a.eip;
  Codec.w_int b a.eflags;
  Codec.w_string b a.mem;
  Codec.w_int b a.mmio_reads;
  Codec.w_int b a.mmio_writes;
  Codec.w_int b a.port_ops;
  Codec.w_string b a.uart;
  Codec.w_int b a.fb

let r_arch r : arch =
  let gprs = Codec.r_list r Codec.r_int in
  let eip = Codec.r_int r in
  let eflags = Codec.r_int r in
  let mem = Codec.r_string r in
  let mmio_reads = Codec.r_int r in
  let mmio_writes = Codec.r_int r in
  let port_ops = Codec.r_int r in
  let uart = Codec.r_string r in
  let fb = Codec.r_int r in
  { gprs; eip; eflags; mem; mmio_reads; mmio_writes; port_ops; uart; fb }

(** Hex fingerprint of an architectural state (for journals and
    human-readable reports). *)
let arch_hex (a : arch) =
  let b = Codec.writer () in
  w_arch b a;
  Digest.to_hex (Digest.string (Codec.contents b))

(* Host-side counters that legitimately differ across equivalent runs
   (fast paths on/off, resumed vs uninterrupted) are normalized to zero
   before digesting. *)
let normalized_stats (s : Cms.Stats.t) =
  {
    s with
    Cms.Stats.tlb_hits = 0;
    tlb_misses = 0;
    dcache_hits = 0;
    dcache_misses = 0;
    dcache_invalidations = 0;
    ram_fast_reads = 0;
    ram_fast_writes = 0;
    snapshots_written = 0;
    snapshot_bytes = 0;
    journal_events = 0;
    resumes = 0;
    aot_loaded = 0;
    aot_rejected = 0;
    aot_hits = 0;
    aot_x86_retired = 0;
    aot_invalidated = 0;
    (* the steady-state tier is observationally invisible; its own
       bookkeeping legitimately differs across closure/chaining
       on-off-equivalent runs *)
    closures_compiled = 0;
    chained_exits_taken = 0;
    chain_unlinks_evict = 0;
    chain_unlinks_demote = 0;
    chain_unlinks_smc = 0;
    chain_unlinks_aot = 0;
    chain_unlinks_chaos = 0;
    (* background translation is a wall-clock accelerator: its queue
       and install counters depend on worker-domain timing (and are
       zero with the feature off), while the architectural schedule
       does not — the bg-on/bg-off differential relies on exactly
       this normalization *)
    bg_enqueued = 0;
    bg_prefetched = 0;
    bg_deduped = 0;
    bg_dropped = 0;
    bg_compiled = 0;
    bg_installed = 0;
    bg_stale = 0;
    bg_waits = 0;
    bg_unready = 0;
    bg_failed = 0;
    bg_overlap_insns = 0;
    (* the shared store is a fleet-level accelerator: hit/miss patterns
       depend on which machine published first (worker-domain and shard
       scheduling), never on the architectural schedule *)
    store_hits = 0;
    store_misses = 0;
    store_rejects = 0;
    store_quarantines = 0;
    store_published = 0;
  }

(** The strict digest (see module doc). *)
let strict ?mask (c : Cms.t) : Digest.t =
  let b = Codec.writer () in
  w_arch b (arch ?mask c);
  Stable.w_stats b (normalized_stats (Cms.stats c));
  Codec.w_int b (Cms.total_molecules c);
  Codec.w_int b (Cms.retired c);
  let m = Cms.mem c in
  Codec.w_int b m.Machine.Mem.smc_events;
  Codec.w_int b m.Machine.Mem.page_prot_faults;
  Codec.w_int b m.Machine.Mem.dma_smc_events;
  Stable.w_perf b (Cms.perf c);
  Digest.string (Codec.contents b)

let strict_hex d = Digest.to_hex d
