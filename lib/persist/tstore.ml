(** The fleet's shared translation store: validate-before-trust.

    N guest machines running the same workload image feed and drink
    from one store of verified translations, so machine #1000 starts
    warm from translations minted by machine #1.  The store never
    trusts anything by construction:

    - Entries are *serialized blobs*, not shared mutable values.  A
      consumer that hits deserializes a private copy (fresh molecules,
      fresh exit records, [Unchained] chain state), so no machine ever
      holds a reference into another machine's translation — SMC,
      chaining, or plain memory corruption on the publisher cannot
      reach a consumer retroactively.
    - The key is the canonical compile input: entry address, MD5 of the
      region's source bytes, MD5 of the serialized policy.  A machine
      whose code bytes drifted (SMC) simply never matches the key.
    - Every blob carries its own MD5; every lookup re-checks it, and
      the decoded payload is revalidated structurally (instructions
      re-decoded from the blob's own source bytes, region shape
      compared against the consumer's canonical selection, molecule
      verifier re-run) before install.
    - A key whose blob ever fails any of those checks is *poisoned*:
      entered on a fleet-wide quarantine list exactly once, its entry
      removed, and every later consumer skips it without revalidating
      — falling back to its private translator.

    Publishing is mediated by {!publish} under the store lock;
    persistence uses the stable container codec (kind TSTO) and an
    atomic temp-file + rename, so a killed publisher can never leave a
    torn image for consumers. *)

exception Untrusted of string
(** raised by consume-side validation helpers; callers poison the key *)

let untrusted fmt = Format.kasprintf (fun s -> raise (Untrusted s)) fmt

let kind = "TSTO"
let version = 1

(* ------------------------------------------------------------------ *)
(* Payload codec                                                       *)
(* ------------------------------------------------------------------ *)

(* The wire payload reuses the AOT translation codec (PR 6): region
   shape minus the instructions (re-decoded at consume time from the
   payload's own source bytes), policy, source bytes, scheduled code —
   plus the two compile outputs the AOT image does not need: the
   page-protection mode and whether the translation keeps its snapshot
   (self-check / self-reval policies). *)
type payload = {
  tran : Aot.tran;
  unprotected : bool;
  keep_snapshot : bool;
}

let w_payload b (p : payload) =
  Aot.w_tran b p.tran;
  Codec.w_bool b p.unprotected;
  Codec.w_bool b p.keep_snapshot

let r_payload r : payload =
  let tran = Aot.r_tran r in
  let unprotected = Codec.r_bool r in
  let keep_snapshot = Codec.r_bool r in
  { tran; unprotected; keep_snapshot }

(* ------------------------------------------------------------------ *)
(* Keys                                                                *)
(* ------------------------------------------------------------------ *)

let policy_digest (p : Cms.Policy.t) =
  let b = Codec.writer () in
  Stable.w_policy b p;
  Digest.string (Codec.contents b)

(** The canonical compile input, rendered printable for forensics. *)
let key ~entry ~(bytes : Bytes.t) ~(policy : Cms.Policy.t) =
  Printf.sprintf "%x:%s:%s" entry
    (Digest.to_hex (Digest.bytes bytes))
    (Digest.to_hex (policy_digest policy))

(* ------------------------------------------------------------------ *)
(* The store                                                           *)
(* ------------------------------------------------------------------ *)

type entry = { blob : string; sum : Digest.t  (** MD5 of [blob] *) }

type t = {
  lock : Mutex.t;
  entries : (string, entry) Hashtbl.t;
  poisoned : (string, string) Hashtbl.t;  (** key -> first failure *)
  mutable publishes : int;  (** entries accepted *)
  mutable dup_publishes : int;  (** publish attempts finding a live entry *)
  mutable refused_publishes : int;  (** publisher-side verifier refusals *)
}

let create () =
  {
    lock = Mutex.create ();
    entries = Hashtbl.create 256;
    poisoned = Hashtbl.create 16;
    publishes = 0;
    dup_publishes = 0;
    refused_publishes = 0;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let size t = locked t (fun () -> Hashtbl.length t.entries)
let poisoned_count t = locked t (fun () -> Hashtbl.length t.poisoned)

(** Count a publisher-side verifier refusal (nothing entered the store). *)
let note_refused t =
  locked t (fun () -> t.refused_publishes <- t.refused_publishes + 1)

(** Accept [blob] for [key] unless the key is live or poisoned.
    Returns [true] when the entry was stored. *)
let publish t ~key:k ~blob =
  locked t (fun () ->
      if Hashtbl.mem t.poisoned k then false
      else if Hashtbl.mem t.entries k then begin
        t.dup_publishes <- t.dup_publishes + 1;
        false
      end
      else begin
        Hashtbl.replace t.entries k { blob; sum = Digest.string blob };
        t.publishes <- t.publishes + 1;
        true
      end)

type hit = Hit of entry | Poisoned | Miss

let lookup t k =
  locked t (fun () ->
      if Hashtbl.mem t.poisoned k then Poisoned
      else match Hashtbl.find_opt t.entries k with
        | Some e -> Hit e
        | None -> Miss)

(** Quarantine [key] fleet-wide: remove its entry and record the first
    failure reason.  Returns [true] only for the first poisoning of the
    key — the "exactly once" the quarantine counters are built on. *)
let poison t ~key:k ~reason =
  locked t (fun () ->
      Hashtbl.remove t.entries k;
      if Hashtbl.mem t.poisoned k then false
      else begin
        Hashtbl.replace t.poisoned k reason;
        true
      end)

let poison_reason t k = locked t (fun () -> Hashtbl.find_opt t.poisoned k)

(* ------------------------------------------------------------------ *)
(* Compile-result conversion                                           *)
(* ------------------------------------------------------------------ *)

let follow_code = function
  | Cms.Region.FNext -> 0
  | Cms.Region.FTarget -> 1
  | Cms.Region.FEnd -> 2

(** Serialize a freshly compiled translation into a (key, blob) pair.
    [bytes] must be the source snapshot the compile consumed — it is
    both the key material and the bytes consumers re-decode from. *)
let encode ~entry ~(region : Cms.Region.t) ~(policy : Cms.Policy.t)
    ~(bytes : Bytes.t) ~(compiled : Cms.Codegen.compiled) =
  let insns =
    Array.to_list region.Cms.Region.insns
    |> List.map (fun (i : Cms.Region.insn_info) ->
           {
             Aot.addr = i.Cms.Region.addr;
             len = i.Cms.Region.len;
             follow = follow_code i.Cms.Region.follow;
             loops = i.Cms.Region.loops;
             imm32_addr = i.Cms.Region.imm32_addr;
           })
  in
  let p =
    {
      tran =
        {
          Aot.tentry = entry;
          policy;
          cont = region.Cms.Region.cont;
          src_ranges = region.Cms.Region.src_ranges;
          insns;
          snapshot = bytes;
          code = compiled.Cms.Codegen.code;
        };
      unprotected = compiled.Cms.Codegen.unprotected;
      keep_snapshot = Option.is_some compiled.Cms.Codegen.snapshot;
    }
  in
  let b = Codec.writer () in
  w_payload b p;
  (key ~entry ~bytes ~policy, Codec.contents b)

(* A decoded store hit carries no optimizer statistics of its own. *)
let no_opt_stats =
  {
    Cms.Opt.items = [];
    removed = 0;
    flags_retargeted = 0;
    folded = 0;
    loads_eliminated = 0;
  }

(** Decode and fully revalidate a store entry against the consumer's
    canonical compile inputs.  Raises {!Untrusted} on any defect:
    blob digest mismatch, codec corruption, trailing bytes, key-field
    drift, region-shape drift, structurally invalid code, or a
    molecule-verifier diagnostic.  On success the returned translation
    is a private copy, bit-independent of every other machine's. *)
let decode_validated ~(cfg : Cms.Config.t) ~entry ~(region : Cms.Region.t)
    ~(policy : Cms.Policy.t) ~(bytes : Bytes.t) (e : entry) :
    Cms.Codegen.compiled =
  if Digest.string e.blob <> e.sum then
    untrusted "entry %#x: blob digest mismatch (store corruption)" entry;
  let p =
    try
      let r = Codec.reader e.blob in
      let p = r_payload r in
      Codec.r_end r;
      p
    with Codec.Corrupt m -> untrusted "entry %#x: %s" entry m
  in
  let t = p.tran in
  if t.Aot.tentry <> entry then
    untrusted "entry %#x: blob is for entry %#x" entry t.Aot.tentry;
  if not (Cms.Policy.equal t.Aot.policy policy) then
    untrusted "entry %#x: policy drift" entry;
  if not (Bytes.equal t.Aot.snapshot bytes) then
    untrusted "entry %#x: source bytes differ from the live code" entry;
  (* Rebuild the region from the wire shape, re-decoding every
     instruction from the digest-validated source bytes, and require
     it to equal the consumer's own canonical selection — a store hit
     must be exactly the translation this machine would have compiled. *)
  let rebuilt =
    try Aot.region_of_tran t with
    | Codec.Corrupt m -> untrusted "entry %#x: %s" entry m
    | X86.Exn.Fault _ -> untrusted "entry %#x: undecodable source bytes" entry
  in
  if not (Cms.Region.equal rebuilt region) then
    untrusted "entry %#x: region shape drift" entry;
  (match Vliw.Code.validate t.Aot.code with
  | Ok () -> ()
  | Error m -> untrusted "entry %#x: invalid code: %s" entry m);
  (* Consumer-side verification is mandatory: the molecule verifier
     runs on every store hit regardless of [verify_translations] —
     distrusting the store costs one static walk, trusting a poisoned
     molecule costs the machine. *)
  (match !Cms.Codegen.verify_hook with
  | None -> untrusted "entry %#x: no verifier installed" entry
  | Some v -> (
      match
        v.Cms.Codegen.verify_code ~cfg ~entry
          ~ninsns:(Cms.Region.instruction_count region)
          t.Aot.code
      with
      | [] -> ()
      | diags ->
          untrusted "entry %#x: verifier: %s" entry (String.concat "; " diags)));
  {
    Cms.Codegen.code = t.Aot.code;
    snapshot = (if p.keep_snapshot then Some t.Aot.snapshot else None);
    opt_stats = no_opt_stats;
    unprotected = p.unprotected;
  }

(* ------------------------------------------------------------------ *)
(* Persistence                                                         *)
(* ------------------------------------------------------------------ *)

let to_string t =
  locked t (fun () ->
      let entries =
        Hashtbl.fold (fun k e acc -> (k, e) :: acc) t.entries []
        |> List.sort (fun (a, _) (b, _) -> compare a b)
      in
      let poisoned =
        Hashtbl.fold (fun k m acc -> (k, m) :: acc) t.poisoned []
        |> List.sort (fun (a, _) (b, _) -> compare a b)
      in
      let ents = Codec.writer () in
      Codec.w_list ents
        (fun b (k, e) ->
          Codec.w_string b k;
          Codec.w_string b e.blob;
          Codec.w_string b e.sum)
        entries;
      let pois = Codec.writer () in
      Codec.w_list pois
        (fun b (k, m) ->
          Codec.w_string b k;
          Codec.w_string b m)
        poisoned;
      Codec.write_container ~kind ~version
        [ ("ENTS", Codec.contents ents); ("POIS", Codec.contents pois) ])

let of_string data =
  let sections = Codec.read_container ~kind ~version data in
  let t = create () in
  let sec tag =
    Codec.reader ~ctx:("tstore section " ^ tag) (Codec.section sections tag)
  in
  let r = sec "ENTS" in
  let entries =
    Codec.r_list r (fun r ->
        let k = Codec.r_string r in
        let blob = Codec.r_string r in
        let sum = Codec.r_string r in
        (k, blob, sum))
  in
  Codec.r_end r;
  let r = sec "POIS" in
  let poisoned =
    Codec.r_list r (fun r ->
        let k = Codec.r_string r in
        let m = Codec.r_string r in
        (k, m))
  in
  Codec.r_end r;
  List.iter
    (fun (k, blob, sum) ->
      if Digest.string blob <> sum then
        Codec.corrupt "tstore: entry %s: blob digest mismatch" k;
      Hashtbl.replace t.entries k { blob; sum })
    entries;
  List.iter (fun (k, m) -> Hashtbl.replace t.poisoned k m) poisoned;
  t

(** Atomic publish of the whole store image: the bytes land in
    [path ^ ".tmp"] first and only a successful, flushed write is
    renamed over [path] — a consumer can observe the old image or the
    new one, never a torn one. *)
let save path t =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     output_string oc (to_string t);
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

let load path = of_string (Codec.read_file path)
