(** The kill-and-resume soak drill.

    Runs a workload twice: once uninterrupted (the oracle), and once
    chopped into segments — run a slice, capture a snapshot at the
    commit boundary, throw the whole machine away, restore from the
    image, continue — then differentially compares the final states.
    This is the end-to-end proof that snapshots capture everything that
    matters: any state a snapshot misses shows up as a divergence.

    What must match is configuration-dependent.  GPRs, EIP,
    architectural EFLAGS, UART output and the frame-buffer checksum are
    functions of the retired-instruction clock and always compared.
    Timer-driven state is a function of the *molecule* clock, and a
    resumed run — restarting with a cold translation cache — consumes a
    different number of molecules to retire the same instructions, so
    timer workloads legitimately differ in jiffy counts, stale stack
    bytes from differently-timed handler frames, and device-poll
    iteration counts.  Callers pass [compare_mem:false] for those (the
    suite's [uses_timer] flag). *)

type result = {
  resumes : int;  (** restore cycles performed *)
  snapshots : int;  (** snapshots captured *)
  snapshot_bytes : int;  (** total image bytes written *)
  oracle_stop : Cms.Engine.stop;
  soak_stop : Cms.Engine.stop;
  mismatches : string list;  (** empty = drill passed *)
}

let ok r = r.mismatches = []

let pp_stop ppf (s : Cms.Engine.stop) =
  match s with
  | Cms.Engine.Halted -> Fmt.string ppf "halted"
  | Cms.Engine.Insn_limit -> Fmt.string ppf "insn-limit"

(* Compare the two final machines; the mem digest and bus counters only
   when the workload is molecule-clock-independent. *)
let compare_final ~compare_mem (oracle : Cms.t) (soaked : Cms.t) =
  let d = ref [] in
  let add fmt = Format.kasprintf (fun s -> d := s :: !d) fmt in
  List.iter
    (fun r ->
      let a = Cms.gpr oracle r and b = Cms.gpr soaked r in
      if a <> b then add "%s=%#x/%#x" X86.Regs.name32.(r) a b)
    X86.Regs.all;
  if Cms.eip oracle <> Cms.eip soaked then
    add "eip=%#x/%#x" (Cms.eip oracle) (Cms.eip soaked);
  if Cms.eflags oracle <> Cms.eflags soaked then
    add "eflags=%#x/%#x" (Cms.eflags oracle) (Cms.eflags soaked);
  if Cms.uart_output oracle <> Cms.uart_output soaked then add "uart";
  let fb c = Machine.Framebuf.checksum (Cms.platform c).Machine.Platform.fb in
  if fb oracle <> fb soaked then add "fb=%d/%d" (fb oracle) (fb soaked);
  if compare_mem then begin
    if Digests.mem_digest oracle <> Digests.mem_digest soaked then add "mem";
    let bus c = (Cms.mem c).Machine.Mem.bus in
    let bo = bus oracle and bs = bus soaked in
    if bo.Machine.Bus.mmio_reads <> bs.Machine.Bus.mmio_reads then
      add "mmio_reads=%d/%d" bo.Machine.Bus.mmio_reads bs.Machine.Bus.mmio_reads;
    if bo.Machine.Bus.mmio_writes <> bs.Machine.Bus.mmio_writes then
      add "mmio_writes=%d/%d" bo.Machine.Bus.mmio_writes
        bs.Machine.Bus.mmio_writes;
    if bo.Machine.Bus.port_ops <> bs.Machine.Bus.port_ops then
      add "port_ops=%d/%d" bo.Machine.Bus.port_ops bs.Machine.Bus.port_ops
  end;
  List.rev !d

(** Run the drill.  [make] builds a fresh, loaded, booted machine (not
    yet run); [max_insns] bounds both legs; [every] is the soak leg's
    segment length in retired instructions. *)
let drill ~(make : unit -> Cms.t) ~max_insns ~every ?(compare_mem = true) () =
  if every <= 0 then invalid_arg "Soak.drill: every must be positive";
  (* Oracle leg: one uninterrupted run. *)
  let oracle = make () in
  let oracle_stop = Cms.run ~max_insns oracle in
  (* Soak leg: run to an absolute retired-instruction target, snapshot,
     discard the machine, restore, repeat.  [max_insns] is an absolute
     bound on the retired clock, so targets carry across resumes. *)
  let resumes = ref 0 in
  let snapshots = ref 0 in
  let bytes = ref 0 in
  let rec go (c : Cms.t) target =
    let stop = Cms.run ~max_insns:(min target max_insns) c in
    if Cms.retired c >= max_insns || stop = Cms.Engine.Halted then (c, stop)
    else begin
      let image = Snapshot.capture ~label:"soak" c in
      incr snapshots;
      bytes := !bytes + String.length image;
      (* the old machine is dropped here: the restore must stand alone *)
      let c', _meta = Snapshot.restore image in
      incr resumes;
      go c' (target + every)
    end
  in
  let soaked, soak_stop = go (make ()) every in
  {
    resumes = !resumes;
    snapshots = !snapshots;
    snapshot_bytes = !bytes;
    oracle_stop;
    soak_stop;
    mismatches =
      (if oracle_stop <> soak_stop then
         [ Fmt.str "stop=%a/%a" pp_stop oracle_stop pp_stop soak_stop ]
       else [])
      @ compare_final ~compare_mem oracle soaked;
  }

let pp_result ppf r =
  if ok r then
    Fmt.pf ppf "ok (%d resumes, %d snapshots, %d bytes)" r.resumes r.snapshots
      r.snapshot_bytes
  else
    Fmt.pf ppf "DIVERGED after %d resumes: %s" r.resumes
      (String.concat " " r.mismatches)
