(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md experiment index), plus bechamel
   microbenchmarks of the core mechanisms.

     dune exec bench/main.exe            # everything
     dune exec bench/main.exe -- fig2    # one experiment
     dune exec bench/main.exe -- micro   # microbenchmarks only *)

module Experiments = Workloads.Experiments

let pr fmt = Fmt.pr fmt

let run_fig2 () = Experiments.pp_degradation
    ~title:"Figure 2: Degradation Caused by Suppressing Memory Reordering"
    Fmt.stdout (Experiments.fig2 ())

let run_fig3 () = Experiments.pp_degradation
    ~title:"Figure 3: Degradation Caused By No Alias Hardware"
    Fmt.stdout (Experiments.fig3 ())

let run_table1 () = Experiments.pp_table1 Fmt.stdout (Experiments.table1 ())

let run_selfcheck () =
  Experiments.pp_selfcheck Fmt.stdout (Experiments.selfcheck ())

let run_selfreval () =
  Experiments.pp_selfreval Fmt.stdout (Experiments.selfreval ())

let run_groups () = Experiments.pp_groups Fmt.stdout (Experiments.groups ())

let run_flow () = Experiments.pp_flow Fmt.stdout (Experiments.flow ())

let run_ablations () =
  Experiments.pp_sweep ~title:"translate threshold (026.compress)"
    ~param_name:"threshold" Fmt.stdout
    (Experiments.threshold_sweep ());
  Experiments.pp_sweep ~title:"max region size (047.tomcatv)"
    ~param_name:"insns" Fmt.stdout
    (Experiments.region_sweep ());
  Experiments.pp_sweep ~title:"alias slots (026.compress)"
    ~param_name:"slots" Fmt.stdout
    (Experiments.alias_slot_sweep ());
  Experiments.pp_sweep ~title:"chaining on/off (085.gcc)" ~param_name:"on"
    Fmt.stdout
    (Experiments.chaining_ablation ());
  Experiments.pp_sweep ~title:"store buffer capacity (Quattro Pro)"
    ~param_name:"entries" Fmt.stdout
    (Experiments.sbuf_sweep ())

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks                                            *)
(* ------------------------------------------------------------------ *)

let micro_tests () =
  let open Bechamel in
  (* commit / rollback cost (the §3.1 "commits are effectively free"
     claim, here in host-simulator nanoseconds) *)
  let mem = Machine.Mem.create ~ram_size:(1 lsl 20) () in
  Machine.Mmu.map_identity mem.Machine.Mem.mmu ~virt:0 ~pages:256
    ~writable:true;
  let exec = Vliw.Exec.create mem in
  let commit_bench =
    Test.make ~name:"commit"
      (Staged.stage (fun () -> Vliw.Exec.commit exec))
  in
  let rollback_bench =
    Test.make ~name:"rollback"
      (Staged.stage (fun () -> Vliw.Exec.rollback exec))
  in
  (* decoder throughput on a canned hot-loop byte string *)
  let listing =
    X86.Asm.(
      assemble ~base:0x1000
        [
          mov_ri ecx 16;
          label "l";
          add_ri eax 3;
          mov_rm ebx (mbd esi 4);
          dec_r ecx;
          jne "l";
          hlt;
        ])
  in
  let bytes = listing.X86.Asm.image in
  let fetch a = Char.code (Bytes.get bytes (a - 0x1000)) in
  let decode_bench =
    Test.make ~name:"decode-insn"
      (Staged.stage (fun () -> ignore (X86.Decode.decode ~fetch 0x1000)))
  in
  (* whole-pipeline translation of a representative region *)
  let translate_bench =
    Test.make ~name:"translate-region"
      (Staged.stage (fun () ->
           let c =
             Cms.create
               ~cfg:{ Cms.Config.default with Cms.Config.translate_threshold = 1 }
               ()
           in
           Cms.load c listing;
           Cms.boot c ~entry:0x1000;
           ignore (Cms.run ~max_insns:500 c)))
  in
  Test.make_grouped ~name:"cms"
    [ commit_bench; rollback_bench; decode_bench; translate_bench ]

let run_micro () =
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000
      ~quota:(Time.second 0.5)
      ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg instances (micro_tests ()) in
  let results = Analyze.all ols (List.hd instances) raw in
  pr "=== Microbenchmarks (host ns/op; Config's molecule cost model is@.";
  pr "    the guest analogue of these) ===@.";
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some [ est ] -> pr "  %-28s %10.1f ns/run@." name est
      | _ -> pr "  %-28s (no estimate)@." name)
    results

(* ------------------------------------------------------------------ *)
(* Steady-state execution-ladder wall-clock benchmark                  *)
(* ------------------------------------------------------------------ *)

(* One hot loop timed across the whole execution ladder, from the
   slowest tier (pure interpreter, host caching layers off) to the
   fastest (translated, closure-compiled, exits chained).  The body is
   a copy/accumulate kernel — mostly loads and stores, like memcpy or
   a checksum inner loop — so the software TLB / RAM fast path matter
   in the interpreter tiers and the store buffer and alias checks
   matter in the translated ones. *)
let hotpath_listing ~iters =
  (* Body offsets come from the fuzzer's deterministic splittable RNG
     (fixed seed, no global state), so every run — and every ladder
     tier — executes the identical access pattern while still touching
     a spread of cache lines rather than a hand-picked handful.  The
     body is long enough (48 insns) that, under the short region cap
     the translated tiers use, each iteration crosses several
     translation boundaries: the exits between them are exactly what
     chaining removes from the dispatcher. *)
  let rng = Cms_fuzz.Srng.create 0xbe7c4 in
  let off () = 0x8000 + (4 * Cms_fuzz.Srng.int rng 0x400) in
  let body =
    List.concat
      (List.init 12 (fun _ ->
           X86.Asm.
             [
               mov_rm eax (mbd esi (off ()));
               add_ri eax 1;
               mov_mr (mbd esi (off ())) eax;
               add_mi (mbd esi (off ())) 7;
             ]))
  in
  X86.Asm.(
    assemble ~base:0x1000
      ([ mov_ri ecx iters; label "l" ] @ body @ [ dec_r ecx; jne "l"; hlt ]))

(* The ladder, slowest first.  [translate = false] pins the
   interpreter ([translate_threshold = max_int]); the translated tiers
   use the default threshold so the loop reaches steady state almost
   immediately. *)
let hotpath_tiers =
  [
    ("interp, host caches off", false, false, false, false);
    ("interp, host caches on", false, true, false, false);
    ("translated, decoder tier", true, true, false, false);
    ("closures, unchained", true, true, true, false);
    ("closures, chained", true, true, true, true);
  ]

let hotpath_cfg ~translate ~fast ~closures ~chain =
  {
    Cms.Config.default with
    Cms.Config.translate_threshold =
      (if translate then Cms.Config.default.Cms.Config.translate_threshold
       else max_int);
    (* short regions so each loop iteration crosses several
       translation exits; identical across all translated tiers, so
       the ladder isolates the execution tier, not the region shape *)
    max_region_insns = 16;
    host_fast_paths = fast;
    closure_exec = closures;
    chain_exits = chain;
  }

let hotpath_run ~cfg ~iters =
  let c = Cms.create ~cfg () in
  Cms.load c (hotpath_listing ~iters);
  Cms.boot c ~entry:0x1000;
  let t0 = Sys.time () in
  ignore (Cms.run c);
  let dt = Sys.time () -. t0 in
  (dt, c)

let best_of n f =
  let best = ref infinity and last = ref None in
  for _ = 1 to n do
    let dt, c = f () in
    if dt < !best then best := dt;
    last := Some c
  done;
  (!best, Option.get !last)

(* Time every tier of the ladder (best of [reps], after a warmup) and
   cross-check that every tier retires the identical guest outcome.
   Returns [(name, seconds, machine)] rows, slowest tier first. *)
let hotpath_ladder ~iters ~reps =
  let rows =
    List.map
      (fun (name, translate, fast, closures, chain) ->
        let cfg = hotpath_cfg ~translate ~fast ~closures ~chain in
        (* decorrelate the tiers' heap state: without this, a tier
           inherits the previous tier's major heap and its timing
           drifts by tens of percent *)
        Gc.compact ();
        ignore (hotpath_run ~cfg ~iters:1_000);
        let dt, c = best_of reps (fun () -> hotpath_run ~cfg ~iters) in
        (name, dt, c))
      hotpath_tiers
  in
  (* every tier is observationally equivalent: identical guest
     outcome; the translated tiers additionally charge the identical
     cost model (closures and chain-following are invisible to it) *)
  let guest (_, _, c) =
    (Cms.retired c, Cms.gpr c X86.Regs.eax, Cms.eip c)
  in
  let base = List.hd rows in
  List.iter
    (fun row ->
      if guest row <> guest base then begin
        let name, _, _ = row in
        Fmt.epr "hotpath: tier %S diverged from the interpreter baseline!@."
          name;
        exit 1
      end)
    rows;
  (match List.filter (fun (_, tr, _, _, _) -> tr) hotpath_tiers with
  | _ :: _ ->
      let translated =
        List.filteri (fun i _ -> i >= 2) rows
        |> List.map (fun (n, _, c) -> (n, Cms.total_molecules c))
      in
      let _, m0 = List.hd translated in
      List.iter
        (fun (n, m) ->
          if m <> m0 then begin
            Fmt.epr "hotpath: tier %S changed the cost model (%d vs %d)!@." n m
              m0;
            exit 1
          end)
        translated
  | [] -> ());
  rows

let run_hotpath ~json () =
  let iters = 200_000 in
  let rows = hotpath_ladder ~iters ~reps:3 in
  let _, t_base, _ = List.hd rows in
  let retired =
    let _, _, c = List.hd rows in
    Cms.retired c
  in
  let name_full, t_full, c_full = List.nth rows 4 in
  let _, t_unchained, _ = List.nth rows 3 in
  ignore name_full;
  let s = Cms.stats c_full in
  let speedup = t_base /. t_full in
  pr "=== Hot-path execution-ladder benchmark ===@.";
  pr "  retired x86 insns        %d@." retired;
  List.iter
    (fun (name, dt, _) ->
      pr "  %-26s %.3f s  (%5.0f ns/insn, %5.2fx)@." name dt
        (dt *. 1e9 /. float_of_int retired)
        (t_base /. dt))
    rows;
  pr "  headline speedup         %.2fx (interp/caches-off -> chained \
      closures)@."
    speedup;
  pr "  chained vs unchained     %.2fx (%.3f s -> %.3f s)@."
    (t_unchained /. t_full) t_unchained t_full;
  pr "  chain: %a@." Cms.Stats.pp_chain s;
  pr "  host caches: %a@." Cms.Stats.pp_host s;
  if json then begin
    let oc = open_out "BENCH_hotpath.json" in
    let j = Fmt.str in
    let tier_json (name, dt, c) =
      j
        "    { \"tier\": %S, \"seconds\": %.6f, \"ns_per_insn\": %.1f, \
         \"speedup\": %.3f }"
        name dt
        (dt *. 1e9 /. float_of_int (Cms.retired c))
        (t_base /. dt)
    in
    output_string oc
      (j
         "{\n\
         \  \"bench\": \"hotpath\",\n\
         \  \"loop_iterations\": %d,\n\
         \  \"retired_insns\": %d,\n\
         \  \"tiers\": [\n\
          %s\n\
         \  ],\n\
         \  \"speedup\": %.3f,\n\
         \  \"chained_vs_unchained\": { \"unchained_seconds\": %.6f, \
          \"chained_seconds\": %.6f, \"speedup\": %.3f, \
          \"chained_exits_taken\": %d, \"chain_patches\": %d },\n\
         \  \"closures_compiled\": %d,\n\
         \  \"tlb\": { \"hits\": %d, \"misses\": %d },\n\
         \  \"dcache\": { \"hits\": %d, \"misses\": %d, \"invalidations\": %d \
          },\n\
         \  \"ram_fast\": { \"reads\": %d, \"writes\": %d }\n\
          }\n"
         iters retired
         (String.concat ",\n" (List.map tier_json rows))
         speedup t_unchained t_full
         (t_unchained /. t_full)
         s.Cms.Stats.chained_exits_taken s.Cms.Stats.chain_patches
         s.Cms.Stats.closures_compiled s.Cms.Stats.tlb_hits
         s.Cms.Stats.tlb_misses s.Cms.Stats.dcache_hits
         s.Cms.Stats.dcache_misses s.Cms.Stats.dcache_invalidations
         s.Cms.Stats.ram_fast_reads s.Cms.Stats.ram_fast_writes);
    close_out oc;
    pr "  wrote BENCH_hotpath.json@."
  end

(* ------------------------------------------------------------------ *)
(* Checkpoint/restore cost                                             *)
(* ------------------------------------------------------------------ *)

(* Snapshot size and save/restore wall-clock per workload class.  Each
   workload runs to completion, then the final machine state is
   captured and restored (best of 3 each).  The snapshot is the
   *guest* state only — host caches are rebuilt cold — so its size
   tracks the live working set, not the translation cache. *)
let run_persist () =
  let best3 f =
    let best = ref infinity and last = ref None in
    for _ = 1 to 3 do
      let t0 = Unix.gettimeofday () in
      let v = f () in
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt;
      last := Some v
    done;
    (!best, Option.get !last)
  in
  pr "=== Checkpoint/restore cost (final-state snapshots) ===@.";
  pr "  %-28s %10s %9s %9s %9s@." "workload" "bytes" "save ms" "rest ms"
    "run s";
  List.iter
    (fun (cls, ws) ->
      let sizes = ref [] and saves = ref [] and rests = ref [] in
      List.iter
        (fun (w : Workloads.Suite.t) ->
          let c = Workloads.Suite.prepare w in
          let t0 = Unix.gettimeofday () in
          ignore (Cms.run ~max_insns:w.Workloads.Suite.max_insns c);
          let trun = Unix.gettimeofday () -. t0 in
          let tsave, img = best3 (fun () -> Cms_persist.Snapshot.capture c) in
          let trest, _ = best3 (fun () -> Cms_persist.Snapshot.restore img) in
          sizes := float_of_int (String.length img) :: !sizes;
          saves := tsave :: !saves;
          rests := trest :: !rests;
          pr "  %-28s %10d %9.2f %9.2f %9.2f@." w.Workloads.Suite.name
            (String.length img) (tsave *. 1e3) (trest *. 1e3) trun)
        ws;
      let mean l = List.fold_left ( +. ) 0. l /. float_of_int (List.length l) in
      pr "  %-28s %10.0f %9.2f %9.2f@."
        (Fmt.str "[%s mean]" cls)
        (mean !sizes)
        (mean !saves *. 1e3)
        (mean !rests *. 1e3))
    [
      ("boots", Workloads.Progs_boot.all);
      ("apps", Workloads.Progs_spec.all @ Workloads.Progs_apps.all);
    ]

(* ------------------------------------------------------------------ *)
(* Ahead-of-time translation: cold start vs image boot                  *)
(* ------------------------------------------------------------------ *)

(* Cold start pays the cost model twice over: every hot instruction is
   interpreted [translate_threshold] times (interp_cost each) and then
   translated (translate_cost per x86 insn).  Booting from an AOT image
   skips both for the statically discovered code, so the total-molecule
   delta between the two runs *is* the cold-start overhead removed.
   The warm run round-trips the image through the stable codec — the
   benchmark measures the real boot path, not an in-memory shortcut. *)
let run_aot ~json () =
  let workloads =
    List.hd Workloads.Progs_boot.all :: Workloads.Progs_spec.all
  in
  let cfg = Cms.Config.default in
  let rows =
    List.map
      (fun (w : Workloads.Suite.t) ->
        let cold = Workloads.Suite.run ~cfg w in
        let warm =
          let c = Workloads.Suite.prepare ~cfg w in
          let img =
            (Cms_analysis.Aotgen.build ~label:w.Workloads.Suite.name c
               ~entry:w.Workloads.Suite.entry)
              .Cms_analysis.Aotgen.image
          in
          let img =
            Cms_persist.Aot.of_string (Cms_persist.Aot.to_string img)
          in
          ignore (Cms_persist.Aot.install c img : Cms_persist.Aot.install_report);
          Workloads.Suite.run_prepared w c
        in
        if
          (not w.Workloads.Suite.uses_timer)
          && Cms_persist.Digests.arch cold <> Cms_persist.Digests.arch warm
        then begin
          Fmt.epr "aot bench: %S diverged between cold and AOT-warm runs!@."
            w.Workloads.Suite.name;
          exit 1
        end;
        let sw = Cms.stats warm in
        let retired = Cms.retired warm in
        let coverage =
          if retired = 0 then 0.0
          else
            float_of_int sw.Cms.Stats.aot_x86_retired /. float_of_int retired
        in
        let mc = Cms.total_molecules cold and mw = Cms.total_molecules warm in
        let reduction =
          if mc = 0 then 0.0
          else float_of_int (mc - mw) /. float_of_int mc *. 100.0
        in
        (w, cold, warm, coverage, reduction, mc, mw))
      workloads
  in
  pr "=== AOT boot: cold start vs translation image ===@.";
  pr "  %-28s %12s %12s %7s %9s %6s %6s@." "workload" "cold mol" "warm mol"
    "redn%" "aot-cover" "dyn-tr" "aot-tr";
  List.iter
    (fun ((w : Workloads.Suite.t), cold, warm, coverage, reduction, mc, mw) ->
      ignore cold;
      let sw = Cms.stats warm in
      pr "  %-28s %12d %12d %6.1f%% %8.1f%% %6d %6d@." w.Workloads.Suite.name
        mc mw reduction (coverage *. 100.0) sw.Cms.Stats.translations
        sw.Cms.Stats.aot_loaded)
    rows;
  if json then begin
    let oc = open_out "BENCH_aot.json" in
    let j = Fmt.str in
    let row_json ((w : Workloads.Suite.t), cold, warm, coverage, reduction, mc, mw)
        =
      let sc = Cms.stats cold and sw = Cms.stats warm in
      j
        "    { \"workload\": %S, \"cold_molecules\": %d, \"warm_molecules\": \
         %d, \"reduction_pct\": %.2f, \"cold_mpi\": %.3f, \"warm_mpi\": %.3f, \
         \"retired\": %d, \"dynamic_translations_cold\": %d, \
         \"dynamic_translations_warm\": %d, \"aot_loaded\": %d, \"aot_hits\": \
         %d, \"aot_coverage_pct\": %.2f }"
        w.Workloads.Suite.name mc mw reduction (Cms.mpi cold) (Cms.mpi warm)
        (Cms.retired warm) sc.Cms.Stats.translations sw.Cms.Stats.translations
        sw.Cms.Stats.aot_loaded sw.Cms.Stats.aot_hits (coverage *. 100.0)
    in
    output_string oc
      (j "{\n  \"bench\": \"aot\",\n  \"workloads\": [\n%s\n  ]\n}\n"
         (String.concat ",\n" (List.map row_json rows)));
    close_out oc;
    pr "  wrote BENCH_aot.json@."
  end

(* ------------------------------------------------------------------ *)
(* Background-translation cold-start overlap                           *)
(* ------------------------------------------------------------------ *)

(* How much of the cold-start interpretation overlaps an in-flight
   background compile, and what the wall-clock does.  The interesting
   window is the climb from the prefetch threshold (translate_threshold
   / 2, where the engine enqueues) to the hotness threshold (where it
   installs): [bg_overlap_insns] counts interpreter dispatches made
   while the worker had requests in flight.  Wall-clock deltas on these
   short workloads sit inside scheduler noise — the overlap fraction
   and the queue counters are the honest signal; seconds are reported
   for context only. *)
let bgtrans_workloads () =
  [
    List.find
      (fun (w : Workloads.Suite.t) -> w.Workloads.Suite.name = "DOS Boot")
      Workloads.Progs_boot.all;
    List.hd Workloads.Progs_spec.all;
    List.find
      (fun (w : Workloads.Suite.t) ->
        w.Workloads.Suite.name = "CPUmark99 (Win98)")
      Workloads.Progs_apps.all;
    List.find
      (fun (w : Workloads.Suite.t) ->
        w.Workloads.Suite.name = "Quake Demo2 (DOS)")
      Workloads.Progs_quake.all;
  ]

let run_bgtrans ~json () =
  let reps = 3 in
  let time_run cfg w () =
    let t0 = Unix.gettimeofday () in
    let c = Workloads.Suite.run ~cfg w in
    (Unix.gettimeofday () -. t0, c)
  in
  let rows =
    List.map
      (fun (w : Workloads.Suite.t) ->
        let t_on, c_on =
          best_of reps (time_run Cms.Config.default w)
        in
        let t_off, _ =
          best_of reps
            (time_run
               {
                 Cms.Config.default with
                 Cms.Config.background_translation = false;
               }
               w)
        in
        (w, t_on, t_off, c_on))
      (bgtrans_workloads ())
  in
  pr "=== Background-translation cold-start overlap ===@.";
  let overlap (c : Cms.t) =
    let s = Cms.stats c in
    if s.Cms.Stats.x86_interp = 0 then 0.0
    else
      float_of_int s.Cms.Stats.bg_overlap_insns
      /. float_of_int s.Cms.Stats.x86_interp
  in
  List.iter
    (fun ((w : Workloads.Suite.t), t_on, t_off, c_on) ->
      let s = Cms.stats c_on in
      pr
        "  %-24s bg %.3fs / sync %.3fs  interp=%d overlap=%d (%.1f%%)  \
         enq=%d+%dpf installs[bg=%d stale=%d] waits=%d unready=%d@."
        w.Workloads.Suite.name t_on t_off s.Cms.Stats.x86_interp
        s.Cms.Stats.bg_overlap_insns
        (100.0 *. overlap c_on)
        s.Cms.Stats.bg_enqueued s.Cms.Stats.bg_prefetched
        s.Cms.Stats.bg_installed s.Cms.Stats.bg_stale s.Cms.Stats.bg_waits
        s.Cms.Stats.bg_unready)
    rows;
  let total f =
    List.fold_left (fun a (_, _, _, c) -> a + f (Cms.stats c)) 0 rows
  in
  let t_interp = total (fun s -> s.Cms.Stats.x86_interp) in
  let t_overlap = total (fun s -> s.Cms.Stats.bg_overlap_insns) in
  let frac =
    if t_interp = 0 then 0.0
    else float_of_int t_overlap /. float_of_int t_interp
  in
  pr "  aggregate: %d of %d cold-start interpreted insns overlapped an \
      in-flight background compile (%.1f%%)@."
    t_overlap t_interp (100.0 *. frac);
  if t_overlap = 0 then begin
    Fmt.epr "bgtrans: no interpreted-while-translating overlap measured@.";
    exit 1
  end;
  if json then begin
    let oc = open_out "BENCH_bgtrans.json" in
    let j = Fmt.str in
    let row_json ((w : Workloads.Suite.t), t_on, t_off, c_on) =
      let s = Cms.stats c_on in
      j
        "    { \"workload\": %S, \"bg_seconds\": %.6f, \"sync_seconds\": \
         %.6f, \"retired\": %d, \"interp_insns\": %d, \"overlap_insns\": %d, \
         \"overlap_fraction\": %.4f, \"enqueued\": %d, \"prefetched\": %d, \
         \"deduped\": %d, \"dropped\": %d, \"installed\": %d, \"stale\": %d, \
         \"waits\": %d, \"unready\": %d }"
        w.Workloads.Suite.name t_on t_off (Cms.retired c_on)
        s.Cms.Stats.x86_interp s.Cms.Stats.bg_overlap_insns (overlap c_on)
        s.Cms.Stats.bg_enqueued s.Cms.Stats.bg_prefetched
        s.Cms.Stats.bg_deduped s.Cms.Stats.bg_dropped s.Cms.Stats.bg_installed
        s.Cms.Stats.bg_stale s.Cms.Stats.bg_waits s.Cms.Stats.bg_unready
    in
    output_string oc
      (j
         "{\n\
         \  \"bench\": \"bgtrans\",\n\
         \  \"workloads\": [\n\
          %s\n\
         \  ],\n\
         \  \"aggregate\": { \"interp_insns\": %d, \"overlap_insns\": %d, \
          \"overlap_fraction\": %.4f }\n\
          }\n"
         (String.concat ",\n" (List.map row_json rows))
         t_interp t_overlap frac);
    close_out oc;
    pr "  wrote BENCH_bgtrans.json@."
  end

(* ------------------------------------------------------------------ *)
(* Interrupt-storm throughput (bench storm)                            *)
(* ------------------------------------------------------------------ *)

(* Sweep packet arrival rate against the RX-server kernel: a fixed
   frame set arrives with varying retired-clock spacing through the
   journal's gated installer, and we measure translated throughput
   (retired insns/sec) and the asynchronous-rollback rate (interrupts
   that aborted an in-flight translation, per million retired insns)
   as delivery pressure rises.  Every run self-validates its checksum,
   so the numbers come from provably correct executions. *)
let run_storm ~json () =
  let reps = 3 in
  let nframes = 120 in
  let frame i =
    String.init 32 (fun k -> Char.chr (((i * 37) + (k * 11) + 5) land 0xff))
  in
  let frames = List.init nframes frame in
  let w = Workloads.Progs_kernel.kernel_rx frames in
  let gaps = [ 400; 1_000; 2_500; 6_000; 15_000 ] in
  let row gap =
    let events =
      List.mapi
        (fun i data -> Cms_persist.Journal.Pkt { at = 2_000 + (i * gap); data })
        frames
    in
    let run () =
      let t0 = Unix.gettimeofday () in
      let c = Workloads.Suite.prepare ~cfg:Cms.Config.default w in
      ignore
        (Cms_persist.Journal.install_guest c events
          : Cms_persist.Journal.injector);
      let c = Workloads.Suite.run_prepared w c in
      (Unix.gettimeofday () -. t0, c)
    in
    let dt, c = best_of reps run in
    (gap, dt, c)
  in
  let rows = List.map row gaps in
  pr "=== Interrupt-storm throughput (RX-server kernel, %d frames) ===@."
    nframes;
  let derived (gap, dt, c) =
    let s = Cms.stats c in
    let retired = Cms.retired c in
    let ips = float_of_int retired /. dt in
    let arrivals_per_mi =
      1_000_000.0 *. float_of_int nframes /. float_of_int retired
    in
    let rollbacks_per_mi =
      1_000_000.0 *. float_of_int s.Cms.Stats.irq_rollbacks
      /. float_of_int retired
    in
    (gap, dt, retired, ips, arrivals_per_mi, rollbacks_per_mi, s)
  in
  let rows = List.map derived rows in
  List.iter
    (fun (gap, dt, retired, ips, apm, rpm, s) ->
      pr
        "  gap %6d: %.3fs retired=%d (%.2fM insns/s)  arrivals/Mi=%.1f \
         irq[delivered=%d rollbacks=%d (%.1f/Mi) deferred=%d]  \
         nic[rx=%d drops=%d irqs=%d coalesced=%d]@."
        gap dt retired (ips /. 1e6) apm s.Cms.Stats.irq_delivered
        s.Cms.Stats.irq_rollbacks rpm s.Cms.Stats.irq_deferred
        s.Cms.Stats.nic_rx_frames s.Cms.Stats.nic_rx_dropped
        s.Cms.Stats.nic_irqs s.Cms.Stats.nic_irq_coalesced)
    rows;
  (* backpressure sanity: the gated installer never overruns the ring *)
  List.iter
    (fun (gap, _, _, _, _, _, s) ->
      if s.Cms.Stats.nic_rx_dropped > 0 then begin
        Fmt.epr "bench storm: gap %d dropped %d frames through the gated \
                 installer@."
          gap s.Cms.Stats.nic_rx_dropped;
        exit 1
      end)
    rows;
  if json then begin
    let oc = open_out "BENCH_storm.json" in
    let j = Fmt.str in
    let row_json (gap, dt, retired, ips, apm, rpm, s) =
      j
        "    { \"gap_insns\": %d, \"seconds\": %.6f, \"retired\": %d, \
         \"insns_per_sec\": %.1f, \"arrivals_per_minsn\": %.2f, \
         \"irq_delivered\": %d, \"irq_rollbacks\": %d, \
         \"rollbacks_per_minsn\": %.2f, \"irq_deferred\": %d, \
         \"nic_rx\": %d, \"nic_drops\": %d, \"nic_irqs\": %d, \
         \"nic_irq_coalesced\": %d }"
        gap dt retired ips apm s.Cms.Stats.irq_delivered
        s.Cms.Stats.irq_rollbacks rpm s.Cms.Stats.irq_deferred
        s.Cms.Stats.nic_rx_frames s.Cms.Stats.nic_rx_dropped
        s.Cms.Stats.nic_irqs s.Cms.Stats.nic_irq_coalesced
    in
    output_string oc
      (j
         "{\n\
         \  \"bench\": \"storm\",\n\
         \  \"workload\": %S,\n\
         \  \"frames\": %d,\n\
         \  \"rates\": [\n\
          %s\n\
         \  ]\n\
          }\n"
         w.Workloads.Suite.name nframes
         (String.concat ",\n" (List.map row_json rows)));
    close_out oc;
    pr "  wrote BENCH_storm.json@."
  end

(* ------------------------------------------------------------------ *)
(* Fleet scaling and shared-warm start (bench fleet)                   *)
(* ------------------------------------------------------------------ *)

(* Two questions, both against the RX-server traffic fleet:

   1. Scaling: aggregate retired insns/sec as the fleet grows from 1
      to 8 machines over up to 4 shard domains, all sharing one warm
      store.  Every machine self-validates its checksum.
   2. Shared-warm start: a late joiner booting the same kernel image
      against an already-warm store versus booting cold.  The warm
      joiner should source the majority of its molecules from the
      store (validated copies, no per-instruction translate charge)
      instead of minting them privately. *)
let run_fleet ~json () =
  let module Fleet = Cms_fleet.Fleet in
  let module Tstore = Cms_persist.Tstore in
  let reps = 3 in
  let seed = 11 in
  let fcfg shards = { Fleet.default_config with Fleet.shards; mirror = false } in
  let counts = [ 1; 2; 4; 8 ] in
  let row n =
    let specs = Fleet.traffic_specs ~seed ~machines:n in
    let shards = min 4 n in
    let run () =
      let t0 = Unix.gettimeofday () in
      let t = Fleet.run ~store:(Tstore.create ()) (fcfg shards) specs in
      (Unix.gettimeofday () -. t0, t)
    in
    let dt, t = best_of reps run in
    if t.Fleet.t_divergences > 0 || t.Fleet.t_quarantined > 0 then begin
      Fmt.epr "bench fleet: unhealthy fleet at %d machines@." n;
      exit 1
    end;
    (n, shards, dt, t)
  in
  let rows = List.map row counts in
  pr "=== Fleet scaling (RX-server kernel, shared warm store) ===@.";
  List.iter
    (fun (n, shards, dt, t) ->
      pr
        "  %d machines / %d shards: %.3fs retired=%d (%.2fM insns/s \
         aggregate)  store[hits=%d published=%d]@."
        n shards dt t.Fleet.t_retired
        (float_of_int t.Fleet.t_retired /. dt /. 1e6)
        t.Fleet.t_store_hits t.Fleet.t_store_published)
    rows;
  (* --- cold vs shared-warm late joiner ------------------------------ *)
  let specs = Fleet.traffic_specs ~seed:77 ~machines:2 in
  let publisher, joiner =
    match specs with [ a; b ] -> (a, b) | _ -> assert false
  in
  let store = Tstore.create () in
  ignore (Fleet.run ~store (fcfg 1) [ publisher ] : Fleet.totals);
  let solo ?store () =
    let t0 = Unix.gettimeofday () in
    let t = Fleet.run ?store (fcfg 1) [ joiner ] in
    (Unix.gettimeofday () -. t0, t)
  in
  let cold_dt, cold = best_of reps (fun () -> solo ()) in
  let warm_dt, warm = best_of reps (fun () -> solo ~store ()) in
  let stat t f =
    match (List.hd t.Fleet.t_reports).Fleet.r_stats with
    | Some s -> f s
    | None -> 0
  in
  let cold_translations = stat cold (fun s -> s.Cms.Stats.translations) in
  let warm_translations = stat warm (fun s -> s.Cms.Stats.translations) in
  let warm_hits = warm.Fleet.t_store_hits in
  let cold_molecules = stat cold (fun s -> s.Cms.Stats.charged_molecules) in
  let warm_molecules = stat warm (fun s -> s.Cms.Stats.charged_molecules) in
  let removed_pct =
    100.0
    *. float_of_int (cold_translations - warm_translations)
    /. float_of_int (max 1 cold_translations)
  in
  pr "=== Shared-warm start (late joiner, same kernel image) ===@.";
  pr "  cold: %.3fs, %d private translations, %d host+overhead molecules@."
    cold_dt cold_translations cold_molecules;
  pr
    "  warm: %.3fs, %d private translations, %d store hits, %d host+overhead \
     molecules@."
    warm_dt warm_translations warm_hits warm_molecules;
  pr "  %.0f%% of cold-start translations sourced from the shared store@."
    removed_pct;
  if removed_pct < 50.0 then begin
    Fmt.epr
      "bench fleet: shared-warm start removed only %.0f%% of cold-start \
       translations (majority expected)@."
      removed_pct;
    exit 1
  end;
  if json then begin
    let oc = open_out "BENCH_fleet.json" in
    let j = Fmt.str in
    let row_json (n, shards, dt, t) =
      j
        "    { \"machines\": %d, \"shards\": %d, \"seconds\": %.6f, \
         \"retired\": %d, \"insns_per_sec\": %.1f, \"store_hits\": %d, \
         \"store_published\": %d }"
        n shards dt t.Fleet.t_retired
        (float_of_int t.Fleet.t_retired /. dt)
        t.Fleet.t_store_hits t.Fleet.t_store_published
    in
    output_string oc
      (j
         "{\n\
         \  \"bench\": \"fleet\",\n\
         \  \"scaling\": [\n\
          %s\n\
         \  ],\n\
         \  \"late_joiner\": {\n\
         \    \"cold\": { \"seconds\": %.6f, \"translations\": %d, \
          \"molecules\": %d },\n\
         \    \"warm\": { \"seconds\": %.6f, \"translations\": %d, \
          \"molecules\": %d, \"store_hits\": %d },\n\
         \    \"translations_removed_pct\": %.1f\n\
         \  }\n\
          }\n"
         (String.concat ",\n" (List.map row_json rows))
         cold_dt cold_translations cold_molecules warm_dt warm_translations
         warm_molecules warm_hits removed_pct);
    close_out oc;
    pr "  wrote BENCH_fleet.json@."
  end

(* ------------------------------------------------------------------ *)
(* Fast-path smoke check (CI: dune build @bench-smoke)                 *)
(* ------------------------------------------------------------------ *)

(* One real workload, both fast-path modes, guest-visible outcome must
   match exactly.  [Suite.run] itself already asserts the workload's
   checksum; this cross-checks the two modes against each other. *)
let run_smoke () =
  let w = List.hd Workloads.Progs_spec.all in
  let digest fast =
    let cfg = { Cms.Config.default with Cms.Config.host_fast_paths = fast } in
    let c = Workloads.Suite.run ~cfg w in
    let s = Cms.stats c in
    let m = Cms.mem c in
    ( Cms.retired c,
      Cms.total_molecules c,
      Cms.gpr c X86.Regs.eax,
      Cms.eip c,
      s.Cms.Stats.genuine_faults,
      s.Cms.Stats.spec_faults,
      s.Cms.Stats.translations,
      m.Machine.Mem.smc_events,
      m.Machine.Mem.page_prot_faults )
  in
  let on = digest true in
  let off = digest false in
  if on = off then
    pr "bench-smoke: %S identical with fast paths on and off@."
      w.Workloads.Suite.name
  else begin
    Fmt.epr "bench-smoke: %S DIVERGED between fast-path modes@."
      w.Workloads.Suite.name;
    exit 1
  end;
  (* the full ladder on a shortened loop: equivalence across all five
     tiers (hotpath_ladder exits nonzero on divergence) plus a floor
     on the headline speedup — generous against the measured >3.5x so
     a loaded CI host doesn't flake, but tight enough to catch the
     closure or chaining tier silently falling back to the decoder *)
  let rows = hotpath_ladder ~iters:40_000 ~reps:2 in
  let _, t_base, _ = List.hd rows in
  let _, t_full, c_full = List.nth rows 4 in
  let speedup = t_base /. t_full in
  let s = Cms.stats c_full in
  if s.Cms.Stats.closures_compiled = 0 then begin
    Fmt.epr "bench-smoke: chained tier compiled no closures@.";
    exit 1
  end;
  if s.Cms.Stats.chained_exits_taken = 0 then begin
    Fmt.epr "bench-smoke: chained tier followed no chained exits@.";
    exit 1
  end;
  if speedup < 3.1 then begin
    Fmt.epr "bench-smoke: ladder speedup %.2fx below the 3.1x floor@." speedup;
    exit 1
  end;
  pr "bench-smoke: ladder speedup %.2fx (floor 3.1x), %d closures, %d chained \
      exits@."
    speedup s.Cms.Stats.closures_compiled s.Cms.Stats.chained_exits_taken

(* ------------------------------------------------------------------ *)

let all () =
  run_fig2 ();
  run_fig3 ();
  run_table1 ();
  run_selfcheck ();
  run_selfreval ();
  run_groups ();
  run_flow ();
  run_ablations ();
  run_micro ();
  run_hotpath ~json:false ();
  run_persist ();
  run_aot ~json:false ();
  run_bgtrans ~json:false ();
  run_storm ~json:false ();
  run_fleet ~json:false ()

let () =
  let json =
    Array.exists (fun a -> a = "--json") Sys.argv
  in
  let sub =
    match
      Array.to_list Sys.argv |> List.tl
      |> List.filter (fun a -> a <> "--json")
    with
    | [] -> "all"
    | s :: _ -> s
  in
  match sub with
  | "fig2" -> run_fig2 ()
  | "fig3" -> run_fig3 ()
  | "table1" -> run_table1 ()
  | "selfcheck" -> run_selfcheck ()
  | "selfreval" -> run_selfreval ()
  | "groups" -> run_groups ()
  | "flow" -> run_flow ()
  | "ablations" -> run_ablations ()
  | "micro" ->
      run_micro ();
      run_hotpath ~json ()
  | "hotpath" -> run_hotpath ~json ()
  | "persist" -> run_persist ()
  | "aot" -> run_aot ~json ()
  | "bgtrans" -> run_bgtrans ~json ()
  | "storm" -> run_storm ~json ()
  | "fleet" -> run_fleet ~json ()
  | "smoke" -> run_smoke ()
  | "all" -> all ()
  | other ->
      Fmt.epr
        "unknown experiment %S; one of: fig2 fig3 table1 selfcheck selfreval \
         groups flow ablations micro hotpath persist aot bgtrans storm fleet \
         smoke all@."
        other;
      exit 1
