(* Precise exceptions under aggressive speculation: a guest #DE handler
   fixes up a divide-by-zero and resumes, 100 times, while the faulting
   code runs from optimized translations.  The commit/rollback hardware
   guarantees the handler sees exactly the x86 state at the faulting
   instruction's boundary (§3.1, §3.2).

     dune exec examples/precise_exceptions.exe *)

open X86.Asm

let program =
  assemble ~base:0x10000
    [
      (* IDT at 0x1000; vector 0 (#DE) -> handler *)
      mov_rl eax "de_handler";
      mov_mr (m 0x1000) eax;
      mov_mi (m 0x5000) 0x1000;
      lidt (m 0x5000);
      mov_ri ebx 0;  (* handler invocation count *)
      mov_ri esi 100;
      label "loop";
      mov_ri eax 84;
      mov_ri edx 0;
      mov_ri ecx 0;  (* divide by zero! *)
      I (X86.Insn.Div (X86.Insn.S32, X86.Insn.R ecx));
      dec_r esi;
      jne "loop";
      hlt;
      label "de_handler";
      inc_r ebx;
      mov_ri ecx 2;  (* fix the divisor; IRET retries the div *)
      iret;
    ]

let () =
  let cms = Cms.create () in
  Cms.load cms program;
  Cms.boot cms ~entry:0x10000;
  (match Cms.run cms with
  | Cms.Engine.Halted -> ()
  | _ -> failwith "did not halt");
  let s = Cms.stats cms in
  Fmt.pr "handler ran %d times; final quotient eax = %d@."
    (Cms.gpr cms X86.Regs.ebx) (Cms.gpr cms X86.Regs.eax);
  Fmt.pr "faults seen by recovery: %d genuine, %d speculative@."
    s.Cms.Stats.genuine_faults s.Cms.Stats.spec_faults;
  Fmt.pr "rollbacks: %d@." (Cms.perf cms).Vliw.Perf.rollbacks
