examples/os_boot.mli:
