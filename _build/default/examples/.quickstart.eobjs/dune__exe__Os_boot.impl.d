examples/os_boot.ml: Cms Fmt Machine Vliw Workloads X86
