examples/quickstart.mli:
