examples/smc_game.ml: Cms Fmt Workloads
