examples/smc_game.mli:
