examples/precise_exceptions.mli:
