examples/quickstart.ml: Cms Fmt List X86
