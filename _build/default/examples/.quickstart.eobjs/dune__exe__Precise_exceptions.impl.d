examples/precise_exceptions.ml: Cms Fmt Vliw X86
