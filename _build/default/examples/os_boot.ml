(* Run a synthetic OS boot — the system-level workload class the paper
   says application-level DBTs never face: port and memory-mapped I/O,
   timer interrupts, DMA, mixed code/data pages, driver-style SMC.

     dune exec examples/os_boot.exe *)

let () =
  let w = Workloads.Progs_boot.win95 in
  let cms = Workloads.Suite.run ~cfg:Cms.Config.default w in
  let stats = Cms.stats cms in
  let perf = Cms.perf cms in
  Fmt.pr "--- serial console ---@.%s@." (Cms.uart_output cms);
  Fmt.pr "--- boot summary: %s ---@." w.Workloads.Suite.name;
  Fmt.pr "checksum (eax): %#x@." (Cms.gpr cms X86.Regs.eax);
  Fmt.pr "retired: %d interp + %d translated x86 insns@."
    stats.Cms.Stats.x86_interp stats.Cms.Stats.x86_translated;
  Fmt.pr "translations: %d (%d retranslations, %d invalidations)@."
    stats.Cms.Stats.translations stats.Cms.Stats.retranslations
    stats.Cms.Stats.invalidations;
  Fmt.pr "interrupts delivered: %d (%d forced a rollback)@."
    stats.Cms.Stats.irq_delivered stats.Cms.Stats.irq_rollbacks;
  Fmt.pr "SMC machinery: %d protection events, %d fine-grain installs@."
    (Cms.mem cms).Machine.Mem.smc_events stats.Cms.Stats.fg_installs;
  Fmt.pr "host: %d molecules, %d commits, %d rollbacks@."
    perf.Vliw.Perf.molecules perf.Vliw.Perf.commits perf.Vliw.Perf.rollbacks;
  Fmt.pr "molecules / x86 insn: %.2f@." (Cms.mpi cms)
