(* The Quake-style self-modifying renderer: per frame the game patches a
   lighting constant directly into its inner loop's instruction bytes.
   Watch CMS adapt: invalidations first, then stylized translations that
   load the immediate from the code bytes at run time (§3.6.4), and
   self-revalidation instead of invalidation for the data the renderer
   keeps next to its code (§3.6.2).

     dune exec examples/smc_game.exe *)

let fpmm cms =
  float_of_int (Cms.frames cms)
  /. (float_of_int (Cms.total_molecules cms) /. 1_000_000.)

let run name cfg =
  let cms = Workloads.Suite.run ~cfg Workloads.Progs_quake.quake in
  let s = Cms.stats cms in
  Fmt.pr "%-24s %6.2f frames/Mmol  (inval=%d selfcheck-fails=%d reval=%d/%d)@."
    name (fpmm cms) s.Cms.Stats.invalidations s.Cms.Stats.selfcheck_fails
    s.Cms.Stats.reval_hits s.Cms.Stats.reval_checks

let () =
  Fmt.pr "Quake Demo2: 20 frames, immediate-patching SMC renderer@.@.";
  run "full CMS" Cms.Config.default;
  run "no stylized SMC"
    { Cms.Config.default with Cms.Config.enable_stylized = false };
  run "no self-revalidation"
    { Cms.Config.default with Cms.Config.enable_self_reval = false };
  run "page protection only"
    {
      Cms.Config.default with
      Cms.Config.enable_stylized = false;
      enable_self_reval = false;
      enable_fine_grain = false;
      enable_groups = false;
      enable_self_check = false;
    }
