(* Quickstart: assemble a small x86 program, run it under CMS, and look
   at what the system did: interpretation, translation, chaining.

     dune exec examples/quickstart.exe *)

open X86.Asm

let program =
  assemble ~base:0x10000
    [
      (* sum of squares 1..100, the hard way *)
      mov_ri eax 0;
      mov_ri ecx 1;
      label "loop";
      mov_rr ebx ecx;
      imul_rr ebx ecx;
      add_rr eax ebx;
      inc_r ecx;
      cmp_ri ecx 101;
      jne "loop";
      hlt;
    ]

let () =
  let cms = Cms.create () in
  Cms.load cms program;
  Cms.boot cms ~entry:0x10000;
  (match Cms.run cms with
  | Cms.Engine.Halted -> ()
  | Cms.Engine.Insn_limit -> failwith "did not halt?");
  let stats = Cms.stats cms in
  Fmt.pr "result: eax = %d (expected %d)@." (Cms.gpr cms X86.Regs.eax)
    (List.fold_left (fun a i -> a + (i * i)) 0 (List.init 100 (fun i -> i + 1)));
  Fmt.pr "x86 instructions retired: %d interpreted, %d from translations@."
    stats.Cms.Stats.x86_interp stats.Cms.Stats.x86_translated;
  Fmt.pr "translations made: %d;  chain patches: %d@."
    stats.Cms.Stats.translations stats.Cms.Stats.chain_patches;
  Fmt.pr "molecules per x86 instruction: %.2f@." (Cms.mpi cms)
