(* End-to-end CMS tests: programs run under the full engine
   (interpret -> translate -> chain) must produce exactly the state the
   interpreter alone produces.  Includes the differential property test
   that randomized programs behave identically in interpreter-only mode
   and with aggressive translation under several hardware configs. *)

open X86

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool

(* Config that translates eagerly so tests exercise translations, with
   all debug interlocks on. *)
let hot_cfg =
  {
    Cms.Config.debug with
    Cms.Config.translate_threshold = 3;
  }

let run ?(cfg = hot_cfg) ?max_insns prog ~entry =
  Cms.run_listing ~cfg ?max_insns prog ~entry

(* ------------------------------------------------------------------ *)
(* Basic execution                                                     *)
(* ------------------------------------------------------------------ *)

let counted_loop n =
  let open Asm in
  assemble ~base:0x10000
    [
      label "start";
      mov_ri eax 0;
      mov_ri ecx n;
      label "loop";
      add_ri eax 3;
      dec_r ecx;
      jne "loop";
      hlt;
    ]

let test_loop_translated () =
  let prog = counted_loop 1000 in
  let t, stop = run prog ~entry:0x10000 in
  check cb "halted" true (stop = Cms.Engine.Halted);
  check ci "eax" 3000 (Cms.gpr t Regs.eax);
  check ci "ecx" 0 (Cms.gpr t Regs.ecx);
  (* the loop must actually have been translated and run natively *)
  check cb "translated insns dominate" true
    ((Cms.perf t).Vliw.Perf.x86_committed > 2000);
  check cb "made translations" true ((Cms.stats t).Cms.Stats.translations >= 1)

let test_interp_only_matches () =
  let prog = counted_loop 200 in
  let t1, _ = run ~cfg:Cms.interp_only_cfg prog ~entry:0x10000 in
  let t2, _ = run prog ~entry:0x10000 in
  check ci "same eax" (Cms.gpr t1 Regs.eax) (Cms.gpr t2 Regs.eax);
  check ci "no translations in interp mode" 0
    (Cms.stats t1).Cms.Stats.translations

let test_memory_program () =
  (* sum an array via base+index addressing *)
  let open Asm in
  let prog =
    assemble ~base:0x10000
      [
        mov_ri esi 0x20000;
        mov_ri ecx 64;
        mov_ri eax 0;
        mov_ri ebx 0;
        label "fill";
        mov_mr (mbi esi ebx 4) ebx;
        inc_r ebx;
        cmp_rr ebx ecx;
        jne "fill";
        mov_ri ebx 0;
        label "sum";
        add_rm eax (mbi esi ebx 4);
        inc_r ebx;
        cmp_rr ebx ecx;
        jne "sum";
        hlt;
      ]
  in
  let t, _ = run prog ~entry:0x10000 in
  check ci "sum 0..63" (63 * 64 / 2) (Cms.gpr t Regs.eax)

let test_call_ret () =
  let open Asm in
  let prog =
    assemble ~base:0x10000
      [
        mov_ri eax 0;
        mov_ri ecx 100;
        label "loop";
        call "addone";
        dec_r ecx;
        jne "loop";
        hlt;
        label "addone";
        add_ri eax 1;
        ret;
      ]
  in
  let t, _ = run prog ~entry:0x10000 in
  check ci "eax" 100 (Cms.gpr t Regs.eax)

let test_rep_movs () =
  let open Asm in
  let prog =
    assemble ~base:0x10000
      [
        (* fill source *)
        mov_ri edi 0x20000;
        mov_ri eax 0xabcd1234;
        mov_ri ecx 256;
        rep_stosd;
        (* copy to dest *)
        mov_ri esi 0x20000;
        mov_ri edi 0x30000;
        mov_ri ecx 256;
        rep_movsd;
        mov_rm ebx (m 0x303fc);
        hlt;
      ]
  in
  let t, _ = run prog ~entry:0x10000 in
  check ci "copied last word" 0xabcd1234 (Cms.gpr t Regs.ebx);
  check ci "mid word" 0xabcd1234 (Cms.read_mem t ~size:4 0x30200)

let test_uart_hello () =
  let open Asm in
  let prog =
    assemble ~base:0x10000
      [
        mov_rl esi "msg";
        label "loop";
        mov8_rm eax (mb esi); (* al = [esi] *)
        test_ri eax 0xff;
        je "done";
        mov_ri edx Machine.Platform.uart_base;
        I (Insn.Out (Insn.S8, Insn.PortDx));
        inc_r esi;
        jmp "loop";
        label "done";
        hlt;
        label "msg";
        raw "hello, cms!\x00";
      ]
  in
  let t, _ = run prog ~entry:0x10000 in
  check Alcotest.string "uart" "hello, cms!" (Cms.uart_output t)

(* test_ri on eax uses 32-bit test; mov8_rm loads into AL leaving upper
   bytes — make sure mask works: test al path *)

let basic_tests =
  [
    Alcotest.test_case "hot loop translated" `Quick test_loop_translated;
    Alcotest.test_case "interp matches hot" `Quick test_interp_only_matches;
    Alcotest.test_case "array sum" `Quick test_memory_program;
    Alcotest.test_case "call/ret" `Quick test_call_ret;
    Alcotest.test_case "rep movs/stos" `Quick test_rep_movs;
    Alcotest.test_case "uart output" `Quick test_uart_hello;
  ]

(* ------------------------------------------------------------------ *)
(* Precise exceptions                                                  *)
(* ------------------------------------------------------------------ *)

(* Set up an IDT at 0x1000 with handler table entries; handler for
   vector 0 (#DE) fixes the divisor and returns. *)
let divide_fault_prog =
  let open Asm in
  assemble ~base:0x10000
    [
      (* IDT: 256 vectors at 0x1000; point #DE (0) at handler *)
      mov_ri eax 0;
      mov_rl eax "de_handler";
      mov_mr (m 0x1000) eax;
      mov_mi (m 0x5000) 0x1000; (* pointer cell for lidt *)
      lidt (m 0x5000);
      (* main: count handler invocations in ebx; loop with div *)
      mov_ri ebx 0;
      mov_ri esi 100;
      label "loop";
      mov_ri eax 84;
      mov_ri edx 0;
      mov_ri ecx 0; (* divisor zero -> #DE *)
      I (Insn.Div (Insn.S32, Insn.R ecx));
      (* handler fixed ecx; result should be 84/2 = 42 *)
      dec_r esi;
      jne "loop";
      hlt;
      label "de_handler";
      inc_r ebx;
      mov_ri ecx 2; (* fix divisor *)
      iret;
    ]

let test_divide_fault () =
  let t, _ = run divide_fault_prog ~entry:0x10000 in
  check ci "handler ran 100x" 100 (Cms.gpr t Regs.ebx);
  check ci "final quotient" 42 (Cms.gpr t Regs.eax)

let test_page_fault_precise () =
  (* touch an unmapped page; the handler maps... we cannot map from
     guest code, so instead the handler records the fault and skips the
     faulting instruction by adjusting the saved EIP. *)
  let open Asm in
  let prog =
    assemble ~base:0x10000
      [
        mov_rl eax "pf_handler";
        mov_mr (m 0x1038) eax; (* vector 14 *)
        mov_mi (m 0x5000) 0x1000;
        lidt (m 0x5000);
        mov_ri ebx 0;
        mov_ri edi 0;
        label "loop";
        (* eax = sentinel; faulting load at a known-length insn *)
        mov_ri eax 0x1111;
        label "fault_insn";
        mov_rm eax (m 0x700000); (* unmapped -> #PF *)
        label "after";
        inc_r edi;
        cmp_ri edi 50;
        jne "loop";
        hlt;
        label "pf_handler";
        inc_r ebx;
        (* pop error code, rewrite return EIP to 'after' *)
        pop_r edx; (* error code *)
        pop_r edx; (* faulting eip *)
        push_l "after";
        iret;
      ]
  in
  let t, _ = run prog ~entry:0x10000 in
  check ci "handler count" 50 (Cms.gpr t Regs.ebx);
  (* eax untouched by the faulting load: precise state *)
  check ci "eax precise" 0x1111 (Cms.gpr t Regs.eax)

let exception_tests =
  [
    Alcotest.test_case "#DE handled via IDT" `Quick test_divide_fault;
    Alcotest.test_case "#PF precise + resume" `Quick test_page_fault_precise;
  ]

(* ------------------------------------------------------------------ *)
(* Interrupts                                                          *)
(* ------------------------------------------------------------------ *)

let test_timer_interrupt () =
  let open Asm in
  let prog =
    assemble ~base:0x10000
      [
        mov_rl eax "tick";
        mov_mr (m (0x1000 + (4 * (Machine.Irq.base_vector + 0)))) eax;
        mov_mi (m 0x5000) 0x1000;
        lidt (m 0x5000);
        (* program timer: period 5000 molecules *)
        mov_ri eax 5000;
        mov_ri edx Machine.Platform.timer_base;
        I (Insn.Out (Insn.S32, Insn.PortDx));
        mov_ri eax 0;
        mov_ri edx (Machine.Platform.timer_base + 1);
        I (Insn.Out (Insn.S32, Insn.PortDx));
        sti;
        mov_ri ebx 0;
        (* busy loop until 5 ticks observed *)
        label "spin";
        cmp_ri ebx 5;
        jne "spin";
        (* disarm the timer and mask interrupts before halting *)
        cli;
        mov_ri eax 0;
        mov_ri edx Machine.Platform.timer_base;
        I (Insn.Out (Insn.S32, Insn.PortDx));
        mov_ri edx (Machine.Platform.timer_base + 1);
        I (Insn.Out (Insn.S32, Insn.PortDx));
        hlt;
        label "tick";
        inc_r ebx;
        iret;
      ]
  in
  let t, stop = run ~max_insns:2_000_000 prog ~entry:0x10000 in
  check cb "halted (not insn limit)" true (stop = Cms.Engine.Halted);
  check ci "ticks" 5 (Cms.gpr t Regs.ebx);
  check cb "irqs delivered" true ((Cms.stats t).Cms.Stats.irq_delivered >= 5)

let interrupt_tests =
  [ Alcotest.test_case "timer irq wakes spin loop" `Quick test_timer_interrupt ]

(* ------------------------------------------------------------------ *)
(* Differential property test                                          *)
(* ------------------------------------------------------------------ *)

(* Generate random straight-line bodies over a restricted register set
   and a scratch data page, wrap them in a counted loop, and compare
   final state between interpreter-only and hot-translation configs. *)

let scratch = 0x20000

let gen_body =
  let open QCheck.Gen in
  let reg = oneofl [ Regs.eax; Regs.ebx; Regs.edx; Regs.esi; Regs.edi ] in
  let mem_addr = map (fun i -> scratch + (i * 4)) (int_range 0 63) in
  let imm = oneof [ int_range 0 0xff; int_range 0 0xffffff; return 0xdeadbeef ] in
  let insn =
    oneof
      [
        (let* r = reg and* i = imm in
         return (Asm.mov_ri r i));
        (let* a = reg and* b = reg in
         return (Asm.mov_rr a b));
        (let* r = reg and* a = mem_addr in
         return (Asm.mov_rm r (Asm.m a)));
        (let* r = reg and* a = mem_addr in
         return (Asm.mov_mr (Asm.m a) r));
        (let* a = mem_addr and* i = imm in
         return (Asm.mov_mi (Asm.m a) i));
        (let* op = oneofl Insn.[ Add; Sub; And; Or; Xor; Adc; Sbb; Cmp ]
         and* a = reg
         and* b = reg in
         return (Asm.arith_rr op a b));
        (let* op = oneofl Insn.[ Add; Sub; And; Or; Xor; Cmp ]
         and* a = reg
         and* i = imm in
         return (Asm.arith_ri op a i));
        (let* op = oneofl Insn.[ Add; Sub; Xor ] and* r = reg and* a = mem_addr in
         return (Asm.arith_rm op r (Asm.m a)));
        (let* op = oneofl Insn.[ Add; Sub; And; Or ] and* a = mem_addr and* r = reg in
         return (Asm.arith_mr op (Asm.m a) r));
        (let* r = reg in
         oneofl [ Asm.inc_r r; Asm.dec_r r; Asm.neg_r r; Asm.not_r r ]);
        (let* r = reg and* i = int_range 0 31 in
         oneofl
           [ Asm.shl_ri r i; Asm.shr_ri r i; Asm.sar_ri r i; Asm.rol_ri r i;
             Asm.ror_ri r i ]);
        (let* a = reg and* b = reg in
         return (Asm.imul_rr a b));
        (let* r = reg and* a = mem_addr in
         return (Asm.lea r (Asm.m a)));
        (let* a = reg and* b = reg in
         return (Asm.test_rr a b));
        (let* a = reg and* b = reg in
         return (Asm.xchg_rr a b));
        (let* cc = oneofl Cond.all and* r = oneofl [ 0; 1; 2; 3 ] in
         return (Asm.setcc cc r));
        (* 8-bit traffic *)
        (let* r8 = int_range 0 7 and* a = mem_addr in
         return (Asm.mov8_mr (Asm.m a) r8));
        (let* r8 = int_range 0 7 and* a = mem_addr in
         return (Asm.I (Insn.Mov (Insn.S8, Insn.R_RM (r8, Insn.M (Asm.m a))))));
        (let* r8 = int_range 0 7 and* i = int_range 0 255 in
         return (Asm.mov8_ri r8 i));
        (let* sign = bool and* r = reg and* a = mem_addr in
         return
           (Asm.I
              (Insn.Movx { sign; dst = r; src = Insn.M (Asm.m a) })));
        return Asm.cdq;
        return Asm.pushf;
        (let* r = reg in
         return (Asm.push_r r));
      ]
  in
  (* pair pushes with pops to keep the stack balanced: easier to just
     reserve a big stack and reset ESP each iteration *)
  list_size (int_range 5 40) insn

let build_prog body =
  let open Asm in
  assemble ~base:0x10000
    ([
       label "start";
       mov_mi (m 0x6000) 30; (* loop counter in memory *)
       label "loop";
       mov_ri esp 0x80000; (* reset stack each iteration *)
     ]
    @ body
    @ [
        I (Insn.Arith (Insn.Cmp, Insn.S32, Insn.RM_I (Insn.R Regs.eax, 0)));
        (* consume flags so they are live-out sometimes *)
        setcc Cond.LE 1; (* cl = flag *)
        dec_m (m 0x6000);
        jne "loop";
        hlt;
      ])

let state_digest t =
  let regs =
    List.map (fun r -> Cms.gpr t r)
      [ Regs.eax; Regs.ebx; Regs.ecx; Regs.edx; Regs.esi; Regs.edi ]
  in
  let flags = Cms.eflags t land X86.Flags.status_mask in
  let memsum = ref 0 in
  for i = 0 to 63 do
    memsum :=
      (!memsum * 31) + Cms.read_mem t ~size:4 (scratch + (4 * i))
      land 0xffffffff
  done;
  (regs, flags, !memsum)

let diff_configs =
  [
    ("hot", hot_cfg);
    ("no-reorder", { hot_cfg with Cms.Config.enable_reorder = false });
    ("no-alias", { hot_cfg with Cms.Config.enable_alias_hw = false });
    ("self-check", { hot_cfg with Cms.Config.force_self_check = true });
    ("no-chain", { hot_cfg with Cms.Config.enable_chaining = false });
    ("tiny-regions", { hot_cfg with Cms.Config.max_region_insns = 6 });
  ]

let fst3 (a, _, _) = a
let snd3 (_, b, _) = b
let trd3 (_, _, c) = c

let prop_differential =
  QCheck.Test.make ~count:60 ~name:"interp == translated (all configs)"
    (QCheck.make ~print:(fun body ->
         let l = build_prog body in
         String.concat "\n"
           (List.map (fun (i : Asm.insn_info) -> i.Asm.text) l.Asm.insns))
       gen_body)
    (fun body ->
      let prog = build_prog body in
      let reference, _ =
        Cms.run_listing ~cfg:Cms.interp_only_cfg
          ~max_insns:3_000_000 prog ~entry:0x10000
      in
      let ref_digest = state_digest reference in
      List.for_all
        (fun (name, cfg) ->
          let t, _ =
            Cms.run_listing ~cfg ~max_insns:3_000_000 prog ~entry:0x10000
          in
          let d = state_digest t in
          if d <> ref_digest then
            QCheck.Test.fail_reportf "config %s diverged:@.ref=%s@.got=%s" name
              (Fmt.str "%a" Fmt.(Dump.pair (Dump.list int) (Dump.pair int int))
                 (fst3 ref_digest, (snd3 ref_digest, trd3 ref_digest)))
              (Fmt.str "%a" Fmt.(Dump.pair (Dump.list int) (Dump.pair int int))
                 (fst3 d, (snd3 d, trd3 d)))
          else true)
        diff_configs)

let suites =
  [
    ("cms.basic", basic_tests);
    ("cms.exceptions", exception_tests);
    ("cms.interrupts", interrupt_tests);
    ("cms.differential", [ QCheck_alcotest.to_alcotest prop_differential ]);
  ]
