test/test_vliw.ml: Abi Alcotest Alias Array Atom Bytes Char Code Exec Int32 List Machine Molecule Nexn Perf Regfile Result Storebuf Vliw X86
