test/test_cms.ml: Alcotest Asm Cms Cond Dump Fmt Insn List Machine QCheck QCheck_alcotest Regs String Vliw X86
