test/test_machine.ml: Alcotest Bus Bytes Char Finegrain Framebuf Int64 Irq List Machine Mem Mmu Platform Uart X86
