test/test_main.ml: Alcotest Test_cms Test_machine Test_props Test_smc Test_vliw Test_workloads Test_x86
