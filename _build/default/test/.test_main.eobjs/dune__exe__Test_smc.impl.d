test/test_smc.ml: Alcotest Asm Bytes Cms Fmt Insn List Machine Option Regs X86
