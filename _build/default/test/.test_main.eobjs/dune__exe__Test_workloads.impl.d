test/test_workloads.ml: Alcotest Cms Fmt List Workloads X86
