test/test_x86.ml: Alcotest Array Asm Bytes Char Cond Decode Encode Exn Flags Insn List QCheck QCheck_alcotest Regs X86
