test/test_props.ml: Alcotest Array Asm Bytes Char Cms Decode Encode Exn Fmt Gen Insn List QCheck QCheck_alcotest X86
