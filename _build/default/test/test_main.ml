(* Aggregates all test suites into one alcotest runner. *)
let () = Alcotest.run "cms-repro" (Test_x86.suites @ Test_machine.suites @ Test_vliw.suites @ Test_cms.suites @ Test_smc.suites @ Test_workloads.suites @ Test_props.suites)
