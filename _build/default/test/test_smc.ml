(* Tests for the adaptive machinery: self-modifying code (page /
   fine-grain protection, self-revalidation, stylized immediates,
   translation groups, DMA invalidation), memory-mapped I/O
   speculation recovery, alias-violation recovery, and store-buffer
   overflow adaptation.  Each asserts both *correct results* and that
   the intended mechanism actually fired (via the stats counters). *)

open X86

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool

let hot_cfg =
  { Cms.Config.debug with Cms.Config.translate_threshold = 3 }

let run ?(cfg = hot_cfg) ?max_insns prog ~entry =
  Cms.run_listing ~cfg ?max_insns prog ~entry

(* ------------------------------------------------------------------ *)
(* Doom/Quake-style stylized SMC: patch an immediate, rerun the loop   *)
(* ------------------------------------------------------------------ *)

(* eax += IMM, 50 times per outer iteration; outer patches IMM = 1..8.
   Expected eax = 50 * (1+2+..+8) = 1800.  Two-pass assembly with the
   SAME item list so the layout (and thus the immediate field address)
   is identical between passes. *)
let smc_imm_items imm_addr =
  let open Asm in
  [
    mov_ri eax 0;
    mov_ri esi 1;
    label "outer";
    mov_mr (m imm_addr) esi;
    mov_ri ecx 50;
    label "inner";
    label "patch_me";
    add_ri eax 0x0;
    dec_r ecx;
    jne "inner";
    inc_r esi;
    cmp_ri esi 9;
    jne "outer";
    hlt;
  ]

let smc_imm_prog_fixed () =
  let open Asm in
  let l = assemble ~base:0x10000 (smc_imm_items 0) in
  let patch_addr = label_addr l "patch_me" in
  let info =
    List.find (fun (i : insn_info) -> i.addr = patch_addr) l.insns
  in
  assemble ~base:0x10000 (smc_imm_items (Option.get info.imm32_addr))

let test_stylized_smc () =
  let prog = smc_imm_prog_fixed () in
  let t, _ = run prog ~entry:0x10000 in
  check ci "sum" 1800 (Cms.gpr t Regs.eax);
  let s = Cms.stats t in
  check cb "smc invalidations happened" true (s.Cms.Stats.invalidations > 0)

let test_stylized_smc_disabled () =
  (* without stylized support it must still be correct, just slower *)
  let cfg = { hot_cfg with Cms.Config.enable_stylized = false } in
  let prog = smc_imm_prog_fixed () in
  let t, _ = run ~cfg prog ~entry:0x10000 in
  check ci "sum" 1800 (Cms.gpr t Regs.eax)

let test_stylized_reduces_invalidations () =
  let prog = smc_imm_prog_fixed () in
  let t_with, _ = run prog ~entry:0x10000 in
  let t_without, _ =
    run
      ~cfg:
        {
          hot_cfg with
          Cms.Config.enable_stylized = false;
          Cms.Config.enable_groups = false;
          Cms.Config.enable_self_check = false;
        }
      prog ~entry:0x10000
  in
  check ci "same result" (Cms.gpr t_without Regs.eax) (Cms.gpr t_with Regs.eax);
  let i_with = (Cms.stats t_with).Cms.Stats.invalidations
  and i_without = (Cms.stats t_without).Cms.Stats.invalidations in
  check cb
    (Fmt.str "fewer invalidations with stylized (%d vs %d)" i_with i_without)
    true (i_with <= i_without)

(* ------------------------------------------------------------------ *)
(* Mixed code and data on one page: fine-grain protection (§3.6.1)     *)
(* ------------------------------------------------------------------ *)

(* Hot loop whose counter lives on the same page as the code, but in a
   different 64-byte chunk.  Two-pass: assemble once to learn the
   counter's address, then again with it folded in. *)
let mixed_page_items counter =
  let open Asm in
  [
    jmp "code";
    align 64;
    label "counter";
    dd [ 0 ];
    align 64;
    label "code";
    mov_ri ecx 2000;
    mov_ri eax 0;
    label "loop";
    inc_m (m counter);
    add_ri eax 1;
    dec_r ecx;
    jne "loop";
    hlt;
  ]

let mixed_page_prog_fixed () =
  let open Asm in
  let l = assemble ~base:0x10000 (mixed_page_items 0) in
  assemble ~base:0x10000 (mixed_page_items (label_addr l "counter"))

let test_fine_grain_filters_faults () =
  let prog = mixed_page_prog_fixed () in
  let t_fg, _ = run prog ~entry:0x10000 in
  let t_nofg, _ =
    run ~cfg:{ hot_cfg with Cms.Config.enable_fine_grain = false } prog
      ~entry:0x10000
  in
  (* both correct *)
  check ci "fg result" 2000 (Cms.gpr t_fg Regs.eax);
  check ci "nofg result" 2000 (Cms.gpr t_nofg Regs.eax);
  check ci "counter fg" 2000
    (Cms.read_mem t_fg ~size:4
       (Asm.label_addr (mixed_page_prog_fixed ()) "counter"));
  (* fine grain takes orders of magnitude fewer protection faults *)
  let f_fg = (Cms.mem t_fg).Machine.Mem.smc_events
  and f_nofg = (Cms.mem t_nofg).Machine.Mem.smc_events in
  check cb
    (Fmt.str "fault ratio (%d vs %d)" f_fg f_nofg)
    true
    (f_nofg > 10 * max 1 f_fg);
  (* and costs fewer molecules per instruction *)
  check cb "fg is faster" true (Cms.mpi t_fg < Cms.mpi t_nofg)

(* ------------------------------------------------------------------ *)
(* Self-revalidation: data in the same chunk as code (§3.6.2)          *)
(* ------------------------------------------------------------------ *)

let same_chunk_items counter =
  let open Asm in
  [
    jmp "code";
    label "counter";
    dd [ 0 ];
    (* counter immediately followed by hot code: same 64B chunk *)
    label "code";
    mov_ri ecx 1500;
    mov_ri eax 0;
    label "loop";
    inc_m (m counter);
    add_ri eax 1;
    dec_r ecx;
    jne "loop";
    hlt;
  ]

let same_chunk_prog () =
  let open Asm in
  let l = assemble ~base:0x10000 (same_chunk_items 0) in
  assemble ~base:0x10000 (same_chunk_items (label_addr l "counter"))

let test_self_revalidation () =
  let prog = same_chunk_prog () in
  let t, _ = run prog ~entry:0x10000 in
  check ci "result" 1500 (Cms.gpr t Regs.eax);
  let s = Cms.stats t in
  check cb "revalidation used" true (s.Cms.Stats.reval_checks > 0);
  check cb "revalidations succeed" true
    (s.Cms.Stats.reval_hits = s.Cms.Stats.reval_checks);
  (* and it pays: disabling self-reval must not be faster *)
  let t2, _ =
    run ~cfg:{ hot_cfg with Cms.Config.enable_self_reval = false } prog
      ~entry:0x10000
  in
  check ci "result without reval" 1500 (Cms.gpr t2 Regs.eax)

(* ------------------------------------------------------------------ *)
(* Translation groups: multi-version SMC (§3.6.5)                      *)
(* ------------------------------------------------------------------ *)

(* The "BLT driver" pattern: one function whose immediate alternates
   between two recurring versions; each version should be reusable from
   the translation group instead of retranslating. *)
let groups_items imm_addr =
  let open Asm in
  [
    label "start";
    mov_ri eax 0;
    mov_ri esi 0;
    label "outer";
    mov_rr edx esi;
    and_ri edx 1;
    inc_r edx;
    mov_mr (m imm_addr) edx; (* patch fn's immediate to 1 or 2 *)
    mov_ri ecx 100;
    label "inner";
    call "fn";
    dec_r ecx;
    jne "inner";
    inc_r esi;
    cmp_ri esi 10;
    jne "outer";
    hlt;
    align 16;
    label "fn";
    label "patch_insn";
    add_ri eax 0x1;
    ret;
  ]

let groups_prog () =
  let open Asm in
  let l = assemble ~base:0x10000 (groups_items 0) in
  let patch_addr = label_addr l "patch_insn" in
  let info =
    List.find (fun (i : insn_info) -> i.addr = patch_addr) l.insns
  in
  assemble ~base:0x10000 (groups_items (Option.get info.imm32_addr))

let test_translation_groups () =
  let prog = groups_prog () in
  (* 10 outer iterations: odd esi -> imm 2 (5 times), even -> imm 1
     (5 times)... esi runs 0..9: edx = (esi&1)+1: five 1s, five 2s.
     eax = 100 * (5*1 + 5*2) = 1500 *)
  let t, _ = run prog ~entry:0x10000 in
  check ci "result" 1500 (Cms.gpr t Regs.eax);
  (* disable groups: same result *)
  let t2, _ =
    run ~cfg:{ hot_cfg with Cms.Config.enable_groups = false } prog
      ~entry:0x10000
  in
  check ci "result sans groups" 1500 (Cms.gpr t2 Regs.eax)

(* ------------------------------------------------------------------ *)
(* DMA invalidation                                                    *)
(* ------------------------------------------------------------------ *)

let test_dma_invalidation () =
  let payload =
    X86.Asm.assemble ~base:0x40000
      [ X86.Asm.mov_ri X86.Asm.eax 0x77; X86.Asm.I X86.Insn.Hlt ]
  in
  let image = Bytes.make 4096 '\x00' in
  Bytes.blit payload.X86.Asm.image 0 image 0
    (Bytes.length payload.X86.Asm.image);
  let open Asm in
  let prog =
    assemble ~base:0x10000
      [
        mov_ri ecx 30;
        label "warm";
        call "target_call";
        dec_r ecx;
        jne "warm";
        mov_ri edx Machine.Platform.disk_base;
        mov_ri eax 0;
        I (Insn.Out (Insn.S32, Insn.PortDx));
        mov_ri edx (Machine.Platform.disk_base + 1);
        mov_ri eax 0x40000;
        I (Insn.Out (Insn.S32, Insn.PortDx));
        mov_ri edx (Machine.Platform.disk_base + 2);
        mov_ri eax 1;
        I (Insn.Out (Insn.S32, Insn.PortDx));
        mov_ri edx (Machine.Platform.disk_base + 3);
        mov_ri eax 1;
        I (Insn.Out (Insn.S32, Insn.PortDx));
        label "wait";
        mov_ri edx (Machine.Platform.disk_base + 3);
        I (Insn.In (Insn.S32, Insn.PortDx));
        test_ri eax 1;
        jne "wait";
        jmp_abs 0x40000;
        label "target_call";
        jmp_abs 0x40000;
      ]
  in
  (* initial stub at 0x40000: mov eax,0x11; ret *)
  let stub = assemble ~base:0x40000 [ mov_ri eax 0x11; ret ] in
  let t = Cms.create ~cfg:hot_cfg ~disk_image:image () in
  Cms.load t prog;
  Cms.load t stub;
  Cms.boot t ~entry:0x10000;
  let _ = Cms.run ~max_insns:1_000_000 t in
  check ci "new code ran after DMA" 0x77 (Cms.gpr t Regs.eax)

(* ------------------------------------------------------------------ *)
(* MMIO speculation and recovery (§3.4)                                *)
(* ------------------------------------------------------------------ *)

let test_mmio_known_insn () =
  (* a hot loop that writes the framebuffer: the interpreter profiles
     the MMIO instruction, so the translation carves it out *)
  let open Asm in
  let prog =
    assemble ~base:0x10000
      [
        mov_ri edi Machine.Platform.fb_base;
        mov_ri ecx 500;
        mov_ri eax 0;
        label "loop";
        mov_mr (mb edi) eax; (* MMIO store *)
        add_rm eax (mb edi); (* MMIO load back *)
        add_ri edi 4;
        dec_r ecx;
        jne "loop";
        hlt;
      ]
  in
  let t, _ = run prog ~entry:0x10000 in
  (* eax = sum of fibonacci-ish accumulation; just check against
     interpreter-only reference *)
  let t2, _ = run ~cfg:Cms.interp_only_cfg prog ~entry:0x10000 in
  check ci "matches interp" (Cms.gpr t2 Regs.eax) (Cms.gpr t Regs.eax);
  check cb "fb written" true
    ((Cms.platform t).Machine.Platform.fb.Machine.Framebuf.writes > 0)

let test_mmio_spec_fault_recovery () =
  (* an address-sliding loop: profiled on RAM, later slides into the
     framebuffer window — speculative accesses then fault and CMS
     adapts *)
  let open Asm in
  let prog =
    assemble ~base:0x10000
      [
        mov_ri edi (Machine.Platform.fb_base - 512);
        mov_ri ecx 256;
        mov_ri eax 0;
        label "loop";
        mov_mr (mb edi) ecx; (* store (forces a st->ld pair) *)
        add_rm eax (mb edi); (* load, reordering candidate *)
        add_ri edi 4;
        dec_r ecx;
        jne "loop";
        hlt;
      ]
  in
  let t, _ = run prog ~entry:0x10000 in
  let t2, _ = run ~cfg:Cms.interp_only_cfg prog ~entry:0x10000 in
  check ci "matches interp" (Cms.gpr t2 Regs.eax) (Cms.gpr t Regs.eax)

(* ------------------------------------------------------------------ *)
(* Store buffer overflow + alias recovery                               *)
(* ------------------------------------------------------------------ *)

let test_sbuf_overflow_adapts () =
  (* straight-line code with ~100 stores exceeds the 64-entry gated
     store buffer; CMS must retranslate with smaller regions *)
  let open Asm in
  let body =
    List.concat_map
      (fun i -> [ mov_mi (m (0x20000 + (4 * i))) i ])
      (List.init 100 (fun i -> i))
  in
  let prog =
    assemble ~base:0x10000
      ([ mov_ri edx 20; label "loop" ] @ body
      @ [ dec_r edx; jne "loop"; mov_rm eax (m 0x2018c); hlt ])
  in
  let t, _ = run prog ~entry:0x10000 in
  check ci "last store visible" 99 (Cms.gpr t Regs.eax);
  check ci "first store" 0 (Cms.read_mem t ~size:4 0x20000)

let test_alias_recovery () =
  (* store through esi, load through edi, same address: the reordered
     load keeps faulting on the alias hardware until CMS retranslates *)
  let open Asm in
  let prog =
    assemble ~base:0x10000
      [
        mov_ri esi 0x20000;
        mov_ri edi 0x20000;
        mov_ri ecx 500;
        mov_ri eax 0;
        label "loop";
        mov_mr (mb esi) ecx;
        add_rm eax (mb edi);
        dec_r ecx;
        jne "loop";
        hlt;
      ]
  in
  let t, _ = run prog ~entry:0x10000 in
  (* eax = sum 500..1 = 125250 *)
  check ci "sum" 125250 (Cms.gpr t Regs.eax)

(* ------------------------------------------------------------------ *)
(* Chaining                                                            *)
(* ------------------------------------------------------------------ *)

let test_chaining () =
  let open Asm in
  (* calls end translation regions, so the call sites chain to the
     callee translations and the fallthrough chains back *)
  let prog =
    assemble ~base:0x10000
      [
        mov_ri eax 0;
        mov_ri ecx 300;
        label "loop";
        call "f1";
        call "f2";
        dec_r ecx;
        jne "loop";
        hlt;
        align 16;
        label "f1";
        add_ri eax 1;
        ret;
        align 16;
        label "f2";
        add_ri eax 2;
        ret;
      ]
  in
  let t, _ = run prog ~entry:0x10000 in
  check ci "result" 900 (Cms.gpr t Regs.eax);
  check cb "chains were patched" true
    ((Cms.stats t).Cms.Stats.chain_patches > 0)

let suites =
  [
    ( "smc.stylized",
      [
        Alcotest.test_case "patched immediates correct" `Quick test_stylized_smc;
        Alcotest.test_case "correct without stylized" `Quick
          test_stylized_smc_disabled;
        Alcotest.test_case "stylized reduces invalidations" `Quick
          test_stylized_reduces_invalidations;
      ] );
    ( "smc.protection",
      [
        Alcotest.test_case "fine-grain filters faults" `Quick
          test_fine_grain_filters_faults;
        Alcotest.test_case "self-revalidation" `Quick test_self_revalidation;
        Alcotest.test_case "translation groups" `Quick test_translation_groups;
        Alcotest.test_case "dma invalidation" `Quick test_dma_invalidation;
      ] );
    ( "smc.mmio",
      [
        Alcotest.test_case "known mmio insn" `Quick test_mmio_known_insn;
        Alcotest.test_case "spec fault recovery" `Quick
          test_mmio_spec_fault_recovery;
      ] );
    ( "smc.limits",
      [
        Alcotest.test_case "store buffer overflow" `Quick
          test_sbuf_overflow_adapts;
        Alcotest.test_case "alias recovery" `Quick test_alias_recovery;
        Alcotest.test_case "chaining" `Quick test_chaining;
      ] );
  ]
