(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md experiment index), plus bechamel
   microbenchmarks of the core mechanisms.

     dune exec bench/main.exe            # everything
     dune exec bench/main.exe -- fig2    # one experiment
     dune exec bench/main.exe -- micro   # microbenchmarks only *)

module Experiments = Workloads.Experiments

let pr fmt = Fmt.pr fmt

let run_fig2 () = Experiments.pp_degradation
    ~title:"Figure 2: Degradation Caused by Suppressing Memory Reordering"
    Fmt.stdout (Experiments.fig2 ())

let run_fig3 () = Experiments.pp_degradation
    ~title:"Figure 3: Degradation Caused By No Alias Hardware"
    Fmt.stdout (Experiments.fig3 ())

let run_table1 () = Experiments.pp_table1 Fmt.stdout (Experiments.table1 ())

let run_selfcheck () =
  Experiments.pp_selfcheck Fmt.stdout (Experiments.selfcheck ())

let run_selfreval () =
  Experiments.pp_selfreval Fmt.stdout (Experiments.selfreval ())

let run_groups () = Experiments.pp_groups Fmt.stdout (Experiments.groups ())

let run_flow () = Experiments.pp_flow Fmt.stdout (Experiments.flow ())

let run_ablations () =
  Experiments.pp_sweep ~title:"translate threshold (026.compress)"
    ~param_name:"threshold" Fmt.stdout
    (Experiments.threshold_sweep ());
  Experiments.pp_sweep ~title:"max region size (047.tomcatv)"
    ~param_name:"insns" Fmt.stdout
    (Experiments.region_sweep ());
  Experiments.pp_sweep ~title:"alias slots (026.compress)"
    ~param_name:"slots" Fmt.stdout
    (Experiments.alias_slot_sweep ());
  Experiments.pp_sweep ~title:"chaining on/off (085.gcc)" ~param_name:"on"
    Fmt.stdout
    (Experiments.chaining_ablation ());
  Experiments.pp_sweep ~title:"store buffer capacity (Quattro Pro)"
    ~param_name:"entries" Fmt.stdout
    (Experiments.sbuf_sweep ())

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks                                            *)
(* ------------------------------------------------------------------ *)

let micro_tests () =
  let open Bechamel in
  (* commit / rollback cost (the §3.1 "commits are effectively free"
     claim, here in host-simulator nanoseconds) *)
  let mem = Machine.Mem.create ~ram_size:(1 lsl 20) () in
  Machine.Mmu.map_identity mem.Machine.Mem.mmu ~virt:0 ~pages:256
    ~writable:true;
  let exec = Vliw.Exec.create mem in
  let commit_bench =
    Test.make ~name:"commit"
      (Staged.stage (fun () -> Vliw.Exec.commit exec))
  in
  let rollback_bench =
    Test.make ~name:"rollback"
      (Staged.stage (fun () -> Vliw.Exec.rollback exec))
  in
  (* decoder throughput on a canned hot-loop byte string *)
  let listing =
    X86.Asm.(
      assemble ~base:0x1000
        [
          mov_ri ecx 16;
          label "l";
          add_ri eax 3;
          mov_rm ebx (mbd esi 4);
          dec_r ecx;
          jne "l";
          hlt;
        ])
  in
  let bytes = listing.X86.Asm.image in
  let fetch a = Char.code (Bytes.get bytes (a - 0x1000)) in
  let decode_bench =
    Test.make ~name:"decode-insn"
      (Staged.stage (fun () -> ignore (X86.Decode.decode ~fetch 0x1000)))
  in
  (* whole-pipeline translation of a representative region *)
  let translate_bench =
    Test.make ~name:"translate-region"
      (Staged.stage (fun () ->
           let c =
             Cms.create
               ~cfg:{ Cms.Config.default with Cms.Config.translate_threshold = 1 }
               ()
           in
           Cms.load c listing;
           Cms.boot c ~entry:0x1000;
           ignore (Cms.run ~max_insns:500 c)))
  in
  Test.make_grouped ~name:"cms"
    [ commit_bench; rollback_bench; decode_bench; translate_bench ]

let run_micro () =
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000
      ~quota:(Time.second 0.5)
      ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg instances (micro_tests ()) in
  let results = Analyze.all ols (List.hd instances) raw in
  pr "=== Microbenchmarks (host ns/op; Config's molecule cost model is@.";
  pr "    the guest analogue of these) ===@.";
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some [ est ] -> pr "  %-28s %10.1f ns/run@." name est
      | _ -> pr "  %-28s (no estimate)@." name)
    results

(* ------------------------------------------------------------------ *)

let all () =
  run_fig2 ();
  run_fig3 ();
  run_table1 ();
  run_selfcheck ();
  run_selfreval ();
  run_groups ();
  run_flow ();
  run_ablations ();
  run_micro ()

let () =
  match if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" with
  | "fig2" -> run_fig2 ()
  | "fig3" -> run_fig3 ()
  | "table1" -> run_table1 ()
  | "selfcheck" -> run_selfcheck ()
  | "selfreval" -> run_selfreval ()
  | "groups" -> run_groups ()
  | "flow" -> run_flow ()
  | "ablations" -> run_ablations ()
  | "micro" -> run_micro ()
  | "all" -> all ()
  | other ->
      Fmt.epr
        "unknown experiment %S; one of: fig2 fig3 table1 selfcheck selfreval \
         groups flow ablations micro all@."
        other;
      exit 1
