(** General-purpose register names for the IA-32 subset.

    Registers are represented as plain integers 0..7 using the hardware
    encoding (the [reg] field of ModRM).  8-bit registers reuse the same
    numbering: 0..3 are AL..BL (low byte of GPR 0..3) and 4..7 are AH..BH
    (bits 8..15 of GPR 0..3), exactly as in IA-32. *)

type t = int

let eax = 0
let ecx = 1
let edx = 2
let ebx = 3
let esp = 4
let ebp = 5
let esi = 6
let edi = 7

let all = [ eax; ecx; edx; ebx; esp; ebp; esi; edi ]

let name32 = [| "eax"; "ecx"; "edx"; "ebx"; "esp"; "ebp"; "esi"; "edi" |]
let name8 = [| "al"; "cl"; "dl"; "bl"; "ah"; "ch"; "dh"; "bh" |]

let pp32 fmt r = Fmt.string fmt name32.(r)
let pp8 fmt r = Fmt.string fmt name8.(r)

(** [gpr_of_r8 r] is the 32-bit register backing 8-bit register [r],
    paired with the bit shift of the byte within it (0 or 8). *)
let gpr_of_r8 r = if r < 4 then (r, 0) else (r - 4, 8)

(** Read the 8-bit register [r] out of a function giving 32-bit values. *)
let read8 ~read32 r =
  let g, sh = gpr_of_r8 r in
  (read32 g lsr sh) land 0xff

(** Compute the new 32-bit value of the GPR backing 8-bit register [r]
    after storing byte [v] into it. *)
let write8 ~read32 r v =
  let g, sh = gpr_of_r8 r in
  let old = read32 g in
  let masked = old land lnot (0xff lsl sh) in
  (g, masked lor ((v land 0xff) lsl sh))
