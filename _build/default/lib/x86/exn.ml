(** Architectural x86 exceptions (faults) for the subset.

    These are *target*-level events: they must be reflected to the guest
    via its interrupt table with precise state (all earlier instructions
    complete, the faulting one and all later ones not).  They are distinct
    from the VLIW host's native exceptions ([Vliw.Nexn]), which are
    implementation artifacts handled internally by CMS. *)

type fault =
  | DE  (** divide error *)
  | UD  (** invalid opcode *)
  | BP  (** breakpoint (INT3) *)
  | GP of int  (** general protection, with error code *)
  | PF of { addr : int; write : bool; present : bool }
      (** page fault: faulting linear address, access kind, and whether
          the page was present (protection) or not (not-present) *)

(** Interrupt vector numbers, as on real IA-32. *)
let vector = function
  | DE -> 0
  | BP -> 3
  | UD -> 6
  | GP _ -> 13
  | PF _ -> 14

let error_code = function
  | DE | UD | BP -> None
  | GP c -> Some c
  | PF { write; present; _ } ->
      Some ((if present then 1 else 0) lor if write then 2 else 0)

(** Faults are delivered by raising this exception from instruction
    semantics; the interpreter catches it at the instruction boundary. *)
exception Fault of fault

let pp fmt = function
  | DE -> Fmt.string fmt "#DE"
  | UD -> Fmt.string fmt "#UD"
  | BP -> Fmt.string fmt "#BP"
  | GP c -> Fmt.pf fmt "#GP(%d)" c
  | PF { addr; write; present } ->
      Fmt.pf fmt "#PF(addr=0x%x,%s,%s)" addr
        (if write then "write" else "read")
        (if present then "prot" else "not-present")

let to_string f = Fmt.str "%a" pp f

let equal a b =
  match (a, b) with
  | DE, DE | UD, UD | BP, BP -> true
  | GP x, GP y -> x = y
  | PF a, PF b -> a.addr = b.addr && a.write = b.write && a.present = b.present
  | _ -> false
