(** Binary encoder (assembler back end) for the IA-32 subset.

    Emits canonical encodings: long immediate forms (0x81 rather than
    0x83/0x04/0x05) and rel32 branches, so instruction lengths do not
    depend on operand values or layout, which keeps assembly single-pass.
    [Decode.decode] of the output always yields the input AST — a
    property-tested invariant. *)

open Insn

type encoded = {
  bytes : Bytes.t;
  imm32_off : int option;
      (** offset of a 32-bit data immediate within [bytes], if any;
          matches [Decode.fetched.imm32_off] *)
}

let fits_s8 v =
  let v = v land 0xffffffff in
  let s = if v land 0x80000000 <> 0 then v - 0x100000000 else v in
  s >= -128 && s <= 127

type b = { buf : Buffer.t; mutable imm_off : int option }

let byte b v = Buffer.add_char b.buf (Char.chr (v land 0xff))

let i16 b v =
  byte b v;
  byte b (v lsr 8)

let i32 b v =
  byte b v;
  byte b (v lsr 8);
  byte b (v lsr 16);
  byte b (v lsr 24)

let imm32_here b v =
  b.imm_off <- Some (Buffer.length b.buf);
  i32 b v

(* ------------------------------------------------------------------ *)
(* ModRM / SIB emission                                                *)
(* ------------------------------------------------------------------ *)

let emit_modrm b ~reg rm =
  let modrm md reg rm = byte b ((md lsl 6) lor (reg lsl 3) lor rm) in
  match rm with
  | R r -> modrm 3 reg r
  | M { base; index; disp } -> (
      let disp = disp land 0xffffffff in
      let sib scale idx bse =
        let s =
          match scale with
          | 1 -> 0
          | 2 -> 1
          | 4 -> 2
          | 8 -> 3
          | _ -> invalid_arg "Encode: bad scale"
        in
        byte b ((s lsl 6) lor (idx lsl 3) lor bse)
      in
      (match index with
      | Some (i, _) when i = Regs.esp -> invalid_arg "Encode: esp as index"
      | _ -> ());
      match (base, index) with
      | None, None ->
          (* [disp32] *)
          modrm 0 reg 5;
          i32 b disp
      | None, Some (idx, scale) ->
          (* [index*scale + disp32] : SIB with base=101, mod=0 *)
          modrm 0 reg 4;
          sib scale idx 5;
          i32 b disp
      | Some bse, idx -> (
          let need_sib = idx <> None || bse = Regs.esp in
          let md =
            if disp = 0 && bse <> Regs.ebp then 0
            else if fits_s8 disp then 1
            else 2
          in
          let emit_disp () =
            match md with
            | 0 -> ()
            | 1 -> byte b disp
            | _ -> i32 b disp
          in
          match (need_sib, idx) with
          | false, _ ->
              modrm md reg bse;
              emit_disp ()
          | true, Some (i, scale) ->
              modrm md reg 4;
              sib scale i bse;
              emit_disp ()
          | true, None ->
              (* base = esp: SIB with index = none (100) *)
              modrm md reg 4;
              sib 1 4 bse;
              emit_disp ()))

(* ------------------------------------------------------------------ *)
(* Instruction emission                                                *)
(* ------------------------------------------------------------------ *)

(* [at] is the address the instruction will live at; needed for rel32
   branch displacements. *)
let emit b ~at insn =
  let rel32 opbytes target =
    List.iter (byte b) opbytes;
    let next = at + List.length opbytes + 4 in
    i32 b ((target - next) land 0xffffffff)
  in
  match insn with
  | Arith (op, sz, ops) -> (
      let base = arith_digit op lsl 3 in
      match (sz, ops) with
      | S8, RM_R (rm, r) ->
          byte b base;
          emit_modrm b ~reg:r rm
      | S32, RM_R (rm, r) ->
          byte b (base + 1);
          emit_modrm b ~reg:r rm
      | S8, R_RM (r, rm) ->
          byte b (base + 2);
          emit_modrm b ~reg:r rm
      | S32, R_RM (r, rm) ->
          byte b (base + 3);
          emit_modrm b ~reg:r rm
      | S8, RM_I (rm, i) ->
          byte b 0x80;
          emit_modrm b ~reg:(arith_digit op) rm;
          byte b i
      | S32, RM_I (rm, i) ->
          byte b 0x81;
          emit_modrm b ~reg:(arith_digit op) rm;
          imm32_here b i)
  | Test (sz, rm, T_R r) ->
      byte b (match sz with S8 -> 0x84 | S32 -> 0x85);
      emit_modrm b ~reg:r rm
  | Test (sz, rm, T_I i) -> (
      byte b (match sz with S8 -> 0xf6 | S32 -> 0xf7);
      emit_modrm b ~reg:0 rm;
      match sz with S8 -> byte b i | S32 -> imm32_here b i)
  | Mov (sz, ops) -> (
      match (sz, ops) with
      | S8, RM_R (rm, r) ->
          byte b 0x88;
          emit_modrm b ~reg:r rm
      | S32, RM_R (rm, r) ->
          byte b 0x89;
          emit_modrm b ~reg:r rm
      | S8, R_RM (r, rm) ->
          byte b 0x8a;
          emit_modrm b ~reg:r rm
      | S32, R_RM (r, rm) ->
          byte b 0x8b;
          emit_modrm b ~reg:r rm
      | S8, RM_I (R r, i) ->
          byte b (0xb0 + r);
          byte b i
      | S32, RM_I (R r, i) ->
          byte b (0xb8 + r);
          imm32_here b i
      | S8, RM_I ((M _ as rm), i) ->
          byte b 0xc6;
          emit_modrm b ~reg:0 rm;
          byte b i
      | S32, RM_I ((M _ as rm), i) ->
          byte b 0xc7;
          emit_modrm b ~reg:0 rm;
          imm32_here b i)
  | Movx { sign; dst; src } ->
      byte b 0x0f;
      byte b (if sign then 0xbe else 0xb6);
      emit_modrm b ~reg:dst src
  | Lea (r, m) ->
      byte b 0x8d;
      emit_modrm b ~reg:r (M m)
  | Xchg (sz, rm, r) ->
      byte b (match sz with S8 -> 0x86 | S32 -> 0x87);
      emit_modrm b ~reg:r rm
  | Inc (S32, R r) -> byte b (0x40 + r)
  | Dec (S32, R r) -> byte b (0x48 + r)
  | Inc (sz, rm) ->
      byte b (match sz with S8 -> 0xfe | S32 -> 0xff);
      emit_modrm b ~reg:0 rm
  | Dec (sz, rm) ->
      byte b (match sz with S8 -> 0xfe | S32 -> 0xff);
      emit_modrm b ~reg:1 rm
  | Not (sz, rm) ->
      byte b (match sz with S8 -> 0xf6 | S32 -> 0xf7);
      emit_modrm b ~reg:2 rm
  | Neg (sz, rm) ->
      byte b (match sz with S8 -> 0xf6 | S32 -> 0xf7);
      emit_modrm b ~reg:3 rm
  | Shift (op, sz, rm, count) -> (
      let digit = shift_digit op in
      match count with
      | C1 ->
          byte b (match sz with S8 -> 0xd0 | S32 -> 0xd1);
          emit_modrm b ~reg:digit rm
      | Ccl ->
          byte b (match sz with S8 -> 0xd2 | S32 -> 0xd3);
          emit_modrm b ~reg:digit rm
      | Cimm i ->
          byte b (match sz with S8 -> 0xc0 | S32 -> 0xc1);
          emit_modrm b ~reg:digit rm;
          byte b i)
  | Mul (sz, rm) ->
      byte b (match sz with S8 -> 0xf6 | S32 -> 0xf7);
      emit_modrm b ~reg:4 rm
  | Imul1 (sz, rm) ->
      byte b (match sz with S8 -> 0xf6 | S32 -> 0xf7);
      emit_modrm b ~reg:5 rm
  | Imul2 (r, rm) ->
      byte b 0x0f;
      byte b 0xaf;
      emit_modrm b ~reg:r rm
  | Div (sz, rm) ->
      byte b (match sz with S8 -> 0xf6 | S32 -> 0xf7);
      emit_modrm b ~reg:6 rm
  | Idiv (sz, rm) ->
      byte b (match sz with S8 -> 0xf6 | S32 -> 0xf7);
      emit_modrm b ~reg:7 rm
  | Cdq -> byte b 0x99
  | Push (PushR r) -> byte b (0x50 + r)
  | Push (PushI i) ->
      byte b 0x68;
      imm32_here b i
  | Push (PushM m) ->
      byte b 0xff;
      emit_modrm b ~reg:6 (M m)
  | Pop (R r) -> byte b (0x58 + r)
  | Pop (M _ as rm) ->
      byte b 0x8f;
      emit_modrm b ~reg:0 rm
  | Pushf -> byte b 0x9c
  | Popf -> byte b 0x9d
  | Jcc (cc, target) -> rel32 [ 0x0f; 0x80 + Cond.to_code cc ] target
  | Setcc (cc, rm) ->
      byte b 0x0f;
      byte b (0x90 + Cond.to_code cc);
      emit_modrm b ~reg:0 rm
  | Jmp target -> rel32 [ 0xe9 ] target
  | JmpInd rm ->
      byte b 0xff;
      emit_modrm b ~reg:4 rm
  | Call target -> rel32 [ 0xe8 ] target
  | CallInd rm ->
      byte b 0xff;
      emit_modrm b ~reg:2 rm
  | Ret 0 -> byte b 0xc3
  | Ret n ->
      byte b 0xc2;
      i16 b n
  | Int3 -> byte b 0xcc
  | Int v ->
      byte b 0xcd;
      byte b v
  | Iret -> byte b 0xcf
  | In (S8, PortImm p) ->
      byte b 0xe4;
      byte b p
  | In (S32, PortImm p) ->
      byte b 0xe5;
      byte b p
  | Out (S8, PortImm p) ->
      byte b 0xe6;
      byte b p
  | Out (S32, PortImm p) ->
      byte b 0xe7;
      byte b p
  | In (S8, PortDx) -> byte b 0xec
  | In (S32, PortDx) -> byte b 0xed
  | Out (S8, PortDx) -> byte b 0xee
  | Out (S32, PortDx) -> byte b 0xef
  | Hlt -> byte b 0xf4
  | Nop -> byte b 0x90
  | Cli -> byte b 0xfa
  | Sti -> byte b 0xfb
  | Strop { rep; op; size } ->
      if rep then byte b 0xf3;
      byte b
        (match (op, size) with
        | Movs, S8 -> 0xa4
        | Movs, S32 -> 0xa5
        | Stos, S8 -> 0xaa
        | Stos, S32 -> 0xab)
  | Lidt m ->
      byte b 0x0f;
      byte b 0x01;
      emit_modrm b ~reg:3 (M m)

(** Encode [insn] as if placed at address [at]. *)
let encode ~at insn =
  let b = { buf = Buffer.create 8; imm_off = None } in
  emit b ~at insn;
  { bytes = Buffer.to_bytes b.buf; imm32_off = b.imm_off }

(** Encoded length; independent of placement (canonical forms only). *)
let length insn = Bytes.length (encode ~at:0 insn).bytes
