(** Abstract syntax for the IA-32 subset.

    Register operands are ModRM register numbers ([Regs.t]); whether a
    number denotes a 32-bit or an 8-bit register is determined by the
    instruction's operand size.  Branch targets are absolute 32-bit
    addresses — the decoder resolves rel8/rel32 displacements against the
    address of the next instruction, and the encoder re-derives relative
    displacements. *)

type size = Flags.size = S8 | S32

(** A ModRM memory operand: [base + index*scale + disp]. *)
type mem = {
  base : Regs.t option;
  index : (Regs.t * int) option;  (** register and scale in {1,2,4,8} *)
  disp : int;  (** 32-bit displacement, stored masked *)
}

let mem ?base ?index disp = { base; index; disp = disp land 0xffffffff }

(** Register-or-memory operand (the ModRM r/m field). *)
type rm = R of Regs.t | M of mem

(** The three general operand shapes of two-operand instructions. *)
type ops =
  | RM_R of rm * Regs.t  (** op r/m, reg — e.g. [add \[eax\], ecx] *)
  | R_RM of Regs.t * rm  (** op reg, r/m — e.g. [add ecx, \[eax\]] *)
  | RM_I of rm * int  (** op r/m, imm *)

type arith = Add | Or | Adc | Sbb | And | Sub | Xor | Cmp

(* ModRM /digit for the 0x80/0x81/0x83 immediate group. *)
let arith_digit = function
  | Add -> 0
  | Or -> 1
  | Adc -> 2
  | Sbb -> 3
  | And -> 4
  | Sub -> 5
  | Xor -> 6
  | Cmp -> 7

let arith_of_digit = function
  | 0 -> Add
  | 1 -> Or
  | 2 -> Adc
  | 3 -> Sbb
  | 4 -> And
  | 5 -> Sub
  | 6 -> Xor
  | 7 -> Cmp
  | d -> invalid_arg (Printf.sprintf "arith_of_digit %d" d)

type shift = Shl | Shr | Sar | Rol | Ror

let shift_digit = function Rol -> 0 | Ror -> 1 | Shl -> 4 | Shr -> 5 | Sar -> 7

type count = C1 | Cimm of int | Ccl

(** Source of a PUSH. *)
type pushsrc = PushR of Regs.t | PushI of int | PushM of mem

(** I/O port designation: immediate port number or the DX register. *)
type port = PortImm of int | PortDx

type strkind = Movs | Stos

type t =
  | Arith of arith * size * ops
  | Test of size * rm * ops_test
  | Mov of size * ops
  | Movx of { sign : bool; dst : Regs.t; src : rm }
      (** movzx/movsx r32, r/m8 *)
  | Lea of Regs.t * mem
  | Xchg of size * rm * Regs.t
  | Inc of size * rm
  | Dec of size * rm
  | Not of size * rm
  | Neg of size * rm
  | Shift of shift * size * rm * count
  | Mul of size * rm
  | Imul1 of size * rm  (** one-operand imul: eDX:eAX = eAX * r/m *)
  | Imul2 of Regs.t * rm  (** imul r32, r/m32 *)
  | Div of size * rm
  | Idiv of size * rm
  | Cdq
  | Push of pushsrc
  | Pop of rm
  | Pushf
  | Popf
  | Jcc of Cond.t * int  (** absolute target *)
  | Setcc of Cond.t * rm  (** 8-bit destination *)
  | Jmp of int  (** absolute target *)
  | JmpInd of rm
  | Call of int
  | CallInd of rm
  | Ret of int  (** extra bytes to pop after the return address *)
  | Int3
  | Int of int
  | Iret
  | In of size * port
  | Out of size * port
  | Hlt
  | Nop
  | Cli
  | Sti
  | Strop of { rep : bool; op : strkind; size : size }
  | Lidt of mem  (** 0F 01 /3: load the interrupt table base *)

and ops_test = T_R of Regs.t | T_I of int

(* ------------------------------------------------------------------ *)
(* Classification helpers used by the CMS front end                    *)
(* ------------------------------------------------------------------ *)

(** Does this instruction end a basic block? *)
let is_control_flow = function
  | Jcc _ | Jmp _ | JmpInd _ | Call _ | CallInd _ | Ret _ | Int _ | Int3
  | Iret | Hlt ->
      true
  | _ -> false

(** Unconditional control transfer (no fallthrough). *)
let is_unconditional = function
  | Jmp _ | JmpInd _ | Ret _ | Iret | Hlt -> true
  | _ -> false

(** Instructions the translator never compiles inline; they are executed
    by calling back into the interpreter (the paper's "zero-instruction
    translation" escape also uses this path). *)
let interp_only = function
  | Int _ | Int3 | Iret | Hlt | Cli | Sti | Lidt _ | In _ | Out _
  | Pushf | Popf ->
      (* the system-flag state (IF) lives outside the native flags
         register and can only change at interpreter boundaries *)
      true
  | _ -> false

(** Does the instruction read or write memory (excluding instruction
    fetch and stack engine of push/pop/call/ret)? *)
let rm_is_mem = function M _ -> true | R _ -> false

(* ------------------------------------------------------------------ *)
(* Pretty printing                                                     *)
(* ------------------------------------------------------------------ *)

let pp_mem fmt { base; index; disp } =
  let parts =
    (match base with Some b -> [ Regs.name32.(b) ] | None -> [])
    @ (match index with
      | Some (i, s) -> [ Printf.sprintf "%s*%d" Regs.name32.(i) s ]
      | None -> [])
    @ if disp <> 0 || (base = None && index = None) then
        [ Printf.sprintf "0x%x" disp ]
      else []
  in
  Fmt.pf fmt "[%s]" (String.concat "+" parts)

let pp_rm sz fmt = function
  | R r -> (match sz with S8 -> Regs.pp8 fmt r | S32 -> Regs.pp32 fmt r)
  | M m -> pp_mem fmt m

let pp_ops sz fmt = function
  | RM_R (rm, r) -> Fmt.pf fmt "%a, %a" (pp_rm sz) rm (pp_rm sz) (R r)
  | R_RM (r, rm) -> Fmt.pf fmt "%a, %a" (pp_rm sz) (R r) (pp_rm sz) rm
  | RM_I (rm, i) -> Fmt.pf fmt "%a, 0x%x" (pp_rm sz) rm i

let arith_name = function
  | Add -> "add"
  | Or -> "or"
  | Adc -> "adc"
  | Sbb -> "sbb"
  | And -> "and"
  | Sub -> "sub"
  | Xor -> "xor"
  | Cmp -> "cmp"

let shift_name = function
  | Shl -> "shl"
  | Shr -> "shr"
  | Sar -> "sar"
  | Rol -> "rol"
  | Ror -> "ror"

let size_suffix = function S8 -> "b" | S32 -> "d"

let pp fmt = function
  | Arith (op, sz, ops) ->
      Fmt.pf fmt "%s %a" (arith_name op) (pp_ops sz) ops
  | Test (sz, rm, T_R r) ->
      Fmt.pf fmt "test %a, %a" (pp_rm sz) rm (pp_rm sz) (R r)
  | Test (sz, rm, T_I i) -> Fmt.pf fmt "test %a, 0x%x" (pp_rm sz) rm i
  | Mov (sz, ops) -> Fmt.pf fmt "mov %a" (pp_ops sz) ops
  | Movx { sign; dst; src } ->
      Fmt.pf fmt "%s %a, %a"
        (if sign then "movsx" else "movzx")
        Regs.pp32 dst (pp_rm S8) src
  | Lea (r, m) -> Fmt.pf fmt "lea %a, %a" Regs.pp32 r pp_mem m
  | Xchg (sz, rm, r) ->
      Fmt.pf fmt "xchg %a, %a" (pp_rm sz) rm (pp_rm sz) (R r)
  | Inc (sz, rm) -> Fmt.pf fmt "inc %a" (pp_rm sz) rm
  | Dec (sz, rm) -> Fmt.pf fmt "dec %a" (pp_rm sz) rm
  | Not (sz, rm) -> Fmt.pf fmt "not %a" (pp_rm sz) rm
  | Neg (sz, rm) -> Fmt.pf fmt "neg %a" (pp_rm sz) rm
  | Shift (op, sz, rm, c) ->
      let count =
        match c with C1 -> "1" | Cimm i -> string_of_int i | Ccl -> "cl"
      in
      Fmt.pf fmt "%s %a, %s" (shift_name op) (pp_rm sz) rm count
  | Mul (sz, rm) -> Fmt.pf fmt "mul%s %a" (size_suffix sz) (pp_rm sz) rm
  | Imul1 (sz, rm) -> Fmt.pf fmt "imul%s %a" (size_suffix sz) (pp_rm sz) rm
  | Imul2 (r, rm) -> Fmt.pf fmt "imul %a, %a" Regs.pp32 r (pp_rm S32) rm
  | Div (sz, rm) -> Fmt.pf fmt "div%s %a" (size_suffix sz) (pp_rm sz) rm
  | Idiv (sz, rm) -> Fmt.pf fmt "idiv%s %a" (size_suffix sz) (pp_rm sz) rm
  | Cdq -> Fmt.string fmt "cdq"
  | Push (PushR r) -> Fmt.pf fmt "push %a" Regs.pp32 r
  | Push (PushI i) -> Fmt.pf fmt "push 0x%x" i
  | Push (PushM m) -> Fmt.pf fmt "push %a" pp_mem m
  | Pop rm -> Fmt.pf fmt "pop %a" (pp_rm S32) rm
  | Pushf -> Fmt.string fmt "pushf"
  | Popf -> Fmt.string fmt "popf"
  | Jcc (c, t) -> Fmt.pf fmt "j%s 0x%x" (Cond.name c) t
  | Setcc (c, rm) -> Fmt.pf fmt "set%s %a" (Cond.name c) (pp_rm S8) rm
  | Jmp t -> Fmt.pf fmt "jmp 0x%x" t
  | JmpInd rm -> Fmt.pf fmt "jmp %a" (pp_rm S32) rm
  | Call t -> Fmt.pf fmt "call 0x%x" t
  | CallInd rm -> Fmt.pf fmt "call %a" (pp_rm S32) rm
  | Ret 0 -> Fmt.string fmt "ret"
  | Ret n -> Fmt.pf fmt "ret %d" n
  | Int3 -> Fmt.string fmt "int3"
  | Int v -> Fmt.pf fmt "int 0x%x" v
  | Iret -> Fmt.string fmt "iret"
  | In (sz, PortImm p) -> Fmt.pf fmt "in%s 0x%x" (size_suffix sz) p
  | In (sz, PortDx) -> Fmt.pf fmt "in%s dx" (size_suffix sz)
  | Out (sz, PortImm p) -> Fmt.pf fmt "out%s 0x%x" (size_suffix sz) p
  | Out (sz, PortDx) -> Fmt.pf fmt "out%s dx" (size_suffix sz)
  | Hlt -> Fmt.string fmt "hlt"
  | Nop -> Fmt.string fmt "nop"
  | Cli -> Fmt.string fmt "cli"
  | Sti -> Fmt.string fmt "sti"
  | Strop { rep; op; size } ->
      Fmt.pf fmt "%s%s%s"
        (if rep then "rep " else "")
        (match op with Movs -> "movs" | Stos -> "stos")
        (size_suffix size)
  | Lidt m -> Fmt.pf fmt "lidt %a" pp_mem m

let to_string i = Fmt.str "%a" pp i
